package efl

import (
	"fmt"
	"math"

	"efl/internal/bench"
	"efl/internal/mbpta"
	"efl/internal/spta"
)

// This file exposes the analysis extensions that complement the paper's
// MBPTA route: the static analysis (SPTA) cross-check and the
// peaks-over-threshold EVT alternative.

// StaticCacheModel parameterises StaticPWCET's cache (see internal/spta).
type StaticCacheModel = spta.CacheModel

// StaticResult is the outcome of a static probabilistic timing analysis.
type StaticResult = spta.Result

// StaticTraceOptions selects which accesses enter the static analysis.
type StaticTraceOptions = spta.TraceOptions

// StaticPWCET runs the static (analytical) route end to end: extract
// prog's access trace, derive per-access miss probabilities from reuse
// distances under the uniform-victim EoM model — optionally with EFL-style
// bounded co-runner interference at evictionsPerCycle, using meanGapCycles
// as the per-access re-reference spacing — and return the analytic
// distribution whose PWCET method gives Chernoff tail bounds. Set
// conservative (recommended for WCET arguments) for the sound DATE'13
// pressure model.
func StaticPWCET(prog *Program, model StaticCacheModel, opt StaticTraceOptions,
	evictionsPerCycle, meanGapCycles float64, conservative bool) (*StaticResult, error) {
	var gaps func(int) float64
	if evictionsPerCycle > 0 {
		// A zero/negative (or non-finite) gap would flip the sign of the
		// interference term inside the analysis, *raising* hit
		// probabilities above their contention-free values — reject it here
		// (spta.Analyze re-checks) before paying for trace extraction.
		if !(meanGapCycles > 0) || math.IsInf(meanGapCycles, 0) {
			return nil, fmt.Errorf("efl: meanGapCycles %v must be a positive finite number when evictionsPerCycle > 0", meanGapCycles)
		}
		gaps = func(int) float64 { return meanGapCycles }
	}
	trace, err := spta.Trace(prog, opt)
	if err != nil {
		return nil, err
	}
	return spta.Analyze(trace, model, evictionsPerCycle, gaps, conservative)
}

// CrossCheckEVT compares the two measurement-based EVT routes — block
// maxima (Gumbel) and peaks-over-threshold (GPD) — on the same execution
// times at the given exceedance probability, returning both estimates and
// their relative disagreement. MBPTA practice treats a small disagreement
// as evidence the tail extrapolation is stable.
func CrossCheckEVT(times []float64, prob float64) (blockMaxima, pot, disagreement float64, err error) {
	return mbpta.CrossCheck(times, prob)
}

// ExtendedBenchmarks returns the six Autobench kernels beyond the paper's
// evaluated set (the programs the paper's framework could not run); they
// use the same Spec/Build API as Benchmarks.
func ExtendedBenchmarks() []BenchmarkSpec { return bench.Extended() }
