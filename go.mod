module efl

go 1.22
