// Package memctrl models the analysable memory controller of the paper's
// platform (§4.1), after Paolieri et al., "An Analyzable Memory Controller
// for Hard Real-Time CMPs" (IEEE Embedded Systems Letters, 2009).
//
// The AMC's design goal is a composable per-request Upper Bound Delay
// (UBD): regardless of co-runner behaviour, a core's request completes
// within a fixed bound. It achieves this with bank interleaving and
// round-robin issue: the controller can overlap requests (banked DRAM), so
// its bandwidth limit is one issue per IssueSlot cycles, while each request
// takes Service cycles from issue to data return. Blocking reads have
// priority over posted writebacks (write draining uses spare bandwidth), so
// a read waits at most Cores-1 foreign reads plus one in-flight write slot:
//
//	UBD = Cores*IssueSlot + Service
//
// The simulator uses the controller in two regimes:
//
//   - Deployment: requests queue; one issues per IssueSlot (oldest read
//     first, arrival ties broken round-robin by core, writes only when no
//     read is eligible) and completes Service cycles later.
//   - Analysis: the task under analysis charges the UBD for every memory
//     read, upper-bounding any deployment-time queueing.
package memctrl

import (
	"fmt"

	"efl/internal/metrics"
)

// Kind distinguishes blocking reads from posted writes.
type Kind int

const (
	// Read is a blocking line fetch; the requesting core resumes when it
	// completes.
	Read Kind = iota
	// Write is a posted writeback; it only consumes bandwidth.
	Write
)

// Request is one pending memory transaction.
type Request struct {
	Core    int
	Arrival int64
	Kind    Kind
	Tag     int64 // caller-defined correlation tag
}

// Stats aggregates controller activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	WaitCycles int64 // issue - arrival summed over requests
	BusySlots  int64 // issue slots consumed
}

// Controller is the shared memory controller.
type Controller struct {
	service int64 // access latency from issue to completion (100)
	slot    int64 // minimum spacing between issues (bandwidth limit)
	cores   int
	nextAt  int64 // earliest next issue cycle
	rr      int   // round-robin pointer for tie-breaking
	wait    []Request
	stats   Stats
	// readLat distributes end-to-end blocking-read latencies (completion −
	// arrival). Its Max is what the soundness auditor compares against
	// UpperBoundDelay: deployment must never exceed the analysis charge.
	readLat metrics.Histogram

	// Fault-injection state (see the hooks below): every overrunPeriod-th
	// read completes overrunExtra cycles late. Zero values mean healthy.
	overrunExtra  int64
	overrunPeriod uint64
	overrunCount  uint64
}

// InjectReadOverrun makes every period-th blocking read complete extra
// cycles after its nominal service time — a controller that occasionally
// violates its own composable Upper Bound Delay (a DRAM refresh collision
// the AMC design is supposed to mask, say). Armed/disarmed by
// sim.Multicore between runs.
func (c *Controller) InjectReadOverrun(extra int64, period uint64) {
	if extra < 0 || period == 0 {
		panic("memctrl: bad overrun fault parameters")
	}
	c.overrunExtra = extra
	c.overrunPeriod = period
	c.overrunCount = 0
}

// ClearFaults restores nominal service latency.
func (c *Controller) ClearFaults() {
	c.overrunExtra = 0
	c.overrunPeriod = 0
	c.overrunCount = 0
}

// New creates a controller: serviceCycles from issue to completion, one
// issue per slotCycles, for an N-core system.
func New(serviceCycles, slotCycles int64, cores int) *Controller {
	if serviceCycles < 1 || slotCycles < 1 || cores < 1 {
		panic("memctrl: bad parameters")
	}
	return &Controller{service: serviceCycles, slot: slotCycles, cores: cores}
}

// Service returns the issue-to-completion latency.
func (c *Controller) Service() int64 { return c.service }

// IssueSlot returns the bandwidth slot length.
func (c *Controller) IssueSlot() int64 { return c.slot }

// UpperBoundDelay returns the analysis-time latency charged per memory
// read: at most Cores-1 foreign reads plus one in-flight write occupy
// issue slots ahead of the request, then it completes Service cycles after
// its own issue.
func (c *Controller) UpperBoundDelay() int64 {
	return int64(c.cores)*c.slot + c.service
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// ReadLatencyHistogram returns a copy of the end-to-end blocking-read
// latency distribution (histograms are plain values; copying snapshots).
func (c *Controller) ReadLatencyHistogram() metrics.Histogram { return c.readLat }

// MaxReadLatency returns the largest end-to-end read latency served so far
// (0 when no read was served).
func (c *Controller) MaxReadLatency() int64 { return c.readLat.Max() }

// Reset clears the queue and occupancy for a new run.
func (c *Controller) Reset() {
	c.nextAt = 0
	c.rr = 0
	c.wait = c.wait[:0]
	c.stats = Stats{}
	c.readLat.Reset()
}

// Request enqueues a transaction.
func (c *Controller) Request(r Request) { c.wait = append(c.wait, r) }

// HasWaiters reports whether any request is pending.
func (c *Controller) HasWaiters() bool { return len(c.wait) > 0 }

// NextStartTime returns the earliest cycle the next issue can happen.
// It panics without waiters.
func (c *Controller) NextStartTime() int64 {
	if len(c.wait) == 0 {
		panic("memctrl: NextStartTime without waiters")
	}
	min := c.wait[0].Arrival
	for _, r := range c.wait[1:] {
		if r.Arrival < min {
			min = r.Arrival
		}
	}
	if c.nextAt > min {
		return c.nextAt
	}
	return min
}

// Serve issues the next request: among requests that have arrived by the
// issue time, reads precede writes; within a kind the oldest wins, with
// arrival ties broken round-robin by core. It returns the issued request
// and its completion cycle. The caller must ensure no earlier request can
// still be injected.
func (c *Controller) Serve() (Request, int64) {
	t := c.NextStartTime()
	best := -1
	better := func(i, b int) bool {
		r, cur := c.wait[i], c.wait[b]
		if (r.Kind == Read) != (cur.Kind == Read) {
			return r.Kind == Read
		}
		if r.Arrival != cur.Arrival {
			return r.Arrival < cur.Arrival
		}
		return c.rrBefore(r.Core, cur.Core)
	}
	for i, r := range c.wait {
		if r.Arrival > t {
			continue
		}
		if best == -1 || better(i, best) {
			best = i
		}
	}
	req := c.wait[best]
	c.wait = append(c.wait[:best], c.wait[best+1:]...)
	done := t + c.service
	c.nextAt = t + c.slot
	c.rr = (req.Core + 1) % c.cores
	if req.Kind == Read {
		if c.overrunPeriod > 0 {
			c.overrunCount++
			if c.overrunCount%c.overrunPeriod == 0 {
				done += c.overrunExtra
			}
		}
		c.stats.Reads++
		c.readLat.Observe(done - req.Arrival)
	} else {
		c.stats.Writes++
	}
	c.stats.WaitCycles += t - req.Arrival
	c.stats.BusySlots++
	return req, done
}

// rrBefore reports whether core a precedes core b in the current
// round-robin order.
func (c *Controller) rrBefore(a, b int) bool {
	ra := (a - c.rr + c.cores) % c.cores
	rb := (b - c.rr + c.cores) % c.cores
	return ra < rb
}

// String implements fmt.Stringer for diagnostics.
func (c *Controller) String() string {
	return fmt.Sprintf("MemCtrl{service:%d slot:%d nextAt:%d waiters:%d}",
		c.service, c.slot, c.nextAt, len(c.wait))
}
