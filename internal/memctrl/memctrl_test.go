package memctrl

import (
	"testing"

	"efl/internal/rng"
)

func TestServeSingle(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 10, Kind: Read})
	if got := c.NextStartTime(); got != 10 {
		t.Fatalf("start = %d", got)
	}
	req, done := c.Serve()
	if req.Core != 0 || done != 110 {
		t.Fatalf("serve = %+v done %d", req, done)
	}
	if c.HasWaiters() {
		t.Fatal("queue not drained")
	}
}

func TestIssueSlotSpacing(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	_, d1 := c.Serve()
	_, d2 := c.Serve()
	if d1 != 100 {
		t.Fatalf("first completion %d", d1)
	}
	// Second issues one slot later, overlapping with the first (banked).
	if d2 != 115 {
		t.Fatalf("second completion %d, want 115", d2)
	}
}

func TestOldestReadFirst(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 2, Arrival: 50, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 20, Kind: Read})
	req, done := c.Serve()
	if req.Core != 1 || done != 120 {
		t.Fatalf("oldest-first violated: %+v done %d", req, done)
	}
	req, _ = c.Serve()
	if req.Core != 2 {
		t.Fatalf("second serve = %+v", req)
	}
}

func TestReadsPrecedeWrites(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Write})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	req, _ := c.Serve()
	if req.Kind != Read {
		t.Fatal("write issued ahead of a pending read")
	}
	req, _ = c.Serve()
	if req.Kind != Write {
		t.Fatal("write lost")
	}
}

func TestRoundRobinTieBreak(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 3, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	req, _ := c.Serve()
	if req.Core != 1 {
		t.Fatalf("tie-break served core %d first", req.Core)
	}
	req, _ = c.Serve()
	if req.Core != 3 {
		t.Fatalf("second tie-break served core %d", req.Core)
	}
}

func TestRoundRobinPointerAdvances(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Serve() // pointer now at 1
	c.Request(Request{Core: 0, Arrival: 100, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 100, Kind: Read})
	req, _ := c.Serve()
	if req.Core != 1 {
		t.Fatalf("pointer did not advance: served %d", req.Core)
	}
}

// TestUBDHolds: with any mix of one read per core plus writes already
// queued, a newly arriving read completes within UBD.
func TestUBDHolds(t *testing.T) {
	c := New(100, 15, 4)
	// Adversarial backlog: 3 foreign reads and a write, all earlier.
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 2, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 3, Arrival: 0, Kind: Write})
	c.Request(Request{Core: 3, Arrival: 1, Kind: Read})
	// The request under test arrives last.
	c.Request(Request{Core: 0, Arrival: 2, Kind: Read})
	var done0 int64 = -1
	for c.HasWaiters() {
		req, done := c.Serve()
		if req.Core == 0 && req.Kind == Read {
			done0 = done
		}
	}
	if done0 < 0 {
		t.Fatal("request never served")
	}
	latency := done0 - 2
	if latency > c.UpperBoundDelay() {
		t.Fatalf("read latency %d exceeds UBD %d", latency, c.UpperBoundDelay())
	}
}

func TestUBD(t *testing.T) {
	if ubd := New(100, 15, 4).UpperBoundDelay(); ubd != 160 {
		t.Fatalf("UBD = %d", ubd)
	}
	if ubd := New(100, 15, 1).UpperBoundDelay(); ubd != 115 {
		t.Fatalf("single-core UBD = %d", ubd)
	}
}

func TestWriteAccounting(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Write})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	c.Serve()
	c.Serve()
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusySlots != 2 {
		t.Fatalf("busy slots = %d", st.BusySlots)
	}
}

func TestReset(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Serve()
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Reset()
	if c.HasWaiters() || c.Stats() != (Stats{}) {
		t.Fatal("Reset incomplete")
	}
	c.Request(Request{Core: 0, Arrival: 5, Kind: Read})
	if c.NextStartTime() != 5 {
		t.Fatal("nextAt not reset")
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 15, 4) },
		func() { New(100, 0, 4) },
		func() { New(100, 15, 0) },
		func() { New(100, 15, 4).NextStartTime() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkServe(b *testing.B) {
	c := New(100, 15, 4)
	for i := 0; i < b.N; i++ {
		c.Request(Request{Core: i % 4, Arrival: int64(i * 10), Kind: Read})
		c.Serve()
	}
}

// TestUBDProperty drives the controller with randomised traffic shaped
// like the platform generates it — each core has at most one blocking
// read in flight at a time, posted writebacks arrive at arbitrary points —
// and asserts that EVERY read completes within UpperBoundDelay of its
// arrival, across random geometries. This is the property the analysis
// mode's per-read charge rests on (and the runtime auditor's invariant
// A2); TestUBDHolds checks one adversarial backlog, this checks the claim
// wholesale.
func TestUBDProperty(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 40; trial++ {
		cores := 1 + src.Intn(6)
		service := int64(20 + src.Intn(200))
		slot := int64(1 + src.Intn(30))
		c := New(service, slot, cores)
		ubd := c.UpperBoundDelay()

		nextRead := make([]int64, cores) // next read arrival per core (-1: in flight)
		for i := range nextRead {
			nextRead[i] = int64(src.Intn(50))
		}
		readsLeft := 200
		writesLeft := 60
		nextWrite := int64(src.Intn(50))

		earliest := func() (int64, int, bool) { // (arrival, core or -1 for write, any)
			at, who, any := int64(0), 0, false
			for i, a := range nextRead {
				if a < 0 || readsLeft == 0 {
					continue
				}
				if !any || a < at {
					at, who, any = a, i, true
				}
			}
			if writesLeft > 0 && (!any || nextWrite < at) {
				at, who, any = nextWrite, -1, true
			}
			return at, who, any
		}
		inject := func(at int64, who int) {
			if who < 0 {
				c.Request(Request{Core: src.Intn(cores), Arrival: at, Kind: Write})
				writesLeft--
				nextWrite = at + int64(src.Intn(4*int(slot)+1))
				return
			}
			c.Request(Request{Core: who, Arrival: at, Kind: Read})
			readsLeft--
			nextRead[who] = -1 // blocked until completion
		}

		for {
			// Enqueue every request that must be visible before the next
			// issue (Serve's contract: no earlier request arrives later).
			for {
				at, who, any := earliest()
				if !any {
					break
				}
				if c.HasWaiters() && at > c.NextStartTime() {
					break
				}
				inject(at, who)
			}
			if !c.HasWaiters() {
				if _, _, any := earliest(); !any {
					break
				}
				continue
			}
			req, done := c.Serve()
			if req.Kind == Read {
				if lat := done - req.Arrival; lat > ubd {
					t.Fatalf("trial %d (cores=%d service=%d slot=%d): read latency %d exceeds UBD %d",
						trial, cores, service, slot, lat, ubd)
				}
				// The core resumes and issues its next read later.
				nextRead[req.Core] = done + int64(src.Intn(3*int(slot)+1))
			}
		}
	}
}
