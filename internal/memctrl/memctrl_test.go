package memctrl

import "testing"

func TestServeSingle(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 10, Kind: Read})
	if got := c.NextStartTime(); got != 10 {
		t.Fatalf("start = %d", got)
	}
	req, done := c.Serve()
	if req.Core != 0 || done != 110 {
		t.Fatalf("serve = %+v done %d", req, done)
	}
	if c.HasWaiters() {
		t.Fatal("queue not drained")
	}
}

func TestIssueSlotSpacing(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	_, d1 := c.Serve()
	_, d2 := c.Serve()
	if d1 != 100 {
		t.Fatalf("first completion %d", d1)
	}
	// Second issues one slot later, overlapping with the first (banked).
	if d2 != 115 {
		t.Fatalf("second completion %d, want 115", d2)
	}
}

func TestOldestReadFirst(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 2, Arrival: 50, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 20, Kind: Read})
	req, done := c.Serve()
	if req.Core != 1 || done != 120 {
		t.Fatalf("oldest-first violated: %+v done %d", req, done)
	}
	req, _ = c.Serve()
	if req.Core != 2 {
		t.Fatalf("second serve = %+v", req)
	}
}

func TestReadsPrecedeWrites(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Write})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	req, _ := c.Serve()
	if req.Kind != Read {
		t.Fatal("write issued ahead of a pending read")
	}
	req, _ = c.Serve()
	if req.Kind != Write {
		t.Fatal("write lost")
	}
}

func TestRoundRobinTieBreak(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 3, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	req, _ := c.Serve()
	if req.Core != 1 {
		t.Fatalf("tie-break served core %d first", req.Core)
	}
	req, _ = c.Serve()
	if req.Core != 3 {
		t.Fatalf("second tie-break served core %d", req.Core)
	}
}

func TestRoundRobinPointerAdvances(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Serve() // pointer now at 1
	c.Request(Request{Core: 0, Arrival: 100, Kind: Read})
	c.Request(Request{Core: 1, Arrival: 100, Kind: Read})
	req, _ := c.Serve()
	if req.Core != 1 {
		t.Fatalf("pointer did not advance: served %d", req.Core)
	}
}

// TestUBDHolds: with any mix of one read per core plus writes already
// queued, a newly arriving read completes within UBD.
func TestUBDHolds(t *testing.T) {
	c := New(100, 15, 4)
	// Adversarial backlog: 3 foreign reads and a write, all earlier.
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 2, Arrival: 0, Kind: Read})
	c.Request(Request{Core: 3, Arrival: 0, Kind: Write})
	c.Request(Request{Core: 3, Arrival: 1, Kind: Read})
	// The request under test arrives last.
	c.Request(Request{Core: 0, Arrival: 2, Kind: Read})
	var done0 int64 = -1
	for c.HasWaiters() {
		req, done := c.Serve()
		if req.Core == 0 && req.Kind == Read {
			done0 = done
		}
	}
	if done0 < 0 {
		t.Fatal("request never served")
	}
	latency := done0 - 2
	if latency > c.UpperBoundDelay() {
		t.Fatalf("read latency %d exceeds UBD %d", latency, c.UpperBoundDelay())
	}
}

func TestUBD(t *testing.T) {
	if ubd := New(100, 15, 4).UpperBoundDelay(); ubd != 160 {
		t.Fatalf("UBD = %d", ubd)
	}
	if ubd := New(100, 15, 1).UpperBoundDelay(); ubd != 115 {
		t.Fatalf("single-core UBD = %d", ubd)
	}
}

func TestWriteAccounting(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Write})
	c.Request(Request{Core: 1, Arrival: 0, Kind: Read})
	c.Serve()
	c.Serve()
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusySlots != 2 {
		t.Fatalf("busy slots = %d", st.BusySlots)
	}
}

func TestReset(t *testing.T) {
	c := New(100, 15, 4)
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Serve()
	c.Request(Request{Core: 0, Arrival: 0, Kind: Read})
	c.Reset()
	if c.HasWaiters() || c.Stats() != (Stats{}) {
		t.Fatal("Reset incomplete")
	}
	c.Request(Request{Core: 0, Arrival: 5, Kind: Read})
	if c.NextStartTime() != 5 {
		t.Fatal("nextAt not reset")
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 15, 4) },
		func() { New(100, 0, 4) },
		func() { New(100, 15, 0) },
		func() { New(100, 15, 4).NextStartTime() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkServe(b *testing.B) {
	c := New(100, 15, 4)
	for i := 0; i < b.N; i++ {
		c.Request(Request{Core: i % 4, Arrival: int64(i * 10), Kind: Read})
		c.Serve()
	}
}
