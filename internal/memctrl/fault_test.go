package memctrl

import (
	"testing"
)

func TestInjectReadOverrun(t *testing.T) {
	c := New(100, 5, 4)
	c.InjectReadOverrun(300, 4)
	for i := 0; i < 8; i++ {
		c.Request(Request{Core: i % 4, Arrival: 0, Kind: Read})
	}
	for i := 1; i <= 8; i++ {
		_, done := c.Serve()
		issue := done - 100
		if i%4 == 0 {
			issue = done - 400
		}
		want := int64(i-1) * 5 // issues are slot-spaced from cycle 0
		if issue != want {
			t.Fatalf("read %d: completion %d implies issue %d, want %d (overrun misapplied)", i, done, issue, want)
		}
	}
	// UBD accounting must notice: the max observed read latency now
	// exceeds the controller's composable bound.
	if c.MaxReadLatency() <= c.UpperBoundDelay() {
		t.Fatalf("overrun latency %d not above the UBD %d", c.MaxReadLatency(), c.UpperBoundDelay())
	}
	c.ClearFaults()
	c.Request(Request{Core: 0, Arrival: 1000, Kind: Read})
	_, done := c.Serve()
	if done != 1000+100 {
		t.Fatalf("cleared controller still overruns: done %d", done)
	}
}

func TestInjectReadOverrunIgnoresWrites(t *testing.T) {
	c := New(100, 5, 4)
	c.InjectReadOverrun(300, 1) // every read overruns; writes never do
	c.Request(Request{Core: 0, Arrival: 0, Kind: Write})
	if _, done := c.Serve(); done != 100 {
		t.Fatalf("write completion %d perturbed by a read-path fault", done)
	}
	c.Request(Request{Core: 0, Arrival: 200, Kind: Read})
	if _, done := c.Serve(); done != 200+100+300 {
		t.Fatalf("read completion %d, want nominal + overrun", done)
	}
}
