// Package sched implements the Integrated-Modular-Avionics-style frame
// scheduling the paper's deployment story assumes (§3.5): execution time
// is split into fixed-size MInor Frames (MIFs), a MAjor Frame (MAF) is a
// repeating sequence of MIFs, and every core runs at most one task per
// MIF. The random index identifier (RII) of the shared LLC can only be
// updated coordinately across cores, so the OS changes it — and flushes
// the cache — at MIF boundaries, which "occur coordinately across all
// cores".
//
// The scheduler is the missing OS-level piece that turns per-task pWCET
// estimates into a system-level argument: a schedule is *feasible* when
// every task's pWCET at the chosen exceedance probability fits within its
// MIF slot, and EFL's time-composability means those pWCETs remain valid
// no matter how tasks are (re)placed across cores and frames — the very
// flexibility hardware partitioning denies (partition flushes, mapping
// conflicts; §2.2).
package sched

import (
	"fmt"
	"strings"

	"efl/internal/efl"
	"efl/internal/isa"
	"efl/internal/runner"
	"efl/internal/sim"
)

// Task couples a program with its analysis artefacts.
type Task struct {
	Name string
	Prog *isa.Program
	// PWCET is the task's probabilistic WCET bound in cycles at the
	// system's exceedance probability (from package mbpta/the efl facade).
	PWCET float64
}

// Slot assigns a task to a core within one minor frame; a nil Task leaves
// the core idle.
type Slot struct {
	Core int
	Task *Task
}

// MIF is one minor frame: its length in cycles and the per-core slots.
type MIF struct {
	Cycles int64
	Slots  []Slot
}

// Schedule is a major frame: a repeating sequence of minor frames.
type Schedule struct {
	// Cfg is the platform configuration tasks run under (EFL MID etc.).
	Cfg sim.Config
	// Frames is the MAF's MIF sequence.
	Frames []MIF
}

// Validate checks structural properties: frame lengths are positive, no
// core is double-booked within a frame, cores are in range.
func (s *Schedule) Validate() error {
	if len(s.Frames) == 0 {
		return fmt.Errorf("sched: empty major frame")
	}
	if err := s.Cfg.Validate(); err != nil {
		return err
	}
	for fi, f := range s.Frames {
		if f.Cycles <= 0 {
			return fmt.Errorf("sched: MIF %d has non-positive length", fi)
		}
		seen := map[int]bool{}
		for _, slot := range f.Slots {
			if slot.Core < 0 || slot.Core >= s.Cfg.Cores {
				return fmt.Errorf("sched: MIF %d assigns core %d (platform has %d)", fi, slot.Core, s.Cfg.Cores)
			}
			if seen[slot.Core] {
				return fmt.Errorf("sched: MIF %d double-books core %d", fi, slot.Core)
			}
			seen[slot.Core] = true
		}
	}
	return nil
}

// FeasibilityReport is the schedulability analysis outcome.
type FeasibilityReport struct {
	Feasible bool
	// PerSlot lists each occupied slot's budget check.
	PerSlot []SlotCheck
}

// SlotCheck is one slot's pWCET-versus-frame-length comparison.
type SlotCheck struct {
	Frame  int
	Core   int
	Task   string
	PWCET  float64
	Budget int64
	Fits   bool
	Slack  float64 // Budget - PWCET
}

// CheckFeasibility performs the schedulability test: every task's pWCET
// must fit its minor frame. Thanks to EFL's time composability the test
// is per-slot — no combined multi-task analysis is needed (§2.2 explains
// why that would be intractable and brittle).
func (s *Schedule) CheckFeasibility() (*FeasibilityReport, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rep := &FeasibilityReport{Feasible: true}
	for fi, f := range s.Frames {
		for _, slot := range f.Slots {
			if slot.Task == nil {
				continue
			}
			if slot.Task.PWCET <= 0 {
				return nil, fmt.Errorf("sched: task %q has no pWCET", slot.Task.Name)
			}
			check := SlotCheck{
				Frame:  fi,
				Core:   slot.Core,
				Task:   slot.Task.Name,
				PWCET:  slot.Task.PWCET,
				Budget: f.Cycles,
				Fits:   slot.Task.PWCET <= float64(f.Cycles),
				Slack:  float64(f.Cycles) - slot.Task.PWCET,
			}
			if !check.Fits {
				rep.Feasible = false
			}
			rep.PerSlot = append(rep.PerSlot, check)
		}
	}
	return rep, nil
}

// FrameResult records one executed minor frame.
type FrameResult struct {
	Frame int
	// Cycles per occupied core (task completion time within the frame).
	TaskCycles map[int]int64
	// Names per occupied core.
	TaskNames map[int]string
	// Overruns lists cores whose task exceeded the frame (should be
	// probabilistically impossible when the schedule is feasible and the
	// co-runners are EFL-compliant).
	Overruns []int
}

// Run executes one major frame on the platform: for each MIF it assembles
// the slot tasks, runs them together at deployment (fresh RIIs and
// flushed caches at the frame boundary — the sim's per-run reset is
// exactly the MIF-boundary protocol), and checks completion against the
// frame budget. seed derives each frame's randomness through
// runner.Seed(seed, "frame/<fi>"), the campaign engine's identity-based
// derivation: nearby master seeds yield unrelated frame streams (the old
// seed+fi*constant arithmetic made frame fi of seed s collide with frame
// fi-1 of seed s+constant).
func (s *Schedule) Run(seed uint64) ([]FrameResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []FrameResult
	for fi, f := range s.Frames {
		progs := make([]*isa.Program, s.Cfg.Cores)
		names := map[int]string{}
		for _, slot := range f.Slots {
			if slot.Task == nil {
				continue
			}
			progs[slot.Core] = slot.Task.Prog
			names[slot.Core] = slot.Task.Name
		}
		fr := FrameResult{Frame: fi, TaskCycles: map[int]int64{}, TaskNames: names}
		if len(names) > 0 {
			m, err := sim.New(s.Cfg, progs, frameSeed(seed, fi))
			if err != nil {
				return nil, err
			}
			res, err := m.Run()
			if err != nil {
				return nil, fmt.Errorf("sched: MIF %d: %w", fi, err)
			}
			for core, cr := range res.PerCore {
				if !cr.Active {
					continue
				}
				fr.TaskCycles[core] = cr.Cycles
				if cr.Cycles > f.Cycles {
					fr.Overruns = append(fr.Overruns, core)
				}
			}
		}
		out = append(out, fr)
	}
	return out, nil
}

// frameSeed derives minor frame fi's simulation seed from the master seed
// via the campaign engine's identity-based derivation (runner.Seed's
// determinism contract: stable identity, no arithmetic relationships
// between nearby master seeds).
func frameSeed(master uint64, fi int) uint64 {
	return runner.Seed(master, fmt.Sprintf("frame/%d", fi))
}

// Render prints a feasibility report.
func (r *FeasibilityReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule feasible: %v\n", r.Feasible)
	fmt.Fprintf(&sb, "%5s %5s %-10s %12s %12s %12s %s\n",
		"frame", "core", "task", "pWCET", "budget", "slack", "fits")
	for _, c := range r.PerSlot {
		fmt.Fprintf(&sb, "%5d %5d %-10s %12.0f %12d %12.0f %v\n",
			c.Frame, c.Core, c.Task, c.PWCET, c.Budget, c.Slack, c.Fits)
	}
	return sb.String()
}

// PackGreedy builds a simple feasible schedule for tasks on an N-core
// platform: tasks are placed first-fit-decreasing by pWCET into minor
// frames of the given length, opening new frames as needed. It returns an
// error when a task cannot fit any frame (pWCET > mifCycles). This is the
// OS-level convenience EFL enables: *any* placement is sound, so a greedy
// packer suffices where partitioned systems need co-schedulability
// analysis.
func PackGreedy(cfg sim.Config, tasks []*Task, mifCycles int64) (*Schedule, error) {
	// Validate the platform up front: a bad configuration (zero cores,
	// inconsistent geometry) or an analysis-mode Config would otherwise
	// produce a schedule that only fails deep inside Schedule.Run.
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sched: invalid platform config: %w", err)
	}
	if cfg.Mode == efl.Analysis {
		return nil, fmt.Errorf("sched: cannot schedule on an analysis-mode config (deployment mode required; analysis mode runs one task alone on core %d)", cfg.AnalysedCore)
	}
	if mifCycles <= 0 {
		return nil, fmt.Errorf("sched: non-positive MIF length %d", mifCycles)
	}
	for _, t := range tasks {
		if t.PWCET <= 0 {
			return nil, fmt.Errorf("sched: task %q has no pWCET", t.Name)
		}
		if t.PWCET > float64(mifCycles) {
			return nil, fmt.Errorf("sched: task %q pWCET %.0f exceeds the MIF length %d",
				t.Name, t.PWCET, mifCycles)
		}
	}
	// First-fit decreasing.
	sorted := append([]*Task(nil), tasks...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].PWCET > sorted[j-1].PWCET; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	s := &Schedule{Cfg: cfg}
	for _, t := range sorted {
		placed := false
		for fi := range s.Frames {
			if len(s.Frames[fi].Slots) < cfg.Cores {
				core := len(s.Frames[fi].Slots)
				s.Frames[fi].Slots = append(s.Frames[fi].Slots, Slot{Core: core, Task: t})
				placed = true
				break
			}
		}
		if !placed {
			s.Frames = append(s.Frames, MIF{
				Cycles: mifCycles,
				Slots:  []Slot{{Core: 0, Task: t}},
			})
		}
	}
	return s, nil
}
