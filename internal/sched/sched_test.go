package sched

import (
	"strings"
	"testing"

	"efl/internal/isa"
	"efl/internal/sim"
)

// tinyTask builds a short deterministic task and assigns it an arbitrary
// pWCET for structural tests.
func tinyTask(t *testing.T, name string, iters int, pwcet float64) *Task {
	t.Helper()
	b := isa.NewBuilder(name)
	b.Movi(1, 0)
	b.Movi(2, int64(iters))
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	return &Task{Name: name, Prog: b.MustProgram(), PWCET: pwcet}
}

func TestValidate(t *testing.T) {
	cfg := sim.DefaultConfig().WithEFL(500)
	a := tinyTask(t, "a", 100, 1000)

	good := &Schedule{Cfg: cfg, Frames: []MIF{{Cycles: 10000, Slots: []Slot{{Core: 0, Task: a}}}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	for name, s := range map[string]*Schedule{
		"empty":       {Cfg: cfg},
		"zero-len":    {Cfg: cfg, Frames: []MIF{{Cycles: 0}}},
		"bad-core":    {Cfg: cfg, Frames: []MIF{{Cycles: 10, Slots: []Slot{{Core: 9, Task: a}}}}},
		"double-book": {Cfg: cfg, Frames: []MIF{{Cycles: 10, Slots: []Slot{{Core: 0, Task: a}, {Core: 0, Task: a}}}}},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestFeasibility(t *testing.T) {
	cfg := sim.DefaultConfig().WithEFL(500)
	fits := tinyTask(t, "fits", 100, 5000)
	big := tinyTask(t, "big", 100, 50000)
	s := &Schedule{Cfg: cfg, Frames: []MIF{{
		Cycles: 10000,
		Slots:  []Slot{{Core: 0, Task: fits}, {Core: 1, Task: big}},
	}}}
	rep, err := s.CheckFeasibility()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatal("infeasible schedule reported feasible")
	}
	if len(rep.PerSlot) != 2 {
		t.Fatalf("%d slot checks", len(rep.PerSlot))
	}
	for _, c := range rep.PerSlot {
		switch c.Task {
		case "fits":
			if !c.Fits || c.Slack != 5000 {
				t.Fatalf("fits check = %+v", c)
			}
		case "big":
			if c.Fits {
				t.Fatalf("big check = %+v", c)
			}
		}
	}
	if !strings.Contains(rep.Render(), "big") {
		t.Error("render missing task")
	}
}

func TestFeasibilityNeedsPWCET(t *testing.T) {
	cfg := sim.DefaultConfig().WithEFL(500)
	bad := tinyTask(t, "bad", 100, 0)
	s := &Schedule{Cfg: cfg, Frames: []MIF{{Cycles: 10000, Slots: []Slot{{Core: 0, Task: bad}}}}}
	if _, err := s.CheckFeasibility(); err == nil {
		t.Fatal("missing pWCET accepted")
	}
}

func TestRunExecutesFrames(t *testing.T) {
	cfg := sim.DefaultConfig().WithEFL(500)
	a := tinyTask(t, "a", 2000, 100000)
	b := tinyTask(t, "b", 1000, 100000)
	s := &Schedule{Cfg: cfg, Frames: []MIF{
		{Cycles: 200000, Slots: []Slot{{Core: 0, Task: a}, {Core: 1, Task: b}}},
		{Cycles: 200000, Slots: []Slot{{Core: 2, Task: a}}},
		{Cycles: 200000}, // idle frame
	}}
	results, err := s.Run(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d frames", len(results))
	}
	if len(results[0].TaskCycles) != 2 || results[0].TaskNames[0] != "a" {
		t.Fatalf("frame 0 = %+v", results[0])
	}
	if len(results[0].Overruns) != 0 {
		t.Fatalf("unexpected overrun: %+v", results[0])
	}
	// Task a runs in frames 0 and 1 on different cores — the placement
	// freedom EFL buys (no partition flushing, no mapping conflicts).
	if results[1].TaskNames[2] != "a" {
		t.Fatalf("frame 1 = %+v", results[1])
	}
	if len(results[2].TaskCycles) != 0 {
		t.Fatal("idle frame executed something")
	}
}

func TestRunDetectsOverrun(t *testing.T) {
	cfg := sim.DefaultConfig().WithEFL(500)
	a := tinyTask(t, "a", 50000, 1000)
	s := &Schedule{Cfg: cfg, Frames: []MIF{
		{Cycles: 100, Slots: []Slot{{Core: 0, Task: a}}}, // absurdly short frame
	}}
	results, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Overruns) != 1 || results[0].Overruns[0] != 0 {
		t.Fatalf("overrun not detected: %+v", results[0])
	}
}

func TestPackGreedy(t *testing.T) {
	cfg := sim.DefaultConfig().WithEFL(500)
	var tasks []*Task
	for i, w := range []float64{9000, 2000, 7000, 4000, 6000, 1000} {
		tasks = append(tasks, tinyTask(t, string(rune('a'+i)), 100, w))
	}
	s, err := PackGreedy(cfg, tasks, 10000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.CheckFeasibility()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("greedy pack infeasible:\n%s", rep.Render())
	}
	// 6 tasks over 4 cores per frame: at most 2 frames.
	if len(s.Frames) > 2 {
		t.Fatalf("greedy used %d frames for 6 tasks on 4 cores", len(s.Frames))
	}
	placed := 0
	for _, f := range s.Frames {
		placed += len(f.Slots)
	}
	if placed != 6 {
		t.Fatalf("placed %d of 6 tasks", placed)
	}
}

func TestPackGreedyRejectsOversized(t *testing.T) {
	cfg := sim.DefaultConfig().WithEFL(500)
	big := tinyTask(t, "big", 100, 20000)
	if _, err := PackGreedy(cfg, []*Task{big}, 10000); err == nil {
		t.Fatal("oversized task packed")
	}
	noPWCET := tinyTask(t, "n", 100, 0)
	if _, err := PackGreedy(cfg, []*Task{noPWCET}, 10000); err == nil {
		t.Fatal("task without pWCET packed")
	}
}

// TestFrameSeedNoCrossCampaignCollisions is the regression test for the
// seed-contract violation: the old derivation seed+uint64(fi)*0x9e37 made
// frame fi of master seed s collide with frame fi-1 of master seed
// s+0x9e37 (and more generally aliased nearby campaigns onto each other's
// frame streams). The identity-based derivation must give pairwise
// distinct seeds across a dense window of master seeds and frame indices.
func TestFrameSeedNoCrossCampaignCollisions(t *testing.T) {
	const masters, frames = 256, 16
	seen := make(map[uint64][2]uint64, masters*frames)
	for m := uint64(0); m < masters; m++ {
		// Include the exact stride that collided pre-fix.
		for _, master := range []uint64{1 + m, 1 + m*0x9e37} {
			for fi := 0; fi < frames; fi++ {
				s := frameSeed(master, fi)
				if prev, dup := seen[s]; dup && (prev[0] != master || prev[1] != uint64(fi)) {
					t.Fatalf("frame seed collision: (master=%d, frame=%d) and (master=%d, frame=%d) both derive %#x",
						prev[0], prev[1], master, fi, s)
				}
				seen[s] = [2]uint64{master, uint64(fi)}
			}
		}
	}
}

// TestFrameSeedOldArithmeticCollided documents the bug the derivation
// change fixes: under the old arithmetic the collision above was certain.
func TestFrameSeedOldArithmeticCollided(t *testing.T) {
	old := func(master uint64, fi int) uint64 { return master + uint64(fi)*0x9e37 }
	if old(1, 1) != old(1+0x9e37, 0) {
		t.Fatal("old arithmetic no longer collides; update this documentation test")
	}
	if frameSeed(1, 1) == frameSeed(1+0x9e37, 0) {
		t.Fatal("new derivation still collides on the old stride")
	}
}

// TestPackGreedyValidatesConfig pins the up-front platform validation:
// broken or analysis-mode configs are rejected with a descriptive error at
// packing time instead of failing deep inside Schedule.Run.
func TestPackGreedyValidatesConfig(t *testing.T) {
	task := tinyTask(t, "a", 100, 1000)
	zeroCore := sim.DefaultConfig()
	zeroCore.Cores = 0
	negLat := sim.DefaultConfig()
	negLat.MemCycles = -1
	for name, cfg := range map[string]sim.Config{
		"zero-core":     zeroCore,
		"negative-lat":  negLat,
		"analysis-mode": sim.DefaultConfig().WithEFL(500).WithAnalysis(0),
	} {
		if _, err := PackGreedy(cfg, []*Task{task}, 10000); err == nil {
			t.Errorf("%s config accepted by PackGreedy", name)
		}
	}
	if _, err := PackGreedy(sim.DefaultConfig().WithEFL(500), []*Task{task}, 0); err == nil {
		t.Error("non-positive MIF length accepted")
	}
	if _, err := PackGreedy(sim.DefaultConfig().WithEFL(500), []*Task{task}, 10000); err != nil {
		t.Errorf("valid deployment config rejected: %v", err)
	}
}
