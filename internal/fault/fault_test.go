package fault

import "testing"

// TestValidate pins the plan-validation rules that keep injected
// platforms livelock-free and the class set closed.
func TestValidate(t *testing.T) {
	const cores, ways = 4, 8
	ok := []Plan{
		{},
		Single(EFLStuckEAB, 0),
		Single(EFLSaturatedCDC, 3),
		Single(CacheDisabledWays, AllCores),
		Single(RNGBiased, AllCores),
		Single(BusStarvation, 1),
		Single(MemOverrun, AllCores),
		Single(CohDroppedInval, 2),
		{Injections: []Injection{{Class: CacheDisabledWays, Core: AllCores, Param: 0x01}}},
	}
	for i, p := range ok {
		if err := p.Validate(cores, ways); err != nil {
			t.Errorf("plan %d should validate: %v", i, err)
		}
	}
	bad := []Plan{
		{Injections: []Injection{{Class: EFLStuckEAB, Core: cores}}},                     // core out of range
		{Injections: []Injection{{Class: EFLStuckEAB, Core: -2}}},                        // negative non-AllCores
		{Injections: []Injection{{Class: EFLSaturatedCDC, Core: 0, Param: -5}}},          // non-positive magnitude
		{Injections: []Injection{{Class: CacheDisabledWays, Core: 0, Param: 0xFF}}},      // all ways disabled
		{Injections: []Injection{{Class: CacheDisabledWays, Core: 0, Param: 0x100}}},     // no way disabled
		{Injections: []Injection{{Class: RNGBiased, Core: 0, Param: int64(^uint32(0))}}}, // identity mask
		Single(CohDroppedInval, AllCores),                                                // needs a specific target core
		Single(JobPanic, 0),                                                              // software fault, not armable
		Single(NodeDrop, 0),                                                              // cluster fault, not armable
		Single(PeerSlow, 0),                                                              // byzantine cluster fault, not armable
		Single(Partition, 0),                                                             // byzantine cluster fault, not armable
		Single(StoreCorrupt, 0),                                                          // byzantine cluster fault, not armable
		Single(FlakyTransport, 0),                                                        // byzantine cluster fault, not armable
		{Injections: []Injection{{Class: "bogus", Core: 0}}},                             // unknown class
	}
	for i, p := range bad {
		if err := p.Validate(cores, ways); err == nil {
			t.Errorf("plan %d (%+v) should be rejected", i, p.Injections)
		}
	}
}

// TestSingleUsesDefaultParam pins that Single carries the class default
// magnitude, and that every parameterised class has a non-zero default.
func TestSingleUsesDefaultParam(t *testing.T) {
	for _, c := range Classes() {
		if got := Single(c, 0).Injections[0].Param; got != DefaultParam(c) {
			t.Errorf("Single(%s).Param = %d, want DefaultParam %d", c, got, DefaultParam(c))
		}
	}
	for _, c := range []Class{EFLSaturatedCDC, CacheDisabledWays, CacheTagFlip, RNGBiased, BusStarvation, MemOverrun} {
		if DefaultParam(c) == 0 {
			t.Errorf("parameterised class %s has zero default magnitude", c)
		}
	}
}

// TestClassesCoversAll pins that the matrix-order class list stays in
// sync with the declared classes (a new class must join the matrix).
func TestClassesCoversAll(t *testing.T) {
	want := map[Class]bool{
		EFLStuckEAB: true, EFLSaturatedCDC: true, EFLDeadCRG: true,
		CacheDisabledWays: true, CacheTagFlip: true,
		RNGStuck: true, RNGBiased: true,
		BusStarvation: true, MemOverrun: true,
		CohDroppedInval: true, JobPanic: true, NodeDrop: true,
		PeerSlow: true, Partition: true, StoreCorrupt: true, FlakyTransport: true,
	}
	got := Classes()
	if len(got) != len(want) {
		t.Fatalf("Classes() returns %d classes, want %d", len(got), len(want))
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("Classes() contains unexpected %q", c)
		}
		delete(want, c)
	}
	for c := range want {
		t.Errorf("Classes() is missing %q", c)
	}
}

// TestClusterClasses pins that every fleet-level class is in the global
// class list and that none of them arms onto a hardware platform.
func TestClusterClasses(t *testing.T) {
	all := map[Class]bool{}
	for _, c := range Classes() {
		all[c] = true
	}
	for _, c := range ClusterClasses() {
		if !all[c] {
			t.Errorf("cluster class %q missing from Classes()", c)
		}
		if err := Single(c, 0).Validate(4, 8); err == nil {
			t.Errorf("cluster class %q was accepted by platform validation", c)
		}
	}
}
