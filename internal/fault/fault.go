// Package fault defines the deterministic fault-injection plans the
// hardened campaign runtime uses to demonstrate that the soundness auditor
// (sim.Auditor, invariants A1-A4) and the runner watchdog actually catch
// hardware misbehaviour instead of merely asserting correctness.
//
// A Plan is a set of single-fault Injections, each naming a fault Class
// (which hardware structure breaks and how) plus a target core and a
// class-specific magnitude. Plans are armed onto a platform with
// sim.Multicore.ArmFaults, which maps every injection onto a narrow hook in
// the hardware layer (internal/efl, internal/cache, internal/rng,
// internal/bus, internal/memctrl); sim.Multicore.Reuse disarms them, so a
// pooled platform can never leak a fault into the next campaign. All hooks
// are branch-only when disarmed: goldens stay bit-identical and the
// simulation hot path stays allocation-free.
//
// Everything is deterministic: a fault plan never draws from its own
// randomness source, it only perturbs the platform's existing deterministic
// streams, so an injected campaign is exactly reproducible from its seed.
package fault

import "fmt"

// Class names one fault model. The string values appear in artifacts and
// in the detection matrix, so they are part of the schema.
type Class string

const (
	// EFLStuckEAB sticks a core's eviction-allowed bit at 1: the EFL gate
	// stops throttling that core's evictions entirely.
	EFLStuckEAB Class = "efl-stuck-eab"
	// EFLSaturatedCDC saturates a core's count-down counter: after its
	// first eviction the EAB never sets again and every later evicting
	// request stalls forever. Param is the saturated delay in cycles.
	EFLSaturatedCDC Class = "efl-saturated-cdc"
	// EFLDeadCRG kills the cache request generators in analysis mode: the
	// co-runner worst-case interference the mode must realise never happens.
	EFLDeadCRG Class = "efl-dead-crg"
	// CacheDisabledWays makes LLC ways unusable for fills. Param is the
	// disabled-way bitmask.
	CacheDisabledWays Class = "cache-disabled-ways"
	// CacheTagFlip corrupts the stored tag of every Param-th LLC fill
	// (single-event upsets in the tag array).
	CacheTagFlip Class = "cache-tag-flip"
	// RNGStuck sticks a core's EFL delay PRNG output at zero: every
	// inter-eviction delay draw is 0 and the gate admits evictions at the
	// core's natural miss rate.
	RNGStuck Class = "rng-stuck"
	// RNGBiased forces output bits of the LLC victim PRNG to zero. Param is
	// the AND mask; with the low bits cleared every victim draw lands in
	// way 0 and the LLC degenerates to direct-mapped.
	RNGBiased Class = "rng-biased"
	// BusStarvation makes the lottery arbiter starve one core: it loses
	// every contested round and pays Param penalty cycles per grant.
	BusStarvation Class = "bus-starvation"
	// MemOverrun makes every 4th memory read complete Param cycles late,
	// exceeding the controller's composable Upper Bound Delay.
	MemOverrun Class = "mem-overrun"
	// CohDroppedInval drops every MSI invalidation addressed to the target
	// core: the directory transitions but the core's L1 copy survives, so a
	// later local hit reads stale data. Requires a platform with the
	// coherence layer enabled and a specific target core.
	CohDroppedInval Class = "coh-dropped-inval"
	// JobPanic is a software fault injected above the simulator: the
	// campaign job panics mid-flight. It exercises the runner's panic
	// isolation, not a hardware hook, and is rejected by ArmFaults.
	JobPanic Class = "job-panic"
	// NodeDrop is a cluster-level fault: one fleet node dies abruptly —
	// listener and open connections closed, nothing drained. It exercises
	// the router's deterministic re-routing (cluster.Ring.Sequence), is
	// injected by the fleet harness (cluster.Fleet.Drop), and like
	// JobPanic is rejected by ArmFaults — no hardware hook models it.
	NodeDrop Class = "node-drop"
	// PeerSlow is a byzantine cluster-level fault: a node keeps accepting
	// TCP connections but never sends response headers (hung process,
	// half-dead VM, black-holed egress). Nastier than NodeDrop — a dead
	// peer fails fast with connection-refused, a slow one eats the
	// caller's time. Injected by cluster.Fleet.Slow; the defense is the
	// per-hop forwarding budget (resil.HopBudget) plus the breaker.
	PeerSlow Class = "peer-slow"
	// Partition is a byzantine cluster-level fault: two nodes lose
	// mutual connectivity while both stay reachable from everywhere else
	// (A sees B but not C). Injected by cluster.Fleet.Partition; the
	// defense is deterministic work-stealing down the ring sequence.
	Partition Class = "partition"
	// StoreCorrupt is a byzantine cluster-level fault: a shared-store
	// entry's bytes change on disk (bit rot, torn write on a non-atomic
	// filesystem, hostile tenant). Injected by cluster.CorruptStoreEntry;
	// the defense is DirStore's content-hash verification, which treats
	// the entry as a miss and quarantines the file.
	StoreCorrupt Class = "store-corrupt"
	// FlakyTransport is a byzantine cluster-level fault: a deterministic
	// fraction of a node's responses are reset mid-body (dying NIC, load
	// balancer draining, MTU black hole). Injected by cluster.Fleet.Flaky;
	// the defense is forward-error stealing plus the breaker.
	FlakyTransport Class = "flaky-transport"
)

// Classes returns every fault class in detection-matrix order.
func Classes() []Class {
	return []Class{
		EFLStuckEAB, EFLSaturatedCDC, EFLDeadCRG,
		CacheDisabledWays, CacheTagFlip,
		RNGStuck, RNGBiased,
		BusStarvation, MemOverrun,
		CohDroppedInval,
		JobPanic, NodeDrop,
		PeerSlow, Partition, StoreCorrupt, FlakyTransport,
	}
}

// ClusterClasses returns the fleet-level fault classes in resilience-
// matrix order: the byzantine classes plus node-drop, none of which arm
// onto a hardware platform — they are realised by the fleet harness
// (cluster.Fleet) and defended by the routing layer.
func ClusterClasses() []Class {
	return []Class{PeerSlow, Partition, StoreCorrupt, FlakyTransport, NodeDrop}
}

// Injection is one fault: a class, the core it targets (AllCores where the
// class is not per-core) and a class-specific magnitude.
type Injection struct {
	Class Class `json:"class"`
	// Core is the targeted core, or AllCores for every applicable one.
	Core int `json:"core"`
	// Param is the class-specific magnitude; 0 selects the class default
	// (see DefaultParam).
	Param int64 `json:"param,omitempty"`
}

// AllCores targets every applicable core of an injection's class.
const AllCores = -1

// DefaultParam returns the magnitude an injection of class c uses when
// Param is zero.
func DefaultParam(c Class) int64 {
	switch c {
	case EFLSaturatedCDC:
		return 1 << 40 // far beyond any run length: a hang, not a slowdown
	case CacheDisabledWays:
		return 0xFE // ways 1-7 of an 8-way LLC: capacity collapses 8x
	case CacheTagFlip:
		return 1 // corrupt every fill
	case RNGBiased:
		return int64(^uint32(7)) // clear the low 3 victim bits: always way 0
	case BusStarvation:
		return 5000 // penalty cycles per starved grant
	case MemOverrun:
		return 300 // cycles past nominal service, well beyond the UBD slack
	default:
		return 0
	}
}

// Plan is a deterministic set of fault injections, armed together.
type Plan struct {
	Injections []Injection `json:"injections"`
}

// Single returns a plan holding one injection of class c against core with
// the class-default magnitude.
func Single(c Class, core int) Plan {
	return Plan{Injections: []Injection{{Class: c, Core: core, Param: DefaultParam(c)}}}
}

// Validate checks the plan against a platform of `cores` cores with an
// llcWays-way LLC. It enforces the restrictions that keep injected
// platforms livelock-free: stuck PRNG sources must be stuck at zero (any
// other constant can livelock rejection sampling) and disabled-way masks
// must leave at least one way usable.
func (p Plan) Validate(cores, llcWays int) error {
	for i, inj := range p.Injections {
		if inj.Core != AllCores && (inj.Core < 0 || inj.Core >= cores) {
			return fmt.Errorf("fault: injection %d (%s): core %d out of range [0,%d)", i, inj.Class, inj.Core, cores)
		}
		param := inj.Param
		if param == 0 {
			param = DefaultParam(inj.Class)
		}
		switch inj.Class {
		case EFLStuckEAB, EFLDeadCRG, RNGStuck:
			// Parameterless; RNGStuck is stuck-at-zero by definition.
		case CohDroppedInval:
			if inj.Core == AllCores {
				return fmt.Errorf("fault: injection %d (%s): needs a specific target core", i, inj.Class)
			}
		case EFLSaturatedCDC, BusStarvation, MemOverrun:
			if param <= 0 {
				return fmt.Errorf("fault: injection %d (%s): magnitude must be positive", i, inj.Class)
			}
		case CacheTagFlip:
			if param <= 0 {
				return fmt.Errorf("fault: injection %d (%s): flip period must be positive", i, inj.Class)
			}
		case CacheDisabledWays:
			all := uint32(1)<<uint(llcWays) - 1
			if uint32(param)&all == 0 || uint32(param)&all == all {
				return fmt.Errorf("fault: injection %d (%s): mask %#x must disable some but not all of %d ways", i, inj.Class, param, llcWays)
			}
		case RNGBiased:
			if uint32(param) == ^uint32(0) {
				return fmt.Errorf("fault: injection %d (%s): identity mask injects nothing", i, inj.Class)
			}
		case JobPanic, NodeDrop, PeerSlow, Partition, StoreCorrupt, FlakyTransport:
			return fmt.Errorf("fault: injection %d (%s): software fault, not armable on a platform", i, inj.Class)
		default:
			return fmt.Errorf("fault: injection %d: unknown class %q", i, inj.Class)
		}
	}
	return nil
}
