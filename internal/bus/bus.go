// Package bus models the core↔LLC interconnect of the paper's platform
// (§4.1): a shared bus with a 2-cycle access slot and a *random* (lottery)
// arbitration policy (Jalle et al., "Bus designs for time-probabilistic
// multicore processors", DATE 2014). Random arbitration makes contention
// delays probabilistic, which is what MBPTA needs: the winner among the
// requests pending at a grant point is drawn uniformly.
//
// The bus is used in two regimes:
//
//   - Deployment: real requests arbitrate. The simulator calls Grant when
//     the conservative discrete-event condition holds (no core can still
//     inject an earlier request), which makes the lottery exact.
//
//   - Analysis: the task under analysis runs alone, so there is nothing to
//     arbitrate against — but its pWCET must hold under any co-runners.
//     AnalysisDelay draws the worst-case contention envelope: the access
//     competes against Ncores-1 always-ready phantom contenders, losing
//     each lottery round with probability (n-1)/n and waiting one full
//     transaction per loss. This is the upper-bounding usage of [13]
//     applied at analysis time, identically for EFL and for cache
//     partitioning so the comparison stays fair.
package bus

import (
	"fmt"

	"efl/internal/metrics"
	"efl/internal/rng"
)

// Request is one pending bus transaction.
type Request struct {
	Core    int   // requesting core
	Arrival int64 // cycle the request reached the bus
	Tag     int64 // caller-defined correlation tag (opaque)
}

// Stats aggregates bus activity.
type Stats struct {
	Transactions uint64
	WaitCycles   int64 // total grant - arrival over all transactions
	BusyCycles   int64 // total cycles the bus was held
}

// Bus is the shared interconnect. It is a passive arbiter: the simulator
// asks when the next grant can happen and then performs it.
type Bus struct {
	slot   int64 // arbitration slot (2 cycles in the paper)
	rnd    rng.Stream
	freeAt int64
	wait   []Request
	stats  Stats
	// waitHist distributes per-transaction arbitration waits (grant −
	// arrival), the bus leg of the cycle-accounting observability layer.
	waitHist metrics.Histogram

	// Fault-injection state (see the hooks below): core whose requests the
	// arbiter starves (-1 when healthy) and the extra delay it suffers when
	// it is finally granted.
	starveCore    int
	starvePenalty int64
}

// New creates a bus with the given arbitration slot length.
func New(slotCycles int64, rnd rng.Stream) *Bus {
	if slotCycles < 1 {
		panic("bus: slot must be at least one cycle")
	}
	return &Bus{slot: slotCycles, rnd: rnd, starveCore: -1}
}

// InjectStarvation arms an arbiter fault against one core: its requests
// lose every lottery round in which any other core competes, and when it is
// the only eligible requester its grant is still delayed by penalty cycles.
// Armed/disarmed by sim.Multicore between runs.
func (b *Bus) InjectStarvation(core int, penalty int64) {
	if penalty < 0 {
		panic("bus: negative starvation penalty")
	}
	b.starveCore = core
	b.starvePenalty = penalty
}

// ClearFaults restores fair lottery arbitration.
func (b *Bus) ClearFaults() {
	b.starveCore = -1
	b.starvePenalty = 0
}

// Slot returns the arbitration slot length in cycles.
func (b *Bus) Slot() int64 { return b.slot }

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// WaitHistogram returns a copy of the per-transaction arbitration-wait
// distribution (histograms are plain values; copying snapshots them).
func (b *Bus) WaitHistogram() metrics.Histogram { return b.waitHist }

// Reset clears queued requests and occupancy for a new run.
func (b *Bus) Reset() {
	b.freeAt = 0
	b.wait = b.wait[:0]
	b.stats = Stats{}
	b.waitHist.Reset()
}

// Reseed rewinds the bus to its just-constructed state with the lottery
// stream re-initialised as rng.New(seed) would be — equivalent to
// New(b.Slot(), rng.New(seed)) but reusing the queue's backing array.
func (b *Bus) Reseed(seed uint64) {
	b.rnd.Reseed(seed)
	b.Reset()
}

// Request enqueues a transaction request.
func (b *Bus) Request(r Request) { b.wait = append(b.wait, r) }

// HasWaiters reports whether any request is pending.
func (b *Bus) HasWaiters() bool { return len(b.wait) > 0 }

// NextGrantTime returns the earliest cycle the next grant can occur:
// max(bus free, earliest pending arrival). It panics without waiters.
func (b *Bus) NextGrantTime() int64 {
	if len(b.wait) == 0 {
		panic("bus: NextGrantTime without waiters")
	}
	min := b.wait[0].Arrival
	for _, r := range b.wait[1:] {
		if r.Arrival < min {
			min = r.Arrival
		}
	}
	if b.freeAt > min {
		return b.freeAt
	}
	return min
}

// Grant performs lottery arbitration at the next grant time among every
// request that has arrived by then, removes the winner from the queue, and
// occupies the bus for holdCycles (the winner's full transaction: slot +
// LLC access). It returns the winning request and the cycle its slot
// starts. The caller must ensure no request with an earlier arrival can
// still be injected (the conservative DES condition).
func (b *Bus) Grant(holdCycles int64) (Request, int64) {
	t := b.NextGrantTime()
	// Lottery without materialising the eligible set: count the eligible
	// requests, draw k, and take the k-th eligible in queue order. The
	// draw (one Intn over the eligible count) and the winner are exactly
	// the ones the build-a-slice version produced, with no allocation.
	eligible := 0
	for i := range b.wait {
		if b.wait[i].Arrival <= t {
			eligible++
		}
	}
	starvedOnly := false
	if b.starveCore >= 0 {
		// Fault injection: the starved core's requests are excluded from
		// the draw whenever another core competes; when it is alone its
		// grant is pushed back by the starvation penalty below.
		nonStarved := 0
		for i := range b.wait {
			if b.wait[i].Arrival <= t && b.wait[i].Core != b.starveCore {
				nonStarved++
			}
		}
		if nonStarved > 0 {
			eligible = nonStarved
		} else {
			starvedOnly = true
		}
	}
	k := b.rnd.Intn(eligible)
	winIdx := -1
	skipStarved := b.starveCore >= 0 && !starvedOnly
	for i := range b.wait {
		if b.wait[i].Arrival > t {
			continue
		}
		if skipStarved && b.wait[i].Core == b.starveCore {
			continue
		}
		if k == 0 {
			winIdx = i
			break
		}
		k--
	}
	win := b.wait[winIdx]
	b.wait = append(b.wait[:winIdx], b.wait[winIdx+1:]...)
	at := t
	if starvedOnly && win.Core == b.starveCore {
		at += b.starvePenalty
	}
	b.freeAt = at + holdCycles
	b.stats.Transactions++
	b.stats.WaitCycles += at - win.Arrival
	b.stats.BusyCycles += holdCycles
	b.waitHist.Observe(at - win.Arrival)
	return win, at
}

// AnalysisDelay draws the analysis-time contention delay of one bus access:
// the number of whole transactions (each holdCycles long) the access waits
// behind phantom contenders. With contenders other always-ready requesters
// the lottery is won each round with probability 1/(contenders+1), so the
// number of losing rounds is geometric. Returns the wait in cycles.
func AnalysisDelay(rnd rng.Stream, contenders int, holdCycles int64) int64 {
	if contenders < 0 {
		panic("bus: negative contenders")
	}
	if contenders == 0 {
		return 0
	}
	n := contenders + 1
	losses := int64(0)
	for int(rnd.Intn(n)) != 0 {
		losses++
	}
	return losses * holdCycles
}

// String implements fmt.Stringer for diagnostics.
func (b *Bus) String() string {
	return fmt.Sprintf("Bus{slot:%d freeAt:%d waiters:%d}", b.slot, b.freeAt, len(b.wait))
}
