package bus

import (
	"math"
	"testing"

	"efl/internal/rng"
)

func TestSingleRequester(t *testing.T) {
	b := New(2, rng.New(1))
	b.Request(Request{Core: 0, Arrival: 10})
	if !b.HasWaiters() {
		t.Fatal("waiter lost")
	}
	if g := b.NextGrantTime(); g != 10 {
		t.Fatalf("grant time %d", g)
	}
	win, at := b.Grant(12)
	if win.Core != 0 || at != 10 {
		t.Fatalf("grant = %+v at %d", win, at)
	}
	if b.HasWaiters() {
		t.Fatal("winner not dequeued")
	}
	// Next request while bus is held waits for freeAt.
	b.Request(Request{Core: 1, Arrival: 11})
	if g := b.NextGrantTime(); g != 22 {
		t.Fatalf("grant time during hold = %d, want 22", g)
	}
}

func TestGrantEligibility(t *testing.T) {
	// A request arriving after the grant time must not participate.
	b := New(2, rng.New(2))
	b.Request(Request{Core: 0, Arrival: 5})
	b.Request(Request{Core: 1, Arrival: 100})
	win, at := b.Grant(12)
	if win.Core != 0 || at != 5 {
		t.Fatalf("late request won: %+v at %d", win, at)
	}
	// Now the core-1 request is alone.
	win, at = b.Grant(12)
	if win.Core != 1 || at != 100 {
		t.Fatalf("second grant = %+v at %d", win, at)
	}
}

func TestLotteryFairness(t *testing.T) {
	// Two simultaneous requesters must each win ~half the lotteries.
	src := rng.New(3)
	wins := [2]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		b := New(2, src.Fork())
		b.Request(Request{Core: 0, Arrival: 0})
		b.Request(Request{Core: 1, Arrival: 0})
		w, _ := b.Grant(12)
		wins[w.Core]++
	}
	frac := float64(wins[0]) / trials
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("lottery biased: core0 wins %v", frac)
	}
}

func TestLotteryFourWay(t *testing.T) {
	src := rng.New(4)
	wins := [4]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		b := New(2, src.Fork())
		for c := 0; c < 4; c++ {
			b.Request(Request{Core: c, Arrival: 0})
		}
		w, _ := b.Grant(12)
		wins[w.Core]++
	}
	for c, n := range wins {
		frac := float64(n) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("core %d wins %v of 4-way lotteries", c, frac)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := New(2, rng.New(5))
	b.Request(Request{Core: 0, Arrival: 0})
	b.Grant(12) // wait 0, busy 12
	b.Request(Request{Core: 1, Arrival: 2})
	b.Grant(12) // grant at 12, wait 10
	st := b.Stats()
	if st.Transactions != 2 || st.WaitCycles != 10 || st.BusyCycles != 24 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReset(t *testing.T) {
	b := New(2, rng.New(6))
	b.Request(Request{Core: 0, Arrival: 0})
	b.Grant(12)
	b.Request(Request{Core: 0, Arrival: 0})
	b.Reset()
	if b.HasWaiters() || b.Stats() != (Stats{}) {
		t.Fatal("Reset incomplete")
	}
	// After reset the bus is free at cycle 0 again.
	b.Request(Request{Core: 0, Arrival: 3})
	if g := b.NextGrantTime(); g != 3 {
		t.Fatalf("freeAt not reset: %d", g)
	}
}

func TestAnalysisDelayDistribution(t *testing.T) {
	// Against 3 phantom contenders the win probability per round is 1/4:
	// mean losses = 3, so mean delay = 3 * hold.
	src := rng.New(7)
	const hold = 12
	const n = 100000
	var sum float64
	sawZero := false
	for i := 0; i < n; i++ {
		d := AnalysisDelay(src, 3, hold)
		if d%hold != 0 || d < 0 {
			t.Fatalf("delay %d not a multiple of hold", d)
		}
		if d == 0 {
			sawZero = true
		}
		sum += float64(d)
	}
	mean := sum / n
	if math.Abs(mean-3*hold) > hold/2 {
		t.Fatalf("mean analysis delay %v, want ~%d", mean, 3*hold)
	}
	if !sawZero {
		t.Fatal("immediate wins never happen")
	}
}

func TestAnalysisDelayNoContenders(t *testing.T) {
	src := rng.New(8)
	for i := 0; i < 100; i++ {
		if d := AnalysisDelay(src, 0, 12); d != 0 {
			t.Fatalf("delay with no contenders = %d", d)
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, rng.New(1)) },
		func() { New(2, rng.New(1)).NextGrantTime() },
		func() { AnalysisDelay(rng.New(1), -1, 12) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkGrant(b *testing.B) {
	bus := New(2, rng.New(1))
	for i := 0; i < b.N; i++ {
		bus.Request(Request{Core: i % 4, Arrival: int64(i)})
		bus.Grant(12)
	}
}
