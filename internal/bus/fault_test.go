package bus

import (
	"testing"

	"efl/internal/rng"
)

func TestInjectStarvation(t *testing.T) {
	b := New(2, rng.New(1))
	b.InjectStarvation(1, 100)
	// With a competitor pending, the starved core is never in the lottery:
	// its requests pile up while core 0 wins every draw.
	for round := 0; round < 20; round++ {
		b.Request(Request{Core: 0, Arrival: 0})
		b.Request(Request{Core: 1, Arrival: 0})
		win, _ := b.Grant(2)
		if win.Core == 1 {
			t.Fatalf("round %d: starved core won against a competitor", round)
		}
	}
	// Alone, the starved core is finally granted — with the penalty.
	if !b.HasWaiters() {
		t.Fatal("starved requests vanished from the queue")
	}
	for b.HasWaiters() {
		tg := b.NextGrantTime()
		win, at := b.Grant(2)
		if win.Core != 1 {
			t.Fatalf("unexpected winner %d draining the queue", win.Core)
		}
		if at != tg+100 {
			t.Fatalf("starved grant at %d, want grant time %d + penalty 100", at, tg)
		}
	}
}

func TestStarvationClearRestoresFairness(t *testing.T) {
	b := New(2, rng.New(2))
	b.InjectStarvation(0, 50)
	b.ClearFaults()
	wins := [2]int{}
	for round := 0; round < 200; round++ {
		b.Request(Request{Core: 0, Arrival: 0})
		b.Request(Request{Core: 1, Arrival: 0})
		win, _ := b.Grant(2)
		wins[win.Core]++
		b.Grant(2) // drain the loser
	}
	if wins[0] == 0 || wins[1] == 0 {
		t.Fatalf("cleared arbiter still unfair: wins %v", wins)
	}
}

func TestInjectStarvationRejectsNegativePenalty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative penalty did not panic")
		}
	}()
	New(2, rng.New(3)).InjectStarvation(0, -1)
}
