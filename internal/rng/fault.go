package rng

// Fault-model sources for the fault-injection subsystem (internal/fault).
// They wrap or replace a hardware structure's Source to model a broken
// PRNG: output stuck at a constant (a classic stuck-at fault on the
// generator's output register) or with individual bits forced to 0/1
// (bridging faults on the output bus). They are Sources like any other,
// so the hardware models stay oblivious to whether they are faulted.
//
// CAUTION: Intn/Int63n use rejection sampling for ranges that are not a
// power of two and will livelock on a constant source whose value falls in
// the rejected top band. Stuck-at-zero is always safe (zero is below every
// rejection limit); arbitrary stuck values are only safe for power-of-two
// draws. fault.Plan validation restricts stuck injections accordingly.

// StuckSource is a PRNG whose output is stuck at a constant value.
type StuckSource struct {
	V uint32
}

// Uint32 returns the stuck value.
func (s StuckSource) Uint32() uint32 { return s.V }

// Reseed is a no-op: a stuck generator stays stuck. Implementing Reseeder
// keeps Stream.Reseed safe while a fault plan is armed.
func (s StuckSource) Reseed(uint64) {}

// MaskSource forces output bits of an underlying source:
// out = (src & And) | Or. And = ^0, Or = 0 is the identity.
type MaskSource struct {
	Src Source
	And uint32
	Or  uint32
}

// Uint32 draws from the wrapped source and applies the bit forces.
func (m MaskSource) Uint32() uint32 { return m.Src.Uint32()&m.And | m.Or }

// Reseed forwards to the wrapped source when it supports reseeding, so a
// pooled platform can still be rewound while the fault is armed.
func (m MaskSource) Reseed(seed uint64) {
	if r, ok := m.Src.(Reseeder); ok {
		r.Reseed(seed)
	}
}
