package rng

import "testing"

func TestStuckSource(t *testing.T) {
	s := StuckSource{V: 0xdeadbeef}
	for i := 0; i < 4; i++ {
		if got := s.Uint32(); got != 0xdeadbeef {
			t.Fatalf("draw %d: %#x, want the stuck value", i, got)
		}
	}
	s.Reseed(12345) // must be a no-op: the fault survives reseeding
	if got := s.Uint32(); got != 0xdeadbeef {
		t.Fatalf("reseed unstuck the source: %#x", got)
	}
}

func TestMaskSource(t *testing.T) {
	base := New(7)
	healthy := New(7)
	m := MaskSource{Src: base.Src, And: ^uint32(0xff), Or: 0x01}
	for i := 0; i < 8; i++ {
		want := healthy.Uint32()&^uint32(0xff) | 0x01
		if got := m.Uint32(); got != want {
			t.Fatalf("draw %d: %#x, want %#x", i, got, want)
		}
	}
}

func TestMaskSourceReseedDelegates(t *testing.T) {
	base := New(1)
	m := MaskSource{Src: base.Src, And: ^uint32(0)}
	first := m.Uint32()
	m.Uint32()
	m.Reseed(1) // the underlying MWC stream must rewind
	if got := m.Uint32(); got != first {
		t.Fatalf("after reseed: %#x, want the stream's first draw %#x", got, first)
	}
}
