package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMWCDeterminism(t *testing.T) {
	a := NewMWC(42)
	b := NewMWC(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint32(), b.Uint32(); av != bv {
			t.Fatalf("step %d: same seed diverged: %#x vs %#x", i, av, bv)
		}
	}
}

func TestMWCSeedsDiffer(t *testing.T) {
	a := NewMWC(1)
	b := NewMWC(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 coincide on %d of 1000 outputs", same)
	}
}

func TestMWCDegenerateSeeds(t *testing.T) {
	// Every seed must yield a non-stuck generator.
	for _, seed := range []uint64{0, 1, ^uint64(0), 0xffffffff} {
		m := NewMWC(seed)
		first := m.Uint32()
		stuck := true
		for i := 0; i < 16; i++ {
			if m.Uint32() != first {
				stuck = false
				break
			}
		}
		if stuck {
			t.Errorf("seed %d produced a stuck generator", seed)
		}
	}
}

// chiSquareUniform computes the chi-square statistic of observed bucket
// counts against a uniform expectation.
func chiSquareUniform(counts []int, total int) float64 {
	exp := float64(total) / float64(len(counts))
	var x2 float64
	for _, c := range counts {
		d := float64(c) - exp
		x2 += d * d / exp
	}
	return x2
}

func TestMWCUniformBuckets(t *testing.T) {
	const buckets, n = 64, 64 * 2048
	s := New(7)
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	// 63 dof; 99.9% critical value ≈ 103.4.
	if x2 := chiSquareUniform(counts, n); x2 > 103.4 {
		t.Fatalf("chi-square %v too high for uniform buckets", x2)
	}
}

func TestCMWCUniformBuckets(t *testing.T) {
	const buckets, n = 64, 64 * 2048
	s := Stream{Src: NewCMWC(7)}
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	if x2 := chiSquareUniform(counts, n); x2 > 103.4 {
		t.Fatalf("chi-square %v too high for uniform buckets", x2)
	}
}

func TestMWCMonobit(t *testing.T) {
	// Rough NIST monobit: the fraction of one-bits must be very close to 1/2.
	m := NewMWC(99)
	ones := 0
	const words = 1 << 16
	for i := 0; i < words; i++ {
		v := m.Uint32()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	total := words * 32
	frac := float64(ones) / float64(total)
	if math.Abs(frac-0.5) > 0.005 {
		t.Fatalf("one-bit fraction %v too far from 0.5", frac)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 8, 100, 512, 4096} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRangeBounds(t *testing.T) {
	s := New(5)
	lo, hi := int64(0), int64(2000) // the EFL draw: [0, 2*MID]
	seenLo, seenHi := false, false
	for i := 0; i < 200000; i++ {
		v := s.Range(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Range(%d,%d) = %d out of range", lo, hi, v)
		}
		if v == lo {
			seenLo = true
		}
		if v == hi {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Errorf("range endpoints not reachable: lo=%v hi=%v", seenLo, seenHi)
	}
}

func TestRangeMean(t *testing.T) {
	// §3.4: draws from [0, 2*MID] must average to MID.
	s := New(11)
	const mid = 500
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Range(0, 2*mid))
	}
	mean := sum / n
	if math.Abs(mean-mid) > 5 {
		t.Fatalf("mean of U[0,2*%d] draws = %v, want ~%d", mid, mean, mid)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	err := quick.Check(func(nn uint8) bool {
		n := int(nn%32) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(17)
	const n, iters = 4, 40000
	counts := make([]int, n)
	for i := 0; i < iters; i++ {
		counts[s.Perm(n)[0]]++
	}
	// 3 dof; 99.9% critical ≈ 16.27.
	if x2 := chiSquareUniform(counts, iters); x2 > 16.27 {
		t.Fatalf("first element of Perm(4) not uniform: chi2=%v counts=%v", x2, counts)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(21)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams coincide on %d of 1000 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(23)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestMWCStateRoundTrip(t *testing.T) {
	m := NewMWC(31)
	for i := 0; i < 5; i++ {
		m.Uint32()
	}
	x, c := m.State()
	clone := &MWC{x: x, c: c}
	for i := 0; i < 100; i++ {
		if a, b := m.Uint32(), clone.Uint32(); a != b {
			t.Fatalf("state clone diverged at step %d", i)
		}
	}
}

func TestInt63nLarge(t *testing.T) {
	s := New(37)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := s.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func BenchmarkMWCUint32(b *testing.B) {
	m := NewMWC(1)
	for i := 0; i < b.N; i++ {
		_ = m.Uint32()
	}
}

func BenchmarkStreamIntnPow2(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(512)
	}
}

func BenchmarkStreamRange(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Range(0, 2000)
	}
}
