// Package rng provides the pseudo-random number generators used throughout
// the simulator.
//
// The paper's hardware access control unit uses a Multiply-With-Carry (MWC)
// generator (Marsaglia & Zaman, "A new class of random number generators",
// Annals of Applied Probability 1(3), 1991) because it is cheap in hardware,
// has a huge period and passes the statistical tests required for
// MBPTA-grade randomisation. MWC is therefore the default Source for every
// randomised hardware structure in this repository: random cache placement
// (RII generation), evict-on-miss victim selection, bus lottery arbitration
// and the EFL minimum inter-eviction delay draws.
//
// All generators implement the Source interface and are deterministic given
// a seed, which makes every experiment in the repository bit-reproducible.
package rng

import "fmt"

// Source is a deterministic stream of uniformly distributed 32-bit values.
// It is the only interface the hardware models depend on, mirroring the
// paper's observation that a single hardware PRNG providing 32 bits per
// cycle is "largely above the bandwidth needed" (§3.5).
type Source interface {
	// Uint32 returns the next 32 uniformly distributed bits.
	Uint32() uint32
}

// MWC is the Multiply-With-Carry generator x_{n} = (a*x_{n-1} + c_{n-1})
// mod 2^32 with carry c_n = floor((a*x_{n-1}+c_{n-1}) / 2^32).
//
// With multiplier a = 4294957665 (a "safe" multiplier: a*2^31 - 1 and
// a*2^32 - 1 are prime) the generator has period a*2^31 - 1 ≈ 2^62.5.
// The zero value is NOT usable; construct with NewMWC.
type MWC struct {
	x uint32 // current state
	c uint32 // current carry
}

// mwcMultiplier is George Marsaglia's MWC multiplier for a single-word
// generator with near-2^63 period (the same constant used by his
// "MWC" example generators).
const mwcMultiplier = 4294957665

// NewMWC returns an MWC generator seeded from seed. Degenerate states
// (x == 0 && c == 0, or the fixed point x == 2^32-1 && c == a-1) are
// remapped to safe states so that every uint64 seed yields a usable stream.
func NewMWC(seed uint64) *MWC {
	m := &MWC{}
	m.Reseed(seed)
	return m
}

// Uint32 advances the generator and returns the next 32 random bits.
func (m *MWC) Uint32() uint32 {
	t := uint64(mwcMultiplier)*uint64(m.x) + uint64(m.c)
	m.x = uint32(t)
	m.c = uint32(t >> 32)
	return m.x
}

// Reseed re-initialises the generator in place without allocating; NewMWC
// delegates here, so a reseeded generator is the state NewMWC(seed) would
// produce by construction. Platform pooling (sim.Multicore.Reuse) and the
// batch engine's per-lane rewind (sim.Multicore.Rewind) depend on both the
// equivalence and the zero-allocation property.
func (m *MWC) Reseed(seed uint64) {
	// Spread the seed bits with SplitMix64 so that nearby seeds produce
	// unrelated streams.
	s := splitMix64(&seed)
	m.x = uint32(s)
	m.c = uint32(s>>32) % (mwcMultiplier - 1)
	if m.x == 0 && m.c == 0 {
		m.x = 0x9e3779b9
	}
	if m.x == ^uint32(0) && m.c == mwcMultiplier-1 {
		m.c--
	}
	// Warm up: the first few outputs of MWC correlate with the raw seed.
	for i := 0; i < 8; i++ {
		m.Uint32()
	}
}

// Uint64 combines two generator words into 64 random bits, drawing the
// high word first — the same evaluation order as Stream.Uint64, so a bare
// MWC can stand in for a Stream when deriving child seeds without the
// interface boxing a Stream would require.
func (m *MWC) Uint64() uint64 {
	hi := uint64(m.Uint32())
	return hi<<32 | uint64(m.Uint32())
}

// State returns the internal (x, carry) pair, useful for checkpointing.
func (m *MWC) State() (x, c uint32) { return m.x, m.c }

// String implements fmt.Stringer for debugging.
func (m *MWC) String() string { return fmt.Sprintf("MWC{x:%#x c:%#x}", m.x, m.c) }

// CMWC is a complementary multiply-with-carry generator with lag r=8,
// period > 2^285. It is provided as a higher-quality alternative Source for
// software-side sampling (workload selection, statistical machinery) where
// hardware cost is irrelevant.
type CMWC struct {
	q [8]uint32
	c uint32
	i int
}

// cmwcMultiplier is a standard lag-8 CMWC multiplier.
const cmwcMultiplier = 987651386

// NewCMWC returns a CMWC generator seeded from seed.
func NewCMWC(seed uint64) *CMWC {
	g := &CMWC{}
	for i := range g.q {
		g.q[i] = uint32(splitMix64(&seed))
	}
	g.c = uint32(splitMix64(&seed)) % (cmwcMultiplier - 1)
	return g
}

// Uint32 advances the generator and returns the next 32 random bits.
func (g *CMWC) Uint32() uint32 {
	g.i = (g.i + 1) & 7
	t := uint64(cmwcMultiplier)*uint64(g.q[g.i]) + uint64(g.c)
	g.c = uint32(t >> 32)
	x := uint32(t) + g.c
	if x < g.c {
		x++
		g.c++
	}
	g.q[g.i] = ^x // complementary step
	return g.q[g.i]
}

// Reseed re-initialises the generator in place, equivalent to NewCMWC(seed).
func (g *CMWC) Reseed(seed uint64) { *g = *NewCMWC(seed) }

// splitMix64 is the SplitMix64 state mixer, used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream wraps a Source with convenience sampling methods. It is a value
// wrapper: copying a Stream shares the underlying Source.
type Stream struct {
	Src Source
}

// New returns a Stream over a fresh MWC generator seeded with seed.
func New(seed uint64) Stream { return Stream{Src: NewMWC(seed)} }

// Uint32 returns the next 32 random bits from the underlying source. The
// concrete-type check devirtualises the hot default source (MWC backs every
// randomised hardware structure): the same draw, via a direct inlineable
// call instead of an interface dispatch per 32 bits.
func (s Stream) Uint32() uint32 {
	if m, ok := s.Src.(*MWC); ok {
		return m.Uint32()
	}
	return s.Src.Uint32()
}

// Uint64 combines two source words into 64 random bits.
func (s Stream) Uint64() uint64 {
	hi := uint64(s.Uint32())
	return hi<<32 | uint64(s.Uint32())
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Rejection sampling removes modulo bias, which matters for the
// placement-uniformity guarantees of the random placement hash.
func (s Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint32(n)
	if un&(un-1) == 0 { // power of two: mask is exact
		return int(s.Uint32() & (un - 1))
	}
	// Rejection sampling over the largest multiple of n below 2^32.
	limit := ^uint32(0) - ^uint32(0)%un
	for {
		v := s.Uint32()
		if v < limit {
			return int(v % un)
		}
	}
}

// Int63n returns a uniformly distributed int64 in [0, n); it panics if n <= 0.
func (s Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	un := uint64(n)
	if un&(un-1) == 0 {
		return int64(s.Uint64() & (un - 1))
	}
	max := ^uint64(0) >> 1
	limit := max - max%un
	for {
		v := s.Uint64() >> 1
		if v < limit {
			return int64(v % un)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed integer in [lo, hi] inclusive.
// It panics if hi < lo. This is the draw the EFL count-down counter uses:
// a new MID value in [0, 2*MIDdesired] on every eviction (§3.4).
func (s Stream) Range(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Int63n(hi-lo+1)
}

// Perm returns a uniformly random permutation of [0, n) (Fisher-Yates).
// Used by the lottery bus to order simultaneous requesters.
func (s Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child stream. The child is seeded from the
// parent's output, so a single master seed can deterministically spawn the
// per-structure generators (one per cache, per core, per EFL unit ...).
func (s Stream) Fork() Stream {
	return New(s.Uint64())
}

// Reseeder is a Source that can be re-initialised in place.
type Reseeder interface {
	Reseed(seed uint64)
}

// Reseed rewinds the underlying source to the state a fresh generator
// seeded with seed would have. Because a Stream is a value wrapper over a
// shared Source pointer, every copy of the stream observes the reseed —
// this is what lets a pooled platform (sim.Multicore.Reuse) rewind all its
// forked streams without reallocating them. Panics if the Source does not
// implement Reseeder (both built-in generators do).
func (s Stream) Reseed(seed uint64) {
	r, ok := s.Src.(Reseeder)
	if !ok {
		panic("rng: Source does not support in-place reseeding")
	}
	r.Reseed(seed)
}
