package cache

// Level support for the pluggable hierarchy: a LevelSpec describes one
// level of the memory system (geometry, sharing, lookup latency, policy)
// and a Level pairs the spec with a live cache instance. The simulator
// walks an ordered []LevelSpec — level 0 is the per-core L1 pair, the
// last level is the shared LLC the EFL gate protects, and any levels in
// between are shared intermediates — instead of hardwiring IL1/DL1→LLC.

import "fmt"

// LevelSpec describes one level of the cache hierarchy.
type LevelSpec struct {
	Name          string // unique level name ("L1", "L2", "LLC", ...)
	SizeBytes     int    // per-instance capacity (per core when private)
	Ways          int    // associativity
	Shared        bool   // one instance for all cores (false: one per core)
	LatencyCycles int64  // lookup latency charged when the level is consulted
	Policy        Policy // placement/replacement paradigm (zero = TimeRandomised)
}

// Config materialises the cache geometry of the spec with the given line
// size (line size is a platform-wide property, not per level).
func (s LevelSpec) Config(lineBytes int) Config {
	return Config{
		Name:      s.Name,
		SizeBytes: s.SizeBytes,
		Ways:      s.Ways,
		LineBytes: lineBytes,
		Policy:    s.Policy,
	}
}

// Validate reports whether the spec is internally consistent for the given
// line size. Beyond the cache geometry checks it pins the hierarchy rules:
// positive latency, and (checked by the caller, which knows the position)
// the sharing constraints.
func (s LevelSpec) Validate(lineBytes int) error {
	if s.Name == "" {
		return fmt.Errorf("cache level: empty name")
	}
	if s.LatencyCycles <= 0 {
		return fmt.Errorf("cache level %q: latency %d cycles, want > 0", s.Name, s.LatencyCycles)
	}
	if s.SizeBytes&(s.SizeBytes-1) != 0 {
		return fmt.Errorf("cache level %q: size %d bytes is not a power of two", s.Name, s.SizeBytes)
	}
	if s.Ways&(s.Ways-1) != 0 {
		return fmt.Errorf("cache level %q: %d ways is not a power of two", s.Name, s.Ways)
	}
	return s.Config(lineBytes).Validate()
}

// Level is one live shared cache level: the spec it was built from plus
// the cache instance. (Private levels are per-core and live with the core.)
type Level struct {
	Spec LevelSpec
	*Cache
}

// Downgrade transitions the line holding addr from Modified to Shared on
// behalf of the coherence layer: the line stays resident but its dirty bit
// is cleared (the writeback the downgrade implies is the caller's to
// account). Returns whether the line was resident and whether it was dirty.
func (c *Cache) Downgrade(addr uint64) (resident, wasDirty bool) {
	la := c.LineAddr(addr)
	set := c.sets[c.setIndex(la)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			d := set[i].dirty
			if d {
				set[i].dirty = false
				c.dirtyCount--
			}
			return true, d
		}
	}
	return false, false
}
