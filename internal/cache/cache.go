// Package cache models the set-associative caches of the paper's platform:
// per-core first-level instruction and data caches (IL1/DL1) and the shared
// last-level cache (LLC).
//
// Two cache "paradigms" are supported (paper §1):
//
//   - Time-randomised (TR): random placement through the parametric hash of
//     package rnghash (re-parameterised with a fresh RII every run) and
//     Evict-on-Miss (EoM) random replacement. EoM is stateless: hits change
//     neither the cache contents nor any replacement metadata — only misses
//     (which create evictions) alter cache state. This is the property EFL
//     exploits (§3.3): bounding eviction frequency bounds all inter-task
//     cache interference.
//
//   - Time-deterministic (TD): modulo placement and LRU replacement, the
//     conventional design. Provided as a baseline and for the ablation
//     experiments.
//
// Hardware way-partitioning (the CP baseline, Paolieri ISCA'09) is modelled
// with per-access way masks: a task restricted to ways {0,1} can only look
// up, allocate into and evict from those ways.
//
// Caches are write-back with write-allocate and the hierarchy built from
// them is non-inclusive (§4.1): L1 fills do not force LLC residency and LLC
// evictions do not back-invalidate the L1s.
package cache

import (
	"fmt"

	"efl/internal/rng"
	"efl/internal/rnghash"
)

// Policy selects the cache paradigm.
type Policy int

const (
	// TimeRandomised selects random placement + Evict-on-Miss random
	// replacement (MBPTA-compliant, paper §3.2).
	TimeRandomised Policy = iota
	// TimeDeterministic selects modulo placement + LRU replacement.
	TimeDeterministic
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case TimeRandomised:
		return "time-randomised"
	case TimeDeterministic:
		return "time-deterministic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// WayMask restricts which ways of a set an access may use. Bit i set means
// way i is usable. The zero mask is invalid for accesses; use FullMask or a
// partition's mask.
type WayMask uint32

// FullMask returns the mask enabling ways [0, ways).
func FullMask(ways int) WayMask {
	if ways <= 0 || ways > 32 {
		panic("cache: ways out of range")
	}
	return WayMask(uint32(1)<<uint(ways)) - 1
}

// MaskRange returns the mask enabling ways [lo, lo+n).
func MaskRange(lo, n int) WayMask {
	if lo < 0 || n <= 0 || lo+n > 32 {
		panic("cache: bad mask range")
	}
	return (WayMask(uint32(1)<<uint(n)) - 1) << uint(lo)
}

// Count returns the number of enabled ways.
func (m WayMask) Count() int {
	n := 0
	for v := uint32(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Config describes a cache's geometry and policy.
type Config struct {
	Name      string // for diagnostics ("IL1-0", "LLC", ...)
	SizeBytes int    // total capacity
	Ways      int    // associativity
	LineBytes int    // line size
	Policy    Policy
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	if c.Ways > 32 {
		return fmt.Errorf("cache %q: more than 32 ways unsupported", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// line is one cache line's metadata. Tag stores the full line address
// (address >> log2(LineBytes)); with hashed placement the whole line
// address must be kept because the set index is not recoverable from it.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	owner int8 // partition owner, -1 if unowned; used for invariant checks
}

// Stats aggregates cache event counts.
type Stats struct {
	Accesses    uint64 // demand accesses (reads+writes)
	Hits        uint64
	Misses      uint64
	Evictions   uint64 // valid lines displaced by demand misses
	Writebacks  uint64 // dirty lines displaced (demand or forced)
	ForcedEvict uint64 // evictions caused by force-miss (CRG) requests
	Flushes     uint64 // whole-cache flushes (RII changes)
}

// MissRatio returns Misses/Accesses, or 0 when there were no accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit          bool
	Evicted      bool   // a valid line was displaced
	EvictedAddr  uint64 // line address of the displaced line
	EvictedDirty bool   // the displaced line needs a writeback
}

// Cache is a single set-associative cache instance. It is not safe for
// concurrent use; the simulator serialises accesses by construction.
type Cache struct {
	cfg       Config
	placement rnghash.Placement
	rnd       rng.Stream
	sets      [][]line
	lruAge    [][]uint32 // LRU timestamps, only maintained for TD policy
	lruClock  uint32
	synthTag  uint64 // counter for CRG artificial line tags
	stats     Stats
}

// synthTagBase marks CRG artificial line addresses; demand addresses in the
// simulated 32-bit physical space never reach this range.
const synthTagBase = uint64(1) << 62

// New creates a cache. rnd drives victim selection (and, for the TR policy,
// successive RIIs via NewRun). The cache starts empty with, for TR, a
// placement drawn from rnd.
func New(cfg Config, rnd rng.Stream) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, rnd: rnd}
	nsets := cfg.Sets()
	c.sets = make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		for w := range c.sets[i] {
			c.sets[i][w].owner = -1
		}
	}
	if cfg.Policy == TimeDeterministic {
		c.lruAge = make([][]uint32, nsets)
		ages := make([]uint32, nsets*cfg.Ways)
		for i := range c.lruAge {
			c.lruAge[i] = ages[i*cfg.Ways : (i+1)*cfg.Ways]
		}
		c.placement = rnghash.NewModulo(nsets)
	} else {
		c.placement = rnghash.New(nsets, rnghash.NewRII(rnd))
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr converts a byte address into a line address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	shift := uint(0)
	for 1<<shift < c.cfg.LineBytes {
		shift++
	}
	return addr >> shift
}

// NewRun prepares the cache for a fresh program run: contents are flushed
// (the paper's consistency requirement when the RII changes) and, for the
// TR policy, a new RII is drawn so that every address maps to a new random
// set. Returns the number of dirty lines that would have been written back.
func (c *Cache) NewRun() int {
	wb := c.Flush()
	if c.cfg.Policy == TimeRandomised {
		c.placement = rnghash.New(c.cfg.Sets(), rnghash.NewRII(c.rnd))
	}
	return wb
}

// Flush invalidates every line, returning the count of dirty lines
// (writebacks the flush would generate).
func (c *Cache) Flush() int {
	dirty := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				dirty++
			}
			l.valid, l.dirty, l.owner = false, false, -1
		}
	}
	c.stats.Flushes++
	c.stats.Writebacks += uint64(dirty)
	return dirty
}

// Contains reports whether the line holding addr is currently resident.
// It performs no state change and records no statistics (a debug/test probe,
// not a hardware access).
func (c *Cache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.sets[c.placement.Set(la)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}

// ProbeResult is the outcome of a non-mutating lookup.
type ProbeResult struct {
	Hit     bool // the line is resident within the masked ways
	FreeWay bool // a fill could use an invalid masked way (no eviction)
}

// Probe looks up addr within mask without changing any state and without
// recording statistics. The EFL hardware uses this distinction: a miss
// that can fill an invalid way performs no eviction and therefore is not
// gated by the eviction-allowed bit.
func (c *Cache) Probe(addr uint64, mask WayMask) ProbeResult {
	if mask == 0 {
		panic("cache: probe with empty way mask")
	}
	la := c.LineAddr(addr)
	set := c.sets[c.placement.Set(la)]
	var res ProbeResult
	for wi := range set {
		if mask&(1<<uint(wi)) == 0 {
			continue
		}
		if !set[wi].valid {
			res.FreeWay = true
			continue
		}
		if set[wi].tag == la {
			res.Hit = true
		}
	}
	return res
}

// Access performs a demand read (write=false) or write (write=true) of the
// line containing addr, restricted to the ways enabled in mask, on behalf
// of partition owner (use -1 when partitioning is off). On a miss the line
// is allocated (write-allocate) and a victim may be displaced.
func (c *Cache) Access(addr uint64, write bool, mask WayMask, owner int) AccessResult {
	if mask == 0 {
		panic("cache: access with empty way mask")
	}
	la := c.LineAddr(addr)
	si := c.placement.Set(la)
	set := c.sets[si]
	c.stats.Accesses++

	// Lookup across the allowed ways.
	for wi := range set {
		if mask&(1<<uint(wi)) == 0 {
			continue
		}
		if set[wi].valid && set[wi].tag == la {
			c.stats.Hits++
			if write {
				set[wi].dirty = true
			}
			// EoM random replacement is stateless on hits (§3.3); only
			// LRU updates its recency stack.
			if c.cfg.Policy == TimeDeterministic {
				c.touchLRU(si, wi)
			}
			return AccessResult{Hit: true}
		}
	}

	// Miss: allocate. Prefer an invalid way inside the mask.
	c.stats.Misses++
	victim := c.pickVictim(si, mask)
	res := AccessResult{}
	v := &set[victim]
	if v.valid {
		res.Evicted = true
		res.EvictedAddr = v.tag
		res.EvictedDirty = v.dirty
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
	}
	v.tag = la
	v.valid = true
	v.dirty = write
	v.owner = int8(owner)
	if c.cfg.Policy == TimeDeterministic {
		c.touchLRU(si, victim)
	}
	return res
}

// pickVictim chooses the way to fill within mask.
//
// Time-randomised (EoM): the victim is uniformly random among the masked
// ways *regardless of valid bits* — the Kosmidis DATE'13 design, whose
// replacement is stateless and never inspects the set. This is what makes
// every miss an eviction event (the property EFL's gate counts on) and
// what makes Equation 1's fully-associative factor exact from an empty
// cache.
//
// Time-deterministic (LRU): conventional — an invalid way if any,
// otherwise the least recently used masked way.
func (c *Cache) pickVictim(si int, mask WayMask) int {
	set := c.sets[si]
	if c.cfg.Policy == TimeDeterministic {
		for wi := range set {
			if mask&(1<<uint(wi)) != 0 && !set[wi].valid {
				return wi
			}
		}
		best, bestAge := -1, uint32(0)
		for wi := range set {
			if mask&(1<<uint(wi)) == 0 {
				continue
			}
			if best == -1 || c.lruAge[si][wi] < bestAge {
				best, bestAge = wi, c.lruAge[si][wi]
			}
		}
		return best
	}
	// EoM: uniformly random victim among the masked ways.
	n := mask.Count()
	k := c.rnd.Intn(n)
	for wi := 0; wi < c.cfg.Ways; wi++ {
		if mask&(1<<uint(wi)) == 0 {
			continue
		}
		if k == 0 {
			return wi
		}
		k--
	}
	panic("cache: victim selection fell through")
}

// touchLRU marks way wi of set si most recently used.
func (c *Cache) touchLRU(si, wi int) {
	c.lruClock++
	c.lruAge[si][wi] = c.lruClock
}

// AccessNoAlloc performs a no-allocate access: a hit behaves like Access
// (including LRU maintenance on the TD policy) but a miss changes nothing —
// the line is not fetched. This is the DL1 behaviour of a write-through,
// no-write-allocate design (paper footnote 5): stores update the DL1 only
// if the line is already present and always propagate outward. Lines are
// never dirtied (the outer level holds the authoritative copy).
func (c *Cache) AccessNoAlloc(addr uint64, mask WayMask, owner int) (hit bool) {
	if mask == 0 {
		panic("cache: access with empty way mask")
	}
	la := c.LineAddr(addr)
	si := c.placement.Set(la)
	set := c.sets[si]
	c.stats.Accesses++
	for wi := range set {
		if mask&(1<<uint(wi)) == 0 {
			continue
		}
		if set[wi].valid && set[wi].tag == la {
			c.stats.Hits++
			if c.cfg.Policy == TimeDeterministic {
				c.touchLRU(si, wi)
			}
			return true
		}
	}
	c.stats.Misses++
	return false
}

// ForceEvict implements the LLC side of a CRG force-miss request (§3.5):
// a request flagged force-miss behaves as a guaranteed miss, displacing a
// random victim. With random placement the victim set is uniformly
// distributed, so the hardware's "hash of an artificial address" is modelled
// as a uniform (set, way) draw. Returns eviction info (a dirty victim needs
// a writeback, which occupies memory bandwidth just like a demand one).
func (c *Cache) ForceEvict() AccessResult {
	si := c.rnd.Intn(len(c.sets))
	wi := c.rnd.Intn(c.cfg.Ways)
	v := &c.sets[si][wi]
	res := AccessResult{}
	c.stats.ForcedEvict++
	if v.valid {
		res.Evicted = true
		res.EvictedAddr = v.tag
		res.EvictedDirty = v.dirty
		if v.dirty {
			c.stats.Writebacks++
		}
	}
	// The artificial line stays resident (the way is occupied in hardware)
	// under a synthetic address that no demand access ever references.
	c.synthTag++
	v.tag = synthTagBase | c.synthTag
	v.valid = true
	v.dirty = false
	v.owner = -1
	return res
}

// Invalidate removes the line holding addr if resident, returning whether
// it was dirty. Used by tests and by non-inclusive hierarchy management.
func (c *Cache) Invalidate(addr uint64) (resident, dirty bool) {
	la := c.LineAddr(addr)
	set := c.sets[c.placement.Set(la)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			d := set[i].dirty
			set[i].valid, set[i].dirty, set[i].owner = false, false, -1
			return true, d
		}
	}
	return false, false
}

// ValidLines returns the number of currently valid lines (test/inspection).
func (c *Cache) ValidLines() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				n++
			}
		}
	}
	return n
}

// CheckInvariants verifies structural invariants, returning a descriptive
// error when one is violated. Intended for tests and debug builds:
//   - no duplicate valid tags within a set;
//   - every valid line's owner (when partitioned) occupies a way inside
//     that owner's registered mask.
func (c *Cache) CheckInvariants(ownerMask func(owner int) WayMask) error {
	for si := range c.sets {
		seen := map[uint64]int{}
		for wi := range c.sets[si] {
			l := c.sets[si][wi]
			if !l.valid {
				continue
			}
			if prev, dup := seen[l.tag]; dup {
				return fmt.Errorf("cache %s: set %d has tag %#x in ways %d and %d",
					c.cfg.Name, si, l.tag, prev, wi)
			}
			seen[l.tag] = wi
			if ownerMask != nil && l.owner >= 0 {
				if ownerMask(int(l.owner))&(1<<uint(wi)) == 0 {
					return fmt.Errorf("cache %s: set %d way %d holds owner %d outside its mask",
						c.cfg.Name, si, wi, l.owner)
				}
			}
		}
	}
	return nil
}
