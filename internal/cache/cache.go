// Package cache models the set-associative caches of the paper's platform:
// per-core first-level instruction and data caches (IL1/DL1) and the shared
// last-level cache (LLC).
//
// Two cache "paradigms" are supported (paper §1):
//
//   - Time-randomised (TR): random placement through the parametric hash of
//     package rnghash (re-parameterised with a fresh RII every run) and
//     Evict-on-Miss (EoM) random replacement. EoM is stateless: hits change
//     neither the cache contents nor any replacement metadata — only misses
//     (which create evictions) alter cache state. This is the property EFL
//     exploits (§3.3): bounding eviction frequency bounds all inter-task
//     cache interference.
//
//   - Time-deterministic (TD): modulo placement and LRU replacement, the
//     conventional design. Provided as a baseline and for the ablation
//     experiments.
//
// Hardware way-partitioning (the CP baseline, Paolieri ISCA'09) is modelled
// with per-access way masks: a task restricted to ways {0,1} can only look
// up, allocate into and evict from those ways.
//
// Caches are write-back with write-allocate and the hierarchy built from
// them is non-inclusive (§4.1): L1 fills do not force LLC residency and LLC
// evictions do not back-invalidate the L1s.
package cache

import (
	"fmt"
	"math/bits"

	"efl/internal/rng"
	"efl/internal/rnghash"
)

// Policy selects the cache paradigm.
type Policy int

const (
	// TimeRandomised selects random placement + Evict-on-Miss random
	// replacement (MBPTA-compliant, paper §3.2).
	TimeRandomised Policy = iota
	// TimeDeterministic selects modulo placement + LRU replacement.
	TimeDeterministic
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case TimeRandomised:
		return "time-randomised"
	case TimeDeterministic:
		return "time-deterministic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// WayMask restricts which ways of a set an access may use. Bit i set means
// way i is usable. The zero mask is invalid for accesses; use FullMask or a
// partition's mask.
type WayMask uint32

// FullMask returns the mask enabling ways [0, ways).
func FullMask(ways int) WayMask {
	if ways <= 0 || ways > 32 {
		panic("cache: ways out of range")
	}
	return WayMask(uint32(1)<<uint(ways)) - 1
}

// MaskRange returns the mask enabling ways [lo, lo+n).
func MaskRange(lo, n int) WayMask {
	if lo < 0 || n <= 0 || lo+n > 32 {
		panic("cache: bad mask range")
	}
	return (WayMask(uint32(1)<<uint(n)) - 1) << uint(lo)
}

// Count returns the number of enabled ways.
func (m WayMask) Count() int { return bits.OnesCount32(uint32(m)) }

// Config describes a cache's geometry and policy.
type Config struct {
	Name      string // for diagnostics ("IL1-0", "LLC", ...)
	SizeBytes int    // total capacity
	Ways      int    // associativity
	LineBytes int    // line size
	Policy    Policy
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	if c.Ways > 32 {
		return fmt.Errorf("cache %q: more than 32 ways unsupported", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// line is one cache line's metadata. Tag stores the full line address
// (address >> log2(LineBytes)); with hashed placement the whole line
// address must be kept because the set index is not recoverable from it.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	owner int8 // partition owner, -1 if unowned; used for invariant checks
}

// Stats aggregates cache event counts.
type Stats struct {
	Accesses    uint64 // demand accesses (reads+writes)
	Hits        uint64
	Misses      uint64
	Evictions   uint64 // valid lines displaced by demand misses
	Writebacks  uint64 // dirty lines displaced (demand or forced)
	ForcedEvict uint64 // evictions caused by force-miss (CRG) requests
	Flushes     uint64 // whole-cache flushes (RII changes)
	MemoHits    uint64 // hits answered by the last-hit memo (subset of Hits)
}

// MissRatio returns Misses/Accesses, or 0 when there were no accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit          bool
	Evicted      bool   // a valid line was displaced
	EvictedAddr  uint64 // line address of the displaced line
	EvictedDirty bool   // the displaced line needs a writeback
}

// Cache is a single set-associative cache instance. It is not safe for
// concurrent use; the simulator serialises accesses by construction.
//
// Placement state is inlined rather than held behind the rnghash.Placement
// interface: the set computation runs on every access of every simulated
// instruction, and a direct call on a concrete *Hash (or a masked index for
// the TD policy) is measurably cheaper than an interface dispatch.
type Cache struct {
	cfg       Config
	hash      rnghash.Hash // TR placement, re-parameterised in place per run
	modulo    bool         // TD placement: set = lineAddr & idxMask
	idxMask   uint64       // Sets()-1
	lineShift uint         // log2(LineBytes), precomputed in New
	eom       bool         // Policy == TimeRandomised (EoM replacement)
	allMask   WayMask      // FullMask(Ways)
	rnd       rng.Stream
	sets      [][]line
	lines     []line     // flat backing array of sets, for O(1) flushes
	lruAge    [][]uint32 // LRU timestamps, only maintained for TD policy
	lruClock  uint32
	synthTag  uint64 // counter for CRG artificial line tags
	stats     Stats

	// Last-hit memo: the line address, flat line index, way and set of the
	// most recently touched resident line. Spatial locality makes the next
	// access very often land on the same line (instruction fetch especially:
	// several sequential fetches per line), and the memo answers those hits
	// without the placement hash or the tag scan. Every mutation that could
	// displace the memoed line invalidates the memo; a memo hit is therefore
	// exactly equivalent to the full lookup (same set, same way, no
	// duplicate tags by invariant).
	memoLine uint64
	memoIdx  int32
	memoWay  int32
	memoSet  int32

	// Memo table: a direct-mapped translation memo (line address -> set/way)
	// covering lines beyond the single-entry memo. Unlike the single memo it
	// is not kept coherent with evictions; instead every probe is VERIFIED
	// against the actual line (valid bit and tag), so a stale entry can only
	// miss, never answer wrongly. A verified table hit is therefore exactly
	// the hit the full scan would find — same set, same way (tags within a
	// set are unique while no corrupt fill is resident) — obtained with one
	// line touch instead of the placement hash plus the way scan. Entries
	// are generation-stamped so a flush invalidates the whole table in O(1).
	memoTab     []memoEnt
	memoTabMask uint64
	memoGen     uint16
	// tagFaulted records that a fault-injected fill installed a corrupted
	// tag since the last flush. Corrupt tags can collide with resident
	// lines, breaking the unique-tags-per-set invariant the table probe and
	// the scans' first-match early exit rely on; while set, both fall back
	// to the exhaustive last-match scan.
	tagFaulted bool

	// validCount/dirtyCount track resident and dirty lines so Flush is O(1)
	// instead of a full-array scan per run. CheckInvariants cross-checks
	// them against the actual line states.
	validCount int
	dirtyCount int

	// victim way tables for partitioned masks: waysFor(mask)[k] is the
	// k-th enabled way, so an EoM victim draw is one Intn plus one index
	// instead of a popcount and a scan. Keyed linearly — a cache sees at
	// most a handful of distinct masks (one per partition).
	vtabMask []WayMask
	vtabWays [][]uint8

	// Fault-injection state (see fault.go). Zero values mean healthy.
	disabledWays WayMask    // ways unusable for victim selection
	flipBit      uint       // tag bit XORed on faulty fills
	flipPeriod   uint64     // >0: every flipPeriod-th Fill corrupts the tag
	fillCount    uint64     // fills since the flip fault was armed
	origSrc      rng.Source // pre-injection PRNG source, restored by ClearFaults
}

// synthTagBase marks CRG artificial line addresses; demand addresses in the
// simulated 32-bit physical space never reach this range.
const synthTagBase = uint64(1) << 62

// memoNone invalidates the last-hit memo: no demand line address (at most
// ~2^59 after the per-core address base) ever equals it.
const memoNone = ^uint64(0)

// memoEnt is one memo-table entry: the line address last installed at this
// slot, where it lived, and the generation it was recorded in.
type memoEnt struct {
	la  uint64
	set int32
	gen uint16
	way uint8
}

// New creates a cache. rnd drives victim selection (and, for the TR policy,
// successive RIIs via NewRun). The cache starts empty with, for TR, a
// placement drawn from rnd.
func New(cfg Config, rnd rng.Stream) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, rnd: rnd, allMask: FullMask(cfg.Ways), memoLine: memoNone}
	nsets := cfg.Sets()
	c.idxMask = uint64(nsets - 1)
	// At least one table slot per line (rounded up to a power of two for
	// mask indexing): a cache whose whole contents fit the table keeps
	// conflict evictions rare.
	tabSize := 1
	for tabSize < nsets*cfg.Ways {
		tabSize <<= 1
	}
	c.memoTab = make([]memoEnt, tabSize)
	c.memoTabMask = uint64(tabSize - 1)
	c.memoGen = 1
	for 1<<c.lineShift < cfg.LineBytes {
		c.lineShift++
	}
	c.sets = make([][]line, nsets)
	c.lines = make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = c.lines[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		for w := range c.sets[i] {
			c.sets[i][w].owner = -1
		}
	}
	if cfg.Policy == TimeDeterministic {
		c.lruAge = make([][]uint32, nsets)
		ages := make([]uint32, nsets*cfg.Ways)
		for i := range c.lruAge {
			c.lruAge[i] = ages[i*cfg.Ways : (i+1)*cfg.Ways]
		}
		c.modulo = true
	} else {
		c.eom = true
		c.hash = *rnghash.New(nsets, rnghash.NewRII(rnd))
	}
	return c
}

// Reseed rewinds the cache to its just-constructed state under a fresh
// stream seed: contents invalidated, statistics and clocks cleared, the
// victim/placement stream re-initialised as rng.New(seed) would be, and
// (for the TR policy) a fresh construction RII drawn from that stream.
// The result is bit-identical to New(cfg, rng.New(seed)) — the same PRNG
// draws are consumed in the same order — but the line arrays are reused,
// which is what makes platform pooling (sim.Multicore.Reuse) cheap.
func (c *Cache) Reseed(seed uint64) {
	c.rnd.Reseed(seed)
	clear(c.lines)
	for i := range c.lines {
		c.lines[i].owner = -1
	}
	for i := range c.lruAge {
		clear(c.lruAge[i])
	}
	c.lruClock = 0
	c.synthTag = 0
	c.validCount = 0
	c.dirtyCount = 0
	c.memoLine = memoNone
	c.invalidateMemoTab()
	c.stats = Stats{}
	if c.cfg.Policy == TimeRandomised {
		c.hash.Reseed(rnghash.NewRII(c.rnd))
	}
}

// setIndex maps a line address to its set: a masked index for the TD
// policy, the parametric hash for the TR policy. Both are direct calls.
func (c *Cache) setIndex(la uint64) int {
	if c.modulo {
		return int(la & c.idxMask)
	}
	return c.hash.Set(la)
}

// setMemo records the resident line (la, set si, way wi) as the last hit,
// in both the single-entry memo and the memo table.
func (c *Cache) setMemo(la uint64, si, wi int) {
	c.memoLine = la
	c.memoSet = int32(si)
	c.memoWay = int32(wi)
	c.memoIdx = int32(si*c.cfg.Ways + wi)
	e := &c.memoTab[la&c.memoTabMask]
	e.la, e.set, e.gen, e.way = la, int32(si), c.memoGen, uint8(wi)
}

// memoHit reports whether the memo answers a lookup of la within mask.
func (c *Cache) memoHit(la uint64, mask WayMask) bool {
	return la == c.memoLine && mask&(1<<uint(c.memoWay)) != 0
}

// tabProbe consults the memo table for la within mask. A returned hit is
// verified against the line itself (current generation, valid, tag match,
// way inside mask), so it is exactly the hit the full scan would report;
// any mismatch — including a resident corrupt tag, which suspends the
// unique-tag invariant — falls back to the scan with a miss here.
func (c *Cache) tabProbe(la uint64, mask WayMask) (si, wi int, ok bool) {
	e := &c.memoTab[la&c.memoTabMask]
	if e.la != la || e.gen != c.memoGen || c.tagFaulted {
		return 0, 0, false
	}
	wi = int(e.way)
	if mask&(1<<uint(wi)) == 0 {
		return 0, 0, false
	}
	l := &c.sets[e.set][wi]
	if !l.valid || l.tag != la {
		return 0, 0, false
	}
	return int(e.set), wi, true
}

// invalidateMemoTab retires every table entry in O(1) by advancing the
// generation stamp; on the (astronomically rare) wraparound the table is
// cleared so stale stamps cannot alias the new generation.
func (c *Cache) invalidateMemoTab() {
	c.memoGen++
	if c.memoGen == 0 {
		clear(c.memoTab)
		c.memoGen = 1
	}
	c.tagFaulted = false
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr converts a byte address into a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// NewRun prepares the cache for a fresh program run: contents are flushed
// (the paper's consistency requirement when the RII changes) and, for the
// TR policy, a new RII is drawn so that every address maps to a new random
// set. Returns the number of dirty lines that would have been written back.
func (c *Cache) NewRun() int {
	wb := c.Flush()
	if c.cfg.Policy == TimeRandomised {
		c.hash.Reseed(rnghash.NewRII(c.rnd))
	}
	return wb
}

// Flush invalidates every line, returning the count of dirty lines
// (writebacks the flush would generate). The dirty count comes from the
// maintained counter and the array is zeroed wholesale (memclr), so the
// per-run flush no longer scans every line twice.
func (c *Cache) Flush() int {
	dirty := c.dirtyCount
	clear(c.lines)
	c.validCount = 0
	c.dirtyCount = 0
	c.memoLine = memoNone
	c.invalidateMemoTab()
	c.stats.Flushes++
	c.stats.Writebacks += uint64(dirty)
	return dirty
}

// Contains reports whether the line holding addr is currently resident.
// It performs no state change and records no statistics (a debug/test probe,
// not a hardware access).
func (c *Cache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.sets[c.setIndex(la)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}

// ProbeResult is the outcome of a non-mutating lookup.
type ProbeResult struct {
	Hit     bool // the line is resident within the masked ways
	FreeWay bool // a fill could use an invalid masked way (no eviction)
}

// Probe looks up addr within mask without changing any state and without
// recording statistics. The EFL hardware uses this distinction: a miss
// that can fill an invalid way performs no eviction and therefore is not
// gated by the eviction-allowed bit.
func (c *Cache) Probe(addr uint64, mask WayMask) ProbeResult {
	lk := c.Lookup(addr, mask)
	return ProbeResult{Hit: lk.Hit, FreeWay: lk.FreeWay}
}

// Lookup is the fused probe: one placement hash and one tag scan produce
// everything both the hit path and the miss path of an LLC transaction
// need. It changes no state and records no statistics; complete it with
// CommitHit (hits) or Fill (misses). The set index and line address carried
// in the Lookup stay valid across an EFL eviction-allowed stall (the RII
// cannot change mid-run), so the fill does not hash or scan again.
type Lookup struct {
	Hit     bool // the line is resident within the masked ways
	FreeWay bool // a fill could use an invalid masked way (no eviction)
	way     int32
	set     int32
	line    uint64
}

// Lookup performs the fused non-mutating lookup of addr within mask.
// FreeWay is only meaningful when Hit is false (the miss path is the only
// consumer); a memo-answered hit does not compute it.
func (c *Cache) Lookup(addr uint64, mask WayMask) Lookup {
	if mask == 0 {
		panic("cache: lookup with empty way mask")
	}
	la := c.LineAddr(addr)
	if c.memoHit(la, mask) {
		c.stats.MemoHits++
		return Lookup{Hit: true, way: c.memoWay, set: c.memoSet, line: la}
	}
	// Table-answered hits behave like scan hits (nothing recorded — Probe
	// must stay statistics-free; MemoHits tracks the single-entry memo).
	if si, wi, ok := c.tabProbe(la, mask); ok {
		c.setMemo(la, si, wi)
		return Lookup{Hit: true, way: int32(wi), set: int32(si), line: la}
	}
	si := c.setIndex(la)
	set := c.sets[si]
	lk := Lookup{way: -1, set: int32(si), line: la}
	for wi := range set {
		if mask&(1<<uint(wi)) == 0 {
			continue
		}
		if !set[wi].valid {
			lk.FreeWay = true
			continue
		}
		if set[wi].tag == la {
			lk.Hit = true
			lk.way = int32(wi)
			if !c.tagFaulted {
				// Tags within a set are unique, so the first match is the
				// only match, and FreeWay is not consumed on hits.
				break
			}
		}
	}
	if lk.Hit {
		c.setMemo(la, si, int(lk.way))
	}
	return lk
}

// CommitHit completes a hitting Lookup as a demand access: statistics are
// recorded, a write dirties the line, and LRU recency is maintained on the
// TD policy. EoM replacement is stateless on hits (§3.3).
func (c *Cache) CommitHit(lk Lookup, write bool) {
	if !lk.Hit {
		panic("cache: CommitHit on a missing lookup")
	}
	c.stats.Accesses++
	c.stats.Hits++
	if write {
		l := &c.sets[lk.set][lk.way]
		if !l.dirty {
			l.dirty = true
			c.dirtyCount++
		}
	}
	if c.modulo {
		c.touchLRU(int(lk.set), int(lk.way))
	}
}

// Fill completes a missing Lookup as a demand allocation (write-allocate):
// statistics are recorded, a victim is selected within mask at fill time
// (set contents may have changed during an EFL stall — CRG force-misses
// can occupy ways — so valid bits are re-read here, exactly as a re-scan
// would) and the line is installed. The PRNG draw is the same single
// victim draw Access performs.
func (c *Cache) Fill(lk Lookup, write bool, mask WayMask, owner int) AccessResult {
	c.stats.Accesses++
	c.stats.Misses++
	si := int(lk.set)
	victim := c.pickVictim(si, mask)
	res := AccessResult{}
	v := &c.sets[si][victim]
	if v.valid {
		res.Evicted = true
		res.EvictedAddr = v.tag
		res.EvictedDirty = v.dirty
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			c.dirtyCount--
		}
	} else {
		c.validCount++
	}
	tag := lk.line
	if c.flipPeriod > 0 && c.fillTagFault() {
		tag ^= 1 << c.flipBit
		c.tagFaulted = true
	}
	v.tag = tag
	v.valid = true
	v.dirty = write
	v.owner = int8(owner)
	if write {
		c.dirtyCount++
	}
	if tag == lk.line {
		c.setMemo(lk.line, si, victim)
	} else {
		// The installed tag is corrupt: hardware would only rediscover the
		// line by scanning its own set, so the cross-set memo must not
		// advertise it under the flipped address.
		c.memoLine = memoNone
	}
	if c.modulo {
		c.touchLRU(si, victim)
	}
	return res
}

// Access performs a demand read (write=false) or write (write=true) of the
// line containing addr, restricted to the ways enabled in mask, on behalf
// of partition owner (use -1 when partitioning is off). On a miss the line
// is allocated (write-allocate) and a victim may be displaced.
func (c *Cache) Access(addr uint64, write bool, mask WayMask, owner int) AccessResult {
	if mask == 0 {
		panic("cache: access with empty way mask")
	}
	la := c.LineAddr(addr)

	// Same-line fast path: the memoed line answers the access without the
	// placement hash or the tag scan. Identical outcome to the scan below
	// (same stats, same dirty transition, same LRU touch, no PRNG draw).
	if c.memoHit(la, mask) {
		c.stats.Accesses++
		c.stats.Hits++
		c.stats.MemoHits++
		if write {
			l := &c.lines[c.memoIdx]
			if !l.dirty {
				l.dirty = true
				c.dirtyCount++
			}
		}
		if c.modulo {
			c.touchLRU(int(c.memoSet), int(c.memoWay))
		}
		return AccessResult{Hit: true}
	}

	// Memo-table fast path: a verified table hit is the hit the scan below
	// would find (same set, same way), with the same stats, dirty
	// transition and LRU touch.
	if si, wi, ok := c.tabProbe(la, mask); ok {
		c.stats.Accesses++
		c.stats.Hits++
		c.stats.MemoHits++
		if write {
			l := &c.sets[si][wi]
			if !l.dirty {
				l.dirty = true
				c.dirtyCount++
			}
		}
		c.setMemo(la, si, wi)
		if c.modulo {
			c.touchLRU(si, wi)
		}
		return AccessResult{Hit: true}
	}

	si := c.setIndex(la)
	set := c.sets[si]
	c.stats.Accesses++

	// Lookup across the allowed ways.
	for wi := range set {
		if mask&(1<<uint(wi)) == 0 {
			continue
		}
		if set[wi].valid && set[wi].tag == la {
			c.stats.Hits++
			if write && !set[wi].dirty {
				set[wi].dirty = true
				c.dirtyCount++
			}
			c.setMemo(la, si, wi)
			// EoM random replacement is stateless on hits (§3.3); only
			// LRU updates its recency stack.
			if c.modulo {
				c.touchLRU(si, wi)
			}
			return AccessResult{Hit: true}
		}
	}

	// Miss: allocate. Prefer an invalid way inside the mask.
	c.stats.Misses++
	victim := c.pickVictim(si, mask)
	res := AccessResult{}
	v := &set[victim]
	if v.valid {
		res.Evicted = true
		res.EvictedAddr = v.tag
		res.EvictedDirty = v.dirty
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			c.dirtyCount--
		}
	} else {
		c.validCount++
	}
	tag := la
	if c.flipPeriod > 0 && c.fillTagFault() {
		tag ^= 1 << c.flipBit
		c.tagFaulted = true
	}
	v.tag = tag
	v.valid = true
	v.dirty = write
	v.owner = int8(owner)
	if write {
		c.dirtyCount++
	}
	if tag == la {
		c.setMemo(la, si, victim)
	} else {
		// Corrupt install (fault injection): see Fill.
		c.memoLine = memoNone
	}
	if c.modulo {
		c.touchLRU(si, victim)
	}
	return res
}

// pickVictim chooses the way to fill within mask.
//
// Time-randomised (EoM): the victim is uniformly random among the masked
// ways *regardless of valid bits* — the Kosmidis DATE'13 design, whose
// replacement is stateless and never inspects the set. This is what makes
// every miss an eviction event (the property EFL's gate counts on) and
// what makes Equation 1's fully-associative factor exact from an empty
// cache.
//
// Time-deterministic (LRU): conventional — an invalid way if any,
// otherwise the least recently used masked way.
func (c *Cache) pickVictim(si int, mask WayMask) int {
	if c.disabledWays != 0 {
		// Fault injection: faulty ways cannot be allocated into. If the
		// fault wipes out the whole mask the draw falls back to the original
		// mask (the request must complete somewhere), which cannot happen
		// with the plans fault.Plan validation admits.
		if um := mask &^ c.disabledWays; um != 0 {
			mask = um
		}
	}
	if c.modulo {
		set := c.sets[si]
		for wi := range set {
			if mask&(1<<uint(wi)) != 0 && !set[wi].valid {
				return wi
			}
		}
		best, bestAge := -1, uint32(0)
		for wi := range set {
			if mask&(1<<uint(wi)) == 0 {
				continue
			}
			if best == -1 || c.lruAge[si][wi] < bestAge {
				best, bestAge = wi, c.lruAge[si][wi]
			}
		}
		return best
	}
	// EoM: uniformly random victim among the masked ways. The unpartitioned
	// mask — the common case — needs no table: way k is enabled way k, so
	// the draw Intn(Count(mask)) *is* the victim. Partitioned masks go
	// through a precomputed enabled-way table; either path performs exactly
	// the one Intn draw (same n, same stream position, same victim) the
	// popcount-and-scan version did.
	if mask == c.allMask {
		return c.rnd.Intn(c.cfg.Ways)
	}
	ways := c.waysFor(mask)
	return int(ways[c.rnd.Intn(len(ways))])
}

// waysFor returns (building on first use) the enabled-way table of mask.
func (c *Cache) waysFor(mask WayMask) []uint8 {
	for i, m := range c.vtabMask {
		if m == mask {
			return c.vtabWays[i]
		}
	}
	ways := make([]uint8, 0, mask.Count())
	for wi := 0; wi < c.cfg.Ways; wi++ {
		if mask&(1<<uint(wi)) != 0 {
			ways = append(ways, uint8(wi))
		}
	}
	c.vtabMask = append(c.vtabMask, mask)
	c.vtabWays = append(c.vtabWays, ways)
	return ways
}

// touchLRU marks way wi of set si most recently used.
func (c *Cache) touchLRU(si, wi int) {
	c.lruClock++
	c.lruAge[si][wi] = c.lruClock
}

// StatelessReadHits reports whether a read hit leaves the cache's contents
// and replacement state untouched — true for the TR policy, whose EoM
// replacement never inspects or updates recency on hits (§3.3), false for
// TD/LRU where every hit reorders the recency stack, and false while tag
// faults are armed (a corrupt fill clears the memo, which breaks the
// same-line => memo-hit reasoning below). Trace replay (cpu.Trace) uses
// this to elide statically-guaranteed same-line hits: under EoM such an
// access only counts statistics (and, for a store, dirties the memo line).
func (c *Cache) StatelessReadHits() bool { return c.eom && c.flipPeriod == 0 }

// BulkMemoHits records n read hits answered without performing the
// accesses. The caller asserts each elided access was a guaranteed
// memo-answered hit (same line as the previous access, line resident,
// policy with stateless read hits); the counters then advance exactly as n
// memo-path Access calls would. Trace replay uses this for the same-line
// runs it proves at trace-compile time.
func (c *Cache) BulkMemoHits(n uint64) {
	c.stats.Accesses += n
	c.stats.Hits += n
	c.stats.MemoHits += n
}

// MemoWriteHits records n store hits to the memo line without performing
// the accesses: the counters advance as n memo-path writes would, and the
// memoed line is dirtied (the transition fires on the first store only,
// exactly like n sequential memo-path writes). Same precondition as
// BulkMemoHits, plus a write-allocate cache so the memo line is resident.
func (c *Cache) MemoWriteHits(n uint64) {
	c.stats.Accesses += n
	c.stats.Hits += n
	c.stats.MemoHits += n
	l := &c.lines[c.memoIdx]
	if !l.dirty {
		l.dirty = true
		c.dirtyCount++
	}
}

// AccessNoAlloc performs a no-allocate access: a hit behaves like Access
// (including LRU maintenance on the TD policy) but a miss changes nothing —
// the line is not fetched. This is the DL1 behaviour of a write-through,
// no-write-allocate design (paper footnote 5): stores update the DL1 only
// if the line is already present and always propagate outward. Lines are
// never dirtied (the outer level holds the authoritative copy).
func (c *Cache) AccessNoAlloc(addr uint64, mask WayMask, owner int) (hit bool) {
	if mask == 0 {
		panic("cache: access with empty way mask")
	}
	la := c.LineAddr(addr)
	if c.memoHit(la, mask) {
		c.stats.Accesses++
		c.stats.Hits++
		c.stats.MemoHits++
		if c.modulo {
			c.touchLRU(int(c.memoSet), int(c.memoWay))
		}
		return true
	}
	if si, wi, ok := c.tabProbe(la, mask); ok {
		c.stats.Accesses++
		c.stats.Hits++
		c.stats.MemoHits++
		c.setMemo(la, si, wi)
		if c.modulo {
			c.touchLRU(si, wi)
		}
		return true
	}
	si := c.setIndex(la)
	set := c.sets[si]
	c.stats.Accesses++
	for wi := range set {
		if mask&(1<<uint(wi)) == 0 {
			continue
		}
		if set[wi].valid && set[wi].tag == la {
			c.stats.Hits++
			c.setMemo(la, si, wi)
			if c.modulo {
				c.touchLRU(si, wi)
			}
			return true
		}
	}
	c.stats.Misses++
	return false
}

// ForceEvict implements the LLC side of a CRG force-miss request (§3.5):
// a request flagged force-miss behaves as a guaranteed miss, displacing a
// random victim. With random placement the victim set is uniformly
// distributed, so the hardware's "hash of an artificial address" is modelled
// as a uniform (set, way) draw. Returns eviction info (a dirty victim needs
// a writeback, which occupies memory bandwidth just like a demand one).
func (c *Cache) ForceEvict() AccessResult {
	si := c.rnd.Intn(len(c.sets))
	wi := c.rnd.Intn(c.cfg.Ways)
	v := &c.sets[si][wi]
	res := AccessResult{}
	c.stats.ForcedEvict++
	if v.valid {
		res.Evicted = true
		res.EvictedAddr = v.tag
		res.EvictedDirty = v.dirty
		if v.dirty {
			c.stats.Writebacks++
			c.dirtyCount--
		}
	} else {
		c.validCount++
	}
	if int32(si*c.cfg.Ways+wi) == c.memoIdx {
		c.memoLine = memoNone
	}
	// The artificial line stays resident (the way is occupied in hardware)
	// under a synthetic address that no demand access ever references.
	c.synthTag++
	v.tag = synthTagBase | c.synthTag
	v.valid = true
	v.dirty = false
	v.owner = -1
	return res
}

// Invalidate removes the line holding addr if resident, returning whether
// it was dirty. Used by tests and by non-inclusive hierarchy management.
func (c *Cache) Invalidate(addr uint64) (resident, dirty bool) {
	la := c.LineAddr(addr)
	set := c.sets[c.setIndex(la)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			d := set[i].dirty
			set[i].valid, set[i].dirty, set[i].owner = false, false, -1
			c.validCount--
			if d {
				c.dirtyCount--
			}
			if la == c.memoLine {
				c.memoLine = memoNone
			}
			return true, d
		}
	}
	return false, false
}

// ValidLines returns the number of currently valid lines (test/inspection).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// CheckInvariants verifies structural invariants, returning a descriptive
// error when one is violated. Intended for tests and debug builds:
//   - no duplicate valid tags within a set;
//   - every valid line's owner (when partitioned) occupies a way inside
//     that owner's registered mask.
func (c *Cache) CheckInvariants(ownerMask func(owner int) WayMask) error {
	valid, dirty := 0, 0
	for i := range c.lines {
		if c.lines[i].valid {
			valid++
			if c.lines[i].dirty {
				dirty++
			}
		}
	}
	if valid != c.validCount || dirty != c.dirtyCount {
		return fmt.Errorf("cache %s: counters valid=%d dirty=%d but lines have %d/%d",
			c.cfg.Name, c.validCount, c.dirtyCount, valid, dirty)
	}
	if c.memoLine != memoNone {
		l := c.lines[c.memoIdx]
		if !l.valid || l.tag != c.memoLine {
			return fmt.Errorf("cache %s: stale memo line %#x at index %d",
				c.cfg.Name, c.memoLine, c.memoIdx)
		}
	}
	for si := range c.sets {
		seen := map[uint64]int{}
		for wi := range c.sets[si] {
			l := c.sets[si][wi]
			if !l.valid {
				continue
			}
			if prev, dup := seen[l.tag]; dup {
				return fmt.Errorf("cache %s: set %d has tag %#x in ways %d and %d",
					c.cfg.Name, si, l.tag, prev, wi)
			}
			seen[l.tag] = wi
			if ownerMask != nil && l.owner >= 0 {
				if ownerMask(int(l.owner))&(1<<uint(wi)) == 0 {
					return fmt.Errorf("cache %s: set %d way %d holds owner %d outside its mask",
						c.cfg.Name, si, wi, l.owner)
				}
			}
		}
	}
	return nil
}
