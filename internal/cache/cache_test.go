package cache

import (
	"math"
	"testing"
	"testing/quick"

	"efl/internal/rng"
)

func trCfg(name string, size, ways, lineB int) Config {
	return Config{Name: name, SizeBytes: size, Ways: ways, LineBytes: lineB, Policy: TimeRandomised}
}

func tdCfg(name string, size, ways, lineB int) Config {
	return Config{Name: name, SizeBytes: size, Ways: ways, LineBytes: lineB, Policy: TimeDeterministic}
}

// l1 returns the paper's IL1/DL1 geometry: 4KB, 4-way, 16B lines.
func l1(p Policy) Config {
	return Config{Name: "L1", SizeBytes: 4096, Ways: 4, LineBytes: 16, Policy: p}
}

// llc returns the paper's LLC geometry: 64KB, 8-way, 16B lines (512 sets).
func llc(p Policy) Config {
	return Config{Name: "LLC", SizeBytes: 64 * 1024, Ways: 8, LineBytes: 16, Policy: p}
}

func TestConfigGeometry(t *testing.T) {
	if s := l1(TimeRandomised).Sets(); s != 64 {
		t.Errorf("L1 sets = %d, want 64", s)
	}
	if s := llc(TimeRandomised).Sets(); s != 512 {
		t.Errorf("LLC sets = %d, want 512", s)
	}
}

func TestConfigValidateCases(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{l1(TimeRandomised), true},
		{llc(TimeDeterministic), true},
		{Config{Name: "zero"}, false},
		{trCfg("ways33", 33*64*16, 33, 16), false},
		{trCfg("sets3", 3*4*16, 4, 16), false},   // 3 sets
		{trCfg("line12", 64*4*12, 4, 12), false}, // non-pow2 line
		{trCfg("indivisible", 4097, 4, 16), false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate err=%v, ok want %v", tc.cfg.Name, err, tc.ok)
		}
	}
}

func TestFullMask(t *testing.T) {
	if FullMask(4) != 0xf {
		t.Errorf("FullMask(4) = %#x", FullMask(4))
	}
	if FullMask(8).Count() != 8 {
		t.Errorf("FullMask(8).Count() = %d", FullMask(8).Count())
	}
	if MaskRange(2, 3) != 0b11100 {
		t.Errorf("MaskRange(2,3) = %#b", MaskRange(2, 3))
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(l1(TimeRandomised), rng.New(1))
	full := FullMask(4)
	r := c.Access(0x1000, false, full, -1)
	if r.Hit {
		t.Fatal("first access hit an empty cache")
	}
	r = c.Access(0x1000, false, full, -1)
	if !r.Hit {
		t.Fatal("second access to same address missed")
	}
	// Same line, different byte.
	if r = c.Access(0x100f, false, full, -1); !r.Hit {
		t.Fatal("access to same 16B line missed")
	}
	// Next line.
	if r = c.Access(0x1010, false, full, -1); r.Hit {
		t.Fatal("access to next line hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	// Tiny fully-associative TR cache: 2 lines total.
	c := New(trCfg("tiny", 32, 2, 16), rng.New(2))
	full := FullMask(2)
	c.Access(0x00, true, full, -1) // dirty
	c.Access(0x10, true, full, -1) // dirty
	// Third distinct line must evict a dirty victim.
	r := c.Access(0x20, false, full, -1)
	if r.Hit || !r.Evicted || !r.EvictedDirty {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestReadEvictionNotDirty(t *testing.T) {
	c := New(trCfg("tiny", 32, 2, 16), rng.New(3))
	full := FullMask(2)
	c.Access(0x00, false, full, -1)
	c.Access(0x10, false, full, -1)
	r := c.Access(0x20, false, full, -1)
	if !r.Evicted || r.EvictedDirty {
		t.Fatalf("expected clean eviction, got %+v", r)
	}
}

func TestHitMarksDirty(t *testing.T) {
	c := New(trCfg("tiny", 32, 2, 16), rng.New(4))
	full := FullMask(2)
	c.Access(0x00, false, full, -1)       // clean fill
	c.Access(0x00, true, full, -1)        // write hit -> dirty
	c.Access(0x10, false, full, -1)       // fill second way
	r := c.Access(0x20, false, full, -1)  // evicts one of the two
	r2 := c.Access(0x30, false, full, -1) // evicts the other
	dirtyEvictions := 0
	for _, rr := range []AccessResult{r, r2} {
		if rr.EvictedDirty {
			dirtyEvictions++
		}
	}
	if dirtyEvictions != 1 {
		t.Fatalf("want exactly one dirty eviction, got %d", dirtyEvictions)
	}
}

// TestEoMHitsAreStateless is the property at the heart of the paper
// (§3.3): in an Evict-on-Miss TR cache, hits change nothing, so a
// hit-heavy co-runner cannot interfere. We verify that an arbitrary number
// of hits never displaces any resident line.
func TestEoMHitsAreStateless(t *testing.T) {
	c := New(l1(TimeRandomised), rng.New(5))
	full := FullMask(4)
	// Fill a few lines.
	addrs := []uint64{0x0, 0x100, 0x200, 0x300, 0x400, 0x500}
	for _, a := range addrs {
		c.Access(a, false, full, -1)
	}
	before := c.ValidLines()
	for i := 0; i < 10000; i++ {
		r := c.Access(addrs[i%len(addrs)], false, full, -1)
		if !r.Hit {
			t.Fatalf("iteration %d: resident line missed — hits must not disturb state", i)
		}
	}
	if c.ValidLines() != before {
		t.Fatalf("hit stream changed the number of valid lines: %d -> %d", before, c.ValidLines())
	}
}

// TestLRUReplacement verifies the TD policy evicts the least recently used
// way.
func TestLRUReplacement(t *testing.T) {
	// Direct control: 1 set, 2 ways (fully assoc, modulo placement).
	c := New(tdCfg("lru", 32, 2, 16), rng.New(6))
	full := FullMask(2)
	c.Access(0x00, false, full, -1) // A
	c.Access(0x10, false, full, -1) // B
	c.Access(0x00, false, full, -1) // touch A -> B is LRU
	r := c.Access(0x20, false, full, -1)
	if !r.Evicted || r.EvictedAddr != 0x10>>4 {
		t.Fatalf("want eviction of line 0x1 (B), got %+v", r)
	}
	// A must still hit.
	if rr := c.Access(0x00, false, full, -1); !rr.Hit {
		t.Fatal("A was evicted, LRU order broken")
	}
}

func TestTDModuloMapping(t *testing.T) {
	// In a TD cache, two addresses that differ only above the index bits
	// conflict deterministically; with 64-set 4-way L1, addresses 16B*64
	// apart share a set.
	c := New(l1(TimeDeterministic), rng.New(7))
	full := FullMask(4)
	stride := uint64(16 * 64)
	// Fill one set with 4 conflicting lines, then a 5th must evict.
	for i := uint64(0); i < 4; i++ {
		if r := c.Access(i*stride, false, full, -1); r.Evicted {
			t.Fatalf("premature eviction at %d", i)
		}
	}
	if r := c.Access(4*stride, false, full, -1); !r.Evicted {
		t.Fatal("5th conflicting line did not evict in a 4-way TD set")
	}
}

// TestRandomPlacementBreaksConflicts: the same 5-line conflict stream that
// guarantees an eviction in a TD cache only sometimes conflicts in a TR
// cache, and the conflict pattern changes across RIIs — the motivating
// property of TR caches (§3.2).
func TestRandomPlacementBreaksConflicts(t *testing.T) {
	stride := uint64(16 * 64) // one L1 index period: all lines share a TD set

	// TD: 5 strided lines land in the same 4-way set, guaranteeing an
	// eviction, every run.
	td := New(l1(TimeDeterministic), rng.New(8))
	full := FullMask(4)
	tdEvicted := false
	for i := uint64(0); i < 5; i++ {
		if r := td.Access(i*stride, false, full, -1); r.Evicted {
			tdEvicted = true
		}
	}
	if !tdEvicted {
		t.Fatal("TD cache did not evict on a 5-line same-set conflict stream")
	}

	// TR: random placement scatters the same 5 lines over 64 sets. An
	// EoM fill picks a uniformly random victim way (even when invalid
	// ways exist), so occasional valid-line displacement happens — but a
	// guaranteed conflict like the TD case must be rare (expected ~4%).
	src := rng.New(8)
	evictRuns := 0
	const runs = 300
	for run := 0; run < runs; run++ {
		c := New(l1(TimeRandomised), src.Fork())
		evicted := false
		for i := uint64(0); i < 5; i++ {
			if r := c.Access(i*stride, false, full, -1); r.Evicted {
				evicted = true
			}
		}
		if evicted {
			evictRuns++
		}
	}
	if evictRuns > runs/8 {
		t.Fatalf("random placement failed to break the conflict stream: %d/%d runs evicted", evictRuns, runs)
	}
}

func TestNewRunChangesMapping(t *testing.T) {
	c := New(llc(TimeRandomised), rng.New(9))
	full := FullMask(8)
	c.Access(0x1234, false, full, -1)
	if !c.Contains(0x1234) {
		t.Fatal("line not resident after fill")
	}
	if c.ValidLines() != 1 {
		t.Fatalf("valid lines = %d", c.ValidLines())
	}
	c.NewRun()
	if c.Contains(0x1234) {
		t.Fatal("NewRun did not flush contents")
	}
	if c.ValidLines() != 0 {
		t.Fatal("NewRun left valid lines")
	}
}

func TestFlushCountsDirty(t *testing.T) {
	c := New(l1(TimeRandomised), rng.New(10))
	full := FullMask(4)
	c.Access(0x10, true, full, -1)
	c.Access(0x20, true, full, -1)
	c.Access(0x30, false, full, -1)
	if wb := c.Flush(); wb != 2 {
		t.Fatalf("Flush writebacks = %d, want 2", wb)
	}
}

// TestPartitionIsolation is the CP property (Paolieri ISCA'09): tasks on
// disjoint way masks can never evict each other's lines.
func TestPartitionIsolation(t *testing.T) {
	c := New(llc(TimeRandomised), rng.New(11))
	maskA := MaskRange(0, 2) // ways 0-1
	maskB := MaskRange(2, 6) // ways 2-7
	// Task A fills a modest working set. A may self-evict a couple of its
	// own lines inside its 2-way partition (random placement collisions),
	// so snapshot what is actually resident before B runs.
	for a := uint64(0); a < 128*16; a += 16 {
		c.Access(a, false, maskA, 0)
	}
	var residents []uint64
	for a := uint64(0); a < 128*16; a += 16 {
		if c.Contains(a) {
			residents = append(residents, a)
		}
	}
	if len(residents) < 100 {
		t.Fatalf("only %d of A's 128 lines resident after fill; placement suspect", len(residents))
	}
	// Task B thrashes hard within its own partition.
	for i := 0; i < 3; i++ {
		for a := uint64(1 << 20); a < (1<<20)+8192*16; a += 16 {
			c.Access(a, true, maskB, 1)
		}
	}
	// Every A line that was resident must still be resident: B cannot
	// evict outside its mask.
	for _, a := range residents {
		if !c.Contains(a) {
			t.Fatalf("partition B evicted partition A line %#x", a)
		}
	}
	if err := c.CheckInvariants(func(owner int) WayMask {
		if owner == 0 {
			return maskA
		}
		return maskB
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionCapacity: a task restricted to 1 way of the LLC has only
// 512 lines of capacity and must thrash on a 1024-line working set.
func TestPartitionCapacity(t *testing.T) {
	c := New(llc(TimeRandomised), rng.New(12))
	mask1 := MaskRange(0, 1)
	var misses, accesses uint64
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 1024*16; a += 16 {
			r := c.Access(a, false, mask1, 0)
			accesses++
			if !r.Hit {
				misses++
			}
		}
	}
	ratio := float64(misses) / float64(accesses)
	if ratio < 0.5 {
		t.Fatalf("1-way partition on 2x working set: miss ratio %v, want thrashing (>0.5)", ratio)
	}
	// The same workload with all 8 ways must mostly hit after the first pass.
	c2 := New(llc(TimeRandomised), rng.New(13))
	full := FullMask(8)
	var misses2, accesses2 uint64
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 1024*16; a += 16 {
			r := c2.Access(a, false, full, 0)
			accesses2++
			if !r.Hit {
				misses2++
			}
		}
	}
	ratio2 := float64(misses2) / float64(accesses2)
	if ratio2 > ratio/2 {
		t.Fatalf("full cache miss ratio %v not clearly better than 1-way partition %v", ratio2, ratio)
	}
}

func TestForceEvictDisplacesResidents(t *testing.T) {
	c := New(llc(TimeRandomised), rng.New(14))
	full := FullMask(8)
	// Fill the entire LLC.
	for a := uint64(0); a < 4096*16; a += 16 {
		c.Access(a, false, full, -1)
	}
	start := 0
	for a := uint64(0); a < 4096*16; a += 16 {
		if c.Contains(a) {
			start++
		}
	}
	// A storm of CRG evictions must displace a substantial fraction.
	for i := 0; i < 2048; i++ {
		c.ForceEvict()
	}
	remain := 0
	for a := uint64(0); a < 4096*16; a += 16 {
		if c.Contains(a) {
			remain++
		}
	}
	if remain >= start {
		t.Fatalf("forced evictions displaced nothing: %d -> %d", start, remain)
	}
	lost := start - remain
	if lost < 1000 {
		t.Fatalf("2048 forced evictions removed only %d resident lines", lost)
	}
	if got := c.Stats().ForcedEvict; got != 2048 {
		t.Fatalf("ForcedEvict stat = %d", got)
	}
}

func TestForceEvictDirtyWriteback(t *testing.T) {
	c := New(trCfg("tiny", 32, 2, 16), rng.New(15))
	full := FullMask(2)
	c.Access(0x00, true, full, -1) // one dirty line resident
	wb := 0
	for i := 0; i < 40 && c.Contains(0x00); i++ {
		if r := c.ForceEvict(); r.EvictedDirty {
			wb++
		}
	}
	if c.Contains(0x00) {
		t.Fatal("40 forced evictions never displaced the only resident line")
	}
	if wb != 1 {
		t.Fatalf("dirty forced evictions = %d, want 1", wb)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writeback stat = %d", c.Stats().Writebacks)
	}
}

// TestEoMVictimUniform: the EoM victim is uniform over the ways and
// ignores valid bits — a single resident line in an 8-way set is displaced
// by one further miss with probability exactly 1/8.
func TestEoMVictimUniform(t *testing.T) {
	src := rng.New(16)
	displaced := 0
	const trials = 16000
	for i := 0; i < trials; i++ {
		// Fully associative: 1 set, 8 ways, one resident line A.
		c := New(trCfg("fa8", 8*16, 8, 16), src.Fork())
		full := FullMask(8)
		c.Access(0, false, full, -1)  // A
		c.Access(16, false, full, -1) // B: uniform victim among 8 ways
		if !c.Contains(0) {
			displaced++
		}
	}
	got := float64(displaced) / trials
	// Binomial(16000, 1/8): sd ≈ 0.0026; allow 4 sigma.
	if math.Abs(got-0.125) > 0.011 {
		t.Fatalf("P(single miss displaces resident line) = %v, want 1/8", got)
	}
}

// TestMissProbabilityMatchesEquation1 checks the fully-associative term of
// the paper's Equation 1: for sequence <A, B1..Bk, A> with all Bl missing,
// P(miss of second A) = 1 - ((W-1)/W)^k for a fully-associative EoM cache.
func TestMissProbabilityMatchesEquation1(t *testing.T) {
	src := rng.New(17)
	const W = 8
	for _, k := range []int{1, 4, 8, 16} {
		misses := 0
		const trials = 4000
		for i := 0; i < trials; i++ {
			c := New(trCfg("fa", W*16, W, 16), src.Fork())
			full := FullMask(W)
			// Fill all W ways with filler lines so every subsequent miss
			// evicts (the equation's regime).
			for f := uint64(0); f < W; f++ {
				c.Access(0x8000+f*16, false, full, -1)
			}
			c.Access(0, false, full, -1) // A: evicts one filler
			for b := 1; b <= k; b++ {
				c.Access(uint64(0x10000+b*16), false, full, -1) // Bl: unique, miss
			}
			if r := c.Access(0, false, full, -1); !r.Hit {
				misses++
			}
		}
		got := float64(misses) / trials
		want := 1 - math.Pow(float64(W-1)/float64(W), float64(k))
		if math.Abs(got-want) > 0.035 {
			t.Errorf("k=%d: P(miss)=%v, Equation 1 predicts %v", k, got, want)
		}
	}
}

func TestProbe(t *testing.T) {
	c := New(trCfg("tiny", 32, 2, 16), rng.New(40))
	full := FullMask(2)
	pr := c.Probe(0x00, full)
	if pr.Hit || !pr.FreeWay {
		t.Fatalf("empty-cache probe = %+v", pr)
	}
	c.Access(0x00, false, full, -1)
	pr = c.Probe(0x00, full)
	if !pr.Hit {
		t.Fatalf("resident probe = %+v", pr)
	}
	// Fill distinct lines until the single set reports no free way (EoM
	// victims are random, so a bounded number of extra fills may be
	// needed).
	for i := uint64(1); i < 64 && c.Probe(0x200, full).FreeWay; i++ {
		c.Access(i*16, false, full, -1)
	}
	pr = c.Probe(0x200, full)
	if pr.Hit || pr.FreeWay {
		t.Fatalf("full-set probe of absent line = %+v", pr)
	}
	// Probe is non-mutating and unrecorded.
	st := c.Stats()
	for i := 0; i < 100; i++ {
		c.Probe(uint64(i*16), full)
	}
	if c.Stats() != st {
		t.Fatal("Probe changed statistics")
	}
	if err := c.CheckInvariants(nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeMaskRestricted(t *testing.T) {
	c := New(llc(TimeRandomised), rng.New(41))
	maskA := MaskRange(0, 2)
	maskB := MaskRange(2, 6)
	c.Access(0x40, false, maskA, 0)
	if !c.Probe(0x40, maskA).Hit {
		t.Fatal("owner probe missed")
	}
	if c.Probe(0x40, maskB).Hit {
		t.Fatal("probe saw a line outside its mask")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(l1(TimeRandomised), rng.New(18))
	full := FullMask(4)
	c.Access(0x40, true, full, -1)
	res, dirty := c.Invalidate(0x40)
	if !res || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", res, dirty)
	}
	if c.Contains(0x40) {
		t.Fatal("line still resident after Invalidate")
	}
	res, _ = c.Invalidate(0x40)
	if res {
		t.Fatal("double Invalidate reported resident")
	}
}

func TestAccessEmptyMaskPanics(t *testing.T) {
	c := New(l1(TimeRandomised), rng.New(19))
	defer func() {
		if recover() == nil {
			t.Fatal("empty mask did not panic")
		}
	}()
	c.Access(0, false, 0, -1)
}

// Property: after any access sequence, a set never holds duplicate tags and
// valid lines never exceed capacity.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	src := rng.New(20)
	cfgs := []Config{l1(TimeRandomised), l1(TimeDeterministic), llc(TimeRandomised)}
	for _, cfg := range cfgs {
		c := New(cfg, src.Fork())
		traffic := src.Fork()
		full := FullMask(cfg.Ways)
		for i := 0; i < 50000; i++ {
			addr := uint64(traffic.Intn(1 << 18))
			c.Access(addr, traffic.Intn(4) == 0, full, -1)
			if i%4096 == 0 {
				if err := c.CheckInvariants(nil); err != nil {
					t.Fatalf("%s after %d accesses: %v", cfg.Name, i, err)
				}
			}
		}
		if err := c.CheckInvariants(nil); err != nil {
			t.Fatal(err)
		}
		if v := c.ValidLines(); v > cfg.Sets()*cfg.Ways {
			t.Fatalf("%s: %d valid lines exceed capacity", cfg.Name, v)
		}
		st := c.Stats()
		if st.Hits+st.Misses != st.Accesses {
			t.Fatalf("%s: hits+misses != accesses: %+v", cfg.Name, st)
		}
	}
}

// Property test via testing/quick: residency after a fill.
func TestQuickFillThenContains(t *testing.T) {
	src := rng.New(21)
	c := New(llc(TimeRandomised), src.Fork())
	full := FullMask(8)
	err := quick.Check(func(addr uint32) bool {
		c.Access(uint64(addr), false, full, -1)
		return c.Contains(uint64(addr))
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLineAddr(t *testing.T) {
	c := New(l1(TimeRandomised), rng.New(22))
	for _, tc := range []struct{ addr, want uint64 }{
		{0, 0}, {15, 0}, {16, 1}, {17, 1}, {0x1000, 0x100},
	} {
		if got := c.LineAddr(tc.addr); got != tc.want {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", tc.addr, got, tc.want)
		}
	}
}

func TestStatsMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty stats miss ratio != 0")
	}
	s = Stats{Accesses: 10, Misses: 4}
	if s.MissRatio() != 0.4 {
		t.Fatalf("MissRatio = %v", s.MissRatio())
	}
}

func TestPolicyString(t *testing.T) {
	if TimeRandomised.String() != "time-randomised" || TimeDeterministic.String() != "time-deterministic" {
		t.Fatal("Policy.String broken")
	}
	if Policy(42).String() == "" {
		t.Fatal("unknown policy String empty")
	}
}

func BenchmarkAccessHitTR(b *testing.B) {
	c := New(llc(TimeRandomised), rng.New(1))
	full := FullMask(8)
	c.Access(0x1000, false, full, -1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false, full, -1)
	}
}

func BenchmarkAccessMissTR(b *testing.B) {
	c := New(llc(TimeRandomised), rng.New(1))
	full := FullMask(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*16, false, full, -1)
	}
}

func TestAccessNoAlloc(t *testing.T) {
	c := New(trCfg("wt", 32, 2, 16), rng.New(50))
	full := FullMask(2)
	// Miss: nothing allocated, stats recorded.
	if hit := c.AccessNoAlloc(0x00, full, -1); hit {
		t.Fatal("empty cache reported a hit")
	}
	if c.Contains(0x00) {
		t.Fatal("no-alloc access allocated")
	}
	st := c.Stats()
	if st.Accesses != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Hit after a regular fill; the line must stay clean.
	c.Access(0x00, false, full, -1)
	if hit := c.AccessNoAlloc(0x00, full, -1); !hit {
		t.Fatal("resident line missed")
	}
	// Evicting the line must not require a writeback (never dirtied).
	_, dirty := c.Invalidate(0x00)
	if dirty {
		t.Fatal("write-through path dirtied the line")
	}
}

func TestAccessNoAllocLRUTouch(t *testing.T) {
	// On the TD policy a no-alloc hit must refresh recency.
	c := New(tdCfg("wtlru", 32, 2, 16), rng.New(51))
	full := FullMask(2)
	c.Access(0x00, false, full, -1) // A
	c.Access(0x10, false, full, -1) // B
	c.AccessNoAlloc(0x00, full, -1) // touch A -> B becomes LRU
	r := c.Access(0x20, false, full, -1)
	if r.EvictedAddr != 0x10>>4 {
		t.Fatalf("LRU not refreshed by no-alloc hit: evicted %#x", r.EvictedAddr)
	}
}

func TestAccessNoAllocEmptyMaskPanics(t *testing.T) {
	c := New(trCfg("wt", 32, 2, 16), rng.New(52))
	defer func() {
		if recover() == nil {
			t.Fatal("empty mask did not panic")
		}
	}()
	c.AccessNoAlloc(0, 0, -1)
}
