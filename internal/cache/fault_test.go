package cache

import (
	"testing"

	"efl/internal/rng"
)

// faultCfg: 4 sets, 4 ways, 16B lines, deterministic placement + LRU so
// victim choices in these tests are fully predictable.
func faultCfg() Config { return tdCfg("fault", 4*4*16, 4, 16) }

// setAddr returns the k-th distinct line address mapping to set 0.
func setAddr(k int) uint64 { return uint64(k) * 4 * 16 }

func TestInjectDisabledWays(t *testing.T) {
	c := New(faultCfg(), rng.New(1))
	// Only way 0 stays enabled: every fill lands there, so each access
	// evicts the previous resident even though three ways sit empty.
	c.InjectDisabledWays(FullMask(4) &^ 1)
	full := FullMask(4)
	c.Access(setAddr(0), false, full, -1)
	for k := 1; k < 4; k++ {
		c.Access(setAddr(k), false, full, -1)
		if c.Contains(setAddr(k - 1)) {
			t.Fatalf("access %d did not evict the single enabled way", k)
		}
		if !c.Contains(setAddr(k)) {
			t.Fatalf("access %d not resident", k)
		}
	}
	// Healthy again: the next fill takes an empty way, the resident stays.
	c.ClearFaults()
	c.Access(setAddr(4), false, full, -1)
	if !c.Contains(setAddr(3)) || !c.Contains(setAddr(4)) {
		t.Fatal("after ClearFaults a fill still displaced the resident line")
	}
}

func TestInjectDisabledWaysRejectsAll(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("disabling every way did not panic")
		}
	}()
	New(faultCfg(), rng.New(1)).InjectDisabledWays(FullMask(4))
}

func TestInjectTagFlip(t *testing.T) {
	c := New(faultCfg(), rng.New(2))
	c.InjectTagFlip(2, 1) // every fill stores tag ^ 0b100
	full := FullMask(4)
	addr := setAddr(0)
	c.Access(addr, false, full, -1)
	if c.Contains(addr) {
		t.Fatal("corrupted line still answers its real address")
	}
	// The line answers the flipped address instead: la 0 ^ 1<<2 = la 4,
	// which is setAddr(1) (la 4 = set 0) — resident under the wrong name.
	flipped := (c.LineAddr(addr) ^ 1<<2) << 4
	if !c.Contains(flipped) {
		t.Fatal("corrupted line not resident under the flipped address")
	}
	c.ClearFaults()
	c.Access(setAddr(8), false, full, -1)
	if !c.Contains(setAddr(8)) {
		t.Fatal("fills still corrupt tags after ClearFaults")
	}
}

func TestInjectTagFlipPeriod(t *testing.T) {
	c := New(faultCfg(), rng.New(3))
	c.InjectTagFlip(2, 3) // every third fill corrupts
	full := FullMask(4)
	c.Access(setAddr(0), false, full, -1)
	c.Access(setAddr(1), false, full, -1)
	if !c.Contains(setAddr(0)) || !c.Contains(setAddr(1)) {
		t.Fatal("non-periodic fill corrupted")
	}
	c.Access(setAddr(2), false, full, -1) // third fill: corrupt
	if c.Contains(setAddr(2)) {
		t.Fatal("third fill not corrupted")
	}
}

func TestInjectRNGCacheVictims(t *testing.T) {
	// Stuck-at-zero victim draws pin every eviction to enabled way 0 of a
	// randomised cache — observable as a fixed victim under a full set.
	c := New(trCfg("faulttr", 4*4*16, 4, 16), rng.New(4))
	c.InjectRNG(func(rng.Source) rng.Source { return rng.StuckSource{} })
	full := FullMask(4)
	// With the victim draw stuck at 0 every miss into the set fills the
	// same way, so each access evicts its predecessor — a healthy
	// randomised cache would mostly spread over the three empty ways.
	prev := addrForSet0(c, 0)
	c.Access(prev, false, full, -1)
	for k := 1; k < 6; k++ {
		a := addrForSet0(c, k)
		c.Access(a, false, full, -1)
		if c.Contains(prev) {
			t.Fatalf("stuck victim draw did not evict the previous line (%#x survived)", prev)
		}
		if !c.Contains(a) {
			t.Fatalf("line %#x not resident after its fill", a)
		}
		prev = a
	}
}

// addrForSet0 returns the k-th distinct address the randomised cache maps
// to the set of address 0 — placement is hashed per run, so the test asks
// the cache instead of assuming modulo.
func addrForSet0(c *Cache, k int) uint64 {
	target := c.setIndex(c.LineAddr(0))
	found := 0
	for a := uint64(0); ; a += 16 {
		if c.setIndex(c.LineAddr(a)) == target {
			if found == k {
				return a
			}
			found++
		}
	}
}
