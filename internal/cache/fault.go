package cache

import "efl/internal/rng"

// Fault-injection hooks, armed/disarmed by sim.Multicore between runs
// (never mid-run). Healthy caches pay one predictable compare per victim
// draw / fill; see cache.go for where each fault state is consulted.

// InjectDisabledWays marks the ways in disabled as unusable for victim
// selection: fills never allocate into them (their current contents stay
// resident, which is what a hard way failure mapped out by the fill logic
// looks like). Disabling every way of the cache is rejected.
func (c *Cache) InjectDisabledWays(disabled WayMask) {
	if disabled&c.allMask == c.allMask {
		panic("cache: fault would disable every way")
	}
	c.disabledWays = disabled & c.allMask
}

// InjectTagFlip makes every period-th Fill XOR bit `bit` into the stored
// tag: the filled line is resident but unfindable under its real address
// (and answers lookups of the flipped address instead) — a single-event
// upset in the tag array.
func (c *Cache) InjectTagFlip(bit uint, period uint64) {
	if period == 0 {
		panic("cache: tag-flip period must be positive")
	}
	c.flipBit = bit
	c.flipPeriod = period
	c.fillCount = 0
}

// fillTagFault advances the fill counter and reports whether this fill's
// tag is corrupted. Only called while the flip fault is armed.
func (c *Cache) fillTagFault() bool {
	c.fillCount++
	return c.fillCount%c.flipPeriod == 0
}

// InjectRNG replaces the cache's PRNG source with wrap(current), keeping
// the original for ClearFaults. The wrapper sees every victim draw and
// every per-run RII derivation.
func (c *Cache) InjectRNG(wrap func(rng.Source) rng.Source) {
	if c.origSrc == nil {
		c.origSrc = c.rnd.Src
	}
	c.rnd.Src = wrap(c.rnd.Src)
}

// ClearFaults restores the cache to its healthy configuration. Contents
// corrupted while a fault was armed are NOT repaired; callers quarantine
// or reseed the platform.
func (c *Cache) ClearFaults() {
	c.disabledWays = 0
	c.flipBit = 0
	c.flipPeriod = 0
	c.fillCount = 0
	if c.origSrc != nil {
		c.rnd.Src = c.origSrc
		c.origSrc = nil
	}
}
