// Package stats implements the statistical machinery MBPTA needs:
// descriptive statistics, empirical distribution functions, and the two
// independence/identical-distribution tests the paper applies to execution
// times (§4.2): the Wald-Wolfowitz runs test for independence and the
// two-sample Kolmogorov-Smirnov test for identical distribution.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrTooFewSamples is returned when a test or estimator is given fewer
// samples than it can meaningfully handle.
var ErrTooFewSamples = errors.New("stats: too few samples")

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median (average of the two central order
// statistics for even n). It panics on an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th empirical quantile of xs (0 <= q <= 1) using
// linear interpolation between order statistics (type-7, the common
// default). It panics on an empty slice or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile over an already ascending-sorted sample,
// without the copy and re-sort. Callers that hold a sorted sample (e.g.
// an ECDF, or POT after ranking the excesses) use this to avoid sorting
// the same data twice.
func QuantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (which is copied).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns F(x) = P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// CCDFAt returns the complementary CDF 1 - F(x) = P(X > x), the exceedance
// function MBPTA upper-bounds (§2.1).
func (e *ECDF) CCDFAt(x float64) float64 { return 1 - e.At(x) }

// Sorted returns the (ascending) sorted sample backing the ECDF. The caller
// must not modify it.
func (e *ECDF) Sorted() []float64 { return e.sorted }

// RunsTestResult holds the outcome of a Wald-Wolfowitz runs test.
type RunsTestResult struct {
	Runs     int     // observed number of runs
	N1, N2   int     // counts above/below the median
	Z        float64 // normal-approximation statistic
	AbsZ     float64 // |Z|; the paper's acceptance criterion is |Z| < 1.96
	Rejected bool    // true when independence is rejected at alpha=0.05
}

// WaldWolfowitz performs the runs test for independence used in MBPTA
// (§4.2): the sample is dichotomised around its median, the number of runs
// of consecutive same-side values is counted, and the standardised
// statistic Z is compared against the two-sided 5% critical value 1.96.
// Values equal to the median are discarded (the standard treatment).
func WaldWolfowitz(xs []float64) (RunsTestResult, error) {
	if len(xs) < 10 {
		return RunsTestResult{}, ErrTooFewSamples
	}
	med := Median(xs)
	var signs []bool
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	if len(signs) < 10 {
		return RunsTestResult{}, ErrTooFewSamples
	}
	n1, n2, runs := 0, 0, 1
	for i, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
		if i > 0 && s != signs[i-1] {
			runs++
		}
	}
	if n1 == 0 || n2 == 0 {
		// Constant-side sample: a single run; treat as dependent.
		return RunsTestResult{Runs: 1, N1: n1, N2: n2, Z: math.Inf(-1),
			AbsZ: math.Inf(1), Rejected: true}, nil
	}
	fn1, fn2 := float64(n1), float64(n2)
	n := fn1 + fn2
	meanRuns := 2*fn1*fn2/n + 1
	varRuns := 2 * fn1 * fn2 * (2*fn1*fn2 - n) / (n * n * (n - 1))
	if varRuns <= 0 {
		return RunsTestResult{}, ErrTooFewSamples
	}
	z := (float64(runs) - meanRuns) / math.Sqrt(varRuns)
	r := RunsTestResult{Runs: runs, N1: n1, N2: n2, Z: z, AbsZ: math.Abs(z)}
	r.Rejected = r.AbsZ >= 1.96
	return r, nil
}

// KSResult holds the outcome of a Kolmogorov-Smirnov test.
type KSResult struct {
	D        float64 // KS statistic: max |F1 - F2|
	PValue   float64 // asymptotic p-value
	Rejected bool    // true when identical distribution is rejected at alpha=0.05
}

// KolmogorovSmirnov2 performs the two-sample KS test the paper uses for the
// identical-distribution hypothesis (§4.2): the acceptance criterion is
// p-value > 0.05.
func KolmogorovSmirnov2(a, b []float64) (KSResult, error) {
	if len(a) < 5 || len(b) < 5 {
		return KSResult{}, ErrTooFewSamples
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	na, nb := len(sa), len(sb)
	var d float64
	i, j := 0, 0
	for i < na && j < nb {
		if sa[i] <= sb[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	en := math.Sqrt(float64(na) * float64(nb) / float64(na+nb))
	p := ksPValue((en + 0.12 + 0.11/en) * d)
	return KSResult{D: d, PValue: p, Rejected: p <= 0.05}, nil
}

// KolmogorovSmirnov1 performs a one-sample KS test of xs against the CDF
// cdf. Used to validate distribution fits (e.g. the Gumbel fit in MBPTA).
func KolmogorovSmirnov1(xs []float64, cdf func(float64) float64) (KSResult, error) {
	if len(xs) < 5 {
		return KSResult{}, ErrTooFewSamples
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	en := math.Sqrt(n)
	p := ksPValue((en + 0.12 + 0.11/en) * d)
	return KSResult{D: d, PValue: p, Rejected: p <= 0.05}, nil
}

// ksPValue evaluates the Kolmogorov distribution's survival function
// Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2)
// (Numerical Recipes' probks).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum, fac, prev := 0.0, 2.0, 0.0
	for j := 1; j <= 100; j++ {
		term := fac * math.Exp(a2*float64(j)*float64(j))
		sum += term
		if math.Abs(term) <= 1e-10*prev || math.Abs(term) <= 1e-12*sum {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		fac = -fac
		prev = math.Abs(term)
	}
	return 1 // failed to converge: be conservative (do not reject)
}

// ChiSquareUniform computes the chi-square statistic of bucket counts
// against a uniform expectation; exposed for the RNG-quality experiments.
func ChiSquareUniform(counts []int) (stat float64, dof int) {
	total := 0
	for _, c := range counts {
		total += c
	}
	if len(counts) < 2 || total == 0 {
		return 0, 0
	}
	exp := float64(total) / float64(len(counts))
	var x2 float64
	for _, c := range counts {
		d := float64(c) - exp
		x2 += d * d / exp
	}
	return x2, len(counts) - 1
}

// Summary condenses a sample into the descriptive statistics the
// experiment reports print.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P25, P75, P95    float64
}

// Summarize computes a Summary of xs; it panics on an empty slice.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
		P25:    Quantile(xs, 0.25),
		P75:    Quantile(xs, 0.75),
		P95:    Quantile(xs, 0.95),
	}
}
