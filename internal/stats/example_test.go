package stats_test

import (
	"fmt"

	"efl/internal/stats"
)

// ExampleWaldWolfowitz applies the paper's independence test to a
// dependent series (a ramp) and an alternating one — both must be
// rejected, for opposite reasons (too few runs vs too many).
func ExampleWaldWolfowitz() {
	ramp := make([]float64, 100)
	alt := make([]float64, 100)
	for i := range ramp {
		ramp[i] = float64(i)
		alt[i] = float64(i % 2)
	}
	r1, _ := stats.WaldWolfowitz(ramp)
	r2, _ := stats.WaldWolfowitz(alt)
	fmt.Printf("ramp: runs=%d rejected=%v (clustered)\n", r1.Runs, r1.Rejected)
	fmt.Printf("alternation: runs=%d rejected=%v (anti-clustered)\n", r2.Runs, r2.Rejected)
	// Output:
	// ramp: runs=2 rejected=true (clustered)
	// alternation: runs=100 rejected=true (anti-clustered)
}

// ExampleKolmogorovSmirnov2 compares two halves of a drifting sample —
// the identical-distribution check MBPTA applies to execution times.
func ExampleKolmogorovSmirnov2() {
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = float64(i % 10)
		b[i] = float64(i%10) + 5 // shifted distribution
	}
	r, _ := stats.KolmogorovSmirnov2(a, b)
	fmt.Printf("D=%.2f rejected=%v\n", r.D, r.Rejected)
	// Output:
	// D=0.60 rejected=true
}
