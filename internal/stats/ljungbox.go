package stats

import "math"

// LjungBoxResult holds the outcome of a Ljung-Box portmanteau test for
// autocorrelation — a second, complementary independence check next to
// the Wald-Wolfowitz runs test: WW detects level clustering around the
// median, Ljung-Box detects linear autocorrelation at multiple lags.
type LjungBoxResult struct {
	Q        float64   // the Ljung-Box statistic
	Lags     int       // number of lags aggregated
	PValue   float64   // chi-square tail probability with Lags dof
	AutoCorr []float64 // sample autocorrelations r_1..r_Lags
	Rejected bool      // independence rejected at alpha = 0.05
}

// LjungBox computes the Ljung-Box statistic over the first `lags` sample
// autocorrelations of xs (in observation order):
//
//	Q = n(n+2) * sum_{k=1..m} r_k^2 / (n-k)
//
// Under independence Q is asymptotically chi-square with m degrees of
// freedom. lags <= 0 selects the common default min(10, n/5).
func LjungBox(xs []float64, lags int) (LjungBoxResult, error) {
	n := len(xs)
	if n < 20 {
		return LjungBoxResult{}, ErrTooFewSamples
	}
	if lags <= 0 {
		lags = 10
		if n/5 < lags {
			lags = n / 5
		}
	}
	if lags >= n {
		lags = n - 1
	}
	mean := Mean(xs)
	var c0 float64
	for _, x := range xs {
		d := x - mean
		c0 += d * d
	}
	if c0 == 0 {
		// Constant series: autocorrelation undefined; treat as dependent
		// (a constant sample carries no randomness to analyse).
		return LjungBoxResult{Q: math.Inf(1), Lags: lags, PValue: 0, Rejected: true}, nil
	}
	res := LjungBoxResult{Lags: lags, AutoCorr: make([]float64, lags)}
	fn := float64(n)
	for k := 1; k <= lags; k++ {
		var ck float64
		for i := 0; i+k < n; i++ {
			ck += (xs[i] - mean) * (xs[i+k] - mean)
		}
		r := ck / c0
		res.AutoCorr[k-1] = r
		res.Q += r * r / (fn - float64(k))
	}
	res.Q *= fn * (fn + 2)
	res.PValue = chiSquareSF(res.Q, float64(lags))
	res.Rejected = res.PValue <= 0.05
	return res, nil
}

// chiSquareSF returns P(X > x) for a chi-square distribution with k
// degrees of freedom, via the regularised upper incomplete gamma function
// Q(k/2, x/2).
func chiSquareSF(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return upperGammaRegularized(k/2, x/2)
}

// upperGammaRegularized computes Q(a, x) = Γ(a,x)/Γ(a) using the series
// for x < a+1 and the continued fraction otherwise (Numerical Recipes
// gammp/gammq).
func upperGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaCF(a, x)
}

// lowerGammaSeries computes P(a, x) by its power series.
func lowerGammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// upperGammaCF computes Q(a, x) by the Lentz continued fraction.
func upperGammaCF(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
