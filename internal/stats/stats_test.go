package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"efl/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	// Sample variance with n-1: sum sq dev = 32, /7.
	if v := Variance(xs); !almost(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases broken")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatal("Min/Max broken")
	}
	if m := Median(xs); !almost(m, 3.5, 1e-12) {
		t.Errorf("Median = %v", m)
	}
	if m := Median([]float64{1, 2, 3}); m != 2 {
		t.Errorf("odd Median = %v", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); !almost(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("singleton quantile broken")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { Min(nil) },
		func() { Max(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, tc := range cases {
		if got := e.At(tc.x); !almost(got, tc.want, 1e-12) {
			t.Errorf("ECDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := e.CCDFAt(2); !almost(got, 0.25, 1e-12) {
		t.Errorf("CCDF(2) = %v", got)
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestECDFMonotone(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = src.Float64() * 100
	}
	e := NewECDF(xs)
	err := quick.Check(func(a, b float64) bool {
		x, y := math.Mod(math.Abs(a), 100), math.Mod(math.Abs(b), 100)
		if x > y {
			x, y = y, x
		}
		return e.At(x) <= e.At(y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaldWolfowitzIndependent(t *testing.T) {
	// i.i.d. samples must pass (|Z| < 1.96) the vast majority of the time.
	src := rng.New(2)
	rejected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = src.Float64()
		}
		r, err := WaldWolfowitz(xs)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			rejected++
		}
	}
	// Nominal alpha = 5%; allow up to ~10%.
	if rejected > trials/10 {
		t.Fatalf("WW rejected %d/%d i.i.d. samples", rejected, trials)
	}
}

func TestWaldWolfowitzDetectsTrend(t *testing.T) {
	// A strongly trending series has far fewer runs than expected.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
	}
	r, err := WaldWolfowitz(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatalf("WW failed to reject a monotone trend: %+v", r)
	}
}

func TestWaldWolfowitzDetectsAlternation(t *testing.T) {
	// Perfect alternation has the maximum number of runs: also dependent.
	xs := make([]float64, 200)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 0
		} else {
			xs[i] = 1
		}
	}
	r, err := WaldWolfowitz(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected || r.Z < 0 {
		t.Fatalf("WW failed on alternation: %+v", r)
	}
}

func TestWaldWolfowitzTooFew(t *testing.T) {
	if _, err := WaldWolfowitz([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected ErrTooFewSamples")
	}
	// All samples equal to the median: everything discarded.
	same := make([]float64, 50)
	if _, err := WaldWolfowitz(same); err == nil {
		t.Fatal("expected error for constant sample")
	}
}

func TestKS2SameDistribution(t *testing.T) {
	src := rng.New(3)
	rejected := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 200)
		b := make([]float64, 200)
		for i := range a {
			a[i] = src.Float64()
			b[i] = src.Float64()
		}
		r, err := KolmogorovSmirnov2(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			rejected++
		}
	}
	if rejected > trials/8 {
		t.Fatalf("KS2 rejected %d/%d identically distributed pairs", rejected, trials)
	}
}

func TestKS2DifferentDistributions(t *testing.T) {
	src := rng.New(4)
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = src.Float64()       // U[0,1)
		b[i] = src.Float64() + 0.4 // shifted
	}
	r, err := KolmogorovSmirnov2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatalf("KS2 failed to reject shifted distributions: %+v", r)
	}
}

func TestKS1AgainstTrueCDF(t *testing.T) {
	src := rng.New(5)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.Float64()
	}
	uniformCDF := func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	}
	r, err := KolmogorovSmirnov1(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rejected {
		t.Fatalf("KS1 rejected uniform samples against the uniform CDF: %+v", r)
	}
	// And against a wrong CDF it must reject.
	wrongCDF := func(x float64) float64 { return uniformCDF(x * x) }
	r, err = KolmogorovSmirnov1(xs, wrongCDF)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatalf("KS1 accepted a wrong CDF: %+v", r)
	}
}

func TestKSTooFew(t *testing.T) {
	if _, err := KolmogorovSmirnov2([]float64{1}, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := KolmogorovSmirnov1([]float64{1, 2}, func(float64) float64 { return 0.5 }); err == nil {
		t.Fatal("expected error")
	}
}

func TestKSPValueMonotone(t *testing.T) {
	// Larger D (for same n) must give smaller p.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	slightly := []float64{1.1, 2.1, 3.1, 4.1, 5.1, 6.1, 7.1, 8.1, 9.1, 10.1}
	way := []float64{101, 102, 103, 104, 105, 106, 107, 108, 109, 110}
	r1, _ := KolmogorovSmirnov2(a, slightly)
	r2, _ := KolmogorovSmirnov2(a, way)
	if r2.PValue >= r1.PValue {
		t.Fatalf("p-values not monotone in separation: %v vs %v", r1.PValue, r2.PValue)
	}
}

func TestChiSquareUniform(t *testing.T) {
	stat, dof := ChiSquareUniform([]int{10, 10, 10, 10})
	if stat != 0 || dof != 3 {
		t.Fatalf("uniform counts: stat=%v dof=%d", stat, dof)
	}
	stat, _ = ChiSquareUniform([]int{40, 0, 0, 0})
	if stat <= 0 {
		t.Fatal("skewed counts gave non-positive stat")
	}
	if _, dof := ChiSquareUniform(nil); dof != 0 {
		t.Fatal("empty counts must have dof 0")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.Median, 5.5, 1e-12) || !almost(s.Mean, 5.5, 1e-12) {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestQuantileMatchesSortedExtremes(t *testing.T) {
	src := rng.New(6)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = src.Float64()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if Quantile(xs, 0) != s[0] || Quantile(xs, 1) != s[len(s)-1] {
		t.Fatal("extreme quantiles disagree with sorted sample")
	}
}

func BenchmarkWaldWolfowitz(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = WaldWolfowitz(xs)
	}
}

func BenchmarkKS2(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i], ys[i] = src.Float64(), src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = KolmogorovSmirnov2(xs, ys)
	}
}

// TestQuantileSortedMatchesQuantile pins the refactor that let sorted-
// sample holders skip the copy+sort: both entry points must agree exactly.
func TestQuantileSortedMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3, 5, 6, 0}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.85, 0.99, 1} {
		if got, want := QuantileSorted(s, q), Quantile(xs, q); got != want {
			t.Fatalf("q=%v: QuantileSorted %v != Quantile %v", q, got, want)
		}
	}
	if QuantileSorted([]float64{42}, 0.7) != 42 {
		t.Fatal("single-element quantile")
	}
}
