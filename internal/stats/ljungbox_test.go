package stats

import (
	"math"
	"testing"

	"efl/internal/rng"
)

func TestLjungBoxAcceptsIID(t *testing.T) {
	src := rng.New(31)
	rejected := 0
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = src.Float64()
		}
		r, err := LjungBox(xs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			rejected++
		}
	}
	// Nominal alpha = 5%; allow up to ~10%.
	if rejected > trials/10 {
		t.Fatalf("Ljung-Box rejected %d/%d i.i.d. samples", rejected, trials)
	}
}

func TestLjungBoxDetectsAR1(t *testing.T) {
	// Strongly autocorrelated AR(1) series must be rejected.
	src := rng.New(32)
	xs := make([]float64, 400)
	prev := 0.0
	for i := range xs {
		prev = 0.8*prev + src.Float64()
		xs[i] = prev
	}
	r, err := LjungBox(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatalf("AR(1) not rejected: %+v", r)
	}
	if r.AutoCorr[0] < 0.5 {
		t.Fatalf("lag-1 autocorrelation %v, want large", r.AutoCorr[0])
	}
}

func TestLjungBoxDetectsAlternation(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	r, err := LjungBox(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected || r.AutoCorr[0] > -0.5 {
		t.Fatalf("alternation not detected: %+v", r)
	}
}

func TestLjungBoxEdgeCases(t *testing.T) {
	if _, err := LjungBox(make([]float64, 5), 0); err == nil {
		t.Fatal("tiny sample accepted")
	}
	same := make([]float64, 50)
	r, err := LjungBox(same, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected {
		t.Fatal("constant series must be flagged")
	}
	// Explicit lag selection.
	src := rng.New(33)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = src.Float64()
	}
	r, err = LjungBox(xs, 5)
	if err != nil || r.Lags != 5 || len(r.AutoCorr) != 5 {
		t.Fatalf("lag selection broken: %+v, %v", r, err)
	}
}

func TestChiSquareSF(t *testing.T) {
	// Reference values: P(X > x) for chi-square.
	cases := []struct {
		x, k, want float64
	}{
		{0, 10, 1},
		{10, 10, 0.4405},   // median-ish
		{18.307, 10, 0.05}, // 95th percentile of chi2(10)
		{23.209, 10, 0.01}, // 99th
		{3.841, 1, 0.05},   // 95th of chi2(1)
		{31.410, 20, 0.05}, // 95th of chi2(20)
	}
	for _, c := range cases {
		got := chiSquareSF(c.x, c.k)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("chiSquareSF(%v, %v) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestGammaFunctions(t *testing.T) {
	// Q(a, 0) = 1; Q(a, inf) -> 0; Q(1, x) = exp(-x).
	if got := upperGammaRegularized(3, 0); got != 1 {
		t.Fatalf("Q(3,0) = %v", got)
	}
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		got := upperGammaRegularized(1, x)
		want := math.Exp(-x)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("Q(1,%v) = %v, want %v", x, got, want)
		}
	}
}

func BenchmarkLjungBox(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = LjungBox(xs, 0)
	}
}
