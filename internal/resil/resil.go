// Package resil holds the deterministic resilience primitives behind the
// estimation fleet's degraded-mode guarantees: a count-driven per-peer
// circuit breaker, a seeded exponential-backoff schedule, and the per-hop
// forwarding budget derived from a request's plan deadline.
//
// Everything here is deliberately clock-free or clock-bounded: the
// breaker transitions on request counts (consecutive failures open it,
// every Nth denied attempt admits a probe) rather than wall-clock timers,
// and backoff delays are pure functions of (seed, attempt) — so a chaos
// test replays the exact schedule a production incident produced, and the
// fleet's failure behaviour is provable rather than timing-lucky. This is
// the serving-layer analogue of the simulator's determinism contract: the
// paper's pWCET estimates are only trustworthy if the system around them
// degrades predictably too.
package resil

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: requests are denied without paying the peer's failure
	// latency; every ProbeEvery-th denial admits one probe instead.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: one probe is in flight; its outcome decides the
	// next state. Further requests are denied until it reports.
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker defaults.
const (
	// DefaultThreshold is the consecutive-failure count that opens a
	// closed breaker. Three strikes: a single flaky connection does not
	// eject a peer, a dead one is ejected within three requests.
	DefaultThreshold = 3
	// DefaultProbeEvery is the denial count between probe admissions on an
	// open breaker. Count-driven rather than a wall-clock cooldown: under
	// load the peer is re-probed quickly, while an idle fleet spends
	// nothing probing a corpse.
	DefaultProbeEvery = 8
)

// Breaker is a consecutive-failure circuit breaker: closed → open after
// Threshold straight failures, open → half-open when a probe is admitted
// (every ProbeEvery-th denied attempt), half-open → closed on probe
// success or back to open on probe failure. All transitions are driven by
// Allow/Success/Failure call counts — no timers — so breaker behaviour in
// tests and chaos campaigns is exactly reproducible.
type Breaker struct {
	mu         sync.Mutex
	threshold  int
	probeEvery int

	state      BreakerState
	consecFail int
	denied     int // denials since the breaker last opened

	opens   uint64
	probes  uint64
	denials uint64
}

// NewBreaker returns a closed breaker. Non-positive threshold or
// probeEvery select the defaults.
func NewBreaker(threshold, probeEvery int) *Breaker {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if probeEvery <= 0 {
		probeEvery = DefaultProbeEvery
	}
	return &Breaker{threshold: threshold, probeEvery: probeEvery, state: BreakerClosed}
}

// Allow reports whether a request to the peer may proceed. On an open
// breaker every ProbeEvery-th call is admitted as a probe (moving to
// half-open); the rest are denied instantly — the whole point: a dead
// peer stops costing a dial timeout per request.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		b.denials++
		return false
	default: // open
		b.denied++
		if b.denied%b.probeEvery == 0 {
			b.state = BreakerHalfOpen
			b.probes++
			return true
		}
		b.denials++
		return false
	}
}

// Success records a successful exchange with the peer: any state closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecFail = 0
	b.denied = 0
}

// Failure records a failed exchange. A half-open probe failure reopens
// immediately; a closed breaker opens after Threshold consecutive
// failures.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFail++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.consecFail >= b.threshold) {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.denied = 0
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats is a breaker's observable state for metrics endpoints.
type Stats struct {
	State               BreakerState `json:"state"`
	ConsecutiveFailures int          `json:"consecutive_failures"`
	Opens               uint64       `json:"opens"`
	Probes              uint64       `json:"probes"`
	Denials             uint64       `json:"denials"`
}

// Snapshot returns the breaker's counters.
func (b *Breaker) Snapshot() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		State:               b.state,
		ConsecutiveFailures: b.consecFail,
		Opens:               b.opens,
		Probes:              b.probes,
		Denials:             b.denials,
	}
}

// Backoff is a deterministic exponential-backoff schedule with full
// jitter: Delay(attempt) grows as Base·2^attempt capped at Max, jittered
// over (0, window] by a hash of (Seed, attempt) — the runner.Seed idiom —
// so two retriers with different seeds decorrelate while any single
// schedule replays exactly from its seed.
type Backoff struct {
	// Base is the first attempt's delay window (default 5ms).
	Base time.Duration
	// Max caps the window's exponential growth (default 250ms).
	Max time.Duration
	// Seed decorrelates concurrent retriers deterministically.
	Seed uint64
}

// Backoff defaults: small — this schedule paces steal attempts inside one
// request's deadline budget, it is not a client-level retry policy.
const (
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffMax  = 250 * time.Millisecond
)

// Delay returns the pause before retry `attempt` (0-based). Always
// positive, never above the cap, and a pure function of (Seed, attempt).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if attempt < 0 {
		attempt = 0
	}
	window := base
	for i := 0; i < attempt && window < max; i++ {
		window *= 2
	}
	if window > max {
		window = max
	}
	// Full jitter in (0, window]: FNV-style mix of seed and attempt,
	// the same derivation discipline as runner.Seed (stable identity in,
	// stable stream out; never zero).
	h := b.Seed ^ 0x9e3779b97f4a7c15
	h ^= uint64(attempt) + 1
	h *= 0x100000001b3
	h ^= h >> 29
	h *= 0x100000001b3
	h ^= h >> 32
	return time.Duration(h%uint64(window)) + 1
}

// SeedFromKey derives a Backoff seed from a request's cache key, so the
// retry schedule of any given request is reproducible from the request
// alone (the serving fleet has no per-request RNG to leak wall-clock
// nondeterminism through).
func SeedFromKey(key string) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range []byte(key) {
		h ^= uint64(c)
		h *= 0x100000001b3
		h ^= h >> 29
	}
	if h == 0 {
		h = 1
	}
	return h
}

// DefaultHopGrace pads a forwarded request's per-hop budget past the plan
// deadline: the peer legitimately needs the full deadline for the
// campaign itself, plus margin for queueing and transport.
const DefaultHopGrace = 1 * time.Second

// HopBudget derives the forwarding budget for one hop from the request's
// plan deadline: timeout + grace (non-positive grace selects
// DefaultHopGrace). A peer that accepts the connection and then stalls —
// hung process, half-dead VM, black-holed network — is abandoned when the
// budget expires and the work is stolen by the next ring candidate, so a
// route's worst-case wall-clock is candidates × HopBudget rather than
// forever. This is the serving-layer UBD: a composable per-hop bound that
// makes end-to-end latency analysable instead of open-ended.
func HopBudget(timeout, grace time.Duration) (time.Duration, error) {
	if timeout <= 0 {
		return 0, fmt.Errorf("resil: hop budget needs a positive plan timeout, got %v", timeout)
	}
	if grace <= 0 {
		grace = DefaultHopGrace
	}
	return timeout + grace, nil
}
