package resil

import (
	"testing"
	"time"
)

// TestBreakerLifecycle pins the count-driven state machine: closed until
// Threshold consecutive failures, probe admission every ProbeEvery-th
// denial, half-open resolving on the probe's outcome.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, 4)
	if b.State() != BreakerClosed {
		t.Fatalf("new breaker state = %q, want closed", b.State())
	}
	// Two failures with a success between: never opens.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("breaker opened below the consecutive threshold: %q", b.State())
	}
	// Third consecutive failure opens it.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %q, want open", b.State())
	}
	// Open: denies until the ProbeEvery-th attempt, which probes.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("open breaker admitted attempt %d before the probe point", i)
		}
	}
	if !b.Allow() {
		t.Fatal("open breaker denied the probe attempt")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %q, want half-open", b.State())
	}
	// Half-open: concurrent attempts are denied while the probe flies.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second request")
	}
	// Probe failure reopens immediately (no threshold).
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %q, want open", b.State())
	}
	// Next probe succeeds: closed, and requests flow again.
	for i := 0; i < 3; i++ {
		b.Allow()
	}
	if !b.Allow() {
		t.Fatal("reopened breaker denied its probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %q, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied a request")
	}
	s := b.Snapshot()
	if s.Opens != 2 || s.Probes != 2 {
		t.Fatalf("lifetime counters opens=%d probes=%d, want 2 and 2", s.Opens, s.Probes)
	}
	if s.Denials == 0 {
		t.Fatal("denial counter never moved")
	}
}

// TestBreakerDefaults pins the default knobs.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	for i := 0; i < DefaultThreshold-1; i++ {
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened before the default threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open at the default threshold")
	}
	admitted := 0
	for i := 0; i < DefaultProbeEvery; i++ {
		if b.Allow() {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("open breaker admitted %d of %d attempts, want exactly 1 probe", admitted, DefaultProbeEvery)
	}
}

// TestBackoffDeterministic pins the schedule's reproducibility and its
// exponential envelope: same (seed, attempt) → same delay, different
// seeds decorrelate, every delay is positive and capped.
func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 42}
	b := Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 42}
	c := Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 43}
	sameAsC := 0
	for attempt := 0; attempt < 12; attempt++ {
		d1, d2 := a.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v then %v", attempt, d1, d2)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d1)
		}
		window := 10 * time.Millisecond << attempt
		if window > 100*time.Millisecond || window <= 0 {
			window = 100 * time.Millisecond
		}
		if d1 > window {
			t.Fatalf("attempt %d: delay %v above the window %v", attempt, d1, window)
		}
		if c.Delay(attempt) == d1 {
			sameAsC++
		}
	}
	if sameAsC == 12 {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestBackoffZeroValue pins that the zero value works with defaults.
func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	for attempt := 0; attempt < 20; attempt++ {
		d := b.Delay(attempt)
		if d <= 0 || d > DefaultBackoffMax {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, DefaultBackoffMax)
		}
	}
	if b.Delay(-1) <= 0 {
		t.Fatal("negative attempt produced a non-positive delay")
	}
}

// TestSeedFromKey pins determinism and non-zero output.
func TestSeedFromKey(t *testing.T) {
	if SeedFromKey("abc") != SeedFromKey("abc") {
		t.Fatal("SeedFromKey is not deterministic")
	}
	if SeedFromKey("abc") == SeedFromKey("abd") {
		t.Fatal("SeedFromKey collides on adjacent keys")
	}
	if SeedFromKey("") == 0 {
		t.Fatal("SeedFromKey returned the zero seed")
	}
}

// TestHopBudget pins the derivation: timeout + grace, default grace,
// rejection of non-positive timeouts.
func TestHopBudget(t *testing.T) {
	got, err := HopBudget(2*time.Second, 500*time.Millisecond)
	if err != nil || got != 2500*time.Millisecond {
		t.Fatalf("HopBudget(2s, 500ms) = %v, %v", got, err)
	}
	got, err = HopBudget(time.Second, 0)
	if err != nil || got != time.Second+DefaultHopGrace {
		t.Fatalf("HopBudget(1s, 0) = %v, %v; want default grace", got, err)
	}
	if _, err := HopBudget(0, time.Second); err == nil {
		t.Fatal("HopBudget accepted a zero plan timeout")
	}
}
