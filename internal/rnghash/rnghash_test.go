package rnghash

import (
	"testing"
	"testing/quick"

	"efl/internal/rng"
)

func TestHashDeterministicPerRII(t *testing.T) {
	h := New(512, 0xdeadbeef)
	for addr := uint64(0); addr < 4096; addr++ {
		a, b := h.Set(addr), h.Set(addr)
		if a != b {
			t.Fatalf("address %#x mapped to %d then %d under the same RII", addr, a, b)
		}
	}
}

func TestHashRange(t *testing.T) {
	src := rng.New(1)
	for _, sets := range []int{1, 2, 64, 256, 512} {
		h := New(sets, NewRII(src))
		for i := 0; i < 2000; i++ {
			addr := src.Uint64()
			if s := h.Set(addr); s < 0 || s >= sets {
				t.Fatalf("set %d out of range for %d sets", s, sets)
			}
		}
	}
}

func TestHashPanicsOnBadSets(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad, 1)
		}()
	}
}

// TestUniformityAcrossRIIs verifies the DATE'13 property the paper relies
// on: "given a memory address and a set of RIIs, the probability of mapping
// such address to any particular cache set is the same" (§3.2).
func TestUniformityAcrossRIIs(t *testing.T) {
	const sets = 64
	const riis = 64 * 1024
	src := rng.New(7)
	// A handful of structurally different addresses, including
	// pathological ones (0, all-ones, strided).
	addrs := []uint64{0, 1, 0xffffffffffffffff, 0x1000, 0x1010, 0xabcdef0123456789}
	for _, addr := range addrs {
		counts := make([]int, sets)
		for i := 0; i < riis; i++ {
			h := New(sets, NewRII(src))
			counts[h.Set(addr)]++
		}
		x2 := chiSquare(counts, riis)
		// 63 dof, 99.9% critical value ≈ 103.4
		if x2 > 103.4 {
			t.Errorf("address %#x not uniform across RIIs: chi2=%v", addr, x2)
		}
	}
}

// TestUniformityAcrossAddresses verifies that within a single RII a set of
// consecutive line addresses (the common case: a program's footprint)
// spreads evenly over the sets.
func TestUniformityAcrossAddresses(t *testing.T) {
	const sets = 512
	const addrs = 512 * 256
	src := rng.New(9)
	// A single chi-square draw legitimately lands in the far tail ~0.1% of
	// the time, so require a majority of trials below the 99.9% critical
	// value (≈619 for 511 dof) rather than all of them.
	exceed := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		h := New(sets, NewRII(src))
		counts := make([]int, sets)
		for a := uint64(0); a < addrs; a++ {
			counts[h.Set(a)]++
		}
		if chiSquare(counts, addrs) > 619 {
			exceed++
		}
	}
	if exceed >= 2 {
		t.Errorf("%d of %d trials exceeded the 99.9%% chi-square critical value", exceed, trials)
	}
}

// TestDifferentRIIsRemap checks that changing the RII actually re-maps
// addresses (the mechanism behind per-run placement randomisation).
func TestDifferentRIIsRemap(t *testing.T) {
	const sets = 512
	h1 := New(sets, 1)
	h2 := New(sets, 2)
	same := 0
	const n = 4096
	for a := uint64(0); a < n; a++ {
		if h1.Set(a) == h2.Set(a) {
			same++
		}
	}
	// Expected collisions ≈ n/sets = 8; allow generous slack.
	if same > n/sets*8 {
		t.Fatalf("RIIs 1 and 2 agree on %d of %d addresses; remapping is too weak", same, n)
	}
}

// TestPairSeparation: two addresses that collide under one RII must not
// systematically collide under others (no pathological conflict classes).
func TestPairSeparation(t *testing.T) {
	const sets = 64
	src := rng.New(11)
	// Find a colliding pair under RII 1.
	base := New(sets, 1)
	var a, b uint64
	found := false
	for x := uint64(1); x < 10000 && !found; x++ {
		if base.Set(0) == base.Set(x) {
			a, b, found = 0, x, true
		}
	}
	if !found {
		t.Fatal("no colliding pair found (suspicious for 64 sets)")
	}
	collisions := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		h := New(sets, NewRII(src))
		if h.Set(a) == h.Set(b) {
			collisions++
		}
	}
	frac := float64(collisions) / trials
	want := 1.0 / sets
	if frac > want*2 || frac < want/2 {
		t.Fatalf("pair collision rate %v, want ~%v", frac, want)
	}
}

func TestModulo(t *testing.T) {
	m := NewModulo(512)
	if m.NumSets() != 512 {
		t.Fatalf("NumSets = %d", m.NumSets())
	}
	for _, tc := range []struct {
		addr uint64
		set  int
	}{{0, 0}, {1, 1}, {511, 511}, {512, 0}, {513, 1}, {1024 + 5, 5}} {
		if got := m.Set(tc.addr); got != tc.set {
			t.Errorf("Modulo.Set(%d) = %d, want %d", tc.addr, got, tc.set)
		}
	}
}

func TestModuloPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewModulo(12) did not panic")
		}
	}()
	NewModulo(12)
}

func TestHashSingleSet(t *testing.T) {
	h := New(1, 99)
	err := quick.Check(func(addr uint64) bool { return h.Set(addr) == 0 }, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func chiSquare(counts []int, total int) float64 {
	exp := float64(total) / float64(len(counts))
	var x2 float64
	for _, c := range counts {
		d := float64(c) - exp
		x2 += d * d / exp
	}
	return x2
}

func BenchmarkHashSet(b *testing.B) {
	h := New(512, 12345)
	for i := 0; i < b.N; i++ {
		_ = h.Set(uint64(i))
	}
}
