// Package rnghash implements the parametric hash function used for random
// cache placement in time-randomised caches (Kosmidis et al., "A cache
// design for probabilistically analysable real-time systems", DATE 2013),
// as used by the paper's IL1, DL1 and LLC.
//
// Random placement maps a memory address to a cache set through a hash that
// is parameterised by a random index identifier (RII). For a fixed RII the
// mapping is a pure function — an address always lands in the same set, so
// the cache is consistent during a run. When the RII changes (at program
// execution boundaries, e.g. IMA minor frames, with a flush for
// consistency) every address is re-mapped to a new, effectively random set.
// Across the population of RIIs each address is equally likely to land in
// every set, which is the property that makes hit/miss behaviour a random
// variable and hence MBPTA-analysable.
package rnghash

import "efl/internal/rng"

// RII is the random index identifier parameterising a placement hash.
// Hardware-wise it is a register written at program-boundary flushes.
type RII uint64

// NewRII draws a fresh random index identifier from src.
func NewRII(src rng.Stream) RII {
	return RII(src.Uint64())
}

// Hash is a parametric placement hash for a cache with a power-of-two
// number of sets. The zero value is not valid; construct with New.
//
// The hash follows the structure of the DATE'13 proposal: the line address
// is combined with the RII through a small network of xor/rotate/multiply
// stages chosen so that (a) for a fixed RII the function is deterministic,
// and (b) over uniformly drawn RIIs every address maps uniformly over the
// sets. Property (b) is validated statistically in the package tests.
type Hash struct {
	rii      RII
	setMask  uint64
	setBits  uint
	numSets  int
	k1, k2   uint64 // RII-derived odd multipliers
	r1, r2   uint   // RII-derived rotations
	xorConst uint64 // RII-derived xor constant
}

// New returns a placement hash for numSets sets (must be a power of two
// and >= 1) parameterised by the given RII.
func New(numSets int, rii RII) *Hash {
	if numSets < 1 || numSets&(numSets-1) != 0 {
		panic("rnghash: numSets must be a positive power of two")
	}
	bits := uint(0)
	for 1<<bits < numSets {
		bits++
	}
	h := &Hash{
		rii:     rii,
		numSets: numSets,
		setMask: uint64(numSets - 1),
		setBits: bits,
	}
	h.derive()
	return h
}

// derive expands the RII into the per-stage parameters. Using SplitMix-style
// expansion keeps successive RIIs (e.g. counter-updated) uncorrelated.
func (h *Hash) derive() {
	s := uint64(h.rii)
	mix := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	h.k1 = mix() | 1 // multipliers must be odd to be bijective mod 2^64
	h.k2 = mix() | 1
	h.xorConst = mix()
	r := mix()
	h.r1 = uint(r&63) | 1
	h.r2 = uint((r>>8)&63) | 1
}

// Reseed re-parameterises the hash in place with a new RII, as the hardware
// does when the OS writes the RII register at a program-boundary flush. It
// is equivalent to New(h.NumSets(), rii) but allocation-free, which matters
// on the per-run reset path (MBPTA campaigns reseed every cache every run).
func (h *Hash) Reseed(rii RII) {
	h.rii = rii
	h.derive()
}

// RII returns the hash's random index identifier.
func (h *Hash) RII() RII { return h.rii }

// NumSets returns the number of sets the hash maps into.
func (h *Hash) NumSets() int { return h.numSets }

// Set maps a line address (i.e. the memory address with the line-offset
// bits already stripped) to a cache set in [0, numSets).
func (h *Hash) Set(lineAddr uint64) int {
	v := lineAddr ^ h.xorConst
	v *= h.k1
	v = rotl(v, h.r1)
	v *= h.k2
	v = rotl(v, h.r2)
	v ^= v >> 33
	// Fold the high bits down so every address bit influences the set.
	v ^= v >> h.setBitsFold()
	return int(v & h.setMask)
}

// setBitsFold chooses the folding shift; any shift >= setBits works, 21 is
// a convenient constant that keeps the fold independent of the set count
// for small caches.
func (h *Hash) setBitsFold() uint {
	if h.setBits < 21 {
		return 21
	}
	return h.setBits
}

func rotl(v uint64, r uint) uint64 { return v<<r | v>>(64-r) }

// Modulo is the conventional time-deterministic placement used by the
// baseline TD cache: the set is simply the low-order bits of the line
// address. It satisfies the same Placement interface as Hash.
type Modulo struct {
	setMask uint64
	numSets int
}

// NewModulo returns a modulo placement for numSets sets (power of two).
func NewModulo(numSets int) *Modulo {
	if numSets < 1 || numSets&(numSets-1) != 0 {
		panic("rnghash: numSets must be a positive power of two")
	}
	return &Modulo{setMask: uint64(numSets - 1), numSets: numSets}
}

// Set maps a line address to a set by modulo indexing.
func (m *Modulo) Set(lineAddr uint64) int { return int(lineAddr & m.setMask) }

// NumSets returns the number of sets.
func (m *Modulo) NumSets() int { return m.numSets }

// Placement abstracts a set-mapping function so caches can be configured
// with either random (Hash) or deterministic (Modulo) placement.
type Placement interface {
	Set(lineAddr uint64) int
	NumSets() int
}

var (
	_ Placement = (*Hash)(nil)
	_ Placement = (*Modulo)(nil)
)
