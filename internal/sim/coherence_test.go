package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"efl/internal/bench"
	"efl/internal/cache"
	"efl/internal/fault"
	"efl/internal/isa"
	"efl/internal/metrics"
	"efl/internal/trace"
)

// threeLevelConfig is the multi-level platform the hierarchy tests use:
// private 4KB L1 pairs, a shared 16KB 4-way L2 at 6 cycles, and the
// 64KB 8-way EFL-protected LLC at 10 cycles.
func threeLevelConfig() Config {
	cfg := DefaultConfig().WithEFL(500)
	cfg.Hierarchy = []cache.LevelSpec{
		{Name: "L1", SizeBytes: 4 * 1024, Ways: 4, LatencyCycles: 1, Policy: cache.TimeRandomised},
		{Name: "L2", SizeBytes: 16 * 1024, Ways: 4, Shared: true, LatencyCycles: 6, Policy: cache.TimeRandomised},
		{Name: "LLC", SizeBytes: 64 * 1024, Ways: 8, Shared: true, LatencyCycles: 10, Policy: cache.TimeRandomised},
	}
	return cfg
}

// coherentConfig is the default platform with the MSI layer enabled over
// a sharedBytes-byte shared-data window.
func coherentConfig(sharedBytes int) Config {
	cfg := DefaultConfig().WithEFL(500)
	cfg.SharedDataBytes = sharedBytes
	return cfg
}

// sharedProgs builds the per-core programs of a shared-data workload.
func sharedProgs(t *testing.T, code string, cores int) []*isa.Program {
	t.Helper()
	spec, err := bench.SharedByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*isa.Program, cores)
	for i := range progs {
		progs[i] = spec.Build(i)
	}
	return progs
}

// cohTracer returns a buffer keeping only the coherence event kinds.
func cohTracer() *trace.Buffer {
	return trace.NewBuffer(1<<20).Keep(
		trace.EvCohFetch, trace.EvCohUpgrade, trace.EvCohInval, trace.EvCohHit)
}

// TestHierarchyValidation is the satellite regression suite for the
// hierarchy descriptor: every malformed descriptor must be rejected with a
// descriptive error before construction.
func TestHierarchyValidation(t *testing.T) {
	lvl := func(name string, size, ways int, shared bool, lat int64) cache.LevelSpec {
		return cache.LevelSpec{Name: name, SizeBytes: size, Ways: ways,
			Shared: shared, LatencyCycles: lat, Policy: cache.TimeRandomised}
	}
	ok := threeLevelConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("three-level config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero levels", func(c *Config) { c.Hierarchy = []cache.LevelSpec{} }, "zero levels"},
		{"one level", func(c *Config) { c.Hierarchy = c.Hierarchy[:1] }, "at least two levels"},
		{"L1 shared", func(c *Config) { c.Hierarchy[0].Shared = true }, "cannot be shared"},
		{"mid private", func(c *Config) { c.Hierarchy[1].Shared = false }, "must be shared"},
		{"size not power of two", func(c *Config) { c.Hierarchy[1].SizeBytes = 24 * 1024 }, "power of two"},
		{"ways not power of two", func(c *Config) { c.Hierarchy[1].Ways = 3 }, "power of two"},
		{"zero latency", func(c *Config) { c.Hierarchy[1].LatencyCycles = 0 }, "latency"},
		{"negative latency", func(c *Config) { c.Hierarchy[2].LatencyCycles = -4 }, "latency"},
		{"empty name", func(c *Config) { c.Hierarchy[1].Name = "" }, "name"},
		{"duplicate name", func(c *Config) { c.Hierarchy[2].Name = "L2" }, "duplicate"},
		{"write-through", func(c *Config) { c.DL1WriteThrough = true }, "two-level"},
		{"partition overruns last level", func(c *Config) {
			c.MID = 0
			c.PartitionWays = []int{4, 4, 4, 4}
			c.Hierarchy[2] = lvl("LLC", 64*1024, 8, true, 10)
		}, "partition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := threeLevelConfig()
			cfg.Hierarchy = append([]cache.LevelSpec(nil), cfg.Hierarchy...)
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("malformed hierarchy accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	t.Run("shared window", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			mut  func(*Config)
			want string
		}{
			{"negative", func(c *Config) { c.SharedDataBytes = -16 }, "negative"},
			{"not line multiple", func(c *Config) { c.SharedDataBytes = 24 }, "multiple"},
			{"overruns segment", func(c *Config) { c.SharedDataBytes = 1 << 30 }, "overruns"},
			{"write-through", func(c *Config) {
				c.SharedDataBytes = 256
				c.DL1WriteThrough = true
			}, "write-back"},
		} {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
			}
		}
	})
}

// TestExplicitDefaultHierarchyBitIdentical pins the tentpole's hard
// constraint from the descriptor side: a Hierarchy that spells out the
// default two-level layout produces bit-identical results to the legacy
// flat fields, in both modes.
func TestExplicitDefaultHierarchyBitIdentical(t *testing.T) {
	flat := DefaultConfig().WithEFL(500)
	expl := flat
	expl.Hierarchy = []cache.LevelSpec{
		{Name: "L1", SizeBytes: flat.L1SizeBytes, Ways: flat.L1Ways,
			LatencyCycles: 1, Policy: flat.Policy},
		{Name: "LLC", SizeBytes: flat.LLCSizeBytes, Ways: flat.LLCWays,
			Shared: true, LatencyCycles: flat.LLCHitCycles, Policy: flat.Policy},
	}
	prog := goldenProg()
	for _, mode := range []string{"analysis", "deployment"} {
		t.Run(mode, func(t *testing.T) {
			fc, ec := flat, expl
			var progs []*isa.Program
			if mode == "analysis" {
				fc, ec = fc.WithAnalysis(0), ec.WithAnalysis(0)
				progs = make([]*isa.Program, fc.Cores)
				progs[0] = prog
			} else {
				progs = []*isa.Program{prog, prog, prog, prog}
			}
			mf, err := New(fc, progs, 1)
			if err != nil {
				t.Fatal(err)
			}
			me, err := New(ec, progs, 1)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := mf.Run()
			if err != nil {
				t.Fatal(err)
			}
			re, err := me.Run()
			if err != nil {
				t.Fatal(err)
			}
			if ff, fe := goldenFingerprint(rf), goldenFingerprint(re); ff != fe {
				t.Fatalf("explicit default hierarchy diverged:\nflat %s\nexpl %s", ff, fe)
			}
		})
	}
}

// TestThreeLevelEndToEnd runs a 4-core deployment through the private-L1 →
// shared-L2 → shared-LLC hierarchy and checks the generic per-level stats
// plus the A1/A2 invariants.
func TestThreeLevelEndToEnd(t *testing.T) {
	cfg := threeLevelConfig()
	prog := goldenProg()
	m, err := New(cfg, []*isa.Program{prog, prog, prog, prog}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLevel) != 3 {
		t.Fatalf("PerLevel has %d levels, want 3", len(res.PerLevel))
	}
	for i, want := range []string{"L1", "L2", "LLC"} {
		if res.PerLevel[i].Name != want {
			t.Errorf("level %d named %q, want %q", i, res.PerLevel[i].Name, want)
		}
	}
	if res.PerLevel[0].Shared || !res.PerLevel[1].Shared || !res.PerLevel[2].Shared {
		t.Errorf("sharing flags wrong: %+v", res.PerLevel)
	}
	l2 := res.PerLevel[1].Stats
	if l2.Accesses == 0 || l2.Hits == 0 {
		t.Fatalf("shared L2 saw no traffic: %+v", l2)
	}
	// The interposed L2 filters the LLC: the last level must see only the
	// L2's misses (plus writebacks), strictly fewer lookups than the L2.
	if res.PerLevel[2].Stats.Accesses >= l2.Accesses {
		t.Errorf("LLC accesses %d not filtered below L2's %d",
			res.PerLevel[2].Stats.Accesses, l2.Accesses)
	}
	assertAttribution(t, cfg, res)
}

// TestThreeLevelLockstep is the satellite property test on the deeper
// hierarchy: a K=8 lockstep batch over the 3-level config reproduces, lane
// for lane, 8 sequential single runs.
func TestThreeLevelLockstep(t *testing.T) {
	cfg := threeLevelConfig()
	prog := bench.CANRdr()
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(4000 + 13*i)
	}
	b, err := NewBatch(cfg, prog, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Run(context.Background(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	aud := NewAuditor()
	for i, seed := range seeds {
		want, err := RunAnalysis(cfg, prog, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], *want) {
			t.Fatalf("lane %d (seed %d) diverged:\n got %s\nwant %s",
				i, seed, goldenFingerprint(&got[i]), goldenFingerprint(want))
		}
		if err := aud.CheckRun(b.Lane(0).Config(), &got[i]); err != nil {
			t.Errorf("lane %d: auditor: %v", i, err)
		}
	}
}

// TestThreeLevelRewindMatchesFresh extends the Rewind bit-identity
// contract to hierarchies with intermediate levels (their PRNG streams
// must re-derive in construction fork order too).
func TestThreeLevelRewindMatchesFresh(t *testing.T) {
	cfg := threeLevelConfig().WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = goldenProg()
	reused, err := New(cfg, progs, 999)
	if err != nil {
		t.Fatal(err)
	}
	var got, want Result
	for _, seed := range []uint64{1, 7, 1} {
		fresh, err := New(cfg, progs, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RunInto(&want); err != nil {
			t.Fatal(err)
		}
		reused.Rewind(seed)
		if err := reused.RunInto(&got); err != nil {
			t.Fatal(err)
		}
		if gf, wf := goldenFingerprint(&got), goldenFingerprint(&want); gf != wf {
			t.Fatalf("seed %d: rewound 3-level run diverged:\n got %s\nwant %s", seed, gf, wf)
		}
	}
}

// TestPerLevelStatsDefault pins satellite 2 on the default layout: the
// generic per-level stats mirror the legacy IL1/DL1/LLC fields exactly.
func TestPerLevelStatsDefault(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	prog := goldenProg()
	m, err := New(cfg, []*isa.Program{prog, prog, prog, prog}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLevel) != 2 {
		t.Fatalf("PerLevel has %d levels, want 2", len(res.PerLevel))
	}
	if res.PerLevel[0].Name != "L1" || res.PerLevel[1].Name != "LLC" {
		t.Fatalf("level names %q/%q", res.PerLevel[0].Name, res.PerLevel[1].Name)
	}
	var l1 cache.Stats
	for _, cr := range res.PerCore {
		if cr.Active {
			addCacheStats(&l1, cr.IL1)
			addCacheStats(&l1, cr.DL1)
		}
	}
	if l1 != res.PerLevel[0].Stats {
		t.Errorf("level 0 stats %+v != summed L1 pairs %+v", res.PerLevel[0].Stats, l1)
	}
	if res.PerLevel[1].Stats != res.LLC {
		t.Errorf("level 1 stats %+v != legacy LLC %+v", res.PerLevel[1].Stats, res.LLC)
	}
}

// TestCoherenceProtocol is the satellite protocol unit test: under seeded
// random interleavings of the true-sharing workload the directory must
// generate upgrade/invalidation traffic, attribute its cycles (A1 closes,
// checked via assertAttribution), and the trace-replayed A5 invariant —
// SWMR, invalidate-on-write, no stale reads — must hold.
func TestCoherenceProtocol(t *testing.T) {
	cfg := coherentConfig(bench.SCSharedBytes)
	progs := sharedProgs(t, "SC", cfg.Cores)
	for _, seed := range []uint64{1, 2, 17, 301} {
		m, err := New(cfg, progs, seed)
		if err != nil {
			t.Fatal(err)
		}
		buf := cohTracer()
		m.SetTracer(buf)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		cs := m.CoherenceStats()
		if cs.Upgrades == 0 || cs.Invalidations == 0 {
			t.Fatalf("seed %d: true-sharing run produced no protocol traffic: %+v", seed, cs)
		}
		var coh int64
		for _, cr := range res.PerCore {
			coh += cr.Attribution[metrics.Coherence]
		}
		if coh == 0 {
			t.Fatalf("seed %d: no cycles attributed to coherence", seed)
		}
		assertAttribution(t, cfg, res)
		aud := NewAuditor()
		if err := aud.CheckCoherence(cfg, buf.Events()); err != nil {
			t.Fatalf("seed %d: A5 violated on a healthy run: %v", seed, err)
		}
		rep := aud.Report().Invariants[AuditCoherence]
		if rep.Checks == 0 {
			t.Fatalf("seed %d: A5 recorded no checks", seed)
		}
	}
}

// TestFalseSharingReport checks the per-line sharing report: the FS
// workload's lines are flagged as false sharing (disjoint word footprints),
// the SC workload's are not.
func TestFalseSharingReport(t *testing.T) {
	run := func(code string, shared int) []LineSharingStats {
		cfg := coherentConfig(shared)
		m, err := New(cfg, sharedProgs(t, code, cfg.Cores), 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.SharingReport()
	}
	fs := run("FS", bench.FSSharedBytes)
	nFalse := 0
	for _, l := range fs {
		if l.FalseShared {
			nFalse++
		}
	}
	if nFalse == 0 {
		t.Fatalf("FS workload produced no false-shared lines: %+v", fs)
	}
	for _, l := range run("SC", bench.SCSharedBytes) {
		if l.FalseShared {
			t.Errorf("SC (true sharing) line %#x flagged as false sharing", l.Addr)
		}
		if l.Cores < 2 {
			t.Errorf("SC line %#x touched by %d cores, want all", l.Addr, l.Cores)
		}
	}
}

// TestCoherentReuseMatchesFresh extends the Reuse bit-identity contract to
// coherent platforms: the rebuilt cores must be re-wired to the directory
// and the replayed runs must match fresh construction.
func TestCoherentReuseMatchesFresh(t *testing.T) {
	cfg := coherentConfig(bench.SCSharedBytes)
	progs := sharedProgs(t, "SC", cfg.Cores)
	reused, err := New(cfg, progs, 999)
	if err != nil {
		t.Fatal(err)
	}
	var got, want Result
	for _, seed := range []uint64{3, 11, 3} {
		fresh, err := New(cfg, progs, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RunInto(&want); err != nil {
			t.Fatal(err)
		}
		if err := reused.Reuse(progs, seed); err != nil {
			t.Fatal(err)
		}
		if err := reused.RunInto(&got); err != nil {
			t.Fatal(err)
		}
		if gf, wf := goldenFingerprint(&got), goldenFingerprint(&want); gf != wf {
			t.Fatalf("seed %d: reused coherent run diverged:\n got %s\nwant %s", seed, gf, wf)
		}
	}
}

// TestCohDroppedInvalCaught is satellite 6's unit form: a dropped
// invalidation leaves a stale L1 copy, and the A5 trace replay must catch
// the stale read while the same run without the fault passes.
func TestCohDroppedInvalCaught(t *testing.T) {
	cfg := coherentConfig(bench.SCSharedBytes)
	progs := sharedProgs(t, "SC", cfg.Cores)
	for _, faulty := range []bool{false, true} {
		m, err := New(cfg, progs, 7)
		if err != nil {
			t.Fatal(err)
		}
		if faulty {
			if err := m.ArmFaults(fault.Single(fault.CohDroppedInval, 1)); err != nil {
				t.Fatal(err)
			}
		}
		buf := cohTracer()
		m.SetTracer(buf)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		err = NewAuditor().CheckCoherence(cfg, buf.Events())
		if faulty && err == nil {
			t.Fatal("A5 missed the dropped invalidation")
		}
		if faulty && !strings.Contains(err.Error(), "stale") {
			t.Fatalf("A5 error %q does not name the stale copy", err)
		}
		if !faulty && err != nil {
			t.Fatalf("healthy run failed A5: %v", err)
		}
	}
}

// TestCohFaultValidation pins the arming rules: the fault needs a specific
// core and a coherent platform.
func TestCohFaultValidation(t *testing.T) {
	cfg := coherentConfig(bench.SCSharedBytes)
	m, err := New(cfg, sharedProgs(t, "SC", cfg.Cores), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ArmFaults(fault.Single(fault.CohDroppedInval, fault.AllCores)); err == nil {
		t.Fatal("AllCores target accepted")
	}
	plain, err := New(DefaultConfig().WithEFL(500),
		[]*isa.Program{goldenProg(), nil, nil, nil}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ArmFaults(fault.Single(fault.CohDroppedInval, 1)); err == nil {
		t.Fatal("armed a coherence fault on a platform without the coherence layer")
	}
}

// TestCoherentEndToEndThreeLevel is the acceptance-criteria path in unit
// form: the MSI layer composed with the private-L1 → shared-L2 → shared-LLC
// hierarchy, A1 and A5 holding.
func TestCoherentEndToEndThreeLevel(t *testing.T) {
	cfg := threeLevelConfig()
	cfg.SharedDataBytes = bench.SCSharedBytes
	progs := sharedProgs(t, "SC", cfg.Cores)
	m, err := New(cfg, progs, 21)
	if err != nil {
		t.Fatal(err)
	}
	buf := cohTracer()
	m.SetTracer(buf)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.CoherenceStats().Invalidations == 0 {
		t.Fatal("no invalidation traffic through the 3-level hierarchy")
	}
	assertAttribution(t, cfg, res)
	if err := NewAuditor().CheckCoherence(cfg, buf.Events()); err != nil {
		t.Fatalf("A5: %v", err)
	}
	if res.PerLevel[1].Stats.Accesses == 0 {
		t.Fatal("shared L2 saw no traffic under the coherent workload")
	}
}
