// Package sim assembles the full multicore platform of the paper (§4.1)
// and runs programs on it in the two operation modes of Figure 1:
//
//   - Analysis: the task under analysis runs alone on one core; with EFL
//     enabled, the other cores' CRGs inject force-miss evictions into the
//     shared LLC at the maximum allowed frequency, and the analysed core's
//     bus and memory accesses are charged the worst-case contention
//     envelope (lottery against Ncores-1 phantom contenders on the bus,
//     the memory controller's upper-bound delay per access).
//
//   - Deployment: up to Ncores programs run together; bus arbitration,
//     memory queueing and LLC interference are simulated exactly, and each
//     core's LLC evictions are rate-limited by its EFL unit.
//
// The simulator is a conservative discrete-event engine: per-core timing
// is advanced instruction by instruction (package cpu), and shared
// resources are arbitrated at exact cycle granularity by processing events
// in nondecreasing time order, granting a resource only when no earlier
// request can still appear. LLC state mutations are applied at lookup
// time (the line fill is not delayed by the memory latency); this is the
// usual trace-simulator simplification and shifts interference by at most
// one memory round-trip.
package sim

import (
	"fmt"

	"efl/internal/cache"
	"efl/internal/efl"
)

// Config describes the platform. DefaultConfig returns the paper's setup.
type Config struct {
	// Cores is the number of cores (the paper evaluates 4).
	Cores int

	// L1SizeBytes/L1Ways describe each private IL1 and DL1 cache.
	L1SizeBytes int
	L1Ways      int
	// LLCSizeBytes/LLCWays describe the shared last-level cache.
	LLCSizeBytes int
	LLCWays      int
	// LineBytes is the line size used by every cache.
	LineBytes int
	// Policy selects time-randomised (paper) or time-deterministic caches
	// (ablation A3).
	Policy cache.Policy

	// Latencies (cycles): L1 hits are 1 cycle (implicit in the pipeline).
	BusSlotCycles int64 // bus access slot (2)
	LLCHitCycles  int64 // LLC hit latency (10)
	MemCycles     int64 // memory latency from issue to completion (100)
	MemSlotCycles int64 // memory controller issue-slot (bandwidth) length (5)
	BranchPenalty int64 // taken-branch redirect bubble (1)

	// DL1WriteThrough switches the data caches to write-through /
	// no-write-allocate (paper footnote 5 ablation): every store emits an
	// LLC write transaction.
	DL1WriteThrough bool
	// WTAllocate, with DL1WriteThrough, lets those LLC write misses
	// allocate (fetching the line from memory and paying the EFL gate) —
	// the variant footnote 5 warns makes "stalls frequent with EFL".
	// Without it, LLC write misses are forwarded to memory unallocated.
	WTAllocate bool

	// MID is the EFL minimum inter-eviction delay; 0 disables EFL.
	MID int64
	// EFLFixedMID uses deterministic inter-eviction delays instead of the
	// paper's U[0, 2*MID] randomisation (ablation A2 only).
	EFLFixedMID bool

	// PartitionWays, when non-nil, enables hardware way-partitioning (the
	// CP baseline): core i may only use PartitionWays[i] ways of the LLC.
	// Cores with 0 ways are invalid. The partitions are disjoint and
	// assigned in increasing way order.
	PartitionWays []int

	// Mode selects analysis or deployment operation (Figure 1).
	Mode efl.Mode
	// AnalysedCore is the core hosting the task under analysis (analysis
	// mode only).
	AnalysedCore int

	// MaxInstrPerCore aborts runaway programs (default 50M).
	MaxInstrPerCore uint64
	// MaxCycles aborts runaway simulations (default 2^62).
	MaxCycles int64

	// Hierarchy, when non-nil, replaces the flat L1*/LLC* geometry with an
	// ordered level-indexed descriptor: level 0 is the private per-core L1
	// pair (IL1+DL1), the last level is the shared cache the EFL gate
	// protects, and any levels between are shared intermediates consulted
	// in order on the way out. Nil means the legacy two-level layout
	// derived from the flat fields (bit-identical to the pre-hierarchy
	// simulator); an explicitly set empty slice is a validation error.
	Hierarchy []cache.LevelSpec

	// SharedDataBytes, when positive, marks the first SharedDataBytes bytes
	// of the data segment [isa.DataBase, isa.DataBase+SharedDataBytes) as
	// physically shared between the cores (no per-core address rebasing)
	// and enables the MSI coherence layer over the private data caches:
	// stores to shared lines invalidate peer copies through the bus, and
	// the cycles spent doing so are attributed to metrics.Coherence.
	// 0 (the default) keeps all data private per core.
	SharedDataBytes int
}

// DefaultConfig returns the paper's experimental platform (§4.1): 4 cores;
// 4KB 4-way 16B-line IL1/DL1; 64KB 8-way 16B-line shared LLC; 2-cycle bus,
// 10-cycle LLC hit, 100-cycle memory; time-randomised caches everywhere.
func DefaultConfig() Config {
	return Config{
		Cores:           4,
		L1SizeBytes:     4 * 1024,
		L1Ways:          4,
		LLCSizeBytes:    64 * 1024,
		LLCWays:         8,
		LineBytes:       16,
		Policy:          cache.TimeRandomised,
		BusSlotCycles:   2,
		LLCHitCycles:    10,
		MemCycles:       100,
		MemSlotCycles:   5,
		BranchPenalty:   1,
		Mode:            efl.Deployment,
		MaxInstrPerCore: 50_000_000,
		MaxCycles:       1 << 62,
	}
}

// WithEFL returns a copy of c with EFL enabled at the given MID and
// partitioning disabled.
func (c Config) WithEFL(mid int64) Config {
	c.MID = mid
	c.PartitionWays = nil
	return c
}

// WithPartition returns a copy of c with hardware way-partitioning (CP)
// giving each core the respective number of ways, and EFL disabled.
func (c Config) WithPartition(ways []int) Config {
	c.PartitionWays = append([]int(nil), ways...)
	c.MID = 0
	return c
}

// WithAnalysis returns a copy of c in analysis mode for the given core.
func (c Config) WithAnalysis(core int) Config {
	c.Mode = efl.Analysis
	c.AnalysedCore = core
	return c
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: need at least one core")
	}
	if c.Hierarchy != nil {
		if len(c.Hierarchy) == 0 {
			return fmt.Errorf("sim: hierarchy descriptor has zero levels")
		}
		if len(c.Hierarchy) < 2 {
			return fmt.Errorf("sim: hierarchy needs at least two levels (private L1 + shared last level), got %d", len(c.Hierarchy))
		}
		if c.DL1WriteThrough {
			return fmt.Errorf("sim: DL1WriteThrough is only supported on the default two-level hierarchy")
		}
		seen := make(map[string]bool, len(c.Hierarchy))
		for i, s := range c.Hierarchy {
			if err := s.Validate(c.LineBytes); err != nil {
				return fmt.Errorf("sim: hierarchy level %d: %w", i, err)
			}
			if seen[s.Name] {
				return fmt.Errorf("sim: duplicate hierarchy level name %q", s.Name)
			}
			seen[s.Name] = true
			if i == 0 && s.Shared {
				return fmt.Errorf("sim: hierarchy level 0 (%q) is the per-core L1 and cannot be shared", s.Name)
			}
			if i > 0 && !s.Shared {
				return fmt.Errorf("sim: hierarchy level %d (%q) must be shared; only level 0 is private", i, s.Name)
			}
		}
	} else {
		l1 := cache.Config{Name: "L1", SizeBytes: c.L1SizeBytes, Ways: c.L1Ways,
			LineBytes: c.LineBytes, Policy: c.Policy}
		if err := l1.Validate(); err != nil {
			return err
		}
		llc := cache.Config{Name: "LLC", SizeBytes: c.LLCSizeBytes, Ways: c.LLCWays,
			LineBytes: c.LineBytes, Policy: c.Policy}
		if err := llc.Validate(); err != nil {
			return err
		}
	}
	if c.SharedDataBytes < 0 {
		return fmt.Errorf("sim: negative SharedDataBytes")
	}
	if c.SharedDataBytes > 0 {
		if c.LineBytes <= 0 || c.SharedDataBytes%c.LineBytes != 0 {
			return fmt.Errorf("sim: SharedDataBytes %d is not a multiple of the line size %d", c.SharedDataBytes, c.LineBytes)
		}
		if c.SharedDataBytes >= 1<<30 {
			return fmt.Errorf("sim: SharedDataBytes %d overruns the data segment", c.SharedDataBytes)
		}
		if c.DL1WriteThrough {
			return fmt.Errorf("sim: coherence (SharedDataBytes) requires write-back data caches")
		}
	}
	if c.BusSlotCycles < 1 || c.LLCHitCycles < 1 || c.MemCycles < 1 || c.MemSlotCycles < 1 {
		return fmt.Errorf("sim: latencies must be positive")
	}
	if c.BranchPenalty < 0 {
		return fmt.Errorf("sim: negative branch penalty")
	}
	if c.MID < 0 {
		return fmt.Errorf("sim: negative MID")
	}
	if c.WTAllocate && !c.DL1WriteThrough {
		return fmt.Errorf("sim: WTAllocate requires DL1WriteThrough")
	}
	if c.MID > 0 && c.PartitionWays != nil {
		return fmt.Errorf("sim: EFL and way-partitioning are alternative mechanisms; enable one")
	}
	if c.PartitionWays != nil {
		if len(c.PartitionWays) != c.Cores {
			return fmt.Errorf("sim: PartitionWays has %d entries for %d cores", len(c.PartitionWays), c.Cores)
		}
		sum := 0
		for i, w := range c.PartitionWays {
			if w < 0 {
				return fmt.Errorf("sim: core %d assigned %d ways", i, w)
			}
			// 0 ways is allowed for cores that run no program (e.g. the
			// idle co-runner slots of an analysis-mode CP configuration);
			// New rejects active cores with empty partitions.
			sum += w
		}
		if last := c.llcConfig(); sum > last.Ways {
			return fmt.Errorf("sim: partition uses %d of %d LLC ways", sum, last.Ways)
		}
	}
	if c.Mode == efl.Analysis && (c.AnalysedCore < 0 || c.AnalysedCore >= c.Cores) {
		return fmt.Errorf("sim: analysed core %d out of range", c.AnalysedCore)
	}
	return nil
}

// levels returns the ordered hierarchy descriptor: the configured
// Hierarchy when set, otherwise the legacy two-level layout derived from
// the flat fields (level 0 = the private L1 pair, level 1 = the shared
// LLC at LLCHitCycles).
func (c Config) levels() []cache.LevelSpec {
	if c.Hierarchy != nil {
		return c.Hierarchy
	}
	return []cache.LevelSpec{
		{Name: "L1", SizeBytes: c.L1SizeBytes, Ways: c.L1Ways,
			LatencyCycles: 1, Policy: c.Policy},
		{Name: "LLC", SizeBytes: c.LLCSizeBytes, Ways: c.LLCWays,
			Shared: true, LatencyCycles: c.LLCHitCycles, Policy: c.Policy},
	}
}

// midSpecs returns the shared intermediate levels (between the L1 pair
// and the last level) — empty for the default two-level layout.
func (c Config) midSpecs() []cache.LevelSpec {
	lv := c.levels()
	return lv[1 : len(lv)-1]
}

// l1Config returns the private-cache geometry.
func (c Config) l1Config(name string) cache.Config {
	cfg := c.levels()[0].Config(c.LineBytes)
	cfg.Name = name
	return cfg
}

// llcConfig returns the last shared level's geometry (the level the EFL
// gate protects — named "LLC" on the default layout).
func (c Config) llcConfig() cache.Config {
	lv := c.levels()
	return lv[len(lv)-1].Config(c.LineBytes)
}

// firstSharedLatency returns the lookup latency charged at bus grant: the
// latency of the first shared level a miss walks into. On the default
// layout this is LLCHitCycles.
func (c Config) firstSharedLatency() int64 {
	return c.levels()[1].LatencyCycles
}

// coherent reports whether the MSI shared-data layer is enabled.
func (c Config) coherent() bool { return c.SharedDataBytes > 0 }

// llcMask returns core i's LLC way mask under the configuration. A core
// with a 0-way partition gets an empty mask; it must stay idle.
func (c Config) llcMask(core int) cache.WayMask {
	if c.PartitionWays == nil {
		return cache.FullMask(c.llcConfig().Ways)
	}
	if c.PartitionWays[core] == 0 {
		return 0
	}
	lo := 0
	for i := 0; i < core; i++ {
		lo += c.PartitionWays[i]
	}
	return cache.MaskRange(lo, c.PartitionWays[core])
}
