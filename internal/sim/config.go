// Package sim assembles the full multicore platform of the paper (§4.1)
// and runs programs on it in the two operation modes of Figure 1:
//
//   - Analysis: the task under analysis runs alone on one core; with EFL
//     enabled, the other cores' CRGs inject force-miss evictions into the
//     shared LLC at the maximum allowed frequency, and the analysed core's
//     bus and memory accesses are charged the worst-case contention
//     envelope (lottery against Ncores-1 phantom contenders on the bus,
//     the memory controller's upper-bound delay per access).
//
//   - Deployment: up to Ncores programs run together; bus arbitration,
//     memory queueing and LLC interference are simulated exactly, and each
//     core's LLC evictions are rate-limited by its EFL unit.
//
// The simulator is a conservative discrete-event engine: per-core timing
// is advanced instruction by instruction (package cpu), and shared
// resources are arbitrated at exact cycle granularity by processing events
// in nondecreasing time order, granting a resource only when no earlier
// request can still appear. LLC state mutations are applied at lookup
// time (the line fill is not delayed by the memory latency); this is the
// usual trace-simulator simplification and shifts interference by at most
// one memory round-trip.
package sim

import (
	"fmt"

	"efl/internal/cache"
	"efl/internal/efl"
)

// Config describes the platform. DefaultConfig returns the paper's setup.
type Config struct {
	// Cores is the number of cores (the paper evaluates 4).
	Cores int

	// L1SizeBytes/L1Ways describe each private IL1 and DL1 cache.
	L1SizeBytes int
	L1Ways      int
	// LLCSizeBytes/LLCWays describe the shared last-level cache.
	LLCSizeBytes int
	LLCWays      int
	// LineBytes is the line size used by every cache.
	LineBytes int
	// Policy selects time-randomised (paper) or time-deterministic caches
	// (ablation A3).
	Policy cache.Policy

	// Latencies (cycles): L1 hits are 1 cycle (implicit in the pipeline).
	BusSlotCycles int64 // bus access slot (2)
	LLCHitCycles  int64 // LLC hit latency (10)
	MemCycles     int64 // memory latency from issue to completion (100)
	MemSlotCycles int64 // memory controller issue-slot (bandwidth) length (5)
	BranchPenalty int64 // taken-branch redirect bubble (1)

	// DL1WriteThrough switches the data caches to write-through /
	// no-write-allocate (paper footnote 5 ablation): every store emits an
	// LLC write transaction.
	DL1WriteThrough bool
	// WTAllocate, with DL1WriteThrough, lets those LLC write misses
	// allocate (fetching the line from memory and paying the EFL gate) —
	// the variant footnote 5 warns makes "stalls frequent with EFL".
	// Without it, LLC write misses are forwarded to memory unallocated.
	WTAllocate bool

	// MID is the EFL minimum inter-eviction delay; 0 disables EFL.
	MID int64
	// EFLFixedMID uses deterministic inter-eviction delays instead of the
	// paper's U[0, 2*MID] randomisation (ablation A2 only).
	EFLFixedMID bool

	// PartitionWays, when non-nil, enables hardware way-partitioning (the
	// CP baseline): core i may only use PartitionWays[i] ways of the LLC.
	// Cores with 0 ways are invalid. The partitions are disjoint and
	// assigned in increasing way order.
	PartitionWays []int

	// Mode selects analysis or deployment operation (Figure 1).
	Mode efl.Mode
	// AnalysedCore is the core hosting the task under analysis (analysis
	// mode only).
	AnalysedCore int

	// MaxInstrPerCore aborts runaway programs (default 50M).
	MaxInstrPerCore uint64
	// MaxCycles aborts runaway simulations (default 2^62).
	MaxCycles int64
}

// DefaultConfig returns the paper's experimental platform (§4.1): 4 cores;
// 4KB 4-way 16B-line IL1/DL1; 64KB 8-way 16B-line shared LLC; 2-cycle bus,
// 10-cycle LLC hit, 100-cycle memory; time-randomised caches everywhere.
func DefaultConfig() Config {
	return Config{
		Cores:           4,
		L1SizeBytes:     4 * 1024,
		L1Ways:          4,
		LLCSizeBytes:    64 * 1024,
		LLCWays:         8,
		LineBytes:       16,
		Policy:          cache.TimeRandomised,
		BusSlotCycles:   2,
		LLCHitCycles:    10,
		MemCycles:       100,
		MemSlotCycles:   5,
		BranchPenalty:   1,
		Mode:            efl.Deployment,
		MaxInstrPerCore: 50_000_000,
		MaxCycles:       1 << 62,
	}
}

// WithEFL returns a copy of c with EFL enabled at the given MID and
// partitioning disabled.
func (c Config) WithEFL(mid int64) Config {
	c.MID = mid
	c.PartitionWays = nil
	return c
}

// WithPartition returns a copy of c with hardware way-partitioning (CP)
// giving each core the respective number of ways, and EFL disabled.
func (c Config) WithPartition(ways []int) Config {
	c.PartitionWays = append([]int(nil), ways...)
	c.MID = 0
	return c
}

// WithAnalysis returns a copy of c in analysis mode for the given core.
func (c Config) WithAnalysis(core int) Config {
	c.Mode = efl.Analysis
	c.AnalysedCore = core
	return c
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: need at least one core")
	}
	l1 := cache.Config{Name: "L1", SizeBytes: c.L1SizeBytes, Ways: c.L1Ways,
		LineBytes: c.LineBytes, Policy: c.Policy}
	if err := l1.Validate(); err != nil {
		return err
	}
	llc := cache.Config{Name: "LLC", SizeBytes: c.LLCSizeBytes, Ways: c.LLCWays,
		LineBytes: c.LineBytes, Policy: c.Policy}
	if err := llc.Validate(); err != nil {
		return err
	}
	if c.BusSlotCycles < 1 || c.LLCHitCycles < 1 || c.MemCycles < 1 || c.MemSlotCycles < 1 {
		return fmt.Errorf("sim: latencies must be positive")
	}
	if c.BranchPenalty < 0 {
		return fmt.Errorf("sim: negative branch penalty")
	}
	if c.MID < 0 {
		return fmt.Errorf("sim: negative MID")
	}
	if c.WTAllocate && !c.DL1WriteThrough {
		return fmt.Errorf("sim: WTAllocate requires DL1WriteThrough")
	}
	if c.MID > 0 && c.PartitionWays != nil {
		return fmt.Errorf("sim: EFL and way-partitioning are alternative mechanisms; enable one")
	}
	if c.PartitionWays != nil {
		if len(c.PartitionWays) != c.Cores {
			return fmt.Errorf("sim: PartitionWays has %d entries for %d cores", len(c.PartitionWays), c.Cores)
		}
		sum := 0
		for i, w := range c.PartitionWays {
			if w < 0 {
				return fmt.Errorf("sim: core %d assigned %d ways", i, w)
			}
			// 0 ways is allowed for cores that run no program (e.g. the
			// idle co-runner slots of an analysis-mode CP configuration);
			// New rejects active cores with empty partitions.
			sum += w
		}
		if sum > c.LLCWays {
			return fmt.Errorf("sim: partition uses %d of %d LLC ways", sum, c.LLCWays)
		}
	}
	if c.Mode == efl.Analysis && (c.AnalysedCore < 0 || c.AnalysedCore >= c.Cores) {
		return fmt.Errorf("sim: analysed core %d out of range", c.AnalysedCore)
	}
	return nil
}

// l1Config returns the private-cache geometry.
func (c Config) l1Config(name string) cache.Config {
	return cache.Config{Name: name, SizeBytes: c.L1SizeBytes, Ways: c.L1Ways,
		LineBytes: c.LineBytes, Policy: c.Policy}
}

// llcConfig returns the shared-cache geometry.
func (c Config) llcConfig() cache.Config {
	return cache.Config{Name: "LLC", SizeBytes: c.LLCSizeBytes, Ways: c.LLCWays,
		LineBytes: c.LineBytes, Policy: c.Policy}
}

// llcMask returns core i's LLC way mask under the configuration. A core
// with a 0-way partition gets an empty mask; it must stay idle.
func (c Config) llcMask(core int) cache.WayMask {
	if c.PartitionWays == nil {
		return cache.FullMask(c.LLCWays)
	}
	if c.PartitionWays[core] == 0 {
		return 0
	}
	lo := 0
	for i := 0; i < core; i++ {
		lo += c.PartitionWays[i]
	}
	return cache.MaskRange(lo, c.PartitionWays[core])
}
