package sim

import (
	"context"
	"fmt"

	"efl/internal/cpu"
	"efl/internal/efl"
	"efl/internal/isa"
)

// This file implements the batched lockstep analysis engine. An MBPTA
// campaign runs hundreds of independent analysis-mode simulations of the
// same (config, program) pair; a Batch amortises the per-run costs across
// K lanes:
//
//   - the architectural instruction stream is decoded ONCE (cpu.RecordTrace)
//     and replayed by every run of every lane, removing the interpreter
//     from the hot path;
//   - each lane is a pooled platform rewound in place (Rewind), so the
//     steady state allocates nothing per run;
//   - the event loop is the analysis-mode specialisation (analysisAdvance):
//     with exactly one active core and no bus/memory-controller events, the
//     per-event candidate scan collapses to three candidates instead of
//     5 x Cores.
//
// Lanes advance in lockstep windows of Horizon cycles: every lane is
// stepped to the same simulated-time boundary before any lane crosses it.
// Lane i seeded with seeds[i] is bit-identical to a fresh
// RunAnalysis(cfg, prog, seeds[i]) — pinned by the K=1 golden tests and
// the K=8 lockstep property test.

// Rewind re-derives every PRNG stream of the platform from seed in
// construction fork order, leaving the platform as New(m.Config(), progs,
// seed) would (pinned by TestRewindMatchesFresh) without touching the
// program set or reallocating cores — the in-place, allocation-free subset
// of Reuse. Run state (caches, machines, pipeline, event candidates) is
// rewound by the reset every Run*Into performs, so Rewind only needs to
// rewind what reset does not: the seed-derived streams, plus any fault
// plan or watchdog budget left by the previous job.
func (m *Multicore) Rewind(seed uint64) {
	m.DisarmFaults()
	m.watchdog = 0

	// Fork order mirrors New exactly: LLC, bus, access control, then the
	// per-core L1 pairs of cores that run a program.
	m.rnd.Reseed(seed)
	m.llc.Reseed(m.rnd.Uint64())
	m.bus.Reseed(m.rnd.Uint64())
	m.ac.Reseed(m.rnd.Uint64())
	m.ac.SetFixed(m.cfg.EFLFixedMID)
	for i := range m.mids {
		m.mids[i].Reseed(m.rnd.Uint64())
	}
	for _, ctl := range m.cores {
		if ctl.core != nil {
			ctl.core.IL1.Reseed(m.rnd.Uint64())
			ctl.core.DL1.Reseed(m.rnd.Uint64())
		}
	}
}

// effectiveLimit is the run's cycle ceiling: the configured maximum,
// tightened by the runner watchdog budget when one is armed.
func (m *Multicore) effectiveLimit() int64 {
	limit := m.cfg.MaxCycles
	if m.watchdog > 0 && m.watchdog < limit {
		limit = m.watchdog
	}
	return limit
}

// analysisAdvance is RunInto's event loop specialised for analysis mode,
// where only the analysed core is active and the bus/memory-controller
// queues are never used (the analysed core is charged the phantom-
// contender envelope and the UBD instead). Dispatch order, tie-breaks and
// PRNG draw order are identical to the general loop — core before CRG
// before wake at equal times, lowest CRG index wins — which keeps results
// bit-identical (pinned by the batch golden tests).
//
// The loop runs until the platform finishes (returns never), an error
// occurs, or the next event would land at or past horizon (returns that
// event's time, so callers can resume later or jump their window clock).
// Pausing is safe at any event boundary: the scheduler itself draws no
// randomness, so a paused-and-resumed run dispatches the same events in
// the same order as an uninterrupted one.
func (m *Multicore) analysisAdvance(limit, horizon int64) (int64, error) {
	a := m.cfg.AnalysedCore
	ctl := m.cores[a]
	for {
		tCore := m.evReady[a]
		tWake := m.evWake[a]
		tCRG, crgIdx := never, -1
		for i := range m.evCRG {
			if t := m.evCRG[i]; t < tCRG {
				tCRG, crgIdx = t, i
			}
		}

		if tCore == never && tWake == never {
			if ctl.state == stDone {
				return never, nil
			}
			return never, fmt.Errorf("sim: deadlock: no events but cores not done")
		}

		min := tCore
		if tWake < min {
			min = tWake
		}
		if tCRG < min {
			min = tCRG
		}
		if min > limit {
			return min, m.limitExceeded(limit)
		}
		if min >= horizon {
			return min, nil
		}

		switch {
		case tCore == min:
			// Core-priority inner batch, bounded by the earliest other
			// event AND the window horizon; the strict-less bound matches
			// the general loop's tie-break exactly.
			otherMin := tWake
			if tCRG < otherMin {
				otherMin = tCRG
			}
			if horizon < otherMin {
				otherMin = horizon
			}
			for {
				if err := m.stepCore(ctl); err != nil {
					return min, err
				}
				if ctl.state != stReady {
					break
				}
				clk := ctl.core.Clock
				if clk >= otherMin {
					break
				}
				if clk > limit {
					return clk, m.limitExceeded(limit)
				}
			}
			m.noteCore(ctl)
		case tCRG == min:
			m.fireCRG(crgIdx)
		default: // tWake
			// Wake-chain inner batch: a transaction's timed stages (LLC
			// lookup, EAB stall, UBD wait, next pending request) dispatch
			// back-to-back while each stays strictly before the earliest
			// CRG fire (ties go to the CRG, matching the dispatch order
			// above) and inside the window and cycle limit — the same
			// events in the same order as one loop iteration per stage,
			// without rescanning the candidates in between.
			m.wake(ctl)
			for ctl.state == stWaitEval || ctl.state == stWaitEAB || ctl.state == stWaitWake {
				nw := ctl.wakeAt
				if nw >= tCRG || nw >= horizon || nw > limit {
					break
				}
				m.wake(ctl)
			}
			m.noteCore(ctl)
		}
	}
}

// RunAnalysisInto executes one complete analysis-mode run into res using
// the specialised event loop; results are bit-identical to RunInto. For
// non-analysis platforms it falls back to RunInto.
func (m *Multicore) RunAnalysisInto(res *Result) error {
	if m.cfg.Mode != efl.Analysis {
		return m.RunInto(res)
	}
	m.reset()
	limit := m.effectiveLimit()
	m.setReplayYield(limit)
	if _, err := m.analysisAdvance(limit, never); err != nil {
		return err
	}
	m.collectInto(res)
	return nil
}

// setReplay attaches tr to the analysed core (nil detaches), so runs on
// this platform replay the recorded trace instead of interpreting. Replay
// runs in burst mode: the core retires whole stretches of hitting
// instructions per Step call, yielding only at shared-memory stalls and at
// the run-abort bounds (instruction ceiling, cycle limit — the latter set
// per run by setReplayYield).
func (m *Multicore) setReplay(tr *cpu.Trace) {
	if m.coh != nil {
		// Replay elides same-line repeat accesses, which would skip the
		// per-access coherence Touch; coherent platforms always interpret.
		return
	}
	if ctl := m.cores[m.cfg.AnalysedCore]; ctl.core != nil {
		ctl.core.SetReplay(tr)
		if tr != nil {
			ctl.core.EnableReplayBurst(m.cfg.MaxInstrPerCore)
		}
	}
}

// setReplayYield propagates the run's effective cycle limit to every
// replaying core so bursts yield where the per-instruction path would have
// tripped the limit check.
func (m *Multicore) setReplayYield(limit int64) {
	for _, ctl := range m.cores {
		if ctl.core != nil {
			ctl.core.SetReplayYieldClock(limit)
		}
	}
}

// defaultHorizon is the lockstep window length in simulated cycles. It
// bounds how far any lane can run ahead of the others; the value only
// affects interleaving granularity (and ctx-cancellation latency), never
// results — lockstep equivalence is pinned for any window length by the
// batch golden tests. The default is large enough that each lane's cache
// arrays stay hot in the host cache for a substantial stretch of simulated
// time (fine-grained interleaving thrashes the host cache when K lanes'
// simulated caches exceed it), while still checking cancellation several
// times per second even on slow hosts.
const defaultHorizon = 1 << 18

// Batch steps up to K independent analysis runs of one (config, program)
// pair in lockstep. Construct with NewBatch, execute with Run; the batch
// owns its lanes and result buffers, so steady-state Runs allocate
// nothing. A Batch is not safe for concurrent use.
type Batch struct {
	cfg   Config
	prog  *isa.Program
	lanes []*Multicore
	trace *cpu.Trace // nil: interpreter fallback (non-terminating recording)

	// Horizon is the lockstep window length in cycles (default
	// defaultHorizon).
	Horizon int64
	// OnRewind, when set, is invoked for each lane after its seed rewind
	// and before the run starts — the hook where campaign runtimes arm
	// fault plans and watchdog budgets per lane.
	OnRewind func(lane int, m *Multicore)

	results []Result
	nextAt  []int64
	limits  []int64
	done    []bool
}

// NewBatch builds a K-lane batch for prog under cfg (forced to analysis
// mode on core 0, like RunAnalysis). The program is trace-recorded once
// and the recording shared by every lane; programs that do not terminate
// within cfg.MaxInstrPerCore fall back to per-lane interpretation so that
// runaway-program errors surface exactly as in the single-run engine.
func NewBatch(cfg Config, prog *isa.Program, k int) (*Batch, error) {
	if k < 1 {
		return nil, fmt.Errorf("sim: batch size %d", k)
	}
	cfg = cfg.WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	b := &Batch{
		cfg:     cfg,
		prog:    prog,
		lanes:   make([]*Multicore, k),
		Horizon: defaultHorizon,
		results: make([]Result, k),
		nextAt:  make([]int64, k),
		limits:  make([]int64, k),
		done:    make([]bool, k),
	}
	for i := range b.lanes {
		m, err := New(cfg, progs, uint64(i)) // placeholder seed; Run rewinds
		if err != nil {
			return nil, err
		}
		b.lanes[i] = m
	}
	if tr, err := cpu.RecordTrace(prog, cfg.MaxInstrPerCore); err == nil {
		b.trace = tr
		for _, m := range b.lanes {
			m.setReplay(tr)
		}
	}
	return b, nil
}

// Retarget re-points the batch at a different program under the same
// Config, rebuilding every lane in place (Reuse) and re-attaching the
// shared trace (nil: interpreter fallback). This is what lets a pooled
// batch serve a whole campaign schedule without reconstructing K platforms
// per (config, program) pair; Run's per-seed Rewind makes the lane seeds
// used here placeholders.
func (b *Batch) Retarget(prog *isa.Program, tr *cpu.Trace) error {
	if prog == b.prog {
		return nil
	}
	progs := make([]*isa.Program, b.cfg.Cores)
	progs[0] = prog
	for i, m := range b.lanes {
		if err := m.Reuse(progs, uint64(i)); err != nil {
			return err
		}
		m.setReplay(tr)
	}
	b.prog = prog
	b.trace = tr
	return nil
}

// K returns the batch width.
func (b *Batch) K() int { return len(b.lanes) }

// Replaying reports whether the lanes replay a shared recorded trace
// (false only for programs whose recording exceeded the instruction cap).
func (b *Batch) Replaying() bool { return b.trace != nil }

// Lane exposes lane i's platform (for per-lane auditing between runs).
func (b *Batch) Lane(i int) *Multicore { return b.lanes[i] }

// Run executes len(seeds) runs — lane i under seeds[i] — in lockstep and
// returns per-lane results. Result i is bit-identical to a fresh
// RunAnalysis(b.cfg, prog, seeds[i]); the returned slice and everything it
// references is owned by the batch and valid until the next Run. ctx is
// checked once per lockstep window. The first lane error aborts the whole
// batch with the lane index wrapped.
func (b *Batch) Run(ctx context.Context, seeds []uint64) ([]Result, error) {
	n := len(seeds)
	if n < 1 || n > len(b.lanes) {
		return nil, fmt.Errorf("sim: %d seeds for a %d-lane batch", n, len(b.lanes))
	}
	for i := 0; i < n; i++ {
		m := b.lanes[i]
		m.Rewind(seeds[i])
		if b.OnRewind != nil {
			b.OnRewind(i, m)
		}
		m.reset()
		b.limits[i] = m.effectiveLimit()
		m.setReplayYield(b.limits[i])
		b.nextAt[i] = 0
		b.done[i] = false
	}
	remaining := n
	var clock int64
	for remaining > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		horizon := clock + b.Horizon
		earliest := never
		for i := 0; i < n; i++ {
			if b.done[i] {
				continue
			}
			next, err := b.lanes[i].analysisAdvance(b.limits[i], horizon)
			if err != nil {
				return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
			}
			if next == never {
				b.done[i] = true
				remaining--
				b.lanes[i].collectInto(&b.results[i])
				continue
			}
			b.nextAt[i] = next
			if next < earliest {
				earliest = next
			}
		}
		// Advance the window; jump over empty stretches so a batch of
		// long-idle lanes does not spin through eventless windows.
		clock = horizon
		if earliest != never && earliest > clock {
			clock = earliest
		}
	}
	return b.results[:n], nil
}
