package sim

import (
	"fmt"
	"strings"
	"testing"

	"efl/internal/isa"
)

// The golden fingerprints pin the exact seed-1 behaviour of the simulator:
// per-core cycle counts, instruction counts and cache/EFL/bus/memory event
// counters for one EFL analysis campaign (two consecutive runs, so the
// cross-run RII reseeding is covered), one CP analysis run and one 4-core
// EFL deployment run.
//
// Any change that perturbs the MWC PRNG draw order, the event dispatch
// order or the cache state machines shifts these numbers and fails this
// test loudly. Performance work on the simulator hot paths must keep
// results bit-identical (see DESIGN.md, "Performance"); if a change is
// *intended* to alter timing behaviour, re-pin the constants and say so in
// the commit message.
const (
	goldenAnalysisEFLRun1 = "core0 cycles=72935 instrs=2318 il1=2318/4 dl1=768/178 efl{ev=134 stall=49990 dsum=70162} buswait=1452\nLLC acc=236 hit=102 miss=134 evict=12 wb=1 forced=450 flush=0\ntotal=72935"
	goldenAnalysisEFLRun2 = "core0 cycles=76277 instrs=2318 il1=4636/8 dl1=1536/351 efl{ev=134 stall=53714 dsum=73391} buswait=1310\nLLC acc=226 hit=92 miss=134 evict=5 wb=0 forced=464 flush=0\ntotal=76277"
	goldenAnalysisCP      = "core0 cycles=23065 instrs=2318 il1=2318/4 dl1=768/178 efl{ev=137 stall=0 dsum=0} buswait=1452\nLLC acc=236 hit=99 miss=137 evict=16 wb=2 forced=0 flush=0\ntotal=23065"
	goldenDeployment      = "core0 cycles=74286 instrs=2318 il1=2318/4 dl1=768/178 efl{ev=138 stall=55323 dsum=71892} buswait=0\ncore1 cycles=62649 instrs=2318 il1=2318/4 dl1=768/197 efl{ev=136 stall=43058 dsum=59617} buswait=0\ncore2 cycles=73917 instrs=2318 il1=2318/4 dl1=768/189 efl{ev=136 stall=54736 dsum=70610} buswait=0\ncore3 cycles=67762 instrs=2318 il1=2318/4 dl1=768/185 efl{ev=134 stall=48713 dsum=63806} buswait=0\nLLC acc=1032 hit=488 miss=544 evict=39 wb=7 forced=0 flush=0\nbus tx=1032 wait=23 busy=2064\nmem rd=535 wr=7 wait=103\ntotal=74286"
)

// goldenFingerprint renders everything a run result exposes that perf work
// must not change.
func goldenFingerprint(res *Result) string {
	var b strings.Builder
	for i, cr := range res.PerCore {
		if !cr.Active {
			continue
		}
		fmt.Fprintf(&b, "core%d cycles=%d instrs=%d il1=%d/%d dl1=%d/%d efl{ev=%d stall=%d dsum=%d} buswait=%d\n",
			i, cr.Cycles, cr.Instrs,
			cr.IL1.Accesses, cr.IL1.Misses,
			cr.DL1.Accesses, cr.DL1.Misses,
			cr.EFL.Evictions, cr.EFL.StallCycles, cr.EFL.DelaySum,
			cr.AnalysisBusWait)
	}
	l := res.LLC
	fmt.Fprintf(&b, "LLC acc=%d hit=%d miss=%d evict=%d wb=%d forced=%d flush=%d\n",
		l.Accesses, l.Hits, l.Misses, l.Evictions, l.Writebacks, l.ForcedEvict, l.Flushes)
	if res.Bus.Transactions > 0 {
		fmt.Fprintf(&b, "bus tx=%d wait=%d busy=%d\n",
			res.Bus.Transactions, res.Bus.WaitCycles, res.Bus.BusyCycles)
	}
	if res.Mem.Reads+res.Mem.Writes > 0 {
		fmt.Fprintf(&b, "mem rd=%d wr=%d wait=%d\n",
			res.Mem.Reads, res.Mem.Writes, res.Mem.WaitCycles)
	}
	fmt.Fprintf(&b, "total=%d", res.TotalCycles)
	return b.String()
}

func goldenProg() *isa.Program { return loopProg("golden", 256, 3) }

// assertAttribution checks the observability layer's own invariants on a
// pinned golden run: the per-core cycle decomposition is exhaustive and
// memory reads respect the UBD. Running it inside the golden tests proves
// the instrumentation is both bit-neutral (the fingerprints above) and
// correct (the sums below) on the same runs.
func assertAttribution(t *testing.T, cfg Config, res *Result) {
	t.Helper()
	ubd := int64(cfg.Cores)*cfg.MemSlotCycles + cfg.MemCycles
	for i, cr := range res.PerCore {
		if !cr.Active {
			continue
		}
		if sum := cr.Attribution.Sum(); sum != cr.Cycles {
			t.Errorf("core %d: attribution sums to %d of %d cycles (%v)",
				i, sum, cr.Cycles, cr.Attribution.Map())
		}
		if cr.MaxReadLatency > ubd {
			t.Errorf("core %d: read latency %d exceeds UBD %d", i, cr.MaxReadLatency, ubd)
		}
	}
	if aud := NewAuditor(); aud.CheckRun(cfg, res) != nil {
		t.Errorf("auditor rejects golden run: %v", aud.Err())
	}
}

func TestGoldenAnalysisEFL(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500).WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = goldenProg()
	m, err := New(cfg, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for run, want := range []string{goldenAnalysisEFLRun1, goldenAnalysisEFLRun2} {
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := goldenFingerprint(res); got != want {
			t.Errorf("EFL analysis run %d fingerprint drifted.\ngot:\n%s\nwant:\n%s", run+1, got, want)
		}
		assertAttribution(t, cfg, res)
	}
}

func TestGoldenAnalysisCP(t *testing.T) {
	cfg := DefaultConfig().WithPartition([]int{2, 0, 0, 0}).WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = goldenProg()
	m, err := New(cfg, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenFingerprint(res); got != goldenAnalysisCP {
		t.Errorf("CP analysis fingerprint drifted.\ngot:\n%s\nwant:\n%s", got, goldenAnalysisCP)
	}
	assertAttribution(t, cfg, res)
}

func TestGoldenDeployment(t *testing.T) {
	prog := goldenProg()
	m, err := New(DefaultConfig().WithEFL(500), []*isa.Program{prog, prog, prog, prog}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenFingerprint(res); got != goldenDeployment {
		t.Errorf("deployment fingerprint drifted.\ngot:\n%s\nwant:\n%s", got, goldenDeployment)
	}
	assertAttribution(t, m.Config(), res)
}

// TestRunIntoZeroAlloc pins the other half of the observability contract:
// with the audit off, the fully instrumented RunInto still allocates
// nothing per run.
func TestRunIntoZeroAlloc(t *testing.T) {
	prog := goldenProg()
	m, err := New(DefaultConfig().WithEFL(500), []*isa.Program{prog, prog, prog, prog}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := m.RunInto(&res); err != nil { // warm up buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := m.RunInto(&res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented RunInto allocates %.1f per run", allocs)
	}
}
