package sim

import (
	"errors"
	"testing"

	"efl/internal/fault"
	"efl/internal/isa"
)

// TestWatchdogKillsRun pins the deterministic watchdog: a budget below the
// run's natural length aborts with ErrWatchdog at the same simulated cycle
// on every attempt, while a budget above it changes nothing.
func TestWatchdogKillsRun(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	progs := []*isa.Program{loopProg("wd", 256, 3), loopProg("wd", 256, 3), nil, nil}

	m, err := New(cfg, progs, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	healthy := res.TotalCycles

	// A generous budget must not perturb the run.
	if err := m.Reuse(progs, 42); err != nil {
		t.Fatal(err)
	}
	m.SetWatchdog(healthy * 2)
	res2, err := m.Run()
	if err != nil {
		t.Fatalf("run under generous watchdog: %v", err)
	}
	if res2.TotalCycles != healthy {
		t.Fatalf("generous watchdog changed the run: %d != %d cycles", res2.TotalCycles, healthy)
	}

	// A tight budget kills with the sentinel, identically on both attempts.
	for attempt := 0; attempt < 2; attempt++ {
		if err := m.Reuse(progs, 42); err != nil {
			t.Fatal(err)
		}
		m.SetWatchdog(healthy / 2)
		if _, err := m.Run(); !errors.Is(err, ErrWatchdog) {
			t.Fatalf("attempt %d: want ErrWatchdog for budget %d < %d, got %v", attempt, healthy/2, healthy, err)
		}
	}
}

// TestArmFaultsValidates pins plan validation at the sim boundary: plans
// that could livelock or target nothing are rejected before arming.
func TestArmFaultsValidates(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	progs := []*isa.Program{loopProg("v", 64, 3), nil, nil, nil}
	m, err := New(cfg, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []fault.Plan{
		{Injections: []fault.Injection{{Class: fault.EFLStuckEAB, Core: 99}}},
		{Injections: []fault.Injection{{Class: fault.CacheDisabledWays, Core: fault.AllCores, Param: 0xFF}}}, // all 8 ways
		{Injections: []fault.Injection{{Class: fault.JobPanic, Core: 0}}},
		{Injections: []fault.Injection{{Class: "no-such-class", Core: 0}}},
		{Injections: []fault.Injection{{Class: fault.EFLDeadCRG, Core: 0}}}, // deployment mode: no CRG active
	}
	for i, p := range bad {
		if err := m.ArmFaults(p); err == nil {
			t.Errorf("plan %d (%v): want validation error, got nil", i, p.Injections)
		}
		if m.Faulted() {
			t.Fatalf("plan %d: rejected plan left platform faulted", i)
		}
	}
}

// TestFaultsDoNotLeakThroughReuse pins the pooled-platform hygiene
// contract: a platform that ran with faults armed and a watchdog budget,
// once rewound with Reuse, is bit-identical to a freshly constructed one.
func TestFaultsDoNotLeakThroughReuse(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	progs := func() []*isa.Program {
		return []*isa.Program{loopProg("leak", 256, 3), loopProg("leak", 256, 3), nil, nil}
	}
	const seed = 42

	fresh, err := New(cfg, progs(), seed)
	if err != nil {
		t.Fatal(err)
	}
	want := runFingerprints(t, fresh, 2)

	dirty, err := New(cfg, progs(), 7)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Injections: []fault.Injection{
		{Class: fault.EFLStuckEAB, Core: fault.AllCores},
		{Class: fault.CacheTagFlip, Core: fault.AllCores, Param: 1},
		{Class: fault.BusStarvation, Core: 1, Param: 5000},
		{Class: fault.MemOverrun, Core: fault.AllCores, Param: 300},
	}}
	if err := dirty.ArmFaults(plan); err != nil {
		t.Fatal(err)
	}
	dirty.SetWatchdog(1 << 40)
	if !dirty.Faulted() {
		t.Fatal("ArmFaults did not mark the platform faulted")
	}
	if _, err := dirty.Run(); err != nil {
		t.Fatalf("faulted run: %v", err)
	}

	if err := dirty.Reuse(progs(), seed); err != nil {
		t.Fatal(err)
	}
	if dirty.Faulted() {
		t.Fatal("Reuse left the fault plan armed")
	}
	if dirty.Watchdog() != 0 {
		t.Fatal("Reuse left the watchdog budget armed")
	}
	got := runFingerprints(t, dirty, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d after faulted Reuse differs from fresh:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestFaultsChangeResults is the sanity check behind the detection matrix:
// an armed plan must actually perturb the simulation (otherwise the matrix
// would be vacuous).
func TestFaultsChangeResults(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	progs := func() []*isa.Program {
		return []*isa.Program{loopProg("perturb", 256, 3), loopProg("perturb", 256, 3), nil, nil}
	}
	const seed = 42

	healthy, err := New(cfg, progs(), seed)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := healthy.Run()
	if err != nil {
		t.Fatal(err)
	}

	faulted, err := New(cfg, progs(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := faulted.ArmFaults(fault.Single(fault.EFLStuckEAB, fault.AllCores)); err != nil {
		t.Fatal(err)
	}
	fres, err := faulted.Run()
	if err != nil {
		t.Fatal(err)
	}
	if goldenFingerprint(fres) == goldenFingerprint(hres) {
		t.Fatal("stuck-EAB plan produced a bit-identical run; the fault hook is dead")
	}
}

// TestPoolQuarantine pins the quarantine contract: a quarantined platform
// is never handed out again — the next Get for the same Config constructs
// a fresh one — and QuarantineAll empties the pool.
func TestPoolQuarantine(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	progs := []*isa.Program{loopProg("q", 64, 3), nil, nil, nil}

	p := NewPool()
	m1, err := p.Get(cfg, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := p.Get(cfg, progs, 2); err != nil || got != m1 {
		t.Fatalf("healthy pool must reuse the platform (err %v)", err)
	}

	if !p.Quarantine(cfg) {
		t.Fatal("Quarantine found no pooled platform")
	}
	if p.Quarantine(cfg) {
		t.Fatal("second Quarantine for the same Config should find nothing")
	}
	if p.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", p.Quarantined())
	}
	m2, err := p.Get(cfg, progs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m2 == m1 {
		t.Fatal("quarantined platform was reused")
	}

	other := DefaultConfig().WithEFL(250)
	if _, err := p.Get(other, progs, 4); err != nil {
		t.Fatal(err)
	}
	if n := p.QuarantineAll(); n != 2 {
		t.Fatalf("QuarantineAll removed %d platforms, want 2", n)
	}
	if p.Size() != 0 {
		t.Fatalf("pool still holds %d platforms after QuarantineAll", p.Size())
	}
	if p.Quarantined() != 3 {
		t.Fatalf("Quarantined() = %d, want 3", p.Quarantined())
	}
	m3, err := p.Get(cfg, progs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m2 {
		t.Fatal("platform quarantined by QuarantineAll was reused")
	}
}
