package sim

// Micro-benchmarks for the simulation hot path. BenchmarkAnalysisRun and
// BenchmarkDeploymentQuadCore (sim_test.go) cover whole campaigns; the
// benchmarks here isolate the two innermost operations — a shared-LLC
// access and the parametric placement hash — so regressions can be
// localised. Run all of them with:
//
//	go test -run XXX -bench . -benchmem ./internal/sim/
//
// The experiments binary (-exp bench) runs the campaign-level ones
// programmatically and emits BENCH_SIM.json for regression tracking.

import (
	"testing"

	"efl/internal/cache"
	"efl/internal/rng"
	"efl/internal/rnghash"
)

// benchSink defeats dead-code elimination of pure benchmark loops.
var benchSink int

// BenchmarkLLCAccess drives the raw LLC access path (placement hash, tag
// scan, EoM victim draw, fill) with a working set of twice the cache
// capacity, so a large fraction of accesses miss and exercise eviction.
func BenchmarkLLCAccess(b *testing.B) {
	cfg := DefaultConfig().llcConfig()
	c := cache.New(cfg, rng.New(1))
	mask := cache.FullMask(cfg.Ways)
	lines := uint64(2 * cfg.SizeBytes / cfg.LineBytes)
	lineBytes := uint64(cfg.LineBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Large-stride walk: successive accesses land on unrelated lines,
		// the worst (and representative) case for the hashed placement.
		la := (uint64(i) * 2654435761) % lines
		c.Access(la*lineBytes, i&7 == 0, mask, -1)
	}
}

// BenchmarkLLCLookupHit drives the fused Lookup/CommitHit hit path on a
// resident line set, the common case of a warmed-up shared cache.
func BenchmarkLLCLookupHit(b *testing.B) {
	cfg := DefaultConfig().llcConfig()
	c := cache.New(cfg, rng.New(1))
	mask := cache.FullMask(cfg.Ways)
	lineBytes := uint64(cfg.LineBytes)
	const resident = 64
	for i := uint64(0); i < resident; i++ {
		c.Access(i*lineBytes, false, mask, -1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) % resident) * lineBytes
		lk := c.Lookup(addr, mask)
		if lk.Hit {
			c.CommitHit(lk, false)
		} else {
			c.Fill(lk, false, mask, -1)
		}
	}
}

// BenchmarkHashSet measures the parametric placement hash alone — the
// operation behind every cache access of every simulated instruction.
func BenchmarkHashSet(b *testing.B) {
	cfg := DefaultConfig().llcConfig()
	h := rnghash.New(cfg.Sets(), rnghash.NewRII(rng.New(7)))
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += h.Set(uint64(i) * 31)
	}
	benchSink = sink
}
