package sim

// This file is the runtime soundness auditor. The simulator's claim to
// time-analysability rests on a handful of invariants the paper's argument
// needs but ordinary tests only sample: cycle attribution must be
// exhaustive, deployment memory latencies must stay under the
// analysis-time UBD charge, EFL must actually limit eviction frequency,
// and the two EVT estimators must agree on the pWCET. The Auditor checks
// these on every run of a campaign (opt-in via -audit; the hot path itself
// is untouched — all checks read the already-collected Result), so a
// soundness regression surfaces as a failed campaign rather than a
// silently wrong figure.

import (
	"fmt"
	"math"
	"sync"

	"efl/internal/efl"
	"efl/internal/trace"
)

// Audit invariant names (the keys of AuditReport.Invariants).
const (
	// AuditCycleSum (A1): each active core's attribution categories sum
	// exactly to its cycle count — no cycle unaccounted, none counted twice.
	AuditCycleSum = "cycle-sum"
	// AuditUBD (A2): no memory read completed later than the analysis-time
	// upper-bound delay promises (UBD = Cores·IssueSlot + Service).
	AuditUBD = "ubd"
	// AuditEvictionRate (A3): each EFL-limited core's eviction frequency
	// respects its MID. Two forms: an exact mechanism check on the drawn
	// delays (DelaySum ≤ window + 2·MID — the drawn schedule must fit the
	// observed window), and a rate check on the count (exact e−1 ≤ W/MID
	// with fixed delays, a 6σ bound under the paper's U[0,2·MID] draws).
	AuditEvictionRate = "eviction-rate"
	// AuditEVTCrossCheck (A4): the Gumbel block-maxima and GPD
	// peaks-over-threshold pWCET estimates agree within tolerance.
	// Recorded by the experiments layer via Record.
	AuditEVTCrossCheck = "evt-crosscheck"
	// AuditCoherence (A5): the MSI protocol kept single-writer /
	// multiple-reader and served no stale data. Re-derived from the trace
	// by CheckCoherence, independently of the simulator's directory.
	AuditCoherence = "coherence"
)

// invariant accumulates one invariant's outcomes.
type invariant struct {
	checks     int64
	violations int64
	first      string // description of the first violation seen
}

// Auditor accumulates soundness-invariant outcomes across the runs of a
// campaign. It is safe for concurrent use (campaign workers audit in
// parallel); a nil *Auditor is valid and does nothing, so call sites can
// audit unconditionally.
type Auditor struct {
	mu   sync.Mutex
	runs int64
	inv  map[string]*invariant
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor {
	return &Auditor{inv: make(map[string]*invariant)}
}

// Record logs one outcome of the named invariant: ok=false counts a
// violation with the given detail (the first one per invariant is kept for
// the report).
func (a *Auditor) Record(name string, ok bool, detail string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	iv := a.inv[name]
	if iv == nil {
		iv = &invariant{}
		a.inv[name] = iv
	}
	iv.checks++
	if !ok {
		iv.violations++
		if iv.first == "" {
			iv.first = detail
		}
	}
}

// CheckRun audits one completed run against invariants A1–A3 and returns
// an error describing the first violation (every violation is recorded in
// the report either way). cfg must be the configuration the run executed
// under.
func (a *Auditor) CheckRun(cfg Config, res *Result) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	a.runs++
	a.mu.Unlock()
	var firstErr error
	fail := func(name, detail string) {
		a.Record(name, false, detail)
		if firstErr == nil {
			firstErr = fmt.Errorf("audit: %s: %s", name, detail)
		}
	}

	// A1: exhaustive attribution. The Execute slot comes from the pipeline
	// and every stall slot from the scheduler; agreement is a genuine
	// cross-check between two independently maintained counters.
	for i := range res.PerCore {
		cr := &res.PerCore[i]
		if !cr.Active {
			continue
		}
		if sum := cr.Attribution.Sum(); sum != cr.Cycles {
			fail(AuditCycleSum, fmt.Sprintf(
				"core %d: attribution sums to %d of %d cycles (%v)",
				i, sum, cr.Cycles, cr.Attribution.Map()))
		} else {
			a.Record(AuditCycleSum, true, "")
		}
	}

	// A2: composable memory latency. The per-core maxima and the
	// controller-wide histogram maximum must both respect the UBD the
	// analysis mode charges per read.
	ubd := int64(cfg.Cores)*cfg.MemSlotCycles + cfg.MemCycles
	for i := range res.PerCore {
		cr := &res.PerCore[i]
		if !cr.Active {
			continue
		}
		if cr.MaxReadLatency > ubd {
			fail(AuditUBD, fmt.Sprintf(
				"core %d: memory read took %d cycles, UBD is %d",
				i, cr.MaxReadLatency, ubd))
		} else {
			a.Record(AuditUBD, true, "")
		}
	}
	if max := res.MemReadHist.Max(); max > ubd {
		fail(AuditUBD, fmt.Sprintf(
			"controller served a read in %d cycles, UBD is %d", max, ubd))
	}

	// A3: eviction frequency limiting. Skipped when EFL is off.
	if cfg.MID > 0 {
		for i := range res.PerCore {
			cr := &res.PerCore[i]
			e := int64(cr.EFL.Evictions)
			if e == 0 {
				continue
			}
			// The observation window: an active core's evictions happen
			// within its own cycle count; a CRG co-runner keeps evicting
			// for the whole run.
			window := res.TotalCycles
			if cr.Active {
				window = cr.Cycles
			}
			// Exact mechanism check: evictions are spaced by the drawn
			// delays, so the sum of all but the final draw fits in the
			// window whatever the draws were.
			if cr.EFL.DelaySum > window+2*cfg.MID {
				fail(AuditEvictionRate, fmt.Sprintf(
					"core %d: delay sum %d exceeds window %d + 2·MID (MID=%d, evictions=%d)",
					i, cr.EFL.DelaySum, window, cfg.MID, e))
				continue
			}
			// Rate check on the count. With fixed delays each gap is
			// exactly MID, so (e−1)·MID ≤ window is exact; under U[0,2·MID]
			// the e−1 gaps have mean MID and variance MID²/3 each, so a
			// count more than 6σ above window/MID means the unit is not
			// enforcing the configured rate.
			gaps := float64(e - 1)
			limit := float64(window) / float64(cfg.MID)
			ok := true
			if cfg.EFLFixedMID {
				ok = gaps <= limit
			} else {
				ok = gaps-6*math.Sqrt(gaps/3) <= limit
			}
			if !ok {
				fail(AuditEvictionRate, fmt.Sprintf(
					"core %d: %d evictions in %d cycles exceeds the MID=%d rate bound",
					i, e, window, cfg.MID))
				continue
			}
			a.Record(AuditEvictionRate, true, "")
		}
		// In analysis mode the co-runner CRGs must actually have evicted:
		// a silent CRG would make the analysis envelope vacuous.
		if cfg.Mode == efl.Analysis {
			for i := range res.PerCore {
				if i == cfg.AnalysedCore {
					continue
				}
				if res.PerCore[i].EFL.Evictions == 0 && res.TotalCycles > 3*cfg.MID {
					fail(AuditEvictionRate, fmt.Sprintf(
						"core %d: CRG performed no evictions over %d cycles",
						i, res.TotalCycles))
				}
			}
		}
	}

	return firstErr
}

// cohModelLine is the A5 auditor's independent believed-holder state of
// one shared line.
type cohModelLine struct {
	owner   int8
	sharers uint32
}

// CheckCoherence audits one run's coherence events (A5) and returns an
// error describing the first violation. The events must be a run's trace
// in insertion order — DL1 state transitions happen in simulator execution
// order, which is exactly trace insertion order, so replaying the protocol
// events rebuilds the believed-holder sets without consulting the
// simulator's own directory. Against that replayed state every local
// completion (EvCohHit) is checked for the two MSI soundness properties:
//
//   - no stale read: a core that hits a shared line locally must still be
//     a believed holder (an invalidation it processed would have removed
//     its copy);
//   - SWMR: a store completing locally requires Modified ownership —
//     exactly one writer, no concurrent readers.
//
// The trace buffer drops events from the END when full, so a truncated
// trace yields a consistent prefix rather than false violations.
func (a *Auditor) CheckCoherence(cfg Config, events []trace.Event) error {
	if a == nil {
		return nil
	}
	var firstErr error
	fail := func(detail string) {
		a.Record(AuditCoherence, false, detail)
		if firstErr == nil {
			firstErr = fmt.Errorf("audit: %s: %s", AuditCoherence, detail)
		}
	}
	model := make(map[uint64]*cohModelLine)
	checked := false
	for _, e := range events {
		c := int(e.Core)
		switch e.Kind {
		case trace.EvCohFetch, trace.EvCohUpgrade, trace.EvCohHit:
			if c < 0 || c >= cfg.Cores {
				fail(fmt.Sprintf("%s names core %d outside [0,%d)", e.Kind, c, cfg.Cores))
				continue
			}
		}
		switch e.Kind {
		case trace.EvCohFetch:
			l := model[e.Addr]
			if l == nil {
				l = &cohModelLine{owner: -1}
				model[e.Addr] = l
			}
			if e.Arg == 1 {
				// Exclusive fetch (RFO): preceding EvCohInval events already
				// removed the peers; the fetcher becomes the sole Modified
				// holder.
				l.owner = int8(c)
				l.sharers = 1 << uint(c)
			} else {
				// Shared fetch: a Modified holder (other than the fetcher —
				// an owner refetching a silently evicted line keeps
				// ownership) is demoted to sharer.
				if l.owner >= 0 && int(l.owner) != c {
					l.sharers |= 1 << uint(l.owner)
					l.owner = -1
				}
				l.sharers |= 1 << uint(c)
			}
		case trace.EvCohUpgrade:
			l := model[e.Addr]
			if l == nil {
				l = &cohModelLine{}
				model[e.Addr] = l
			}
			l.owner = int8(c)
			l.sharers = 1 << uint(c)
		case trace.EvCohInval:
			if l := model[e.Addr]; l != nil && c >= 0 {
				l.sharers &^= 1 << uint(c)
				if int(l.owner) == c {
					l.owner = -1
				}
			}
		case trace.EvCohHit:
			checked = true
			l := model[e.Addr]
			if l == nil || (l.sharers&(1<<uint(c)) == 0 && int(l.owner) != c) {
				fail(fmt.Sprintf(
					"core %d hit shared line %#x it does not hold — stale copy (cycle %d)",
					c, e.Addr, e.Cycle))
				continue
			}
			if e.Arg == 1 && int(l.owner) != c {
				fail(fmt.Sprintf(
					"core %d completed a store to line %#x without M ownership — SWMR violated (cycle %d)",
					c, e.Addr, e.Cycle))
				continue
			}
			a.Record(AuditCoherence, true, "")
		}
	}
	// A run whose shared lines were never re-hit locally still audited the
	// replay itself; record the outcome so the invariant shows up.
	if !checked {
		a.Record(AuditCoherence, firstErr == nil, "")
	}
	return firstErr
}

// InvariantReport is one invariant's outcome counts.
type InvariantReport struct {
	Checks         int64  `json:"checks"`
	Violations     int64  `json:"violations"`
	FirstViolation string `json:"first_violation,omitempty"`
}

// AuditReport is the JSON-facing summary of an auditor (the artifact audit
// block). encoding/json sorts map keys, so the rendering is canonical.
type AuditReport struct {
	Runs       int64                      `json:"runs"`
	Checks     int64                      `json:"checks"`
	Violations int64                      `json:"violations"`
	Invariants map[string]InvariantReport `json:"invariants"`
}

// Report snapshots the auditor.
func (a *Auditor) Report() AuditReport {
	r := AuditReport{Invariants: map[string]InvariantReport{}}
	if a == nil {
		return r
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	r.Runs = a.runs
	for name, iv := range a.inv {
		r.Invariants[name] = InvariantReport{
			Checks: iv.checks, Violations: iv.violations, FirstViolation: iv.first,
		}
		r.Checks += iv.checks
		r.Violations += iv.violations
	}
	return r
}

// Err returns an error summarising the recorded violations, or nil when
// every check passed.
func (a *Auditor) Err() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	var first string
	for name, iv := range a.inv {
		total += iv.violations
		if first == "" && iv.first != "" {
			first = name + ": " + iv.first
		}
	}
	if total == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d violation(s); first: %s", total, first)
}
