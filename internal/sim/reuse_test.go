package sim

import (
	"context"
	"testing"

	"efl/internal/cache"
	"efl/internal/isa"
)

// reuseScenario is one (Config, program set) combination whose Reuse
// behaviour must be bit-identical to fresh construction.
type reuseScenario struct {
	name  string
	cfg   Config
	progs func() []*isa.Program
}

func reuseScenarios() []reuseScenario {
	prog := func() *isa.Program { return loopProg("reuse", 256, 3) }
	other := func() *isa.Program { return loopProg("other", 96, 5) }
	quad := func(p func() *isa.Program) []*isa.Program {
		return []*isa.Program{p(), p(), p(), p()}
	}
	analysis := func(p func() *isa.Program) []*isa.Program {
		progs := make([]*isa.Program, 4)
		progs[0] = p()
		return progs
	}
	td := DefaultConfig()
	td.Policy = cache.TimeDeterministic
	wt := DefaultConfig().WithEFL(500).WithAnalysis(0)
	wt.DL1WriteThrough = true
	return []reuseScenario{
		{"efl-analysis", DefaultConfig().WithEFL(500).WithAnalysis(0), func() []*isa.Program { return analysis(prog) }},
		{"efl-analysis-other-prog", DefaultConfig().WithEFL(500).WithAnalysis(0), func() []*isa.Program { return analysis(other) }},
		{"cp-analysis", DefaultConfig().WithPartition([]int{2, 0, 0, 0}).WithAnalysis(0), func() []*isa.Program { return analysis(prog) }},
		{"efl-deployment", DefaultConfig().WithEFL(250), func() []*isa.Program { return quad(prog) }},
		{"cp-deployment", DefaultConfig().WithPartition([]int{1, 2, 4, 1}), func() []*isa.Program { return quad(other) }},
		{"td-deployment", td, func() []*isa.Program { return []*isa.Program{prog()} }},
		{"writethrough-analysis", wt, func() []*isa.Program { return analysis(prog) }},
	}
}

// runFingerprints runs m n times and returns the per-run fingerprints.
func runFingerprints(t *testing.T, m *Multicore, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = goldenFingerprint(res)
	}
	return out
}

// TestReuseMatchesFresh pins the Reuse contract: a platform that already
// ran arbitrary prior work, rewound with Reuse(progs, seed), produces
// run-for-run bit-identical results to New(cfg, progs, seed). Covered
// across EFL/CP, analysis/deployment, TD placement and write-through
// configurations, program swaps and multiple consecutive runs (so the
// cross-run RII reseeding after a Reuse is exercised too).
func TestReuseMatchesFresh(t *testing.T) {
	for _, sc := range reuseScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			const seed = 42
			fresh, err := New(sc.cfg, sc.progs(), seed)
			if err != nil {
				t.Fatal(err)
			}
			want := runFingerprints(t, fresh, 3)

			// Dirty a platform of the same Config with different work
			// under a different seed, then rewind it.
			reused, err := New(sc.cfg, sc.progs(), 7)
			if err != nil {
				t.Fatal(err)
			}
			runFingerprints(t, reused, 2)
			if err := reused.Reuse(sc.progs(), seed); err != nil {
				t.Fatal(err)
			}
			got := runFingerprints(t, reused, 3)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("run %d diverged after Reuse.\ngot:\n%s\nwant:\n%s", i+1, got[i], want[i])
				}
			}
		})
	}
}

// TestReuseSwapsPrograms verifies Reuse across program swaps on the same
// pooled platform, including activating a previously idle core set.
func TestReuseSwapsPrograms(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	a := loopProg("a", 256, 3)
	b := loopProg("b", 96, 5)

	m, err := New(cfg, []*isa.Program{a, a, a, a}, 1)
	if err != nil {
		t.Fatal(err)
	}
	runFingerprints(t, m, 1)

	// Swap to a 2-program deployment (cores 2/3 go idle).
	if err := m.Reuse([]*isa.Program{b, b}, 2); err != nil {
		t.Fatal(err)
	}
	got := runFingerprints(t, m, 2)
	fresh, err := New(cfg, []*isa.Program{b, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := runFingerprints(t, fresh, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("2-prog run %d diverged.\ngot:\n%s\nwant:\n%s", i+1, got[i], want[i])
		}
	}

	// Swap back to four programs (cores 2/3 reactivate with fresh L1s).
	if err := m.Reuse([]*isa.Program{a, b, a, b}, 3); err != nil {
		t.Fatal(err)
	}
	got = runFingerprints(t, m, 1)
	fresh2, err := New(cfg, []*isa.Program{a, b, a, b}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want = runFingerprints(t, fresh2, 1)
	if got[0] != want[0] {
		t.Fatalf("4-prog run diverged.\ngot:\n%s\nwant:\n%s", got[0], want[0])
	}
}

// TestReuseValidation pins the error cases New rejects.
func TestReuseValidation(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500).WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = loopProg("v", 64, 2)
	m, err := New(cfg, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]*isa.Program, cfg.Cores)
	bad[1] = progs[0]
	if err := m.Reuse(bad, 1); err == nil {
		t.Error("analysis-mode program on wrong core accepted")
	}
	long := make([]*isa.Program, cfg.Cores+1)
	if err := m.Reuse(long, 1); err == nil {
		t.Error("too many programs accepted")
	}

	cp := DefaultConfig().WithPartition([]int{2, 0, 0, 0})
	mc, err := New(cp, []*isa.Program{progs[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Reuse([]*isa.Program{progs[0], progs[0]}, 1); err == nil {
		t.Error("program on 0-way partition accepted")
	}
}

// TestPoolReuses verifies the pool returns one platform per Config and
// that pooled campaigns match unpooled ones bit for bit.
func TestPoolReuses(t *testing.T) {
	p := NewPool()
	cfgA := DefaultConfig().WithEFL(500).WithAnalysis(0)
	cfgB := DefaultConfig().WithEFL(250).WithAnalysis(0)
	prog := loopProg("pool", 128, 3)
	progs := make([]*isa.Program, cfgA.Cores)
	progs[0] = prog

	m1, err := p.Get(cfgA, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Get(cfgA, progs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("same Config did not reuse the pooled platform")
	}
	m3, err := p.Get(cfgB, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("distinct Configs shared a platform")
	}
	if p.Size() != 2 {
		t.Errorf("pool holds %d platforms, want 2", p.Size())
	}

	want, err := CollectAnalysisTimes(cfgA, prog, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.CollectAnalysisTimes(context.Background(), cfgA, prog, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled time %d = %v, fresh = %v", i, got[i], want[i])
		}
	}
}

// TestPoolCancellation verifies ctx aborts a campaign between runs.
func TestPoolCancellation(t *testing.T) {
	p := NewPool()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.CollectAnalysisTimes(ctx, DefaultConfig().WithEFL(500), loopProg("c", 64, 2), 10, 1)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
