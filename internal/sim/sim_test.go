package sim

import (
	"testing"

	"efl/internal/cache"
	"efl/internal/efl"
	"efl/internal/isa"
)

// loopProg builds a small compute loop with a configurable data working
// set: iters passes over words words of data (stride one line).
func loopProg(name string, words, iters int) *isa.Program {
	b := isa.NewBuilder(name)
	b.ReserveData(words * 8)
	b.Movi(1, 0)            // pass counter
	b.Movi(2, int64(iters)) // pass bound
	b.Movi(3, int64(isa.DataBase))
	b.Movi(7, int64(words*8)) // byte bound
	b.Label("pass")
	b.Movi(4, 0) // byte offset
	b.Label("inner")
	b.Add(5, 3, 4)
	b.Ld(6, 5, 0)
	b.Addi(6, 6, 1)
	b.St(6, 5, 0)
	b.Addi(4, 4, 16) // one cache line per iteration
	b.Blt(4, 7, "inner")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "pass")
	b.Halt()
	return b.MustProgram()
}

// computeProg is a pure-ALU loop (no data accesses at all).
func computeProg(iters int) *isa.Program {
	b := isa.NewBuilder("compute")
	b.Movi(1, 0)
	b.Movi(2, int64(iters))
	b.Label("loop")
	b.Addi(3, 3, 7)
	b.Xor(4, 3, 1)
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	return b.MustProgram()
}

func TestValidateConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("0 cores accepted")
	}
	bad = cfg.WithEFL(500)
	bad.PartitionWays = []int{2, 2, 2, 2}
	if bad.Validate() == nil {
		t.Error("EFL+CP combination accepted")
	}
	bad = cfg.WithPartition([]int{4, 4, 4, 4})
	if bad.Validate() == nil {
		t.Error("oversubscribed partition accepted")
	}
	// 0-way partitions are valid for idle cores (analysis-mode CP), but a
	// core running a program must have at least one way.
	zeroWay := cfg.WithPartition([]int{8, 0, 0, 0})
	if zeroWay.Validate() != nil {
		t.Error("0-way partition for idle cores rejected")
	}
	if _, err := New(zeroWay, []*isa.Program{nil, computeProg(10), nil, nil}, 1); err == nil {
		t.Error("program on a 0-way partition accepted")
	}
	neg := cfg.WithPartition([]int{8, -1, 0, 0})
	if neg.Validate() == nil {
		t.Error("negative partition accepted")
	}
	bad = cfg.WithAnalysis(9)
	if bad.Validate() == nil {
		t.Error("out-of-range analysed core accepted")
	}
}

func TestLLCMasks(t *testing.T) {
	cfg := DefaultConfig().WithPartition([]int{1, 2, 4, 1})
	if m := cfg.llcMask(0); m != cache.MaskRange(0, 1) {
		t.Errorf("core0 mask %#b", m)
	}
	if m := cfg.llcMask(2); m != cache.MaskRange(3, 4) {
		t.Errorf("core2 mask %#b", m)
	}
	shared := DefaultConfig()
	if m := shared.llcMask(3); m != cache.FullMask(8) {
		t.Errorf("shared mask %#b", m)
	}
}

func TestSingleCoreDeploymentCompletes(t *testing.T) {
	cfg := DefaultConfig()
	prog := loopProg("small", 64, 3) // 64 lines = 1KB, fits everywhere
	m, err := New(cfg, []*isa.Program{prog}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	cr := res.PerCore[0]
	if !cr.Active || cr.Instrs == 0 || cr.Cycles <= 0 {
		t.Fatalf("core result = %+v", cr)
	}
	if cr.IPC <= 0 || cr.IPC > 1 {
		t.Fatalf("IPC = %v", cr.IPC)
	}
	// Warm data after first pass: DL1 misses bounded by ~working set.
	if cr.DL1.Misses > cr.DL1.Accesses {
		t.Fatal("stats inconsistent")
	}
	if res.TotalCycles != cr.Cycles {
		t.Fatal("TotalCycles wrong")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	prog := loopProg("det", 128, 2)
	run := func() int64 {
		m, err := New(cfg, []*isa.Program{prog, prog, prog, prog}, 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, cr := range res.PerCore {
			sum += cr.Cycles
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different timings: %d vs %d", a, b)
	}
}

func TestRunsVaryAcrossRIIs(t *testing.T) {
	// Successive Run() calls on the same platform must differ (new RIIs,
	// new random draws) — the property MBPTA measurement collection needs.
	cfg := DefaultConfig()
	prog := loopProg("vary", 512, 2)
	m, err := New(cfg, []*isa.Program{prog}, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		seen[res.PerCore[0].Cycles] = true
	}
	if len(seen) < 2 {
		t.Fatalf("10 runs produced %d distinct execution times", len(seen))
	}
}

func TestComputeBoundIPCNearOne(t *testing.T) {
	// A pure-ALU loop has only cold instruction misses; IPC approaches
	// the in-order bound set by the taken-branch penalty: the 4-instr
	// loop body costs 5 cycles -> IPC ~0.8.
	cfg := DefaultConfig()
	prog := computeProg(20000)
	m, _ := New(cfg, []*isa.Program{prog}, 3)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	ipc := res.PerCore[0].IPC
	if ipc < 0.75 || ipc > 0.85 {
		t.Fatalf("compute-bound IPC = %v, want ~0.8", ipc)
	}
}

func TestMemoryBoundSlower(t *testing.T) {
	cfg := DefaultConfig()
	// Working set 8192 lines = 128KB >> 64KB LLC: thrashes everything.
	big := loopProg("big", 8192*2, 1)
	small := loopProg("small", 64, 256) // similar instruction count
	mBig, _ := New(cfg, []*isa.Program{big}, 4)
	mSmall, _ := New(cfg, []*isa.Program{small}, 4)
	rBig, err := mBig.Run()
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := mSmall.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rBig.PerCore[0].IPC >= rSmall.PerCore[0].IPC {
		t.Fatalf("streaming program (IPC %v) not slower than cache-resident one (IPC %v)",
			rBig.PerCore[0].IPC, rSmall.PerCore[0].IPC)
	}
	if rBig.Mem.Reads == 0 {
		t.Fatal("streaming program never reached memory")
	}
}

func TestAnalysisModeCRGInterference(t *testing.T) {
	prog := loopProg("tua", 256, 4)
	// EFL analysis: CRGs evict.
	cfgEFL := DefaultConfig().WithEFL(250).WithAnalysis(0)
	progs := make([]*isa.Program, 4)
	progs[0] = prog
	m, err := New(cfgEFL, progs, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC.ForcedEvict == 0 {
		t.Fatal("analysis mode with EFL produced no CRG evictions")
	}
	// Roughly one eviction per MID cycles per co-runner core.
	perCRG := float64(res.LLC.ForcedEvict) / 3
	cycles := float64(res.PerCore[0].Cycles)
	rate := cycles / perCRG
	if rate < 200 || rate > 320 {
		t.Fatalf("CRG eviction rate: one per %.0f cycles, want ~250", rate)
	}
	if res.PerCore[0].AnalysisBusWait == 0 {
		t.Fatal("no phantom bus contention charged at analysis")
	}
}

func TestAnalysisSlowerThanIsolatedDeployment(t *testing.T) {
	// pWCET trustworthiness: analysis-time execution must upper-bound an
	// uncontended deployment run of the same program.
	prog := loopProg("bound", 256, 4)
	ana, err := RunAnalysis(DefaultConfig().WithEFL(500), prog, 6)
	if err != nil {
		t.Fatal(err)
	}
	mDep, _ := New(DefaultConfig().WithEFL(500), []*isa.Program{prog}, 6)
	dep, err := mDep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ana.PerCore[0].Cycles <= dep.PerCore[0].Cycles {
		t.Fatalf("analysis run (%d) not slower than isolated deployment (%d)",
			ana.PerCore[0].Cycles, dep.PerCore[0].Cycles)
	}
}

func TestEFLStallsGrowWithMID(t *testing.T) {
	// A streaming program misses constantly; its own EFL gate must stall
	// it more with a larger MID (deployment, isolated).
	prog := loopProg("stream", 8192*2, 1)
	var stalls [2]int64
	var cycles [2]int64
	for i, mid := range []int64{250, 1000} {
		m, err := New(DefaultConfig().WithEFL(mid), []*isa.Program{prog}, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		stalls[i] = res.PerCore[0].EFL.StallCycles
		cycles[i] = res.PerCore[0].Cycles
	}
	if stalls[1] <= stalls[0] {
		t.Fatalf("EFL stalls did not grow with MID: %d (mid250) vs %d (mid1000)", stalls[0], stalls[1])
	}
	if cycles[1] <= cycles[0] {
		t.Fatalf("execution time did not grow with MID: %d vs %d", cycles[0], cycles[1])
	}
}

func TestPartitionHurtsCapacity(t *testing.T) {
	// Working set ~2048 lines (32KB): fits in 8 ways (4096 lines), thrashes
	// in 1 way (512 lines).
	prog := loopProg("ws32k", 2048*2, 3)
	m1, _ := New(DefaultConfig().WithPartition([]int{1, 1, 1, 1}), []*isa.Program{prog}, 9)
	m8, _ := New(DefaultConfig(), []*isa.Program{prog}, 9)
	r1, err := m1.Run()
	if err != nil {
		t.Fatal(err)
	}
	r8, err := m8.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.PerCore[0].Cycles <= r8.PerCore[0].Cycles {
		t.Fatalf("1-way partition (%d cycles) not slower than full LLC (%d cycles)",
			r1.PerCore[0].Cycles, r8.PerCore[0].Cycles)
	}
}

func TestPartitionIsolationEndToEnd(t *testing.T) {
	// Under CP, a thrashing co-runner must not evict the victim task's
	// LLC lines; under a fully shared LLC without EFL it degrades them.
	victim := loopProg("victim", 512, 6)
	bully := loopProg("bully", 8192*2, 2)

	runPair := func(cfg Config) (victimCycles int64) {
		m, err := New(cfg, []*isa.Program{victim, bully}, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.PerCore[0].Cycles
	}
	cp := runPair(DefaultConfig().WithPartition([]int{2, 2, 2, 2}))
	shared := runPair(DefaultConfig())
	if shared <= 0 || cp <= 0 {
		t.Fatal("runs failed")
	}
	// The shared-uncontrolled victim should generally be slower than the
	// partitioned one, but random placement noise exists; assert only a
	// sane relationship (within 3x) and that both completed.
	if cp > shared*3 {
		t.Fatalf("partitioned victim (%d) wildly slower than shared victim (%d)", cp, shared)
	}
}

func TestFourCoreDeploymentContention(t *testing.T) {
	prog := loopProg("quad", 512, 3)
	m, err := New(DefaultConfig().WithEFL(500), []*isa.Program{prog, prog, prog, prog}, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range res.PerCore {
		if !cr.Active || cr.Instrs == 0 {
			t.Fatalf("core %d inactive: %+v", i, cr)
		}
	}
	if res.Bus.Transactions == 0 {
		t.Fatal("no bus transactions in a 4-core run")
	}
	if res.Bus.WaitCycles == 0 {
		t.Fatal("4 contending cores produced zero bus wait")
	}
	// Solo runs for comparison: contention must slow core 0 down on
	// average (individual runs vary with random placement).
	avg := func(progs []*isa.Program) float64 {
		m, err := New(DefaultConfig().WithEFL(500), progs, 11)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const n = 8
		for i := 0; i < n; i++ {
			r, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(r.PerCore[0].Cycles)
		}
		return sum / n
	}
	contended := avg([]*isa.Program{prog, prog, prog, prog})
	solo := avg([]*isa.Program{prog})
	if contended <= solo {
		t.Fatalf("contended average (%v) not slower than solo (%v)", contended, solo)
	}
}

func TestAnalysisRequiresSingleProgram(t *testing.T) {
	prog := computeProg(10)
	cfg := DefaultConfig().WithEFL(500).WithAnalysis(0)
	if _, err := New(cfg, []*isa.Program{prog, prog, nil, nil}, 1); err == nil {
		t.Fatal("analysis mode accepted a co-runner program")
	}
	if _, err := New(cfg, []*isa.Program{nil, prog, nil, nil}, 1); err == nil {
		t.Fatal("analysis mode accepted program on wrong core")
	}
}

func TestCollectAnalysisTimes(t *testing.T) {
	prog := loopProg("times", 128, 2)
	times, err := CollectAnalysisTimes(DefaultConfig().WithEFL(500), prog, 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 20 {
		t.Fatalf("%d times", len(times))
	}
	distinct := map[float64]bool{}
	for _, v := range times {
		if v <= 0 {
			t.Fatal("non-positive execution time")
		}
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatal("analysis times are constant; randomisation broken")
	}
}

func TestFaultSurfaces(t *testing.T) {
	b := isa.NewBuilder("crash")
	b.Movi(1, 1)
	b.Div(2, 1, 0)
	b.Halt()
	m, _ := New(DefaultConfig(), []*isa.Program{b.MustProgram()}, 1)
	if _, err := m.Run(); err == nil {
		t.Fatal("machine fault not surfaced by Run")
	}
}

func TestModeRecordedInResults(t *testing.T) {
	prog := loopProg("modes", 64, 1)
	res, err := RunAnalysis(DefaultConfig().WithEFL(250), prog, 13)
	if err != nil {
		t.Fatal(err)
	}
	// In analysis mode the analysed core's EFL stats must show evictions
	// being recorded, and the mode must be analysis.
	if res.PerCore[0].EFL.Evictions == 0 && res.LLC.Misses > 0 {
		// Only fails if the program missed in LLC with a full set; this
		// small program may not evict. Accept either, but CRGs must run:
		if res.LLC.ForcedEvict == 0 {
			t.Fatal("no eviction activity at analysis")
		}
	}
	_ = efl.Analysis
}

func BenchmarkDeploymentQuadCore(b *testing.B) {
	prog := loopProg("bench", 512, 2)
	m, err := New(DefaultConfig().WithEFL(500), []*isa.Program{prog, prog, prog, prog}, 1)
	if err != nil {
		b.Fatal(err)
	}
	var res Result
	if err := m.RunInto(&res); err != nil { // warm result buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunInto(&res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalysisRun(b *testing.B) {
	prog := loopProg("bench", 512, 2)
	progs := make([]*isa.Program, 4)
	progs[0] = prog
	m, err := New(DefaultConfig().WithEFL(500).WithAnalysis(0), progs, 1)
	if err != nil {
		b.Fatal(err)
	}
	var res Result
	if err := m.RunInto(&res); err != nil { // warm result buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunInto(&res); err != nil {
			b.Fatal(err)
		}
	}
}
