package sim

import (
	"errors"
	"fmt"

	"efl/internal/cache"
	"efl/internal/efl"
	"efl/internal/fault"
	"efl/internal/rng"
)

// ErrWatchdog is the sentinel a run returns when it exceeds the per-job
// cycle budget armed with SetWatchdog. The hardened runner classifies jobs
// killed this way separately from transient failures: a deterministic
// simulation that blew its budget once will blow it on every retry.
var ErrWatchdog = errors.New("sim: watchdog cycle budget exceeded")

// SetWatchdog arms a per-run cycle budget: a run whose next event would
// pass budget cycles aborts with an error wrapping ErrWatchdog. budget <= 0
// disables the watchdog (the Config.MaxCycles ceiling still applies). The
// budget is expressed in simulated cycles, so the kill is deterministic —
// the same seed dies at the same event regardless of host load.
func (m *Multicore) SetWatchdog(budget int64) {
	if budget < 0 {
		budget = 0
	}
	m.watchdog = budget
}

// Watchdog returns the armed cycle budget (0 when disabled).
func (m *Multicore) Watchdog() int64 { return m.watchdog }

// limitExceeded builds the error for a run crossing the effective cycle
// limit: the watchdog sentinel when the per-job budget is the binding
// constraint, the configuration ceiling otherwise.
func (m *Multicore) limitExceeded(limit int64) error {
	if m.watchdog > 0 && limit == m.watchdog && m.watchdog < m.cfg.MaxCycles {
		return fmt.Errorf("%w (budget %d cycles)", ErrWatchdog, m.watchdog)
	}
	return fmt.Errorf("sim: exceeded %d cycles", m.cfg.MaxCycles)
}

// ArmFaults validates plan against the platform and arms every injection
// onto its hardware hook. Faults stay armed across RunInto calls (a faulty
// platform is faulty for every run of the job) until DisarmFaults — which
// Reuse calls, so a pooled platform can never leak a fault into the next
// campaign. Arming is not cumulative with a previously armed plan: arm,
// run, disarm.
func (m *Multicore) ArmFaults(plan fault.Plan) error {
	if err := plan.Validate(m.cfg.Cores, m.cfg.LLCWays); err != nil {
		return err
	}
	for _, inj := range plan.Injections {
		param := inj.Param
		if param == 0 {
			param = fault.DefaultParam(inj.Class)
		}
		switch inj.Class {
		case fault.EFLStuckEAB:
			m.eachUnit(inj.Core, func(u *efl.Unit) { u.InjectStuckEAB() })
		case fault.EFLSaturatedCDC:
			p := param
			m.eachUnit(inj.Core, func(u *efl.Unit) { u.InjectSaturatedCDC(p) })
		case fault.EFLDeadCRG:
			armed := false
			for i := 0; i < m.cfg.Cores; i++ {
				if inj.Core != fault.AllCores && inj.Core != i {
					continue
				}
				if c := m.ac.CRG(i); c != nil {
					c.InjectDead()
					armed = true
				}
			}
			if !armed {
				return fmt.Errorf("sim: %s targets no active CRG (mode %v)", inj.Class, m.cfg.Mode)
			}
		case fault.CacheDisabledWays:
			m.llc.InjectDisabledWays(cache.WayMask(uint32(param)))
		case fault.CacheTagFlip:
			m.llc.InjectTagFlip(tagFlipBit, uint64(param))
		case fault.RNGStuck:
			m.eachUnit(inj.Core, func(u *efl.Unit) {
				u.InjectRNG(func(rng.Source) rng.Source { return rng.StuckSource{} })
			})
		case fault.RNGBiased:
			and := uint32(param)
			m.llc.InjectRNG(func(s rng.Source) rng.Source {
				return rng.MaskSource{Src: s, And: and}
			})
		case fault.BusStarvation:
			if inj.Core == fault.AllCores {
				return fmt.Errorf("sim: %s needs a specific core", inj.Class)
			}
			m.bus.InjectStarvation(inj.Core, param)
		case fault.MemOverrun:
			m.mc.InjectReadOverrun(param, memOverrunPeriod)
		case fault.CohDroppedInval:
			if m.coh == nil {
				return fmt.Errorf("sim: %s requires the coherence layer (SharedDataBytes > 0)", inj.Class)
			}
			m.cohDropTo = inj.Core
		default:
			return fmt.Errorf("sim: unarmable fault class %q", inj.Class)
		}
	}
	m.faulted = true
	return nil
}

// tagFlipBit is the tag bit CacheTagFlip corrupts. Line-address bit 2
// displaces the tag by four lines — close enough that the flipped address
// is a plausible neighbour, far enough that it never aliases the original.
const tagFlipBit = 2

// memOverrunPeriod is every how many blocking reads MemOverrun delays.
const memOverrunPeriod = 4

// Faulted reports whether a fault plan is currently armed.
func (m *Multicore) Faulted() bool { return m.faulted }

// DisarmFaults restores every hardware structure to its healthy
// configuration. State corrupted while the faults were armed (cache
// contents, stalled cores) is NOT repaired — a platform that errored
// mid-run must be quarantined (Pool.Quarantine) or rewound (Reuse).
func (m *Multicore) DisarmFaults() {
	if !m.faulted {
		return
	}
	for i := 0; i < m.cfg.Cores; i++ {
		m.ac.Unit(i).ClearFaults()
		if c := m.ac.CRG(i); c != nil {
			c.ClearFaults()
		}
	}
	m.llc.ClearFaults()
	m.bus.ClearFaults()
	m.mc.ClearFaults()
	m.cohDropTo = -1
	m.faulted = false
}

// eachUnit applies f to the targeted EFL unit(s).
func (m *Multicore) eachUnit(core int, f func(*efl.Unit)) {
	for i := 0; i < m.cfg.Cores; i++ {
		if core == fault.AllCores || core == i {
			f(m.ac.Unit(i))
		}
	}
}
