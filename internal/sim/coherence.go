package sim

// This file holds the two extensions the pluggable hierarchy brings over
// the fixed IL1/DL1→LLC platform:
//
//   - evalLevel, the generalised miss walk: a transaction that won the bus
//     consults the shared levels in order (each intermediate charged its
//     own lookup latency), reaching evalLLC — and with it the EFL gate,
//     which protects the LAST level only — when every intermediate missed.
//
//   - cohDir, the MSI directory for shared-data lines. The directory
//     tracks the BELIEVED protocol state (silent clean evictions are not
//     reported by the L1s, so the believed holder set over-approximates
//     the physical one — a stale entry can only cause a no-op
//     invalidation, never a missed one). Stores to non-owned lines raise
//     upgrade/read-for-ownership transactions through the existing bus
//     arbitration; every protocol transition emits a trace event at the
//     exact point it is applied, so the A5 auditor can replay the protocol
//     from the trace in insertion order (= simulator execution order) and
//     re-derive SWMR and no-stale-reads independently.

import (
	"sort"

	"efl/internal/cpu"
	"efl/internal/efl"
	"efl/internal/isa"
	"efl/internal/memctrl"
	"efl/internal/metrics"
	"efl/internal/trace"
)

// evalLevel processes the shared-level lookup of ctl.req completing at
// cycle t on a multi-level hierarchy. ctl.lvl indexes the shared level
// being consulted: intermediates first, then the last level via evalLLC
// (EFL gate, CRG semantics, partitioning). One bus grant covers the whole
// walk — the bus is the core-side interconnect; hops between shared
// levels ride the backside and cost each level's lookup latency.
func (m *Multicore) evalLevel(ctl *coreCtl, t int64) {
	if ctl.lvl >= len(m.mids) {
		m.evalLLC(ctl, t)
		return
	}
	if m.coh != nil && ctl.lvl == 0 {
		m.cohServe(ctl, t)
	}
	lv := &m.mids[ctl.lvl]
	write := ctl.req.Kind != cpu.ReqFetch
	lk := lv.Lookup(ctl.req.Addr, m.midMask[ctl.lvl])
	if lk.Hit {
		lv.CommitHit(lk, write)
		m.emit(t, ctl.id, trace.EvLLCHit, ctl.req.Addr, int64(ctl.lvl+1))
		m.finishRequest(ctl, t)
		return
	}
	// Miss: allocate here at lookup time (the simulator's usual
	// state-at-lookup convention; intermediate fills are not EFL-gated —
	// the gate protects the last level) and walk outward. Dirty victims
	// are posted to memory like the last level's (non-inclusive
	// hierarchy).
	res := lv.Fill(lk, write, m.midMask[ctl.lvl], -1)
	m.emit(t, ctl.id, trace.EvLLCMiss, ctl.req.Addr, int64(ctl.lvl+1))
	if res.EvictedDirty && m.cfg.Mode == efl.Deployment {
		m.mcRequest(memctrl.Request{Core: ctl.id, Arrival: t, Kind: memctrl.Write})
	}
	if ctl.req.Kind == cpu.ReqWriteback {
		// A writeback deposits its line at the first shared level and is
		// done; it does not walk further out.
		m.finishRequest(ctl, t)
		return
	}
	ctl.lvl++
	lat := m.shLat[ctl.lvl]
	ctl.state = stWaitEval
	ctl.wakeAt = t + lat
	ctl.evalAt = ctl.wakeAt
	ctl.acct.Add(metrics.LLCLookup, lat)
}

// serveUpgrade completes a coherence upgrade granted at cycle at after
// wait cycles of arbitration: peers' copies are invalidated and the whole
// transaction (wait + slot) is charged to the coherence category. No
// cache level is consulted — the line is already resident in the writer's
// DL1.
func (m *Multicore) serveUpgrade(ctl *coreCtl, at, wait int64) {
	m.coh.upgrade(ctl.id, ctl.req.Addr, at)
	ctl.acct.Add(metrics.Coherence, wait+m.cfg.BusSlotCycles)
	ctl.state = stWaitWake
	ctl.wakeAt = at + m.cfg.BusSlotCycles
	ctl.evalAt = ctl.wakeAt
}

// cohServe performs the coherence side of a shared-data fetch reaching the
// first shared level: an exclusive fetch (read-for-ownership) invalidates
// peer copies, a shared fetch downgrades a Modified peer copy.
func (m *Multicore) cohServe(ctl *coreCtl, t int64) {
	if ctl.req.Kind != cpu.ReqFetch || ctl.req.Instr {
		return
	}
	if !m.coh.shared(ctl.req.Addr) {
		return
	}
	m.coh.fetch(ctl.id, ctl.req.Addr, ctl.req.Excl, t)
}

// CoherenceStats counts the run's protocol traffic.
type CoherenceStats struct {
	Upgrades      uint64 // stores that had to invalidate peers of a resident line
	ExclFetches   uint64 // read-for-ownership fetches
	Invalidations uint64 // invalidation messages sent to peers
	Downgrades    uint64 // Modified peer copies demoted to Shared by a read
}

// CoherenceStats returns the protocol traffic of the last completed run
// (zero when the coherence layer is off).
func (m *Multicore) CoherenceStats() CoherenceStats {
	if m.coh == nil {
		return CoherenceStats{}
	}
	return m.coh.stats
}

// LineSharingStats describes one shared line's observed access pattern —
// the per-line multi-core report behind false-sharing detection.
type LineSharingStats struct {
	Addr     uint64 // line byte address
	Cores    int    // distinct cores that touched the line
	Accesses uint64
	Writes   uint64
	// FalseShared: at least two cores touched the line with pairwise
	// disjoint 4-byte-word footprints — they never shared a word, only
	// the line, so every invalidation between them was avoidable.
	FalseShared bool
}

// SharingReport returns the per-line sharing statistics of the last
// completed run, sorted by line address. Nil when the coherence layer is
// off.
func (m *Multicore) SharingReport() []LineSharingStats {
	if m.coh == nil {
		return nil
	}
	out := make([]LineSharingStats, 0, len(m.coh.lines))
	for la, e := range m.coh.lines {
		s := LineSharingStats{Addr: la, Accesses: e.acc, Writes: e.writes}
		var union uint32
		popSum := 0
		for c, w := range e.words {
			if e.touched&(1<<uint(c)) == 0 {
				continue
			}
			s.Cores++
			union |= w
			popSum += popcount32(w)
		}
		s.FalseShared = s.Cores >= 2 && popSum == popcount32(union)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func popcount32(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// cohLine is one shared line's directory entry: the believed MSI state
// plus the access statistics backing the sharing report.
type cohLine struct {
	owner   int8   // core holding the line in Modified, -1 none
	sharers uint32 // bitmask of believed holders
	touched uint32 // bitmask of cores that accessed the line this run
	acc     uint64
	writes  uint64
	words   []uint32 // per-core 4-byte-word offset masks within the line
}

// cohDir is the MSI directory. It lives on the simulator goroutine; no
// locking.
type cohDir struct {
	m        *Multicore
	lineMask uint64 // LineBytes-1
	limit    uint64 // exclusive upper bound of the shared window
	lines    map[uint64]*cohLine
	stats    CoherenceStats
}

func newCohDir(m *Multicore) *cohDir {
	return &cohDir{
		m:        m,
		lineMask: uint64(m.cfg.LineBytes - 1),
		limit:    isa.DataBase + uint64(m.cfg.SharedDataBytes),
		lines:    make(map[uint64]*cohLine),
	}
}

// reset clears the directory for a fresh run (per-run caches flush, so no
// believed holder survives either).
func (d *cohDir) reset() {
	clear(d.lines)
	d.stats = CoherenceStats{}
}

// shared reports whether addr lies in the shared-data window.
func (d *cohDir) shared(addr uint64) bool {
	return addr >= isa.DataBase && addr < d.limit
}

func (d *cohDir) ensure(la uint64) *cohLine {
	e := d.lines[la]
	if e == nil {
		e = &cohLine{owner: -1, words: make([]uint32, len(d.m.cores))}
		d.lines[la] = e
	}
	return e
}

// Touch implements cpu.Coherence: it records a shared-window access and
// reports whether core holds the line in Modified state. Accesses that
// complete in the core's own DL1 (read hits, and write hits with
// ownership) emit the EvCohHit event the A5 auditor validates against the
// replayed protocol state.
func (d *cohDir) Touch(core int, addr uint64, write, l1hit bool) bool {
	la := addr &^ d.lineMask
	e := d.ensure(la)
	e.touched |= 1 << uint(core)
	e.acc++
	if write {
		e.writes++
	}
	e.words[core] |= 1 << ((addr & d.lineMask) >> 2)
	owns := int(e.owner) == core
	if l1hit && (!write || owns) {
		arg := int64(0)
		if write {
			arg = 1
		}
		d.m.emit(d.m.cores[core].core.Clock, core, trace.EvCohHit, la, arg)
	}
	return owns
}

// fetch applies the protocol transition of a shared-line fetch completing
// at cycle t: exclusive (read-for-ownership) invalidates every believed
// peer copy; shared downgrades a Modified peer and joins the sharer set.
// A fetch by the current owner keeps its ownership (the owner refetching
// a line it silently lost to a conflict eviction).
func (d *cohDir) fetch(core int, addr uint64, excl bool, t int64) {
	la := addr &^ d.lineMask
	e := d.ensure(la)
	if excl {
		d.stats.ExclFetches++
		d.invalidatePeers(e, la, core, t)
		e.owner = int8(core)
		e.sharers = 1 << uint(core)
		d.m.emit(t, core, trace.EvCohFetch, la, 1)
		return
	}
	if e.owner >= 0 && int(e.owner) != core {
		// Demote the Modified holder to Shared: its copy stays resident
		// but the dirty data is written back (posted).
		d.stats.Downgrades++
		p := int(e.owner)
		e.sharers |= 1 << uint(p)
		e.owner = -1
		if pc := d.m.cores[p]; pc.core != nil {
			if _, dirty := pc.core.DL1.Downgrade(la); dirty && d.m.cfg.Mode == efl.Deployment {
				d.m.mcRequest(memctrl.Request{Core: p, Arrival: t, Kind: memctrl.Write})
			}
		}
	}
	e.sharers |= 1 << uint(core)
	d.m.emit(t, core, trace.EvCohFetch, la, 0)
}

// upgrade applies the protocol transition of a store upgrading a resident
// shared line to Modified at cycle t.
func (d *cohDir) upgrade(core int, addr uint64, t int64) {
	la := addr &^ d.lineMask
	e := d.ensure(la)
	d.stats.Upgrades++
	n := d.invalidatePeers(e, la, core, t)
	e.owner = int8(core)
	e.sharers = 1 << uint(core)
	d.m.emit(t, core, trace.EvCohUpgrade, la, int64(n))
}

// invalidatePeers sends an invalidation to every believed holder of la
// except core, removing their DL1 copies (a dirty copy is written back,
// posted). The EvCohInval event records the message being SENT — the
// directory transitions regardless — while the stuck-invalidation fault
// (cohDropTo) drops the physical application, which is exactly the stale
// copy the A5 auditor must catch. Returns the number of messages sent.
func (d *cohDir) invalidatePeers(e *cohLine, la uint64, core int, t int64) int {
	hold := e.sharers
	if e.owner >= 0 {
		hold |= 1 << uint(e.owner)
	}
	n := 0
	for p := range d.m.cores {
		if p == core || hold&(1<<uint(p)) == 0 {
			continue
		}
		n++
		d.stats.Invalidations++
		d.m.emit(t, p, trace.EvCohInval, la, 0)
		if p == d.m.cohDropTo {
			continue
		}
		if pc := d.m.cores[p]; pc.core != nil {
			if _, dirty := pc.core.DL1.Invalidate(la); dirty && d.m.cfg.Mode == efl.Deployment {
				d.m.mcRequest(memctrl.Request{Core: p, Arrival: t, Kind: memctrl.Write})
			}
		}
	}
	return n
}
