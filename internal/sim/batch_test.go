package sim

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"efl/internal/bench"
	"efl/internal/cache"
	"efl/internal/isa"
)

// batchConfigs is the configuration matrix the Rewind/batch equivalence
// tests sweep: the paper platform under EFL, fixed-MID EFL, way
// partitioning, the time-deterministic ablation and write-through DL1s.
func batchConfigs() map[string]Config {
	td := DefaultConfig().WithEFL(500)
	td.Policy = cache.TimeDeterministic
	wt := DefaultConfig().WithEFL(500)
	wt.DL1WriteThrough = true
	wta := DefaultConfig().WithEFL(500)
	wta.DL1WriteThrough = true
	wta.WTAllocate = true
	return map[string]Config{
		"efl500":   DefaultConfig().WithEFL(500),
		"efl250":   DefaultConfig().WithEFL(250),
		"fixedMID": fixedMIDConfig(),
		"cp2":      DefaultConfig().WithPartition([]int{2, 2, 2, 2}),
		"td":       td,
		"wt":       wt,
		"wtalloc":  wta,
	}
}

func fixedMIDConfig() Config {
	cfg := DefaultConfig().WithEFL(500)
	cfg.EFLFixedMID = true
	return cfg
}

// TestRewindMatchesFresh pins Rewind's contract: a rewound platform is
// bit-identical to a freshly constructed one under the same seed, across
// the config matrix and across multiple rewinds (including rewinding away
// from a different seed's state).
func TestRewindMatchesFresh(t *testing.T) {
	prog := goldenProg()
	for name, base := range batchConfigs() {
		cfg := base.WithAnalysis(0)
		t.Run(name, func(t *testing.T) {
			progs := make([]*isa.Program, cfg.Cores)
			progs[0] = prog
			reused, err := New(cfg, progs, 999)
			if err != nil {
				t.Fatal(err)
			}
			var got, want Result
			for _, seed := range []uint64{1, 7, 1} {
				fresh, err := New(cfg, progs, seed)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.RunInto(&want); err != nil {
					t.Fatal(err)
				}
				reused.Rewind(seed)
				if err := reused.RunInto(&got); err != nil {
					t.Fatal(err)
				}
				if gf, wf := goldenFingerprint(&got), goldenFingerprint(&want); gf != wf {
					t.Fatalf("seed %d: rewound run diverged:\n got %s\nwant %s", seed, gf, wf)
				}
			}
		})
	}
}

// TestRunAnalysisIntoMatchesRunInto pins the specialised analysis event
// loop against the general one, run by run (the cross-run RII reseeding is
// covered by consecutive runs on each engine).
func TestRunAnalysisIntoMatchesRunInto(t *testing.T) {
	prog := goldenProg()
	for name, base := range batchConfigs() {
		cfg := base.WithAnalysis(0)
		t.Run(name, func(t *testing.T) {
			progs := make([]*isa.Program, cfg.Cores)
			progs[0] = prog
			ref, err := New(cfg, progs, 11)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := New(cfg, progs, 11)
			if err != nil {
				t.Fatal(err)
			}
			var got, want Result
			for run := 0; run < 3; run++ {
				if err := ref.RunInto(&want); err != nil {
					t.Fatal(err)
				}
				if err := fast.RunAnalysisInto(&got); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("run %d: specialised loop diverged:\n got %s\nwant %s",
						run, goldenFingerprint(&got), goldenFingerprint(&want))
				}
			}
		})
	}
}

// TestBatchK1GoldenAllKernels is the satellite golden test: a K=1 batch is
// byte-identical to sim.RunAnalysis for every bench kernel (base set and
// extended set) under the paper's EFL analysis configuration.
func TestBatchK1GoldenAllKernels(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	specs := bench.AllWithExtended()
	if len(specs) < 14 {
		t.Fatalf("expected >= 14 bench kernels, have %d", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Code, func(t *testing.T) {
			prog := spec.Build()
			b, err := NewBatch(cfg, prog, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Replaying() {
				t.Fatalf("kernel %s did not record a replay trace", spec.Code)
			}
			for _, seed := range []uint64{1, 2} {
				want, err := RunAnalysis(cfg, prog, seed)
				if err != nil {
					t.Fatal(err)
				}
				got, err := b.Run(context.Background(), []uint64{seed})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[0], *want) {
					t.Fatalf("seed %d: batch K=1 diverged:\n got %s\nwant %s",
						seed, goldenFingerprint(&got[0]), goldenFingerprint(want))
				}
			}
		})
	}
}

// TestBatchLockstepProperty is the satellite property test: a K=8 lockstep
// batch produces, lane for lane, exactly the results of 8 sequential
// single runs with the same seeds — across the config matrix, with the
// auditor's invariants holding per lane.
func TestBatchLockstepProperty(t *testing.T) {
	prog := bench.CANRdr()
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(1000 + 37*i)
	}
	aud := NewAuditor()
	for name, base := range batchConfigs() {
		base := base
		t.Run(name, func(t *testing.T) {
			b, err := NewBatch(base, prog, 8)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Run(context.Background(), seeds)
			if err != nil {
				t.Fatal(err)
			}
			cfg := b.Lane(0).Config()
			for i, seed := range seeds {
				want, err := RunAnalysis(base, prog, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i], *want) {
					t.Fatalf("lane %d (seed %d) diverged:\n got %s\nwant %s",
						i, seed, goldenFingerprint(&got[i]), goldenFingerprint(want))
				}
				if err := aud.CheckRun(cfg, &got[i]); err != nil {
					t.Errorf("lane %d: auditor: %v", i, err)
				}
			}
		})
	}
}

// TestBatchRunReusesLanes pins that consecutive Run calls on one batch are
// independent: the second call with the same seeds reproduces the first
// (no state leaks between batch runs), and narrower seed slices work.
func TestBatchRunReusesLanes(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	prog := goldenProg()
	b, err := NewBatch(cfg, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{5, 6, 7, 8}
	first, err := b.Run(context.Background(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	fp := make([]string, len(first))
	for i := range first {
		fp[i] = goldenFingerprint(&first[i])
	}
	again, err := b.Run(context.Background(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if got := goldenFingerprint(&again[i]); got != fp[i] {
			t.Fatalf("lane %d: second batch run diverged", i)
		}
	}
	narrow, err := b.Run(context.Background(), seeds[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) != 2 {
		t.Fatalf("narrow run returned %d results", len(narrow))
	}
	if goldenFingerprint(&narrow[0]) != fp[0] {
		t.Fatal("narrow batch run diverged on lane 0")
	}
}

// TestBatchRunZeroAlloc is the satellite allocation guard: steady-state
// batch runs allocate nothing per run.
func TestBatchRunZeroAlloc(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	b, err := NewBatch(cfg, goldenProg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seeds := []uint64{1, 2, 3, 4}
	if _, err := b.Run(ctx, seeds); err != nil { // warm result buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := b.Run(ctx, seeds); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("batch run allocates %.1f objects per batch in steady state", avg)
	}
}

// TestBatchValidation covers the constructor and Run argument checks.
func TestBatchValidation(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	if _, err := NewBatch(cfg, goldenProg(), 0); err == nil {
		t.Fatal("expected error for K=0")
	}
	b, err := NewBatch(cfg, goldenProg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(context.Background(), nil); err == nil {
		t.Fatal("expected error for no seeds")
	}
	if _, err := b.Run(context.Background(), []uint64{1, 2, 3}); err == nil {
		t.Fatal("expected error for more seeds than lanes")
	}
}

// TestBatchContextCancel pins that a cancelled context aborts the batch.
func TestBatchContextCancel(t *testing.T) {
	cfg := DefaultConfig().WithEFL(500)
	b, err := NewBatch(cfg, goldenProg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Run(ctx, []uint64{1, 2}); err == nil {
		t.Fatal("expected context error")
	}
}

// BenchmarkSingleRunCA is the pre-batch engine (general event loop,
// interpreted cores) on the same kernel BenchmarkBatchRun uses — the
// baseline the batched speedup is measured against.
func BenchmarkSingleRunCA(b *testing.B) {
	cfg := DefaultConfig().WithEFL(500).WithAnalysis(0)
	spec, err := bench.ByCode("CA")
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = spec.Build()
	m, err := New(cfg, progs, 1)
	if err != nil {
		b.Fatal(err)
	}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunInto(&res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkBatchRun is the satellite benchmark: runs/sec per batch width,
// with the allocation figure visible via -benchmem (0 allocs/run in steady
// state is asserted by TestBatchRunZeroAlloc).
func BenchmarkBatchRun(b *testing.B) {
	cfg := DefaultConfig().WithEFL(500)
	prog, err := bench.ByCode("CA")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			bt, err := NewBatch(cfg, prog.Build(), k)
			if err != nil {
				b.Fatal(err)
			}
			seeds := make([]uint64, k)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range seeds {
					seeds[j] = uint64(i*k + j + 1)
				}
				if _, err := bt.Run(ctx, seeds); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runs := float64(b.N * k)
			b.ReportMetric(runs/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}
