package sim

import (
	"fmt"
	"math"

	"efl/internal/bus"
	"efl/internal/cache"
	"efl/internal/cpu"
	"efl/internal/efl"
	"efl/internal/isa"
	"efl/internal/memctrl"
	"efl/internal/metrics"
	"efl/internal/rng"
	"efl/internal/trace"
)

// ctlState tracks where a core is in its current shared transaction.
type ctlState int

const (
	stReady    ctlState = iota // can execute instructions
	stWaitBus                  // request queued at the bus arbiter
	stWaitEval                 // bus granted; LLC lookup completes at wakeAt
	stWaitEAB                  // evicting miss stalled on the EFL counter
	stWaitMem                  // blocking read queued at the memory controller
	stWaitWake                 // resumes unconditionally at wakeAt
	stDone                     // program finished
	stIdle                     // no program on this core
)

// coreCtl is the simulator-side wrapper of one core.
type coreCtl struct {
	id    int
	core  *cpu.Core // nil for idle cores
	state ctlState

	wakeAt   int64        // stWaitEval / stWaitEAB / stWaitWake
	req      cpu.Request  // transaction being processed
	issuedAt int64        // when req was issued (stall accounting)
	evalAt   int64        // when the LLC lookup completed (EAB wait basis)
	lk       cache.Lookup // fused LLC lookup result, carried across an EAB stall
	lvl      int          // hierarchy walk cursor: index into mids, len(mids) = last level

	llcMask cache.WayMask
	owner   int

	analysisBusWait int64 // phantom-contender cycles charged (analysis mode)

	// acct attributes every stall cycle of this core's clock to the shared
	// resource that consumed it. The stall segments of one transaction tile
	// [issue, resume] exactly — bus wait, then the granted slot plus LLC
	// lookup, then an optional EAB stall, then an optional memory wait — so
	// together with the pipeline's own execute counter the categories sum
	// to the core's total cycles (the auditor's first invariant). The
	// Execute slot is filled from cpu.Core at collection time.
	acct metrics.CycleAccount
	// maxReadLat is the largest end-to-end memory-read latency this core
	// observed (queueing+service at deployment, the UBD charge at
	// analysis); the auditor compares it against memctrl.UpperBoundDelay.
	maxReadLat int64
}

// CoreResult is the per-core outcome of a run.
type CoreResult struct {
	Active bool
	Cycles int64
	Instrs uint64
	IPC    float64
	IL1    cache.Stats
	DL1    cache.Stats
	Pipe   cpu.Stats
	EFL    efl.Stats
	// AnalysisBusWait is the total phantom bus contention charged
	// (analysis mode only).
	AnalysisBusWait int64
	// Attribution decomposes Cycles by consuming resource; the categories
	// sum to Cycles exactly (auditor invariant A1). Zero for idle cores.
	Attribution metrics.CycleAccount
	// MaxReadLatency is the largest end-to-end memory-read latency the
	// core observed (0 when it never read memory). Deployment values must
	// never exceed memctrl.UpperBoundDelay (auditor invariant A2).
	MaxReadLatency int64
}

// LevelStats is one hierarchy level's aggregated cache statistics: level 0
// sums the active cores' IL1+DL1 pairs, shared levels report their single
// instance.
type LevelStats struct {
	Name   string
	Shared bool
	Stats  cache.Stats
}

// Result is the outcome of one complete run.
type Result struct {
	PerCore     []CoreResult
	LLC         cache.Stats
	Bus         bus.Stats
	Mem         memctrl.Stats
	TotalCycles int64 // slowest active core

	// PerLevel reports every hierarchy level generically, keyed by level
	// name and ordered from L1 outward. On the default two-level layout it
	// carries the same numbers as the legacy IL1/DL1 (merged) and LLC
	// fields, which stay populated.
	PerLevel []LevelStats

	// Latency distributions of the run's shared resources (power-of-two
	// buckets; value copies, so Result stays allocation-free to fill).
	BusWaitHist  metrics.Histogram // per-grant arbitration waits
	MemReadHist  metrics.Histogram // end-to-end blocking-read latencies
	EFLStallHist metrics.Histogram // per-eviction EAB waits, all cores merged
}

// IPCOf returns core i's instructions per cycle.
func (r *Result) IPCOf(i int) float64 { return r.PerCore[i].IPC }

// Multicore is the assembled platform. Construct with New, execute runs
// with Run (or the allocation-free RunInto); each run starts from a fresh
// state with new cache RIIs (the per-run randomisation the MBPTA protocol
// requires).
type Multicore struct {
	cfg    Config
	rnd    rng.Stream
	llc    *cache.Cache
	bus    *bus.Bus
	mc     *memctrl.Controller
	ac     *efl.AccessControl
	cores  []*coreCtl
	progs  []*isa.Program
	tracer *trace.Buffer

	// Hierarchy state beyond the default two levels. mids holds the shared
	// intermediate levels (empty on the default layout, where every walk
	// goes straight to the LLC); midMask/shLat are the precomputed per-level
	// way masks and lookup latencies (shLat[i] is shared level i's latency,
	// the last entry being the LLC's — on the default layout just
	// [LLCHitCycles]). levSpecs caches cfg.levels() for stats collection.
	mids     []cache.Level
	midMask  []cache.WayMask
	shLat    []int64
	levSpecs []cache.LevelSpec

	// coh is the MSI directory for shared-data lines; nil unless
	// cfg.SharedDataBytes enables the coherence layer. cohDropTo is the
	// fault-injection hook: invalidations addressed to that core are
	// dropped before reaching its DL1 (-1 = healthy).
	coh       *cohDir
	cohDropTo int

	// Incrementally maintained next-event candidates. The event loop
	// dispatches millions of events per run; rescanning every core, CRG
	// and shared resource on each iteration was the single largest cost
	// of the scheduler, so each candidate is updated only when the
	// corresponding structure changes:
	//
	//   evReady[i] — core i's Clock while stReady, else never
	//   evWake[i]  — core i's wakeAt while in a timed wait, else never
	//   evCRG[i]   — core i's CRG next fire time, never when inactive
	//   evBus/evMC — next grant/issue time, never when idle
	//
	// Dispatch-order semantics (scan order, strict-less tie-breaks, the
	// ready-before-wake-before-grant priority at equal times) are
	// identical to the rescanning loop, which keeps PRNG draw order and
	// therefore results bit-identical.
	evReady []int64
	evWake  []int64
	evCRG   []int64
	evBus   int64
	evMC    int64

	// watchdog is the per-job cycle budget (0 = disabled); see SetWatchdog.
	// faulted records whether a fault plan is armed; see fault.go.
	watchdog int64
	faulted  bool
}

// never is the sentinel for "no pending event".
const never = int64(math.MaxInt64)

// SetTracer attaches an event buffer; nil detaches. The buffer accumulates
// across Run calls until the caller resets it, so single-run traces should
// call buf.Reset() between runs.
func (m *Multicore) SetTracer(buf *trace.Buffer) { m.tracer = buf }

// emit records a trace event when a tracer is attached.
func (m *Multicore) emit(cycle int64, core int, kind trace.Kind, addr uint64, arg int64) {
	if m.tracer != nil {
		m.tracer.Add(trace.Event{Cycle: cycle, Core: int16(core), Kind: kind, Addr: addr, Arg: arg})
	}
}

// New builds a platform running progs (indexed by core; nil entries are
// idle cores). In analysis mode exactly the AnalysedCore entry must be
// non-nil. seed determines every random draw of the platform.
func New(cfg Config, progs []*isa.Program, seed uint64) (*Multicore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) > cfg.Cores {
		return nil, fmt.Errorf("sim: %d programs for %d cores", len(progs), cfg.Cores)
	}
	if cfg.Mode == efl.Analysis {
		for i, p := range progs {
			if (p != nil) != (i == cfg.AnalysedCore) {
				return nil, fmt.Errorf("sim: analysis mode requires exactly the analysed core (%d) to have a program", cfg.AnalysedCore)
			}
		}
	}
	m := &Multicore{cfg: cfg, rnd: rng.New(seed)}
	m.progs = make([]*isa.Program, cfg.Cores)
	copy(m.progs, progs)

	m.llc = cache.New(cfg.llcConfig(), m.rnd.Fork())
	m.bus = bus.New(cfg.BusSlotCycles, m.rnd.Fork())
	m.mc = memctrl.New(cfg.MemCycles, cfg.MemSlotCycles, cfg.Cores)
	analysed := -1
	if cfg.Mode == efl.Analysis {
		analysed = cfg.AnalysedCore
	}
	ac, err := efl.NewAccessControl(cfg.Cores, cfg.MID, cfg.Mode, analysed, m.rnd.Fork())
	if err != nil {
		return nil, err
	}
	ac.SetFixed(cfg.EFLFixedMID)
	m.ac = ac

	// Shared intermediate levels fork after the access control, so the
	// default two-level layout (no intermediates) consumes exactly the
	// PRNG draws it always did.
	m.levSpecs = cfg.levels()
	if mids := cfg.midSpecs(); len(mids) > 0 {
		m.mids = make([]cache.Level, len(mids))
		m.midMask = make([]cache.WayMask, len(mids))
		for i, s := range mids {
			m.mids[i] = cache.Level{Spec: s, Cache: cache.New(s.Config(cfg.LineBytes), m.rnd.Fork())}
			m.midMask[i] = cache.FullMask(s.Ways)
		}
	}
	m.shLat = make([]int64, len(m.levSpecs)-1)
	for i := range m.shLat {
		m.shLat[i] = m.levSpecs[i+1].LatencyCycles
	}
	m.cohDropTo = -1
	if cfg.coherent() {
		m.coh = newCohDir(m)
	}

	m.cores = make([]*coreCtl, cfg.Cores)
	m.evReady = make([]int64, cfg.Cores)
	m.evWake = make([]int64, cfg.Cores)
	m.evCRG = make([]int64, cfg.Cores)
	for i := range m.cores {
		ctl := &coreCtl{id: i, state: stIdle, llcMask: cfg.llcMask(i), owner: -1}
		if cfg.PartitionWays != nil {
			ctl.owner = i
		}
		if m.progs[i] != nil {
			if cfg.PartitionWays != nil && cfg.PartitionWays[i] == 0 {
				return nil, fmt.Errorf("sim: core %d runs a program but has a 0-way partition", i)
			}
			machine, err := isa.NewMachine(m.progs[i])
			if err != nil {
				return nil, err
			}
			il1 := cache.New(cfg.l1Config(fmt.Sprintf("IL1-%d", i)), m.rnd.Fork())
			dl1 := cache.New(cfg.l1Config(fmt.Sprintf("DL1-%d", i)), m.rnd.Fork())
			ctl.core = cpu.New(i, machine, il1, dl1)
			ctl.core.BranchPenalty = cfg.BranchPenalty
			ctl.core.WriteThrough = cfg.DL1WriteThrough
			m.wireCoherence(ctl.core)
			ctl.state = stReady
		}
		m.cores[i] = ctl
	}
	return m, nil
}

// wireCoherence attaches the shared-data window and the MSI directory to a
// freshly constructed core (a no-op when the coherence layer is off).
func (m *Multicore) wireCoherence(c *cpu.Core) {
	if m.coh != nil {
		c.SharedLimit = isa.DataBase + uint64(m.cfg.SharedDataBytes)
		c.Coh = m.coh
	}
}

// Config returns the platform configuration.
func (m *Multicore) Config() Config { return m.cfg }

// noteCore refreshes core ctl's next-event candidates from its state.
func (m *Multicore) noteCore(ctl *coreCtl) {
	r, w := never, never
	switch ctl.state {
	case stReady:
		r = ctl.core.Clock
	case stWaitEval, stWaitEAB, stWaitWake:
		w = ctl.wakeAt
	}
	m.evReady[ctl.id] = r
	m.evWake[ctl.id] = w
}

// noteCRG refreshes core i's CRG fire-time candidate.
func (m *Multicore) noteCRG(i int) {
	if c := m.ac.CRG(i); c != nil {
		m.evCRG[i] = c.NextFire()
	} else {
		m.evCRG[i] = never
	}
}

// busRequest enqueues a bus request and refreshes the grant candidate.
func (m *Multicore) busRequest(r bus.Request) {
	m.bus.Request(r)
	m.evBus = m.bus.NextGrantTime()
}

// mcRequest enqueues a memory request and refreshes the issue candidate.
func (m *Multicore) mcRequest(r memctrl.Request) {
	m.mc.Request(r)
	m.evMC = m.mc.NextStartTime()
}

// reset rewinds everything for a fresh run: machines, pipeline state,
// caches (new RIIs), bus, memory controller, EFL fabric and the cached
// event candidates.
func (m *Multicore) reset() {
	m.llc.NewRun()
	m.llc.ResetStats()
	for i := range m.mids {
		m.mids[i].NewRun()
		m.mids[i].ResetStats()
	}
	if m.coh != nil {
		m.coh.reset()
	}
	m.bus.Reset()
	m.mc.Reset()
	m.ac.Reset()
	for _, ctl := range m.cores {
		ctl.wakeAt = 0
		ctl.issuedAt = 0
		ctl.evalAt = 0
		ctl.analysisBusWait = 0
		ctl.lvl = 0
		ctl.acct.Reset()
		ctl.maxReadLat = 0
		if ctl.core != nil {
			ctl.core.Reset()
			ctl.state = stReady
		} else {
			ctl.state = stIdle
		}
		m.noteCore(ctl)
	}
	for i := range m.evCRG {
		m.noteCRG(i)
	}
	m.evBus = never
	m.evMC = never
}

// analysisCore reports whether ctl hosts the task under analysis.
func (m *Multicore) analysisCore(ctl *coreCtl) bool {
	return m.cfg.Mode == efl.Analysis && ctl.id == m.cfg.AnalysedCore
}

// Run executes one complete run (all programs to completion) and returns
// per-core and platform statistics.
func (m *Multicore) Run() (*Result, error) {
	res := &Result{}
	if err := m.RunInto(res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run with a caller-owned result buffer: res's slices are
// reused when large enough, so repeated-measurement campaigns (MBPTA
// collects hundreds of runs per configuration) allocate nothing per run.
func (m *Multicore) RunInto(res *Result) error {
	m.reset()
	// The bus is held for the arbitration slot only; the LLC itself is
	// pipelined, so its 10-cycle access latency follows the grant without
	// blocking other transactions.
	hold := m.cfg.BusSlotCycles

	// Effective cycle limit: the configured ceiling, tightened by the
	// runner watchdog budget when one is armed. Exceeding the budget is a
	// deterministic kill (ErrWatchdog), independent of wall-clock time.
	limit := m.effectiveLimit()
	m.setReplayYield(limit)

	for {
		// Candidate event times, read from the incrementally maintained
		// caches in one pass. Scan order and strict-less comparisons
		// reproduce the original rescanning loop exactly (lowest core id
		// wins ties). tCore2 tracks the runner-up ready clock for the
		// batching bound below.
		tCore, coreIdx, tCore2 := never, -1, never
		tWake, wakeIdx := never, -1
		tCRG, crgIdx := never, -1
		for i := range m.evReady {
			if t := m.evReady[i]; t < tCore {
				tCore2 = tCore
				tCore, coreIdx = t, i
			} else if t < tCore2 {
				tCore2 = t
			}
			if t := m.evWake[i]; t < tWake {
				tWake, wakeIdx = t, i
			}
			if t := m.evCRG[i]; t < tCRG {
				tCRG, crgIdx = t, i
			}
		}
		tBus := m.evBus
		tMC := m.evMC

		// Done? (CRG events alone do not keep a run alive: the analysis
		// run ends when the analysed task halts.)
		if tCore == never && tWake == never && tBus == never && tMC == never {
			allDone := true
			for _, ctl := range m.cores {
				if ctl.state != stDone && ctl.state != stIdle {
					allDone = false
				}
			}
			if allDone {
				break
			}
			return fmt.Errorf("sim: deadlock: no events but cores not done")
		}

		// Priority at equal times: core execution and wakes create bus/MC
		// arrivals, so they must run before grants/serves at the same
		// cycle; CRG evictions apply before LLC lookups at the same cycle
		// (conservative).
		min := tCore
		if tWake < min {
			min = tWake
		}
		if tCRG < min {
			min = tCRG
		}
		if tBus < min {
			min = tBus
		}
		if tMC < min {
			min = tMC
		}
		if min > limit {
			return m.limitExceeded(limit)
		}

		switch {
		case tCore == min:
			ctl := m.cores[coreIdx]
			// Batch: keep stepping this core while it stays ready and its
			// clock remains strictly below every other candidate — no
			// other event can interleave, so the scheduler need not be
			// consulted per instruction. The bound is strict: at equal
			// times the outer scan re-resolves priorities exactly as the
			// original loop did.
			otherMin := tCore2
			if tWake < otherMin {
				otherMin = tWake
			}
			if tCRG < otherMin {
				otherMin = tCRG
			}
			if tBus < otherMin {
				otherMin = tBus
			}
			if tMC < otherMin {
				otherMin = tMC
			}
			for {
				if err := m.stepCore(ctl); err != nil {
					return err
				}
				if ctl.state != stReady {
					break
				}
				clk := ctl.core.Clock
				if clk >= otherMin {
					break
				}
				if clk > limit {
					return m.limitExceeded(limit)
				}
			}
			m.noteCore(ctl)
		case tCRG == min:
			m.fireCRG(crgIdx)
		case tWake == min:
			ctl := m.cores[wakeIdx]
			m.wake(ctl)
			m.noteCore(ctl)
		case tMC == min:
			req, done := m.mc.Serve()
			if m.mc.HasWaiters() {
				m.evMC = m.mc.NextStartTime()
			} else {
				m.evMC = never
			}
			if req.Kind == memctrl.Read {
				ctl := m.cores[req.Core]
				ctl.state = stWaitWake
				ctl.wakeAt = done
				lat := done - req.Arrival
				ctl.acct.Add(metrics.MemWait, lat)
				if lat > ctl.maxReadLat {
					ctl.maxReadLat = lat
				}
				m.noteCore(ctl)
				m.emit(done, req.Core, trace.EvMemRead, 0, lat)
			} else {
				m.emit(min, req.Core, trace.EvMemWrite, 0, 0)
			}
		default: // tBus
			win, at := m.bus.Grant(hold)
			if m.bus.HasWaiters() {
				m.evBus = m.bus.NextGrantTime()
			} else {
				m.evBus = never
			}
			ctl := m.cores[win.Core]
			if ctl.req.Kind == cpu.ReqUpgrade {
				// Coherence upgrade: the granted slot broadcasts the
				// invalidation; no cache level is consulted. The whole
				// transaction is attributed to the coherence category.
				m.serveUpgrade(ctl, at, at-win.Arrival)
				m.noteCore(ctl)
				m.emit(at, win.Core, trace.EvBusGrant, ctl.req.Addr, at-win.Arrival)
				continue
			}
			ctl.state = stWaitEval
			ctl.wakeAt = at + m.cfg.BusSlotCycles + m.shLat[0]
			ctl.evalAt = ctl.wakeAt
			ctl.acct.Add(metrics.BusWait, at-win.Arrival)
			ctl.acct.Add(metrics.BusSlot, m.cfg.BusSlotCycles)
			ctl.acct.Add(metrics.LLCLookup, m.shLat[0])
			m.noteCore(ctl)
			m.emit(at, win.Core, trace.EvBusGrant, ctl.req.Addr, at-win.Arrival)
		}
	}

	m.collectInto(res)
	return nil
}

// stepCore advances a ready core by one pipeline step.
func (m *Multicore) stepCore(ctl *coreCtl) error {
	switch ctl.core.Step() {
	case cpu.NeedNone:
		if ctl.core.Retired() > m.cfg.MaxInstrPerCore {
			return fmt.Errorf("sim: core %d exceeded %d instructions", ctl.id, m.cfg.MaxInstrPerCore)
		}
	case cpu.NeedHalt:
		if err := ctl.core.Fault(); err != nil {
			return fmt.Errorf("sim: core %d: %w", ctl.id, err)
		}
		ctl.state = stDone
		m.emit(ctl.core.Clock, ctl.id, trace.EvCoreHalt, 0, int64(ctl.core.Retired()))
	case cpu.NeedLLC:
		m.issueRequest(ctl, ctl.core.Clock)
	}
	return nil
}

// issueRequest starts the core's next shared transaction at cycle t.
func (m *Multicore) issueRequest(ctl *coreCtl, t int64) {
	ctl.req = ctl.core.PopRequest()
	ctl.issuedAt = t
	ctl.lvl = 0
	if m.analysisCore(ctl) {
		// Worst-case contention envelope: lottery against Ncores-1
		// always-ready phantom contenders, each holding the bus for one
		// arbitration slot.
		wait := bus.AnalysisDelay(m.rnd, m.cfg.Cores-1, m.cfg.BusSlotCycles)
		ctl.analysisBusWait += wait
		if ctl.req.Kind == cpu.ReqUpgrade {
			// Coherence upgrade under the contention envelope: the
			// broadcast costs the phantom bus wait plus the slot, charged
			// to the coherence category; no cache level is consulted.
			m.serveUpgrade(ctl, t+wait, wait)
			return
		}
		ctl.state = stWaitEval
		ctl.wakeAt = t + wait + m.cfg.BusSlotCycles + m.shLat[0]
		ctl.evalAt = ctl.wakeAt
		ctl.acct.Add(metrics.BusWait, wait)
		ctl.acct.Add(metrics.BusSlot, m.cfg.BusSlotCycles)
		ctl.acct.Add(metrics.LLCLookup, m.shLat[0])
		return
	}
	m.busRequest(bus.Request{Core: ctl.id, Arrival: t})
	ctl.state = stWaitBus
}

// wake dispatches a timed wake-up.
func (m *Multicore) wake(ctl *coreCtl) {
	switch ctl.state {
	case stWaitEval:
		if len(m.mids) > 0 {
			m.evalLevel(ctl, ctl.wakeAt)
			return
		}
		m.evalLLC(ctl, ctl.wakeAt)
	case stWaitEAB:
		waited := ctl.wakeAt - ctl.evalAt
		m.performEviction(ctl, ctl.wakeAt, waited)
	case stWaitWake:
		m.finishRequest(ctl, ctl.wakeAt)
	default:
		panic("sim: wake in unexpected state")
	}
}

// evalLLC processes the LLC lookup of ctl.req completing at cycle t.
// Hits always proceed (EoM hits are stateless, §3.3). Every miss of a
// time-randomised LLC selects a uniformly random victim regardless of
// valid bits (the EoM design), so every miss is an eviction event and is
// subject to the EFL eviction-allowed bit. Only the TD ablation platform
// fills invalid ways without evicting.
//
// The lookup is fused: one placement hash and one tag scan (cache.Lookup)
// serve both the hit path and the fill, where the pre-Lookup/Access split
// paid the hash and the scan twice per transaction.
func (m *Multicore) evalLLC(ctl *coreCtl, t int64) {
	if m.coh != nil && ctl.lvl == 0 {
		// First shared level reached: serve the coherence side of a
		// shared-line fetch (peer invalidation / downgrade) before the
		// cache lookup.
		m.cohServe(ctl, t)
	}
	write := ctl.req.Kind != cpu.ReqFetch
	lk := m.llc.Lookup(ctl.req.Addr, ctl.llcMask)
	switch {
	case lk.Hit:
		m.llc.CommitHit(lk, write)
		m.emit(t, ctl.id, trace.EvLLCHit, ctl.req.Addr, 0)
		m.finishRequest(ctl, t)
	case ctl.req.Kind == cpu.ReqWriteThrough && !m.cfg.WTAllocate:
		// Write-through, no-write-allocate: the LLC is untouched and the
		// store is forwarded to memory as a posted write.
		if m.cfg.Mode == efl.Deployment {
			m.mcRequest(memctrl.Request{Core: ctl.id, Arrival: t, Kind: memctrl.Write})
		}
		m.finishRequest(ctl, t)
	case m.cfg.Policy == cache.TimeDeterministic && lk.FreeWay:
		// Conventional fill without eviction (ablation platform only).
		m.llc.Fill(lk, write, ctl.llcMask, ctl.owner)
		m.afterFill(ctl, t)
	default:
		// Evicting miss: subject to the EFL eviction-allowed bit.
		m.emit(t, ctl.id, trace.EvLLCMiss, ctl.req.Addr, 0)
		ctl.lk = lk
		unit := m.ac.Unit(ctl.id)
		allowed := unit.EvictionAllowedAt(t)
		if allowed > t {
			ctl.state = stWaitEAB
			ctl.wakeAt = allowed
			ctl.evalAt = t
			ctl.acct.Add(metrics.EABStall, allowed-t)
			m.emit(t, ctl.id, trace.EvEFLStall, ctl.req.Addr, allowed-t)
			return
		}
		m.performEviction(ctl, t, 0)
	}
}

// performEviction executes the gated eviction+fill at cycle t, completing
// the Lookup saved by evalLLC (the set index survives an EAB stall; victim
// state is re-read at fill time, so CRG force-misses that landed during
// the stall are observed exactly as a fresh access would).
func (m *Multicore) performEviction(ctl *coreCtl, t int64, waited int64) {
	write := ctl.req.Kind != cpu.ReqFetch
	res := m.llc.Fill(ctl.lk, write, ctl.llcMask, ctl.owner)
	m.ac.Unit(ctl.id).RecordEviction(t, waited)
	if res.EvictedDirty && m.cfg.Mode == efl.Deployment {
		// Posted writeback of the dirty LLC victim: consumes memory
		// bandwidth, nobody waits. (At analysis time the analysed core's
		// memory accesses are charged the UBD, which covers any such
		// bandwidth by construction.)
		m.mcRequest(memctrl.Request{Core: ctl.id, Arrival: t, Kind: memctrl.Write})
	}
	m.afterFill(ctl, t)
}

// afterFill continues a transaction once the LLC line is allocated:
// writebacks complete (the line data came from the core), fetches must
// read the line from memory.
func (m *Multicore) afterFill(ctl *coreCtl, t int64) {
	if ctl.req.Kind == cpu.ReqWriteback {
		m.finishRequest(ctl, t)
		return
	}
	if m.analysisCore(ctl) {
		ubd := m.mc.UpperBoundDelay()
		ctl.state = stWaitWake
		ctl.wakeAt = t + ubd
		ctl.acct.Add(metrics.MemWait, ubd)
		if ubd > ctl.maxReadLat {
			ctl.maxReadLat = ubd
		}
		return
	}
	m.mcRequest(memctrl.Request{Core: ctl.id, Arrival: t, Kind: memctrl.Read})
	ctl.state = stWaitMem
}

// finishRequest completes the current transaction at cycle t and either
// issues the core's next pending transaction or resumes execution.
func (m *Multicore) finishRequest(ctl *coreCtl, t int64) {
	if ctl.core.HasPending() {
		m.issueRequest(ctl, t)
		return
	}
	ctl.core.Resume(t)
	ctl.state = stReady
}

// fireCRG performs one artificial eviction of core crgIdx's generator.
func (m *Multicore) fireCRG(crgIdx int) {
	c := m.ac.CRG(crgIdx)
	t := c.NextFire()
	m.llc.ForceEvict()
	c.Fire(t)
	m.evCRG[crgIdx] = c.NextFire()
	m.emit(t, crgIdx, trace.EvCRGEvict, 0, 0)
}

// collectInto gathers the run's results into res, reusing its buffers.
func (m *Multicore) collectInto(res *Result) {
	if cap(res.PerCore) < len(m.cores) {
		res.PerCore = make([]CoreResult, len(m.cores))
	}
	res.PerCore = res.PerCore[:len(m.cores)]
	nl := len(m.levSpecs)
	if cap(res.PerLevel) < nl {
		res.PerLevel = make([]LevelStats, nl)
	}
	res.PerLevel = res.PerLevel[:nl]
	for i := range res.PerLevel {
		res.PerLevel[i] = LevelStats{Name: m.levSpecs[i].Name, Shared: m.levSpecs[i].Shared}
	}
	for i := range m.mids {
		res.PerLevel[1+i].Stats = m.mids[i].Stats()
	}
	res.PerLevel[nl-1].Stats = m.llc.Stats()
	res.LLC = m.llc.Stats()
	res.Bus = m.bus.Stats()
	res.Mem = m.mc.Stats()
	res.BusWaitHist = m.bus.WaitHistogram()
	res.MemReadHist = m.mc.ReadLatencyHistogram()
	res.EFLStallHist.Reset()
	res.TotalCycles = 0
	for i, ctl := range m.cores {
		cr := CoreResult{}
		// EFL stats are collected for every core, active or not: in
		// analysis mode the co-runner cores' units count CRG evictions, and
		// the auditor checks their eviction rates from the Result alone.
		cr.EFL = m.ac.Unit(i).Stats()
		stalls := m.ac.Unit(i).StallHistogram()
		res.EFLStallHist.Merge(&stalls)
		if ctl.core != nil {
			cr.Active = true
			cr.Cycles = ctl.core.Clock
			cr.Instrs = ctl.core.Retired()
			if cr.Cycles > 0 {
				cr.IPC = float64(cr.Instrs) / float64(cr.Cycles)
			}
			cr.IL1 = ctl.core.IL1.Stats()
			cr.DL1 = ctl.core.DL1.Stats()
			addCacheStats(&res.PerLevel[0].Stats, cr.IL1)
			addCacheStats(&res.PerLevel[0].Stats, cr.DL1)
			cr.Pipe = ctl.core.Stats()
			cr.AnalysisBusWait = ctl.analysisBusWait
			cr.Attribution = ctl.acct
			cr.Attribution[metrics.Execute] = ctl.core.ExecCycles()
			cr.MaxReadLatency = ctl.maxReadLat
			if cr.Cycles > res.TotalCycles {
				res.TotalCycles = cr.Cycles
			}
		}
		res.PerCore[i] = cr
	}
}

// addCacheStats accumulates s into dst (the per-level aggregation of the
// private L1 pairs).
func addCacheStats(dst *cache.Stats, s cache.Stats) {
	dst.Accesses += s.Accesses
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.Evictions += s.Evictions
	dst.Writebacks += s.Writebacks
	dst.ForcedEvict += s.ForcedEvict
	dst.Flushes += s.Flushes
	dst.MemoHits += s.MemoHits
}

// RunAnalysis is a convenience wrapper: it builds an analysis-mode
// platform for prog on core 0 under cfg and returns the execution time
// (cycles) of one run. cfg's Mode/AnalysedCore are overridden.
func RunAnalysis(cfg Config, prog *isa.Program, seed uint64) (*Result, error) {
	cfg = cfg.WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	m, err := New(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// CollectAnalysisTimes performs runs analysis-mode executions of prog with
// derived seeds and returns the execution times in run order — the input
// MBPTA needs. One Result buffer is reused across the whole campaign.
func CollectAnalysisTimes(cfg Config, prog *isa.Program, runs int, seed uint64) ([]float64, error) {
	cfg = cfg.WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	m, err := New(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	// Trace replay + the analysis-specialised loop: bit-identical results,
	// a fraction of the interpreter cost.
	if tr, rerr := cpu.RecordTrace(prog, cfg.MaxInstrPerCore); rerr == nil {
		m.setReplay(tr)
	}
	times := make([]float64, runs)
	var res Result
	for i := 0; i < runs; i++ {
		if err := m.RunAnalysisInto(&res); err != nil {
			return nil, err
		}
		times[i] = float64(res.PerCore[0].Cycles)
	}
	return times, nil
}
