package sim

import (
	"fmt"
	"math"

	"efl/internal/bus"
	"efl/internal/cache"
	"efl/internal/cpu"
	"efl/internal/efl"
	"efl/internal/isa"
	"efl/internal/memctrl"
	"efl/internal/rng"
	"efl/internal/trace"
)

// ctlState tracks where a core is in its current shared transaction.
type ctlState int

const (
	stReady    ctlState = iota // can execute instructions
	stWaitBus                  // request queued at the bus arbiter
	stWaitEval                 // bus granted; LLC lookup completes at wakeAt
	stWaitEAB                  // evicting miss stalled on the EFL counter
	stWaitMem                  // blocking read queued at the memory controller
	stWaitWake                 // resumes unconditionally at wakeAt
	stDone                     // program finished
	stIdle                     // no program on this core
)

// coreCtl is the simulator-side wrapper of one core.
type coreCtl struct {
	id    int
	core  *cpu.Core // nil for idle cores
	state ctlState

	wakeAt   int64       // stWaitEval / stWaitEAB / stWaitWake
	req      cpu.Request // transaction being processed
	issuedAt int64       // when req was issued (stall accounting)
	evalAt   int64       // when the LLC lookup completed (EAB wait basis)

	llcMask cache.WayMask
	owner   int

	analysisBusWait int64 // phantom-contender cycles charged (analysis mode)
}

// CoreResult is the per-core outcome of a run.
type CoreResult struct {
	Active bool
	Cycles int64
	Instrs uint64
	IPC    float64
	IL1    cache.Stats
	DL1    cache.Stats
	Pipe   cpu.Stats
	EFL    efl.Stats
	// AnalysisBusWait is the total phantom bus contention charged
	// (analysis mode only).
	AnalysisBusWait int64
}

// Result is the outcome of one complete run.
type Result struct {
	PerCore     []CoreResult
	LLC         cache.Stats
	Bus         bus.Stats
	Mem         memctrl.Stats
	TotalCycles int64 // slowest active core
}

// IPCOf returns core i's instructions per cycle.
func (r *Result) IPCOf(i int) float64 { return r.PerCore[i].IPC }

// Multicore is the assembled platform. Construct with New, execute runs
// with Run; each Run starts from a fresh state with new cache RIIs (the
// per-run randomisation the MBPTA protocol requires).
type Multicore struct {
	cfg    Config
	rnd    rng.Stream
	llc    *cache.Cache
	bus    *bus.Bus
	mc     *memctrl.Controller
	ac     *efl.AccessControl
	cores  []*coreCtl
	progs  []*isa.Program
	tracer *trace.Buffer
}

// SetTracer attaches an event buffer; nil detaches. The buffer accumulates
// across Run calls until the caller resets it, so single-run traces should
// call buf.Reset() between runs.
func (m *Multicore) SetTracer(buf *trace.Buffer) { m.tracer = buf }

// emit records a trace event when a tracer is attached.
func (m *Multicore) emit(cycle int64, core int, kind trace.Kind, addr uint64, arg int64) {
	if m.tracer != nil {
		m.tracer.Add(trace.Event{Cycle: cycle, Core: int16(core), Kind: kind, Addr: addr, Arg: arg})
	}
}

// New builds a platform running progs (indexed by core; nil entries are
// idle cores). In analysis mode exactly the AnalysedCore entry must be
// non-nil. seed determines every random draw of the platform.
func New(cfg Config, progs []*isa.Program, seed uint64) (*Multicore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) > cfg.Cores {
		return nil, fmt.Errorf("sim: %d programs for %d cores", len(progs), cfg.Cores)
	}
	if cfg.Mode == efl.Analysis {
		for i, p := range progs {
			if (p != nil) != (i == cfg.AnalysedCore) {
				return nil, fmt.Errorf("sim: analysis mode requires exactly the analysed core (%d) to have a program", cfg.AnalysedCore)
			}
		}
	}
	m := &Multicore{cfg: cfg, rnd: rng.New(seed)}
	m.progs = make([]*isa.Program, cfg.Cores)
	copy(m.progs, progs)

	m.llc = cache.New(cfg.llcConfig(), m.rnd.Fork())
	m.bus = bus.New(cfg.BusSlotCycles, m.rnd.Fork())
	m.mc = memctrl.New(cfg.MemCycles, cfg.MemSlotCycles, cfg.Cores)
	analysed := -1
	if cfg.Mode == efl.Analysis {
		analysed = cfg.AnalysedCore
	}
	ac, err := efl.NewAccessControl(cfg.Cores, cfg.MID, cfg.Mode, analysed, m.rnd.Fork())
	if err != nil {
		return nil, err
	}
	ac.SetFixed(cfg.EFLFixedMID)
	m.ac = ac

	m.cores = make([]*coreCtl, cfg.Cores)
	for i := range m.cores {
		ctl := &coreCtl{id: i, state: stIdle, llcMask: cfg.llcMask(i), owner: -1}
		if cfg.PartitionWays != nil {
			ctl.owner = i
		}
		if m.progs[i] != nil {
			if cfg.PartitionWays != nil && cfg.PartitionWays[i] == 0 {
				return nil, fmt.Errorf("sim: core %d runs a program but has a 0-way partition", i)
			}
			machine, err := isa.NewMachine(m.progs[i])
			if err != nil {
				return nil, err
			}
			il1 := cache.New(cfg.l1Config(fmt.Sprintf("IL1-%d", i)), m.rnd.Fork())
			dl1 := cache.New(cfg.l1Config(fmt.Sprintf("DL1-%d", i)), m.rnd.Fork())
			ctl.core = cpu.New(i, machine, il1, dl1)
			ctl.core.BranchPenalty = cfg.BranchPenalty
			ctl.core.WriteThrough = cfg.DL1WriteThrough
			ctl.state = stReady
		}
		m.cores[i] = ctl
	}
	return m, nil
}

// Config returns the platform configuration.
func (m *Multicore) Config() Config { return m.cfg }

// reset rewinds everything for a fresh run: machines, pipeline state,
// caches (new RIIs), bus, memory controller and EFL fabric.
func (m *Multicore) reset() {
	m.llc.NewRun()
	m.llc.ResetStats()
	m.bus.Reset()
	m.mc.Reset()
	m.ac.Reset()
	for _, ctl := range m.cores {
		ctl.wakeAt = 0
		ctl.issuedAt = 0
		ctl.evalAt = 0
		ctl.analysisBusWait = 0
		if ctl.core != nil {
			ctl.core.Reset()
			ctl.state = stReady
		} else {
			ctl.state = stIdle
		}
	}
}

// analysisCore reports whether ctl hosts the task under analysis.
func (m *Multicore) analysisCore(ctl *coreCtl) bool {
	return m.cfg.Mode == efl.Analysis && ctl.id == m.cfg.AnalysedCore
}

// Run executes one complete run (all programs to completion) and returns
// per-core and platform statistics.
func (m *Multicore) Run() (*Result, error) {
	m.reset()
	// The bus is held for the arbitration slot only; the LLC itself is
	// pipelined, so its 10-cycle access latency follows the grant without
	// blocking other transactions.
	hold := m.cfg.BusSlotCycles

	const never = int64(math.MaxInt64)
	for {
		// Candidate event times.
		tCore, coreIdx := never, -1
		tWake, wakeIdx := never, -1
		for _, ctl := range m.cores {
			switch ctl.state {
			case stReady:
				if ctl.core.Clock < tCore {
					tCore, coreIdx = ctl.core.Clock, ctl.id
				}
			case stWaitEval, stWaitEAB, stWaitWake:
				if ctl.wakeAt < tWake {
					tWake, wakeIdx = ctl.wakeAt, ctl.id
				}
			}
		}
		tCRG, crgIdx := never, -1
		for i := 0; i < m.ac.NumCores(); i++ {
			if c := m.ac.CRG(i); c != nil && c.NextFire() < tCRG {
				tCRG, crgIdx = c.NextFire(), i
			}
		}
		tBus := never
		if m.bus.HasWaiters() {
			tBus = m.bus.NextGrantTime()
		}
		tMC := never
		if m.mc.HasWaiters() {
			tMC = m.mc.NextStartTime()
		}

		// Done?
		if tCore == never && tWake == never && tBus == never && tMC == never {
			allDone := true
			for _, ctl := range m.cores {
				if ctl.state != stDone && ctl.state != stIdle {
					allDone = false
				}
			}
			if allDone {
				break
			}
			return nil, fmt.Errorf("sim: deadlock: no events but cores not done")
		}

		// Priority at equal times: core execution and wakes create bus/MC
		// arrivals, so they must run before grants/serves at the same
		// cycle; CRG evictions apply before LLC lookups at the same cycle
		// (conservative).
		min := tCore
		if tWake < min {
			min = tWake
		}
		if tCRG < min {
			min = tCRG
		}
		if tBus < min {
			min = tBus
		}
		if tMC < min {
			min = tMC
		}
		if min > m.cfg.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded %d cycles", m.cfg.MaxCycles)
		}

		switch {
		case tCore == min:
			if err := m.stepCore(m.cores[coreIdx]); err != nil {
				return nil, err
			}
		case tCRG == min:
			m.fireCRG(crgIdx)
		case tWake == min:
			m.wake(m.cores[wakeIdx])
		case tMC == min:
			req, done := m.mc.Serve()
			if req.Kind == memctrl.Read {
				ctl := m.cores[req.Core]
				ctl.state = stWaitWake
				ctl.wakeAt = done
				m.emit(done, req.Core, trace.EvMemRead, 0, done-req.Arrival)
			} else {
				m.emit(min, req.Core, trace.EvMemWrite, 0, 0)
			}
		default: // tBus
			win, at := m.bus.Grant(hold)
			ctl := m.cores[win.Core]
			ctl.state = stWaitEval
			ctl.wakeAt = at + m.cfg.BusSlotCycles + m.cfg.LLCHitCycles
			ctl.evalAt = ctl.wakeAt
			m.emit(at, win.Core, trace.EvBusGrant, ctl.req.Addr, at-win.Arrival)
		}
	}

	return m.collect(), nil
}

// stepCore advances a ready core by one pipeline step.
func (m *Multicore) stepCore(ctl *coreCtl) error {
	switch ctl.core.Step() {
	case cpu.NeedNone:
		if ctl.core.Retired() > m.cfg.MaxInstrPerCore {
			return fmt.Errorf("sim: core %d exceeded %d instructions", ctl.id, m.cfg.MaxInstrPerCore)
		}
	case cpu.NeedHalt:
		if err := ctl.core.Fault(); err != nil {
			return fmt.Errorf("sim: core %d: %w", ctl.id, err)
		}
		ctl.state = stDone
		m.emit(ctl.core.Clock, ctl.id, trace.EvCoreHalt, 0, int64(ctl.core.Retired()))
	case cpu.NeedLLC:
		m.issueRequest(ctl, ctl.core.Clock)
	}
	return nil
}

// issueRequest starts the core's next shared transaction at cycle t.
func (m *Multicore) issueRequest(ctl *coreCtl, t int64) {
	ctl.req = ctl.core.PopRequest()
	ctl.issuedAt = t
	if m.analysisCore(ctl) {
		// Worst-case contention envelope: lottery against Ncores-1
		// always-ready phantom contenders, each holding the bus for one
		// arbitration slot.
		wait := bus.AnalysisDelay(m.rnd, m.cfg.Cores-1, m.cfg.BusSlotCycles)
		ctl.analysisBusWait += wait
		ctl.state = stWaitEval
		ctl.wakeAt = t + wait + m.cfg.BusSlotCycles + m.cfg.LLCHitCycles
		ctl.evalAt = ctl.wakeAt
		return
	}
	m.bus.Request(bus.Request{Core: ctl.id, Arrival: t})
	ctl.state = stWaitBus
}

// wake dispatches a timed wake-up.
func (m *Multicore) wake(ctl *coreCtl) {
	switch ctl.state {
	case stWaitEval:
		m.evalLLC(ctl, ctl.wakeAt)
	case stWaitEAB:
		waited := ctl.wakeAt - ctl.evalAt
		m.performEviction(ctl, ctl.wakeAt, waited)
	case stWaitWake:
		m.finishRequest(ctl, ctl.wakeAt)
	default:
		panic("sim: wake in unexpected state")
	}
}

// evalLLC processes the LLC lookup of ctl.req completing at cycle t.
// Hits always proceed (EoM hits are stateless, §3.3). Every miss of a
// time-randomised LLC selects a uniformly random victim regardless of
// valid bits (the EoM design), so every miss is an eviction event and is
// subject to the EFL eviction-allowed bit. Only the TD ablation platform
// fills invalid ways without evicting.
func (m *Multicore) evalLLC(ctl *coreCtl, t int64) {
	write := ctl.req.Kind != cpu.ReqFetch
	pr := m.llc.Probe(ctl.req.Addr, ctl.llcMask)
	switch {
	case pr.Hit:
		m.llc.Access(ctl.req.Addr, write, ctl.llcMask, ctl.owner)
		m.emit(t, ctl.id, trace.EvLLCHit, ctl.req.Addr, 0)
		m.finishRequest(ctl, t)
	case ctl.req.Kind == cpu.ReqWriteThrough && !m.cfg.WTAllocate:
		// Write-through, no-write-allocate: the LLC is untouched and the
		// store is forwarded to memory as a posted write.
		if m.cfg.Mode == efl.Deployment {
			m.mc.Request(memctrl.Request{Core: ctl.id, Arrival: t, Kind: memctrl.Write})
		}
		m.finishRequest(ctl, t)
	case m.cfg.Policy == cache.TimeDeterministic && pr.FreeWay:
		// Conventional fill without eviction (ablation platform only).
		m.llc.Access(ctl.req.Addr, write, ctl.llcMask, ctl.owner)
		m.afterFill(ctl, t)
	default:
		// Evicting miss: subject to the EFL eviction-allowed bit.
		m.emit(t, ctl.id, trace.EvLLCMiss, ctl.req.Addr, 0)
		unit := m.ac.Unit(ctl.id)
		allowed := unit.EvictionAllowedAt(t)
		if allowed > t {
			ctl.state = stWaitEAB
			ctl.wakeAt = allowed
			ctl.evalAt = t
			m.emit(t, ctl.id, trace.EvEFLStall, ctl.req.Addr, allowed-t)
			return
		}
		m.performEviction(ctl, t, 0)
	}
}

// performEviction executes the gated eviction+fill at cycle t.
func (m *Multicore) performEviction(ctl *coreCtl, t int64, waited int64) {
	write := ctl.req.Kind != cpu.ReqFetch
	res := m.llc.Access(ctl.req.Addr, write, ctl.llcMask, ctl.owner)
	m.ac.Unit(ctl.id).RecordEviction(t, waited)
	if res.EvictedDirty && m.cfg.Mode == efl.Deployment {
		// Posted writeback of the dirty LLC victim: consumes memory
		// bandwidth, nobody waits. (At analysis time the analysed core's
		// memory accesses are charged the UBD, which covers any such
		// bandwidth by construction.)
		m.mc.Request(memctrl.Request{Core: ctl.id, Arrival: t, Kind: memctrl.Write})
	}
	m.afterFill(ctl, t)
}

// afterFill continues a transaction once the LLC line is allocated:
// writebacks complete (the line data came from the core), fetches must
// read the line from memory.
func (m *Multicore) afterFill(ctl *coreCtl, t int64) {
	if ctl.req.Kind == cpu.ReqWriteback {
		m.finishRequest(ctl, t)
		return
	}
	if m.analysisCore(ctl) {
		ctl.state = stWaitWake
		ctl.wakeAt = t + m.mc.UpperBoundDelay()
		return
	}
	m.mc.Request(memctrl.Request{Core: ctl.id, Arrival: t, Kind: memctrl.Read})
	ctl.state = stWaitMem
}

// finishRequest completes the current transaction at cycle t and either
// issues the core's next pending transaction or resumes execution.
func (m *Multicore) finishRequest(ctl *coreCtl, t int64) {
	if ctl.core.HasPending() {
		m.issueRequest(ctl, t)
		return
	}
	ctl.core.Resume(t)
	ctl.state = stReady
}

// fireCRG performs one artificial eviction of core crgIdx's generator.
func (m *Multicore) fireCRG(crgIdx int) {
	c := m.ac.CRG(crgIdx)
	t := c.NextFire()
	m.llc.ForceEvict()
	c.Fire(t)
	m.emit(t, crgIdx, trace.EvCRGEvict, 0, 0)
}

// collect gathers the run's results.
func (m *Multicore) collect() *Result {
	res := &Result{
		PerCore: make([]CoreResult, len(m.cores)),
		LLC:     m.llc.Stats(),
		Bus:     m.bus.Stats(),
		Mem:     m.mc.Stats(),
	}
	for i, ctl := range m.cores {
		cr := CoreResult{}
		if ctl.core != nil {
			cr.Active = true
			cr.Cycles = ctl.core.Clock
			cr.Instrs = ctl.core.Retired()
			if cr.Cycles > 0 {
				cr.IPC = float64(cr.Instrs) / float64(cr.Cycles)
			}
			cr.IL1 = ctl.core.IL1.Stats()
			cr.DL1 = ctl.core.DL1.Stats()
			cr.Pipe = ctl.core.Stats()
			cr.EFL = m.ac.Unit(i).Stats()
			cr.AnalysisBusWait = ctl.analysisBusWait
			if cr.Cycles > res.TotalCycles {
				res.TotalCycles = cr.Cycles
			}
		}
		res.PerCore[i] = cr
	}
	return res
}

// RunAnalysis is a convenience wrapper: it builds an analysis-mode
// platform for prog on core 0 under cfg and returns the execution time
// (cycles) of one run. cfg's Mode/AnalysedCore are overridden.
func RunAnalysis(cfg Config, prog *isa.Program, seed uint64) (*Result, error) {
	cfg = cfg.WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	m, err := New(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// CollectAnalysisTimes performs runs analysis-mode executions of prog with
// derived seeds and returns the execution times in run order — the input
// MBPTA needs.
func CollectAnalysisTimes(cfg Config, prog *isa.Program, runs int, seed uint64) ([]float64, error) {
	cfg = cfg.WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	m, err := New(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	times := make([]float64, runs)
	for i := 0; i < runs; i++ {
		r, err := m.Run()
		if err != nil {
			return nil, err
		}
		times[i] = float64(r.PerCore[0].Cycles)
	}
	return times, nil
}
