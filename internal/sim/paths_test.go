package sim

// Tests for the less-travelled datapaths: dirty writebacks through the
// hierarchy, posted memory writes, analysis-mode envelopes and stress
// invariants.

import (
	"testing"

	"efl/internal/cache"
	"efl/internal/isa"
	"efl/internal/rng"
	"efl/internal/trace"
)

// storeHeavy writes a working set larger than the DL1 repeatedly, forcing
// dirty DL1 victims (LLC writebacks) and dirty LLC victims (posted memory
// writes).
func storeHeavy(words, passes int) *isa.Program {
	b := isa.NewBuilder("stores")
	b.ReserveData(words * 8)
	b.Movi(1, 0)
	b.Movi(2, int64(passes))
	b.Movi(7, int64(words*8))
	b.Label("pass")
	b.Movi(4, 0)
	b.Label("inner")
	b.Movi(5, int64(isa.DataBase))
	b.Add(5, 5, 4)
	b.St(1, 5, 0)
	b.Addi(4, 4, 16)
	b.Blt(4, 7, "inner")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "pass")
	b.Halt()
	return b.MustProgram()
}

func TestWritebackPathReachesMemory(t *testing.T) {
	// A store-heavy program larger than DL1 and LLC must generate posted
	// memory writes (dirty LLC victims).
	prog := storeHeavy(8192, 2) // 64KB of dirty lines, 2 passes
	m, err := New(DefaultConfig(), []*isa.Program{prog}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[0].Pipe.Writebacks == 0 {
		t.Fatal("no DL1 writebacks from a store-heavy program")
	}
	if res.Mem.Writes == 0 {
		t.Fatal("no posted memory writes despite dirty LLC evictions")
	}
	if res.LLC.Writebacks == 0 {
		t.Fatal("LLC recorded no writebacks")
	}
}

func TestAnalysisMemoryChargesUBD(t *testing.T) {
	// In analysis mode every memory read is charged the AMC UBD; with a
	// single always-missing stream the per-miss cost must be at least
	// UBD = cores*slot + service.
	cfg := DefaultConfig().WithEFL(250)
	prog := storeHeavy(8192, 1)
	ana, err := RunAnalysis(cfg, prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := New(DefaultConfig().WithEFL(250), []*isa.Program{prog}, 5)
	if err != nil {
		t.Fatal(err)
	}
	depRes, err := dep.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Analysis must not be faster than isolated deployment.
	if ana.PerCore[0].Cycles < depRes.PerCore[0].Cycles {
		t.Fatalf("analysis (%d) faster than isolated deployment (%d)",
			ana.PerCore[0].Cycles, depRes.PerCore[0].Cycles)
	}
	ubd := int64(cfg.Cores)*cfg.MemSlotCycles + cfg.MemCycles
	if ubd != 120 {
		t.Fatalf("default UBD = %d, want 120", ubd)
	}
}

func TestEveryTRMissIsAnEviction(t *testing.T) {
	// Under true EoM the LLC's miss and eviction-event counts coincide:
	// each demand miss consumes the EFL eviction budget. Verify via the
	// EFL unit's eviction counter.
	prog := storeHeavy(2048, 2)
	m, err := New(DefaultConfig().WithEFL(500), []*isa.Program{prog}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC.Misses == 0 {
		t.Fatal("no LLC misses")
	}
	if res.PerCore[0].EFL.Evictions != res.LLC.Misses {
		t.Fatalf("EFL evictions (%d) != LLC misses (%d): some miss bypassed the gate",
			res.PerCore[0].EFL.Evictions, res.LLC.Misses)
	}
}

func TestTDPlatformFillsWithoutGate(t *testing.T) {
	// The TD ablation platform fills invalid ways without evicting;
	// its eviction count is below its miss count during warmup.
	cfg := DefaultConfig()
	cfg.Policy = cache.TimeDeterministic
	prog := storeHeavy(1024, 1)
	m, err := New(cfg, []*isa.Program{prog}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC.Misses == 0 {
		t.Fatal("no LLC misses")
	}
	if res.LLC.Evictions >= res.LLC.Misses {
		t.Fatalf("TD LLC evictions (%d) not below misses (%d)", res.LLC.Evictions, res.LLC.Misses)
	}
}

func TestAnalysisDeterministicAcrossConstruction(t *testing.T) {
	// The same seed must give identical analysis times whether the
	// platform is reused across runs or rebuilt: randomness depends only
	// on the seed, not on allocation history.
	prog := storeHeavy(512, 2)
	cfg := DefaultConfig().WithEFL(500)
	a, err := CollectAnalysisTimes(cfg, prog, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectAnalysisTimes(cfg, prog, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestStressRandomPrograms drives the platform with many small random
// (but well-formed) programs and checks structural invariants: no
// deadlock, monotone clocks, consistent statistics.
func TestStressRandomPrograms(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 12; trial++ {
		prog := randomProgram(src, 200+src.Intn(400))
		progs := []*isa.Program{prog, prog, prog, prog}
		var cfg Config
		switch trial % 3 {
		case 0:
			cfg = DefaultConfig().WithEFL(int64(100 + src.Intn(900)))
		case 1:
			cfg = DefaultConfig().WithPartition([]int{2, 2, 2, 2})
		default:
			cfg = DefaultConfig()
		}
		m, err := New(cfg, progs, src.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for c, cr := range res.PerCore {
			if cr.Cycles <= 0 || cr.Instrs == 0 {
				t.Fatalf("trial %d core %d: %+v", trial, c, cr)
			}
			if cr.IL1.Hits+cr.IL1.Misses != cr.IL1.Accesses {
				t.Fatalf("trial %d core %d: IL1 stats inconsistent", trial, c)
			}
		}
		if res.LLC.Hits+res.LLC.Misses != res.LLC.Accesses {
			t.Fatalf("trial %d: LLC stats inconsistent", trial)
		}
	}
}

// randomProgram emits a random but guaranteed-terminating program: a
// bounded loop whose body mixes ALU, loads and stores over a small
// segment.
func randomProgram(src rng.Stream, bodyLen int) *isa.Program {
	b := isa.NewBuilder("fuzz")
	const words = 512
	b.ReserveData(words * 8)
	b.Movi(1, 0)                      // induction
	b.Movi(2, int64(20+src.Intn(30))) // iterations
	b.Movi(3, int64(isa.DataBase))
	b.Label("loop")
	for i := 0; i < bodyLen; i++ {
		r := 4 + src.Intn(10) // r4..r13
		switch src.Intn(8) {
		case 0:
			b.Addi(r, r, int64(src.Intn(100)))
		case 1:
			b.Xor(r, r, 4+src.Intn(10))
		case 2:
			b.Mul(r, 4+src.Intn(10), 4+src.Intn(10))
		case 3:
			// Bounded load: address = base + (i*8 mod segment).
			off := int64(src.Intn(words)) * 8
			b.Ld(r, 3, off)
		case 4:
			off := int64(src.Intn(words)) * 8
			b.St(r, 3, off)
		case 5:
			b.Add(r, r, 1)
		case 6:
			b.Shr(r, r, 4+src.Intn(10))
		default:
			b.Sub(r, r, 4+src.Intn(10))
		}
	}
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	return b.MustProgram()
}

func TestTracerRecordsRunEvents(t *testing.T) {
	prog := storeHeavy(1024, 2)
	progs := make([]*isa.Program, 4)
	progs[0] = prog
	m, err := New(DefaultConfig().WithEFL(250).WithAnalysis(0), progs, 13)
	if err != nil {
		t.Fatal(err)
	}
	buf := trace.NewBuffer(200000)
	m.SetTracer(buf)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := buf.Stats()
	// The analysed core must show LLC misses and a halt.
	if st[0][trace.EvLLCMiss] == 0 {
		t.Fatal("no LLC misses traced")
	}
	if st[0][trace.EvCoreHalt] != 1 {
		t.Fatalf("halt events = %d", st[0][trace.EvCoreHalt])
	}
	// The three CRG cores must show artificial evictions.
	crg := 0
	for core := int16(1); core < 4; core++ {
		crg += st[core][trace.EvCRGEvict]
	}
	if crg == 0 {
		t.Fatal("no CRG evictions traced")
	}
	// EFL stalls should appear for an eviction-heavy program at MID 250.
	if st[0][trace.EvEFLStall] == 0 {
		t.Fatal("no EFL stalls traced")
	}
	// Detach and re-run: no growth.
	m.SetTracer(nil)
	before := len(buf.Events())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(buf.Events()) != before {
		t.Fatal("detached tracer still recorded")
	}
}
