package sim

import (
	"strings"
	"testing"

	"efl/internal/efl"
	"efl/internal/isa"
	"efl/internal/metrics"
)

// newAuditTestPlatform builds a platform matching cfg's mode: the analysed
// core alone in analysis mode, all four cores busy at deployment.
func newAuditTestPlatform(t *testing.T, cfg Config) *Multicore {
	t.Helper()
	prog := loopProg("audit", 96, 6)
	progs := make([]*isa.Program, cfg.Cores)
	if cfg.Mode == efl.Deployment {
		for i := range progs {
			progs[i] = prog
		}
	} else {
		progs[cfg.AnalysedCore] = prog
	}
	m, err := New(cfg, progs, 21)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// auditRunConfigs exercises the auditor across the platform's main
// operating points: deployment and analysis, EFL on and off, fixed MID.
func auditRunConfigs() []Config {
	base := DefaultConfig()
	a := base.WithEFL(300).WithAnalysis(0)
	d := base.WithEFL(300)
	fixed := d
	fixed.EFLFixedMID = true
	noEFL := base
	return []Config{a, d, fixed, noEFL}
}

func TestAuditorPassesRealRuns(t *testing.T) {
	for ci, cfg := range auditRunConfigs() {
		aud := NewAuditor()
		m := newAuditTestPlatform(t, cfg)
		var res Result
		for run := 0; run < 5; run++ {
			if err := m.RunInto(&res); err != nil {
				t.Fatalf("cfg %d run %d: %v", ci, run, err)
			}
			if err := aud.CheckRun(cfg, &res); err != nil {
				t.Fatalf("cfg %d run %d: %v", ci, run, err)
			}
		}
		rep := aud.Report()
		if rep.Runs != 5 || rep.Violations != 0 || rep.Checks == 0 {
			t.Fatalf("cfg %d: report %+v", ci, rep)
		}
		if err := aud.Err(); err != nil {
			t.Fatalf("cfg %d: Err() = %v", ci, err)
		}
	}
}

func TestAuditorCatchesViolations(t *testing.T) {
	cfg := DefaultConfig().WithEFL(300)
	m := newAuditTestPlatform(t, cfg)
	var res Result
	if err := m.RunInto(&res); err != nil {
		t.Fatal(err)
	}

	// A1: mis-attributed cycle.
	bad := res
	bad.PerCore = append([]CoreResult(nil), res.PerCore...)
	bad.PerCore[0].Attribution[metrics.Execute]++
	aud := NewAuditor()
	err := aud.CheckRun(cfg, &bad)
	if err == nil || !strings.Contains(err.Error(), AuditCycleSum) {
		t.Fatalf("A1 not caught: %v", err)
	}

	// A2: read over the UBD.
	bad = res
	bad.PerCore = append([]CoreResult(nil), res.PerCore...)
	bad.PerCore[1].MaxReadLatency = int64(cfg.Cores)*cfg.MemSlotCycles + cfg.MemCycles + 1
	aud = NewAuditor()
	err = aud.CheckRun(cfg, &bad)
	if err == nil || !strings.Contains(err.Error(), AuditUBD) {
		t.Fatalf("A2 not caught: %v", err)
	}

	// A3: more evictions than the MID rate admits.
	bad = res
	bad.PerCore = append([]CoreResult(nil), res.PerCore...)
	bad.PerCore[2].EFL.Evictions = uint64(bad.PerCore[2].Cycles) // one per cycle
	bad.PerCore[2].EFL.DelaySum = bad.PerCore[2].Cycles * cfg.MID
	aud = NewAuditor()
	err = aud.CheckRun(cfg, &bad)
	if err == nil || !strings.Contains(err.Error(), AuditEvictionRate) {
		t.Fatalf("A3 (rate) not caught: %v", err)
	}

	// A3 exact form: a delay schedule that cannot fit the window.
	bad = res
	bad.PerCore = append([]CoreResult(nil), res.PerCore...)
	bad.PerCore[0].EFL.DelaySum = bad.PerCore[0].Cycles + 2*cfg.MID + 1
	aud = NewAuditor()
	err = aud.CheckRun(cfg, &bad)
	if err == nil || !strings.Contains(err.Error(), AuditEvictionRate) {
		t.Fatalf("A3 (delay sum) not caught: %v", err)
	}

	// A4 via Record, and report/Err accounting.
	aud = NewAuditor()
	aud.Record(AuditEVTCrossCheck, true, "")
	aud.Record(AuditEVTCrossCheck, false, "estimates diverge 3x")
	rep := aud.Report()
	iv := rep.Invariants[AuditEVTCrossCheck]
	if iv.Checks != 2 || iv.Violations != 1 || iv.FirstViolation == "" {
		t.Fatalf("record accounting wrong: %+v", iv)
	}
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestAuditorNilIsNoop(t *testing.T) {
	var aud *Auditor
	aud.Record(AuditUBD, false, "x")
	if err := aud.CheckRun(DefaultConfig(), &Result{}); err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatal(err)
	}
	if rep := aud.Report(); rep.Runs != 0 {
		t.Fatalf("nil report %+v", rep)
	}
}
