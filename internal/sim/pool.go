package sim

import (
	"context"
	"fmt"

	"efl/internal/cache"
	"efl/internal/cpu"
	"efl/internal/efl"
	"efl/internal/isa"
)

// Reuse rewinds the platform for a fresh campaign under the SAME Config:
// every PRNG stream is re-derived from seed in construction fork order,
// caches are rewound to their just-constructed state (reusing their line
// arrays), and progs replace the previous program set. The result is
// bit-identical to New(m.Config(), progs, seed) — pinned by
// TestReuseMatchesFresh — while avoiding the cache/array allocations that
// dominate New. Campaign code reuses one platform per (worker, Config)
// through Pool instead of constructing thousands.
func (m *Multicore) Reuse(progs []*isa.Program, seed uint64) error {
	cfg := m.cfg
	if len(progs) > cfg.Cores {
		return fmt.Errorf("sim: %d programs for %d cores", len(progs), cfg.Cores)
	}
	if cfg.Mode == efl.Analysis {
		for i, p := range progs {
			if (p != nil) != (i == cfg.AnalysedCore) {
				return fmt.Errorf("sim: analysis mode requires exactly the analysed core (%d) to have a program", cfg.AnalysedCore)
			}
		}
	}
	// A reused platform starts healthy: any armed fault plan or watchdog
	// budget belongs to the previous job and must not leak into this one.
	m.DisarmFaults()
	m.watchdog = 0

	m.rnd.Reseed(seed)
	for i := range m.progs {
		m.progs[i] = nil
	}
	copy(m.progs, progs)

	// Fork order mirrors New exactly: LLC, bus, access control, then the
	// per-core L1 pairs of cores that run a program.
	m.llc.Reseed(m.rnd.Uint64())
	m.bus.Reseed(m.rnd.Uint64())
	m.ac.Reseed(m.rnd.Uint64())
	m.ac.SetFixed(cfg.EFLFixedMID)

	for i, ctl := range m.cores {
		ctl.wakeAt = 0
		ctl.issuedAt = 0
		ctl.evalAt = 0
		ctl.analysisBusWait = 0
		if m.progs[i] == nil {
			ctl.core = nil
			ctl.state = stIdle
			continue
		}
		if cfg.PartitionWays != nil && cfg.PartitionWays[i] == 0 {
			return fmt.Errorf("sim: core %d runs a program but has a 0-way partition", i)
		}
		machine, err := isa.NewMachine(m.progs[i])
		if err != nil {
			return err
		}
		var il1, dl1 *cache.Cache
		if ctl.core != nil {
			il1, dl1 = ctl.core.IL1, ctl.core.DL1
			il1.Reseed(m.rnd.Uint64())
			dl1.Reseed(m.rnd.Uint64())
		} else {
			il1 = cache.New(cfg.l1Config(fmt.Sprintf("IL1-%d", i)), m.rnd.Fork())
			dl1 = cache.New(cfg.l1Config(fmt.Sprintf("DL1-%d", i)), m.rnd.Fork())
		}
		ctl.core = cpu.New(i, machine, il1, dl1)
		ctl.core.BranchPenalty = cfg.BranchPenalty
		ctl.core.WriteThrough = cfg.DL1WriteThrough
		ctl.state = stReady
	}
	return nil
}

// Pool caches one platform per distinct Config so that campaign workers
// stop paying New per run: the first Get for a configuration constructs
// the platform, later Gets rewind it with Reuse. Results are bit-identical
// either way. A Pool is NOT safe for concurrent use — campaign runners
// hold one Pool per worker.
type Pool struct {
	platforms map[string]*Multicore
	// aud, when set, checks every run executed through the pool's
	// collection helpers. The Auditor itself is mutex-guarded, so one
	// auditor is shared across all workers' pools.
	aud *Auditor
	// quarantined counts platforms removed by Quarantine/QuarantineAll.
	quarantined int
}

// NewPool returns an empty platform pool.
func NewPool() *Pool { return &Pool{platforms: map[string]*Multicore{}} }

// SetAuditor attaches a soundness auditor to the pool; nil detaches it.
func (p *Pool) SetAuditor(a *Auditor) { p.aud = a }

// AuditRun checks one run against the attached auditor. Without an
// auditor it is a no-op, so call sites audit unconditionally.
func (p *Pool) AuditRun(cfg Config, res *Result) error { return p.aud.CheckRun(cfg, res) }

// Size returns the number of distinct platforms held.
func (p *Pool) Size() int { return len(p.platforms) }

// Quarantine removes the platform pooled for cfg, reporting whether one
// was held. A simulation that errored mid-run (watchdog kill, injected
// fault) leaves its platform in an undefined intermediate state; the
// hardened runner quarantines it so the next Get for the configuration
// constructs a fresh one instead of reusing corrupt hardware state.
func (p *Pool) Quarantine(cfg Config) bool {
	key := configKey(cfg)
	if _, ok := p.platforms[key]; !ok {
		return false
	}
	delete(p.platforms, key)
	p.quarantined++
	return true
}

// QuarantineAll removes every pooled platform, returning how many were
// held. Used when a whole job failed and nothing the worker touched can be
// trusted.
func (p *Pool) QuarantineAll() int {
	n := len(p.platforms)
	clear(p.platforms)
	p.quarantined += n
	return n
}

// Quarantined returns how many platforms this pool has quarantined.
func (p *Pool) Quarantined() int { return p.quarantined }

// configKey fingerprints a Config. Config is a flat value type (plus the
// PartitionWays slice), so the %+v rendering is a faithful identity.
func configKey(cfg Config) string { return fmt.Sprintf("%+v", cfg) }

// Get returns a platform for cfg running progs under seed, reusing a
// pooled platform when one with the same Config exists.
func (p *Pool) Get(cfg Config, progs []*isa.Program, seed uint64) (*Multicore, error) {
	key := configKey(cfg)
	if m, ok := p.platforms[key]; ok {
		if err := m.Reuse(progs, seed); err != nil {
			return nil, err
		}
		return m, nil
	}
	m, err := New(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	p.platforms[key] = m
	return m, nil
}

// CollectAnalysisTimes is the pooled, cancellable variant of the package
// function: it performs runs analysis-mode executions of prog and returns
// the execution times in run order. ctx is checked between runs so an
// interrupted campaign stops within one simulation run.
func (p *Pool) CollectAnalysisTimes(ctx context.Context, cfg Config, prog *isa.Program, runs int, seed uint64) ([]float64, error) {
	cfg = cfg.WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	m, err := p.Get(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	times := make([]float64, runs)
	var res Result
	for i := 0; i < runs; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := m.RunInto(&res); err != nil {
			return nil, err
		}
		if err := p.aud.CheckRun(cfg, &res); err != nil {
			return nil, err
		}
		times[i] = float64(res.PerCore[0].Cycles)
	}
	return times, nil
}
