package sim

import (
	"context"
	"fmt"
	"strings"

	"efl/internal/cache"
	"efl/internal/cpu"
	"efl/internal/efl"
	"efl/internal/isa"
)

// Reuse rewinds the platform for a fresh campaign under the SAME Config:
// every PRNG stream is re-derived from seed in construction fork order,
// caches are rewound to their just-constructed state (reusing their line
// arrays), and progs replace the previous program set. The result is
// bit-identical to New(m.Config(), progs, seed) — pinned by
// TestReuseMatchesFresh — while avoiding the cache/array allocations that
// dominate New. Campaign code reuses one platform per (worker, Config)
// through Pool instead of constructing thousands.
func (m *Multicore) Reuse(progs []*isa.Program, seed uint64) error {
	cfg := m.cfg
	if len(progs) > cfg.Cores {
		return fmt.Errorf("sim: %d programs for %d cores", len(progs), cfg.Cores)
	}
	if cfg.Mode == efl.Analysis {
		for i, p := range progs {
			if (p != nil) != (i == cfg.AnalysedCore) {
				return fmt.Errorf("sim: analysis mode requires exactly the analysed core (%d) to have a program", cfg.AnalysedCore)
			}
		}
	}
	// A reused platform starts healthy: any armed fault plan or watchdog
	// budget belongs to the previous job and must not leak into this one.
	m.DisarmFaults()
	m.watchdog = 0

	m.rnd.Reseed(seed)
	for i := range m.progs {
		m.progs[i] = nil
	}
	copy(m.progs, progs)

	// Fork order mirrors New exactly: LLC, bus, access control, shared
	// intermediate levels, then the per-core L1 pairs of cores that run a
	// program.
	m.llc.Reseed(m.rnd.Uint64())
	m.bus.Reseed(m.rnd.Uint64())
	m.ac.Reseed(m.rnd.Uint64())
	m.ac.SetFixed(cfg.EFLFixedMID)
	for i := range m.mids {
		m.mids[i].Reseed(m.rnd.Uint64())
	}

	for i, ctl := range m.cores {
		ctl.wakeAt = 0
		ctl.issuedAt = 0
		ctl.evalAt = 0
		ctl.analysisBusWait = 0
		if m.progs[i] == nil {
			ctl.core = nil
			ctl.state = stIdle
			continue
		}
		if cfg.PartitionWays != nil && cfg.PartitionWays[i] == 0 {
			return fmt.Errorf("sim: core %d runs a program but has a 0-way partition", i)
		}
		machine, err := isa.NewMachine(m.progs[i])
		if err != nil {
			return err
		}
		var il1, dl1 *cache.Cache
		if ctl.core != nil {
			il1, dl1 = ctl.core.IL1, ctl.core.DL1
			il1.Reseed(m.rnd.Uint64())
			dl1.Reseed(m.rnd.Uint64())
		} else {
			il1 = cache.New(cfg.l1Config(fmt.Sprintf("IL1-%d", i)), m.rnd.Fork())
			dl1 = cache.New(cfg.l1Config(fmt.Sprintf("DL1-%d", i)), m.rnd.Fork())
		}
		ctl.core = cpu.New(i, machine, il1, dl1)
		ctl.core.BranchPenalty = cfg.BranchPenalty
		ctl.core.WriteThrough = cfg.DL1WriteThrough
		m.wireCoherence(ctl.core)
		ctl.state = stReady
	}
	return nil
}

// Pool caches one platform per distinct Config so that campaign workers
// stop paying New per run: the first Get for a configuration constructs
// the platform, later Gets rewind it with Reuse. Results are bit-identical
// either way. A Pool is NOT safe for concurrent use — campaign runners
// hold one Pool per worker.
type Pool struct {
	platforms map[string]*Multicore
	// batches pools one lockstep Batch per (Config, width) the same way
	// platforms pools single engines: the first GetBatch constructs the
	// lanes, later Gets retarget them at the requested program in place.
	batches map[string]*Batch
	// traces caches one recorded architectural trace per program (traces
	// are seed-independent, so one recording serves every configuration
	// and seed). A nil entry marks a program whose recording exceeded the
	// instruction cap; those runs fall back to the interpreter.
	traces map[*isa.Program]*cpu.Trace
	// aud, when set, checks every run executed through the pool's
	// collection helpers. The Auditor itself is mutex-guarded, so one
	// auditor is shared across all workers' pools.
	aud *Auditor
	// quarantined counts platforms removed by Quarantine/QuarantineAll.
	quarantined int
}

// NewPool returns an empty platform pool.
func NewPool() *Pool {
	return &Pool{
		platforms: map[string]*Multicore{},
		batches:   map[string]*Batch{},
		traces:    map[*isa.Program]*cpu.Trace{},
	}
}

// traceFor returns the pooled architectural trace of prog, recording it on
// first use. Programs that do not terminate within maxInstr get a nil
// trace (interpreter fallback); the cap violation itself still surfaces
// through the simulator's retired-instruction check either way.
func (p *Pool) traceFor(prog *isa.Program, maxInstr uint64) *cpu.Trace {
	tr, ok := p.traces[prog]
	if !ok {
		tr, _ = cpu.RecordTrace(prog, maxInstr)
		p.traces[prog] = tr
	}
	return tr
}

// SetAuditor attaches a soundness auditor to the pool; nil detaches it.
func (p *Pool) SetAuditor(a *Auditor) { p.aud = a }

// AuditRun checks one run against the attached auditor. Without an
// auditor it is a no-op, so call sites audit unconditionally.
func (p *Pool) AuditRun(cfg Config, res *Result) error { return p.aud.CheckRun(cfg, res) }

// Size returns the number of distinct platforms held.
func (p *Pool) Size() int { return len(p.platforms) }

// Quarantine removes the platform pooled for cfg, reporting whether one
// was held. A simulation that errored mid-run (watchdog kill, injected
// fault) leaves its platform in an undefined intermediate state; the
// hardened runner quarantines it so the next Get for the configuration
// constructs a fresh one instead of reusing corrupt hardware state.
func (p *Pool) Quarantine(cfg Config) bool {
	key := configKey(cfg)
	hit := false
	if _, ok := p.platforms[key]; ok {
		delete(p.platforms, key)
		p.quarantined++
		hit = true
	}
	for bk := range p.batches {
		if strings.HasPrefix(bk, key+"/k=") {
			delete(p.batches, bk)
			p.quarantined++
			hit = true
		}
	}
	return hit
}

// QuarantineAll removes every pooled platform, returning how many were
// held. Used when a whole job failed and nothing the worker touched can be
// trusted.
func (p *Pool) QuarantineAll() int {
	n := len(p.platforms) + len(p.batches)
	clear(p.platforms)
	clear(p.batches)
	p.quarantined += n
	return n
}

// Quarantined returns how many platforms this pool has quarantined.
func (p *Pool) Quarantined() int { return p.quarantined }

// configKey fingerprints a Config. Config is a flat value type (plus the
// PartitionWays slice), so the %+v rendering is a faithful identity.
func configKey(cfg Config) string { return fmt.Sprintf("%+v", cfg) }

// Get returns a platform for cfg running progs under seed, reusing a
// pooled platform when one with the same Config exists.
func (p *Pool) Get(cfg Config, progs []*isa.Program, seed uint64) (*Multicore, error) {
	key := configKey(cfg)
	if m, ok := p.platforms[key]; ok {
		if err := m.Reuse(progs, seed); err != nil {
			return nil, err
		}
		return m, nil
	}
	m, err := New(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	p.platforms[key] = m
	return m, nil
}

// CollectAnalysisTimes is the pooled, cancellable variant of the package
// function: it performs runs analysis-mode executions of prog and returns
// the execution times in run order. ctx is checked between runs so an
// interrupted campaign stops within one simulation run.
func (p *Pool) CollectAnalysisTimes(ctx context.Context, cfg Config, prog *isa.Program, runs int, seed uint64) ([]float64, error) {
	cfg = cfg.WithAnalysis(0)
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	m, err := p.Get(cfg, progs, seed)
	if err != nil {
		return nil, err
	}
	// Replaying the pooled trace removes the interpreter from the run loop
	// while keeping every timing decision — and therefore the collected
	// times — bit-identical to the interpreted path.
	m.setReplay(p.traceFor(prog, cfg.MaxInstrPerCore))
	times := make([]float64, runs)
	var res Result
	for i := 0; i < runs; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := m.RunAnalysisInto(&res); err != nil {
			return nil, err
		}
		if err := p.aud.CheckRun(cfg, &res); err != nil {
			return nil, err
		}
		times[i] = float64(res.PerCore[0].Cycles)
	}
	return times, nil
}

// GetBatch returns a pooled k-lane lockstep batch for cfg running prog.
// The first call for a (Config, k) pair constructs the lanes; later calls
// retarget the pooled batch at prog in place, reusing every lane's cache
// arrays. Like Get, results are bit-identical either way.
func (p *Pool) GetBatch(cfg Config, prog *isa.Program, k int) (*Batch, error) {
	cfg = cfg.WithAnalysis(0)
	key := fmt.Sprintf("%s/k=%d", configKey(cfg), k)
	if b, ok := p.batches[key]; ok {
		if err := b.Retarget(prog, p.traceFor(prog, cfg.MaxInstrPerCore)); err != nil {
			return nil, err
		}
		return b, nil
	}
	b, err := NewBatch(cfg, prog, k)
	if err != nil {
		return nil, err
	}
	p.batches[key] = b
	return b, nil
}

// StreamAnalysisTimes executes analysis-mode runs of prog in pooled
// lockstep batches of k lanes, feeding each run's execution time to emit
// in run order until emit returns true (stop), maxRuns runs have been
// consumed, or ctx is cancelled. Run i is seeded seedFor(i), so the time
// sequence — and therefore anything a caller derives from it, such as a
// convergence stopping point — is invariant under k: a wider batch only
// simulates (and discards) more runs past the stopping point. Every
// consumed run is audited exactly like the single-run collector's.
// Returns the number of runs consumed (fed to emit).
func (p *Pool) StreamAnalysisTimes(ctx context.Context, cfg Config, prog *isa.Program, k, maxRuns int, seedFor func(run int) uint64, emit func(t float64) (stop bool)) (int, error) {
	cfg = cfg.WithAnalysis(0)
	b, err := p.GetBatch(cfg, prog, k)
	if err != nil {
		return 0, err
	}
	seeds := make([]uint64, k)
	n := 0
	for n < maxRuns {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		w := k
		if rem := maxRuns - n; rem < w {
			w = rem
		}
		for j := 0; j < w; j++ {
			seeds[j] = seedFor(n + j)
		}
		results, err := b.Run(ctx, seeds[:w])
		if err != nil {
			return n, err
		}
		for j := range results {
			if err := p.aud.CheckRun(cfg, &results[j]); err != nil {
				return n, err
			}
			n++
			if emit(float64(results[j].PerCore[0].Cycles)) {
				return n, nil
			}
		}
	}
	return n, nil
}
