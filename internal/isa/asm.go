package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembler text into a Program. The syntax mirrors
// Instr.String():
//
//	; comment                      # comment
//	label:
//	    movi r1, 100
//	    addi r1, r1, -1
//	    add  r3, r1, r2
//	    ld   r4, 8(r2)
//	    st   r4, 16(r2)
//	    bne  r1, r0, label
//	    jmp  label
//	    halt
//	.word 1, 2, 3        ; appends 8-byte words to the data segment
//	.space 1024          ; reserves zeroed data bytes
//	.size 65536          ; forces a minimum data-segment size
//
// Instructions and directives may be interleaved; data directives always
// append to the single data segment in order of appearance.
func Assemble(name, src string) (*Program, error) {
	b := NewBuilder(name)
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
				b.Label(strings.TrimSpace(line[:i]))
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					break
				}
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		if err := assembleLine(b, line); err != nil {
			return nil, fmt.Errorf("isa: %s:%d: %w", name, ln+1, err)
		}
	}
	return b.Program()
}

// MustAssemble is Assemble that panics on error.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func assembleLine(b *Builder, line string) error {
	fields := strings.Fields(line)
	mnem := strings.ToLower(fields[0])
	argStr := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	args := splitArgs(argStr)

	switch mnem {
	case ".word":
		words := make([]int64, 0, len(args))
		for _, a := range args {
			v, err := strconv.ParseInt(a, 0, 64)
			if err != nil {
				return fmt.Errorf(".word: %w", err)
			}
			words = append(words, v)
		}
		b.DataWords(words...)
		return nil
	case ".space":
		if len(args) != 1 {
			return fmt.Errorf(".space wants 1 argument")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return fmt.Errorf(".space: bad size %q", args[0])
		}
		b.ReserveData(n)
		return nil
	case ".size":
		if len(args) != 1 {
			return fmt.Errorf(".size wants 1 argument")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return fmt.Errorf(".size: bad size %q", args[0])
		}
		b.SetDataSize(n)
		return nil
	case "nop":
		b.Nop()
		return nil
	case "halt":
		b.Halt()
		return nil
	case "movi":
		rd, err := wantReg(args, 0, 2)
		if err != nil {
			return err
		}
		imm, err := wantImm(args, 1)
		if err != nil {
			return err
		}
		b.Movi(rd, imm)
		return nil
	case "addi":
		rd, err := wantReg(args, 0, 3)
		if err != nil {
			return err
		}
		rs, err := wantReg(args, 1, 3)
		if err != nil {
			return err
		}
		imm, err := wantImm(args, 2)
		if err != nil {
			return err
		}
		b.Addi(rd, rs, imm)
		return nil
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr":
		rd, err := wantReg(args, 0, 3)
		if err != nil {
			return err
		}
		rs, err := wantReg(args, 1, 3)
		if err != nil {
			return err
		}
		rt, err := wantReg(args, 2, 3)
		if err != nil {
			return err
		}
		ops := map[string]func(int, int, int){
			"add": b.Add, "sub": b.Sub, "mul": b.Mul, "div": b.Div,
			"rem": b.Rem, "and": b.And, "or": b.Or, "xor": b.Xor,
			"shl": b.Shl, "shr": b.Shr,
		}
		ops[mnem](rd, rs, rt)
		return nil
	case "ld", "st":
		if len(args) != 2 {
			return fmt.Errorf("%s wants 2 arguments", mnem)
		}
		r1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		if mnem == "ld" {
			b.Ld(r1, base, off)
		} else {
			b.St(r1, base, off)
		}
		return nil
	case "beq", "bne", "blt", "bge":
		rs, err := wantReg(args, 0, 3)
		if err != nil {
			return err
		}
		rt, err := wantReg(args, 1, 3)
		if err != nil {
			return err
		}
		if len(args) != 3 || !isIdent(args[2]) {
			return fmt.Errorf("%s wants a label operand", mnem)
		}
		switch mnem {
		case "beq":
			b.Beq(rs, rt, args[2])
		case "bne":
			b.Bne(rs, rt, args[2])
		case "blt":
			b.Blt(rs, rt, args[2])
		case "bge":
			b.Bge(rs, rt, args[2])
		}
		return nil
	case "jmp":
		if len(args) != 1 || !isIdent(args[0]) {
			return fmt.Errorf("jmp wants a label operand")
		}
		b.Jmp(args[0])
		return nil
	default:
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseReg(s string) (int, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func wantReg(args []string, i, total int) (int, error) {
	if len(args) != total {
		return 0, fmt.Errorf("want %d operands, got %d", total, len(args))
	}
	return parseReg(args[i])
}

func wantImm(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing immediate")
	}
	v, err := strconv.ParseInt(args[i], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", args[i])
	}
	return v, nil
}

// parseMemOperand parses "off(rN)" or "(rN)".
func parseMemOperand(s string) (off int64, base int, err error) {
	open := strings.Index(s, "(")
	closeP := strings.LastIndex(s, ")")
	if open < 0 || closeP <= open || closeP != len(s)-1 {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr != "" {
		off, err = strconv.ParseInt(offStr, 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
	}
	base, err = parseReg(strings.TrimSpace(s[open+1 : closeP]))
	return off, base, err
}

// Disassemble renders a program as assembler text that Assemble can parse
// back (labels are synthesised at branch targets).
func Disassemble(p *Program) string {
	targets := map[int]string{}
	for _, ins := range p.Code {
		if ins.Op.IsBranch() {
			if _, ok := targets[ins.Target]; !ok {
				targets[ins.Target] = fmt.Sprintf("L%d", ins.Target)
			}
		}
	}
	var sb strings.Builder
	for idx, ins := range p.Code {
		if lbl, ok := targets[idx]; ok {
			fmt.Fprintf(&sb, "%s:\n", lbl)
		}
		switch {
		case ins.Op.IsBranch() && ins.Op != JMP:
			fmt.Fprintf(&sb, "    %s r%d, r%d, %s\n", ins.Op, ins.Rs, ins.Rt, targets[ins.Target])
		case ins.Op == JMP:
			fmt.Fprintf(&sb, "    jmp %s\n", targets[ins.Target])
		default:
			fmt.Fprintf(&sb, "    %s\n", ins.String())
		}
	}
	return sb.String()
}
