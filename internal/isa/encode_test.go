package isa

import (
	"bytes"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := MustAssemble("rt", `
        movi r1, 0x40000000   ; needs the literal pool
        movi r2, 100          ; fits the field
        movi r3, -7           ; negative: pool
    loop:
        ld   r4, 8(r1)
        addi r4, r4, 1
        st   r4, 8(r1)
        addi r2, r2, -1       ; negative imm: pool
        bne  r2, r0, loop
        halt
    `)
	img, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(img); got != EncodedSize(p) {
		t.Fatalf("image %d bytes, EncodedSize says %d", got, EncodedSize(p))
	}
	q, err := Decode("rt", img)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("decoded %d instructions, want %d", len(q.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != q.Code[i] {
			t.Fatalf("instruction %d: %+v != %+v", i, p.Code[i], q.Code[i])
		}
	}
}

func TestEncodePoolDeduplicates(t *testing.T) {
	b := NewBuilder("dedup")
	for i := 0; i < 10; i++ {
		b.Movi(1, 0x40000000) // same wide literal ten times
	}
	b.Halt()
	p := b.MustProgram()
	img, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// 4 header + 11 instructions * 4 + ONE pooled literal.
	want := 4 + 11*4 + 8
	if len(img) != want {
		t.Fatalf("image %d bytes, want %d (pool not deduplicated?)", len(img), want)
	}
}

func TestEncodeAllKernelsRoundTrip(t *testing.T) {
	// Every shipped program must be encodable, and the decoded copy must
	// behave identically.
	progs := []*Program{
		MustAssemble("sum", sumSrc),
	}
	for _, p := range progs {
		img, err := Encode(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		q, err := Decode(p.Name, img)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		q.Data, q.DataSize = p.Data, p.DataSize
		m1, _ := NewMachine(p)
		m2, _ := NewMachine(q)
		if _, err := m1.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if m1.Regs != m2.Regs {
			t.Fatalf("%s: decoded program diverged", p.Name)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode("x", []byte{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Header claims more instructions than present.
	img := []byte{10, 0, 0, 0, 1, 2, 3, 4}
	if _, err := Decode("x", img); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Valid header but ragged pool.
	p := MustAssemble("mini", "halt\n")
	good, _ := Encode(p)
	bad := append(append([]byte{}, good...), 0xff)
	if _, err := Decode("x", bad); err == nil {
		t.Fatal("ragged pool accepted")
	}
	// Pool reference out of range: craft movi with poolFlag|5 and no pool.
	word := uint32(MOVI)&0x3f | uint32(1)<<6 | (uint32(poolFlag)|5)<<18
	img = make([]byte, 8)
	img[0] = 1
	img[4] = byte(word)
	img[5] = byte(word >> 8)
	img[6] = byte(word >> 16)
	img[7] = byte(word >> 24)
	if _, err := Decode("x", img); err == nil {
		t.Fatal("dangling pool reference accepted")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(&Program{Name: "empty"}); err == nil {
		t.Fatal("empty program encoded")
	}
}

func TestEncodeImageDiffersPerProgram(t *testing.T) {
	a, _ := Encode(MustAssemble("a", "movi r1, 1\nhalt\n"))
	b, _ := Encode(MustAssemble("b", "movi r1, 2\nhalt\n"))
	if bytes.Equal(a, b) {
		t.Fatal("distinct programs encoded identically")
	}
}

func TestEncodeDecodeQuickCheck(t *testing.T) {
	// Property: any structurally valid random program round-trips.
	src := int64(1)
	next := func(n int64) int64 {
		src = src*6364136223846793005 + 1442695040888963407
		if n <= 0 {
			return 0
		}
		v := src >> 16
		if v < 0 {
			v = -v
		}
		return v % n
	}
	for trial := 0; trial < 200; trial++ {
		n := int(next(40)) + 2
		code := make([]Instr, n)
		for i := range code {
			op := Op(next(int64(numOps)))
			ins := Instr{Op: op,
				Rd: uint8(next(NumRegs)), Rs: uint8(next(NumRegs)), Rt: uint8(next(NumRegs))}
			if op.IsBranch() {
				ins.Target = int(next(int64(n)))
			} else {
				// Mix small, large and negative immediates.
				switch next(3) {
				case 0:
					ins.Imm = next(1000)
				case 1:
					ins.Imm = int64(0x40000000) + next(1<<20)
				default:
					ins.Imm = -next(1 << 30)
				}
			}
			code[i] = ins
		}
		p := &Program{Name: "quick", Code: code}
		if p.Validate() != nil {
			continue // rare invalid combos (shouldn't happen, but stay safe)
		}
		img, err := Encode(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		q, err := Decode("quick", img)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range code {
			if code[i] != q.Code[i] {
				t.Fatalf("trial %d instr %d: %+v != %+v", trial, i, code[i], q.Code[i])
			}
		}
	}
}
