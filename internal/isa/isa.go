// Package isa defines the small RISC instruction set the simulated cores
// execute, together with a functional interpreter (Machine), an assembler
// and a disassembler.
//
// The paper evaluates EEMBC Autobench programs on a simple 4-stage in-order
// core (§4.1). Those benchmarks are proprietary, so this repository ships
// behaviour-equivalent kernels written in this ISA (package bench); the ISA
// is deliberately minimal — enough to express loops, integer arithmetic,
// table lookups and pointer chasing, the ingredients of the Autobench
// memory behaviour classes.
//
// Memory layout: instructions occupy 4 bytes each starting at CodeBase;
// data lives in a single segment starting at DataBase. Loads and stores
// move 8-byte words. Cache-relevant addresses are byte addresses, so a
// 16-byte cache line holds 4 instructions or 2 data words.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Address-space layout constants.
const (
	// CodeBase is the byte address of instruction index 0.
	CodeBase uint64 = 0x0000_0000
	// DataBase is the byte address of data-segment offset 0.
	DataBase uint64 = 0x4000_0000
	// InstrBytes is the encoded size of one instruction.
	InstrBytes = 4
	// WordBytes is the size of a data word moved by LD/ST.
	WordBytes = 8
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. Three-register ALU ops compute Rd = Rs <op> Rt; immediate forms
// compute Rd = Rs <op> Imm. LD loads Rd from [Rs+Imm]; ST stores Rt to
// [Rs+Imm]. Branches compare Rs against Rt and jump to Target.
const (
	NOP Op = iota
	HALT
	MOVI // Rd = Imm
	ADD  // Rd = Rs + Rt
	ADDI // Rd = Rs + Imm
	SUB  // Rd = Rs - Rt
	MUL  // Rd = Rs * Rt
	DIV  // Rd = Rs / Rt (Rt==0 faults)
	REM  // Rd = Rs % Rt (Rt==0 faults)
	AND  // Rd = Rs & Rt
	OR   // Rd = Rs | Rt
	XOR  // Rd = Rs ^ Rt
	SHL  // Rd = Rs << (Rt & 63)
	SHR  // Rd = int64(Rs) >> (Rt & 63)
	LD   // Rd = mem64[Rs + Imm]
	ST   // mem64[Rs + Imm] = Rt
	BEQ  // if Rs == Rt goto Target
	BNE  // if Rs != Rt goto Target
	BLT  // if Rs <  Rt goto Target
	BGE  // if Rs >= Rt goto Target
	JMP  // goto Target
	numOps
)

var opNames = [numOps]string{
	"nop", "halt", "movi", "add", "addi", "sub", "mul", "div", "rem",
	"and", "or", "xor", "shl", "shr", "ld", "st",
	"beq", "bne", "blt", "bge", "jmp",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Latency returns the execute-stage latency of the opcode in cycles
// (paper §4.1: fixed execution latencies, e.g. integer additions take
// 1 cycle). Memory latencies are determined by the cache hierarchy, not
// here; LD/ST report 1 for the address-generation step.
func (o Op) Latency() int64 {
	switch o {
	case MUL:
		return 3
	case DIV, REM:
		return 12
	default:
		return 1
	}
}

// IsBranch reports whether the opcode is a control-flow instruction.
func (o Op) IsBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE, JMP:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o == LD || o == ST }

// NumRegs is the architectural register count.
const NumRegs = 16

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	Rd     uint8 // destination register
	Rs     uint8 // first source register / address base
	Rt     uint8 // second source register / store data
	Imm    int64 // immediate / address offset
	Target int   // branch/jump target (instruction index)
}

// Validate reports whether the instruction's register fields are in range
// and its target (for branches) is within a program of length n.
func (i Instr) Validate(n int) error {
	if i.Rd >= NumRegs || i.Rs >= NumRegs || i.Rt >= NumRegs {
		return fmt.Errorf("isa: register out of range in %v", i)
	}
	if i.Op.IsBranch() && (i.Target < 0 || i.Target >= n) {
		return fmt.Errorf("isa: branch target %d outside program of %d instructions", i.Target, n)
	}
	if i.Op >= numOps {
		return fmt.Errorf("isa: unknown opcode %d", i.Op)
	}
	return nil
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case ADDI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SHR:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	case LD:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Rd, i.Imm, i.Rs)
	case ST:
		return fmt.Sprintf("st r%d, %d(r%d)", i.Rt, i.Imm, i.Rs)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op, i.Rs, i.Rt, i.Target)
	case JMP:
		return fmt.Sprintf("jmp @%d", i.Target)
	default:
		return fmt.Sprintf("%v?", i.Op)
	}
}

// Program is an executable unit: code plus an initialised data segment.
type Program struct {
	Name string
	Code []Instr
	// Data is the initial contents of the data segment (byte-addressed
	// from DataBase). The segment the Machine allocates is at least
	// DataSize bytes; Data may be shorter (the rest is zero).
	Data []byte
	// DataSize is the data segment size in bytes; if 0, len(Data) is used.
	DataSize int
}

// Validate checks the whole program.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q has no code", p.Name)
	}
	for idx, ins := range p.Code {
		if err := ins.Validate(len(p.Code)); err != nil {
			return fmt.Errorf("isa: %q instruction %d: %w", p.Name, idx, err)
		}
	}
	if p.DataSize < len(p.Data) && p.DataSize != 0 {
		return fmt.Errorf("isa: %q DataSize %d smaller than initial data %d", p.Name, p.DataSize, len(p.Data))
	}
	return nil
}

// SegmentSize returns the data segment size the machine must allocate.
func (p *Program) SegmentSize() int {
	if p.DataSize > len(p.Data) {
		return p.DataSize
	}
	return len(p.Data)
}

// InstrAddr returns the byte address of instruction index idx.
func InstrAddr(idx int) uint64 { return CodeBase + uint64(idx)*InstrBytes }

// Fault describes a runtime error raised by the interpreter.
type Fault struct {
	PC     int
	Instr  Instr
	Reason string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("isa: fault at pc=%d (%v): %s", f.PC, f.Instr, f.Reason)
}

// StepInfo describes the dynamic instruction just executed — everything the
// timing model needs.
type StepInfo struct {
	Index     int    // static instruction index (pre-execution PC)
	FetchAddr uint64 // byte address fetched
	Op        Op
	MemAddr   uint64 // valid when Op.IsMem()
	MemWrite  bool
	Taken     bool // branch taken (JMP counts as taken)
	Halted    bool
}

// Machine is the functional interpreter state for one core.
type Machine struct {
	Prog *Program
	Regs [NumRegs]int64
	PC   int
	Data []byte
	// Steps counts executed instructions (dynamic instruction count).
	Steps uint64
	// halted latches HALT.
	halted bool
}

// NewMachine allocates the machine state for prog. The program is validated.
func NewMachine(prog *Program) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Prog: prog, Data: make([]byte, prog.SegmentSize())}
	copy(m.Data, prog.Data)
	return m, nil
}

// Reset rewinds the machine to its initial state (fresh registers, PC and
// data segment) for a new run.
func (m *Machine) Reset() {
	m.Regs = [NumRegs]int64{}
	m.PC = 0
	m.Steps = 0
	m.halted = false
	for i := range m.Data {
		m.Data[i] = 0
	}
	copy(m.Data, m.Prog.Data)
}

// Halted reports whether the machine has executed HALT (or faulted).
func (m *Machine) Halted() bool { return m.halted }

// read64 loads a data word; addr is a byte address.
func (m *Machine) read64(addr uint64) (int64, bool) {
	if addr < DataBase {
		return 0, false
	}
	off := addr - DataBase
	if off+WordBytes > uint64(len(m.Data)) {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(m.Data[off:])), true
}

// write64 stores a data word; addr is a byte address.
func (m *Machine) write64(addr uint64, val int64) bool {
	if addr < DataBase {
		return false
	}
	off := addr - DataBase
	if off+WordBytes > uint64(len(m.Data)) {
		return false
	}
	binary.LittleEndian.PutUint64(m.Data[off:], uint64(val))
	return true
}

// ReadWord exposes data-segment reads for tests and result checking;
// off is a byte offset from DataBase.
func (m *Machine) ReadWord(off uint64) (int64, error) {
	v, ok := m.read64(DataBase + off)
	if !ok {
		return 0, fmt.Errorf("isa: ReadWord offset %d out of segment", off)
	}
	return v, nil
}

// WriteWord exposes data-segment writes for test setup.
func (m *Machine) WriteWord(off uint64, val int64) error {
	if !m.write64(DataBase+off, val) {
		return fmt.Errorf("isa: WriteWord offset %d out of segment", off)
	}
	return nil
}

// Step executes one instruction and returns its StepInfo. Calling Step on a
// halted machine returns Halted=true without executing. A fault (bad
// address, division by zero) halts the machine and returns the fault.
func (m *Machine) Step() (StepInfo, error) {
	var info StepInfo
	err := m.StepInto(&info)
	return info, err
}

// StepInto is Step writing through a caller-owned StepInfo — the timing
// model calls it once per simulated instruction, and skipping the struct
// return copy is measurable at that rate.
func (m *Machine) StepInto(info *StepInfo) error {
	if m.halted {
		*info = StepInfo{Halted: true}
		return nil
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Code) {
		m.halted = true
		*info = StepInfo{Halted: true}
		return &Fault{PC: m.PC, Reason: "pc out of range"}
	}
	ins := m.Prog.Code[m.PC]
	*info = StepInfo{Index: m.PC, FetchAddr: InstrAddr(m.PC), Op: ins.Op}
	// Register indices are validated < NumRegs at program load; the masks
	// restate that bound where the compiler can see it, eliminating the
	// bounds check on every register file access.
	rd, rs, rt := ins.Rd&(NumRegs-1), ins.Rs&(NumRegs-1), ins.Rt&(NumRegs-1)
	next := m.PC + 1
	fault := func(reason string) error {
		m.halted = true
		info.Halted = true
		return &Fault{PC: m.PC, Instr: ins, Reason: reason}
	}
	switch ins.Op {
	case NOP:
	case HALT:
		m.halted = true
		info.Halted = true
	case MOVI:
		m.Regs[rd] = ins.Imm
	case ADD:
		m.Regs[rd] = m.Regs[rs] + m.Regs[rt]
	case ADDI:
		m.Regs[rd] = m.Regs[rs] + ins.Imm
	case SUB:
		m.Regs[rd] = m.Regs[rs] - m.Regs[rt]
	case MUL:
		m.Regs[rd] = m.Regs[rs] * m.Regs[rt]
	case DIV:
		if m.Regs[rt] == 0 {
			return fault("division by zero")
		}
		m.Regs[rd] = m.Regs[rs] / m.Regs[rt]
	case REM:
		if m.Regs[rt] == 0 {
			return fault("remainder by zero")
		}
		m.Regs[rd] = m.Regs[rs] % m.Regs[rt]
	case AND:
		m.Regs[rd] = m.Regs[rs] & m.Regs[rt]
	case OR:
		m.Regs[rd] = m.Regs[rs] | m.Regs[rt]
	case XOR:
		m.Regs[rd] = m.Regs[rs] ^ m.Regs[rt]
	case SHL:
		m.Regs[rd] = m.Regs[rs] << uint64(m.Regs[rt]&63)
	case SHR:
		m.Regs[rd] = m.Regs[rs] >> uint64(m.Regs[rt]&63)
	case LD:
		addr := uint64(m.Regs[rs] + ins.Imm)
		v, ok := m.read64(addr)
		if !ok {
			return fault(fmt.Sprintf("load from %#x outside data segment", addr))
		}
		m.Regs[rd] = v
		info.MemAddr = addr
	case ST:
		addr := uint64(m.Regs[rs] + ins.Imm)
		if !m.write64(addr, m.Regs[rt]) {
			return fault(fmt.Sprintf("store to %#x outside data segment", addr))
		}
		info.MemAddr = addr
		info.MemWrite = true
	case BEQ:
		if m.Regs[rs] == m.Regs[rt] {
			next = ins.Target
			info.Taken = true
		}
	case BNE:
		if m.Regs[rs] != m.Regs[rt] {
			next = ins.Target
			info.Taken = true
		}
	case BLT:
		if m.Regs[rs] < m.Regs[rt] {
			next = ins.Target
			info.Taken = true
		}
	case BGE:
		if m.Regs[rs] >= m.Regs[rt] {
			next = ins.Target
			info.Taken = true
		}
	case JMP:
		next = ins.Target
		info.Taken = true
	default:
		return fault("unknown opcode")
	}
	m.PC = next
	m.Steps++
	return nil
}

// Run executes until HALT or maxSteps instructions, returning the dynamic
// instruction count. It is the pure-functional fast path used by tests and
// by benchmark calibration (no timing).
func (m *Machine) Run(maxSteps uint64) (uint64, error) {
	start := m.Steps
	for !m.halted {
		if m.Steps-start >= maxSteps {
			return m.Steps - start, fmt.Errorf("isa: %q exceeded %d steps", m.Prog.Name, maxSteps)
		}
		if _, err := m.Step(); err != nil {
			return m.Steps - start, err
		}
	}
	return m.Steps - start, nil
}
