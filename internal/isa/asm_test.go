package isa

import (
	"strings"
	"testing"
)

const sumSrc = `
; sum 1..N kept in r2
    movi r1, 1        ; i
    movi r2, 0        ; acc
    movi r3, 11       ; bound
loop:
    add  r2, r2, r1
    addi r1, r1, 1
    blt  r1, r3, loop
    halt
`

func TestAssembleSum(t *testing.T) {
	p, err := Assemble("sum", sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 55 {
		t.Fatalf("sum = %d", m.Regs[2])
	}
}

func TestAssembleMemoryAndData(t *testing.T) {
	src := `
.word 10, 20, 30
.space 8
.size 4096
    movi r1, 0x40000000
    ld   r2, 0(r1)
    ld   r3, 8(r1)
    add  r4, r2, r3
    st   r4, 24(r1)      ; into the .space area
    halt
`
	p, err := Assemble("mem", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.SegmentSize() != 4096 {
		t.Fatalf("segment size = %d", p.SegmentSize())
	}
	m, _ := NewMachine(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadWord(24)
	if err != nil || v != 30 {
		t.Fatalf("stored word = %d, %v", v, err)
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	src := `
start:
    nop
    movi r1, 5
    movi r2, 3
    add  r3, r1, r2
    addi r3, r3, 1
    sub  r4, r1, r2
    mul  r5, r1, r2
    div  r6, r1, r2
    rem  r7, r1, r2
    and  r8, r1, r2
    or   r9, r1, r2
    xor  r10, r1, r2
    shl  r11, r1, r2
    shr  r12, r11, r2
    beq  r1, r1, next
    jmp  start
next:
    bne  r1, r2, n2
    halt
n2:
    blt  r2, r1, n3
    halt
n3:
    bge  r1, r2, done
    halt
done:
    halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMachine(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	checks := map[int]int64{3: 9, 4: 2, 5: 15, 6: 1, 7: 2, 8: 1, 9: 7, 10: 6, 11: 40, 12: 5}
	for r, v := range checks {
		if m.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.Regs[r], v)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"movi r99, 1",
		"add r1, r2",
		"ld r1, r2",
		"ld r1, 8(z2)",
		"beq r1, r2, 42",
		"jmp",
		".space -1",
		".word xyz",
		"movi r1, notanumber",
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src+"\nhalt\n"); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// Undefined label.
	if _, err := Assemble("bad", "jmp nowhere\nhalt\n"); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestCommentStyles(t *testing.T) {
	src := "movi r1, 1 ; semi\nmovi r2, 2 # hash\nmovi r3, 3 // slashes\nhalt\n"
	p, err := Assemble("comments", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("code length = %d", len(p.Code))
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := MustAssemble("sum", sumSrc)
	text := Disassemble(p)
	if !strings.Contains(text, "blt") || !strings.Contains(text, "L3") {
		t.Fatalf("disassembly missing pieces:\n%s", text)
	}
	p2, err := Assemble("sum2", text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	// Same dynamic behaviour.
	m1, _ := NewMachine(p)
	m2, _ := NewMachine(p2)
	m1.Run(1000)
	m2.Run(1000)
	if m1.Regs[2] != m2.Regs[2] {
		t.Fatalf("round trip changed semantics: %d vs %d", m1.Regs[2], m2.Regs[2])
	}
}

func TestLabelOnSameLine(t *testing.T) {
	src := "start: movi r1, 7\n jmp end\nend: halt\n"
	p, err := Assemble("inline", src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMachine(p)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 7 {
		t.Fatal("inline label broke execution")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble("bad", "frobnicate r1\n")
}
