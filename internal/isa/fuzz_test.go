package isa

import (
	"bytes"
	"testing"
)

// fuzzSeedSources are small but representative programs for the decoder
// fuzz corpus: direct immediates, pooled (wide and negative) literals,
// branches, loads/stores and halt. The same sources seed the checked-in
// corpus under testdata/fuzz.
var fuzzSeedSources = []string{
	"halt",
	`
        movi r1, 100
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    `,
	`
        movi r1, 0x40000000   ; pooled literal
        movi r2, -7           ; negative: pooled
        ld   r3, 8(r1)
        st   r3, 16(r1)
        halt
    `,
}

// FuzzDecodeRoundTrip throws arbitrary images at the binary decoder and
// pins two properties: Decode never panics on hostile input, and every
// image it accepts round-trips — the decoded program re-encodes cleanly,
// decodes back to identical code, and re-encoding is a fixed point.
func FuzzDecodeRoundTrip(f *testing.F) {
	for _, src := range fuzzSeedSources {
		img, err := Encode(MustAssemble("seed", src))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
	}
	// Hostile shapes: truncated header, zero instructions, ragged pool.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0x3f, 0xff, 0xff, 0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, img []byte) {
		p, err := Decode("fuzz", img)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if len(p.Code) >= poolFlag {
			return // beyond the encodable maximum by construction
		}
		re, err := Encode(p)
		if err != nil {
			t.Fatalf("Decode accepted an image Encode rejects: %v", err)
		}
		q, err := Decode("fuzz", re)
		if err != nil {
			t.Fatalf("re-encoded image rejected: %v", err)
		}
		if len(q.Code) != len(p.Code) {
			t.Fatalf("round trip: %d instructions became %d", len(p.Code), len(q.Code))
		}
		for i := range p.Code {
			if p.Code[i] != q.Code[i] {
				t.Fatalf("instruction %d: %+v != %+v", i, p.Code[i], q.Code[i])
			}
		}
		re2, err := Encode(q)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("re-encoding is not a fixed point (err=%v)", err)
		}
	})
}
