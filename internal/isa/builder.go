package isa

import "fmt"

// Builder assembles a Program in Go code with symbolic labels, the API the
// benchmark kernels (package bench) are written against.
//
//	b := isa.NewBuilder("fir")
//	b.Movi(1, 0)            // i = 0
//	b.Label("loop")
//	...
//	b.Blt(1, 2, "loop")
//	b.Halt()
//	prog, err := b.Program()
type Builder struct {
	name     string
	code     []Instr
	labels   map[string]int
	fixups   map[int]string // instruction index -> unresolved label
	data     []byte
	dataSize int
	err      error
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: map[string]int{}, fixups: map[int]string{}}
}

// setErr records the first error.
func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Label defines a label at the current instruction position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

// emit appends an instruction.
func (b *Builder) emit(i Instr) { b.code = append(b.code, i) }

// emitBranch appends a branch with a label fixup.
func (b *Builder) emitBranch(i Instr, label string) {
	b.fixups[len(b.code)] = label
	b.emit(i)
}

// Nop appends a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: NOP}) }

// Halt appends a halt.
func (b *Builder) Halt() { b.emit(Instr{Op: HALT}) }

// Movi appends rd = imm.
func (b *Builder) Movi(rd int, imm int64) {
	b.emit(Instr{Op: MOVI, Rd: uint8(rd), Imm: imm})
}

// Add appends rd = rs + rt.
func (b *Builder) Add(rd, rs, rt int) { b.alu(ADD, rd, rs, rt) }

// Addi appends rd = rs + imm.
func (b *Builder) Addi(rd, rs int, imm int64) {
	b.emit(Instr{Op: ADDI, Rd: uint8(rd), Rs: uint8(rs), Imm: imm})
}

// Sub appends rd = rs - rt.
func (b *Builder) Sub(rd, rs, rt int) { b.alu(SUB, rd, rs, rt) }

// Mul appends rd = rs * rt.
func (b *Builder) Mul(rd, rs, rt int) { b.alu(MUL, rd, rs, rt) }

// Div appends rd = rs / rt.
func (b *Builder) Div(rd, rs, rt int) { b.alu(DIV, rd, rs, rt) }

// Rem appends rd = rs % rt.
func (b *Builder) Rem(rd, rs, rt int) { b.alu(REM, rd, rs, rt) }

// And appends rd = rs & rt.
func (b *Builder) And(rd, rs, rt int) { b.alu(AND, rd, rs, rt) }

// Or appends rd = rs | rt.
func (b *Builder) Or(rd, rs, rt int) { b.alu(OR, rd, rs, rt) }

// Xor appends rd = rs ^ rt.
func (b *Builder) Xor(rd, rs, rt int) { b.alu(XOR, rd, rs, rt) }

// Shl appends rd = rs << rt.
func (b *Builder) Shl(rd, rs, rt int) { b.alu(SHL, rd, rs, rt) }

// Shr appends rd = rs >> rt.
func (b *Builder) Shr(rd, rs, rt int) { b.alu(SHR, rd, rs, rt) }

func (b *Builder) alu(op Op, rd, rs, rt int) {
	b.emit(Instr{Op: op, Rd: uint8(rd), Rs: uint8(rs), Rt: uint8(rt)})
}

// Ld appends rd = mem64[rs + off].
func (b *Builder) Ld(rd, rs int, off int64) {
	b.emit(Instr{Op: LD, Rd: uint8(rd), Rs: uint8(rs), Imm: off})
}

// St appends mem64[rs + off] = rt.
func (b *Builder) St(rt, rs int, off int64) {
	b.emit(Instr{Op: ST, Rt: uint8(rt), Rs: uint8(rs), Imm: off})
}

// Beq appends: if rs == rt goto label.
func (b *Builder) Beq(rs, rt int, label string) { b.branch(BEQ, rs, rt, label) }

// Bne appends: if rs != rt goto label.
func (b *Builder) Bne(rs, rt int, label string) { b.branch(BNE, rs, rt, label) }

// Blt appends: if rs < rt goto label.
func (b *Builder) Blt(rs, rt int, label string) { b.branch(BLT, rs, rt, label) }

// Bge appends: if rs >= rt goto label.
func (b *Builder) Bge(rs, rt int, label string) { b.branch(BGE, rs, rt, label) }

func (b *Builder) branch(op Op, rs, rt int, label string) {
	b.emitBranch(Instr{Op: op, Rs: uint8(rs), Rt: uint8(rt)}, label)
}

// Jmp appends an unconditional jump to label.
func (b *Builder) Jmp(label string) { b.emitBranch(Instr{Op: JMP}, label) }

// Data appends bytes to the data segment and returns their byte offset
// from DataBase.
func (b *Builder) Data(bytes []byte) uint64 {
	off := uint64(len(b.data))
	b.data = append(b.data, bytes...)
	return off
}

// DataWords appends 8-byte words to the data segment and returns the byte
// offset of the first word.
func (b *Builder) DataWords(words ...int64) uint64 {
	off := uint64(len(b.data))
	for _, w := range words {
		v := uint64(w)
		for i := 0; i < WordBytes; i++ {
			b.data = append(b.data, byte(v>>(8*uint(i))))
		}
	}
	return off
}

// ReserveData grows the data segment by n zero bytes and returns the byte
// offset of the reservation.
func (b *Builder) ReserveData(n int) uint64 {
	off := uint64(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return off
}

// SetDataSize forces the data segment to be at least n bytes.
func (b *Builder) SetDataSize(n int) { b.dataSize = n }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Program resolves labels and returns the validated program.
func (b *Builder) Program() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	code := append([]Instr(nil), b.code...)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: %q: undefined label %q", b.name, label)
		}
		code[idx].Target = target
	}
	p := &Program{Name: b.name, Code: code, Data: append([]byte(nil), b.data...), DataSize: b.dataSize}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program that panics on error; for static kernels whose
// correctness is established by the package tests.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
