package isa

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	if ADD.String() != "add" || HALT.String() != "halt" {
		t.Fatal("opcode names broken")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Fatal("unknown opcode String broken")
	}
}

func TestOpClasses(t *testing.T) {
	if !LD.IsMem() || !ST.IsMem() || ADD.IsMem() {
		t.Fatal("IsMem broken")
	}
	for _, o := range []Op{BEQ, BNE, BLT, BGE, JMP} {
		if !o.IsBranch() {
			t.Fatalf("%v not branch", o)
		}
	}
	if ADD.IsBranch() || LD.IsBranch() {
		t.Fatal("IsBranch false positives")
	}
	if ADD.Latency() != 1 || MUL.Latency() != 3 || DIV.Latency() != 12 {
		t.Fatal("latencies broken")
	}
}

func TestBuilderArithmetic(t *testing.T) {
	b := NewBuilder("arith")
	b.Movi(1, 6)
	b.Movi(2, 7)
	b.Mul(3, 1, 2)  // r3 = 42
	b.Addi(3, 3, 8) // r3 = 50
	b.Movi(4, 5)
	b.Div(5, 3, 4) // r5 = 10
	b.Rem(6, 3, 4) // r6 = 0
	b.Sub(7, 3, 4) // r7 = 45
	b.Xor(8, 3, 3) // r8 = 0
	b.Movi(9, 2)
	b.Shl(10, 4, 9) // r10 = 20
	b.Shr(11, 3, 9) // r11 = 12
	b.And(12, 3, 4) // 50 & 5 = 0
	b.Or(13, 3, 4)  // 50 | 5 = 55
	b.Halt()
	m, err := NewMachine(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	want := map[int]int64{3: 50, 5: 10, 6: 0, 7: 45, 8: 0, 10: 20, 11: 12, 12: 0, 13: 55}
	for r, v := range want {
		if m.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.Regs[r], v)
		}
	}
}

func TestBuilderLoopSum(t *testing.T) {
	// Sum 1..100 with a loop.
	b := NewBuilder("sum")
	b.Movi(1, 1)   // i
	b.Movi(2, 0)   // acc
	b.Movi(3, 101) // bound
	b.Label("loop")
	b.Add(2, 2, 1)
	b.Addi(1, 1, 1)
	b.Blt(1, 3, "loop")
	b.Halt()
	m, _ := NewMachine(b.MustProgram())
	steps, err := m.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 5050 {
		t.Fatalf("sum = %d", m.Regs[2])
	}
	if steps != 4+3*100 {
		t.Fatalf("steps = %d", steps)
	}
}

func TestLoadStore(t *testing.T) {
	b := NewBuilder("mem")
	off := b.DataWords(11, 22, 33)
	b.Movi(1, int64(DataBase)+int64(off))
	b.Ld(2, 1, 0)  // 11
	b.Ld(3, 1, 8)  // 22
	b.Ld(4, 1, 16) // 33
	b.Add(5, 2, 3)
	b.Add(5, 5, 4) // 66
	b.St(5, 1, 16)
	b.Halt()
	m, _ := NewMachine(b.MustProgram())
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[5] != 66 {
		t.Fatalf("r5 = %d", m.Regs[5])
	}
	v, err := m.ReadWord(off + 16)
	if err != nil || v != 66 {
		t.Fatalf("mem word = %d, %v", v, err)
	}
}

func TestFaults(t *testing.T) {
	// Division by zero.
	b := NewBuilder("divzero")
	b.Movi(1, 1)
	b.Div(2, 1, 0)
	b.Halt()
	m, _ := NewMachine(b.MustProgram())
	if _, err := m.Run(10); err == nil {
		t.Fatal("div by zero not faulted")
	}
	if !m.Halted() {
		t.Fatal("fault did not halt machine")
	}

	// Out-of-segment load.
	b2 := NewBuilder("badload")
	b2.Movi(1, int64(DataBase))
	b2.Ld(2, 1, 1<<20)
	b2.Halt()
	m2, _ := NewMachine(b2.MustProgram())
	if _, err := m2.Run(10); err == nil {
		t.Fatal("out-of-segment load not faulted")
	}

	// Load below DataBase.
	b3 := NewBuilder("lowload")
	b3.Movi(1, 0)
	b3.Ld(2, 1, 0)
	b3.Halt()
	m3, _ := NewMachine(b3.MustProgram())
	if _, err := m3.Run(10); err == nil {
		t.Fatal("load below DataBase not faulted")
	}
}

func TestRunBudget(t *testing.T) {
	b := NewBuilder("spin")
	b.Label("forever")
	b.Jmp("forever")
	m, _ := NewMachine(b.MustProgram())
	if _, err := m.Run(100); err == nil {
		t.Fatal("infinite loop not stopped by budget")
	}
}

func TestReset(t *testing.T) {
	b := NewBuilder("reset")
	off := b.DataWords(5)
	b.Movi(1, int64(DataBase)+int64(off))
	b.Movi(2, 99)
	b.St(2, 1, 0)
	b.Halt()
	m, _ := NewMachine(b.MustProgram())
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadWord(off); v != 99 {
		t.Fatal("store lost")
	}
	m.Reset()
	if v, _ := m.ReadWord(off); v != 5 {
		t.Fatalf("Reset did not restore data segment: %d", v)
	}
	if m.Halted() || m.PC != 0 || m.Steps != 0 || m.Regs[2] != 0 {
		t.Fatal("Reset incomplete")
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadWord(off); v != 99 {
		t.Fatal("second run broken")
	}
}

func TestStepInfo(t *testing.T) {
	b := NewBuilder("info")
	off := b.DataWords(7)
	b.Movi(1, int64(DataBase)+int64(off))
	b.Ld(2, 1, 0)
	b.St(2, 1, 0)
	b.Movi(3, 0)
	b.Beq(3, 3, "end") // taken
	b.Nop()
	b.Label("end")
	b.Halt()
	m, _ := NewMachine(b.MustProgram())
	infos := []StepInfo{}
	for !m.Halted() {
		si, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, si)
	}
	if infos[0].FetchAddr != CodeBase {
		t.Fatal("fetch addr of first instruction wrong")
	}
	if infos[1].Op != LD || infos[1].MemWrite || infos[1].MemAddr != DataBase+off {
		t.Fatalf("LD info = %+v", infos[1])
	}
	if infos[2].Op != ST || !infos[2].MemWrite {
		t.Fatalf("ST info = %+v", infos[2])
	}
	if !infos[4].Taken {
		t.Fatal("taken branch not flagged")
	}
	if !infos[len(infos)-1].Halted {
		t.Fatal("halt not flagged")
	}
	// Step after halt is a no-op.
	si, err := m.Step()
	if err != nil || !si.Halted {
		t.Fatal("step-after-halt broken")
	}
}

func TestValidate(t *testing.T) {
	p := &Program{Name: "bad", Code: []Instr{{Op: BEQ, Target: 99}}}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range branch target accepted")
	}
	p2 := &Program{Name: "badreg", Code: []Instr{{Op: ADD, Rd: 40}}}
	if err := p2.Validate(); err == nil {
		t.Fatal("bad register accepted")
	}
	p3 := &Program{Name: "empty"}
	if err := p3.Validate(); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Program(); err == nil {
		t.Fatal("duplicate label accepted")
	}
	b2 := NewBuilder("undef")
	b2.Jmp("nowhere")
	if _, err := b2.Program(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestInstrAddrAndString(t *testing.T) {
	if InstrAddr(0) != CodeBase || InstrAddr(4) != CodeBase+16 {
		t.Fatal("InstrAddr broken")
	}
	i := Instr{Op: LD, Rd: 2, Rs: 1, Imm: 8}
	if got := i.String(); got != "ld r2, 8(r1)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSegmentSize(t *testing.T) {
	p := &Program{Name: "s", Code: []Instr{{Op: HALT}}, Data: make([]byte, 10), DataSize: 100}
	if p.SegmentSize() != 100 {
		t.Fatal("SegmentSize broken")
	}
	p.DataSize = 0
	if p.SegmentSize() != 10 {
		t.Fatal("SegmentSize default broken")
	}
}

func BenchmarkMachineStep(b *testing.B) {
	bd := NewBuilder("spin")
	bd.Movi(1, 0)
	bd.Movi(2, 1<<40)
	bd.Label("loop")
	bd.Addi(1, 1, 1)
	bd.Blt(1, 2, "loop")
	bd.Halt()
	m, _ := NewMachine(bd.MustProgram())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
