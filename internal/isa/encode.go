package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding. Each instruction occupies exactly InstrBytes (4) bytes,
// which is what gives instruction addresses their layout (InstrAddr) and
// the instruction caches their 4-instructions-per-16B-line geometry.
//
// Word layout (little-endian uint32):
//
//	bits  0..5   opcode
//	bits  6..9   rd
//	bits 10..13  rs
//	bits 14..17  rt
//	bits 18..31  imm/target field (14 bits)
//
// Immediates wider than the field are placed in a trailing literal pool of
// 8-byte words (the constant-pool idiom of real fixed-width ISAs); the
// field then stores the pool index with the poolFlag bit set. Branch
// targets are instruction indices and must fit 13 bits directly, which
// bounds encodable programs at 8192 instructions — comfortably above every
// kernel in this repository.

const (
	immBits  = 14
	poolFlag = 1 << (immBits - 1) // top bit of the field selects the pool
	immMax   = poolFlag - 1       // largest directly encoded value
)

// EncodedSize returns the byte size Encode will produce for p.
func EncodedSize(p *Program) int {
	pool := map[int64]bool{}
	for _, ins := range p.Code {
		if needsPool(ins) {
			pool[ins.Imm] = true
		}
	}
	return 4 + len(p.Code)*InstrBytes + len(pool)*8
}

func needsPool(ins Instr) bool {
	return !ins.Op.IsBranch() && (ins.Imm < 0 || ins.Imm > immMax)
}

// Encode serialises the program's code to its binary form: a 4-byte header
// (instruction count), the instruction words, then the literal pool.
// The data segment is not part of the image (it is a memory initialiser,
// not code); use the Program struct or the assembler for full round trips.
func Encode(p *Program) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Code) >= poolFlag {
		return nil, fmt.Errorf("isa: %d instructions exceed the encodable maximum %d", len(p.Code), poolFlag-1)
	}
	poolIndex := map[int64]int{}
	var pool []int64
	out := make([]byte, 4, 4+len(p.Code)*InstrBytes)
	binary.LittleEndian.PutUint32(out, uint32(len(p.Code)))
	for idx, ins := range p.Code {
		var field uint32
		switch {
		case ins.Op.IsBranch():
			if ins.Target >= poolFlag {
				return nil, fmt.Errorf("isa: instruction %d: branch target %d unencodable", idx, ins.Target)
			}
			field = uint32(ins.Target)
		case needsPool(ins):
			pi, ok := poolIndex[ins.Imm]
			if !ok {
				pi = len(pool)
				poolIndex[ins.Imm] = pi
				pool = append(pool, ins.Imm)
				if pi >= poolFlag {
					return nil, fmt.Errorf("isa: literal pool overflow at instruction %d", idx)
				}
			}
			field = poolFlag | uint32(pi)
		default:
			field = uint32(ins.Imm)
		}
		word := uint32(ins.Op)&0x3f |
			uint32(ins.Rd)<<6 |
			uint32(ins.Rs)<<10 |
			uint32(ins.Rt)<<14 |
			field<<18
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], word)
		out = append(out, buf[:]...)
	}
	for _, lit := range pool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(lit))
		out = append(out, buf[:]...)
	}
	return out, nil
}

// Decode parses an Encode image back into code. The caller supplies the
// program name and data segment (they are not part of the image).
func Decode(name string, image []byte) (*Program, error) {
	if len(image) < 4 {
		return nil, fmt.Errorf("isa: image truncated")
	}
	n := int(binary.LittleEndian.Uint32(image))
	body := image[4:]
	if len(body) < n*InstrBytes {
		return nil, fmt.Errorf("isa: image holds %d bytes for %d instructions", len(body), n)
	}
	poolBytes := body[n*InstrBytes:]
	if len(poolBytes)%8 != 0 {
		return nil, fmt.Errorf("isa: ragged literal pool (%d bytes)", len(poolBytes))
	}
	pool := make([]int64, len(poolBytes)/8)
	for i := range pool {
		pool[i] = int64(binary.LittleEndian.Uint64(poolBytes[i*8:]))
	}
	code := make([]Instr, n)
	for i := 0; i < n; i++ {
		word := binary.LittleEndian.Uint32(body[i*InstrBytes:])
		ins := Instr{
			Op: Op(word & 0x3f),
			Rd: uint8(word >> 6 & 0xf),
			Rs: uint8(word >> 10 & 0xf),
			Rt: uint8(word >> 14 & 0xf),
		}
		field := word >> 18
		switch {
		case ins.Op.IsBranch():
			ins.Target = int(field)
		case field&poolFlag != 0:
			pi := int(field &^ uint32(poolFlag))
			if pi >= len(pool) {
				return nil, fmt.Errorf("isa: instruction %d references literal %d of %d", i, pi, len(pool))
			}
			ins.Imm = pool[pi]
		default:
			ins.Imm = int64(field)
		}
		code[i] = ins
	}
	p := &Program{Name: name, Code: code}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
