// Package artifact persists experiment results as schema-versioned,
// machine-readable JSON, and provides the workload-granularity checkpoint
// files behind resumable campaigns.
//
// Determinism contract: Encode is canonical — the same payload value
// always yields the same bytes (encoding/json sorts map keys, Go's float
// formatting is shortest-round-trip) — so campaigns that re-derive their
// per-item results from stable seeds produce byte-identical artifacts at
// any worker count, and a resumed campaign re-produces the bytes of an
// uninterrupted one. Files are written atomically (temp file + rename) so
// an interrupt never leaves a torn artifact or checkpoint behind.
package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// SchemaVersion is bumped whenever the envelope or any payload layout
// changes incompatibly; readers refuse artifacts from other schemas.
const SchemaVersion = 1

// Envelope wraps every artifact payload with its identity.
type Envelope struct {
	Schema  int             `json:"schema"`
	Kind    string          `json:"kind"` // experiment identity: "fig3", "fig4", ...
	Seed    uint64          `json:"seed"` // master seed the campaign ran under
	Payload json.RawMessage `json:"payload"`
	// Audit, when present, is the runtime soundness auditor's report for
	// the campaign that produced the payload (sim.AuditReport). It is
	// additive and omitted when auditing was off, so schema 1 readers and
	// unaudited artifacts are unaffected.
	Audit json.RawMessage `json:"audit,omitempty"`
}

// Encode renders an artifact canonically: 2-space indentation, sorted map
// keys, trailing newline.
func Encode(kind string, seed uint64, payload any) ([]byte, error) {
	return EncodeWithAudit(kind, seed, payload, nil)
}

// EncodeWithAudit is Encode with an optional audit block attached to the
// envelope; audit == nil yields exactly Encode's bytes.
func EncodeWithAudit(kind string, seed uint64, payload, audit any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("artifact: encode %s payload: %w", kind, err)
	}
	env := Envelope{
		Schema:  SchemaVersion,
		Kind:    kind,
		Seed:    seed,
		Payload: raw,
	}
	if audit != nil {
		if env.Audit, err = json.Marshal(audit); err != nil {
			return nil, fmt.Errorf("artifact: encode %s audit: %w", kind, err)
		}
	}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("artifact: encode %s: %w", kind, err)
	}
	return append(data, '\n'), nil
}

// Decode validates the envelope (schema and kind) and unmarshals the
// payload into out. It returns the campaign's master seed.
func Decode(data []byte, kind string, out any) (uint64, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return 0, fmt.Errorf("artifact: decode: %w", err)
	}
	if env.Schema != SchemaVersion {
		return 0, fmt.Errorf("artifact: schema %d, this build reads %d", env.Schema, SchemaVersion)
	}
	if env.Kind != kind {
		return 0, fmt.Errorf("artifact: kind %q, want %q", env.Kind, kind)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return 0, fmt.Errorf("artifact: decode %s payload: %w", kind, err)
	}
	return env.Seed, nil
}

// Write encodes and atomically writes an artifact to path.
func Write(path, kind string, seed uint64, payload any) error {
	data, err := Encode(kind, seed, payload)
	if err != nil {
		return err
	}
	return WriteFile(path, data)
}

// Read loads and decodes an artifact from path, returning the seed.
func Read(path, kind string, out any) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return Decode(data, kind, out)
}

// WriteFile atomically replaces path with data via a same-directory temp
// file and rename, so readers (and interrupted writers) never observe a
// torn file. The temp file is fsynced before the rename and the directory
// after it: rename-over-unsynced-data is the classic crash hole where a
// power loss leaves the *new* name pointing at zero-length or partial
// content, which for a checkpoint would silently resume a corrupt
// campaign. Durability is worth the syscalls — checkpoints are written
// once per completed workload, nowhere near a hot path.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems (and all of Windows) refuse directory
// syncs, and losing the rename's durability there degrades to the old
// behaviour, not to corruption — the file content itself is already
// synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// checkpointFile is the on-disk layout of a campaign checkpoint.
type checkpointFile struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Key fingerprints the campaign parameters; a checkpoint only resumes
	// a campaign with the identical key.
	Key   string                     `json:"key"`
	Total int                        `json:"total"`
	Items map[string]json.RawMessage `json:"items"` // item index -> payload
}

// Checkpoint accumulates per-item results of an interruptible campaign.
// Put persists after every item, so however the process dies, completed
// items survive; a resumed campaign skips them via Get and — because the
// remaining items re-derive their results from stable seeds — finishes
// with an artifact byte-identical to an uninterrupted run. Methods are
// safe for concurrent use by campaign workers.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	file checkpointFile
}

// LoadCheckpoint opens (or creates) the checkpoint at path for a campaign
// identified by kind/key with total items. A missing file yields a fresh
// checkpoint; an existing one must match kind, key, total and schema
// exactly, otherwise an error describes the mismatch (resuming a
// different campaign would corrupt results).
func LoadCheckpoint(path, kind, key string, total int) (*Checkpoint, error) {
	c := &Checkpoint{path: path, file: checkpointFile{
		Schema: SchemaVersion, Kind: kind, Key: key, Total: total,
		Items: map[string]json.RawMessage{},
	}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		// A checkpoint that does not parse is corrupt (torn write, bad
		// disk): refuse to resume rather than silently restart and overwrite
		// whatever evidence the file holds.
		return nil, fmt.Errorf("artifact: checkpoint %s is corrupt or truncated (delete it to start fresh): %w", path, err)
	}
	if f.Schema != SchemaVersion || f.Kind != kind || f.Key != key || f.Total != total {
		return nil, fmt.Errorf("artifact: checkpoint %s was written by a different campaign (kind %q key %q total %d; want kind %q key %q total %d)",
			path, f.Kind, f.Key, f.Total, kind, key, total)
	}
	if f.Items == nil {
		f.Items = map[string]json.RawMessage{}
	}
	c.file = f
	return c, nil
}

// Done returns how many items the checkpoint holds.
func (c *Checkpoint) Done() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.file.Items)
}

// Get unmarshals item idx into out, reporting whether it was present.
func (c *Checkpoint) Get(idx int, out any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.file.Items[strconv.Itoa(idx)]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("artifact: checkpoint item %d: %w", idx, err)
	}
	return true, nil
}

// Put records item idx and persists the checkpoint atomically.
func (c *Checkpoint) Put(idx int, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("artifact: checkpoint item %d: %w", idx, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.file.Items[strconv.Itoa(idx)] = raw
	data, err := json.MarshalIndent(c.file, "", "  ")
	if err != nil {
		return err
	}
	return WriteFile(c.path, append(data, '\n'))
}

// Remove deletes the checkpoint file (the campaign completed).
func (c *Checkpoint) Remove() error {
	err := os.Remove(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
