package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name   string             `json:"name"`
	Values []float64          `json:"values"`
	ByMID  map[int]float64    `json:"by_mid"`
	Nested map[string][]int   `json:"nested"`
	Extra  map[string]float64 `json:"extra,omitempty"`
}

func samplePayload() payload {
	return payload{
		Name:   "fig3",
		Values: []float64{1.5, 2.25, 0.0009765625, 3.141592653589793},
		ByMID:  map[int]float64{500: 1.25, 100: 2.5, 1000: 0.125},
		Nested: map[string][]int{"b": {2}, "a": {1, 3}},
	}
}

// TestEncodeCanonical pins the byte-determinism leg of the artifact
// contract: equal payload values encode to equal bytes even when maps were
// populated in different orders.
func TestEncodeCanonical(t *testing.T) {
	a, err := Encode("fig3", 42, samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	other := samplePayload()
	other.ByMID = map[int]float64{1000: 0.125, 100: 2.5, 500: 1.25}
	b, err := Encode("fig3", 42, other)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encodings differ:\n%s\n---\n%s", a, b)
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Error("no trailing newline")
	}
}

// TestRoundTrip verifies Decode(Encode(p)) == p including exact float64
// recovery, and that re-encoding decoded data is byte-identical — the
// property resume relies on when checkpointed items are decoded back.
func TestRoundTrip(t *testing.T) {
	p := samplePayload()
	data, err := Encode("fig4", 7, p)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	seed, err := Decode(data, "fig4", &got)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 7 {
		t.Errorf("seed = %d", seed)
	}
	data2, err := Encode("fig4", seed, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-encode after decode not byte-identical:\n%s\n---\n%s", data, data2)
	}
}

func TestDecodeRejects(t *testing.T) {
	data, err := Encode("fig3", 1, samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if _, err := Decode(data, "fig4", &out); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("wrong kind accepted: %v", err)
	}
	bad := bytes.Replace(data, []byte(`"schema": 1`), []byte(`"schema": 99`), 1)
	if _, err := Decode(bad, "fig3", &out); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted: %v", err)
	}
	if _, err := Decode([]byte("not json"), "fig3", &out); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWriteRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "fig3.json")
	if err := Write(path, "fig3", 3, samplePayload()); err != nil {
		t.Fatal(err)
	}
	var got payload
	seed, err := Read(path, "fig3", &got)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 3 || got.Name != "fig3" {
		t.Errorf("seed=%d payload=%+v", seed, got)
	}
	// Atomic write leaves no temp droppings.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory not clean: %v", entries)
	}
}

type item struct {
	Idx  int     `json:"idx"`
	GIPC float64 `json:"gipc"`
}

func TestCheckpointLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	c, err := LoadCheckpoint(path, "fig4", "seed=1;workloads=8", 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Done() != 0 {
		t.Errorf("fresh checkpoint holds %d items", c.Done())
	}
	for _, i := range []int{0, 3, 5} {
		if err := c.Put(i, item{Idx: i, GIPC: float64(i) * 1.5}); err != nil {
			t.Fatal(err)
		}
	}

	// Reload simulates the resumed process.
	r, err := LoadCheckpoint(path, "fig4", "seed=1;workloads=8", 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Done() != 3 {
		t.Errorf("reloaded checkpoint holds %d items, want 3", r.Done())
	}
	var it item
	ok, err := r.Get(3, &it)
	if err != nil || !ok || it.GIPC != 4.5 {
		t.Errorf("Get(3) = %v %v %+v", ok, err, it)
	}
	ok, err = r.Get(4, &it)
	if err != nil || ok {
		t.Errorf("Get(4) = %v %v, want absent", ok, err)
	}

	if err := r.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("checkpoint file survived Remove")
	}
	if err := r.Remove(); err != nil {
		t.Errorf("second Remove: %v", err)
	}
}

// TestCheckpointRejectsTorn pins the crash-durability contract: a torn or
// garbage checkpoint (the on-disk state a power loss without the fsync
// discipline could leave) is reported as corrupt instead of silently
// resumed, and the error tells the operator what to do.
func TestCheckpointRejectsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	c, err := LoadCheckpoint(path, "fig4", "seed=1", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(i, item{Idx: i, GIPC: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name string
		data []byte
	}{
		{"truncated", data[:len(data)/2]},
		{"empty", nil},
		{"garbage", []byte("\x00\xffnot json at all")},
	}
	for _, tc := range corruptions {
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(path, "fig4", "seed=1", 8)
		if err == nil {
			t.Fatalf("%s checkpoint was silently accepted", tc.name)
		}
		if !strings.Contains(err.Error(), "corrupt") {
			t.Errorf("%s checkpoint error %q does not say the file is corrupt", tc.name, err)
		}
	}

	// Restoring the intact bytes restores resumability: the corruption
	// detection is about the content, not a side effect of the failed loads.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCheckpoint(path, "fig4", "seed=1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Done() != 4 {
		t.Errorf("restored checkpoint holds %d items, want 4", r.Done())
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	c, err := LoadCheckpoint(path, "fig4", "seed=1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(0, item{}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind, key string
		total     int
	}{
		{"fig3", "seed=1", 8},
		{"fig4", "seed=2", 8},
		{"fig4", "seed=1", 9},
	}
	for _, tc := range cases {
		if _, err := LoadCheckpoint(path, tc.kind, tc.key, tc.total); err == nil {
			t.Errorf("mismatched campaign %+v accepted", tc)
		}
	}
}
