package artifact

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the artifact decoder and pins two
// properties: Decode never panics on hostile input (artifacts and
// checkpoints are read back from disk, where torn writes and bit rot are
// real), and every envelope it accepts round-trips — re-encoding the
// decoded payload under the same kind/seed reproduces canonical bytes that
// decode to the same payload again. The checked-in corpus under
// testdata/fuzz seeds valid envelopes of several payload shapes plus the
// classic hostile ones (truncation, wrong types, duplicate keys).
func FuzzDecode(f *testing.F) {
	type payload struct {
		Name string    `json:"name"`
		Vals []float64 `json:"vals"`
	}
	if data, err := Encode("fuzz", 1, payload{Name: "a", Vals: []float64{1, 2.5}}); err == nil {
		f.Add(data)
	}
	if data, err := EncodeWithAudit("fuzz", 42, map[string]int{"x": 1}, map[string]string{"note": "audit"}); err == nil {
		f.Add(data)
	}
	// Hostile shapes: empty, truncated envelope, wrong schema, non-object,
	// payload of the wrong type, duplicate keys.
	f.Add([]byte{})
	f.Add([]byte(`{"schema":1,"kind":"fuzz","seed":`))
	f.Add([]byte(`{"schema":99,"kind":"fuzz","seed":1,"payload":{}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"schema":1,"kind":"fuzz","seed":1,"payload":"not an object"}`))
	f.Add([]byte(`{"schema":1,"schema":1,"kind":"fuzz","seed":1,"payload":{}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var out json.RawMessage
		seed, err := Decode(data, "fuzz", &out)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		re, err := Encode("fuzz", seed, out)
		if err != nil {
			t.Fatalf("Decode accepted an envelope Encode rejects: %v", err)
		}
		var out2 json.RawMessage
		seed2, err := Decode(re, "fuzz", &out2)
		if err != nil {
			t.Fatalf("re-encoded envelope rejected: %v", err)
		}
		if seed2 != seed {
			t.Fatalf("round trip: seed %d became %d", seed, seed2)
		}
		// Compare payloads under canonical JSON (Decode preserves the raw
		// bytes, whose whitespace Encode is free to normalise).
		var a, b any
		if json.Unmarshal(out, &a) != nil || json.Unmarshal(out2, &b) != nil {
			t.Fatalf("accepted payload is not valid JSON")
		}
		ca, _ := json.Marshal(a)
		cb, _ := json.Marshal(b)
		if !bytes.Equal(ca, cb) {
			t.Fatalf("round trip changed payload:\n%s\n%s", ca, cb)
		}
	})
}
