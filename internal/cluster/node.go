package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"efl/internal/fault"
	"efl/internal/resil"
	"efl/internal/service"
)

// Routing headers. X-Cluster-Hop marks a request a peer already routed
// (the receiver is terminal: it serves locally and never re-forwards, so
// no request crosses the fleet more than once). X-Cluster-Node names the
// node whose service produced the body; X-Cluster-Route records the
// routing disposition the client-facing node took.
const (
	HopHeader   = "X-Cluster-Hop"
	NodeHeader  = "X-Cluster-Node"
	RouteHeader = "X-Cluster-Route"
)

// Route dispositions (RouteHeader values).
const (
	// RouteLocal: this node served from its own cache/flight/compute —
	// either as the key's home node or as a terminal hop target.
	RouteLocal = "local"
	// RouteStore: served from the shared result store (a campaign some
	// other node finished earlier).
	RouteStore = "store"
	// RouteForward: relayed from the key's home node.
	RouteForward = "forward"
	// RouteSteal: the home node was dead or saturated; a later candidate
	// in the key's deterministic failover sequence answered (possibly this
	// node itself).
	RouteSteal = "steal"
)

// Options configures a Node.
type Options struct {
	// ID is this node's identity in Peers and on the ring.
	ID string
	// Peers maps every fleet member (including this node) to its base URL
	// ("http://host:port"). The key set defines the hash ring.
	Peers map[string]string
	// Service is the node's local estimation server.
	Service *service.Server
	// Store is the shared result store; nil runs without one (forwarding
	// and stealing still work, cross-node cache hits need the peer's LRU).
	Store Store
	// VirtualNodes is the ring's per-member point count (<= 0 selects
	// DefaultVirtualNodes).
	VirtualNodes int
	// Client is used for forwarding; nil selects a client with a short
	// dial timeout (dead peers fail fast) and a response-header backstop
	// but no overall timeout (forwarded campaigns legitimately run for
	// minutes — the precise per-hop budget is a per-request context
	// deadline derived from the plan's own deadline, see forward).
	Client *http.Client
	// HopGrace pads each forwarded request's budget past the plan
	// deadline (<= 0 selects resil.DefaultHopGrace). The per-hop budget
	// is plan timeout + grace: the peer needs the full deadline for the
	// campaign itself plus margin for queueing and transport, and a peer
	// that accepts the connection but never answers is abandoned — and
	// the work stolen — when the budget expires.
	HopGrace time.Duration
	// BreakerThreshold and BreakerProbeEvery tune the per-peer circuit
	// breakers (<= 0 selects the resil defaults).
	BreakerThreshold  int
	BreakerProbeEvery int
}

// Node is one router+server member of the estimation fleet. It wraps a
// service.Server: compute paths route by cache key, everything else
// (metrics, healthz) passes through.
type Node struct {
	id       string
	peers    map[string]string
	ring     *Ring
	store    Store
	svc      *service.Server
	client   *http.Client
	hopGrace time.Duration

	// breakers holds one circuit breaker per remote peer, so a dead or
	// flapping node stops costing this node a dial timeout (or worse, a
	// full hop budget) on every routed request. Immutable map after
	// construction; the breakers themselves are concurrency-safe.
	breakers map[string]*resil.Breaker

	// chaosPanic arms one injected job-panic, consumed by the next
	// campaign that actually executes here (cache and store hits never
	// reach it).
	chaosPanic atomic.Bool

	mu               sync.Mutex
	routes           map[string]uint64
	crossNodeHits    uint64
	storeErrors      uint64
	breakerSkips     uint64
	backoffSleeps    uint64
	hopTimeouts      uint64
	oversizedReplies uint64
}

// NewNode builds a fleet node. Peers must contain ID.
func NewNode(opts Options) (*Node, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	if _, ok := opts.Peers[opts.ID]; !ok {
		return nil, fmt.Errorf("cluster: node %q absent from its own peer table", opts.ID)
	}
	if opts.Service == nil {
		return nil, fmt.Errorf("cluster: node %q needs a service", opts.ID)
	}
	members := make([]string, 0, len(opts.Peers))
	for id := range opts.Peers {
		members = append(members, id)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			// Backstop only: the real per-hop budget is the per-request
			// context deadline forward() derives from the plan timeout.
			// This catches requests that somehow carry no deadline, so a
			// hung-but-accepting peer can never stall a hop forever.
			ResponseHeaderTimeout: 6 * time.Minute,
		}}
	}
	hopGrace := opts.HopGrace
	if hopGrace <= 0 {
		hopGrace = resil.DefaultHopGrace
	}
	breakers := make(map[string]*resil.Breaker, len(opts.Peers)-1)
	for id := range opts.Peers {
		if id != opts.ID {
			breakers[id] = resil.NewBreaker(opts.BreakerThreshold, opts.BreakerProbeEvery)
		}
	}
	return &Node{
		id:       opts.ID,
		peers:    opts.Peers,
		ring:     NewRing(members, opts.VirtualNodes),
		store:    opts.Store,
		svc:      opts.Service,
		client:   client,
		hopGrace: hopGrace,
		breakers: breakers,
		routes:   map[string]uint64{},
	}, nil
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.id }

// Service returns the wrapped local estimation server.
func (n *Node) Service() *service.Server { return n.svc }

// Owner returns key's home node on the fleet ring.
func (n *Node) Owner(key string) string { return n.ring.Owner(key) }

// Sequence returns key's deterministic failover order on the fleet ring.
func (n *Node) Sequence(key string) []string { return n.ring.Sequence(key) }

// InjectFault arms a chaos fault on this node. Only the software classes
// make sense here: fault.JobPanic panics the next campaign that executes
// locally (exercising panic isolation through the routing layer);
// fault.NodeDrop is a fleet-level fault — killing a process is the
// harness's job (Fleet.Drop), not the victim's.
func (n *Node) InjectFault(c fault.Class) error {
	switch c {
	case fault.JobPanic:
		n.chaosPanic.Store(true)
		return nil
	default:
		return fmt.Errorf("cluster: fault %q is not injectable on a node (node-drop is a fleet-level fault)", c)
	}
}

// Handler returns the node's HTTP routing: compute paths go through the
// cluster router, everything else through the wrapped service.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/estimate", n.handleCompute)
	mux.HandleFunc("/v1/schedule", n.handleCompute)
	mux.HandleFunc("/v1/static", n.handleCompute)
	mux.HandleFunc("/cluster/metrics", n.handleMetrics)
	mux.Handle("/", n.svc.Handler())
	return mux
}

// handleCompute is the routed entry of every compute path.
func (n *Node) handleCompute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	n.svc.CountRequest(r.URL.Path)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	pl, err := n.svc.PlanRequest(r.URL.Path, body)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.Header.Get(HopHeader) != "" {
		// A peer already routed this request here; serve it, never
		// re-forward.
		n.serveLocal(w, pl, RouteLocal)
		return
	}
	n.route(w, r.URL.Path, body, pl)
}

// route answers a client-originated compute request: local cache, then
// the shared store, then the key's deterministic candidate sequence —
// home node first, stealing past dead or saturated candidates.
func (n *Node) route(w http.ResponseWriter, path string, body []byte, pl *service.Plan) {
	if cached, ok := n.svc.CacheLookup(pl.Key); ok {
		n.reply(w, n.id, RouteLocal, "hit", cached)
		return
	}
	if b, ok := n.storeGet(pl.Key); ok {
		n.svc.CacheFill(pl.Key, b)
		n.countCross()
		n.reply(w, n.id, RouteStore, "store", b)
		return
	}
	// Deterministic pacing between failed steal attempts: the schedule is
	// a pure function of the request key, so a chaos test replays the
	// exact backoff sequence a production route took.
	backoff := resil.Backoff{Seed: resil.SeedFromKey(pl.Key)}
	failedHops := 0
	var lastErr *service.StatusError
	for i, id := range n.ring.Sequence(pl.Key) {
		route := RouteForward
		if i > 0 {
			route = RouteSteal
		}
		if id == n.id {
			if i == 0 {
				route = RouteLocal
			}
			bodyOut, xcache, serr := n.execLocal(pl)
			if serr != nil && capacityError(serr) {
				// Saturated or draining locally: let a ring successor
				// steal the work instead of bouncing the client.
				lastErr = serr
				continue
			}
			if serr != nil {
				n.replyError(w, n.id, route, serr)
				return
			}
			n.reply(w, n.id, route, xcache, bodyOut)
			return
		}
		br := n.breakers[id]
		if br != nil && !br.Allow() {
			// Breaker open: skip the peer without paying its failure
			// latency — the whole point of ejecting dead/flapping nodes.
			n.mu.Lock()
			n.breakerSkips++
			n.mu.Unlock()
			lastErr = &service.StatusError{Status: http.StatusServiceUnavailable, Msg: "peer " + id + " circuit open", Retryable: true}
			continue
		}
		if failedHops > 0 {
			// A previous candidate failed on the wire: pace the next
			// attempt so a degraded fleet is not hammered in a tight loop.
			n.mu.Lock()
			n.backoffSleeps++
			n.mu.Unlock()
			time.Sleep(backoff.Delay(failedHops - 1))
		}
		resp, data, ok := n.forward(id, path, body, pl.Timeout)
		if !ok {
			// Dead, unreachable, hung past its hop budget, saturated or
			// draining: steal to the next candidate in the fleet-wide
			// deterministic order.
			if br != nil {
				br.Failure()
			}
			failedHops++
			lastErr = &service.StatusError{Status: http.StatusServiceUnavailable, Msg: "peer " + id + " unavailable", Retryable: true}
			continue
		}
		if br != nil {
			br.Success()
		}
		n.relay(w, resp, data, route)
		return
	}
	if lastErr == nil {
		lastErr = &service.StatusError{Status: http.StatusServiceUnavailable, Msg: "no fleet member available", Retryable: true}
	}
	n.replyError(w, n.id, RouteSteal, lastErr)
}

// execLocal runs a plan on this node's service, arming any pending chaos
// panic and publishing fresh results to the shared store.
func (n *Node) execLocal(pl *service.Plan) ([]byte, string, *service.StatusError) {
	pl.Chaos(func() {
		if n.chaosPanic.CompareAndSwap(true, false) {
			panic("cluster: injected job-panic")
		}
	})
	body, xcache, serr := n.svc.Execute(pl)
	if serr == nil && xcache == "miss" {
		n.storePut(pl.Key, body)
	}
	return body, xcache, serr
}

// serveLocal is execLocal plus the response writing (terminal hop path).
func (n *Node) serveLocal(w http.ResponseWriter, pl *service.Plan, route string) {
	body, xcache, serr := n.execLocal(pl)
	if serr != nil {
		n.replyError(w, n.id, route, serr)
		return
	}
	n.reply(w, n.id, route, xcache, body)
}

// maxPeerResponseBytes caps how much of a peer's response body forward
// buffers: the service's own request cap plus slack for the response
// envelope. Every legitimate response body fits (result bodies are far
// smaller than request bodies); only a byzantine or corrupted peer can
// exceed it.
const maxPeerResponseBytes = service.MaxBodyBytes + 64<<10

// forward sends the raw request body to peer id under the request's
// per-hop budget (plan timeout + grace — the peer needs the full plan
// deadline for the campaign itself). The context deadline covers the
// whole exchange, headers AND body, so both a hung-but-accepting peer
// (accepts TCP, never sends headers) and a peer stalling mid-body are
// abandoned when the budget expires instead of stalling the client
// forever. ok is false when the candidate cannot take the work now —
// transport failure (dead node), budget expiry, or capacity refusal
// (429/503) — and the caller should steal onward; any other response,
// success or deterministic failure, is final.
func (n *Node) forward(id, path string, body []byte, planTimeout time.Duration) (*http.Response, []byte, bool) {
	budget, err := resil.HopBudget(planTimeout, n.hopGrace)
	if err != nil {
		return nil, nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.peers[id]+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, n.id)
	resp, err := n.client.Do(req)
	if err != nil {
		n.countHopTimeout(ctx)
		return nil, nil, false
	}
	// Bounded read, mirroring the request path's MaxBytesReader: a
	// byzantine peer streaming an endless 200 body must not exhaust this
	// node's memory. The slack covers response-envelope overhead on a
	// maximum-size payload; anything past it marks the peer broken and the
	// work is stolen onward like any other peer failure.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes+1))
	resp.Body.Close()
	if err != nil {
		n.countHopTimeout(ctx)
		return nil, nil, false
	}
	if len(data) > maxPeerResponseBytes {
		n.mu.Lock()
		n.oversizedReplies++
		n.mu.Unlock()
		return nil, nil, false
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		return nil, nil, false
	}
	return resp, data, true
}

// countHopTimeout attributes a forwarding failure to the hop budget when
// the hop's context expired (as opposed to a dial refusal or reset).
func (n *Node) countHopTimeout(ctx context.Context) {
	if ctx.Err() == nil {
		return
	}
	n.mu.Lock()
	n.hopTimeouts++
	n.mu.Unlock()
}

// relay writes a peer's response through to the client, stamping the
// route this node took and counting a cross-node hit when the peer
// answered from its cache or an in-flight campaign (fleet-wide
// single-flight observed from here).
func (n *Node) relay(w http.ResponseWriter, resp *http.Response, data []byte, route string) {
	xcache := resp.Header.Get("X-Cache")
	if resp.StatusCode == http.StatusOK && (xcache == "hit" || xcache == "coalesced" || xcache == "store") {
		n.countCross()
	}
	n.countRoute(route)
	w.Header().Set("Content-Type", "application/json")
	if xcache != "" {
		w.Header().Set("X-Cache", xcache)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(NodeHeader, resp.Header.Get(NodeHeader))
	w.Header().Set(RouteHeader, route)
	w.WriteHeader(resp.StatusCode)
	w.Write(data)
}

// reply writes a success body with full routing attribution.
func (n *Node) reply(w http.ResponseWriter, node, route, xcache string, body []byte) {
	n.countRoute(route)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", xcache)
	w.Header().Set(NodeHeader, node)
	w.Header().Set(RouteHeader, route)
	w.Write(body)
}

// replyError writes a StatusError with routing attribution, preserving
// the service's Retry-After contract for retryable failures.
func (n *Node) replyError(w http.ResponseWriter, node, route string, serr *service.StatusError) {
	n.countRoute(route)
	if serr.Retryable {
		w.Header().Set("Retry-After", strconv.Itoa(n.svc.RetryAfterSeconds()))
	}
	w.Header().Set(NodeHeader, node)
	w.Header().Set(RouteHeader, route)
	errorJSON(w, serr.Status, serr.Msg)
}

// storeGet probes the shared store, counting (not failing on) store
// errors: a flaky shared mount degrades the fleet to forwarding, it does
// not take requests down.
func (n *Node) storeGet(key string) ([]byte, bool) {
	if n.store == nil {
		return nil, false
	}
	b, ok, err := n.store.Get(key)
	if err != nil {
		n.mu.Lock()
		n.storeErrors++
		n.mu.Unlock()
		return nil, false
	}
	return b, ok
}

// storePut publishes a fresh result to the shared store, best-effort.
func (n *Node) storePut(key string, body []byte) {
	if n.store == nil {
		return
	}
	if err := n.store.Put(key, body); err != nil {
		n.mu.Lock()
		n.storeErrors++
		n.mu.Unlock()
	}
}

func (n *Node) countRoute(route string) {
	n.mu.Lock()
	n.routes[route]++
	n.mu.Unlock()
}

func (n *Node) countCross() {
	n.mu.Lock()
	n.crossNodeHits++
	n.mu.Unlock()
}

// Metrics is the /cluster/metrics JSON body: routing dispositions, the
// cross-node hit count (requests this node answered with fleet work it
// did not compute), per-peer breaker state, resilience counters, store
// health, and the wrapped service's snapshot — enough to diagnose a
// degraded fleet without log spelunking: an open breaker names the dead
// peer, hop_timeouts names hung ones, store_quarantined names a rotting
// shared mount.
type Metrics struct {
	Node          string            `json:"node"`
	Routes        map[string]uint64 `json:"routes"`
	CrossNodeHits uint64            `json:"cross_node_hits"`
	// Breakers maps each remote peer to its circuit-breaker state.
	Breakers map[string]resil.Stats `json:"breakers"`
	// BreakerSkips counts candidates skipped without any network cost
	// because their breaker was open.
	BreakerSkips uint64 `json:"breaker_skips"`
	// BackoffSleeps counts deterministic pacing pauses between failed
	// steal attempts.
	BackoffSleeps uint64 `json:"backoff_sleeps"`
	// HopTimeouts counts forwards abandoned because the per-hop budget
	// (plan deadline + grace) expired — the hung-peer signature.
	HopTimeouts uint64 `json:"hop_timeouts"`
	// OversizedReplies counts peer responses abandoned because their body
	// ran past the forwarding cap — the byzantine-peer signature.
	OversizedReplies uint64 `json:"oversized_replies"`
	StoreErrors      uint64 `json:"store_errors"`
	// StoreQuarantined counts corrupt shared-store entries this node's
	// store handle verified, refused to serve, and moved to corrupt/.
	StoreQuarantined uint64                  `json:"store_quarantined"`
	Service          service.MetricsSnapshot `json:"service"`
}

// Snapshot returns the node's current metrics.
func (n *Node) Snapshot() Metrics {
	n.mu.Lock()
	routes := make(map[string]uint64, len(n.routes))
	for k, v := range n.routes {
		routes[k] = v
	}
	m := Metrics{
		Node: n.id, Routes: routes, CrossNodeHits: n.crossNodeHits,
		BreakerSkips: n.breakerSkips, BackoffSleeps: n.backoffSleeps,
		HopTimeouts: n.hopTimeouts, OversizedReplies: n.oversizedReplies,
		StoreErrors: n.storeErrors,
	}
	n.mu.Unlock()
	m.Breakers = make(map[string]resil.Stats, len(n.breakers))
	for id, br := range n.breakers {
		m.Breakers[id] = br.Snapshot()
	}
	if q, ok := n.store.(interface{ Quarantined() uint64 }); ok {
		m.StoreQuarantined = q.Quarantined()
	}
	m.Service = n.svc.Snapshot()
	return m
}

func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.Snapshot())
}

// capacityError reports whether serr is a capacity refusal (queue full,
// draining) — the failures work-stealing exists for. Deadline kills and
// panics are not stolen: the campaign already burned its budget once and
// the client owns the retry decision.
func capacityError(serr *service.StatusError) bool {
	return serr.Status == http.StatusTooManyRequests || serr.Status == http.StatusServiceUnavailable
}

// errorJSON writes the service's error envelope shape.
func errorJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
