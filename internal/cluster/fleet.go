package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"efl/internal/service"
)

// FleetOptions configures StartFleet.
type FleetOptions struct {
	// Nodes is the fleet size (>= 1).
	Nodes int
	// StoreDir roots the shared result store; empty runs without one.
	StoreDir string
	// Service configures every node's estimation server.
	Service service.Options
	// VirtualNodes is the ring's per-member point count (<= 0 selects
	// DefaultVirtualNodes).
	VirtualNodes int
	// HopGrace, BreakerThreshold and BreakerProbeEvery pass through to
	// every node (<= 0 selects the resil defaults). Tests tighten
	// HopGrace so hung-peer recovery happens in milliseconds.
	HopGrace          time.Duration
	BreakerThreshold  int
	BreakerProbeEvery int
}

// Fleet is an in-process cluster of N nodes listening on real loopback
// TCP ports — the harness behind the fleet tests, the eflload fleet
// modes and the CI smoke. Real sockets rather than httptest round-trips:
// node death must look like node death (connection refused), not like a
// Go method returning an error.
//
// Beyond clean death (Drop), the fleet arms the byzantine fault classes
// the resilience matrix demands: Slow (accepts TCP, stalls headers),
// Flaky (a deterministic fraction of responses reset mid-body),
// Partition (two nodes lose mutual connectivity while the rest of the
// fleet sees both) and CorruptStoreEntry (byte-flip on the shared
// store's disk). Every injection is deterministic — count-driven or
// explicit — so a chaos schedule replays exactly.
type Fleet struct {
	Nodes []*Node
	IDs   []string
	URLs  []string
	// StoreDir is the shared result store's root ("" without a store).
	StoreDir string
	servers  []*http.Server
	svcs     []*service.Server
	dropped  []bool
	gates    []*chaosGate
	part     *partitionTable
}

// chaosGate is one node's armed byzantine behaviour, checked by the
// handler wrapper on every compute request. Atomics: the gate is flipped
// by the harness while request goroutines read it.
type chaosGate struct {
	slow       atomic.Bool
	flakyEvery atomic.Int64 // 0 = off; every Nth compute response resets mid-body
	flakyCount atomic.Int64
}

// partitionTable is the fleet's shared connectivity view: blocked
// (sender, target-address) pairs enforced at dial time in every node's
// forwarding client. Sender-side enforcement of both directions is
// equivalent to a wire cut for inter-node traffic, which all flows
// through these clients.
type partitionTable struct {
	mu      sync.Mutex
	blocked map[string]bool // "senderID|targetHostPort"
}

func (p *partitionTable) key(sender, addr string) string { return sender + "|" + addr }

func (p *partitionTable) isBlocked(sender, addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[p.key(sender, addr)]
}

func (p *partitionTable) set(sender, addr string, blocked bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if blocked {
		p.blocked[p.key(sender, addr)] = true
	} else {
		delete(p.blocked, p.key(sender, addr))
	}
}

func (p *partitionTable) clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked = map[string]bool{}
}

// StartFleet brings up a fleet of opts.Nodes nodes. Listeners are bound
// first so the full peer table (with real ports) exists before any node
// is constructed — every node routes from the same ring from its first
// request.
func StartFleet(opts FleetOptions) (*Fleet, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: fleet needs at least one node")
	}
	var store Store
	if opts.StoreDir != "" {
		ds, err := NewDirStore(opts.StoreDir)
		if err != nil {
			return nil, err
		}
		store = ds
		// Share the trace registry through the same store: a trace uploaded
		// to any node resolves on every node, so trace_hash requests route
		// (and steal) exactly like benchmark/source ones.
		opts.Service.TraceStore = ds
	}
	f := &Fleet{
		Nodes:    make([]*Node, opts.Nodes),
		IDs:      make([]string, opts.Nodes),
		URLs:     make([]string, opts.Nodes),
		StoreDir: opts.StoreDir,
		servers:  make([]*http.Server, opts.Nodes),
		svcs:     make([]*service.Server, opts.Nodes),
		dropped:  make([]bool, opts.Nodes),
		gates:    make([]*chaosGate, opts.Nodes),
		part:     &partitionTable{blocked: map[string]bool{}},
	}
	listeners := make([]net.Listener, opts.Nodes)
	peers := make(map[string]string, opts.Nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		f.IDs[i] = "node-" + strconv.Itoa(i)
		f.URLs[i] = "http://" + ln.Addr().String()
		peers[f.IDs[i]] = f.URLs[i]
		f.gates[i] = &chaosGate{}
	}
	for i := range listeners {
		f.svcs[i] = service.New(opts.Service)
		node, err := NewNode(Options{
			ID: f.IDs[i], Peers: peers, Service: f.svcs[i],
			Store: store, VirtualNodes: opts.VirtualNodes,
			Client:           f.partitionedClient(f.IDs[i]),
			HopGrace:         opts.HopGrace,
			BreakerThreshold: opts.BreakerThreshold, BreakerProbeEvery: opts.BreakerProbeEvery,
		})
		if err != nil {
			f.Close()
			for _, l := range listeners[i:] {
				l.Close()
			}
			return nil, err
		}
		f.Nodes[i] = node
		f.servers[i] = &http.Server{Handler: f.chaosHandler(i, node.Handler())}
		go f.servers[i].Serve(listeners[i])
	}
	return f, nil
}

// partitionedClient builds a node's forwarding client: the standard
// short dial timeout and header backstop, plus a dial hook that consults
// the fleet's partition table — a blocked pair fails exactly like an
// unreachable host, immediately and at the transport layer.
func (f *Fleet) partitionedClient(senderID string) *http.Client {
	dialer := &net.Dialer{Timeout: 2 * time.Second}
	return &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			if f.part.isBlocked(senderID, addr) {
				return nil, fmt.Errorf("cluster: partition: %s cannot reach %s", senderID, addr)
			}
			return dialer.DialContext(ctx, network, addr)
		},
		ResponseHeaderTimeout: 6 * time.Minute,
	}}
}

// chaosHandler wraps a node's handler with its byzantine gate. Only the
// compute paths misbehave — /cluster/metrics and /healthz stay
// responsive, so a degraded fleet remains diagnosable (exactly the
// production failure shape: the data plane hangs, the control plane
// answers).
func (f *Fleet) chaosHandler(i int, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			g := f.gates[i]
			if g.slow.Load() {
				// PeerSlow: the connection was accepted and the request
				// read, but headers never come — hold until the caller
				// abandons the hop (its per-hop budget expiring is the
				// defense under test).
				<-r.Context().Done()
				return
			}
			if every := g.flakyEvery.Load(); every > 0 {
				if g.flakyCount.Add(1)%every == 0 {
					// FlakyTransport: headers and a body prefix go out,
					// then the connection resets mid-body.
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusOK)
					w.Write([]byte(`{"truncated`))
					if fl, ok := w.(http.Flusher); ok {
						fl.Flush()
					}
					panic(http.ErrAbortHandler)
				}
			}
		}
		h.ServeHTTP(w, r)
	})
}

// Slow arms (or heals) the peer-slow byzantine fault on node i: compute
// requests are accepted and read but never answered.
func (f *Fleet) Slow(i int, enabled bool) {
	f.gates[i].slow.Store(enabled)
}

// Flaky arms the flaky-transport fault on node i: every `every`-th
// compute response is reset mid-body (0 disarms). Count-driven, so a
// given request sequence hits a deterministic set of resets.
func (f *Fleet) Flaky(i int, every int64) {
	f.gates[i].flakyEvery.Store(every)
	f.gates[i].flakyCount.Store(0)
}

// Partition cuts connectivity between nodes i and j in both directions;
// every other pair keeps flowing (A sees B but not C). Heal restores.
func (f *Fleet) Partition(i, j int) {
	ai := strings.TrimPrefix(f.URLs[i], "http://")
	aj := strings.TrimPrefix(f.URLs[j], "http://")
	f.part.set(f.IDs[i], aj, true)
	f.part.set(f.IDs[j], ai, true)
}

// Heal clears every armed partition.
func (f *Fleet) Heal() {
	f.part.clear()
}

// Dropped reports whether node i has been killed.
func (f *Fleet) Dropped(i int) bool { return f.dropped[i] }

// Drop kills node i abruptly: its listener and every open connection
// close, so peers see connection-refused — the fleet-level node-drop
// fault. The node's in-flight campaigns finish into its (now
// unreachable) cache; nothing is drained gracefully, which is the point.
func (f *Fleet) Drop(i int) {
	if f.dropped[i] {
		return
	}
	f.dropped[i] = true
	f.servers[i].Close()
}

// Close shuts the whole fleet down, draining every surviving service.
func (f *Fleet) Close() {
	for i, srv := range f.servers {
		if srv != nil && !f.dropped[i] {
			f.dropped[i] = true
			srv.Close()
		}
	}
	for _, svc := range f.svcs {
		if svc != nil {
			svc.Close()
		}
	}
}

// CorruptStoreEntry flips one byte inside the stored body of key's entry
// in the shared store rooted at dir — the store-corrupt byzantine fault
// (bit rot, hostile tenant, torn write on a non-atomic filesystem). The
// flip lands inside the base64 body payload, so the envelope still
// decodes but the body bytes change: exactly the corruption only
// content-hash verification can catch.
func CorruptStoreEntry(dir, key string) error {
	p := filepath.Join(dir, key[:2], key+".json")
	data, err := os.ReadFile(p)
	if err != nil {
		return fmt.Errorf("cluster: corrupt store entry: %w", err)
	}
	marker := []byte(`"body"`)
	i := bytes.Index(data, marker)
	if i < 0 {
		return fmt.Errorf("cluster: store entry %s has no body field", key)
	}
	// Step to the opening quote of the value, then flip a character a
	// safe distance inside the base64 run.
	j := bytes.IndexByte(data[i+len(marker):], '"')
	if j < 0 {
		return fmt.Errorf("cluster: store entry %s: malformed body field", key)
	}
	pos := i + len(marker) + j + 1 + 16
	if pos >= len(data) || data[pos] == '"' {
		return fmt.Errorf("cluster: store entry %s: body too short to corrupt", key)
	}
	if data[pos] == 'A' {
		data[pos] = 'B'
	} else {
		data[pos] = 'A'
	}
	// Deliberately a plain in-place write, not the atomic fsynced path:
	// the fault models the filesystem misbehaving underneath the store.
	return os.WriteFile(p, data, 0o644)
}
