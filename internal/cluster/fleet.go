package cluster

import (
	"fmt"
	"net"
	"net/http"
	"strconv"

	"efl/internal/service"
)

// FleetOptions configures StartFleet.
type FleetOptions struct {
	// Nodes is the fleet size (>= 1).
	Nodes int
	// StoreDir roots the shared result store; empty runs without one.
	StoreDir string
	// Service configures every node's estimation server.
	Service service.Options
	// VirtualNodes is the ring's per-member point count (<= 0 selects
	// DefaultVirtualNodes).
	VirtualNodes int
}

// Fleet is an in-process cluster of N nodes listening on real loopback
// TCP ports — the harness behind the fleet tests, the eflload fleet
// modes and the CI smoke. Real sockets rather than httptest round-trips:
// node death must look like node death (connection refused), not like a
// Go method returning an error.
type Fleet struct {
	Nodes   []*Node
	IDs     []string
	URLs    []string
	servers []*http.Server
	svcs    []*service.Server
	dropped []bool
}

// StartFleet brings up a fleet of opts.Nodes nodes. Listeners are bound
// first so the full peer table (with real ports) exists before any node
// is constructed — every node routes from the same ring from its first
// request.
func StartFleet(opts FleetOptions) (*Fleet, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: fleet needs at least one node")
	}
	var store Store
	if opts.StoreDir != "" {
		ds, err := NewDirStore(opts.StoreDir)
		if err != nil {
			return nil, err
		}
		store = ds
	}
	f := &Fleet{
		Nodes:   make([]*Node, opts.Nodes),
		IDs:     make([]string, opts.Nodes),
		URLs:    make([]string, opts.Nodes),
		servers: make([]*http.Server, opts.Nodes),
		svcs:    make([]*service.Server, opts.Nodes),
		dropped: make([]bool, opts.Nodes),
	}
	listeners := make([]net.Listener, opts.Nodes)
	peers := make(map[string]string, opts.Nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		f.IDs[i] = "node-" + strconv.Itoa(i)
		f.URLs[i] = "http://" + ln.Addr().String()
		peers[f.IDs[i]] = f.URLs[i]
	}
	for i := range listeners {
		f.svcs[i] = service.New(opts.Service)
		node, err := NewNode(Options{
			ID: f.IDs[i], Peers: peers, Service: f.svcs[i],
			Store: store, VirtualNodes: opts.VirtualNodes,
		})
		if err != nil {
			f.Close()
			for _, l := range listeners[i:] {
				l.Close()
			}
			return nil, err
		}
		f.Nodes[i] = node
		f.servers[i] = &http.Server{Handler: node.Handler()}
		go f.servers[i].Serve(listeners[i])
	}
	return f, nil
}

// Dropped reports whether node i has been killed.
func (f *Fleet) Dropped(i int) bool { return f.dropped[i] }

// Drop kills node i abruptly: its listener and every open connection
// close, so peers see connection-refused — the fleet-level node-drop
// fault. The node's in-flight campaigns finish into its (now
// unreachable) cache; nothing is drained gracefully, which is the point.
func (f *Fleet) Drop(i int) {
	if f.dropped[i] {
		return
	}
	f.dropped[i] = true
	f.servers[i].Close()
}

// Close shuts the whole fleet down, draining every surviving service.
func (f *Fleet) Close() {
	for i, srv := range f.servers {
		if srv != nil && !f.dropped[i] {
			f.dropped[i] = true
			srv.Close()
		}
	}
	for _, svc := range f.svcs {
		if svc != nil {
			svc.Close()
		}
	}
}
