package cluster

// Resilience-layer tests: the hung-peer hop budget, store integrity
// quarantine, per-peer circuit breakers, and the seeded chaos-schedule
// property (every success byte-identical to the clean fleet, every
// failure fail-fast and retryable).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"efl/internal/artifact"
	"efl/internal/resil"
	"efl/internal/service"
)

// startHangServer returns the base URL of a listener that accepts TCP
// connections and never writes a byte — the hung-but-accepting peer
// (stuck process, black-holed egress) that a plain dial timeout cannot
// defend against.
func startHangServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); ln.Close() })
	go func() {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c)
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	return "http://" + ln.Addr().String()
}

// ownedBody searches seeds for a request body whose home node is
// `owner` on n's ring, so the route's first hop lands exactly where the
// test wants it.
func ownedBody(t *testing.T, n *Node, svc *service.Server, owner string, extra map[string]any) []byte {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		body := estimateBody(t, seed, extra)
		pl, err := svc.PlanRequest("/v1/estimate", body)
		if err != nil {
			t.Fatal(err)
		}
		if n.Owner(pl.Key) == owner {
			return body
		}
	}
	t.Fatalf("no seed under 500 hashes home to %q", owner)
	return nil
}

// TestHungPeerStolenWithinHopBudget is the regression test for the
// forwarding client's missing response deadline: a peer that accepts the
// connection and never responds must be abandoned when the per-hop
// budget (plan deadline + grace) expires and the work stolen locally —
// pre-fix, the proxied request hung for as long as the hung peer felt
// like, far past the job deadline.
func TestHungPeerStolenWithinHopBudget(t *testing.T) {
	hangURL := startHangServer(t)
	svc := service.New(service.Options{Workers: 2})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfURL := "http://" + ln.Addr().String()
	node, err := NewNode(Options{
		ID:      "self",
		Peers:   map[string]string{"self": selfURL, "hang": hangURL},
		Service: svc,
		// Tight grace so the test bounds in milliseconds, not seconds.
		HopGrace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: node.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	const planTimeoutMS = 1000
	body := ownedBody(t, node, svc, "hang", map[string]any{"timeout_ms": planTimeoutMS})

	type result struct {
		resp *http.Response
		data []byte
	}
	t0 := time.Now()
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Post(selfURL+"/v1/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("POST: %v", err)
			ch <- result{}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		ch <- result{resp, data}
	}()

	// Generous wall bound (race-detector CI is slow), but far below "the
	// hung peer decides": budget is 1s + 300ms grace, the steal's local
	// campaign adds tens of milliseconds.
	var res result
	select {
	case res = <-ch:
	case <-time.After(15 * time.Second):
		t.Fatal("request hung past the per-hop budget: hung peer was never stolen past")
	}
	if res.resp == nil {
		t.FailNow()
	}
	elapsed := time.Since(t0)
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", res.resp.StatusCode, res.data)
	}
	if r := res.resp.Header.Get(RouteHeader); r != RouteSteal {
		t.Fatalf("route = %q, want steal", r)
	}
	if n := res.resp.Header.Get(NodeHeader); n != "self" {
		t.Fatalf("answering node = %q, want self", n)
	}
	if min := time.Duration(planTimeoutMS) * time.Millisecond; elapsed < min {
		t.Fatalf("answered in %v, below the hop budget %v — the hung hop was never attempted", elapsed, min)
	}
	snap := node.Snapshot()
	if snap.HopTimeouts == 0 {
		t.Fatal("hop-timeout counter never moved for a hung peer")
	}
	if snap.Breakers["hang"].ConsecutiveFailures == 0 {
		t.Fatal("hung peer's breaker recorded no failure")
	}
}

// TestDirStoreQuarantinesCorruptEntry is the regression test for store
// integrity: pre-fix, DirStore.Get served whatever bytes decoded from
// disk — one flipped byte in a stored envelope body came back as a valid
// result and poisoned every LRU it hydrated. Post-fix a corrupt entry is
// a miss, the file is quarantined to corrupt/, and the store self-heals
// on the next Put.
func TestDirStoreQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "a2b4c6d8e0f2a4b6c8d0e2f4a6b8c0d2e4f6a8b0c2d4e6f8a0b2c4d6e8f0a2b4"
	body := []byte(`{"pwcet":{"1e-09":12345.6789,"1e-12":23456.789},"runs":300}`)
	if err := s.Put(key, body); err != nil {
		t.Fatal(err)
	}

	// Bit-flip inside the stored body: the envelope still decodes, only
	// content verification can catch it.
	if err := CorruptStoreEntry(dir, key); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("corrupt entry surfaced as a store error: %v", err)
	}
	if ok {
		t.Fatalf("corrupt entry served as a valid result: %q", got)
	}
	if q := s.Quarantined(); q != 1 {
		t.Fatalf("quarantine count = %d, want 1", q)
	}
	qpath := filepath.Join(dir, CorruptDirName, key+".json")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("corrupt entry not moved to quarantine: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, key[:2], key+".json")); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still present at its store path")
	}
	// Self-heal: a fresh Put round-trips again.
	if err := s.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok, err = s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("store did not heal after re-Put: ok=%v err=%v", ok, err)
	}

	// Truncation (torn write on a non-atomic filesystem): also a
	// quarantined miss, not an error and never a body.
	key2 := "b2b4c6d8e0f2a4b6c8d0e2f4a6b8c0d2e4f6a8b0c2d4e6f8a0b2c4d6e8f0a2b4"
	if err := s.Put(key2, body); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, key2[:2], key2+".json")
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key2); err != nil || ok {
		t.Fatalf("truncated entry: ok=%v err=%v, want miss", ok, err)
	}

	// A digest-less entry (written by a pre-integrity build) is
	// unverifiable: quarantined, not trusted.
	key3 := "c2b4c6d8e0f2a4b6c8d0e2f4a6b8c0d2e4f6a8b0c2d4e6f8a0b2c4d6e8f0a2b4"
	legacy, err := artifact.Encode(resultKind, 0, struct {
		Body []byte `json:"body"`
	}{body})
	if err != nil {
		t.Fatal(err)
	}
	p3 := filepath.Join(dir, key3[:2], key3+".json")
	if err := os.MkdirAll(filepath.Dir(p3), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p3, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key3); err != nil || ok {
		t.Fatalf("digest-less entry: ok=%v err=%v, want miss", ok, err)
	}
	if q := s.Quarantined(); q != 3 {
		t.Fatalf("quarantine count = %d, want 3", q)
	}
}

// TestBreakerEjectsDeadPeer pins the circuit breaker's job: after the
// threshold of consecutive failures, a dead peer is skipped without any
// network cost, the skip is counted, and /cluster/metrics names the open
// breaker.
func TestBreakerEjectsDeadPeer(t *testing.T) {
	f := startFleet(t, FleetOptions{
		Nodes: 3, Service: service.Options{Workers: 2},
		BreakerThreshold: 2, BreakerProbeEvery: 50,
	})
	victim := 2
	serving := 0
	var bodies [][]byte
	for seed := uint64(1); len(bodies) < 5 && seed < 500; seed++ {
		body := estimateBody(t, seed, nil)
		pl, err := f.Nodes[serving].Service().PlanRequest("/v1/estimate", body)
		if err != nil {
			t.Fatal(err)
		}
		if f.Nodes[serving].Owner(pl.Key) == f.IDs[victim] {
			bodies = append(bodies, body)
		}
	}
	if len(bodies) < 5 {
		t.Fatal("could not collect 5 bodies homed on the victim")
	}
	f.Drop(victim)
	for i, body := range bodies {
		resp, data := post(t, f.URLs[serving]+"/v1/estimate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after drop: HTTP %d: %s", i, resp.StatusCode, data)
		}
		if r := resp.Header.Get(RouteHeader); r != RouteSteal {
			t.Fatalf("request %d route = %q, want steal", i, r)
		}
	}
	snap := f.Nodes[serving].Snapshot()
	br, ok := snap.Breakers[f.IDs[victim]]
	if !ok {
		t.Fatalf("metrics missing breaker for %s: %+v", f.IDs[victim], snap.Breakers)
	}
	if br.State != resil.BreakerOpen {
		t.Fatalf("dead peer's breaker = %q, want open", br.State)
	}
	if br.Opens == 0 {
		t.Fatal("breaker open transition not counted")
	}
	if snap.BreakerSkips == 0 {
		t.Fatal("no breaker skips counted: dead peer paid a dial on every request")
	}

	// The breaker state is served over HTTP, where operators look.
	resp, err := http.Get(f.URLs[serving] + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Breakers map[string]struct {
			State string `json:"state"`
		} `json:"breakers"`
		BreakerSkips     uint64 `json:"breaker_skips"`
		StoreQuarantined uint64 `json:"store_quarantined"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Breakers[f.IDs[victim]].State != "open" {
		t.Fatalf("/cluster/metrics breaker state = %q, want open", m.Breakers[f.IDs[victim]].State)
	}
	if m.BreakerSkips == 0 {
		t.Fatal("/cluster/metrics breaker_skips = 0")
	}
}

// retryableStatus is the set of statuses the resilience contract allows a
// degraded fleet to answer: each implies "identical retry may succeed".
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// TestChaosScheduleProperty is the chaos property test: for a seeded
// sweep of byzantine schedules — slow peer, partition, flaky transport,
// store corruption and a node drop, in combination — every successful
// response is byte-identical to the clean fleet's bytes and every failure
// is fail-fast and retryable with a well-formed Retry-After >= 1s. No
// hangs: a bounded client timeout above the route's worst-case budget
// never fires against a healthy serving node.
func TestChaosScheduleProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is seconds-long; skipped in -short")
	}
	const reqCount = 3
	reqExtra := map[string]any{"timeout_ms": 2000}
	reqBodies := make([][]byte, reqCount)
	for i := range reqBodies {
		reqBodies[i] = estimateBody(t, 101+uint64(i), reqExtra)
	}

	// Clean-fleet baseline: the canonical bytes every chaos-fleet success
	// must reproduce (fleet instances are interchangeable by simulator
	// determinism — that is the property under test).
	baseline := make([][]byte, reqCount)
	{
		clean := startFleet(t, FleetOptions{Nodes: 3, Service: service.Options{Workers: 2}})
		for i, body := range reqBodies {
			resp, data := post(t, clean.URLs[0]+"/v1/estimate", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("baseline request %d: HTTP %d: %s", i, resp.StatusCode, data)
			}
			baseline[i] = data
		}
		clean.Close()
	}

	client := &http.Client{Timeout: 20 * time.Second}
	for _, chaosSeed := range []uint64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", chaosSeed), func(t *testing.T) {
			f := startFleet(t, FleetOptions{
				Nodes: 3, StoreDir: t.TempDir(), Service: service.Options{Workers: 2},
				HopGrace: 250 * time.Millisecond, BreakerThreshold: 2,
			})
			// The schedule is a pure function of the seed.
			slowNode := int(chaosSeed) % 3
			flakyNode := (slowNode + 1) % 3
			partA, partB := (slowNode+1)%3, (slowNode+2)%3

			check := func(phase string, idx int, resp *http.Response, data []byte) {
				t.Helper()
				if resp.StatusCode == http.StatusOK {
					if !bytes.Equal(data, baseline[idx]) {
						t.Fatalf("%s: request %d succeeded with bytes differing from the clean fleet", phase, idx)
					}
					return
				}
				if !retryableStatus(resp.StatusCode) {
					t.Fatalf("%s: request %d failed with non-retryable HTTP %d: %s", phase, idx, resp.StatusCode, data)
				}
				ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
				if err != nil || ra < 1 {
					t.Fatalf("%s: request %d: retryable HTTP %d with malformed Retry-After %q",
						phase, idx, resp.StatusCode, resp.Header.Get("Retry-After"))
				}
			}

			// Phase 1: three byzantine faults at once. Clients only talk
			// to non-slow nodes (a health-checked LB does the same); the
			// slow node still participates as a routing candidate, which
			// is where the hop budget defends.
			f.Slow(slowNode, true)
			f.Flaky(flakyNode, 3)
			f.Partition(partA, partB)
			for idx, body := range reqBodies {
				for n := 0; n < 3; n++ {
					if n == slowNode {
						continue
					}
					resp, err := client.Post(f.URLs[n]+"/v1/estimate", "application/json", bytes.NewReader(body))
					if err != nil {
						if n == flakyNode {
							// The client talked straight to the armed flaky
							// node and its response reset mid-body: a
							// transport error, which any client treats as
							// retryable. Only healthy serving nodes owe the
							// HTTP-level contract.
							continue
						}
						t.Fatalf("phase1: request %d via node %d: transport error against a healthy serving node: %v", idx, n, err)
					}
					data, readErr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if readErr != nil {
						// Same flaky-node allowance: a 200 whose body resets
						// mid-read is a transport failure, not a success —
						// and only the armed node may produce one (a relayed
						// flaky hop is stolen by the serving node, never
						// passed through truncated).
						if n == flakyNode {
							continue
						}
						t.Fatalf("phase1: request %d via node %d: truncated response from a healthy serving node: %v", idx, n, readErr)
					}
					check("phase1", idx, resp, data)
				}
			}

			// Phase 2: heal, then corrupt the shared store underneath a
			// finished campaign and replay it from a node that never
			// cached it — the quarantine must eat the corruption and the
			// route must recompute or fetch clean bytes.
			f.Slow(slowNode, false)
			f.Flaky(flakyNode, 0)
			f.Heal()
			freshBody := estimateBody(t, 200+chaosSeed, reqExtra)
			pl, err := f.Nodes[0].Service().PlanRequest("/v1/estimate", freshBody)
			if err != nil {
				t.Fatal(err)
			}
			home := indexOf(t, f, f.Nodes[0].Owner(pl.Key))
			respH, dataH := post(t, f.URLs[home]+"/v1/estimate", freshBody)
			if respH.StatusCode != http.StatusOK {
				t.Fatalf("phase2: fresh compute: HTTP %d: %s", respH.StatusCode, dataH)
			}
			if err := CorruptStoreEntry(f.StoreDir, pl.Key); err != nil {
				t.Fatal(err)
			}
			other := (home + 1) % 3
			respO, dataO := post(t, f.URLs[other]+"/v1/estimate", freshBody)
			if respO.StatusCode != http.StatusOK {
				t.Fatalf("phase2: replay over corrupt store: HTTP %d: %s", respO.StatusCode, dataO)
			}
			if !bytes.Equal(dataH, dataO) {
				t.Fatal("phase2: corrupt store leaked different bytes into the response")
			}
			if q := f.Nodes[other].Snapshot().StoreQuarantined; q == 0 {
				t.Fatal("phase2: corrupt entry served without quarantine")
			}

			// Phase 3: kill the previously-slow node for good; the
			// survivors answer everything, still byte-identical.
			f.Drop(slowNode)
			for idx, body := range reqBodies {
				for n := 0; n < 3; n++ {
					if n == slowNode {
						continue
					}
					resp, err := client.Post(f.URLs[n]+"/v1/estimate", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Fatalf("phase3: request %d via node %d: %v", idx, n, err)
					}
					data, readErr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if readErr != nil {
						t.Fatalf("phase3: request %d via node %d: truncated response with chaos disarmed: %v", idx, n, readErr)
					}
					check("phase3", idx, resp, data)
				}
			}
		})
	}
}
