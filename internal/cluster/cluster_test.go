package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"efl/internal/fault"
	"efl/internal/service"
)

// tinySrc is a fast measurement subject (~1200 instructions), so fleet
// campaigns finish in well under a second per node.
const tinySrc = `
        movi r1, 0
        movi r2, 300
        movi r3, 0x40000000
    loop:
        ld   r4, 0(r3)
        addi r3, r3, 16
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
        .size 8192
`

func estimateBody(t *testing.T, seed uint64, extra map[string]any) []byte {
	t.Helper()
	m := map[string]any{
		"program":  map[string]any{"source": tinySrc, "name": "test"},
		"config":   map[string]any{"mid": 500},
		"runs":     40,
		"seed":     seed,
		"skip_iid": true,
	}
	for k, v := range extra {
		m[k] = v
	}
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// keyOf resolves a request body to its canonical cache key the same way
// every node does: through the service planner.
func keyOf(t *testing.T, path string, body []byte) string {
	t.Helper()
	svc := service.New(service.Options{Workers: 1})
	defer svc.Close()
	pl, err := svc.PlanRequest(path, body)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return pl.Key
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func startFleet(t *testing.T, opts FleetOptions) *Fleet {
	t.Helper()
	f, err := StartFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// indexOf maps a node ID back to its fleet index.
func indexOf(t *testing.T, f *Fleet, id string) int {
	t.Helper()
	for i, nid := range f.IDs {
		if nid == id {
			return i
		}
	}
	t.Fatalf("unknown node %q", id)
	return -1
}

// TestRingDeterministic pins the routing table's fleet-wide agreement:
// every node builds the identical ring from the peer set regardless of
// iteration order, the owner is stable, and the failover sequence starts
// at the owner and covers every member exactly once.
func TestRingDeterministic(t *testing.T) {
	members := []string{"node-0", "node-1", "node-2", "node-3", "node-4"}
	shuffled := []string{"node-3", "node-0", "node-4", "node-2", "node-1"}
	a, b := NewRing(members, 0), NewRing(shuffled, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("member order changed ownership of %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
		seq := a.Sequence(key)
		if len(seq) != len(members) {
			t.Fatalf("Sequence(%q) has %d members, want %d", key, len(seq), len(members))
		}
		if seq[0] != a.Owner(key) {
			t.Fatalf("Sequence(%q) starts at %q, not the owner %q", key, seq[0], a.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Sequence(%q) repeats %q", key, m)
			}
			seen[m] = true
		}
	}
	// Placement is roughly uniform: no member of a 5-node ring owns a
	// wildly disproportionate share of 2000 keys.
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[a.Owner(fmt.Sprintf("balance-%d", i))]++
	}
	for m, c := range counts {
		if c < 100 || c > 900 {
			t.Errorf("member %s owns %d of 2000 keys — ring is badly skewed", m, c)
		}
	}
}

// TestDirStoreRoundTrip pins the shared store's contract: keys are
// SHA-256 hexes only (the key is the path — anything else is traversal),
// missing keys are a clean miss, and bodies round-trip exactly through
// the artifact envelope.
func TestDirStoreRoundTrip(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "a2b4c6d8e0f2a4b6c8d0e2f4a6b8c0d2e4f6a8b0c2d4e6f8a0b2c4d6e8f0a2b4"
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	body := []byte(`{"pwcet":{"1e-09":12345}}`)
	if err := s.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("stored key: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body changed through the store: %s vs %s", got, body)
	}
	for _, bad := range []string{"../../etc/passwd", "short", key[:63] + "/", key[:63] + "G"} {
		if err := s.Put(bad, body); err == nil {
			t.Errorf("store accepted malicious key %q", bad)
		}
		if _, _, err := s.Get(bad); err == nil {
			t.Errorf("store read malicious key %q", bad)
		}
	}
}

// TestFleetRoutesByteIdentical is the acceptance bar: the same estimate
// answered via its home node (fresh compute), via a remote node
// (forwarded hit) and via work-stealing after the home node dies is
// byte-identical in every case, and the re-route after death is
// deterministic — both survivors name the same stand-in node.
func TestFleetRoutesByteIdentical(t *testing.T) {
	f := startFleet(t, FleetOptions{Nodes: 3, Service: service.Options{Workers: 2}})
	body := estimateBody(t, 7, nil)
	key := keyOf(t, "/v1/estimate", body)
	seq := f.Nodes[0].ring.Sequence(key)
	home := indexOf(t, f, seq[0])
	remote := indexOf(t, f, seq[1])

	// Fresh compute on the home node.
	resp1, data1 := post(t, f.URLs[home]+"/v1/estimate", body)
	if resp1.StatusCode != 200 {
		t.Fatalf("fresh estimate: HTTP %d: %s", resp1.StatusCode, data1)
	}
	if r := resp1.Header.Get(RouteHeader); r != RouteLocal {
		t.Fatalf("home node route = %q, want local", r)
	}
	if x := resp1.Header.Get("X-Cache"); x != "miss" {
		t.Fatalf("fresh estimate X-Cache = %q, want miss", x)
	}

	// Same request via a remote node: forwarded to the home node's cache.
	resp2, data2 := post(t, f.URLs[remote]+"/v1/estimate", body)
	if resp2.StatusCode != 200 {
		t.Fatalf("forwarded estimate: HTTP %d: %s", resp2.StatusCode, data2)
	}
	if r := resp2.Header.Get(RouteHeader); r != RouteForward {
		t.Fatalf("remote node route = %q, want forward", r)
	}
	if n := resp2.Header.Get(NodeHeader); n != seq[0] {
		t.Fatalf("forwarded answer came from %q, want home %q", n, seq[0])
	}
	if x := resp2.Header.Get("X-Cache"); x != "hit" {
		t.Fatalf("forwarded X-Cache = %q, want hit", x)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("forwarded response differs from the home node's bytes")
	}
	if hits := f.Nodes[remote].Snapshot().CrossNodeHits; hits != 1 {
		t.Fatalf("remote node counted %d cross-node hits, want 1", hits)
	}

	// Kill the home node: the key re-routes deterministically to the next
	// candidate in its sequence, and the stolen answer is byte-identical
	// (recomputed from scratch — determinism, not copying, is what makes
	// this safe).
	f.Drop(home)
	var standIn string
	for _, i := range []int{remote, indexOf(t, f, seq[2])} {
		resp, data := post(t, f.URLs[i]+"/v1/estimate", body)
		if resp.StatusCode != 200 {
			t.Fatalf("post-kill estimate via %s: HTTP %d: %s", f.IDs[i], resp.StatusCode, data)
		}
		if r := resp.Header.Get(RouteHeader); r != RouteSteal {
			t.Fatalf("post-kill route via %s = %q, want steal", f.IDs[i], r)
		}
		if !bytes.Equal(data1, data) {
			t.Fatalf("stolen response via %s differs from the original bytes", f.IDs[i])
		}
		node := resp.Header.Get(NodeHeader)
		if node == seq[0] {
			t.Fatal("dead node reported as the answering node")
		}
		if standIn == "" {
			standIn = node
			if node != seq[1] {
				t.Fatalf("steal landed on %q, want the next sequence candidate %q", node, seq[1])
			}
		} else if node != standIn {
			t.Fatalf("re-routing is not deterministic: %q then %q answered", standIn, node)
		}
	}
}

// TestFleetSharedStore pins the store route: a campaign computed on the
// home node is served to every other node from the shared store without
// any forwarding hop, byte-identically, and counts as a cross-node hit.
func TestFleetSharedStore(t *testing.T) {
	f := startFleet(t, FleetOptions{Nodes: 3, StoreDir: t.TempDir(), Service: service.Options{Workers: 2}})
	body := estimateBody(t, 11, nil)
	key := keyOf(t, "/v1/estimate", body)
	home := indexOf(t, f, f.Nodes[0].ring.Owner(key))
	other := (home + 1) % 3

	_, data1 := post(t, f.URLs[home]+"/v1/estimate", body)
	resp2, data2 := post(t, f.URLs[other]+"/v1/estimate", body)
	if r := resp2.Header.Get(RouteHeader); r != RouteStore {
		t.Fatalf("second node route = %q, want store", r)
	}
	if x := resp2.Header.Get("X-Cache"); x != "store" {
		t.Fatalf("second node X-Cache = %q, want store", x)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("store-served response differs from the computed bytes")
	}
	if hits := f.Nodes[other].Snapshot().CrossNodeHits; hits != 1 {
		t.Fatalf("store route counted %d cross-node hits, want 1", hits)
	}
	// The store hit hydrated the node's own LRU: the replay is local.
	resp3, _ := post(t, f.URLs[other]+"/v1/estimate", body)
	if r := resp3.Header.Get(RouteHeader); r != RouteLocal {
		t.Fatalf("replay route = %q, want local", r)
	}
}

// TestFleetSingleFlight pins cross-node coalescing: identical requests
// hitting every node concurrently all ride ONE campaign — the home
// node's flight — so the whole fleet pays for exactly one compute.
func TestFleetSingleFlight(t *testing.T) {
	f := startFleet(t, FleetOptions{Nodes: 3, Service: service.Options{Workers: 2}})
	body := estimateBody(t, 13, nil)

	const perNode = 2
	var wg sync.WaitGroup
	results := make(chan []byte, 3*perNode)
	for i := 0; i < 3; i++ {
		for j := 0; j < perNode; j++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, err := http.Post(url+"/v1/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				defer resp.Body.Close()
				data, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != 200 {
					t.Errorf("HTTP %d: %s", resp.StatusCode, data)
					return
				}
				results <- data
			}(f.URLs[i])
		}
	}
	wg.Wait()
	close(results)
	var first []byte
	n := 0
	for data := range results {
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatal("concurrent fleet responses differ")
		}
		n++
	}
	if n != 3*perNode {
		t.Fatalf("%d of %d requests succeeded", n, 3*perNode)
	}
	var misses uint64
	for _, node := range f.Nodes {
		misses += node.Service().Snapshot().Cache.Misses
	}
	if misses != 1 {
		t.Fatalf("fleet ran %d campaigns for %d identical concurrent requests, want 1", misses, 3*perNode)
	}
}

// TestFleetChaosJobPanic pins failure propagation through the routing
// layer: an injected campaign panic on the home node answers a retryable
// 500 to a remote client, poisons no cache anywhere, and the retry
// computes cleanly — with its audit block intact.
func TestFleetChaosJobPanic(t *testing.T) {
	f := startFleet(t, FleetOptions{Nodes: 3, Service: service.Options{Workers: 2}})
	body := estimateBody(t, 17, map[string]any{"audit": true})
	key := keyOf(t, "/v1/estimate", body)
	home := indexOf(t, f, f.Nodes[0].ring.Owner(key))
	other := (home + 1) % 3

	if err := f.Nodes[home].InjectFault(fault.JobPanic); err != nil {
		t.Fatal(err)
	}
	if err := f.Nodes[home].InjectFault(fault.NodeDrop); err == nil {
		t.Fatal("node accepted the fleet-level node-drop fault")
	}

	resp, data := post(t, f.URLs[other]+"/v1/estimate", body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked campaign answered %d (%s), want 500", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("retryable campaign failure without a Retry-After hint")
	}

	// The failed flight cached nothing fleet-wide: the retry is a fresh,
	// clean campaign whose audit block holds.
	resp2, data2 := post(t, f.URLs[other]+"/v1/estimate", body)
	if resp2.StatusCode != 200 {
		t.Fatalf("retry after chaos: HTTP %d: %s", resp2.StatusCode, data2)
	}
	if x := resp2.Header.Get("X-Cache"); x != "hit" && x != "miss" && x != "coalesced" {
		t.Fatalf("retry X-Cache = %q", x)
	}
	var est struct {
		Audit struct {
			Violations int64 `json:"violations"`
			Checks     int64 `json:"checks"`
		} `json:"audit"`
	}
	if err := json.Unmarshal(data2, &est); err != nil {
		t.Fatal(err)
	}
	if est.Audit.Checks == 0 || est.Audit.Violations != 0 {
		t.Fatalf("retried campaign not audit-clean: %+v", est.Audit)
	}
}

// TestFleetKillMidFlight pins degraded-fleet cleanliness: with a node
// dead, an audited estimate routed around the corpse still passes every
// soundness invariant — re-routing changes where the campaign runs,
// never what it computes.
func TestFleetKillMidFlight(t *testing.T) {
	f := startFleet(t, FleetOptions{Nodes: 3, Service: service.Options{Workers: 2}})
	body := estimateBody(t, 19, map[string]any{"audit": true})
	key := keyOf(t, "/v1/estimate", body)
	home := indexOf(t, f, f.Nodes[0].ring.Owner(key))
	f.Drop(home)

	other := (home + 1) % 3
	resp, data := post(t, f.URLs[other]+"/v1/estimate", body)
	if resp.StatusCode != 200 {
		t.Fatalf("degraded fleet: HTTP %d: %s", resp.StatusCode, data)
	}
	if r := resp.Header.Get(RouteHeader); r != RouteSteal {
		t.Fatalf("degraded route = %q, want steal", r)
	}
	var est struct {
		Audit struct {
			Runs       int64 `json:"runs"`
			Checks     int64 `json:"checks"`
			Violations int64 `json:"violations"`
		} `json:"audit"`
	}
	if err := json.Unmarshal(data, &est); err != nil {
		t.Fatal(err)
	}
	if est.Audit.Runs != 40 || est.Audit.Checks == 0 {
		t.Fatalf("audit did not cover the stolen campaign: %+v", est.Audit)
	}
	if est.Audit.Violations != 0 {
		t.Fatalf("stolen campaign violated %d invariants", est.Audit.Violations)
	}
}
