// Package cluster shards the estimation service horizontally: a
// consistent-hash router sends every compute request to the home node of
// its content-addressed cache key, a shared result store makes finished
// campaigns visible fleet-wide, and deterministic work-stealing re-routes
// around saturated or dead nodes.
//
// The whole design leans on one property the single-node service already
// pins: response bodies are pure functions of the SHA-256 cache key
// (simulator determinism + canonical request resolution). Any node may
// therefore serve any key from any replica of the result — routing is a
// performance decision, never a correctness one, and the acceptance bar
// is byte-identical responses regardless of which node answers.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the fleet's node IDs. Every member
// owns VirtualNodes points on the ring; a key's home node is the member
// owning the first point at or after the key's hash. The ring is immutable
// after construction — membership changes (a dropped node) are handled by
// walking Sequence, not by rebuilding the ring, so every node routes from
// the same table and re-routing around a death is deterministic
// fleet-wide.
type Ring struct {
	members []string
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVirtualNodes is the per-member point count used when NewRing is
// given a non-positive count. 64 points per member keeps the expected
// per-member key share within a few percent of uniform for small fleets.
const DefaultVirtualNodes = 64

// NewRing builds a ring over members (order-insensitive; duplicates
// collapse) with vnodes points each (<= 0 selects DefaultVirtualNodes).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(members))
	seen := map[string]bool{}
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically unlikely) break by member so every node
		// sorts the identical table.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's membership in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the home node of key.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.locate(key)].member
}

// Sequence returns every member exactly once, in the deterministic
// failover order for key: the home node first, then each subsequent
// distinct member walking the ring. Routing tries candidates in this
// order, so every node in the fleet re-routes around the same failure to
// the same survivor.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	seq := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	start := r.locate(key)
	for i := 0; i < len(r.points) && len(seq) < len(r.members); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			seq = append(seq, m)
		}
	}
	return seq
}

// locate returns the index of the first point at or after key's hash,
// wrapping past the top of the ring.
func (r *Ring) locate(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// ringHash positions a string on the ring. SHA-256 (truncated to 64 bits)
// rather than a fast non-cryptographic hash: ring placement runs once per
// request against keys that are already SHA-256 hexes, and reusing the
// one hash the repo's determinism story is built on keeps the routing
// table trivially portable across implementations.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
