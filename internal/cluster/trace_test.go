package cluster

// Fleet-wide trace ingestion: a trace uploaded to ONE node must be
// estimable by trace_hash from EVERY node, byte-identically. The shared
// store carries the trace bytes (uploads publish, plan-time resolution
// hydrates), so routing, stealing and store hits all work on traced
// workloads exactly as on benchmark/source ones.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"efl/internal/service"
	"efl/internal/workload"
)

// TestTraceEstimateAcrossFleet uploads to node 0, then asks every node
// (home and non-home alike) for the same trace_hash estimate.
func TestTraceEstimateAcrossFleet(t *testing.T) {
	f := startFleet(t, FleetOptions{
		Nodes:    3,
		StoreDir: t.TempDir(),
		Service:  service.Options{Workers: 2},
	})

	trace, err := workload.GenSpec{
		Name: "fleet-trace", Seed: 21, Records: 300, FootprintBytes: 8 * 1024,
		Locality: 0.6, StoreFrac: 0.3, MeanGap: 2, BlockLen: 64,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.URLs[0]+"/v1/trace", "application/octet-stream", bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	upBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d: %s", resp.StatusCode, upBody)
	}
	var up service.TraceUploadResponse
	if err := json.Unmarshal(upBody, &up); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(trace)
	if want := hex.EncodeToString(sum[:]); up.TraceHash != want {
		t.Fatalf("trace_hash = %s, want %s", up.TraceHash, want)
	}

	body, err := json.Marshal(map[string]any{
		"program":  map[string]any{"trace_hash": up.TraceHash},
		"config":   map[string]any{"mid": 500},
		"runs":     40,
		"seed":     1,
		"skip_iid": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Plan on a fleet node (its service resolves the hash through the
	// shared store) to learn the key's home node.
	pl, err := f.Nodes[0].Service().PlanRequest("/v1/estimate", body)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	home := f.Nodes[0].Owner(pl.Key)

	// Ask the home node first (the reference body), then every non-home
	// node: each must answer 200 with the identical bytes.
	var reference []byte
	hi := indexOf(t, f, home)
	{
		resp, data := post(t, f.URLs[hi]+"/v1/estimate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("home node %s: HTTP %d: %.300s", home, resp.StatusCode, data)
		}
		reference = data
	}
	nonHome := 0
	for i, url := range f.URLs {
		if i == hi {
			continue
		}
		nonHome++
		resp, data := post(t, url+"/v1/estimate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: HTTP %d: %.300s", i, resp.StatusCode, data)
		}
		if !bytes.Equal(data, reference) {
			t.Fatalf("node %d's trace_hash estimate differs from home node %s's", i, home)
		}
	}
	if nonHome == 0 {
		t.Fatal("no non-home node was exercised")
	}
}
