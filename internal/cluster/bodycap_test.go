package cluster

// Regression test for the forwarding path's unbounded response read:
// forward() buffered whatever a peer streamed back (io.ReadAll with no
// limit), unlike the request path's MaxBytesReader — a byzantine peer
// answering 200 with an endless body exhausted the proxying node's memory
// and, when the stream did end, relayed megabytes of garbage to the
// client as a successful response. Post-fix the read is capped at
// maxPeerResponseBytes, the oversized peer is treated like any other
// failed candidate (breaker failure, steal onward), and the counter
// names the byzantine-peer signature in /cluster/metrics.

import (
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"efl/internal/service"
)

// startOversizedServer returns the base URL of a peer that answers every
// POST with 200, result-shaped headers, and a body that keeps streaming
// garbage until the client gives up (capped far past the forwarding
// limit so a pre-fix unbounded reader terminates and the test fails on
// the relayed garbage instead of hanging).
func startOversizedServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 64<<10)
	for i := range chunk {
		chunk[i] = 'x'
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		// 64 MiB ceiling: 16x the forwarding cap.
		for sent := 0; sent < 64<<20; sent += len(chunk) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	})}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestOversizedPeerResponseStolen: a request whose home node streams an
// oversized body is answered by the next candidate with a real result.
func TestOversizedPeerResponseStolen(t *testing.T) {
	evilURL := startOversizedServer(t)
	svc := service.New(service.Options{Workers: 2})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfURL := "http://" + ln.Addr().String()
	node, err := NewNode(Options{
		ID:       "good",
		Peers:    map[string]string{"good": selfURL, "evil": evilURL},
		Service:  svc,
		HopGrace: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: node.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	body := ownedBody(t, node, svc, "evil", nil)
	resp, data := post(t, selfURL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %.200s", resp.StatusCode, data)
	}
	if r := resp.Header.Get(RouteHeader); r != RouteSteal {
		t.Fatalf("route = %q, want steal", r)
	}
	if n := resp.Header.Get(NodeHeader); n != "good" {
		t.Fatalf("answering node = %q, want good", n)
	}
	// Pre-fix, the evil peer's garbage stream was relayed verbatim as the
	// response body; a real result is small, valid JSON.
	if len(data) > maxPeerResponseBytes {
		t.Fatalf("response is %d bytes — the oversized peer body was relayed to the client", len(data))
	}
	var out service.EstimateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("response is not an estimate result: %v (%.100s)", err, data)
	}
	if out.Runs == 0 || out.PWCET == nil {
		t.Fatalf("degenerate result relayed: %+v", out)
	}

	snap := node.Snapshot()
	if snap.OversizedReplies != 1 {
		t.Fatalf("oversized_replies = %d, want 1", snap.OversizedReplies)
	}
	if snap.Breakers["evil"].ConsecutiveFailures == 0 {
		t.Fatal("oversized peer's breaker recorded no failure")
	}
}
