package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"efl/internal/artifact"
)

// Store is the shared content-addressed result store: finished canonical
// response bodies keyed by their SHA-256 cache key. Any implementation
// must be safe for concurrent use by every node in the fleet; because
// bodies are pure functions of the key, concurrent Puts of the same key
// are benign (they race to write identical bytes).
type Store interface {
	// Get returns the stored body for key, if present. A missing key is
	// (nil, false, nil); an error means the store itself misbehaved.
	Get(key string) ([]byte, bool, error)
	// Put stores body under key.
	Put(key string, body []byte) error
}

// resultKind is the artifact envelope kind for stored response bodies.
const resultKind = "result"

// resultPayload is the envelope payload: the exact response bytes,
// base64-encoded. NOT embedded as raw JSON — the envelope encoder's
// re-indentation would silently reformat the body, and the fleet's
// acceptance bar is byte-identity, not JSON equivalence.
type resultPayload struct {
	Body []byte `json:"body"`
}

// DirStore is a Store over a shared directory (NFS mount, bind-mounted
// volume, or plain local disk for a single-host fleet). Each result is
// one artifact envelope (kind "result") written atomically with fsync via
// artifact.WriteFile, so a crashed writer never leaves a torn result for
// the fleet to read; the envelope's schema check rejects files written by
// an incompatible build. Keys shard into 256 subdirectories by their
// first byte so a warm fleet's store never piles every file into one dir.
type DirStore struct {
	dir string
}

// NewDirStore returns a DirStore rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// path maps a key onto its file, refusing anything that is not a SHA-256
// hex string — the key IS the path, so this is the traversal guard.
func (s *DirStore) path(key string) (string, error) {
	if len(key) != 64 {
		return "", fmt.Errorf("cluster: store key %q: want 64 hex chars", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("cluster: store key %q: want lowercase hex", key)
		}
	}
	return filepath.Join(s.dir, key[:2], key+".json"), nil
}

// Get implements Store.
func (s *DirStore) Get(key string) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var payload resultPayload
	if _, err := artifact.Decode(data, resultKind, &payload); err != nil {
		return nil, false, fmt.Errorf("cluster: store entry %s: %w", key, err)
	}
	return payload.Body, true, nil
}

// Put implements Store.
func (s *DirStore) Put(key string, body []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	data, err := artifact.Encode(resultKind, 0, resultPayload{Body: body})
	if err != nil {
		return err
	}
	return artifact.WriteFile(p, data)
}
