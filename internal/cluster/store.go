package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"efl/internal/artifact"
)

// Store is the shared content-addressed result store: finished canonical
// response bodies keyed by their SHA-256 cache key. Any implementation
// must be safe for concurrent use by every node in the fleet; because
// bodies are pure functions of the key, concurrent Puts of the same key
// are benign (they race to write identical bytes).
type Store interface {
	// Get returns the stored body for key, if present. A missing key is
	// (nil, false, nil); an error means the store itself misbehaved. A
	// corrupt entry MUST be a miss, never an error and never served: the
	// fleet's acceptance bar is byte-identical responses, and a store that
	// can hand back rotted bytes silently poisons every node's LRU.
	Get(key string) ([]byte, bool, error)
	// Put stores body under key.
	Put(key string, body []byte) error
}

// resultKind is the artifact envelope kind for stored response bodies.
const resultKind = "result"

// resultPayload is the envelope payload: the exact response bytes,
// base64-encoded (NOT embedded as raw JSON — the envelope encoder's
// re-indentation would silently reformat the body, and the fleet's
// acceptance bar is byte-identity, not JSON equivalence), plus the body's
// SHA-256. The digest is the integrity witness: the store key is the hash
// of the *request* identity, not of the body, so a reader cannot check
// the body against the key — it checks it against the digest recorded at
// Put time, which the same atomic write produced.
type resultPayload struct {
	Body       []byte `json:"body"`
	BodySHA256 string `json:"body_sha256"`
}

// CorruptDirName is the quarantine subdirectory DirStore moves entries
// that fail integrity verification into (relative to the store root).
const CorruptDirName = "corrupt"

// DirStore is a Store over a shared directory (NFS mount, bind-mounted
// volume, or plain local disk for a single-host fleet). Each result is
// one artifact envelope (kind "result") written atomically with fsync via
// artifact.WriteFile, so a crashed writer never leaves a torn result for
// the fleet to read; the envelope's schema check rejects files written by
// an incompatible build. Keys shard into 256 subdirectories by their
// first byte so a warm fleet's store never piles every file into one dir.
//
// Get verifies every entry before serving it: the envelope must decode
// and the body must match its recorded SHA-256. An entry failing either
// check — bit rot, truncation past the atomic-write guarantees (a
// non-atomic network filesystem, a hostile co-tenant), or a digest-less
// file from an older build — is treated as a miss and the file is moved
// to <dir>/corrupt/ for post-mortem, so the fleet recomputes the result
// instead of ever serving rotted bytes. The store self-heals: the fresh
// recompute re-Puts a verified entry under the same key.
type DirStore struct {
	dir string

	mu          sync.Mutex
	quarantined uint64
}

// NewDirStore returns a DirStore rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// path maps a key onto its file, refusing anything that is not a SHA-256
// hex string — the key IS the path, so this is the traversal guard.
func (s *DirStore) path(key string) (string, error) {
	if len(key) != 64 {
		return "", fmt.Errorf("cluster: store key %q: want 64 hex chars", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("cluster: store key %q: want lowercase hex", key)
		}
	}
	return filepath.Join(s.dir, key[:2], key+".json"), nil
}

// Get implements Store. Corrupt or unverifiable entries are quarantined
// and reported as a miss, never as a body and never as an error — the
// route falls through to a fresh compute, exactly as if the entry had
// never been written.
func (s *DirStore) Get(key string) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var payload resultPayload
	if _, err := artifact.Decode(data, resultKind, &payload); err != nil {
		s.quarantine(p)
		return nil, false, nil
	}
	sum := sha256.Sum256(payload.Body)
	if hex.EncodeToString(sum[:]) != payload.BodySHA256 {
		s.quarantine(p)
		return nil, false, nil
	}
	return payload.Body, true, nil
}

// Put implements Store, recording the body's digest alongside it.
func (s *DirStore) Put(key string, body []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	data, err := artifact.Encode(resultKind, 0, resultPayload{
		Body: body, BodySHA256: hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return err
	}
	return artifact.WriteFile(p, data)
}

// quarantine moves a failed entry into the corrupt/ subdirectory (never
// deleting evidence) and counts it. Best-effort: if even the rename fails
// (read-only mount), the file is left behind but still never served, and
// the counter moves either way so the operator sees the store rotting.
func (s *DirStore) quarantine(p string) {
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
	cdir := filepath.Join(s.dir, CorruptDirName)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return
	}
	os.Rename(p, filepath.Join(cdir, filepath.Base(p)))
}

// Quarantined returns how many corrupt entries this store handle has
// quarantined (surfaced in /cluster/metrics so a rotting shared mount is
// diagnosable without log spelunking).
func (s *DirStore) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}
