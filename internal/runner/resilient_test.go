package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapResilientPanicIsolation: a panicking job becomes its own Outcome
// and never takes the campaign or its sibling jobs down.
func TestMapResilientPanicIsolation(t *testing.T) {
	items := []int{0, 1, 2, 3, 4}
	out, err := MapResilient(context.Background(),
		ResilientOptions{Options: Options{Parallelism: 3}},
		func() int { return 0 }, nil, items,
		func(_ context.Context, _ int, _ int, item int) (int, error) {
			if item == 2 {
				panic("deliberate")
			}
			return item * 10, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range out {
		if i == 2 {
			if oc.Status != StatusPanicked {
				t.Fatalf("item 2: status %q, want panicked", oc.Status)
			}
			if !strings.Contains(oc.Error, "deliberate") {
				t.Fatalf("item 2: error %q does not carry the panic value", oc.Error)
			}
			continue
		}
		if !oc.OK() || oc.Value != i*10 {
			t.Fatalf("item %d: %+v, want ok value %d", i, oc, i*10)
		}
	}
}

// TestMapResilientWatchdogNoRetry: a watchdog-classified error is terminal
// on the first attempt even with retries configured — the same cycle
// budget dies identically every time.
func TestMapResilientWatchdogNoRetry(t *testing.T) {
	errBudget := errors.New("budget blown")
	var attempts atomic.Int64
	out, err := MapResilient(context.Background(),
		ResilientOptions{
			Options:    Options{Parallelism: 1},
			Retries:    3,
			IsWatchdog: func(err error) bool { return errors.Is(err, errBudget) },
		},
		func() int { return 0 }, nil, []int{0},
		func(_ context.Context, _ int, _ int, _ int) (int, error) {
			attempts.Add(1)
			return 0, fmt.Errorf("run 0: %w", errBudget)
		})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Status != StatusWatchdog {
		t.Fatalf("status %q, want watchdog", out[0].Status)
	}
	if got := attempts.Load(); got != 1 || out[0].Attempts != 1 {
		t.Fatalf("watchdog job ran %d times (outcome says %d), want exactly 1", got, out[0].Attempts)
	}
}

// TestMapResilientRetryFreshState: a failed attempt discards the worker
// state and the retry runs on freshly constructed state, so a transient
// corruption heals. Also pins that discard sees exactly the states that
// failed.
func TestMapResilientRetryFreshState(t *testing.T) {
	type state struct{ poisoned bool }
	var built, discarded atomic.Int64
	out, err := MapResilient(context.Background(),
		ResilientOptions{Options: Options{Parallelism: 1}, Retries: 1},
		func() *state { built.Add(1); return &state{} },
		func(s *state) {
			if !s.poisoned {
				t.Error("discard called on a healthy state")
			}
			discarded.Add(1)
		},
		[]int{0},
		func(_ context.Context, s *state, _ int, _ int) (int, error) {
			if !s.poisoned {
				s.poisoned = true
				return 0, errors.New("transient")
			}
			t.Error("retry ran on the poisoned state")
			return 7, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// First attempt poisons its state and fails; the retry must get a fresh
	// state, whose zero poisoned field makes the job fail again — proving
	// the state really was rebuilt. Terminal outcome: failed after 2 runs.
	if out[0].Status != StatusFailed || out[0].Attempts != 2 {
		t.Fatalf("outcome %+v, want failed after 2 attempts", out[0])
	}
	if built.Load() != 2 || discarded.Load() != 2 {
		t.Fatalf("built %d discarded %d, want 2 and 2 (initial + rebuild, both poisoned)", built.Load(), discarded.Load())
	}
}

// TestMapResilientRetrySucceeds: a job that fails once and then succeeds
// ends StatusOK with Attempts == 2.
func TestMapResilientRetrySucceeds(t *testing.T) {
	var calls atomic.Int64
	out, err := MapResilient(context.Background(),
		ResilientOptions{Options: Options{Parallelism: 1}, Retries: 2},
		func() int { return 0 }, nil, []int{0},
		func(_ context.Context, _ int, _ int, _ int) (int, error) {
			if calls.Add(1) == 1 {
				return 0, errors.New("transient")
			}
			return 99, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].OK() || out[0].Value != 99 || out[0].Attempts != 2 || out[0].Error != "" {
		t.Fatalf("outcome %+v, want ok value 99 after 2 attempts with no error", out[0])
	}
}

// TestMapResilientWorkerCountInvariance: the full Outcome vector —
// statuses, attempts, error strings — is byte-identical across worker
// counts for a deterministic fn.
func TestMapResilientWorkerCountInvariance(t *testing.T) {
	errBudget := errors.New("budget")
	run := func(parallel int) []Outcome[int] {
		out, err := MapResilient(context.Background(),
			ResilientOptions{
				Options:    Options{Parallelism: parallel},
				Retries:    1,
				IsWatchdog: func(err error) bool { return errors.Is(err, errBudget) },
			},
			func() int { return 0 }, nil,
			[]int{0, 1, 2, 3, 4, 5, 6, 7},
			func(_ context.Context, _ int, _ int, item int) (int, error) {
				switch item % 4 {
				case 1:
					panic(fmt.Sprintf("panic on %d", item))
				case 2:
					return 0, fmt.Errorf("item %d: %w", item, errBudget)
				case 3:
					return 0, fmt.Errorf("item %d failed", item)
				}
				return item, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, p := range []int{2, 4, 8} {
		if got := run(p); !reflect.DeepEqual(got, base) {
			t.Fatalf("parallel=%d outcomes diverge:\n%+v\nwant\n%+v", p, got, base)
		}
	}
}

// TestMapResilientCancellation: context cancellation aborts the campaign
// (non-nil error) and unreached jobs are distinguishable by Attempts == 0.
func TestMapResilientCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapResilient(ctx,
		ResilientOptions{Options: Options{Parallelism: 1}},
		func() int { return 0 }, nil,
		[]int{0, 1, 2, 3},
		func(ctx context.Context, _ int, _ int, item int) (int, error) {
			if item == 1 {
				cancel()
				return 0, ctx.Err()
			}
			return item, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !out[0].OK() {
		t.Fatalf("job 0 completed before the cancel, got %+v", out[0])
	}
	for i := 2; i < 4; i++ {
		if out[i].Attempts != 0 {
			t.Fatalf("job %d ran after cancellation: %+v", i, out[i])
		}
	}
}
