// Package runner is the campaign work engine: a deterministic,
// cancellation-safe worker pool shared by every experiment driver.
//
// The determinism contract has three legs:
//
//  1. Ordered fan-out: Map/MapWithState return results indexed exactly
//     like the input slice, regardless of which worker processed which
//     item or in what order items completed.
//
//  2. Seed stability: per-item randomness must be derived from the master
//     seed and a stable job identity via Seed (never from worker identity,
//     completion order or wall-clock), so results are invariant under the
//     worker count. Campaigns at Parallelism=1 and Parallelism=N produce
//     byte-identical artifacts.
//
//  3. Leak-free cancellation: on the first job error, or when ctx is
//     cancelled, no further jobs start; the pool waits for in-flight jobs
//     to return and then reports the first error. There are no channel
//     hand-offs a worker can block on (work is claimed from an atomic
//     cursor, results land in a pre-sized slice), which is what fixes the
//     collector/feeder deadlock the hand-rolled experiment pools had.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a completion snapshot delivered after each finished job.
type Progress struct {
	Done    int           // jobs completed so far
	Total   int           // total jobs
	Elapsed time.Duration // since the pool started
	// Remaining is the linear-rate ETA over the remaining jobs. It is an
	// estimate for operators, not part of the determinism contract.
	Remaining time.Duration
	// Worker is the pool worker that completed the job. Observability
	// only (live per-worker throughput); results never depend on it.
	Worker int
}

// Options configures a pool run.
type Options struct {
	// Parallelism bounds concurrent jobs (default GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives one snapshot per completed job.
	// Calls are serialised; the callback must not block for long.
	Progress func(Progress)
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Seed derives a deterministic 64-bit seed for a named job from the
// campaign master seed. The identity string must be stable across runs
// and worker counts (benchmark/config names, workload indices — never
// pointers, worker ids or timestamps); this is the seed-derivation leg of
// the package's determinism contract. Never returns 0 so the result can
// always seed generators that reject zero.
func Seed(master uint64, identity string) uint64 {
	h := master ^ 0x9e3779b97f4a7c15
	for _, b := range []byte(identity) {
		h ^= uint64(b)
		h *= 0x100000001b3
		h ^= h >> 29
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Map runs fn over every item and returns the results in item order.
// See MapWithState for the execution and cancellation semantics.
func Map[I, O any](ctx context.Context, opt Options, items []I, fn func(ctx context.Context, idx int, item I) (O, error)) ([]O, error) {
	return MapWithState(ctx, opt, func() struct{} { return struct{}{} },
		items, func(ctx context.Context, _ struct{}, idx int, item I) (O, error) {
			return fn(ctx, idx, item)
		})
}

// MapWithState runs fn over every item on a bounded worker pool and
// returns the results in item order. newState constructs one worker-local
// state value per worker (e.g. a sim.Pool of reusable platforms); fn owns
// it exclusively for the worker's lifetime, so it needs no locking.
//
// Work is claimed from an atomic cursor and results are written to the
// item's slot, so there is no channel a worker or feeder can block on: a
// job error (or ctx cancellation) stops new claims, in-flight jobs run to
// completion, and MapWithState returns only after every worker has
// exited. The first error, annotated with its job index, is returned.
func MapWithState[S, I, O any](ctx context.Context, opt Options, newState func() S, items []I, fn func(ctx context.Context, state S, idx int, item I) (O, error)) ([]O, error) {
	opt = opt.withDefaults()
	n := len(items)
	if n == 0 {
		return []O{}, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]O, n)
	var (
		cursor   atomic.Int64 // next item to claim
		done     atomic.Int64
		mu       sync.Mutex // guards firstErr and Progress calls
		firstErr error
		wg       sync.WaitGroup
	)
	cursor.Store(-1)
	start := time.Now()

	workers := opt.Parallelism
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			state := newState()
			for {
				if ctx.Err() != nil {
					return
				}
				idx := int(cursor.Add(1))
				if idx >= n {
					return
				}
				o, err := fn(ctx, state, idx, items[idx])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("runner: job %d: %w", idx, err)
					}
					mu.Unlock()
					cancel()
					return
				}
				out[idx] = o
				d := int(done.Add(1))
				if opt.Progress != nil {
					elapsed := time.Since(start)
					var remaining time.Duration
					if d > 0 {
						remaining = time.Duration(float64(elapsed) / float64(d) * float64(n-d))
					}
					mu.Lock()
					opt.Progress(Progress{Done: d, Total: n, Elapsed: elapsed, Remaining: remaining, Worker: worker})
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
