package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), Options{Parallelism: 7}, items,
		func(_ context.Context, idx int, item int) (int, error) {
			return item * 2, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	items := make([]string, 50)
	for i := range items {
		items[i] = fmt.Sprintf("job-%d", i)
	}
	run := func(par int) []uint64 {
		out, err := Map(context.Background(), Options{Parallelism: par}, items,
			func(_ context.Context, idx int, id string) (uint64, error) {
				return Seed(42, id), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d: P=1 gave %d, P=8 gave %d", i, a[i], b[i])
		}
	}
}

func TestSeedStableAndDistinct(t *testing.T) {
	if Seed(1, "a") != Seed(1, "a") {
		t.Error("seed not deterministic")
	}
	if Seed(1, "a") == Seed(1, "b") || Seed(1, "a") == Seed(2, "a") {
		t.Error("seeds collide")
	}
	if Seed(0, "") == 0 {
		t.Error("zero seed produced")
	}
}

// TestErrorCancelsWithoutLeak is the regression test for the goroutine
// leak the hand-rolled Figure 4 pool had: its collector returned on the
// first worker error while the remaining workers blocked forever sending
// on an unbuffered channel (and the feeder blocked sending work). The
// runner must instead stop claiming, drain in-flight jobs and return with
// every worker goroutine exited.
func TestErrorCancelsWithoutLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	items := make([]int, 200)
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), Options{Parallelism: 8}, items,
		func(ctx context.Context, idx int, _ int) (int, error) {
			started.Add(1)
			if idx == 3 {
				return 0, boom
			}
			// Simulate campaign work so other workers are mid-job when
			// the error lands — the scenario that deadlocked before.
			time.Sleep(2 * time.Millisecond)
			return 0, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Cancellation stops the fan-out long before all 200 items start.
	if n := started.Load(); n == 200 {
		t.Error("error did not stop new claims")
	}
	// All workers must have exited by return; give the runtime a moment
	// to reap stacks, then compare.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 1000)
	var n atomic.Int64
	_, err := Map(ctx, Options{Parallelism: 4}, items,
		func(ctx context.Context, idx int, _ int) (int, error) {
			if n.Add(1) == 10 {
				cancel()
			}
			return 0, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n.Load() == 1000 {
		t.Error("cancellation did not stop the fan-out")
	}
}

func TestMapWithStatePerWorkerState(t *testing.T) {
	var states atomic.Int64
	items := make([]int, 64)
	out, err := MapWithState(context.Background(), Options{Parallelism: 4},
		func() *int { states.Add(1); v := 0; return &v },
		items, func(_ context.Context, st *int, idx int, _ int) (int, error) {
			*st++ // worker-exclusive: no locking needed
			return *st, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s := states.Load(); s < 1 || s > 4 {
		t.Errorf("%d states created, want 1..4", s)
	}
	total := 0
	for _, v := range out {
		if v < 1 {
			t.Fatalf("state not threaded: %v", out)
		}
		total++
	}
	if total != 64 {
		t.Fatalf("%d results", total)
	}
}

func TestProgressSnapshots(t *testing.T) {
	var snaps []Progress
	items := make([]int, 20)
	_, err := Map(context.Background(), Options{
		Parallelism: 3,
		Progress:    func(p Progress) { snaps = append(snaps, p) },
	}, items, func(_ context.Context, idx int, _ int) (int, error) {
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 20 {
		t.Fatalf("%d snapshots, want 20", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Done != 20 || last.Total != 20 {
		t.Errorf("final snapshot %+v", last)
	}
	if last.Remaining != 0 {
		t.Errorf("final ETA %v, want 0", last.Remaining)
	}
	seen := map[int]bool{}
	for _, p := range snaps {
		if p.Done < 1 || p.Done > 20 || seen[p.Done] {
			t.Fatalf("bad Done sequence: %+v", snaps)
		}
		seen[p.Done] = true
		if p.Done < p.Total && p.Elapsed > 0 && p.Remaining < 0 {
			t.Errorf("negative ETA: %+v", p)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), Options{}, []int(nil),
		func(_ context.Context, _ int, _ int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestParentCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, Options{}, []int{1, 2, 3},
		func(_ context.Context, _ int, _ int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
