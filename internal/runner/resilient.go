package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the hardened half of the work engine: MapResilient runs a
// campaign that must SURVIVE misbehaving jobs instead of dying with them.
// Map/MapWithState implement fail-fast semantics (first error cancels the
// campaign) — the right default for healthy workloads, where an error means
// the campaign itself is broken. MapResilient implements fail-soft
// semantics for campaigns that deliberately run hazardous jobs (fault
// injection, third-party workloads): a panicking, hung or failing job is
// captured as that job's Outcome, its worker state is discarded and
// rebuilt, and every other job still completes. Only context cancellation
// aborts the campaign.
//
// The determinism contract is unchanged: outcomes are indexed like the
// input, and for a deterministic fn the full Outcome vector — statuses,
// attempts, error strings — is invariant under the worker count.

// Status classifies how a job ended.
type Status string

const (
	// StatusOK: the job returned a value.
	StatusOK Status = "ok"
	// StatusPanicked: the job's final attempt panicked; the panic value is
	// in Outcome.Error.
	StatusPanicked Status = "panicked"
	// StatusWatchdog: the job was killed by the deterministic watchdog
	// (ResilientOptions.IsWatchdog matched its error). Watchdog kills are
	// never retried: the same cycle budget dies identically every attempt.
	StatusWatchdog Status = "watchdog"
	// StatusFailed: the job's final attempt returned an ordinary error.
	StatusFailed Status = "failed"
)

// Outcome is one job's terminal result.
type Outcome[O any] struct {
	// Value is the job's result; the zero value unless Status is StatusOK.
	Value O `json:"value"`
	// Status classifies the terminal attempt.
	Status Status `json:"status"`
	// Error is the terminal attempt's error (or panic value) rendered as a
	// string; empty when Status is StatusOK. Deterministic fn errors render
	// deterministically, keeping degraded artifacts byte-stable.
	Error string `json:"error,omitempty"`
	// Attempts is how many times the job ran (>= 1).
	Attempts int `json:"attempts"`
}

// OK reports whether the job produced a value.
func (o Outcome[O]) OK() bool { return o.Status == StatusOK }

// ResilientOptions configures a fail-soft pool run.
type ResilientOptions struct {
	Options
	// Retries is how many times a failed or panicked job is re-run (on the
	// same worker, with freshly constructed state) before its failure is
	// recorded. 0 means every job gets exactly one attempt.
	Retries int
	// IsWatchdog, when non-nil, classifies an error as a deterministic
	// watchdog kill: the job is not retried (it would die identically) and
	// its outcome gets StatusWatchdog. Keeping the classifier pluggable
	// keeps the runner ignorant of simulator error types.
	IsWatchdog func(error) bool
}

// errPanic tags errors synthesised from recovered panics.
var errPanic = errors.New("job panicked")

// MapResilient runs fn over every item and returns one Outcome per item,
// in item order. Per-worker state follows MapWithState (fn owns it without
// locking), with one addition: after any failed attempt the worker's state
// is passed to discard (when non-nil) and rebuilt with newState before the
// next attempt or job, so corruption cannot leak across jobs. A panicking
// fn is recovered and becomes a failed attempt, never a crashed campaign.
//
// Job failures never cancel sibling jobs; the returned error is non-nil
// only when ctx was cancelled (outcomes of unreached jobs are then zero,
// distinguishable by Attempts == 0).
func MapResilient[S, I, O any](ctx context.Context, opt ResilientOptions, newState func() S, discard func(S), items []I, fn func(ctx context.Context, state S, idx int, item I) (O, error)) ([]Outcome[O], error) {
	base := opt.Options.withDefaults()
	n := len(items)
	out := make([]Outcome[O], n)
	if n == 0 {
		return out, nil
	}

	var (
		cursor atomic.Int64
		done   atomic.Int64
		mu     sync.Mutex // serialises Progress calls
		wg     sync.WaitGroup
	)
	cursor.Store(-1)
	start := time.Now()

	workers := base.Parallelism
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			state := newState()
			dirty := false
			// A worker whose final attempt failed still owns a corrupt
			// state: hand it to discard on the way out so quarantine
			// accounting sees every failed state exactly once.
			defer func() {
				if dirty && discard != nil {
					discard(state)
				}
			}()
			for {
				if ctx.Err() != nil {
					return
				}
				idx := int(cursor.Add(1))
				if idx >= n {
					return
				}
				oc := Outcome[O]{}
				for {
					oc.Attempts++
					if dirty {
						// The previous attempt (possibly of the previous
						// job) failed with this state: quarantine it and
						// start clean.
						if discard != nil {
							discard(state)
						}
						state = newState()
						dirty = false
					}
					v, err := runAttempt(ctx, state, idx, items[idx], fn)
					if err == nil {
						oc.Value, oc.Status, oc.Error = v, StatusOK, ""
						break
					}
					if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
						// Cancellation surfacing through the job is the
						// campaign aborting, not a job failure.
						return
					}
					dirty = true
					oc.Error = err.Error()
					switch {
					case opt.IsWatchdog != nil && opt.IsWatchdog(err):
						oc.Status = StatusWatchdog
					case errors.Is(err, errPanic):
						oc.Status = StatusPanicked
					default:
						oc.Status = StatusFailed
					}
					if oc.Status == StatusWatchdog || oc.Attempts > opt.Retries {
						break
					}
				}
				out[idx] = oc
				d := int(done.Add(1))
				if base.Progress != nil {
					elapsed := time.Since(start)
					var remaining time.Duration
					if d > 0 {
						remaining = time.Duration(float64(elapsed) / float64(d) * float64(n-d))
					}
					mu.Lock()
					base.Progress(Progress{Done: d, Total: n, Elapsed: elapsed, Remaining: remaining, Worker: worker})
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// runAttempt executes one attempt with panic isolation: a panicking fn
// becomes an error wrapping errPanic carrying the panic value. The stack
// is deliberately not captured — outcome errors land in artifacts, which
// must stay deterministic.
func runAttempt[S, I, O any](ctx context.Context, state S, idx int, item I, fn func(ctx context.Context, state S, idx int, item I) (O, error)) (v O, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errPanic, r)
		}
	}()
	return fn(ctx, state, idx, item)
}
