package mbpta_test

import (
	"fmt"

	"efl/internal/mbpta"
	"efl/internal/rng"
)

// ExampleAnalyze runs the MBPTA pipeline on a synthetic execution-time
// sample (Gumbel-distributed, as EVT predicts for maxima-like tails).
func ExampleAnalyze() {
	src := rng.New(7)
	truth := mbpta.Gumbel{Mu: 100000, Beta: 400}
	times := make([]float64, 600)
	for i := range times {
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		times[i] = truth.Quantile(u)
	}

	res, err := mbpta.Analyze(times, mbpta.Options{})
	if err != nil {
		panic(err)
	}
	p15 := res.PWCET(1e-15)
	fmt.Printf("i.i.d. gate passed: %v\n", res.IID.Passed)
	fmt.Printf("pWCET@1e-15 above observed max: %v\n", p15 > res.MaxSeen)
	fmt.Printf("pWCET within 2x of the analytic tail: %v\n",
		p15 < 2*truth.QuantileExceedance(1e-15))
	// Output:
	// i.i.d. gate passed: true
	// pWCET@1e-15 above observed max: true
	// pWCET within 2x of the analytic tail: true
}

// ExampleGumbel shows the deep-tail quantile arithmetic MBPTA relies on.
func ExampleGumbel() {
	g := mbpta.Gumbel{Mu: 1000, Beta: 10}
	for _, p := range []float64{1e-9, 1e-15} {
		fmt.Printf("P(X > %.0f) = %.0e\n", g.QuantileExceedance(p), p)
	}
	// Output:
	// P(X > 1207) = 1e-09
	// P(X > 1345) = 1e-15
}
