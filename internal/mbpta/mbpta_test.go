package mbpta

import (
	"errors"
	"math"
	"testing"

	"efl/internal/rng"
	"efl/internal/stats"
)

// gumbelSample draws n samples from Gumbel(mu, beta) by inversion.
func gumbelSample(src rng.Stream, g Gumbel, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		out[i] = g.Quantile(u)
	}
	return out
}

func TestGumbelCDFQuantileRoundTrip(t *testing.T) {
	g := Gumbel{Mu: 100, Beta: 7}
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
		x := g.Quantile(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestGumbelCCDFDeepTail(t *testing.T) {
	g := Gumbel{Mu: 1000, Beta: 10}
	for _, p := range []float64{1e-15, 1e-17, 1e-19} {
		x := g.QuantileExceedance(p)
		got := g.CCDF(x)
		if math.Abs(got-p)/p > 1e-6 {
			t.Errorf("CCDF(QuantileExceedance(%g)) = %g", p, got)
		}
		// The deep-tail quantile is approximately mu + beta*ln(1/p).
		approx := g.Mu + g.Beta*math.Log(1/p)
		if math.Abs(x-approx) > 1e-6*approx {
			t.Errorf("deep tail quantile %v far from asymptote %v", x, approx)
		}
	}
}

func TestGumbelMeanVar(t *testing.T) {
	g := Gumbel{Mu: 50, Beta: 4}
	src := rng.New(1)
	xs := gumbelSample(src, g, 200000)
	if m := stats.Mean(xs); math.Abs(m-g.Mean()) > 0.1 {
		t.Errorf("sample mean %v vs analytic %v", m, g.Mean())
	}
	if v := stats.Variance(xs); math.Abs(v-g.Var())/g.Var() > 0.05 {
		t.Errorf("sample var %v vs analytic %v", v, g.Var())
	}
}

func TestFitGumbelMomentsRecovers(t *testing.T) {
	src := rng.New(2)
	truth := Gumbel{Mu: 1000, Beta: 25}
	xs := gumbelSample(src, truth, 20000)
	fit, err := FitGumbelMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-truth.Mu) > 2 || math.Abs(fit.Beta-truth.Beta) > 1.5 {
		t.Fatalf("moments fit %v far from truth %v", fit, truth)
	}
}

func TestFitGumbelMLRecovers(t *testing.T) {
	src := rng.New(3)
	truth := Gumbel{Mu: 5000, Beta: 120}
	xs := gumbelSample(src, truth, 20000)
	fit, err := FitGumbelML(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-truth.Mu)/truth.Mu > 0.01 || math.Abs(fit.Beta-truth.Beta)/truth.Beta > 0.05 {
		t.Fatalf("ML fit %v far from truth %v", fit, truth)
	}
	// The ML fit must pass a KS test against its own CDF.
	ks, err := stats.KolmogorovSmirnov1(xs, fit.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Rejected {
		t.Fatalf("ML fit rejected by KS: %+v", ks)
	}
}

func TestFitDegenerate(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 42
	}
	if _, err := FitGumbelMoments(xs); err != ErrDegenerateSample {
		t.Fatalf("moments on constant sample: err=%v", err)
	}
	if _, err := FitGumbelML(xs); err != ErrDegenerateSample {
		t.Fatalf("ML on constant sample: err=%v", err)
	}
}

func TestFitTooFew(t *testing.T) {
	if _, err := FitGumbelMoments([]float64{1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestBlockMaxima(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 3, 9, 0, 7} // blocks of 3: 5, 8, 9
	m, err := BlockMaxima(xs, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 8, 9}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("maxima = %v, want %v", m, want)
		}
	}
	// Trailing partial block discarded.
	m, err = BlockMaxima(append(xs, 100), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("partial block not discarded: %v", m)
	}
	if _, err := BlockMaxima(xs, 0, 1); err == nil {
		t.Fatal("block=0 accepted")
	}
	if _, err := BlockMaxima(xs, 3, 10); err == nil {
		t.Fatal("minBlocks violation accepted")
	}
}

func TestTestIIDAcceptsIID(t *testing.T) {
	src := rng.New(4)
	accepted := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		xs := gumbelSample(src, Gumbel{Mu: 100, Beta: 5}, 300)
		rep, err := TestIID(xs)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Passed {
			accepted++
		}
	}
	if accepted < trials*8/10 {
		t.Fatalf("i.i.d. gate accepted only %d/%d genuinely i.i.d. samples", accepted, trials)
	}
}

func TestTestIIDRejectsTrend(t *testing.T) {
	src := rng.New(5)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = float64(i) + src.Float64() // strong drift
	}
	rep, err := TestIID(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatalf("i.i.d. gate passed a drifting sample: %+v", rep)
	}
}

func TestAnalyzePWCETBoundsECDF(t *testing.T) {
	// The pWCET at modest probabilities must upper-bound the empirical
	// observations: at p = 1/N it should be near the sample max, and it
	// must be monotone decreasing in p.
	src := rng.New(6)
	xs := gumbelSample(src, Gumbel{Mu: 10000, Beta: 150}, 1000)
	res, err := Analyze(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p15 := res.PWCET(1e-15)
	p17 := res.PWCET(1e-17)
	p19 := res.PWCET(1e-19)
	if !(p15 <= p17 && p17 <= p19) {
		t.Fatalf("pWCET not monotone: %v %v %v", p15, p17, p19)
	}
	if p15 < res.MaxSeen {
		t.Fatalf("pWCET(1e-15)=%v below observed max %v", p15, res.MaxSeen)
	}
	// Sanity: the extrapolation should be within a small factor of max.
	if p19 > res.MaxSeen*3 {
		t.Fatalf("pWCET(1e-19)=%v implausibly far above max %v", p19, res.MaxSeen)
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 777
	}
	res, err := Analyze(xs, Options{SkipIIDTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degenerate {
		t.Fatal("constant sample not flagged degenerate")
	}
	if res.PWCET(1e-15) != 777 {
		t.Fatalf("degenerate pWCET = %v", res.PWCET(1e-15))
	}
}

func TestAnalyzeRejectsNonIID(t *testing.T) {
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = float64(i)
	}
	if _, err := Analyze(xs, Options{}); err == nil {
		t.Fatal("Analyze accepted a non-i.i.d. sample")
	}
}

func TestAnalyzeTooFew(t *testing.T) {
	if _, err := Analyze([]float64{1, 2, 3}, Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCCDFPointInvertsPWCET(t *testing.T) {
	src := rng.New(7)
	xs := gumbelSample(src, Gumbel{Mu: 100, Beta: 3}, 1000)
	res, err := Analyze(xs, Options{SkipIIDTests: true})
	if err != nil {
		t.Fatal(err)
	}
	p := 1e-12
	x := res.PWCET(p)
	if x == res.MaxSeen {
		// Clamped at the empirical max: CCDF there may exceed p.
		t.Skip("estimate clamped at empirical max")
	}
	got := res.CCDFPoint(x)
	if math.Abs(got-p)/p > 1e-3 {
		t.Fatalf("CCDFPoint(PWCET(%g)) = %g", p, got)
	}
}

func TestCollectorConverges(t *testing.T) {
	src := rng.New(8)
	truth := Gumbel{Mu: 50000, Beta: 400}
	measure := func() float64 {
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		return truth.Quantile(u)
	}
	c := &Collector{Measure: measure}
	res, times, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 100 || len(times) > 1000 {
		t.Fatalf("collector used %d runs", len(times))
	}
	if res.Runs != len(times) && res.Runs > len(times) {
		t.Fatalf("result runs %d vs collected %d", res.Runs, len(times))
	}
	est := res.PWCET(1e-15)
	// Compare with the analytic per-run deep-tail quantile.
	analytic := truth.QuantileExceedance(1e-15)
	if est < truth.Mu || est > analytic*2 {
		t.Fatalf("pWCET %v implausible (analytic %v)", est, analytic)
	}
}

func TestCollectorNilMeasure(t *testing.T) {
	c := &Collector{}
	if _, _, err := c.Run(); err == nil {
		t.Fatal("nil Measure accepted")
	}
}

func TestConvergenceCriterion(t *testing.T) {
	c := ConvergenceCriterion{Prob: 1e-15, Tol: 0.02}
	if !c.Converged(100, 101) {
		t.Fatal("1% change should converge at 2% tol")
	}
	if c.Converged(100, 105) {
		t.Fatal("5% change should not converge at 2% tol")
	}
	if !c.Converged(0, 0) || c.Converged(0, 1) {
		t.Fatal("zero-prev edge cases broken")
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	o := Options{}
	o.fill(400)
	if o.Alpha != 0.05 || o.MinBlocks != 20 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.BlockSize < 2 || 400/o.BlockSize < o.MinBlocks {
		t.Fatalf("block size %d incompatible with 400 samples", o.BlockSize)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	src := rng.New(1)
	xs := gumbelSample(src, Gumbel{Mu: 1000, Beta: 20}, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Analyze(xs, Options{SkipIIDTests: true})
	}
}

// TestQuantileEVariantsRejectOutOfRange pins the error-returning quantile
// entry points: out-of-range probabilities are errors matching
// ErrProbabilityRange, never panics — these paths are reachable straight
// from service request JSON.
func TestQuantileEVariantsRejectOutOfRange(t *testing.T) {
	g := Gumbel{Mu: 100, Beta: 10}
	gpd := GPD{Sigma: 5, Xi: 0.1}
	bad := []float64{0, 1, -1, 2, math.NaN(), math.Inf(1)}
	for _, p := range bad {
		if _, err := g.QuantileE(p); !errors.Is(err, ErrProbabilityRange) {
			t.Errorf("Gumbel.QuantileE(%v) err = %v", p, err)
		}
		if _, err := g.QuantileExceedanceE(p); !errors.Is(err, ErrProbabilityRange) {
			t.Errorf("Gumbel.QuantileExceedanceE(%v) err = %v", p, err)
		}
		if _, err := gpd.QuantileExceedanceE(p); !errors.Is(err, ErrProbabilityRange) {
			t.Errorf("GPD.QuantileExceedanceE(%v) err = %v", p, err)
		}
	}
	// In-range values agree with the legacy panicking variants.
	for _, p := range []float64{1e-15, 0.01, 0.5, 0.999} {
		if v, err := g.QuantileE(p); err != nil || v != g.Quantile(p) {
			t.Errorf("QuantileE(%v) = %v, %v", p, v, err)
		}
		if v, err := g.QuantileExceedanceE(p); err != nil || v != g.QuantileExceedance(p) {
			t.Errorf("QuantileExceedanceE(%v) = %v, %v", p, v, err)
		}
		if v, err := gpd.QuantileExceedanceE(p); err != nil || v != gpd.QuantileExceedance(p) {
			t.Errorf("GPD QuantileExceedanceE(%v) = %v, %v", p, v, err)
		}
	}
}

// TestPWCETEErrorsNotPanics pins the analysis-level error variants on both
// EVT routes, and that the legacy variants still panic (their documented
// contract) rather than silently returning garbage.
func TestPWCETEErrorsNotPanics(t *testing.T) {
	src := rng.New(99)
	times := gumbelSample(src, Gumbel{Mu: 10000, Beta: 120}, 400)
	res, err := Analyze(times, Options{SkipIIDTests: true})
	if err != nil {
		t.Fatal(err)
	}
	pot, err := AnalyzePOT(times, POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 1, -3, math.NaN()} {
		if _, err := res.PWCETE(p); !errors.Is(err, ErrProbabilityRange) {
			t.Errorf("Result.PWCETE(%v) err = %v", p, err)
		}
		if _, err := pot.PWCETE(p); !errors.Is(err, ErrProbabilityRange) {
			t.Errorf("POTResult.PWCETE(%v) err = %v", p, err)
		}
		if _, _, _, err := CrossCheck(times, p); !errors.Is(err, ErrProbabilityRange) {
			t.Errorf("CrossCheck(%v) err = %v", p, err)
		}
	}
	if v, err := res.PWCETE(1e-15); err != nil || v != res.PWCET(1e-15) {
		t.Errorf("PWCETE(1e-15) = %v, %v", v, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("legacy PWCET(0) did not panic")
		}
	}()
	res.PWCET(0)
}
