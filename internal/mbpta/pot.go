package mbpta

import (
	"fmt"
	"math"
	"sort"

	"efl/internal/stats"
)

// This file implements the peaks-over-threshold (POT) alternative to
// block maxima. Where block maxima fit a Gumbel to per-block records, POT
// fits a Generalised Pareto Distribution (GPD) to the excesses over a
// high threshold. Both are standard EVT routes used in the MBPTA
// literature; the repository offers both so their pWCETs can be
// cross-checked (a large disagreement flags a fragile tail).

// GPD is a Generalised Pareto Distribution of excesses over a threshold:
// location 0, scale Sigma > 0, shape Xi. Xi = 0 degenerates to the
// exponential tail; Xi < 0 gives a finite right endpoint; Xi > 0 a heavy
// tail (suspicious for execution times on a bounded platform).
type GPD struct {
	Sigma float64
	Xi    float64
}

// CCDF returns P(excess > x) for x >= 0.
func (g GPD) CCDF(x float64) float64 {
	if x < 0 {
		return 1
	}
	if g.Sigma <= 0 {
		// A degenerate (zero-valued) fit is a point mass at zero; without
		// this guard x == 0 evaluates exp(-0/0) = NaN.
		return 0
	}
	if g.Xi == 0 {
		return math.Exp(-x / g.Sigma)
	}
	arg := 1 + g.Xi*x/g.Sigma
	if arg <= 0 {
		// Beyond the finite endpoint (Xi < 0).
		return 0
	}
	return math.Pow(arg, -1/g.Xi)
}

// QuantileExceedance returns the excess whose exceedance probability is p.
// It panics on an out-of-range p; use QuantileExceedanceE where p comes
// from untrusted input.
func (g GPD) QuantileExceedance(p float64) float64 {
	v, err := g.QuantileExceedanceE(p)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// QuantileExceedanceE is QuantileExceedance with an error return instead
// of a panic.
func (g GPD) QuantileExceedanceE(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, fmt.Errorf("GPD exceedance quantile: %w", err)
	}
	if g.Sigma <= 0 {
		// Point mass at zero (see CCDF): every quantile is 0.
		return 0, nil
	}
	if g.Xi == 0 {
		return -g.Sigma * math.Log(p), nil
	}
	return g.Sigma / g.Xi * (math.Pow(p, -g.Xi) - 1), nil
}

// String implements fmt.Stringer.
func (g GPD) String() string { return fmt.Sprintf("GPD(sigma=%.4g, xi=%.4g)", g.Sigma, g.Xi) }

// FitGPDMoments fits a GPD to excesses by the method of moments:
//
//	xi    = (1 - mean^2/var) / 2
//	sigma = mean * (1 + mean^2/var) / 2
//
// Valid when xi < 1/2 (finite variance), which execution-time excesses on
// a bounded platform satisfy.
func FitGPDMoments(excesses []float64) (GPD, error) {
	if len(excesses) < 10 {
		return GPD{}, stats.ErrTooFewSamples
	}
	m := stats.Mean(excesses)
	v := stats.Variance(excesses)
	if m <= 0 {
		return GPD{}, fmt.Errorf("mbpta: non-positive mean excess")
	}
	if v <= 0 || v < 1e-12*m*m {
		return GPD{}, ErrDegenerateSample
	}
	r := m * m / v
	return GPD{
		Xi:    (1 - r) / 2,
		Sigma: m * (1 + r) / 2,
	}, nil
}

// POTResult is the outcome of a peaks-over-threshold analysis.
type POTResult struct {
	Runs       int
	Threshold  float64
	Excesses   int     // sample points above the threshold
	Rate       float64 // P(one run exceeds the threshold)
	Fit        GPD
	MaxSeen    float64
	Degenerate bool
}

// POTOptions configures AnalyzePOT.
type POTOptions struct {
	// ThresholdQuantile selects the threshold as this empirical quantile
	// of the sample (default 0.85 — keeps the top 15% as excesses).
	ThresholdQuantile float64
	// MinExcesses is the minimum exceedance count for a fit (default 20).
	MinExcesses int
}

// AnalyzePOT runs the POT pipeline over execution times (the caller is
// expected to have applied the i.i.d. gate, e.g. via TestIID).
func AnalyzePOT(times []float64, opt POTOptions) (*POTResult, error) {
	if opt.ThresholdQuantile == 0 {
		opt.ThresholdQuantile = 0.85
	}
	if opt.ThresholdQuantile <= 0 || opt.ThresholdQuantile >= 1 {
		return nil, fmt.Errorf("mbpta: threshold quantile %v outside (0,1)", opt.ThresholdQuantile)
	}
	if opt.MinExcesses == 0 {
		opt.MinExcesses = 20
	}
	if len(times) < 5*opt.MinExcesses {
		return nil, stats.ErrTooFewSamples
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	res := &POTResult{Runs: len(times), MaxSeen: sorted[len(sorted)-1]}
	// The threshold quantile reuses the sorted copy made for MaxSeen:
	// stats.Quantile would copy and sort the sample a second time.
	res.Threshold = stats.QuantileSorted(sorted, opt.ThresholdQuantile)

	var excesses []float64
	for _, t := range times {
		if t > res.Threshold {
			excesses = append(excesses, t-res.Threshold)
		}
	}
	res.Excesses = len(excesses)
	res.Rate = float64(len(excesses)) / float64(len(times))
	if res.Excesses < opt.MinExcesses {
		return nil, fmt.Errorf("mbpta: only %d excesses over the %.0f threshold (need %d)",
			res.Excesses, res.Threshold, opt.MinExcesses)
	}
	fit, err := FitGPDMoments(excesses)
	if err == ErrDegenerateSample {
		res.Degenerate = true
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	return res, nil
}

// PWCET returns the POT pWCET estimate at per-run exceedance probability
// p: threshold + GPD excess quantile at p/rate. Like the block-maxima
// estimate it never falls below the observed maximum.
func (r *POTResult) PWCET(p float64) float64 {
	v, err := r.PWCETE(p)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// PWCETE is PWCET with an error return instead of a panic on an
// out-of-range probability.
func (r *POTResult) PWCETE(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, fmt.Errorf("POT pWCET: %w", err)
	}
	if r.Degenerate {
		return r.MaxSeen, nil
	}
	cond := p / r.Rate // P(excess > x | above threshold)
	if cond >= 1 {
		return r.MaxSeen, nil
	}
	ex, err := r.Fit.QuantileExceedanceE(cond)
	if err != nil {
		return 0, err
	}
	est := r.Threshold + ex
	if est < r.MaxSeen {
		return r.MaxSeen, nil
	}
	return est, nil
}

// CrossCheck compares the block-maxima and POT pWCET estimates at prob and
// returns their relative disagreement |bm-pot| / max(bm,pot). MBPTA
// practice treats a small disagreement as evidence the extrapolation is
// stable.
func CrossCheck(times []float64, prob float64) (bm, pot, disagreement float64, err error) {
	if err = checkProb(prob); err != nil {
		// Validate before the two analyses: a bad probability should not
		// cost two EVT fits (or reach a quantile panic path).
		return 0, 0, 0, err
	}
	bmRes, err := Analyze(times, Options{SkipIIDTests: true})
	if err != nil {
		return 0, 0, 0, err
	}
	potRes, err := AnalyzePOT(times, POTOptions{})
	if err != nil {
		return 0, 0, 0, err
	}
	if bm, err = bmRes.PWCETE(prob); err != nil {
		return 0, 0, 0, err
	}
	if pot, err = potRes.PWCETE(prob); err != nil {
		return 0, 0, 0, err
	}
	hi := math.Max(bm, pot)
	if hi == 0 {
		return bm, pot, 0, nil
	}
	return bm, pot, math.Abs(bm-pot) / hi, nil
}
