package mbpta

import (
	"fmt"
	"math"

	"efl/internal/stats"
)

// Options configures the MBPTA protocol.
type Options struct {
	// BlockSize is the block-maxima block size. The default (0) selects
	// a size targeting around 30-50 blocks from the available sample.
	BlockSize int
	// MinBlocks is the minimum number of block maxima required for a fit
	// (default 20).
	MinBlocks int
	// Alpha is the i.i.d. test significance level; only 0.05 is supported
	// (the paper's value) and it is recorded for reporting.
	Alpha float64
	// SkipIIDTests disables the i.i.d. gate (used by experiments that test
	// i.i.d. separately, or by ablations that deliberately break it).
	SkipIIDTests bool
}

func (o *Options) fill(n int) {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.MinBlocks == 0 {
		o.MinBlocks = 20
	}
	if o.BlockSize == 0 {
		// Aim for ~40 blocks, but never fewer than MinBlocks and never a
		// block smaller than 2.
		bs := n / 40
		if bs < 2 {
			bs = 2
		}
		for n/bs < o.MinBlocks && bs > 2 {
			bs--
		}
		o.BlockSize = bs
	}
}

// validate rejects option/sample combinations that cannot produce a fit,
// before any statistical work runs. The streaming estimator hits this path
// repeatedly at small sample counts, so the error must be cheap, early and
// descriptive — previously a too-large BlockSize only surfaced from
// BlockMaxima after the i.i.d. battery had already run over the sample.
// Call after fill(n) so the auto-picked BlockSize is covered too.
func (o *Options) validate(n int) error {
	if o.BlockSize < 2 {
		return fmt.Errorf("mbpta: BlockSize %d is not a usable block size (need >= 2)", o.BlockSize)
	}
	if blocks := n / o.BlockSize; blocks < o.MinBlocks {
		return fmt.Errorf("mbpta: %d samples with BlockSize %d yield only %d full blocks, need at least MinBlocks=%d (collect >= %d samples or shrink BlockSize)",
			n, o.BlockSize, blocks, o.MinBlocks, o.BlockSize*o.MinBlocks)
	}
	return nil
}

// IIDReport carries the outcome of the MBPTA compliance tests (paper §4.2):
// Wald-Wolfowitz for independence (accept when |Z| < 1.96) and two-sample
// Kolmogorov-Smirnov between the two halves of the observation sequence for
// identical distribution (accept when p > 0.05). A Ljung-Box portmanteau
// test is reported as a supplementary independence diagnostic (it detects
// linear autocorrelation the runs test can miss); it does not gate Passed,
// which follows the paper's two-test criterion exactly.
type IIDReport struct {
	WW     stats.RunsTestResult
	KS     stats.KSResult
	LB     stats.LjungBoxResult
	Passed bool
}

// TestIID runs the paper's i.i.d. battery over an execution-time sample in
// observation order.
func TestIID(times []float64) (IIDReport, error) {
	if len(times) < 20 {
		return IIDReport{}, stats.ErrTooFewSamples
	}
	ww, err := stats.WaldWolfowitz(times)
	if err != nil {
		return IIDReport{}, fmt.Errorf("mbpta: runs test: %w", err)
	}
	half := len(times) / 2
	ks, err := stats.KolmogorovSmirnov2(times[:half], times[half:])
	if err != nil {
		return IIDReport{}, fmt.Errorf("mbpta: KS test: %w", err)
	}
	rep := IIDReport{WW: ww, KS: ks, Passed: !ww.Rejected && !ks.Rejected}
	if lb, err := stats.LjungBox(times, 0); err == nil {
		rep.LB = lb
	}
	return rep, nil
}

// Result is the outcome of one MBPTA analysis.
type Result struct {
	Runs       int    // number of execution-time observations used
	BlockSize  int    // block-maxima block size
	NumBlocks  int    // number of blocks fitted
	Fit        Gumbel // fitted tail distribution (of block maxima)
	FitKS      stats.KSResult
	IID        IIDReport
	IIDChecked bool
	MaxSeen    float64 // high-water mark of the observations
	Degenerate bool    // sample was (near-)constant; pWCET = MaxSeen
}

// Analyze runs the MBPTA pipeline over the execution times (in observation
// order): i.i.d. gate, block maxima, Gumbel ML fit, fit validation.
func Analyze(times []float64, opt Options) (*Result, error) {
	if len(times) < 20 {
		return nil, stats.ErrTooFewSamples
	}
	opt.fill(len(times))
	if err := opt.validate(len(times)); err != nil {
		return nil, err
	}
	res := &Result{Runs: len(times), BlockSize: opt.BlockSize, MaxSeen: stats.Max(times)}
	if !opt.SkipIIDTests {
		iid, err := TestIID(times)
		if err != nil {
			return nil, err
		}
		res.IID = iid
		res.IIDChecked = true
		if !iid.Passed {
			return res, fmt.Errorf("mbpta: sample failed i.i.d. tests (WW |Z|=%.3f, KS p=%.4f)",
				iid.WW.AbsZ, iid.KS.PValue)
		}
	}
	maxima, err := BlockMaxima(times, opt.BlockSize, opt.MinBlocks)
	if err != nil {
		return nil, err
	}
	res.NumBlocks = len(maxima)
	fit, err := FitGumbelML(maxima)
	if err == ErrDegenerateSample {
		// Constant execution time: the pWCET at any probability is the
		// observed value itself.
		res.Degenerate = true
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	if ks, err := stats.KolmogorovSmirnov1(maxima, fit.CDF); err == nil {
		res.FitKS = ks
	}
	return res, nil
}

// PWCET returns the pWCET estimate at per-run exceedance probability p
// (e.g. 1e-15): the execution time whose probability of being exceeded by
// one run is at most p. The fitted distribution describes block maxima of
// BlockSize runs, so the per-run probability is first converted to a
// per-block probability: P(block max > x) = 1-(1-p)^B, computed stably for
// tiny p. The estimate is never below the observed maximum (EVT
// extrapolates the tail; the empirical part is exact).
func (r *Result) PWCET(p float64) float64 {
	v, err := r.PWCETE(p)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// PWCETE is PWCET with an error return instead of a panic on an
// out-of-range probability — the variant servers must use, where p
// arrives from untrusted request JSON.
func (r *Result) PWCETE(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, fmt.Errorf("pWCET: %w", err)
	}
	if r.Degenerate {
		return r.MaxSeen, nil
	}
	// pBlock = 1-(1-p)^B = -expm1(B*log1p(-p)), stable for small p.
	pBlock := -math.Expm1(float64(r.BlockSize) * math.Log1p(-p))
	est, err := r.Fit.QuantileExceedanceE(pBlock)
	if err != nil {
		return 0, err
	}
	if est < r.MaxSeen {
		return r.MaxSeen, nil
	}
	return est, nil
}

// CCDFPoint returns the fitted per-run exceedance probability at execution
// time x: P(one run > x) = 1 - (1 - P(block max > x))^(1/B).
func (r *Result) CCDFPoint(x float64) float64 {
	if r.Degenerate {
		if x >= r.MaxSeen {
			return 0
		}
		return 1
	}
	pb := r.Fit.CCDF(x)
	// per-run = 1-(1-pb)^(1/B) = -expm1(log1p(-pb)/B)
	return -math.Expm1(math.Log1p(-pb) / float64(r.BlockSize))
}

// ConvergenceCriterion decides when enough runs have been collected: the
// MBPTA convergence loop adds observations until the pWCET estimate at the
// target probability is stable within tol (relative).
type ConvergenceCriterion struct {
	Prob float64 // target exceedance probability (e.g. 1e-15)
	Tol  float64 // relative stability tolerance (e.g. 0.02)
}

// Converged reports whether estimates prev and cur agree within tolerance.
func (c ConvergenceCriterion) Converged(prev, cur float64) bool {
	if prev == 0 {
		return cur == 0
	}
	return math.Abs(cur-prev)/math.Abs(prev) <= c.Tol
}

// Collector runs the iterative MBPTA protocol: it pulls batches of
// execution times from a measurement source until the i.i.d. gate passes
// and the pWCET estimate converges, mirroring the paper's "the software
// unit under study is executed enough times according to MBPTA's
// convergence criteria" (§3.3; 300-1,000 runs in practice).
type Collector struct {
	// Measure produces the execution time of one fresh run.
	Measure func() float64
	// InitialRuns is the first batch size (default 100).
	InitialRuns int
	// StepRuns is the batch added per iteration (default 50).
	StepRuns int
	// MaxRuns caps the total (default 1000, the paper's ceiling).
	MaxRuns int
	// Criterion is the convergence rule (default: 1e-15 within 2%).
	Criterion ConvergenceCriterion
	// Options forwards to Analyze.
	Options Options
}

// Run executes the protocol and returns the final analysis, the collected
// execution times, and an error if the sample never reached an analysable
// state. A sample that exhausts MaxRuns returns the last analysis with a
// nil error if that analysis succeeded (matching practice: the run budget
// is the operative stop condition).
func (c *Collector) Run() (*Result, []float64, error) {
	if c.Measure == nil {
		return nil, nil, fmt.Errorf("mbpta: Collector.Measure is nil")
	}
	if c.InitialRuns == 0 {
		c.InitialRuns = 100
	}
	if c.StepRuns == 0 {
		c.StepRuns = 50
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = 1000
	}
	if c.Criterion.Prob == 0 {
		c.Criterion = ConvergenceCriterion{Prob: 1e-15, Tol: 0.02}
	}
	// Fast-fail configurations the run budget can never satisfy: an
	// explicit BlockSize so large that even MaxRuns observations produce
	// fewer than MinBlocks blocks would otherwise burn the whole budget
	// before surfacing the error.
	if c.Options.BlockSize != 0 {
		capOpt := c.Options
		capOpt.fill(c.MaxRuns)
		if err := capOpt.validate(c.MaxRuns); err != nil {
			return nil, nil, fmt.Errorf("mbpta: unsatisfiable with MaxRuns=%d: %w", c.MaxRuns, err)
		}
	}
	var times []float64
	for len(times) < c.InitialRuns {
		times = append(times, c.Measure())
	}
	var prevEst float64
	var lastRes *Result
	var lastErr error
	havePrev := false
	for {
		res, err := Analyze(times, c.Options)
		lastRes, lastErr = res, err
		if err == nil {
			est := res.PWCET(c.Criterion.Prob)
			if havePrev && c.Criterion.Converged(prevEst, est) {
				return res, times, nil
			}
			prevEst, havePrev = est, true
		}
		if len(times) >= c.MaxRuns {
			if lastErr != nil {
				return nil, times, fmt.Errorf("mbpta: exhausted %d runs: %w", c.MaxRuns, lastErr)
			}
			return lastRes, times, nil
		}
		for i := 0; i < c.StepRuns && len(times) < c.MaxRuns; i++ {
			times = append(times, c.Measure())
		}
	}
}
