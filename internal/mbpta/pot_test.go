package mbpta

import (
	"math"
	"testing"

	"efl/internal/rng"
	"efl/internal/stats"
)

// expSample draws n exponential(σ) samples (a GPD with Xi = 0).
func expSample(src rng.Stream, sigma float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		out[i] = -sigma * math.Log(u)
	}
	return out
}

func TestGPDCCDFQuantileRoundTrip(t *testing.T) {
	for _, g := range []GPD{{Sigma: 10, Xi: 0}, {Sigma: 5, Xi: -0.2}, {Sigma: 5, Xi: 0.1}} {
		for _, p := range []float64{1e-3, 1e-6, 1e-12} {
			x := g.QuantileExceedance(p)
			got := g.CCDF(x)
			if math.Abs(got-p)/p > 1e-6 {
				t.Errorf("%v: CCDF(Q(%g)) = %g", g, p, got)
			}
		}
	}
}

func TestGPDFiniteEndpoint(t *testing.T) {
	g := GPD{Sigma: 10, Xi: -0.5} // endpoint at sigma/|xi| = 20
	if got := g.CCDF(25); got != 0 {
		t.Fatalf("CCDF beyond endpoint = %v", got)
	}
	if q := g.QuantileExceedance(1e-15); q > 20.0001 {
		t.Fatalf("quantile %v beyond finite endpoint", q)
	}
}

func TestFitGPDMomentsExponential(t *testing.T) {
	src := rng.New(4)
	xs := expSample(src, 42, 20000)
	fit, err := FitGPDMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Xi) > 0.05 {
		t.Fatalf("exponential sample fit xi = %v, want ~0", fit.Xi)
	}
	if math.Abs(fit.Sigma-42)/42 > 0.05 {
		t.Fatalf("sigma = %v, want ~42", fit.Sigma)
	}
}

func TestFitGPDErrors(t *testing.T) {
	if _, err := FitGPDMoments([]float64{1, 2}); err == nil {
		t.Fatal("tiny sample accepted")
	}
	same := make([]float64, 100)
	for i := range same {
		same[i] = 5
	}
	if _, err := FitGPDMoments(same); err != ErrDegenerateSample {
		t.Fatalf("constant sample: %v", err)
	}
}

func TestAnalyzePOTBoundsAndMonotone(t *testing.T) {
	src := rng.New(9)
	// Execution-time-like sample: base + exponential tail.
	xs := make([]float64, 2000)
	for i, v := range expSample(src, 300, 2000) {
		xs[i] = 100000 + v
	}
	res, err := AnalyzePOT(xs, POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold <= 100000 || res.Rate <= 0 || res.Rate >= 1 {
		t.Fatalf("POT result = %+v", res)
	}
	p15 := res.PWCET(1e-15)
	p19 := res.PWCET(1e-19)
	if p15 < res.MaxSeen || p19 < p15 {
		t.Fatalf("POT pWCETs inconsistent: max=%v p15=%v p19=%v", res.MaxSeen, p15, p19)
	}
	// For an exponential tail the analytic quantile is known:
	// threshold + sigma*ln(rate/p).
	analytic := res.Threshold + 300*math.Log(res.Rate/1e-15)
	if math.Abs(p15-analytic)/analytic > 0.15 {
		t.Fatalf("POT p15 = %v, analytic ~%v", p15, analytic)
	}
}

func TestAnalyzePOTValidation(t *testing.T) {
	src := rng.New(10)
	xs := expSample(src, 10, 300)
	if _, err := AnalyzePOT(xs[:50], POTOptions{}); err == nil {
		t.Fatal("tiny sample accepted")
	}
	if _, err := AnalyzePOT(xs, POTOptions{ThresholdQuantile: 1.5}); err == nil {
		t.Fatal("bad quantile accepted")
	}
	if _, err := AnalyzePOT(xs, POTOptions{ThresholdQuantile: 0.99, MinExcesses: 20}); err == nil {
		t.Fatal("insufficient excesses accepted")
	}
}

func TestCrossCheckAgreesOnGumbel(t *testing.T) {
	// Both EVT routes should give comparable deep-tail estimates for a
	// well-behaved (Gumbel) sample.
	src := rng.New(11)
	g := Gumbel{Mu: 50000, Beta: 250}
	xs := gumbelSample(src, g, 3000)
	bm, pot, dis, err := CrossCheck(xs, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if bm <= 0 || pot <= 0 {
		t.Fatalf("estimates: bm=%v pot=%v", bm, pot)
	}
	if dis > 0.25 {
		t.Fatalf("EVT routes disagree by %.0f%% (bm=%v pot=%v)", 100*dis, bm, pot)
	}
}

func BenchmarkAnalyzePOT(b *testing.B) {
	src := rng.New(1)
	xs := expSample(src, 100, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = AnalyzePOT(xs, POTOptions{})
	}
}

// TestDegenerateGPDNoNaN pins the Sigma guard: a zero-valued fit — which
// is exactly what callers hold when AnalyzePOT returns a Degenerate
// result — must behave as a point mass at zero. Before the guard,
// CCDF(0) evaluated exp(-0/0) = NaN and quietly poisoned anything
// downstream that compared against it.
func TestDegenerateGPDNoNaN(t *testing.T) {
	var g GPD // the zero value, as left in POTResult.Fit when degenerate
	for _, x := range []float64{0, 1, 100} {
		if v := g.CCDF(x); math.IsNaN(v) || v != 0 {
			t.Fatalf("CCDF(%v) = %v, want 0", x, v)
		}
	}
	if q := g.QuantileExceedance(1e-9); math.IsNaN(q) || q != 0 {
		t.Fatalf("QuantileExceedance = %v, want 0", q)
	}
	// Sigma == 0 with Xi != 0 hits the power-law branch.
	g = GPD{Xi: -0.3}
	if v := g.CCDF(0); math.IsNaN(v) || v != 0 {
		t.Fatalf("CCDF(0) with Xi<0 = %v, want 0", v)
	}
}

// TestPOTThresholdSingleSort guards the sorted-copy reuse in AnalyzePOT:
// the threshold must equal the quantile of the raw (unsorted) sample, so
// eliminating the second sort changed no behaviour.
func TestPOTThresholdSingleSort(t *testing.T) {
	src := rng.New(12)
	xs := expSample(src, 10, 400)
	res, err := AnalyzePOT(xs, POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := stats.Quantile(xs, 0.85); res.Threshold != want {
		t.Fatalf("threshold %v, want %v", res.Threshold, want)
	}
	if res.MaxSeen != stats.Max(xs) {
		t.Fatalf("MaxSeen %v, want %v", res.MaxSeen, stats.Max(xs))
	}
}
