package mbpta

import (
	"math"
	"sort"
	"strings"
	"testing"

	"efl/internal/rng"
)

// TestAnalyzeValidatesBlockSizeUpFront is the regression test for the late
// BlockSize failure: an explicit BlockSize yielding fewer than MinBlocks
// full blocks must be rejected before any statistical work, in particular
// before the i.i.d. gate. Pre-fix, Analyze ran the i.i.d. battery first,
// so this monotone (i.i.d.-failing) sample returned the i.i.d. error and
// the unusable BlockSize only surfaced on samples that passed the gate.
func TestAnalyzeValidatesBlockSizeUpFront(t *testing.T) {
	times := make([]float64, 100)
	for i := range times {
		times[i] = float64(i) // monotone: fails Wald-Wolfowitz decisively
	}
	_, err := Analyze(times, Options{BlockSize: 50})
	if err == nil {
		t.Fatal("Analyze accepted BlockSize=50 over 100 samples (2 blocks < MinBlocks=20)")
	}
	if strings.Contains(err.Error(), "i.i.d.") {
		t.Fatalf("i.i.d. gate ran before BlockSize validation: %v", err)
	}
	for _, want := range []string{"100 samples", "BlockSize 50", "2 full blocks", "MinBlocks=20", "collect >= 1000"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestAnalyzeValidatesTinySample covers the auto-picked BlockSize path:
// very small samples can never produce MinBlocks blocks of >= 2 and must
// fail with the descriptive validation error rather than deep inside
// BlockMaxima.
func TestAnalyzeValidatesTinySample(t *testing.T) {
	src := rng.New(7)
	times := gumbelSample(src, Gumbel{Mu: 100, Beta: 5}, 25)
	_, err := Analyze(times, Options{SkipIIDTests: true})
	if err == nil {
		t.Fatal("Analyze accepted 25 samples (12 blocks of 2 < MinBlocks=20)")
	}
	if !strings.Contains(err.Error(), "full blocks") {
		t.Fatalf("expected up-front validation error, got: %v", err)
	}
}

// TestCollectorFastFailsUnsatisfiable: a Collector whose MaxRuns budget can
// never yield MinBlocks blocks must fail before spending a single
// measurement, not after burning the whole budget.
func TestCollectorFastFailsUnsatisfiable(t *testing.T) {
	calls := 0
	c := &Collector{
		Measure: func() float64 { calls++; return float64(calls) },
		MaxRuns: 1000,
		Options: Options{BlockSize: 200}, // 1000/200 = 5 blocks < 20
	}
	_, _, err := c.Run()
	if err == nil {
		t.Fatal("Collector accepted an unsatisfiable BlockSize/MaxRuns combination")
	}
	if !strings.Contains(err.Error(), "unsatisfiable with MaxRuns=1000") {
		t.Fatalf("unexpected error: %v", err)
	}
	if calls != 0 {
		t.Fatalf("Collector spent %d measurements before failing", calls)
	}
}

func TestNewStreamValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  StreamOptions
	}{
		{"block size 1", StreamOptions{Options: Options{BlockSize: 1}}},
		{"negative tol", StreamOptions{Tol: -0.1}},
		{"max below min", StreamOptions{MinRuns: 100, MaxRuns: 50}},
		{"unsatisfiable cap", StreamOptions{Options: Options{BlockSize: 50}, MaxRuns: 100}},
		{"bad prob", StreamOptions{Prob: 2}},
	}
	for _, tc := range cases {
		if _, err := NewStream(tc.opt); err == nil {
			t.Errorf("%s: NewStream accepted %+v", tc.name, tc.opt)
		}
	}
}

// TestStreamFirstEstimateAtMinRuns pins the default sizing: BlockSize 5
// completes MinBlocks=20 blocks exactly at MinRuns=100, so the first
// estimate appears at run 100 and never earlier.
func TestStreamFirstEstimateAtMinRuns(t *testing.T) {
	s, err := NewStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	for i := 0; i < 99; i++ {
		s.Add(src.Float64() * 100)
		if _, ok := s.Estimate(); ok {
			t.Fatalf("estimate available at run %d, before MinRuns", i+1)
		}
	}
	s.Add(src.Float64() * 100)
	if _, ok := s.Estimate(); !ok {
		t.Fatal("no estimate at run 100 with BlockSize 5, MinBlocks 20")
	}
	if s.Runs() != 100 {
		t.Fatalf("Runs() = %d", s.Runs())
	}
}

// TestStreamConvergesAndAgreesWithFixedCount is the calibration check: the
// convergence-stopped streaming estimate must reproduce the fixed-count
// Analyze estimate within the experiments engine's A4 agreement threshold
// (0.25 relative disagreement), across several seeds.
func TestStreamConvergesAndAgreesWithFixedCount(t *testing.T) {
	const fixedRuns = 1000
	const a4Threshold = 0.25
	truth := Gumbel{Mu: 20000, Beta: 400}
	for seed := uint64(1); seed <= 5; seed++ {
		times := gumbelSample(rng.New(seed), truth, fixedRuns)
		s, err := NewStream(StreamOptions{MaxRuns: fixedRuns})
		if err != nil {
			t.Fatal(err)
		}
		var stopped int
		for _, x := range times {
			if s.Add(x) {
				stopped = s.Runs()
				break
			}
		}
		if !s.Converged() {
			t.Fatalf("seed %d: stream never converged within %d runs", seed, fixedRuns)
		}
		if stopped < 100 {
			t.Fatalf("seed %d: converged at %d runs, below MinRuns", seed, stopped)
		}
		streamEst, ok := s.Estimate()
		if !ok {
			t.Fatalf("seed %d: converged without an estimate", seed)
		}
		full, err := Analyze(times, Options{SkipIIDTests: true})
		if err != nil {
			t.Fatal(err)
		}
		fixedEst := full.PWCET(1e-15)
		disagree := math.Abs(streamEst-fixedEst) / math.Max(streamEst, fixedEst)
		if disagree > a4Threshold {
			t.Errorf("seed %d: streaming pWCET %.0f (at %d runs) vs fixed-count %.0f: disagreement %.3f > %.2f",
				seed, streamEst, stopped, fixedEst, disagree, a4Threshold)
		}
		t.Logf("seed %d: converged at %d/%d runs, stream %.0f vs fixed %.0f (disagreement %.3f)",
			seed, stopped, fixedRuns, streamEst, fixedEst, disagree)
	}
}

// TestStreamFinalizeMatchesAnalyze: Finalize over the stream's sample is
// the same Result a direct Analyze call produces with the same options.
func TestStreamFinalizeMatchesAnalyze(t *testing.T) {
	times := gumbelSample(rng.New(21), Gumbel{Mu: 500, Beta: 30}, 400)
	s, err := NewStream(StreamOptions{Options: Options{SkipIIDTests: true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range times {
		s.Add(x)
	}
	got, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(times, Options{SkipIIDTests: true, BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fit != want.Fit || got.BlockSize != want.BlockSize || got.NumBlocks != want.NumBlocks {
		t.Fatalf("Finalize %+v != Analyze %+v", got, want)
	}
	if got.PWCET(1e-15) != want.PWCET(1e-15) {
		t.Fatalf("Finalize pWCET %v != Analyze pWCET %v", got.PWCET(1e-15), want.PWCET(1e-15))
	}
}

// TestStreamDegenerate: a constant sample converges immediately after
// MinRuns with the constant as its estimate (pWCET = MaxSeen).
func TestStreamDegenerate(t *testing.T) {
	s, err := NewStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && !s.Done(); i++ {
		s.Add(42)
	}
	if !s.Converged() {
		t.Fatal("constant stream did not converge")
	}
	if est, ok := s.Estimate(); !ok || est != 42 {
		t.Fatalf("Estimate() = %v, %v; want 42", est, ok)
	}
	// BlockSize 5, MinBlocks 20, Stable 3: estimate at run 100, stability
	// run complete 3 blocks later.
	if s.Runs() != 115 {
		t.Fatalf("converged at %d runs, want 115", s.Runs())
	}
}

// TestStreamMaxRunsStops: a sample too erratic to converge under a strict
// tolerance stops at the MaxRuns ceiling with Done() true and Converged()
// false.
func TestStreamMaxRunsStops(t *testing.T) {
	s, err := NewStream(StreamOptions{Tol: 1e-12, Stable: 50, MaxRuns: 150})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	n := 0
	for !s.Done() {
		s.Add(src.Float64() * 1e6)
		n++
		if n > 150 {
			t.Fatal("stream ran past MaxRuns")
		}
	}
	if s.Converged() {
		t.Fatal("erratic stream converged under Tol=1e-12")
	}
	if s.Runs() != 150 {
		t.Fatalf("stopped at %d runs, want MaxRuns=150", s.Runs())
	}
}

// TestStreamEstimateMatchesBatchRefit: the streaming estimate after n runs
// equals what a from-scratch fit over the same maxima would produce — the
// incremental bookkeeping adds no drift.
func TestStreamEstimateMatchesBatchRefit(t *testing.T) {
	times := gumbelSample(rng.New(41), Gumbel{Mu: 3000, Beta: 90}, 300)
	s, err := NewStream(StreamOptions{Tol: 1e-12, Stable: 1000}) // never converge
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range times {
		s.Add(x)
	}
	got, ok := s.Estimate()
	if !ok {
		t.Fatal("no estimate after 300 runs")
	}
	maxima, err := BlockMaxima(times, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitGumbelML(maxima)
	if err != nil {
		t.Fatal(err)
	}
	ref := Result{Runs: len(times), BlockSize: 5, NumBlocks: len(maxima), Fit: fit, MaxSeen: maxOf(times)}
	if want := ref.PWCET(1e-15); got != want {
		t.Fatalf("streaming estimate %v != batch refit %v", got, want)
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// TestStreamTimesOrdered: Times preserves arrival order (the i.i.d. gate
// in Finalize depends on it).
func TestStreamTimesOrdered(t *testing.T) {
	s, err := NewStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{5, 3, 9, 1, 7}
	for _, x := range in {
		s.Add(x)
	}
	got := s.Times()
	if len(got) != len(in) || sort.Float64sAreSorted(got) {
		t.Fatalf("Times() = %v, want arrival order %v", got, in)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Times()[%d] = %v, want %v", i, got[i], in[i])
		}
	}
}
