package mbpta

import (
	"fmt"
	"math"
)

// StreamOptions configures the incremental MBPTA estimator. The embedded
// Options are the same knobs Analyze takes; the additional fields define
// the convergence stopping rule.
type StreamOptions struct {
	Options
	// Prob is the per-run exceedance probability the stopping rule tracks
	// (default 1e-15, the paper's headline probability).
	Prob float64
	// Tol is the relative stability tolerance between successive pWCET
	// refits (default 0.02, matching ConvergenceCriterion's default).
	Tol float64
	// Stable is how many consecutive refits must stay within Tol of their
	// predecessor before the stream declares convergence (default 3). One
	// agreeing pair is noise at block granularity; requiring a run of them
	// is what calibrates the stopped estimate to land within the A4
	// cross-check threshold of a fixed-count analysis (see stream_test.go).
	Stable int
	// MinRuns is the minimum number of observations before any estimate
	// is produced or convergence declared (default 100, the Collector's
	// initial batch).
	MinRuns int
	// MaxRuns, when non-zero, caps the stream: Add reports done once the
	// cap is reached even without convergence (the paper's 1,000-run
	// ceiling is the operative stop in practice).
	MaxRuns int
}

func (o *StreamOptions) fill() error {
	if o.Prob == 0 {
		o.Prob = 1e-15
	}
	if err := checkProb(o.Prob); err != nil {
		return err
	}
	if o.Tol == 0 {
		o.Tol = 0.02
	}
	if o.Tol < 0 {
		return fmt.Errorf("mbpta: negative convergence tolerance %g", o.Tol)
	}
	if o.Stable == 0 {
		o.Stable = 3
	}
	if o.MinRuns == 0 {
		o.MinRuns = 100
	}
	if o.MinBlocks == 0 {
		o.MinBlocks = 20
	}
	if o.BlockSize == 0 {
		// A stream cannot auto-size blocks from a final sample count the
		// way Analyze does, so pick the size that makes the first estimate
		// available exactly when both MinRuns and MinBlocks are satisfied.
		bs := o.MinRuns / o.MinBlocks
		if bs < 2 {
			bs = 2
		}
		o.BlockSize = bs
	}
	o.Alpha = 0 // filled by Finalize's Analyze call
	if o.BlockSize < 2 {
		return fmt.Errorf("mbpta: BlockSize %d is not a usable block size (need >= 2)", o.BlockSize)
	}
	if o.MaxRuns != 0 {
		if o.MaxRuns < o.MinRuns {
			return fmt.Errorf("mbpta: MaxRuns %d below MinRuns %d", o.MaxRuns, o.MinRuns)
		}
		capOpt := o.Options
		capOpt.fill(o.MaxRuns)
		if err := capOpt.validate(o.MaxRuns); err != nil {
			return fmt.Errorf("mbpta: unsatisfiable with MaxRuns=%d: %w", o.MaxRuns, err)
		}
	}
	return nil
}

// Stream folds execution times one at a time into an online block-maxima
// Gumbel fit, refitting once per completed block and stopping when the
// pWCET estimate at StreamOptions.Prob has been stable for Stable
// consecutive refits. It is the incremental counterpart of Collector: a
// campaign drives Add after every simulation run and stops producing runs
// as soon as Add reports done, instead of re-analysing a growing sample in
// fixed-size batches.
//
// Add is O(1) outside block boundaries and O(blocks) at each boundary (one
// Gumbel ML refit over the accumulated maxima), so a campaign of n runs
// costs O(n^2/BlockSize) in the worst case — negligible against the
// simulation time of even one run. Estimates use the same per-run to
// per-block probability conversion and MaxSeen floor as Result.PWCET.
//
// The streaming estimates skip the i.i.d. gate (it is a whole-sample
// property); Finalize runs the full gated Analyze over everything the
// stream has seen and is the authoritative result.
type Stream struct {
	opt StreamOptions

	times  []float64
	maxima []float64
	blockN int     // observations in the current partial block
	blockM float64 // running max of the current partial block
	max    float64 // high-water mark of all observations

	est       float64 // latest pWCET estimate at opt.Prob
	haveEst   bool
	stable    int // consecutive refits within Tol of their predecessor
	converged bool
}

// NewStream validates the options up front and returns an empty stream.
// Configurations that can never produce a fit (unusable BlockSize, a
// MaxRuns budget yielding fewer than MinBlocks blocks) are rejected here,
// before any measurement is spent.
func NewStream(opt StreamOptions) (*Stream, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	return &Stream{opt: opt, max: math.Inf(-1)}, nil
}

// Add folds one execution time into the stream and reports whether the
// campaign should stop producing runs: either the estimate has converged
// or MaxRuns is exhausted.
func (s *Stream) Add(t float64) (done bool) {
	s.times = append(s.times, t)
	if t > s.max {
		s.max = t
	}
	if s.blockN == 0 || t > s.blockM {
		s.blockM = t
	}
	s.blockN++
	if s.blockN == s.opt.BlockSize {
		s.maxima = append(s.maxima, s.blockM)
		s.blockN = 0
		s.refit()
	}
	return s.Done()
}

// refit re-estimates the pWCET from the accumulated block maxima and
// advances the stability counter. Called once per completed block.
func (s *Stream) refit() {
	if len(s.maxima) < s.opt.MinBlocks || len(s.times) < s.opt.MinRuns {
		return
	}
	cur, ok := s.estimate()
	if !ok {
		return
	}
	if s.haveEst && converged(s.est, cur, s.opt.Tol) {
		s.stable++
	} else {
		s.stable = 0
	}
	s.est, s.haveEst = cur, true
	if s.stable >= s.opt.Stable {
		s.converged = true
	}
}

// estimate fits the current maxima and extracts the pWCET at opt.Prob,
// reusing Result's probability conversion and MaxSeen floor.
func (s *Stream) estimate() (float64, bool) {
	r := Result{
		Runs:      len(s.times),
		BlockSize: s.opt.BlockSize,
		NumBlocks: len(s.maxima),
		MaxSeen:   s.max,
	}
	fit, err := FitGumbelML(s.maxima)
	switch {
	case err == ErrDegenerateSample:
		r.Degenerate = true
	case err != nil:
		return 0, false
	default:
		r.Fit = fit
	}
	v, err := r.PWCETE(s.opt.Prob)
	if err != nil {
		return 0, false
	}
	return v, true
}

func converged(prev, cur, tol float64) bool {
	if prev == 0 {
		return cur == 0
	}
	return math.Abs(cur-prev)/math.Abs(prev) <= tol
}

// Converged reports whether the stopping rule has fired.
func (s *Stream) Converged() bool { return s.converged }

// Done reports whether the campaign should stop: converged, or MaxRuns
// exhausted.
func (s *Stream) Done() bool {
	return s.converged || (s.opt.MaxRuns != 0 && len(s.times) >= s.opt.MaxRuns)
}

// Runs returns the number of observations folded in so far.
func (s *Stream) Runs() int { return len(s.times) }

// Estimate returns the latest streaming pWCET estimate at
// StreamOptions.Prob; ok is false before the first refit (fewer than
// MinRuns observations or MinBlocks completed blocks).
func (s *Stream) Estimate() (v float64, ok bool) { return s.est, s.haveEst }

// Times returns the observations in arrival order. The slice is the
// stream's backing store; callers must not mutate it.
func (s *Stream) Times() []float64 { return s.times }

// Finalize runs the full MBPTA pipeline (including the i.i.d. gate, unless
// the embedded Options skip it) over everything the stream has seen, with
// the stream's BlockSize pinned so the result is comparable to the
// streaming estimates. This is the authoritative analysis; the per-block
// refits only drive the stopping rule.
func (s *Stream) Finalize() (*Result, error) {
	opt := s.opt.Options
	return Analyze(s.times, opt)
}
