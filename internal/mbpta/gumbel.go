// Package mbpta implements Measurement-Based Probabilistic Timing Analysis
// (paper §2.1, following Cucu-Grosjean et al., ECRTS 2012): execution times
// observed on an MBPTA-compliant (time-randomised) platform are checked for
// independence and identical distribution, the sample's block maxima are
// fitted with a Gumbel (EVT type I) distribution, and the fit's tail is
// used to produce pWCET estimates — execution-time bounds with an
// associated exceedance probability (e.g. 10⁻¹⁵ per run).
package mbpta

import (
	"errors"
	"fmt"
	"math"

	"efl/internal/stats"
)

// EulerGamma is the Euler–Mascheroni constant, the mean of a standard
// Gumbel distribution.
const EulerGamma = 0.5772156649015329

// Gumbel is an extreme value type I (Gumbel) distribution with location mu
// and scale beta > 0. EVT dictates that maxima of i.i.d. samples with
// exponential-class tails converge to this family, which is why MBPTA fits
// it to block maxima of execution times.
type Gumbel struct {
	Mu   float64
	Beta float64
}

// CDF returns P(X <= x).
func (g Gumbel) CDF(x float64) float64 {
	return math.Exp(-math.Exp(-(x - g.Mu) / g.Beta))
}

// CCDF returns the exceedance probability P(X > x), computed in a way that
// stays accurate for the deep tail (tiny probabilities).
func (g Gumbel) CCDF(x float64) float64 {
	z := math.Exp(-(x - g.Mu) / g.Beta)
	// 1 - exp(-z); for tiny z use expm1 to avoid cancellation.
	return -math.Expm1(-z)
}

// ErrProbabilityRange indicates a probability outside the open interval
// (0,1) — the input-validation error every quantile/pWCET entry point
// returns (or panics with, in the legacy variants) instead of producing a
// silent NaN. Callers serving untrusted inputs match it with errors.Is.
var ErrProbabilityRange = errors.New("mbpta: probability outside (0,1)")

// checkProb validates an (exceedance) probability.
func checkProb(p float64) error {
	if !(p > 0 && p < 1) { // rejects NaN too
		return fmt.Errorf("%w: %v", ErrProbabilityRange, p)
	}
	return nil
}

// Quantile returns the x with CDF(x) = p, for p in (0, 1). It panics on an
// out-of-range p; use QuantileE where p comes from untrusted input.
func (g Gumbel) Quantile(p float64) float64 {
	v, err := g.QuantileE(p)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// QuantileE is Quantile with an error return instead of a panic.
func (g Gumbel) QuantileE(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, fmt.Errorf("Gumbel quantile: %w", err)
	}
	return g.Mu - g.Beta*math.Log(-math.Log(p)), nil
}

// QuantileExceedance returns the x whose exceedance probability P(X > x)
// equals p. Numerically robust for the very small p MBPTA uses (1e-15 and
// below), where 1-p rounds to 1 in float64. It panics on an out-of-range
// p; use QuantileExceedanceE where p comes from untrusted input.
func (g Gumbel) QuantileExceedance(p float64) float64 {
	v, err := g.QuantileExceedanceE(p)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// QuantileExceedanceE is QuantileExceedance with an error return instead
// of a panic.
func (g Gumbel) QuantileExceedanceE(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, fmt.Errorf("Gumbel exceedance quantile: %w", err)
	}
	// Solve exp(-exp(-(x-mu)/beta)) = 1-p  =>  -(x-mu)/beta = ln(-ln(1-p)).
	// ln(1-p) via log1p keeps precision for tiny p: -ln(1-p) ≈ p.
	l := -math.Log1p(-p)
	return g.Mu - g.Beta*math.Log(l), nil
}

// Mean returns the distribution mean mu + gamma*beta.
func (g Gumbel) Mean() float64 { return g.Mu + EulerGamma*g.Beta }

// Var returns the distribution variance (pi^2/6) beta^2.
func (g Gumbel) Var() float64 { return math.Pi * math.Pi / 6 * g.Beta * g.Beta }

// String implements fmt.Stringer.
func (g Gumbel) String() string { return fmt.Sprintf("Gumbel(mu=%.4g, beta=%.4g)", g.Mu, g.Beta) }

// ErrDegenerateSample indicates a sample whose spread is (near) zero, for
// which an EVT fit is meaningless; callers fall back to the sample maximum.
var ErrDegenerateSample = errors.New("mbpta: degenerate (near-constant) sample")

// FitGumbelMoments fits a Gumbel distribution by the method of moments:
// beta = s*sqrt(6)/pi, mu = mean - gamma*beta.
func FitGumbelMoments(xs []float64) (Gumbel, error) {
	if len(xs) < 2 {
		return Gumbel{}, stats.ErrTooFewSamples
	}
	s := stats.StdDev(xs)
	m := stats.Mean(xs)
	if s <= 0 || s < 1e-12*math.Max(1, math.Abs(m)) {
		return Gumbel{}, ErrDegenerateSample
	}
	beta := s * math.Sqrt(6) / math.Pi
	return Gumbel{Mu: m - EulerGamma*beta, Beta: beta}, nil
}

// FitGumbelML fits a Gumbel distribution by maximum likelihood, seeded by
// the method of moments and refined with the standard fixed-point iteration
//
//	beta = mean(x) - sum(x*exp(-x/beta)) / sum(exp(-x/beta))
//	mu   = -beta * ln(mean(exp(-x/beta)))
//
// ML is the estimator used in MBPTA practice: it weights the right tail
// more faithfully than the moments fit.
func FitGumbelML(xs []float64) (Gumbel, error) {
	g0, err := FitGumbelMoments(xs)
	if err != nil {
		return Gumbel{}, err
	}
	beta := g0.Beta
	mean := stats.Mean(xs)
	// Centre the sample for numerical stability of the exponentials.
	c := mean
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		var se, sxe float64
		for _, x := range xs {
			e := math.Exp(-(x - c) / beta)
			se += e
			sxe += (x - c) * e
		}
		next := mean - (c + sxe/se)
		if next <= 0 {
			// Iteration escaped the feasible region; keep the moments fit.
			return g0, nil
		}
		if math.Abs(next-beta) <= 1e-10*beta {
			beta = next
			break
		}
		beta = next
	}
	var se float64
	n := float64(len(xs))
	for _, x := range xs {
		se += math.Exp(-(x - c) / beta)
	}
	mu := c - beta*math.Log(se/n)
	return Gumbel{Mu: mu, Beta: beta}, nil
}

// BlockMaxima splits xs into consecutive blocks of size block and returns
// each block's maximum. A trailing partial block is discarded (standard
// practice). It returns an error when fewer than minBlocks full blocks are
// available.
func BlockMaxima(xs []float64, block, minBlocks int) ([]float64, error) {
	if block < 1 {
		return nil, fmt.Errorf("mbpta: block size %d < 1", block)
	}
	nb := len(xs) / block
	if nb < minBlocks {
		return nil, fmt.Errorf("mbpta: %d samples give %d blocks of %d, need >= %d: %w",
			len(xs), nb, block, minBlocks, stats.ErrTooFewSamples)
	}
	out := make([]float64, nb)
	for b := 0; b < nb; b++ {
		m := xs[b*block]
		for i := b*block + 1; i < (b+1)*block; i++ {
			if xs[i] > m {
				m = xs[i]
			}
		}
		out[b] = m
	}
	return out, nil
}
