package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"efl/internal/sim"
)

// TestRetryAfterCeil is the regression test for the Retry-After:0 bug —
// the hint was rendered with Round(time.Second)/time.Second, so any
// configured value under 500ms truncated to 0, which reads as "retry
// immediately" and turns backpressure into a client retry storm. The
// header must round UP with a floor of one second.
func TestRetryAfterCeil(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1, RetryAfter: 100 * time.Millisecond})
	defer s.Close()
	release := make(chan struct{})
	blockingRun := func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		<-release
		return []byte("{}"), nil
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.dispatch(httptest.NewRecorder(), &Plan{Key: "ra-a", Timeout: time.Minute, run: blockingRun}) }()
	waitUntil(t, "job A running", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		_, inFlight := s.flight["ra-a"]
		return inFlight && len(s.jobs) == 0
	})
	go func() { defer wg.Done(); s.dispatch(httptest.NewRecorder(), &Plan{Key: "ra-b", Timeout: time.Minute, run: blockingRun}) }()
	waitUntil(t, "job B queued", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.jobs) == 1
	})

	rec := httptest.NewRecorder()
	s.dispatch(rec, &Plan{Key: "ra-c", Timeout: time.Minute, run: blockingRun})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", rec.Code)
	}
	got, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", rec.Header().Get("Retry-After"))
	}
	if got < 1 {
		t.Fatalf("Retry-After = %d for a 100ms hint — sub-second hints must ceil to 1", got)
	}
	close(release)
	wg.Wait()
}

// TestRetryAfterSeconds pins the rendering rule directly: ceil, floor 1.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{100 * time.Millisecond, 1},
		{499 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// failurePropagation drives one leader plus N coalesced waiters into a
// failing flight and returns the recorders, asserting the shared
// contract: nothing cached, the next identical request starts fresh.
// A non-nil release channel is closed once every waiter has coalesced,
// so the leader can hold the flight open until then.
func failurePropagation(t *testing.T, s *Server, key string, mkPlan func() *Plan, release chan struct{}) []*httptest.ResponseRecorder {
	t.Helper()
	const waiters = 3
	recs := make([]*httptest.ResponseRecorder, waiters+1)
	var wg sync.WaitGroup
	recs[0] = httptest.NewRecorder()
	wg.Add(1)
	go func() { defer wg.Done(); s.dispatch(recs[0], mkPlan()) }()
	waitUntil(t, "leader in flight", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		_, ok := s.flight[key]
		return ok
	})
	for i := 1; i <= waiters; i++ {
		recs[i] = httptest.NewRecorder()
		wg.Add(1)
		go func(rec *httptest.ResponseRecorder) { defer wg.Done(); s.dispatch(rec, mkPlan()) }(recs[i])
	}
	waitUntil(t, "waiters coalesced", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.coalesced >= waiters
	})
	if release != nil {
		close(release)
	}
	wg.Wait()

	s.mu.Lock()
	_, cached := s.cache.get(key)
	s.mu.Unlock()
	if cached {
		t.Fatal("failed campaign was cached — the next identical request would replay the failure forever")
	}
	return recs
}

// TestSingleFlightDeadlinePropagation pins what coalesced waiters receive
// when the leader's campaign is deadline-killed: every rider gets a
// retryable 504 with a Retry-After hint, the failure is never cached, and
// the next identical request starts a fresh flight.
func TestSingleFlightDeadlinePropagation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	key := "flight-deadline"
	mkPlan := func() *Plan {
		return &Plan{Key: key, Timeout: 50 * time.Millisecond, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}}
	}
	for i, rec := range failurePropagation(t, s, key, mkPlan, nil) {
		if rec.Code != http.StatusGatewayTimeout {
			t.Errorf("rider %d got %d, want 504", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("rider %d: retryable 504 without a Retry-After hint", i)
		}
	}
	// Fresh flight afterwards: the same key computes, does not replay.
	rec := httptest.NewRecorder()
	s.dispatch(rec, &Plan{Key: key, Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		return []byte("{}"), nil
	}})
	if rec.Code != 200 || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("retry after deadline failure: HTTP %d X-Cache %q, want 200/miss", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestSingleFlightPanicPropagation is the same contract for a panicking
// leader: every rider gets a retryable 500, nothing is cached.
func TestSingleFlightPanicPropagation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	key := "flight-panic"
	release := make(chan struct{})
	mkPlan := func() *Plan {
		return &Plan{Key: key, Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
			<-release // hold the flight open until every waiter has coalesced
			panic("leader died mid-campaign")
		}}
	}
	for i, rec := range failurePropagation(t, s, key, mkPlan, release) {
		if rec.Code != http.StatusInternalServerError {
			t.Errorf("rider %d got %d, want 500", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("rider %d: retryable 500 without a Retry-After hint", i)
		}
	}
	rec := httptest.NewRecorder()
	s.dispatch(rec, &Plan{Key: key, Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		return []byte("{}"), nil
	}})
	if rec.Code != 200 || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("retry after panic: HTTP %d X-Cache %q, want 200/miss", rec.Code, rec.Header().Get("X-Cache"))
	}
}
