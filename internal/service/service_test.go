package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"efl/internal/sim"
)

// tinySrc is a fast measurement subject: ~1200 instructions with data
// accesses, so a 40-run campaign finishes in well under a second even on
// one worker.
const tinySrc = `
        movi r1, 0
        movi r2, 300
        movi r3, 0x40000000
    loop:
        ld   r4, 0(r3)
        addi r3, r3, 16
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
        .size 8192
`

// slowSrc is deliberately long-running (hundreds of thousands of
// instructions per run) so campaigns over it outlive short deadlines.
const slowSrc = `
        movi r1, 0
        movi r2, 200000
    loop:
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
`

func estimateBody(t *testing.T, src string, runs int, seed uint64, extra map[string]any) []byte {
	t.Helper()
	m := map[string]any{
		"program":  map[string]any{"source": src, "name": "test"},
		"config":   map[string]any{"mid": 500},
		"runs":     runs,
		"seed":     seed,
		"skip_iid": true,
	}
	for k, v := range extra {
		m[k] = v
	}
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitUntil polls cond for up to 5 seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestEstimateEndToEnd pins the primary contract: a fresh estimate
// computes, the identical request replays byte-identically from the
// cache, and the audit block covers every run with zero violations.
func TestEstimateEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := estimateBody(t, tinySrc, 40, 2, map[string]any{"audit": true})

	resp1, data1 := postJSON(t, ts.URL+"/v1/estimate", body)
	if resp1.StatusCode != 200 {
		t.Fatalf("fresh estimate: HTTP %d: %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("fresh estimate X-Cache = %q, want miss", got)
	}
	var est EstimateResponse
	if err := json.Unmarshal(data1, &est); err != nil {
		t.Fatalf("response: %v\n%s", err, data1)
	}
	if len(est.PWCET) != 1 || est.MaxObserved <= 0 {
		t.Fatalf("implausible estimate: %s", data1)
	}
	for _, v := range est.PWCET {
		if v < est.MaxObserved {
			t.Fatalf("pWCET %v below observed max %v", v, est.MaxObserved)
		}
	}
	var audit struct {
		Runs       int64 `json:"runs"`
		Checks     int64 `json:"checks"`
		Violations int64 `json:"violations"`
	}
	if err := json.Unmarshal(est.Audit, &audit); err != nil {
		t.Fatalf("audit block: %v", err)
	}
	if audit.Runs != 40 || audit.Checks == 0 || audit.Violations != 0 {
		t.Fatalf("audit block %+v: want 40 audited runs, >0 checks, 0 violations", audit)
	}

	resp2, data2 := postJSON(t, ts.URL+"/v1/estimate", body)
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("replay: HTTP %d X-Cache=%q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("cached response differs from fresh:\n%s\n%s", data1, data2)
	}
}

// TestCachedMatchesFreshAcrossInstances pins the stronger determinism
// claim behind the cache: a brand-new server (fresh pools, fresh
// platforms) produces the same bytes the first server computed and
// cached. The cache is an optimisation, never an answer-changer.
func TestCachedMatchesFreshAcrossInstances(t *testing.T) {
	body := estimateBody(t, tinySrc, 40, 7, nil)
	_, ts1 := newTestServer(t, Options{})
	_, data1 := postJSON(t, ts1.URL+"/v1/estimate", body)
	_, ts2 := newTestServer(t, Options{})
	_, data2 := postJSON(t, ts2.URL+"/v1/estimate", body)
	if !bytes.Equal(data1, data2) {
		t.Fatalf("two instances disagree on the same request:\n%s\n%s", data1, data2)
	}
}

// TestSingleFlightCoalescing fires N identical requests concurrently and
// requires exactly ONE campaign: one miss, the rest coalesced onto it (or
// served from the cache if they straggle in after completion), all with
// identical bytes.
func TestSingleFlightCoalescing(t *testing.T) {
	const n = 4
	s, ts := newTestServer(t, Options{})
	body := estimateBody(t, tinySrc, 40, 3, nil)

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	caches := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
			caches[i] = resp.Header.Get("X-Cache")
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: HTTP %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d got different bytes", i)
		}
	}
	snap := s.Snapshot()
	if snap.Cache.Misses != 1 {
		t.Fatalf("%d campaigns ran for %d identical requests (want 1): %+v", snap.Cache.Misses, n, snap.Cache)
	}
	if snap.Cache.Misses+snap.Cache.Coalesced+snap.Cache.Hits != n {
		t.Fatalf("dispositions don't add up: %+v", snap.Cache)
	}
}

// TestBackpressure429 pins the bounded-queue contract with fully
// controlled jobs: worker busy + queue full means the next distinct
// request is refused immediately with 429 and a Retry-After hint —
// not queued, not blocked.
func TestBackpressure429(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	release := make(chan struct{})

	blockingRun := func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		<-release
		return []byte("{}"), nil
	}
	instantRun := func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		return []byte("{}"), nil
	}

	recA := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); s.dispatch(recA, &Plan{Key: "job-a", Timeout: time.Minute, run: blockingRun}) }()
	// A is running (not queued) once the worker has drained the queue and
	// registered it in flight.
	waitUntil(t, "job A running", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		_, inFlight := s.flight["job-a"]
		return inFlight && len(s.jobs) == 0
	})

	recB := httptest.NewRecorder()
	wg.Add(1)
	go func() { defer wg.Done(); s.dispatch(recB, &Plan{Key: "job-b", Timeout: time.Minute, run: instantRun}) }()
	waitUntil(t, "job B queued", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.jobs) == 1
	})

	recC := httptest.NewRecorder()
	s.dispatch(recC, &Plan{Key: "job-c", Timeout: time.Minute, run: instantRun})
	if recC.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", recC.Code)
	}
	if recC.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	wg.Wait()
	if recA.Code != 200 || recB.Code != 200 {
		t.Fatalf("released jobs failed: A=%d B=%d", recA.Code, recB.Code)
	}
	if got := s.Snapshot().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestDeadlineQuarantinesPool pins the 504 path AND its hygiene: a
// campaign killed by its deadline answers 504, the worker's pool is
// quarantined (no half-run platform survives into the next request), and
// the server keeps serving.
func TestDeadlineQuarantinesPool(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	body := estimateBody(t, slowSrc, 2000, 2, map[string]any{"timeout_ms": 100})
	resp, data := postJSON(t, ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out campaign answered %d: %s", resp.StatusCode, data)
	}

	// Quarantine-clean: the failed job discarded every pooled platform.
	s.mu.Lock()
	var pooled, quarantined int
	for _, p := range s.pools {
		pooled += p.Size()
		quarantined += p.Quarantined()
	}
	s.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("%d platforms survived a failed job's quarantine", pooled)
	}
	if quarantined == 0 {
		t.Fatal("deadline failure quarantined nothing — the corrupt platform was kept")
	}

	// The server is still healthy: a fresh fast request succeeds.
	resp2, data2 := postJSON(t, ts.URL+"/v1/estimate", estimateBody(t, tinySrc, 40, 2, nil))
	if resp2.StatusCode != 200 {
		t.Fatalf("request after quarantine: HTTP %d: %s", resp2.StatusCode, data2)
	}
}

// TestPanicIsolation: a panicking job answers 500 and does not take the
// worker (or server) down.
func TestPanicIsolation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.dispatch(rec, &Plan{Key: "job-panic", Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		panic("boom")
	}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking job answered %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "boom") {
		t.Fatalf("panic message lost: %s", rec.Body.String())
	}
	rec2 := httptest.NewRecorder()
	s.dispatch(rec2, &Plan{Key: "job-after-panic", Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		return []byte("{}"), nil
	}})
	if rec2.Code != 200 {
		t.Fatalf("server dead after panic: %d", rec2.Code)
	}
}

// TestGracefulDrain pins shutdown semantics: Close lets the in-flight job
// finish and answer 200, while new work is refused with 503.
func TestGracefulDrain(t *testing.T) {
	s := New(Options{Workers: 1})
	release := make(chan struct{})

	recA := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.dispatch(recA, &Plan{Key: "job-drain", Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
			<-release
			return []byte("{}"), nil
		}})
	}()
	waitUntil(t, "job running", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		_, ok := s.flight["job-drain"]
		return ok && len(s.jobs) == 0
	})

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	waitUntil(t, "draining flag", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	recB := httptest.NewRecorder()
	s.dispatch(recB, &Plan{Key: "job-late", Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		return []byte("{}"), nil
	}})
	if recB.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted work: %d", recB.Code)
	}

	close(release)
	wg.Wait()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight job finished")
	}
	if recA.Code != 200 {
		t.Fatalf("in-flight job dropped during drain: %d", recA.Code)
	}
}

// TestScheduleEndpoint covers the feasibility route: a packable task set
// reports per-slot slack, an unpackable one is a 422, and the satellite
// validation fixes surface as 400s.
func TestScheduleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	good, _ := json.Marshal(map[string]any{
		"mif_cycles": 1_000_000,
		"tasks": []map[string]any{
			{"name": "a", "pwcet": 400_000},
			{"name": "b", "pwcet": 300_000},
		},
	})
	resp, data := postJSON(t, ts.URL+"/v1/schedule", good)
	if resp.StatusCode != 200 {
		t.Fatalf("schedule: HTTP %d: %s", resp.StatusCode, data)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Feasible || len(sr.Slots) != 2 {
		t.Fatalf("unexpected schedule result: %s", data)
	}
	for _, slot := range sr.Slots {
		if !slot.Fits || slot.Slack <= 0 {
			t.Fatalf("slot should fit with slack: %+v", slot)
		}
	}

	overfull, _ := json.Marshal(map[string]any{
		"mif_cycles": 100,
		"tasks":      []map[string]any{{"name": "big", "pwcet": 1_000_000}},
	})
	if resp, _ := postJSON(t, ts.URL+"/v1/schedule", overfull); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unpackable task set: HTTP %d, want 422", resp.StatusCode)
	}
}

// TestStaticEndpoint covers the analytical route, including the
// negative-gap soundness fix surfacing as a 400 at the service boundary.
func TestStaticEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	base := map[string]any{
		"program": map[string]any{"source": tinySrc, "name": "tiny"},
		"model":   map[string]any{"sets": 64, "ways": 4, "hit_latency": 10, "miss_latency": 100},
		"trace":   map[string]any{"instruction": true, "data": true},
	}
	good, _ := json.Marshal(base)
	resp, data := postJSON(t, ts.URL+"/v1/static", good)
	if resp.StatusCode != 200 {
		t.Fatalf("static: HTTP %d: %s", resp.StatusCode, data)
	}
	var st StaticResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Accesses == 0 || st.ColdMisses == 0 || len(st.PWCET) != 1 {
		t.Fatalf("implausible static result: %s", data)
	}

	// The satellite bugfix at the HTTP boundary: interference with a
	// non-positive gap must be rejected up front, not silently lower the
	// bound.
	bad := map[string]any{}
	for k, v := range base {
		bad[k] = v
	}
	bad["evictions_per_cycle"] = 0.001
	bad["mean_gap_cycles"] = -500
	badBody, _ := json.Marshal(bad)
	resp, data = postJSON(t, ts.URL+"/v1/static", badBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative gap accepted: HTTP %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "mean_gap_cycles") {
		t.Fatalf("error does not name the offending field: %s", data)
	}
}

// TestRequestValidation sweeps the 400 paths: every malformed request is
// refused before any simulation work.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		path string
		body map[string]any
		want string // substring of the error
	}{
		{"no program", "/v1/estimate", map[string]any{"runs": 40}, "program"},
		{"unknown benchmark", "/v1/estimate",
			map[string]any{"program": map[string]any{"benchmark": "zz"}}, "unknown benchmark"},
		{"benchmark and source", "/v1/estimate",
			map[string]any{"program": map[string]any{"benchmark": "CN", "source": "halt"}}, "mutually exclusive"},
		{"too few runs", "/v1/estimate",
			map[string]any{"program": map[string]any{"source": "halt"}, "runs": 10}, "runs"},
		{"bad probability", "/v1/estimate",
			map[string]any{"program": map[string]any{"source": "halt"}, "probabilities": []float64{2}}, "probabilities"},
		{"bad config", "/v1/estimate",
			map[string]any{"program": map[string]any{"source": "halt"}, "config": map[string]any{"cores": 0}}, "config"},
		{"efl and partitioning", "/v1/estimate",
			map[string]any{"program": map[string]any{"source": "halt"},
				"config": map[string]any{"mid": 500, "partition_ways": []int{2, 2, 2, 2}}}, "config"},
		{"negative timeout", "/v1/estimate",
			map[string]any{"program": map[string]any{"source": "halt"}, "timeout_ms": -1}, "timeout_ms"},
		{"unknown field", "/v1/estimate",
			map[string]any{"program": map[string]any{"source": "halt"}, "bogus": 1}, "bogus"},
		{"no tasks", "/v1/schedule", map[string]any{"mif_cycles": 100}, "tasks"},
		{"duplicate task", "/v1/schedule",
			map[string]any{"mif_cycles": 100, "tasks": []map[string]any{
				{"name": "a", "pwcet": 10}, {"name": "a", "pwcet": 20}}}, "duplicate"},
		{"non-positive pwcet", "/v1/schedule",
			map[string]any{"mif_cycles": 100, "tasks": []map[string]any{{"name": "a", "pwcet": 0}}}, "pwcet"},
		{"no mif", "/v1/schedule",
			map[string]any{"tasks": []map[string]any{{"name": "a", "pwcet": 10}}}, "mif_cycles"},
		{"no trace kinds", "/v1/static",
			map[string]any{"program": map[string]any{"source": "halt"},
				"model": map[string]any{"sets": 64, "ways": 4, "hit_latency": 10, "miss_latency": 100}}, "trace"},
		{"bad model", "/v1/static",
			map[string]any{"program": map[string]any{"source": "halt"},
				"model": map[string]any{"sets": 0, "ways": 4, "hit_latency": 10, "miss_latency": 100},
				"trace": map[string]any{"instruction": true}}, "geometry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, err := json.Marshal(tc.body)
			if err != nil {
				t.Fatal(err)
			}
			resp, data := postJSON(t, ts.URL+tc.path, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400: %s", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), tc.want) {
				t.Fatalf("error %q does not mention %q", data, tc.want)
			}
		})
	}
}

// TestMethodAndHealth covers the trimmings: GET on a compute endpoint is
// 405, /healthz flips to 503 while draining, /metrics is live JSON.
func TestMethodAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/estimate = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if snap.QueueCapacity == 0 {
		t.Fatalf("implausible metrics snapshot: %+v", snap)
	}

	s.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// TestIIDGateSurfacesAs422 pins the run-error path: a statistically valid
// request whose sample fails the i.i.d. gate is the client's problem
// (unanalysable input), reported as 422 with the gate's verdict — and the
// failed campaign must not poison the cache.
func TestIIDGateSurfacesAs422(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.dispatch(rec, &Plan{Key: "job-422", Timeout: time.Minute, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		return nil, fmt.Errorf("mbpta: sample failed i.i.d. tests")
	}})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("run error answered %d, want 422", rec.Code)
	}
	s.mu.Lock()
	_, cached := s.cache.get("job-422")
	s.mu.Unlock()
	if cached {
		t.Fatal("failed campaign was cached")
	}
}

// TestEstimateConverge: a converge request runs the batched streaming
// estimator, stops at or before the run ceiling, and reports the runs it
// actually consumed. The response must not depend on the batch width —
// per-run seeds are derived from the run index, so two fresh servers
// answering the same request at batch 2 and batch 8 must produce
// byte-identical bodies.
func TestEstimateConverge(t *testing.T) {
	var bodies [][]byte
	for _, batch := range []int{2, 8} {
		_, ts := newTestServer(t, Options{})
		body := estimateBody(t, tinySrc, 300, 7, map[string]any{
			"converge": true, "batch": batch, "audit": true,
		})
		resp, data := postJSON(t, ts.URL+"/v1/estimate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch=%d: status %d: %s", batch, resp.StatusCode, data)
		}
		var er EstimateResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if er.Runs <= 0 || er.Runs > 300 {
			t.Fatalf("batch=%d: Runs = %d, want in (0,300]", batch, er.Runs)
		}
		if batch == 2 {
			t.Logf("converged at %d runs (ceiling 300)", er.Runs)
		}
		bodies = append(bodies, data)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("converge responses differ across batch widths:\nbatch=2: %s\nbatch=8: %s", bodies[0], bodies[1])
	}
}

// TestBatchRequiresConverge: the fixed-count protocol defines its sample
// sequentially, so requesting a batch width without converge is a client
// error, not a silent behaviour change.
func TestBatchRequiresConverge(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := estimateBody(t, tinySrc, 40, 2, map[string]any{"batch": 4})
	resp, data := postJSON(t, ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "requires converge") {
		t.Fatalf("error should explain the converge requirement: %s", data)
	}
}

// TestHierarchyOverride pins the multi-level config surface: a request can
// replace the default two-level layout with an explicit hierarchy (plus a
// shared-data window), the campaign runs end-to-end on it, and malformed
// hierarchies are rejected as client errors before any simulation work.
func TestHierarchyOverride(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	threeLevel := []map[string]any{
		{"name": "L1", "size_bytes": 4096, "ways": 4, "latency_cycles": 1},
		{"name": "L2", "size_bytes": 16384, "ways": 4, "shared": true, "latency_cycles": 6},
		{"name": "LLC", "size_bytes": 65536, "ways": 8, "shared": true, "latency_cycles": 10},
	}
	body := estimateBody(t, tinySrc, 40, 2, map[string]any{
		"config": map[string]any{"mid": 500, "hierarchy": threeLevel, "shared_data_bytes": 256},
		"audit":  true,
	})
	resp, data := postJSON(t, ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("three-level estimate: HTTP %d: %s", resp.StatusCode, data)
	}
	var est EstimateResponse
	if err := json.Unmarshal(data, &est); err != nil {
		t.Fatalf("response: %v\n%s", err, data)
	}
	if est.Runs != 40 || est.MaxObserved <= 0 {
		t.Fatalf("implausible three-level estimate: %s", data)
	}

	// The flat default must live in a different cache entry than the
	// explicit hierarchy (different resolved identity).
	flat := estimateBody(t, tinySrc, 40, 2, map[string]any{"audit": true})
	respFlat, dataFlat := postJSON(t, ts.URL+"/v1/estimate", flat)
	if respFlat.StatusCode != http.StatusOK {
		t.Fatalf("flat estimate: HTTP %d: %s", respFlat.StatusCode, dataFlat)
	}
	if respFlat.Header.Get("X-Cache") != "miss" {
		t.Fatalf("flat estimate should not share the hierarchy request's cache entry")
	}

	bad := []struct {
		name   string
		config map[string]any
		want   string
	}{
		{"L1 shared", map[string]any{"hierarchy": []map[string]any{
			{"name": "L1", "size_bytes": 4096, "ways": 4, "shared": true, "latency_cycles": 1},
			{"name": "LLC", "size_bytes": 65536, "ways": 8, "shared": true, "latency_cycles": 10},
		}}, "shared"},
		{"unknown policy", map[string]any{"hierarchy": []map[string]any{
			{"name": "L1", "size_bytes": 4096, "ways": 4, "latency_cycles": 1, "policy": "rr"},
			{"name": "LLC", "size_bytes": 65536, "ways": 8, "shared": true, "latency_cycles": 10},
		}}, "policy"},
		{"flat knobs alongside hierarchy", map[string]any{
			"llc_ways": 4, "hierarchy": threeLevel,
		}, "mutually exclusive"},
		{"bad shared window", map[string]any{"shared_data_bytes": 24}, "multiple"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			body := estimateBody(t, tinySrc, 40, 2, map[string]any{"config": tc.config})
			resp, data := postJSON(t, ts.URL+"/v1/estimate", body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400: %s", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), tc.want) {
				t.Fatalf("error %s should mention %q", data, tc.want)
			}
		})
	}
}
