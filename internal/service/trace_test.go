package service

// Trace-ingestion tests: upload → estimate-by-hash → byte-identical cache
// hit, validation failures, mutual exclusion, and resolution through a
// shared blob store (the fleet path, exercised here without a cluster).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"testing"

	"efl/internal/workload"
)

// genTestTrace builds a small deterministic trace for the tests.
func genTestTrace(t *testing.T, seed uint64) []byte {
	t.Helper()
	data, err := workload.GenSpec{
		Name: "svc-test", Seed: seed, Records: 300, FootprintBytes: 8 * 1024,
		Locality: 0.6, StoreFrac: 0.3, MeanGap: 2, BlockLen: 64,
	}.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return data
}

func uploadTrace(t *testing.T, url string, data []byte) TraceUploadResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/trace", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d: %s", resp.StatusCode, body)
	}
	var out TraceUploadResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("upload response: %v", err)
	}
	return out
}

func traceEstimateBody(t *testing.T, hash string, extra map[string]any) []byte {
	t.Helper()
	m := map[string]any{
		"program":  map[string]any{"trace_hash": hash},
		"config":   map[string]any{"mid": 500},
		"runs":     40,
		"seed":     1,
		"skip_iid": true,
	}
	for k, v := range extra {
		m[k] = v
	}
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestTraceUploadEstimateHit pins the tentpole's service contract: an
// uploaded trace is addressable by the SHA-256 of its bytes, an audited
// estimate by trace_hash computes with A1-A5 clean, and the identical
// re-request replays byte-identically from the cache.
func TestTraceUploadEstimateHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	data := genTestTrace(t, 11)
	up := uploadTrace(t, ts.URL, data)
	sum := sha256.Sum256(data)
	if want := hex.EncodeToString(sum[:]); up.TraceHash != want {
		t.Fatalf("trace_hash = %s, want %s", up.TraceHash, want)
	}
	if up.Records != 300 || up.ReplayInstructions == 0 {
		t.Fatalf("upload meta: %+v", up)
	}

	body := traceEstimateBody(t, up.TraceHash, map[string]any{"audit": true})
	resp, first := postJSON(t, ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: HTTP %d: %s", resp.StatusCode, first)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("X-Cache = %q, want miss", xc)
	}
	var est EstimateResponse
	if err := json.Unmarshal(first, &est); err != nil {
		t.Fatal(err)
	}
	if est.Runs != 40 || len(est.PWCET) == 0 {
		t.Fatalf("estimate: %+v", est)
	}
	var audit struct {
		Runs       int `json:"runs"`
		Invariants map[string]struct {
			Checks     int64 `json:"checks"`
			Violations int64 `json:"violations"`
		} `json:"invariants"`
	}
	if err := json.Unmarshal(est.Audit, &audit); err != nil {
		t.Fatalf("audit block: %v", err)
	}
	if audit.Runs != 40 {
		t.Fatalf("audited runs = %d, want 40", audit.Runs)
	}
	var checks int64
	for name, iv := range audit.Invariants {
		checks += iv.Checks
		if iv.Violations > 0 {
			t.Errorf("invariant %s: %d violations on a traced workload", name, iv.Violations)
		}
	}
	if checks == 0 {
		t.Fatal("audit block has no checks")
	}

	resp2, second := postJSON(t, ts.URL+"/v1/estimate", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-request: HTTP %d", resp2.StatusCode)
	}
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("re-request X-Cache = %q, want hit", xc)
	}
	if string(first) != string(second) {
		t.Fatal("cache hit is not byte-identical to the fresh result")
	}
}

// TestTraceValidationErrors pins the 400 surface: malformed uploads,
// unknown hashes, bad hash shapes, and the benchmark/source exclusivity.
func TestTraceValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	valid := genTestTrace(t, 12)
	up := uploadTrace(t, ts.URL, valid)

	cases := []struct {
		name string
		path string
		body []byte
	}{
		{"malformed trace upload", "/v1/trace", []byte("not a trace")},
		{"truncated trace upload", "/v1/trace", valid[:len(valid)-2]},
		{"unknown trace hash", "/v1/estimate",
			traceEstimateBody(t, "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", nil)},
		{"short trace hash", "/v1/estimate", traceEstimateBody(t, "abc123", nil)},
		{"non-hex trace hash", "/v1/estimate",
			traceEstimateBody(t, "zz23456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", nil)},
		{"trace_hash with source", "/v1/estimate", func() []byte {
			b, _ := json.Marshal(map[string]any{
				"program": map[string]any{"trace_hash": up.TraceHash, "source": tinySrc},
				"runs":    40, "skip_iid": true,
			})
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d (want 400): %.200s", resp.StatusCode, body)
			}
		})
	}
}

// memBlobStore is an in-memory BlobStore.
type memBlobStore struct {
	m map[string][]byte
}

func (s *memBlobStore) Get(key string) ([]byte, bool, error) {
	b, ok := s.m[key]
	return b, ok, nil
}
func (s *memBlobStore) Put(key string, body []byte) error {
	s.m[key] = body
	return nil
}

// TestTraceResolvesThroughBlobStore pins the fleet path without a fleet:
// a trace uploaded to one server resolves on another sharing only the
// blob store, and the two servers' estimate bodies are byte-identical.
func TestTraceResolvesThroughBlobStore(t *testing.T) {
	store := &memBlobStore{m: map[string][]byte{}}
	_, tsA := newTestServer(t, Options{Workers: 1, TraceStore: store})
	srvB, tsB := newTestServer(t, Options{Workers: 1, TraceStore: store})

	up := uploadTrace(t, tsA.URL, genTestTrace(t, 13))
	body := traceEstimateBody(t, up.TraceHash, nil)
	respA, fromA := postJSON(t, tsA.URL+"/v1/estimate", body)
	respB, fromB := postJSON(t, tsB.URL+"/v1/estimate", body)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d / %d: %.200s / %.200s", respA.StatusCode, respB.StatusCode, fromA, fromB)
	}
	if string(fromA) != string(fromB) {
		t.Fatal("estimates via upload node and store-resolving node differ")
	}
	snap := srvB.Snapshot()
	if snap.Traces.Misses == 0 {
		t.Fatal("server B never missed its local trace LRU (store path untested)")
	}

	// A corrupted store entry must fail resolution, not replay garbage.
	store.m[up.TraceHash][50] ^= 0xFF
	srvC, tsC := newTestServer(t, Options{Workers: 1, TraceStore: store})
	respC, bodyC := postJSON(t, tsC.URL+"/v1/estimate", body)
	if respC.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt store entry: HTTP %d (want 400): %.200s", respC.StatusCode, bodyC)
	}
	_ = srvC
}
