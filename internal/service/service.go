// Package service exposes the analysis toolkit as a long-running
// estimation server: pWCET estimation campaigns (POST /v1/estimate),
// schedule feasibility (POST /v1/schedule) and the static cross-check
// (POST /v1/static) over HTTP JSON.
//
// The server is a thin, hardened shell around the campaign machinery the
// repository already has — the same pieces the batch experiment driver
// uses, arranged for a request/response lifecycle:
//
//   - Execution goes through runner.MapResilient with per-worker sim.Pool
//     state: a panicking or failing job quarantines the worker's pooled
//     platforms (nothing it touched can be trusted) and never takes the
//     server down.
//   - Results are pure functions of the canonical request identity
//     (simulator determinism), so finished bodies live in an LRU keyed by
//     a content-addressed hash, and identical in-flight requests coalesce
//     onto one campaign (single-flight).
//   - The work queue is bounded: when it is full the server answers 429
//     with Retry-After instead of queueing unboundedly — backpressure is
//     part of the interface, matching the repo-wide graceful-degradation
//     stance (a saturated estimation service must say so, not fall over).
//   - Every request runs under its own deadline, independent of the HTTP
//     connection: a client that disconnects does not waste the campaign
//     (the result still lands in the cache).
//
// Close drains: queued jobs finish, new requests get 503.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"efl"
	"efl/internal/mbpta"
	"efl/internal/metrics"
	"efl/internal/runner"
	"efl/internal/sched"
	"efl/internal/sim"
)

// MaxBodyBytes bounds request bodies (assembler sources dominate; 4 MiB
// is far above any legitimate request). Exported so the cluster router,
// which reads bodies before planning them, applies the same bound.
const MaxBodyBytes = 4 << 20

// Options configures a Server. The zero value selects sensible defaults.
type Options struct {
	// Workers is the number of campaign workers, each owning one sim.Pool
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// CacheEntries bounds the LRU result cache's entry count (default 256).
	CacheEntries int
	// CacheBytes bounds the LRU result cache's total body bytes (default
	// 64 MiB). The entry cap alone is not a memory bound: a few large
	// audited estimate bodies can exhaust RAM well inside it.
	CacheBytes int64
	// MaxRuns caps the per-request measurement-run count (default 2000).
	MaxRuns int
	// DefaultTimeout bounds requests that set no timeout_ms (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-supplied timeouts (default 5m).
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// TraceStore, when set, shares uploaded traces fleet-wide (the cluster
	// wires its DirStore here), so an estimate by trace_hash plans on any
	// node, not just the one that took the upload.
	TraceStore BlobStore
	// TraceCacheEntries and TraceCacheBytes bound the in-memory trace LRU
	// (defaults 64 entries, 64 MiB).
	TraceCacheEntries int
	TraceCacheBytes   int64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 2000
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.TraceCacheEntries <= 0 {
		o.TraceCacheEntries = 64
	}
	if o.TraceCacheBytes <= 0 {
		o.TraceCacheBytes = 64 << 20
	}
	return o
}

// job is one unit of queued work: the closure computing the canonical
// response body, the deadline it runs under, and the slot its outcome is
// published through.
type job struct {
	key    string
	ctx    context.Context
	cancel context.CancelFunc
	run    func(ctx context.Context, pool *sim.Pool) ([]byte, error)
	done   chan struct{} // closed when the outcome fields are final

	// Outcome (valid after done closes; written under the server mutex).
	body     []byte
	status   runner.Status
	errMsg   string
	timedOut bool
}

// WorkerStat is one worker's lifetime accounting (exposed via /metrics).
type WorkerStat struct {
	Jobs        uint64  `json:"jobs"`
	BusySeconds float64 `json:"busy_seconds"`
	Quarantined int     `json:"quarantined"`
}

// Server is the estimation service. Create with New, expose via Handler,
// stop with Close.
type Server struct {
	opts  Options
	start time.Time
	jobs  chan *job
	pools []*sim.Pool
	wg    sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	cache     *resultCache
	flight    map[string]*job
	requests  map[string]uint64
	rejected  uint64
	cacheHits uint64
	cacheMiss uint64
	coalesced uint64
	workers   []WorkerStat
	latency   metrics.Histogram // end-to-end request latency, microseconds

	// traces is the uploaded-trace registry (raw bytes keyed by their
	// SHA-256), with its own accounting.
	traces           *resultCache
	traceUploads     uint64
	traceHits        uint64
	traceMiss        uint64
	traceStoreErrors uint64
}

// New starts a Server with opts.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		start:    time.Now(),
		jobs:     make(chan *job, opts.QueueDepth),
		pools:    make([]*sim.Pool, opts.Workers),
		cache:    newResultCache(opts.CacheEntries, opts.CacheBytes),
		traces:   newResultCache(opts.TraceCacheEntries, opts.TraceCacheBytes),
		flight:   map[string]*job{},
		requests: map[string]uint64{},
		workers:  make([]WorkerStat, opts.Workers),
	}
	for i := range s.pools {
		s.pools[i] = sim.NewPool()
	}
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// Close drains the server: no new jobs are accepted (new requests answer
// 503), queued jobs run to completion, and the workers exit. Safe to call
// once.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Handler returns the HTTP routing for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/estimate", s.post(s.handleCompute))
	mux.HandleFunc("/v1/schedule", s.post(s.handleCompute))
	mux.HandleFunc("/v1/static", s.post(s.handleCompute))
	mux.HandleFunc("/v1/trace", s.post(s.handleTrace))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// post wraps a handler with the method check and request accounting.
func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		s.mu.Lock()
		s.requests[r.URL.Path]++
		s.mu.Unlock()
		h(w, r)
	}
}

// worker is one campaign worker: it owns pool s.pools[id] and runs queued
// jobs through the fail-soft engine. A failed or panicked job leaves the
// pool quarantined (emptied) via MapResilient's discard hook, so corrupt
// platform state never leaks into the next request.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	pool := s.pools[id]
	for jb := range s.jobs {
		t0 := time.Now()
		outs, _ := runner.MapResilient(context.Background(),
			runner.ResilientOptions{Options: runner.Options{Parallelism: 1}},
			func() *sim.Pool { return pool },
			func(p *sim.Pool) { p.QuarantineAll() },
			[]*job{jb},
			func(_ context.Context, p *sim.Pool, _ int, item *job) ([]byte, error) {
				// The job's OWN context carries the request deadline. It is
				// deliberately not MapResilient's campaign context: a
				// deadline there would read as campaign cancellation and
				// skip the discard path, while here it is an ordinary job
				// failure — the worker state is quarantined and the server
				// lives on.
				return item.run(item.ctx, p)
			})
		oc := outs[0]
		jb.cancel()
		s.mu.Lock()
		jb.status, jb.errMsg = oc.Status, oc.Error
		jb.timedOut = !oc.OK() && errors.Is(jb.ctx.Err(), context.DeadlineExceeded)
		if oc.OK() {
			jb.body = oc.Value
			s.cache.put(jb.key, oc.Value)
		}
		delete(s.flight, jb.key)
		s.workers[id].Jobs++
		s.workers[id].BusySeconds += time.Since(t0).Seconds()
		s.workers[id].Quarantined = pool.Quarantined()
		s.mu.Unlock()
		close(jb.done)
	}
}

// Plan is a validated, canonically-resolved compute request ready to
// execute: the content-addressed cache key, the effective deadline, and
// the campaign closure producing the canonical response body. Plans are
// built by PlanRequest and executed by Execute (or dispatch, its HTTP
// shell); the cluster router builds Plans to learn a request's key — and
// therefore its home node — without running anything.
type Plan struct {
	// Key is the SHA-256 cache key of the resolved request identity.
	Key string
	// Timeout is the effective per-request deadline.
	Timeout time.Duration
	run     func(ctx context.Context, pool *sim.Pool) ([]byte, error)
}

// Chaos wraps the plan's campaign closure with a hook that runs inside
// the job, before the real work. A hook that panics exercises the
// service's panic-isolation path end-to-end — this is the seam the
// cluster chaos harness injects the fault.JobPanic class through. The
// hook runs only if the job actually executes (a cache hit or coalesced
// wait never reaches it).
func (p *Plan) Chaos(hook func()) {
	inner := p.run
	p.run = func(ctx context.Context, pool *sim.Pool) ([]byte, error) {
		hook()
		return inner(ctx, pool)
	}
}

// StatusError is a failed request outcome: an HTTP status, the message
// for the error envelope, and whether an identical retry can be expected
// to succeed. Retryable errors (capacity, deadline, panic) carry a
// Retry-After hint on the wire; deterministic failures (invalid or
// unanalysable input) do not — retrying them burns a campaign to fail
// identically.
type StatusError struct {
	Status    int
	Msg       string
	Retryable bool
}

// Error implements error.
func (e *StatusError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.Status, e.Msg) }

// Execute runs a planned request through the shared compute path — cache
// lookup, single-flight coalescing, bounded enqueue — blocking until the
// outcome. It returns the canonical response body and its cache
// disposition ("hit", "coalesced", "miss"), or a StatusError.
//
// Failure propagation contract (shared by the leader and every coalesced
// waiter): a leader whose campaign is deadline-killed or panics yields a
// retryable 5xx for everyone riding the flight, and a failed campaign is
// never cached — the next identical request starts a fresh flight.
func (s *Server) Execute(pl *Plan) ([]byte, string, *StatusError) {
	t0 := time.Now()
	s.mu.Lock()
	if body, ok := s.cache.get(pl.Key); ok {
		s.cacheHits++
		s.mu.Unlock()
		s.observe(t0)
		return body, "hit", nil
	}
	if jb, ok := s.flight[pl.Key]; ok {
		// An identical request is already running: ride it instead of
		// paying for a second campaign.
		s.coalesced++
		s.mu.Unlock()
		<-jb.done
		s.observe(t0)
		return jobOutcome(jb, "coalesced")
	}
	if s.draining {
		s.mu.Unlock()
		return nil, "", &StatusError{Status: http.StatusServiceUnavailable, Msg: "server draining", Retryable: true}
	}
	jb := &job{key: pl.Key, run: pl.run, done: make(chan struct{})}
	jb.ctx, jb.cancel = context.WithTimeout(context.Background(), pl.Timeout)
	select {
	case s.jobs <- jb:
		s.cacheMiss++
		s.flight[pl.Key] = jb
		s.mu.Unlock()
	default:
		s.rejected++
		s.mu.Unlock()
		jb.cancel()
		return nil, "", &StatusError{Status: http.StatusTooManyRequests, Msg: "queue full", Retryable: true}
	}
	<-jb.done
	s.observe(t0)
	return jobOutcome(jb, "miss")
}

// jobOutcome maps a finished job onto the Execute result contract.
func jobOutcome(jb *job, xcache string) ([]byte, string, *StatusError) {
	switch {
	case jb.status == runner.StatusOK:
		return jb.body, xcache, nil
	case jb.timedOut:
		// The flight's deadline, not necessarily the waiter's: retryable.
		return nil, "", &StatusError{Status: http.StatusGatewayTimeout, Msg: "deadline exceeded: " + jb.errMsg, Retryable: true}
	case jb.status == runner.StatusPanicked:
		return nil, "", &StatusError{Status: http.StatusInternalServerError, Msg: jb.errMsg, Retryable: true}
	default:
		// Semantically valid request whose campaign failed (i.i.d. gate,
		// infeasible schedule input, simulation abort): the client's input
		// was processable but unanalysable. Deterministic, so not retryable.
		return nil, "", &StatusError{Status: http.StatusUnprocessableEntity, Msg: jb.errMsg, Retryable: false}
	}
}

// dispatch is Execute's HTTP shell: run the plan, write the body or the
// error envelope, stamping retryable failures with the Retry-After hint.
func (s *Server) dispatch(w http.ResponseWriter, pl *Plan) {
	body, xcache, serr := s.Execute(pl)
	if serr != nil {
		if serr.Retryable {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		}
		writeError(w, serr.Status, serr.Msg)
		return
	}
	writeBody(w, body, xcache)
}

// RetryAfterSeconds returns the server's configured Retry-After hint in
// whole seconds (ceil with a floor of 1). The cluster router stamps the
// same hint on retryable failures it synthesises itself (all candidates
// exhausted, circuit open), so clients see one consistent contract —
// every retryable error carries Retry-After >= 1s — regardless of which
// layer failed the request.
func (s *Server) RetryAfterSeconds() int { return retryAfterSeconds(s.opts.RetryAfter) }

// retryAfterSeconds renders a Retry-After hint in whole seconds, rounding
// UP with a floor of 1: the header's unit is seconds, so any sub-second
// hint truncated (or rounded) to 0 reads as "retry immediately" and turns
// a saturated server's backpressure into a client retry storm.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// CacheLookup returns the cached canonical body for key, counting a cache
// hit. The cluster router probes this before consulting the shared fleet
// store or routing the request away.
func (s *Server) CacheLookup(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	body, ok := s.cache.get(key)
	if ok {
		s.cacheHits++
	}
	return body, ok
}

// CacheFill seeds the local result cache with a canonical body computed
// elsewhere in the fleet (a shared-store hit hydrates the node it landed
// on). Safe because bodies are pure functions of the key.
func (s *Server) CacheFill(key string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.put(key, body)
}

// CountRequest records one request against path in the /metrics QPS
// accounting. The cluster router serves compute paths outside the HTTP
// handlers below, so it reports them here.
func (s *Server) CountRequest(path string) {
	s.mu.Lock()
	s.requests[path]++
	s.mu.Unlock()
}

// observe records one end-to-end request latency.
func (s *Server) observe(t0 time.Time) {
	us := time.Since(t0).Microseconds()
	s.mu.Lock()
	s.latency.Observe(us)
	s.mu.Unlock()
}

// effectiveTimeout resolves a request's timeout_ms against the server
// bounds.
func (s *Server) effectiveTimeout(ms int64) (time.Duration, error) {
	if ms < 0 {
		return 0, fmt.Errorf("timeout_ms: negative")
	}
	if ms == 0 {
		return s.opts.DefaultTimeout, nil
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d, nil
}

// estimateIdentity is the canonical identity of an estimate request (the
// cache-key payload). Every field that can change the response bytes is
// here; nothing else is.
type estimateIdentity struct {
	Config        sim.Config `json:"config"`
	ProgramSHA    string     `json:"program_sha256"`
	Runs          int        `json:"runs"`
	Seed          uint64     `json:"seed"`
	Probabilities []float64  `json:"probabilities"`
	SkipIID       bool       `json:"skip_iid"`
	Audit         bool       `json:"audit"`
	// Converge changes the collected sample; the batch width does not
	// (per-run seeds are derived from the run index), so it is
	// deliberately absent — requests differing only in batch share one
	// cache entry and coalesce in flight.
	Converge bool `json:"converge"`
}

// PlanRequest parses and validates a compute request body for path,
// returning the executable plan. Any error is a client error (HTTP 400):
// validation happens before any simulation work, so a malformed request
// costs a JSON decode, not a campaign. This is the seam the cluster
// router uses to learn a request's canonical key (and therefore its home
// node) from raw bytes.
func (s *Server) PlanRequest(path string, body []byte) (*Plan, error) {
	switch path {
	case "/v1/estimate":
		return s.planEstimate(body)
	case "/v1/schedule":
		return s.planSchedule(body)
	case "/v1/static":
		return s.planStatic(body)
	default:
		return nil, fmt.Errorf("unknown compute path %q", path)
	}
}

func (s *Server) planEstimate(body []byte) (*Plan, error) {
	var req EstimateRequest
	if err := decodeJSON(body, &req); err != nil {
		return nil, err
	}
	prog, sha, err := s.buildProgram(req.Program)
	if err != nil {
		return nil, err
	}
	cfg, err := req.Config.resolve()
	if err != nil {
		return nil, err
	}
	probs, err := normalizeProbabilities(req.Probabilities)
	if err != nil {
		return nil, err
	}
	runs := req.Runs
	if runs == 0 {
		runs = 300
	}
	if runs < 40 {
		return nil, fmt.Errorf("runs: at least 40 required for a block-maxima fit")
	}
	if runs > s.opts.MaxRuns {
		return nil, fmt.Errorf("runs: %d exceeds the server cap %d", runs, s.opts.MaxRuns)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	batch := req.Batch
	if req.Converge {
		if batch == 0 {
			batch = 8
		}
		if batch < 1 || batch > 64 {
			return nil, fmt.Errorf("batch: %d outside [1,64]", batch)
		}
	} else if batch != 0 {
		return nil, fmt.Errorf("batch: requires converge (the fixed-count protocol collects sequentially; batching it would change results)")
	}
	timeout, err := s.effectiveTimeout(req.TimeoutMS)
	if err != nil {
		return nil, err
	}
	key := cacheKey("estimate", estimateIdentity{
		Config: cfg, ProgramSHA: sha, Runs: runs, Seed: seed,
		Probabilities: probs, SkipIID: req.SkipIID, Audit: req.Audit,
		Converge: req.Converge,
	})
	audit := req.Audit
	skipIID := req.SkipIID
	converge := req.Converge
	name := prog.Name
	return &Plan{Key: key, Timeout: timeout, run: func(ctx context.Context, pool *sim.Pool) ([]byte, error) {
		var aud *sim.Auditor
		if audit {
			aud = sim.NewAuditor()
			pool.SetAuditor(aud)
			defer pool.SetAuditor(nil)
		}
		var times []float64
		if converge {
			// Convergence-stopped batched collection: the stream tracks the
			// deepest requested tail (the slowest quantile to stabilise) and
			// the batch engine supplies runs with index-derived seeds.
			minRuns := 100
			if runs < minRuns {
				minRuns = runs
			}
			stream, serr := mbpta.NewStream(mbpta.StreamOptions{
				Options: mbpta.Options{SkipIIDTests: true},
				Prob:    probs[0],
				MinRuns: minRuns,
				MaxRuns: runs,
			})
			if serr != nil {
				return nil, serr
			}
			if _, serr := pool.StreamAnalysisTimes(ctx, cfg, prog, batch, runs,
				func(i int) uint64 { return runner.Seed(seed, "run/"+strconv.Itoa(i)) },
				stream.Add); serr != nil {
				return nil, serr
			}
			times = stream.Times()
		} else {
			var cerr error
			times, cerr = pool.CollectAnalysisTimes(ctx, cfg, prog, runs, seed)
			if cerr != nil {
				return nil, cerr
			}
		}
		res, err := mbpta.Analyze(times, mbpta.Options{SkipIIDTests: skipIID})
		if err != nil {
			return nil, err
		}
		resp := EstimateResponse{
			Program: name, ProgramSHA: sha, Runs: len(times), Seed: seed,
			MaxObserved: res.MaxSeen, PWCET: make(map[string]float64, len(probs)),
		}
		if res.IIDChecked {
			resp.IID = &IIDSummary{WWAbsZ: res.IID.WW.AbsZ, KSPValue: res.IID.KS.PValue, Passed: res.IID.Passed}
		}
		for _, p := range probs {
			v, err := res.PWCETE(p)
			if err != nil {
				return nil, err
			}
			resp.PWCET[probKey(p)] = v
		}
		if aud != nil {
			raw, err := json.Marshal(aud.Report())
			if err != nil {
				return nil, err
			}
			resp.Audit = raw
		}
		return json.Marshal(resp)
	}}, nil
}

// scheduleIdentity is the canonical identity of a schedule request.
type scheduleIdentity struct {
	Config    sim.Config `json:"config"`
	MIFCycles int64      `json:"mif_cycles"`
	Tasks     []TaskSpec `json:"tasks"`
}

func (s *Server) planSchedule(body []byte) (*Plan, error) {
	var req ScheduleRequest
	if err := decodeJSON(body, &req); err != nil {
		return nil, err
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	cfg, err := req.Config.resolve()
	if err != nil {
		return nil, err
	}
	if req.MIFCycles <= 0 {
		return nil, fmt.Errorf("mif_cycles: must be positive")
	}
	timeout, err := s.effectiveTimeout(req.TimeoutMS)
	if err != nil {
		return nil, err
	}
	key := cacheKey("schedule", scheduleIdentity{Config: cfg, MIFCycles: req.MIFCycles, Tasks: req.Tasks})
	tasks := make([]*sched.Task, len(req.Tasks))
	for i, t := range req.Tasks {
		tasks[i] = &sched.Task{Name: t.Name, PWCET: t.PWCET}
	}
	mif := req.MIFCycles
	return &Plan{Key: key, Timeout: timeout, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		sch, err := sched.PackGreedy(cfg, tasks, mif)
		if err != nil {
			return nil, err
		}
		rep, err := sch.CheckFeasibility()
		if err != nil {
			return nil, err
		}
		resp := ScheduleResponse{Feasible: rep.Feasible, Frames: make([][]SlotJSON, len(sch.Frames))}
		for fi, f := range sch.Frames {
			frame := make([]SlotJSON, 0, len(f.Slots))
			for _, slot := range f.Slots {
				if slot.Task == nil {
					continue
				}
				frame = append(frame, SlotJSON{Core: slot.Core, Task: slot.Task.Name})
			}
			resp.Frames[fi] = frame
		}
		for _, c := range rep.PerSlot {
			resp.Slots = append(resp.Slots, SlotCheckJSON{
				Frame: c.Frame, Core: c.Core, Task: c.Task,
				PWCET: c.PWCET, Budget: c.Budget, Fits: c.Fits, Slack: c.Slack,
			})
		}
		return json.Marshal(resp)
	}}, nil
}

// staticIdentity is the canonical identity of a static request.
type staticIdentity struct {
	ProgramSHA        string    `json:"program_sha256"`
	Model             ModelSpec `json:"model"`
	Trace             TraceSpec `json:"trace"`
	EvictionsPerCycle float64   `json:"evictions_per_cycle"`
	MeanGapCycles     float64   `json:"mean_gap_cycles"`
	Conservative      bool      `json:"conservative"`
	Probabilities     []float64 `json:"probabilities"`
}

func (s *Server) planStatic(body []byte) (*Plan, error) {
	var req StaticRequest
	if err := decodeJSON(body, &req); err != nil {
		return nil, err
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	prog, sha, err := s.buildProgram(req.Program)
	if err != nil {
		return nil, err
	}
	model := efl.StaticCacheModel{
		Sets: req.Model.Sets, Ways: req.Model.Ways,
		HitLat: req.Model.HitLatency, MissLat: req.Model.MissLatency,
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	probs, err := normalizeProbabilities(req.Probabilities)
	if err != nil {
		return nil, err
	}
	// Resolve trace defaults before keying so spelled-out and defaulted
	// requests share a cache entry.
	trace := req.Trace
	if trace.LineBytes == 0 {
		trace.LineBytes = 16
	}
	if trace.MaxSteps == 0 {
		trace.MaxSteps = 10_000_000
	}
	timeout, err := s.effectiveTimeout(req.TimeoutMS)
	if err != nil {
		return nil, err
	}
	key := cacheKey("static", staticIdentity{
		ProgramSHA: sha, Model: req.Model, Trace: trace,
		EvictionsPerCycle: req.EvictionsPerCycle, MeanGapCycles: req.MeanGapCycles,
		Conservative: req.Conservative, Probabilities: probs,
	})
	evict, gap, cons := req.EvictionsPerCycle, req.MeanGapCycles, req.Conservative
	name := prog.Name
	return &Plan{Key: key, Timeout: timeout, run: func(ctx context.Context, _ *sim.Pool) ([]byte, error) {
		res, err := efl.StaticPWCET(prog, model, efl.StaticTraceOptions{
			LineBytes: trace.LineBytes, Instruction: trace.Instruction,
			Data: trace.Data, MaxSteps: trace.MaxSteps,
		}, evict, gap, cons)
		if err != nil {
			return nil, err
		}
		resp := StaticResponse{
			Program: name, ProgramSHA: sha, Accesses: res.Accesses,
			ColdMisses: res.ColdMisses, Mean: res.Mean, Var: res.Var,
			PWCET: make(map[string]float64, len(probs)),
		}
		for _, p := range probs {
			v, err := res.PWCETE(p)
			if err != nil {
				return nil, err
			}
			resp.PWCET[probKey(p)] = v
		}
		return json.Marshal(resp)
	}}, nil
}

// handleCompute is the HTTP entry of every compute endpoint: read the
// bounded body, plan, dispatch.
func (s *Server) handleCompute(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	pl, err := s.PlanRequest(r.URL.Path, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.dispatch(w, pl)
}

// MetricsSnapshot is the /metrics JSON body.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	QPS           float64           `json:"qps"`
	Requests      map[string]uint64 `json:"requests"`
	Rejected      uint64            `json:"rejected"`
	QueueDepth    int               `json:"queue_depth"`
	QueueCapacity int               `json:"queue_capacity"`
	Cache         CacheStats        `json:"cache"`
	Traces        TraceStats        `json:"traces"`
	Workers       []WorkerStat      `json:"workers"`
	LatencyUS     LatencyStats      `json:"latency_us"`
}

// CacheStats summarises the result cache.
type CacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRate   float64 `json:"hit_rate"`
}

// LatencyStats summarises the request latency histogram (microseconds;
// percentiles are power-of-two bucket upper bounds).
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot returns the current metrics.
func (s *Server) Snapshot() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSeconds: up,
		Requests:      make(map[string]uint64, len(s.requests)),
		Rejected:      s.rejected,
		QueueDepth:    len(s.jobs),
		QueueCapacity: cap(s.jobs),
		Cache: CacheStats{
			Hits: s.cacheHits, Misses: s.cacheMiss, Coalesced: s.coalesced,
			Entries: s.cache.len(), Bytes: s.cache.size(),
		},
		Traces: TraceStats{
			Uploads: s.traceUploads, Hits: s.traceHits, Misses: s.traceMiss,
			StoreErrors: s.traceStoreErrors,
			Entries:     s.traces.len(), Bytes: s.traces.size(),
		},
		Workers: append([]WorkerStat(nil), s.workers...),
		LatencyUS: LatencyStats{
			Count: s.latency.Count(), Mean: s.latency.Mean(), Max: s.latency.Max(),
			P50: s.latency.Quantile(0.50), P90: s.latency.Quantile(0.90), P99: s.latency.Quantile(0.99),
		},
	}
	var total uint64
	for path, n := range s.requests {
		snap.Requests[path] = n
		total += n
	}
	if up > 0 {
		snap.QPS = float64(total) / up
	}
	if lookups := s.cacheHits + s.coalesced + s.cacheMiss; lookups > 0 {
		snap.Cache.HitRate = float64(s.cacheHits+s.coalesced) / float64(lookups)
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// decodeJSON decodes a strict JSON request body (already bounded by the
// HTTP layer's MaxBytesReader).
func decodeJSON(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("body: %w", err)
	}
	return nil
}

// writeBody writes a canonical success body with its cache disposition.
func writeBody(w http.ResponseWriter, body []byte, xcache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", xcache)
	w.Write(body)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}
