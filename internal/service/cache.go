package service

// The result cache and request coalescing live here. Both exist for the
// same reason: pWCET campaigns are expensive (hundreds of simulated runs)
// while their results are pure functions of the canonical request identity
// — the same (config, program, runs, seed, probabilities) always produces
// the same bytes, by the simulator's determinism contract. So identical
// requests should cost one campaign total, whether they arrive after the
// first finished (cache hit) or while it is still running (coalescing).

import "container/list"

// resultCache is an LRU over finished response bodies, keyed by the
// canonical request hash. Values are the exact bytes served — a cache hit
// replays a byte-identical response, which the determinism tests pin.
//
// Eviction is bounded two ways: an entry-count cap and a byte budget over
// the stored bodies. The count cap alone is not a memory bound — a few
// hundred audited estimate responses (whose audit blocks grow with the
// run count) can reach hundreds of megabytes well inside any reasonable
// entry cap — so the byte budget is the binding constraint for large
// bodies and the count cap for many small ones. Whichever is exceeded,
// eviction is strictly least-recently-used; a single body larger than the
// whole budget is not cacheable at all (it would only exist to evict
// everything else).
//
// Callers hold the server mutex; the cache itself is not locked.
type resultCache struct {
	cap      int
	maxBytes int64
	bytes    int64
	ll       *list.List
	items    map[string]*list.Element
}

// cacheEntry is one cached response body.
type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns an LRU holding at most cap entries (cap >= 1)
// totalling at most maxBytes of body bytes (0: no byte budget).
func newResultCache(cap int, maxBytes int64) *resultCache {
	return &resultCache{cap: cap, maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body for key, marking it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting least-recently-used entries while
// either bound (entry count, byte budget) is exceeded.
func (c *resultCache) put(key string, body []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.ll.Len() > 0 && (c.ll.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.body))
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int { return c.ll.Len() }

// size returns the total body bytes held.
func (c *resultCache) size() int64 { return c.bytes }
