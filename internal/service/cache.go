package service

// The result cache and request coalescing live here. Both exist for the
// same reason: pWCET campaigns are expensive (hundreds of simulated runs)
// while their results are pure functions of the canonical request identity
// — the same (config, program, runs, seed, probabilities) always produces
// the same bytes, by the simulator's determinism contract. So identical
// requests should cost one campaign total, whether they arrive after the
// first finished (cache hit) or while it is still running (coalescing).

import "container/list"

// resultCache is an LRU over finished response bodies, keyed by the
// canonical request hash. Values are the exact bytes served — a cache hit
// replays a byte-identical response, which the determinism tests pin.
// Callers hold the server mutex; the cache itself is not locked.
type resultCache struct {
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

// cacheEntry is one cached response body.
type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns an LRU holding at most cap entries (cap >= 1).
func newResultCache(cap int) *resultCache {
	return &resultCache{cap: cap, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body for key, marking it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// over capacity.
func (c *resultCache) put(key string, body []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int { return c.ll.Len() }
