package service

// Trace ingestion: POST /v1/trace uploads a binary memory-access trace
// once, content-addressed by the SHA-256 of its raw bytes, and any
// estimate or static request may then name it via program.trace_hash
// instead of benchmark/source. The trace is validated up front (the
// workload decoder bounds records, addresses, gaps and the replay budget,
// so a hostile upload is rejected before it costs anything), cached in a
// size-bounded LRU, and — when a shared blob store is wired — published
// fleet-wide so any cluster node can resolve the hash at plan time.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"efl/internal/isa"
	"efl/internal/workload"
)

// BlobStore is the shared content-addressed byte store the trace registry
// publishes to and resolves from. *cluster.DirStore satisfies it; the
// interface lives here so service does not import cluster.
type BlobStore interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, body []byte) error
}

// TraceUploadResponse is the POST /v1/trace success body.
type TraceUploadResponse struct {
	// TraceHash is the SHA-256 of the raw trace bytes — the handle
	// program.trace_hash names.
	TraceHash string `json:"trace_hash"`
	Records   uint64 `json:"records"`
	DataBytes uint64 `json:"data_bytes"`
	// SharedBytes is the trace's declared cross-core shared window.
	SharedBytes uint64 `json:"shared_bytes"`
	Blocks      uint32 `json:"blocks"`
	// ReplayInstructions is the exact dynamic instruction count the
	// replayed program executes.
	ReplayInstructions uint64 `json:"replay_instructions"`
}

// handleTrace ingests one binary trace body.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	meta, err := workload.Validate(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	s.mu.Lock()
	s.traceUploads++
	s.traces.put(hash, data)
	s.mu.Unlock()
	if s.opts.TraceStore != nil {
		// Best-effort fleet publication: a flaky store degrades trace
		// resolution to the uploading node's LRU, it does not fail uploads.
		if err := s.opts.TraceStore.Put(hash, data); err != nil {
			s.mu.Lock()
			s.traceStoreErrors++
			s.mu.Unlock()
		}
	}
	resp := TraceUploadResponse{
		TraceHash: hash, Records: meta.Records, DataBytes: meta.DataBytes,
		SharedBytes: meta.SharedBytes, Blocks: meta.BlockCount,
		ReplayInstructions: meta.ReplayInstr,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// resolveTrace returns the raw trace bytes for hash: the local LRU first,
// then the shared store (integrity-checked — the bytes must hash back to
// the key and still validate — and hydrated into the LRU on success).
func (s *Server) resolveTrace(hash string) ([]byte, error) {
	if len(hash) != 64 {
		return nil, fmt.Errorf("program: trace_hash must be 64 hex characters")
	}
	if _, err := hex.DecodeString(hash); err != nil {
		return nil, fmt.Errorf("program: trace_hash is not hex: %v", err)
	}
	s.mu.Lock()
	data, ok := s.traces.get(hash)
	if ok {
		s.traceHits++
	} else {
		s.traceMiss++
	}
	s.mu.Unlock()
	if ok {
		return data, nil
	}
	if s.opts.TraceStore != nil {
		data, ok, err := s.opts.TraceStore.Get(hash)
		if err != nil {
			s.mu.Lock()
			s.traceStoreErrors++
			s.mu.Unlock()
		} else if ok {
			if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != hash {
				return nil, fmt.Errorf("program: trace %s: store bytes fail their content hash", hash[:12])
			}
			if _, err := workload.Validate(data); err != nil {
				return nil, fmt.Errorf("program: trace %s: store bytes invalid: %v", hash[:12], err)
			}
			s.mu.Lock()
			s.traces.put(hash, data)
			s.mu.Unlock()
			return data, nil
		}
	}
	return nil, fmt.Errorf("program: unknown trace %s…: upload it via POST /v1/trace first", hash[:12])
}

// buildProgram resolves a ProgramSpec into a runnable program and its
// content hash. A trace_hash spec replays the stored trace; everything
// else goes through the spec's own builder. Either way the returned hash
// is the SHA-256 of the encoded instruction/data image, so an estimate of
// a traced workload keys (and caches, and routes) exactly like one of an
// assembled program.
func (s *Server) buildProgram(ps ProgramSpec) (*isa.Program, string, error) {
	if ps.TraceHash == "" {
		return ps.build()
	}
	if ps.Benchmark != "" || ps.Source != "" {
		return nil, "", fmt.Errorf("program: trace_hash is mutually exclusive with benchmark and source")
	}
	data, err := s.resolveTrace(ps.TraceHash)
	if err != nil {
		return nil, "", err
	}
	name := ps.Name
	if name == "" {
		name = "trace:" + ps.TraceHash[:12]
	}
	prog, err := workload.Replay(name, data)
	if err != nil {
		return nil, "", fmt.Errorf("program: %w", err)
	}
	image, err := isa.Encode(prog)
	if err != nil {
		return nil, "", fmt.Errorf("program: %w", err)
	}
	sum := sha256.Sum256(image)
	return prog, hex.EncodeToString(sum[:]), nil
}

// TraceStats summarises the trace registry for /metrics.
type TraceStats struct {
	Uploads uint64 `json:"uploads"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	// StoreErrors counts failed shared-store probes/publications (the
	// degraded-but-serving signature).
	StoreErrors uint64 `json:"store_errors"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
}
