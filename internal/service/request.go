package service

// This file is the input boundary of the estimation service: the request
// and response JSON shapes, their validation, and the canonical cache-key
// derivation. Everything here follows two rules:
//
//  1. Sound inputs only. Every knob a request can set is validated before
//     any simulation work starts — the analysis facade's own validation
//     (negative-gap rejection, probability ranges, platform Validate) is
//     the backstop, never the first line. A request that fails validation
//     costs a JSON decode, not a campaign.
//
//  2. Canonical identity. The cache key of a request is a SHA-256 over a
//     *resolved* form (defaults applied, probabilities sorted and
//     deduplicated, the program content-addressed by its encoded image),
//     so two requests asking for the same computation in different
//     spellings coalesce onto one cache entry.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"efl/internal/bench"
	"efl/internal/cache"
	"efl/internal/isa"
	"efl/internal/sim"
)

// maxSourceBytes bounds inline assembler source (a service must not
// assemble unbounded request bodies).
const maxSourceBytes = 1 << 20

// ProgramSpec selects the code under analysis: a built-in benchmark kernel
// (two-letter code, including the extended set), inline assembler source,
// or an uploaded memory-access trace named by its content hash. Exactly
// one of Benchmark, Source and TraceHash must be set.
type ProgramSpec struct {
	Benchmark string `json:"benchmark,omitempty"`
	Source    string `json:"source,omitempty"`
	// TraceHash names a trace previously uploaded via POST /v1/trace (the
	// SHA-256 of its raw bytes); the replayed trace is the program under
	// analysis. Resolved by Server.buildProgram — it needs the server's
	// trace registry.
	TraceHash string `json:"trace_hash,omitempty"`
	// Name labels an inline Source program (default "request").
	Name string `json:"name,omitempty"`
}

// build constructs the program and returns it with its content hash (the
// SHA-256 of the encoded instruction/data image — the identity the result
// cache keys on).
func (ps ProgramSpec) build() (*isa.Program, string, error) {
	var prog *isa.Program
	switch {
	case ps.Benchmark != "" && ps.Source != "":
		return nil, "", fmt.Errorf("program: benchmark and source are mutually exclusive")
	case ps.Benchmark != "":
		spec, err := benchByCode(ps.Benchmark)
		if err != nil {
			return nil, "", err
		}
		prog = spec.Build()
	case ps.Source != "":
		if len(ps.Source) > maxSourceBytes {
			return nil, "", fmt.Errorf("program: source exceeds %d bytes", maxSourceBytes)
		}
		name := ps.Name
		if name == "" {
			name = "request"
		}
		var err error
		prog, err = isa.Assemble(name, ps.Source)
		if err != nil {
			return nil, "", fmt.Errorf("program: %w", err)
		}
	default:
		return nil, "", fmt.Errorf("program: set benchmark, source or trace_hash")
	}
	image, err := isa.Encode(prog)
	if err != nil {
		return nil, "", fmt.Errorf("program: %w", err)
	}
	sum := sha256.Sum256(image)
	return prog, hex.EncodeToString(sum[:]), nil
}

// benchByCode resolves a benchmark code across the paper's ten kernels and
// the extended set.
func benchByCode(code string) (bench.Spec, error) {
	if spec, err := bench.ByCode(code); err == nil {
		return spec, nil
	}
	for _, spec := range bench.Extended() {
		if spec.Code == code {
			return spec, nil
		}
	}
	return bench.Spec{}, fmt.Errorf("program: unknown benchmark %q", code)
}

// ConfigSpec is the platform-knob subset a request may override; nil
// fields keep the paper's DefaultConfig values. MID and PartitionWays are
// alternatives (the platform rejects both at once), and Hierarchy is
// mutually exclusive with the flat L1*/LLC* geometry knobs it replaces.
type ConfigSpec struct {
	Cores         *int   `json:"cores,omitempty"`
	MID           *int64 `json:"mid,omitempty"`
	PartitionWays []int  `json:"partition_ways,omitempty"`
	L1SizeBytes   *int   `json:"l1_size_bytes,omitempty"`
	L1Ways        *int   `json:"l1_ways,omitempty"`
	LLCSizeBytes  *int   `json:"llc_size_bytes,omitempty"`
	LLCWays       *int   `json:"llc_ways,omitempty"`
	LineBytes     *int   `json:"line_bytes,omitempty"`
	WriteThrough  *bool  `json:"write_through,omitempty"`
	// Hierarchy replaces the default two-level layout with an explicit
	// level list (first level private per core, the rest shared, the last
	// one EFL-protected).
	Hierarchy []LevelSpecJSON `json:"hierarchy,omitempty"`
	// SharedDataBytes enables the MSI coherence layer over a shared-data
	// window of that many bytes (0 keeps data private per core).
	SharedDataBytes *int `json:"shared_data_bytes,omitempty"`
}

// LevelSpecJSON is one cache level of a request's hierarchy override.
type LevelSpecJSON struct {
	Name          string `json:"name"`
	SizeBytes     int    `json:"size_bytes"`
	Ways          int    `json:"ways"`
	Shared        bool   `json:"shared,omitempty"`
	LatencyCycles int64  `json:"latency_cycles"`
	// Policy is "tr" (time-randomised, the default) or "td"
	// (time-deterministic LRU).
	Policy string `json:"policy,omitempty"`
}

// level maps the JSON shape onto the simulator's level descriptor.
func (ls LevelSpecJSON) level() (cache.LevelSpec, error) {
	spec := cache.LevelSpec{
		Name:          ls.Name,
		SizeBytes:     ls.SizeBytes,
		Ways:          ls.Ways,
		Shared:        ls.Shared,
		LatencyCycles: ls.LatencyCycles,
	}
	switch ls.Policy {
	case "", "tr":
		spec.Policy = cache.TimeRandomised
	case "td":
		spec.Policy = cache.TimeDeterministic
	default:
		return spec, fmt.Errorf("hierarchy level %q: unknown policy %q (want tr or td)", ls.Name, ls.Policy)
	}
	return spec, nil
}

// resolve applies the overrides to DefaultConfig and validates the result.
func (cs ConfigSpec) resolve() (sim.Config, error) {
	cfg := sim.DefaultConfig()
	if cs.Cores != nil {
		cfg.Cores = *cs.Cores
	}
	if cs.MID != nil {
		cfg.MID = *cs.MID
	}
	if cs.PartitionWays != nil {
		cfg.PartitionWays = append([]int(nil), cs.PartitionWays...)
	}
	if cs.L1SizeBytes != nil {
		cfg.L1SizeBytes = *cs.L1SizeBytes
	}
	if cs.L1Ways != nil {
		cfg.L1Ways = *cs.L1Ways
	}
	if cs.LLCSizeBytes != nil {
		cfg.LLCSizeBytes = *cs.LLCSizeBytes
	}
	if cs.LLCWays != nil {
		cfg.LLCWays = *cs.LLCWays
	}
	if cs.LineBytes != nil {
		cfg.LineBytes = *cs.LineBytes
	}
	if cs.WriteThrough != nil {
		cfg.DL1WriteThrough = *cs.WriteThrough
	}
	if len(cs.Hierarchy) > 0 {
		if cs.L1SizeBytes != nil || cs.L1Ways != nil || cs.LLCSizeBytes != nil || cs.LLCWays != nil {
			return sim.Config{}, fmt.Errorf("config: hierarchy and the flat l1_*/llc_* geometry knobs are mutually exclusive")
		}
		cfg.Hierarchy = make([]cache.LevelSpec, len(cs.Hierarchy))
		for i, ls := range cs.Hierarchy {
			lv, err := ls.level()
			if err != nil {
				return sim.Config{}, fmt.Errorf("config: %w", err)
			}
			cfg.Hierarchy[i] = lv
		}
	}
	if cs.SharedDataBytes != nil {
		cfg.SharedDataBytes = *cs.SharedDataBytes
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, fmt.Errorf("config: %w", err)
	}
	return cfg, nil
}

// normalizeProbabilities validates, sorts and deduplicates an exceedance
// probability list (default: the paper's 1e-15 headline cutoff).
func normalizeProbabilities(ps []float64) ([]float64, error) {
	if len(ps) == 0 {
		return []float64{1e-15}, nil
	}
	if len(ps) > 32 {
		return nil, fmt.Errorf("probabilities: at most 32 per request")
	}
	out := append([]float64(nil), ps...)
	for _, p := range out {
		if !(p > 0 && p < 1) { // rejects NaN
			return nil, fmt.Errorf("probabilities: %v outside (0,1)", p)
		}
	}
	sort.Float64s(out)
	dedup := out[:1]
	for _, p := range out[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup, nil
}

// probKey renders a probability as the canonical JSON map key
// (shortest-round-trip float formatting, matching encoding/json).
func probKey(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// cacheKey derives the content-addressed cache key: SHA-256 over the
// canonical JSON of the resolved identity. encoding/json emits struct
// fields in declaration order and sorts map keys, so the rendering is
// deterministic.
func cacheKey(kind string, identity any) string {
	raw, err := json.Marshal(struct {
		Schema   int    `json:"schema"`
		Kind     string `json:"kind"`
		Identity any    `json:"identity"`
	}{Schema: 1, Kind: kind, Identity: identity})
	if err != nil {
		// Identity values are plain structs of scalars; a marshal failure
		// is a programming error, not a request error.
		panic("service: cache key marshal: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// EstimateRequest is the POST /v1/estimate body: run the full MBPTA
// protocol (analysis-mode campaign, i.i.d. gate, Gumbel block-maxima fit)
// for the program on the configured platform.
type EstimateRequest struct {
	Program ProgramSpec `json:"program"`
	Config  ConfigSpec  `json:"config"`
	// Runs is the measurement-run count (default 300, bounded by the
	// server's MaxRuns).
	Runs int `json:"runs,omitempty"`
	// Seed determines every random draw (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Probabilities are the exceedance probabilities to report pWCET
	// bounds at (default [1e-15]).
	Probabilities []float64 `json:"probabilities,omitempty"`
	// SkipIID disables the i.i.d. gate (ablations only).
	SkipIID bool `json:"skip_iid,omitempty"`
	// Converge stops the campaign as soon as the streaming pWCET estimate
	// at the smallest requested probability stabilises; Runs becomes the
	// ceiling instead of the exact count. Converged campaigns execute in
	// lockstep batches with per-run derived seeds (a different — and
	// smaller — sample than the fixed-count protocol collects).
	Converge bool `json:"converge,omitempty"`
	// Batch is the lockstep batch width of a converged campaign (default
	// 8, at most 64). Execution knob: per-run seeds are derived from the
	// run index, so the response is byte-identical under any width — which
	// is why Batch is not part of the request identity. Rejected without
	// Converge: the fixed-count protocol's sample is defined by sequential
	// collection and cannot be batched without changing results.
	Batch int `json:"batch,omitempty"`
	// Audit attaches a per-request soundness audit block (DESIGN.md §9
	// invariants checked on every run of this campaign).
	Audit bool `json:"audit,omitempty"`
	// TimeoutMS bounds this request's execution (0: server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// EstimateResponse is the estimate result. The shape is canonical: the
// same resolved request always yields byte-identical JSON, which is what
// makes cached and fresh responses comparable.
type EstimateResponse struct {
	Program     string             `json:"program"`
	ProgramSHA  string             `json:"program_sha256"`
	Runs        int                `json:"runs"`
	Seed        uint64             `json:"seed"`
	MaxObserved float64            `json:"max_observed"`
	IID         *IIDSummary        `json:"iid,omitempty"`
	PWCET       map[string]float64 `json:"pwcet"`
	Audit       json.RawMessage    `json:"audit,omitempty"`
}

// IIDSummary reports the MBPTA compliance gate.
type IIDSummary struct {
	WWAbsZ   float64 `json:"ww_abs_z"`
	KSPValue float64 `json:"ks_p_value"`
	Passed   bool    `json:"passed"`
}

// ScheduleRequest is the POST /v1/schedule body: pack the tasks first-fit
// -decreasing into minor frames and report per-slot feasibility.
type ScheduleRequest struct {
	Config    ConfigSpec `json:"config"`
	MIFCycles int64      `json:"mif_cycles"`
	Tasks     []TaskSpec `json:"tasks"`
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
}

// TaskSpec is one admission-controlled task: its name and pWCET bound (in
// cycles, at the system's exceedance probability).
type TaskSpec struct {
	Name  string  `json:"name"`
	PWCET float64 `json:"pwcet"`
}

// ScheduleResponse reports the packed schedule and its feasibility check.
type ScheduleResponse struct {
	Feasible bool            `json:"feasible"`
	Frames   [][]SlotJSON    `json:"frames"`
	Slots    []SlotCheckJSON `json:"slots"`
}

// SlotJSON is one occupied slot in the packed schedule.
type SlotJSON struct {
	Core int    `json:"core"`
	Task string `json:"task"`
}

// SlotCheckJSON is one slot's budget check.
type SlotCheckJSON struct {
	Frame  int     `json:"frame"`
	Core   int     `json:"core"`
	Task   string  `json:"task"`
	PWCET  float64 `json:"pwcet"`
	Budget int64   `json:"budget"`
	Fits   bool    `json:"fits"`
	Slack  float64 `json:"slack"`
}

// validate checks the schedule request's own fields (the platform config
// is validated by resolve, the packing constraints by sched.PackGreedy).
func (sr *ScheduleRequest) validate() error {
	if len(sr.Tasks) == 0 {
		return fmt.Errorf("tasks: at least one task required")
	}
	if len(sr.Tasks) > 1024 {
		return fmt.Errorf("tasks: at most 1024 per request")
	}
	seen := map[string]bool{}
	for i, t := range sr.Tasks {
		if t.Name == "" {
			return fmt.Errorf("tasks[%d]: name required", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("tasks[%d]: duplicate name %q", i, t.Name)
		}
		seen[t.Name] = true
		if !(t.PWCET > 0) || math.IsInf(t.PWCET, 0) {
			return fmt.Errorf("tasks[%d] (%s): pwcet %v must be a positive finite number", i, t.Name, t.PWCET)
		}
	}
	return nil
}

// StaticRequest is the POST /v1/static body: the analytical (SPTA) route
// — per-access miss probabilities from reuse distances plus a Chernoff
// tail bound — used as a cross-check of the measurement-based estimate.
type StaticRequest struct {
	Program ProgramSpec `json:"program"`
	Model   ModelSpec   `json:"model"`
	Trace   TraceSpec   `json:"trace"`
	// EvictionsPerCycle adds EFL-style bounded co-runner interference.
	EvictionsPerCycle float64 `json:"evictions_per_cycle,omitempty"`
	// MeanGapCycles is the per-access re-reference spacing the
	// interference acts over; required positive and finite when
	// EvictionsPerCycle > 0.
	MeanGapCycles float64 `json:"mean_gap_cycles,omitempty"`
	// Conservative selects the sound DATE'13 pressure model (recommended
	// for WCET arguments).
	Conservative  bool      `json:"conservative,omitempty"`
	Probabilities []float64 `json:"probabilities,omitempty"`
	TimeoutMS     int64     `json:"timeout_ms,omitempty"`
}

// ModelSpec parameterises the statically analysed cache.
type ModelSpec struct {
	Sets        int     `json:"sets"`
	Ways        int     `json:"ways"`
	HitLatency  float64 `json:"hit_latency"`
	MissLatency float64 `json:"miss_latency"`
}

// TraceSpec selects which accesses enter the static analysis.
type TraceSpec struct {
	LineBytes   int    `json:"line_bytes,omitempty"`
	Instruction bool   `json:"instruction,omitempty"`
	Data        bool   `json:"data,omitempty"`
	MaxSteps    uint64 `json:"max_steps,omitempty"`
}

// StaticResponse is the static analysis result.
type StaticResponse struct {
	Program    string             `json:"program"`
	ProgramSHA string             `json:"program_sha256"`
	Accesses   int                `json:"accesses"`
	ColdMisses int                `json:"cold_misses"`
	Mean       float64            `json:"mean"`
	Var        float64            `json:"var"`
	PWCET      map[string]float64 `json:"pwcet"`
}

// validate checks the static request's interference fields up front (the
// facade re-validates; failing here turns a would-be campaign slot into a
// plain 400).
func (sr *StaticRequest) validate() error {
	if sr.EvictionsPerCycle < 0 || math.IsNaN(sr.EvictionsPerCycle) || math.IsInf(sr.EvictionsPerCycle, 0) {
		return fmt.Errorf("evictions_per_cycle: %v is not a finite non-negative number", sr.EvictionsPerCycle)
	}
	if sr.EvictionsPerCycle > 0 {
		if !(sr.MeanGapCycles > 0) || math.IsInf(sr.MeanGapCycles, 0) {
			return fmt.Errorf("mean_gap_cycles: %v must be a positive finite number when evictions_per_cycle > 0", sr.MeanGapCycles)
		}
	}
	if !sr.Trace.Instruction && !sr.Trace.Data {
		return fmt.Errorf("trace: select instruction and/or data accesses")
	}
	return nil
}

// errorResponse is the JSON error body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}
