package service

import (
	"fmt"
	"testing"
)

func body(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'x'
	}
	return b
}

// TestCacheCountEviction pins the entry-cap LRU order: the
// least-recently-used entry goes first, and a get refreshes recency.
func TestCacheCountEviction(t *testing.T) {
	c := newResultCache(3, 0)
	c.put("a", body(1))
	c.put("b", body(1))
	c.put("c", body(1))
	// Touch a: b is now the LRU entry.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before any eviction")
	}
	c.put("d", body(1))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived — eviction is not least-recently-used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
}

// TestCacheByteBudget is the regression test for the unbounded-memory
// bug: the entry cap alone let a few large bodies exhaust RAM. With a
// byte budget, inserting past it evicts in LRU order even when the entry
// count is nowhere near its cap.
func TestCacheByteBudget(t *testing.T) {
	c := newResultCache(1000, 100)
	c.put("a", body(40))
	c.put("b", body(40))
	if c.len() != 2 || c.size() != 80 {
		t.Fatalf("len=%d size=%d, want 2/80", c.len(), c.size())
	}
	// 120 bytes total: a (the LRU entry) must go; b alone fits with c.
	c.put("c", body(40))
	if _, ok := c.get("a"); ok {
		t.Fatal("byte budget exceeded but the LRU entry survived")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("b evicted although evicting a was enough")
	}
	if c.size() != 80 {
		t.Fatalf("size=%d after eviction, want 80", c.size())
	}
	// Eviction order under byte pressure is strictly LRU: touch b, then
	// overflow — c (now LRU) goes, b stays.
	c.get("b")
	c.put("d", body(40))
	if _, ok := c.get("c"); ok {
		t.Fatal("eviction under byte pressure is not least-recently-used")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("recently-used b evicted")
	}
}

// TestCacheOversizedBody pins the degenerate case: a single body larger
// than the whole budget evicts everything including itself (caching it
// would only exist to evict every other entry), and the cache keeps
// working afterwards.
func TestCacheOversizedBody(t *testing.T) {
	c := newResultCache(1000, 100)
	c.put("a", body(40))
	c.put("huge", body(500))
	if _, ok := c.get("huge"); ok {
		t.Fatal("body larger than the whole budget was cached")
	}
	if c.len() != 0 || c.size() != 0 {
		t.Fatalf("len=%d size=%d after oversized insert, want 0/0", c.len(), c.size())
	}
	c.put("b", body(40))
	if _, ok := c.get("b"); !ok {
		t.Fatal("cache dead after oversized insert")
	}
}

// TestCacheReplaceAccounting pins byte accounting across same-key
// replacement: the budget tracks the delta, not the sum.
func TestCacheReplaceAccounting(t *testing.T) {
	c := newResultCache(1000, 100)
	c.put("a", body(30))
	c.put("a", body(60))
	if c.len() != 1 || c.size() != 60 {
		t.Fatalf("len=%d size=%d after replace, want 1/60", c.len(), c.size())
	}
	c.put("a", body(10))
	if c.size() != 10 {
		t.Fatalf("size=%d after shrinking replace, want 10", c.size())
	}
	// Growing a key past the budget evicts others, then (if still over)
	// the key itself.
	c.put("b", body(50))
	c.put("a", body(200))
	if c.len() != 0 {
		t.Fatalf("len=%d after over-budget replace, want 0", c.len())
	}
}

// TestCacheBytesInSnapshot pins the /metrics surface: the cache's byte
// footprint is observable, so a fleet operator can see the budget bind.
func TestCacheBytesInSnapshot(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	s.CacheFill("k", body(1234))
	if got := s.Snapshot().Cache.Bytes; got != 1234 {
		t.Fatalf("Snapshot().Cache.Bytes = %d, want 1234", got)
	}
}

// TestCacheDefaultByteBudget pins that a zero-value Options still gets a
// byte bound — the unbounded configuration must not be constructible by
// default.
func TestCacheDefaultByteBudget(t *testing.T) {
	opts := Options{}.withDefaults()
	if opts.CacheBytes <= 0 {
		t.Fatalf("default CacheBytes = %d, want a positive budget", opts.CacheBytes)
	}
	// And the cap holds end-to-end: filling past the budget stays bounded.
	c := newResultCache(opts.CacheEntries, 1<<10)
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%d", i), body(100))
	}
	if c.size() > 1<<10 {
		t.Fatalf("cache holds %d bytes, budget is %d", c.size(), 1<<10)
	}
}
