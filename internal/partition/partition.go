// Package partition implements the cache-partitioning baseline's search
// problem: splitting the W ways of the shared LLC across N tasks so that
// the workload's total guaranteed performance (wgIPC) is maximised — the
// procedure the paper uses to give CP its best configuration in Figure 4
// ("find the partition of the 8 ways of the LLC across the tasks such that
// wgIPC is maximised").
package partition

import "fmt"

// Compositions enumerates every split of ways cache ways among n tasks
// with each task receiving at least one way, in lexicographic order. For
// the paper's setup (8 ways, 4 tasks) there are C(7,3) = 35 splits.
func Compositions(ways, n int) [][]int {
	if n < 1 || ways < n {
		return nil
	}
	var out [][]int
	cur := make([]int, n)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == n-1 {
			cur[pos] = left
			out = append(out, append([]int(nil), cur...))
			return
		}
		// Leave at least one way for each remaining task.
		for w := 1; w <= left-(n-1-pos); w++ {
			cur[pos] = w
			rec(pos+1, left-w)
		}
	}
	rec(0, ways)
	return out
}

// NumCompositions returns the number of splits Compositions produces:
// C(ways-1, n-1).
func NumCompositions(ways, n int) int {
	if n < 1 || ways < n {
		return 0
	}
	// Binomial coefficient C(ways-1, n-1).
	k := n - 1
	if k > ways-1-k {
		k = ways - 1 - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (ways - 1 - i) / (i + 1)
	}
	return c
}

// Best returns the split maximising the summed value, where value(task,
// ways) is task's contribution when given that many ways (e.g. its gIPC
// under CP with that allocation). It returns the winning split and total.
// n is the workload size; ways the LLC associativity. value must tolerate
// queries for 1..ways ways per task (the dynamic program also evaluates
// unreachable states); only allocations up to ways-n+1 can appear in the
// returned split.
func Best(ways, n int, value func(task, ways int) float64) ([]int, float64, error) {
	if n < 1 {
		return nil, 0, fmt.Errorf("partition: empty workload")
	}
	if ways < n {
		return nil, 0, fmt.Errorf("partition: %d ways cannot host %d tasks", ways, n)
	}
	// Dynamic program over tasks x remaining ways. For the paper's sizes
	// brute force over the 35 compositions would also do; the DP keeps
	// the search exact for larger setups (e.g. 16-way LLCs).
	const neg = -1e300
	// best[t][w]: max total for tasks t..n-1 using exactly w ways.
	best := make([][]float64, n+1)
	choice := make([][]int, n+1)
	for t := range best {
		best[t] = make([]float64, ways+1)
		choice[t] = make([]int, ways+1)
		for w := range best[t] {
			best[t][w] = neg
		}
	}
	best[n][0] = 0
	for t := n - 1; t >= 0; t-- {
		for w := n - t; w <= ways; w++ {
			for give := 1; give <= w-(n-t-1); give++ {
				rest := best[t+1][w-give]
				if rest == neg {
					continue
				}
				v := value(t, give) + rest
				if v > best[t][w] {
					best[t][w] = v
					choice[t][w] = give
				}
			}
		}
	}
	// The optimum may leave ways unused only if values can decrease with
	// more ways; allow totals over any w <= ways by taking the best final
	// column... values are monotone in practice, but be safe:
	bestW, bestV := -1, neg
	for w := n; w <= ways; w++ {
		if best[0][w] > bestV {
			bestV, bestW = best[0][w], w
		}
	}
	if bestW < 0 {
		return nil, 0, fmt.Errorf("partition: no feasible split")
	}
	split := make([]int, n)
	w := bestW
	for t := 0; t < n; t++ {
		split[t] = choice[t][w]
		w -= split[t]
	}
	return split, bestV, nil
}
