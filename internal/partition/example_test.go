package partition_test

import (
	"fmt"

	"efl/internal/partition"
)

// ExampleBest solves the paper's Figure 4 sub-problem: split the LLC's 8
// ways across 4 tasks to maximise the workload's guaranteed IPC.
func ExampleBest() {
	// gIPC of each task as a function of its way count (toy numbers: task
	// 0 saturates early, task 3 is cache-hungry).
	gipc := [][]float64{
		{0.20, 0.21, 0.21, 0.21, 0.21, 0.21, 0.21, 0.21},
		{0.10, 0.15, 0.17, 0.18, 0.18, 0.18, 0.18, 0.18},
		{0.12, 0.14, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15},
		{0.05, 0.08, 0.15, 0.22, 0.25, 0.26, 0.26, 0.26},
	}
	split, total, err := partition.Best(8, 4, func(task, ways int) float64 {
		return gipc[task][ways-1]
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("best split: %v ways, wgIPC = %.2f\n", split, total)
	fmt.Printf("candidate splits considered: %d\n", partition.NumCompositions(8, 4))
	// Output:
	// best split: [1 2 1 4] ways, wgIPC = 0.69
	// candidate splits considered: 35
}
