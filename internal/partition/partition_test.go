package partition

import (
	"testing"
	"testing/quick"
)

func TestCompositionsPaperSize(t *testing.T) {
	comps := Compositions(8, 4)
	if len(comps) != 35 {
		t.Fatalf("8 ways over 4 tasks: %d splits, want 35 (C(7,3))", len(comps))
	}
	seen := map[[4]int]bool{}
	for _, c := range comps {
		if len(c) != 4 {
			t.Fatalf("split %v has wrong arity", c)
		}
		sum := 0
		for _, w := range c {
			if w < 1 {
				t.Fatalf("split %v has an empty partition", c)
			}
			sum += w
		}
		if sum != 8 {
			t.Fatalf("split %v does not use 8 ways", c)
		}
		var key [4]int
		copy(key[:], c)
		if seen[key] {
			t.Fatalf("duplicate split %v", c)
		}
		seen[key] = true
	}
}

func TestCompositionsEdge(t *testing.T) {
	if c := Compositions(4, 4); len(c) != 1 || c[0][0] != 1 {
		t.Fatalf("tight split = %v", c)
	}
	if c := Compositions(3, 4); c != nil {
		t.Fatalf("infeasible split produced %v", c)
	}
	if c := Compositions(5, 1); len(c) != 1 || c[0][0] != 5 {
		t.Fatalf("single task split = %v", c)
	}
}

func TestNumCompositionsMatches(t *testing.T) {
	err := quick.Check(func(w8, n8 uint8) bool {
		ways := int(w8%10) + 1
		n := int(n8%5) + 1
		return NumCompositions(ways, n) == len(Compositions(ways, n))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBestMatchesBruteForce(t *testing.T) {
	// Concave-ish random values: DP must agree with brute force.
	vals := [][]float64{
		{1, 3, 4, 4.5, 4.7, 4.8, 4.85, 4.9},
		{0.5, 0.9, 2.5, 2.6, 2.7, 2.8, 2.9, 3.0},
		{2, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7},
		{0.1, 0.2, 3.9, 4.0, 4.1, 4.2, 4.3, 4.4},
	}
	value := func(task, ways int) float64 { return vals[task][ways-1] }
	split, total, err := Best(8, 4, value)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	bestTotal := -1.0
	var bestSplit []int
	for _, c := range Compositions(8, 4) {
		v := 0.0
		for i, w := range c {
			v += value(i, w)
		}
		if v > bestTotal {
			bestTotal, bestSplit = v, c
		}
	}
	if total != bestTotal {
		t.Fatalf("DP total %v vs brute force %v (split %v vs %v)", total, bestTotal, split, bestSplit)
	}
	sum := 0
	for i, w := range split {
		if w < 1 {
			t.Fatalf("split %v has empty partition", split)
		}
		sum += w
		if value(i, w) < 0 {
			t.Fatal("nonsense")
		}
	}
	if sum > 8 {
		t.Fatalf("split %v oversubscribes", split)
	}
}

func TestBestNonMonotoneValues(t *testing.T) {
	// A task whose value *decreases* with extra ways (can happen with
	// noisy pWCETs): Best may leave ways unused and must still maximise.
	value := func(task, ways int) float64 {
		if ways == 1 {
			return 10
		}
		return 10 - float64(ways) // more ways strictly worse
	}
	split, total, err := Best(8, 2, value)
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 {
		t.Fatalf("total %v, want 20 (1 way each)", total)
	}
	for _, w := range split {
		if w != 1 {
			t.Fatalf("split %v, want [1 1]", split)
		}
	}
}

func TestBestErrors(t *testing.T) {
	if _, _, err := Best(3, 4, func(int, int) float64 { return 0 }); err == nil {
		t.Fatal("infeasible split accepted")
	}
	if _, _, err := Best(8, 0, func(int, int) float64 { return 0 }); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestBestSingleTask(t *testing.T) {
	split, total, err := Best(8, 1, func(_, w int) float64 { return float64(w) })
	if err != nil || len(split) != 1 || split[0] != 8 || total != 8 {
		t.Fatalf("split=%v total=%v err=%v", split, total, err)
	}
}

func BenchmarkBest8x4(b *testing.B) {
	value := func(task, ways int) float64 { return float64(task+1) * float64(ways) }
	for i := 0; i < b.N; i++ {
		_, _, _ = Best(8, 4, value)
	}
}
