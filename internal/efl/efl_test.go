package efl

import (
	"math"
	"testing"

	"efl/internal/rng"
)

func TestUnitDisabled(t *testing.T) {
	u := NewUnit(0, rng.New(1))
	if u.Enabled() || u.MID() != 0 {
		t.Fatal("mid=0 must disable the unit")
	}
	if got := u.EvictionAllowedAt(123); got != 123 {
		t.Fatalf("disabled unit delayed an eviction: %d", got)
	}
	u.RecordEviction(123, 0)
	if got := u.EvictionAllowedAt(124); got != 124 {
		t.Fatal("disabled unit gated after eviction")
	}
	if u.Stats().Evictions != 1 {
		t.Fatal("eviction not counted")
	}
}

func TestUnitGatesEvictions(t *testing.T) {
	u := NewUnit(1000, rng.New(2))
	// Initially the EAB is set.
	if got := u.EvictionAllowedAt(0); got != 0 {
		t.Fatalf("initial eviction delayed to %d", got)
	}
	u.RecordEviction(0, 0)
	next := u.EvictionAllowedAt(1)
	if next < 1 || next > 2001 {
		t.Fatalf("post-eviction allowed time %d outside [1, 2001]", next)
	}
	// Idempotent: querying does not consume.
	if again := u.EvictionAllowedAt(1); again != next {
		t.Fatal("EvictionAllowedAt not idempotent")
	}
	// Once past the EAB time, evictions proceed immediately.
	if got := u.EvictionAllowedAt(next + 50); got != next+50 {
		t.Fatal("expired counter still gates")
	}
}

func TestUnitDrawsAverageMID(t *testing.T) {
	// §3.4: "actual MID values match, on average, the desired MID value".
	const mid = 500
	u := NewUnit(mid, rng.New(3))
	const n = 20000
	var now int64
	for i := 0; i < n; i++ {
		now = u.EvictionAllowedAt(now)
		u.RecordEviction(now, 0)
	}
	mean := float64(u.Stats().DelaySum) / n
	if math.Abs(mean-mid) > mid*0.02 {
		t.Fatalf("mean drawn delay %v, want ~%d", mean, mid)
	}
	// The eviction timeline advances by exactly the elapsed draws: the
	// current time can never outrun the sum of drawn delays.
	if now > u.Stats().DelaySum {
		t.Fatalf("timeline %d beyond delay sum %d", now, u.Stats().DelaySum)
	}
}

func TestUnitStallAccounting(t *testing.T) {
	u := NewUnit(100, rng.New(4))
	u.RecordEviction(0, 0)
	allowed := u.EvictionAllowedAt(5)
	waited := allowed - 5
	u.RecordEviction(allowed, waited)
	if u.Stats().StallCycles != waited {
		t.Fatalf("stall cycles %d, want %d", u.Stats().StallCycles, waited)
	}
}

func TestUnitReset(t *testing.T) {
	u := NewUnit(100, rng.New(5))
	u.RecordEviction(0, 0)
	u.Reset()
	if got := u.EvictionAllowedAt(0); got != 0 {
		t.Fatal("Reset did not re-arm the EAB")
	}
	if u.Stats() != (Stats{}) {
		t.Fatal("Reset did not clear stats")
	}
}

func TestCRGRate(t *testing.T) {
	// A CRG must evict at most once per counter expiry and on average once
	// per MID cycles.
	const mid = 250
	u := NewUnit(mid, rng.New(6))
	c := NewCRG(u)
	var fires int
	horizon := int64(1_000_000)
	for c.NextFire() < horizon {
		c.Fire(c.NextFire())
		fires++
	}
	rate := float64(horizon) / float64(fires)
	if math.Abs(rate-mid) > mid*0.05 {
		t.Fatalf("CRG fires every %.1f cycles, want ~%d", rate, mid)
	}
}

func TestCRGMonotoneFireTimes(t *testing.T) {
	u := NewUnit(10, rng.New(7)) // small MID: zero draws likely
	c := NewCRG(u)
	prev := int64(-1)
	for i := 0; i < 10000; i++ {
		ft := c.NextFire()
		if ft <= prev {
			t.Fatalf("fire time %d not after previous %d", ft, prev)
		}
		prev = ft
		c.Fire(ft)
	}
}

func TestAccessControlAnalysisWiring(t *testing.T) {
	ac, err := NewAccessControl(4, 500, Analysis, 0, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if ac.NumCores() != 4 || ac.Mode() != Analysis {
		t.Fatal("fabric misconfigured")
	}
	if ac.CRG(0) != nil {
		t.Fatal("analysed core must not have a CRG")
	}
	for i := 1; i < 4; i++ {
		if ac.CRG(i) == nil {
			t.Fatalf("co-runner core %d missing its CRG", i)
		}
		if ac.Unit(i) == nil || !ac.Unit(i).Enabled() {
			t.Fatalf("core %d unit missing/disabled", i)
		}
	}
}

func TestAccessControlDeploymentWiring(t *testing.T) {
	ac, err := NewAccessControl(4, 500, Deployment, -1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if ac.CRG(i) != nil {
			t.Fatalf("deployment mode core %d has an active CRG", i)
		}
	}
}

func TestAccessControlValidation(t *testing.T) {
	if _, err := NewAccessControl(0, 500, Deployment, -1, rng.New(1)); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewAccessControl(4, 500, Analysis, 7, rng.New(1)); err == nil {
		t.Fatal("out-of-range analysed core accepted")
	}
}

func TestCRGsDesynchronised(t *testing.T) {
	// The three co-runner CRGs must not fire in lockstep.
	ac, err := NewAccessControl(4, 1000, Analysis, 0, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	first := map[int64]int{}
	for i := 1; i < 4; i++ {
		first[ac.CRG(i).NextFire()]++
	}
	for ft, n := range first {
		if n > 1 {
			t.Fatalf("%d CRGs fire first at the same cycle %d", n, ft)
		}
	}
}

func TestModeString(t *testing.T) {
	if Analysis.String() != "analysis" || Deployment.String() != "deployment" {
		t.Fatal("Mode.String broken")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

func BenchmarkUnitEvictionCycle(b *testing.B) {
	u := NewUnit(1000, rng.New(1))
	var now int64
	for i := 0; i < b.N; i++ {
		now = u.EvictionAllowedAt(now)
		u.RecordEviction(now, 0)
	}
}
