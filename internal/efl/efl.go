// Package efl implements the paper's primary contribution: the LLC
// Eviction Frequency Limiting mechanism (EFL, §3.4-§3.5).
//
// EFL bounds inter-task interference in a shared time-randomised LLC
// without partitioning it. The key observation (§3.3) is that in an
// Evict-on-Miss random-replacement cache only *evictions* change cache
// state — hits are stateless — and with random placement an eviction
// touches any resident line with a fixed probability regardless of
// addresses. Therefore limiting how *often* each core may evict suffices
// to upper-bound the damage it can do to co-runners.
//
// The hardware is an access control unit per core (Figure 2):
//
//   - rMID:   the desired Minimum Inter-eviction Delay, set by the OS;
//   - a PRNG: on each eviction draws the next delay uniformly from
//     [0, 2*MID] (randomised so interleaving with the analysed task is
//     probabilistic, not systematic — §3.4);
//   - cdc:    a count-down counter initialised with the draw;
//   - EAB:    the eviction-allowed bit, set when cdc reaches zero. An LLC
//     miss that needs to evict stalls until EAB is 1 and consumes it;
//     LLC hits always proceed;
//   - rmode:  analysis/deployment mode. At analysis time the cores not
//     running the task under analysis activate their Cache Request
//     Generator (CRG), which issues force-miss eviction requests at the
//     maximum frequency EFL allows, realising the worst-case interference
//     the deployment-time bound admits.
package efl

import (
	"fmt"

	"efl/internal/metrics"
	"efl/internal/rng"
)

// Mode is the rmode register value (§3.5).
type Mode int

const (
	// Deployment: every core runs real software; its LLC evictions are
	// rate-limited by its EFL unit.
	Deployment Mode = iota
	// Analysis: the task under analysis runs alone while the other cores'
	// CRGs evict at the maximum allowed frequency.
	Analysis
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Deployment:
		return "deployment"
	case Analysis:
		return "analysis"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Stats aggregates one unit's activity.
type Stats struct {
	Evictions   uint64 // evictions performed (EAB consumptions)
	StallCycles int64  // cycles evicting requests spent waiting for the EAB
	DelaySum    int64  // sum of drawn inter-eviction delays (for mean-MID checks)
}

// Unit is one core's access control unit: rMID register, count-down
// counter and eviction-allowed bit, with the PRNG behind them.
type Unit struct {
	mid     int64
	rnd     rng.Stream
	eabAt   int64 // cycle at which the EAB (re)becomes 1
	enabled bool
	fixed   bool // ablation A2: deterministic delays instead of U[0,2*MID]
	// Fault-injection state (see fault.go). Zero values mean healthy.
	stuckEAB bool       // EAB output stuck at 1: evictions never throttled
	satDelay int64      // >0: count-down counter saturated, every draw is satDelay
	origSrc  rng.Source // pre-injection PRNG source, restored by ClearFaults
	stats    Stats
	// stallHist distributes per-eviction EAB waits (the EFL leg of the
	// cycle-accounting observability layer).
	stallHist metrics.Histogram
}

// NewUnit creates a unit with the given rMID value. mid <= 0 disables the
// unit (evictions always allowed), modelling a system without EFL.
func NewUnit(mid int64, rnd rng.Stream) *Unit {
	return &Unit{mid: mid, rnd: rnd, enabled: mid > 0}
}

// MID returns the configured rMID value (0 when disabled).
func (u *Unit) MID() int64 {
	if !u.enabled {
		return 0
	}
	return u.mid
}

// Enabled reports whether the unit limits evictions.
func (u *Unit) Enabled() bool { return u.enabled }

// Stats returns a copy of the unit's counters.
func (u *Unit) Stats() Stats { return u.stats }

// StallHistogram returns a copy of the per-eviction EAB-wait distribution.
func (u *Unit) StallHistogram() metrics.Histogram { return u.stallHist }

// SetFixed switches the unit to deterministic inter-eviction delays
// (always exactly MID instead of U[0, 2*MID]). This drops the paper's
// interleave randomisation (§3.4) and exists for the ablation showing why
// the randomisation matters: fixed delays interleave systematically with
// the analysed task and break the i.i.d. properties MBPTA requires.
func (u *Unit) SetFixed(fixed bool) { u.fixed = fixed }

// draw produces the next inter-eviction delay.
func (u *Unit) draw() int64 {
	if u.satDelay > 0 {
		return u.satDelay
	}
	if u.fixed {
		return u.mid
	}
	return u.rnd.Range(0, 2*u.mid)
}

// Reset prepares the unit for a new run: the EAB starts set (an eviction
// at cycle 0 is allowed) and counters are cleared.
func (u *Unit) Reset() {
	u.eabAt = 0
	u.stats = Stats{}
	u.stallHist.Reset()
}

// EvictionAllowedAt returns the earliest cycle >= now at which an eviction
// may proceed: now itself if the EAB is set, otherwise the cycle the
// count-down counter reaches zero. It does not consume the EAB.
func (u *Unit) EvictionAllowedAt(now int64) int64 {
	if !u.enabled || u.stuckEAB || u.eabAt <= now {
		return now
	}
	return u.eabAt
}

// RecordEviction consumes the EAB for an eviction performed at cycle t
// (the caller must have honoured EvictionAllowedAt) and rewinds the
// count-down counter with a fresh draw from [0, 2*MID]. waited is the
// stall the request suffered, recorded for statistics.
func (u *Unit) RecordEviction(t int64, waited int64) {
	u.stats.Evictions++
	if waited > 0 {
		u.stats.StallCycles += waited
		u.stallHist.Observe(waited)
	}
	if !u.enabled {
		return
	}
	d := u.draw()
	u.stats.DelaySum += d
	u.eabAt = t + d
}

// CRG is a core's cache request generator (§3.5): in analysis mode it
// issues force-miss eviction requests to the LLC as fast as the core's EFL
// unit allows, i.e. one eviction per count-down expiry. Fire times follow
// t_{i+1} = t_i + U[0, 2*MID].
type CRG struct {
	unit *Unit
	next int64
	dead bool // fault injection: refill logic dead, the CRG never fires
}

// NewCRG couples a generator to a unit and schedules its first request.
// The first fire time is itself a draw, so the three CRGs of the paper's
// platform start desynchronised.
func NewCRG(unit *Unit) *CRG {
	c := &CRG{unit: unit}
	c.Rearm()
	return c
}

// Rearm reschedules the generator for a new run, drawing a fresh first
// fire time. Equivalent to replacing the CRG with NewCRG(unit) but
// allocation-free (the per-run reset path calls this for every co-runner).
func (c *CRG) Rearm() {
	c.next = 0
	if c.unit.enabled {
		c.next = c.unit.draw()
	}
}

// NextFire returns the cycle of the pending artificial eviction request.
func (c *CRG) NextFire() int64 {
	if c.dead {
		return neverFires
	}
	return c.next
}

// Fire records the eviction the CRG just performed at cycle t and
// schedules the next request. It returns the next fire time. The CRG
// issues "uninterruptedly", so the next eviction lands exactly when the
// fresh count-down expires (never sooner than the next cycle: even a zero
// draw cannot complete two LLC evictions in the same cycle).
func (c *CRG) Fire(t int64) int64 {
	c.unit.RecordEviction(t, 0)
	c.next = c.unit.EvictionAllowedAt(t)
	if c.next <= t {
		c.next = t + 1
	}
	return c.next
}

// AccessControl wires the paper's Figure 2 for an N-core processor: one
// unit per core, the mode register, and (in analysis mode) one CRG per
// co-runner core.
type AccessControl struct {
	mode     Mode
	units    []*Unit
	crgs     []*CRG // nil entries for cores without an active CRG
	analysed int    // core under analysis (analysis mode)
}

// NewAccessControl builds the access-control fabric for cores cores with a
// common rMID value (the paper evaluates identical MIDs across cores; 0
// disables EFL). In Analysis mode, analysedCore hosts the task under
// analysis and every other core gets an active CRG.
func NewAccessControl(cores int, mid int64, mode Mode, analysedCore int, rnd rng.Stream) (*AccessControl, error) {
	if cores < 1 {
		return nil, fmt.Errorf("efl: need at least one core")
	}
	if mode == Analysis && (analysedCore < 0 || analysedCore >= cores) {
		return nil, fmt.Errorf("efl: analysed core %d out of range", analysedCore)
	}
	ac := &AccessControl{mode: mode, units: make([]*Unit, cores), crgs: make([]*CRG, cores), analysed: analysedCore}
	for i := range ac.units {
		ac.units[i] = NewUnit(mid, rnd.Fork())
	}
	if mode == Analysis && mid > 0 {
		for i := range ac.crgs {
			if i != analysedCore {
				ac.crgs[i] = NewCRG(ac.units[i])
			}
		}
	}
	return ac, nil
}

// Mode returns the rmode value.
func (ac *AccessControl) Mode() Mode { return ac.mode }

// Unit returns core i's EFL unit.
func (ac *AccessControl) Unit(i int) *Unit { return ac.units[i] }

// CRG returns core i's generator, or nil when inactive.
func (ac *AccessControl) CRG(i int) *CRG { return ac.crgs[i] }

// NumCores returns the number of cores the fabric serves.
func (ac *AccessControl) NumCores() int { return len(ac.units) }

// Reset re-arms every unit and reschedules the active CRGs for a new run.
func (ac *AccessControl) Reset() {
	for i, u := range ac.units {
		u.Reset()
		if ac.crgs[i] != nil {
			ac.crgs[i].Rearm()
		}
	}
}

// Reseed rewinds the fabric to its just-constructed state under a fresh
// seed: every unit's stream is re-derived in construction fork order (so
// the same per-unit generators a fresh NewAccessControl would build) and
// the active CRGs redraw their first fire times exactly as NewCRG does.
// Bit-identical to rebuilding the fabric with rng.New(seed).
func (ac *AccessControl) Reseed(seed uint64) {
	// A stack-allocated MWC stands in for rng.New's heap-boxed parent
	// stream; Stream.Uint64 draws the high word first, which MWC.Uint64
	// mirrors, so the derived child seeds are identical.
	var parent rng.MWC
	parent.Reseed(seed)
	for _, u := range ac.units {
		u.rnd.Reseed(parent.Uint64())
		u.Reset()
	}
	for _, c := range ac.crgs {
		if c != nil {
			c.Rearm()
		}
	}
}

// SetFixed switches every unit between randomised (paper) and fixed
// (ablation) inter-eviction delays.
func (ac *AccessControl) SetFixed(fixed bool) {
	for _, u := range ac.units {
		u.SetFixed(fixed)
	}
}
