package efl

import (
	"math"

	"efl/internal/rng"
)

// Fault-injection hooks for the access-control fabric. Each hook models a
// single hardware fault from the fault-injection subsystem (internal/fault)
// and is armed/disarmed by sim.Multicore between runs, never mid-run. All
// hooks are branch-only on the hot path: a healthy unit pays one predictable
// compare per draw / EAB query.

// neverFires is the fire time of a dead CRG: far enough in the future that
// the event loop never reaches it, without risking overflow in comparisons.
const neverFires = math.MaxInt64 / 4

// InjectStuckEAB sticks the unit's eviction-allowed bit at 1: the count-down
// counter output is ignored and every eviction proceeds immediately. The
// counter logic still draws and decrements (DelaySum keeps growing), only
// the EAB flop output is stuck — the classic stuck-at-1 output fault.
func (u *Unit) InjectStuckEAB() { u.stuckEAB = true }

// InjectSaturatedCDC saturates the count-down counter: every refill loads
// delay instead of a U[0, 2*MID] draw. With a delay far beyond any run
// length, the EAB never sets again after the first eviction and every
// subsequent evicting request stalls forever (a hang, not a wrong answer —
// only the runner watchdog can catch it).
func (u *Unit) InjectSaturatedCDC(delay int64) { u.satDelay = delay }

// InjectRNG replaces the unit's PRNG source with wrap(current), keeping the
// original for ClearFaults. The wrapper sees every draw the delay logic
// makes (rng.StuckSource / rng.MaskSource model output faults).
func (u *Unit) InjectRNG(wrap func(rng.Source) rng.Source) {
	if u.origSrc == nil {
		u.origSrc = u.rnd.Src
	}
	u.rnd.Src = wrap(u.rnd.Src)
}

// ClearFaults restores the unit to its healthy configuration.
func (u *Unit) ClearFaults() {
	u.stuckEAB = false
	u.satDelay = 0
	if u.origSrc != nil {
		u.rnd.Src = u.origSrc
		u.origSrc = nil
	}
}

// InjectDead kills the generator's refill logic: the CRG never issues
// another request, so an analysis run proceeds without the worst-case
// co-runner interference the mode is supposed to realise (invariant A3's
// CRG-liveness check exists to catch exactly this).
func (c *CRG) InjectDead() { c.dead = true }

// ClearFaults restores the generator.
func (c *CRG) ClearFaults() { c.dead = false }

// ClearFaults restores every unit and generator in the fabric.
func (ac *AccessControl) ClearFaults() {
	for i, u := range ac.units {
		u.ClearFaults()
		if ac.crgs[i] != nil {
			ac.crgs[i].ClearFaults()
		}
	}
}
