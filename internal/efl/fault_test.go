package efl

import (
	"testing"

	"efl/internal/rng"
)

func TestInjectStuckEAB(t *testing.T) {
	u := NewUnit(1000, rng.New(1))
	u.InjectStuckEAB()
	u.RecordEviction(0, 0)
	// A healthy unit would gate the next eviction behind a U[0,2000] draw;
	// the stuck EAB lets every eviction through immediately.
	for now := int64(1); now < 5; now++ {
		if got := u.EvictionAllowedAt(now); got != now {
			t.Fatalf("stuck EAB still gated: allowed at %d, want %d", got, now)
		}
		u.RecordEviction(now, 0)
	}
	u.ClearFaults()
	if !gatesAgain(u, 5) {
		t.Fatal("cleared unit no longer gates (fault state leaked)")
	}
}

// gatesAgain reports whether the unit delays at least one of several
// evictions starting at cycle now — robust against individual small draws.
func gatesAgain(u *Unit, now int64) bool {
	for i := 0; i < 50; i++ {
		u.RecordEviction(now, 0)
		if u.EvictionAllowedAt(now+1) > now+1 {
			return true
		}
		now += 2
	}
	return false
}

func TestInjectSaturatedCDC(t *testing.T) {
	const sat = int64(1) << 40
	u := NewUnit(1000, rng.New(2))
	u.InjectSaturatedCDC(sat)
	u.RecordEviction(10, 0)
	if got := u.EvictionAllowedAt(11); got != 10+sat {
		t.Fatalf("saturated counter allows eviction at %d, want %d", got, 10+sat)
	}
	u.ClearFaults()
	u.RecordEviction(20, 0)
	if got := u.EvictionAllowedAt(21); got > 20+2000 {
		t.Fatalf("cleared unit still saturated: allowed at %d", got)
	}
}

func TestInjectRNGStuckAtZero(t *testing.T) {
	u := NewUnit(1000, rng.New(3))
	u.InjectRNG(func(rng.Source) rng.Source { return rng.StuckSource{} })
	// Every refill now draws 0: the unit never gates.
	for now := int64(0); now < 4; now++ {
		if got := u.EvictionAllowedAt(now); got != now {
			t.Fatalf("stuck-at-zero PRNG still produced a delay (allowed at %d, now %d)", got, now)
		}
		u.RecordEviction(now, 0)
	}
	u.ClearFaults()
	if !gatesAgain(u, 10) {
		t.Fatal("ClearFaults did not restore the original PRNG")
	}
}

func TestInjectDeadCRG(t *testing.T) {
	u := NewUnit(500, rng.New(4))
	c := NewCRG(u)
	c.Rearm()
	if c.NextFire() >= neverFires {
		t.Fatal("healthy CRG never fires")
	}
	c.InjectDead()
	if got := c.NextFire(); got < neverFires {
		t.Fatalf("dead CRG fires at %d", got)
	}
	c.ClearFaults()
	if c.NextFire() >= neverFires {
		t.Fatal("cleared CRG still dead")
	}
}

func TestAccessControlClearFaults(t *testing.T) {
	ac, err := NewAccessControl(4, 500, Analysis, 0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ac.Unit(0).InjectStuckEAB()
	ac.Unit(1).InjectSaturatedCDC(1 << 30)
	for i := 0; i < 4; i++ {
		if c := ac.CRG(i); c != nil {
			c.InjectDead()
		}
	}
	ac.ClearFaults()
	if ac.Unit(0).stuckEAB || ac.Unit(1).satDelay != 0 {
		t.Fatal("unit faults survived ClearFaults")
	}
	for i := 0; i < 4; i++ {
		if c := ac.CRG(i); c != nil && c.dead {
			t.Fatalf("CRG %d still dead after ClearFaults", i)
		}
	}
}
