package workload

// The replayer compiles a decoded trace into an isa.Program, so a traced
// workload flows through the exact machinery every hand-written kernel
// uses — sim.Pool, the batch lockstep engine, the auditor invariants,
// fault injection, coherence on shared-footprint traces. Nothing
// downstream knows it is running a trace.
//
// Compilation scheme (register budget: r0 stays the architectural zero —
// it is never written — r1 holds the store data word, r2 receives loads,
// r14 counts gap loops):
//
//   - A record's access becomes one absolute-addressed instruction,
//     ld r2, imm(r0) or st r1, imm(r0) with imm = DataBase + Addr. The
//     zero register as base makes the address a pure immediate, so the
//     replayed address stream is exactly the trace's.
//   - A gap of g idle instructions becomes, for g <= 3, g literal NOPs;
//     for g >= 4, a countdown loop (movi r14,k; addi r14,r14,-1;
//     bne r14,r0,loop; plus 0..1 NOP) executing exactly g dynamic
//     instructions with at most 4 static ones. The loop form never emits
//     k == 0 (g >= 4 implies k >= 1), which would underflow past the
//     equality exit and spin forever.
//
// Dynamic and static instruction counts are both bounded by the format's
// MaxReplayInstr budget (static <= dynamic by the scheme above), which
// Validate enforces before any program is built.

import (
	"fmt"

	"efl/internal/isa"
)

// Replay registers.
const (
	regZero = 0  // architectural zero: never written
	regData = 1  // store data word
	regLoad = 2  // load destination
	regGap  = 14 // gap-loop counter
)

// Replay validates data and compiles it into a runnable program named
// name. The program's data segment is the trace's declared dataBytes
// (zero-initialised: a trace records addresses, not memory contents, and
// the timing model is value-oblivious).
func Replay(name string, data []byte) (*isa.Program, error) {
	meta, err := Validate(data)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(data)
	if err != nil {
		return nil, err
	}
	code := make([]isa.Instr, 0, meta.Records+2)
	code = append(code, isa.Instr{Op: isa.MOVI, Rd: regData, Imm: 1})
	var rec Record
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		imm := int64(isa.DataBase + rec.Addr)
		if rec.Store {
			code = append(code, isa.Instr{Op: isa.ST, Rs: regZero, Rt: regData, Imm: imm})
		} else {
			code = append(code, isa.Instr{Op: isa.LD, Rd: regLoad, Rs: regZero, Imm: imm})
		}
		code = appendGap(code, rec.Gap)
	}
	code = append(code, isa.Instr{Op: isa.HALT})
	prog := &isa.Program{Name: name, Code: code, DataSize: int(meta.DataBytes)}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("workload: replay compiled an invalid program: %w", err)
	}
	return prog, nil
}

// appendGap emits exactly g dynamic idle instructions.
func appendGap(code []isa.Instr, g uint32) []isa.Instr {
	if g <= 3 {
		for i := uint32(0); i < g; i++ {
			code = append(code, isa.Instr{Op: isa.NOP})
		}
		return code
	}
	k := int64(g-1) / 2
	rem := int64(g-1) - 2*k // 0 or 1
	code = append(code, isa.Instr{Op: isa.MOVI, Rd: regGap, Imm: k})
	loop := len(code)
	code = append(code, isa.Instr{Op: isa.ADDI, Rd: regGap, Rs: regGap, Imm: -1})
	code = append(code, isa.Instr{Op: isa.BNE, Rs: regGap, Rt: regZero, Target: loop})
	if rem == 1 {
		code = append(code, isa.Instr{Op: isa.NOP})
	}
	return code
}
