package workload

// The synthetic-trace generator mass-produces scenarios across the axes
// that drive shared-cache behaviour — locality (hot-set concentration),
// footprint (fits the LLC or streams past it), sharing (a coherent
// window touched by several cores) and stride (spatial density). It is
// deterministic end-to-end: the same GenSpec always produces the same
// bytes (pinned by test, including across GOMAXPROCS), so generated
// traces are content-addressable exactly like recorded ones.

import (
	"fmt"

	"efl/internal/rng"
)

// GenSpec parameterises one synthetic trace. The zero value of every
// optional field selects a documented default; Validate (or Generate,
// which calls it) reports anything inconsistent.
type GenSpec struct {
	// Name labels the trace (diagnostics only; not encoded).
	Name string
	// Seed drives every random draw.
	Seed uint64
	// Records is the access count (required, 1..MaxRecords).
	Records int
	// FootprintBytes is the data-segment size (required, a multiple of 8,
	// at least 64). Addresses cover [0, FootprintBytes).
	FootprintBytes int
	// SharedBytes marks the first SharedBytes bytes as the cross-core
	// shared window (a multiple of the 16-byte line size, less than the
	// footprint; 0 disables sharing).
	SharedBytes int
	// SharedFrac is the probability an access lands in the shared window
	// (only meaningful with SharedBytes > 0).
	SharedFrac float64
	// Locality is the probability a private access hits the hot set
	// instead of the streaming cursor.
	Locality float64
	// HotBytes sizes the hot set (the first HotBytes of the private
	// region; default: an eighth of it, rounded to a word).
	HotBytes int
	// StrideBytes advances the streaming cursor between cold accesses
	// (a positive multiple of 8; default 8 — consecutive words).
	StrideBytes int
	// StoreFrac is the probability an access is a store.
	StoreFrac float64
	// MeanGap is the mean idle-instruction gap between accesses; each
	// record draws uniformly from [0, 2*MeanGap].
	MeanGap int
	// AddrBits overrides the declared address width (default: the
	// smallest width covering the footprint).
	AddrBits uint8
	// BlockLen overrides the encoder's block length (default
	// DefaultBlockLen).
	BlockLen int
}

// normalized applies defaults and validates the result.
func (g GenSpec) normalized() (GenSpec, error) {
	if g.Records < 1 || g.Records > MaxRecords {
		return g, fmt.Errorf("workload: gen %q: records %d outside [1,%d]", g.Name, g.Records, MaxRecords)
	}
	if g.FootprintBytes < 64 || g.FootprintBytes%8 != 0 {
		return g, fmt.Errorf("workload: gen %q: footprint %d must be a multiple of 8, at least 64", g.Name, g.FootprintBytes)
	}
	if g.FootprintBytes > MaxDataBytes {
		return g, fmt.Errorf("workload: gen %q: footprint %d exceeds %d", g.Name, g.FootprintBytes, MaxDataBytes)
	}
	if g.SharedBytes < 0 || g.SharedBytes >= g.FootprintBytes || g.SharedBytes%sharedAlign != 0 {
		return g, fmt.Errorf("workload: gen %q: shared window %d must be a multiple of %d, smaller than the %d-byte footprint",
			g.Name, g.SharedBytes, sharedAlign, g.FootprintBytes)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"shared_frac", g.SharedFrac}, {"locality", g.Locality}, {"store_frac", g.StoreFrac}} {
		if f.v < 0 || f.v > 1 {
			return g, fmt.Errorf("workload: gen %q: %s %v outside [0,1]", g.Name, f.name, f.v)
		}
	}
	private := g.FootprintBytes - g.SharedBytes
	if g.HotBytes == 0 {
		g.HotBytes = (private / 8) &^ 7
		if g.HotBytes < 8 {
			g.HotBytes = 8
		}
	}
	if g.HotBytes < 8 || g.HotBytes > private || g.HotBytes%8 != 0 {
		return g, fmt.Errorf("workload: gen %q: hot set %d must be a multiple of 8 within the %d-byte private region", g.Name, g.HotBytes, private)
	}
	if g.StrideBytes == 0 {
		g.StrideBytes = 8
	}
	if g.StrideBytes < 8 || g.StrideBytes%8 != 0 {
		return g, fmt.Errorf("workload: gen %q: stride %d must be a positive multiple of 8", g.Name, g.StrideBytes)
	}
	if g.MeanGap < 0 || g.MeanGap > MaxGap/2 {
		return g, fmt.Errorf("workload: gen %q: mean gap %d outside [0,%d]", g.Name, g.MeanGap, MaxGap/2)
	}
	// Worst-case replay budget: every record at the maximum gap 2*MeanGap
	// plus its access, plus the prologue and HALT.
	if worst := uint64(g.Records)*uint64(1+2*g.MeanGap) + 2; worst > MaxReplayInstr {
		return g, fmt.Errorf("workload: gen %q: %d records at mean gap %d can exceed the %d-instruction replay budget",
			g.Name, g.Records, g.MeanGap, MaxReplayInstr)
	}
	if g.AddrBits == 0 {
		bits := uint8(MinAddrBits)
		for 1<<bits < g.FootprintBytes {
			bits++
		}
		g.AddrBits = bits
	}
	return g, nil
}

// Validate reports whether the spec (with defaults applied) is
// generatable.
func (g GenSpec) Validate() error {
	_, err := g.normalized()
	return err
}

// Generate produces the trace. Same spec (seed included) => byte-identical
// output: the draw order is fixed — per record, in sequence and only as
// each branch needs them: shared?, hot?, address, store?, gap — and the
// encoder is canonical.
func (g GenSpec) Generate() ([]byte, error) {
	g, err := g.normalized()
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(g.AddrBits, uint64(g.FootprintBytes), uint64(g.SharedBytes), g.BlockLen)
	if err != nil {
		return nil, err
	}
	src := rng.New(g.Seed)
	privBase := uint64(g.SharedBytes)
	privWords := (g.FootprintBytes - g.SharedBytes) / 8
	strideWords := g.StrideBytes / 8
	cursor := 0
	var rec Record
	for i := 0; i < g.Records; i++ {
		switch {
		case g.SharedBytes > 0 && u01(src) < g.SharedFrac:
			rec.Addr = uint64(src.Intn(g.SharedBytes/8)) * 8
		case u01(src) < g.Locality:
			rec.Addr = privBase + uint64(src.Intn(g.HotBytes/8))*8
		default:
			rec.Addr = privBase + uint64(cursor)*8
			cursor = (cursor + strideWords) % privWords
		}
		rec.Store = u01(src) < g.StoreFrac
		rec.Gap = 0
		if g.MeanGap > 0 {
			rec.Gap = uint32(src.Intn(2*g.MeanGap + 1))
		}
		if err := w.Add(rec); err != nil {
			return nil, err
		}
	}
	return w.Bytes()
}

// u01 draws a uniform float in [0,1) from the stream's top 53 bits.
func u01(src rng.Stream) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}
