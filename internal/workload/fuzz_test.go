package workload

import (
	"testing"
)

// fuzzSeedTrace builds a small valid trace for the fuzz corpus (no
// testing.T in scope, so errors just drop the seed).
func fuzzSeedTrace(spec GenSpec) []byte {
	data, err := spec.Generate()
	if err != nil {
		return nil
	}
	return data
}

// FuzzDecodeTrace throws arbitrary bytes at the trace decoder and pins two
// properties. First, Validate never panics — traces arrive over /v1/trace
// from untrusted clients and come back from the shared cluster store, so
// every malformed shape must be a descriptive error. Second, every trace
// Validate accepts re-encodes: streaming its records through a fresh
// Writer with the same geometry yields a file that validates to the same
// records (byte-identity is not required — an accepted input may use
// non-minimal varints; the Writer is the canonical form). The checked-in
// corpus under testdata/fuzz seeds valid traces of two shapes plus the
// classic hostile ones (truncated header, bad magic, truncated index,
// corrupt payload).
func FuzzDecodeTrace(f *testing.F) {
	small := fuzzSeedTrace(GenSpec{
		Name: "fuzz-small", Seed: 3, Records: 40, FootprintBytes: 512,
		Locality: 0.5, StoreFrac: 0.3, MeanGap: 2, BlockLen: 16,
	})
	shared := fuzzSeedTrace(GenSpec{
		Name: "fuzz-shared", Seed: 9, Records: 60, FootprintBytes: 1024,
		SharedBytes: 64, SharedFrac: 0.4, StoreFrac: 0.5, BlockLen: 32,
	})
	for _, seed := range [][]byte{small, shared} {
		if seed != nil {
			f.Add(seed)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("EFLT"))
	if small != nil {
		f.Add(small[:HeaderBytes])                      // index cut off
		f.Add(small[:len(small)-3])                     // payload cut off
		f.Add(append([]byte("XXXX"), small[4:]...))     // bad magic
		f.Add(append(append([]byte{}, small...), 0, 1)) // trailing bytes
		corrupt := append([]byte{}, small...)
		corrupt[HeaderBytes+IndexEntryBytes] ^= 0xFF // first payload byte
		f.Add(corrupt)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, err := Validate(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		r, err := NewReader(data)
		if err != nil {
			t.Fatalf("Validate accepted a trace NewReader rejects: %v", err)
		}
		w, err := NewWriter(meta.AddrBits, meta.DataBytes, meta.SharedBytes, int(meta.BlockLen))
		if err != nil {
			t.Fatalf("Validate accepted a geometry NewWriter rejects: %v", err)
		}
		var rec Record
		var recs []Record
		for {
			ok, err := r.Next(&rec)
			if err != nil {
				t.Fatalf("record %d failed after Validate accepted the trace: %v", len(recs), err)
			}
			if !ok {
				break
			}
			recs = append(recs, rec)
			if err := w.Add(rec); err != nil {
				t.Fatalf("record %d rejected by the writer: %v", len(recs)-1, err)
			}
		}
		if uint64(len(recs)) != meta.Records {
			t.Fatalf("decoded %d records, header declares %d", len(recs), meta.Records)
		}
		re, err := w.Bytes()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		meta2, err := Validate(re)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if meta2.Records != meta.Records || meta2.ReplayInstr != meta.ReplayInstr || meta2.Stores != meta.Stores {
			t.Fatalf("round trip changed totals: %+v vs %+v", meta, meta2)
		}
		r2, err := NewReader(re)
		if err != nil {
			t.Fatalf("re-encoded trace unreadable: %v", err)
		}
		for i := range recs {
			ok, err := r2.Next(&rec)
			if err != nil || !ok {
				t.Fatalf("re-encoded record %d: ok=%v err=%v", i, ok, err)
			}
			if rec != recs[i] {
				t.Fatalf("round trip changed record %d: %+v vs %+v", i, rec, recs[i])
			}
		}
	})
}
