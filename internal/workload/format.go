// Package workload turns recorded (or synthesised) memory-access traces
// into analysable programs: a compact schema-versioned binary trace
// format with streamed decode and a seekable block index, a replayer that
// compiles any decoded trace into an isa.Program the full simulation
// machinery runs unmodified, and a seeded synthetic-trace generator
// sweeping locality / footprint / sharing / stride parameters.
//
// This is the frontend the paper's claim needs: EFL makes *arbitrary*
// co-running programs time-analysable on a shared cache, so the analysis
// pipeline must accept arbitrary access patterns, not just the 14
// hand-written bench kernels. Real cache-analysis evaluations are driven
// by recorded traces of real programs for the same reason.
//
// # Trace format (version 1)
//
// A trace file is header, block index, then block payloads — every
// multi-byte integer little-endian:
//
//	header (40 bytes):
//	  [0:4)   magic "EFLT"
//	  [4:6)   version  u16 (== 1)
//	  [6]     addrBits u8  (addresses are < 1<<addrBits; 4..31)
//	  [7]     flags    u8  (== 0; reserved)
//	  [8:16)  records  u64 (total record count; 1..MaxRecords)
//	  [16:24) dataBytes u64 (data-segment size the addresses index)
//	  [24:32) sharedBytes u64 (prefix of the segment shared across cores)
//	  [32:36) blockLen u32 (records per block; the last block may be short)
//	  [36:40) blockCount u32 (== ceil(records/blockLen))
//
//	block index (blockCount x 24 bytes):
//	  [0:8)   offset   u64 (file-absolute byte offset of the block payload)
//	  [8:16)  prevAddr u64 (delta base: the address of the last record
//	                        before this block; 0 for block 0)
//	  [16:20) count    u32 (records in this block)
//	  [20:24) size     u32 (payload bytes of this block)
//
//	block payload (count records, each two uvarints):
//	  v1 = zigzag(addr - prevAddr) << 1 | storeBit
//	  v2 = gap (idle instructions executed before the NEXT record)
//
// Block payloads are contiguous: the first block starts right after the
// index and the last one ends exactly at the end of the file. The block
// index makes the stream seekable — SeekBlock(k) resumes decoding at any
// block boundary without replaying the prefix, because each entry carries
// its own delta base.
//
// Traces are content-addressed by the SHA-256 of the raw file bytes (the
// service's /v1/trace endpoint and the cluster's shared store both key on
// it), so the encoder is canonical: the same records always produce the
// same bytes.
package workload

import (
	"encoding/binary"
	"fmt"
)

// Format constants and limits. The limits bound what a hostile upload can
// make the service allocate or execute: a trace that validates replays
// into at most MaxReplayInstr dynamic instructions over a data segment of
// at most MaxDataBytes.
const (
	// Magic opens every trace file.
	Magic = "EFLT"
	// Version is the format schema version this package reads and writes.
	Version = 1
	// HeaderBytes is the fixed header size.
	HeaderBytes = 40
	// IndexEntryBytes is the size of one block-index entry.
	IndexEntryBytes = 24
	// MaxRecords bounds the record count of one trace.
	MaxRecords = 1 << 20
	// MaxDataBytes bounds the declared data segment (the simulator
	// allocates it per core; the LLC under analysis is tens of KB, so
	// footprints beyond this add memory pressure, not cache behaviour).
	MaxDataBytes = 16 << 20
	// MaxGap bounds one record's idle-instruction gap.
	MaxGap = 1 << 20
	// MaxReplayInstr bounds the replayed program's dynamic instruction
	// count (accesses + gap filler + prologue/epilogue). It keeps a
	// 4 MiB upload from encoding hours of simulation.
	MaxReplayInstr = 2 << 20
	// MaxBlockLen bounds records per block; DefaultBlockLen is the
	// encoder default (a few KB per block — cheap to index, cheap to
	// seek).
	MaxBlockLen     = 1 << 16
	DefaultBlockLen = 4096
	// MinAddrBits and MaxAddrBits bound the declared address width.
	MinAddrBits = 4
	MaxAddrBits = 31
	// sharedAlign is the alignment sharedBytes must have (the platform
	// line size: a shared window must cover whole cache lines).
	sharedAlign = 16
	// wordBytes is the access width of every record (the ISA's LD/ST
	// move 8-byte words).
	wordBytes = 8
)

// Record is one decoded trace record: a word access at Addr (a byte
// offset into the data segment), whether it is a store, and how many idle
// instructions separate it from the next access.
type Record struct {
	Addr  uint64
	Store bool
	Gap   uint32
}

// Meta is a validated trace's header summary plus the full-scan totals
// Validate derives.
type Meta struct {
	AddrBits    uint8
	Records     uint64
	DataBytes   uint64
	SharedBytes uint64
	BlockLen    uint32
	BlockCount  uint32
	// ReplayInstr is the exact dynamic instruction count Replay's program
	// executes (accesses + gaps + prologue + halt). Only set by Validate
	// (it requires the full scan).
	ReplayInstr uint64
	// Stores counts store records. Only set by Validate.
	Stores uint64
}

// indexEntry is one decoded block-index row.
type indexEntry struct {
	offset   uint64
	prevAddr uint64
	count    uint32
	size     uint32
}

// zigzag maps a signed delta onto the uvarint-friendly unsigned form.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer encodes a trace in memory. It is canonical: the same sequence
// of Add calls always yields the same bytes, which is what makes content
// addressing (and the generator's same-seed => byte-identical guarantee)
// work.
type Writer struct {
	addrBits    uint8
	dataBytes   uint64
	sharedBytes uint64
	blockLen    uint32

	records  uint64
	prev     uint64 // last written address (delta base)
	index    []indexEntry
	payload  []byte
	blockBuf []byte // current (unfinished) block payload
	blockN   uint32 // records in the current block
	blockPA  uint64 // delta base at the current block's start
	varbuf   [2 * binary.MaxVarintLen64]byte
}

// NewWriter starts a trace over a dataBytes-byte segment whose first
// sharedBytes bytes are shared across cores, with addresses declared
// addrBits wide. blockLen <= 0 selects DefaultBlockLen.
func NewWriter(addrBits uint8, dataBytes, sharedBytes uint64, blockLen int) (*Writer, error) {
	if blockLen <= 0 {
		blockLen = DefaultBlockLen
	}
	if err := checkHeaderParams(addrBits, dataBytes, sharedBytes, uint32(blockLen)); err != nil {
		return nil, err
	}
	if blockLen > MaxBlockLen {
		return nil, fmt.Errorf("workload: block length %d exceeds %d", blockLen, MaxBlockLen)
	}
	return &Writer{
		addrBits: addrBits, dataBytes: dataBytes, sharedBytes: sharedBytes,
		blockLen: uint32(blockLen),
	}, nil
}

// checkHeaderParams validates the header fields shared by the writer and
// the reader (the reader additionally bounds records/blockCount).
func checkHeaderParams(addrBits uint8, dataBytes, sharedBytes uint64, blockLen uint32) error {
	if addrBits < MinAddrBits || addrBits > MaxAddrBits {
		return fmt.Errorf("workload: address width %d outside [%d,%d] bits", addrBits, MinAddrBits, MaxAddrBits)
	}
	if dataBytes < wordBytes {
		return fmt.Errorf("workload: data segment %d smaller than one %d-byte word", dataBytes, wordBytes)
	}
	if dataBytes > MaxDataBytes {
		return fmt.Errorf("workload: data segment %d exceeds %d bytes", dataBytes, MaxDataBytes)
	}
	if dataBytes > 1<<addrBits {
		return fmt.Errorf("workload: data segment %d overruns the declared %d-bit address space", dataBytes, addrBits)
	}
	if sharedBytes > dataBytes {
		return fmt.Errorf("workload: shared window %d exceeds the data segment %d", sharedBytes, dataBytes)
	}
	if sharedBytes%sharedAlign != 0 {
		return fmt.Errorf("workload: shared window %d is not a multiple of the %d-byte line size", sharedBytes, sharedAlign)
	}
	if blockLen < 1 || blockLen > MaxBlockLen {
		return fmt.Errorf("workload: block length %d outside [1,%d]", blockLen, MaxBlockLen)
	}
	return nil
}

// Add appends one record.
func (w *Writer) Add(r Record) error {
	if w.records >= MaxRecords {
		return fmt.Errorf("workload: trace exceeds %d records", MaxRecords)
	}
	if err := checkRecord(r, w.addrBits, w.dataBytes); err != nil {
		return err
	}
	if w.blockN == 0 {
		w.blockPA = w.prev
	}
	v1 := zigzag(int64(r.Addr)-int64(w.prev)) << 1
	if r.Store {
		v1 |= 1
	}
	n := binary.PutUvarint(w.varbuf[:], v1)
	n += binary.PutUvarint(w.varbuf[n:], uint64(r.Gap))
	w.blockBuf = append(w.blockBuf, w.varbuf[:n]...)
	w.prev = r.Addr
	w.blockN++
	w.records++
	if w.blockN == w.blockLen {
		w.flushBlock()
	}
	return nil
}

// checkRecord validates one record against the declared geometry.
func checkRecord(r Record, addrBits uint8, dataBytes uint64) error {
	if r.Addr >= 1<<addrBits {
		return fmt.Errorf("workload: address %#x outside the declared %d-bit address space", r.Addr, addrBits)
	}
	if r.Addr+wordBytes > dataBytes {
		return fmt.Errorf("workload: address %#x overruns the %d-byte data segment", r.Addr, dataBytes)
	}
	if r.Gap > MaxGap {
		return fmt.Errorf("workload: gap %d exceeds %d", r.Gap, MaxGap)
	}
	return nil
}

// flushBlock seals the current block into the index and payload.
func (w *Writer) flushBlock() {
	w.index = append(w.index, indexEntry{
		prevAddr: w.blockPA,
		count:    w.blockN,
		size:     uint32(len(w.blockBuf)),
	})
	w.payload = append(w.payload, w.blockBuf...)
	w.blockBuf = w.blockBuf[:0]
	w.blockN = 0
}

// Bytes seals the trace and returns the canonical encoding. The writer
// must hold at least one record.
func (w *Writer) Bytes() ([]byte, error) {
	if w.records == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if w.blockN > 0 {
		w.flushBlock()
	}
	blockCount := uint32(len(w.index))
	out := make([]byte, 0, HeaderBytes+int(blockCount)*IndexEntryBytes+len(w.payload))
	var hdr [HeaderBytes]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	hdr[6] = w.addrBits
	hdr[7] = 0
	binary.LittleEndian.PutUint64(hdr[8:16], w.records)
	binary.LittleEndian.PutUint64(hdr[16:24], w.dataBytes)
	binary.LittleEndian.PutUint64(hdr[24:32], w.sharedBytes)
	binary.LittleEndian.PutUint32(hdr[32:36], w.blockLen)
	binary.LittleEndian.PutUint32(hdr[36:40], blockCount)
	out = append(out, hdr[:]...)
	offset := uint64(HeaderBytes + int(blockCount)*IndexEntryBytes)
	var ent [IndexEntryBytes]byte
	for _, e := range w.index {
		binary.LittleEndian.PutUint64(ent[0:8], offset)
		binary.LittleEndian.PutUint64(ent[8:16], e.prevAddr)
		binary.LittleEndian.PutUint32(ent[16:20], e.count)
		binary.LittleEndian.PutUint32(ent[20:24], e.size)
		out = append(out, ent[:]...)
		offset += uint64(e.size)
	}
	out = append(out, w.payload...)
	return out, nil
}

// Reader streams records out of an encoded trace. NewReader validates the
// header and the whole block index eagerly — a malformed file is rejected
// up front with a descriptive error, never a panic or a silent short read
// — and Next validates each record as it decodes.
type Reader struct {
	data  []byte
	meta  Meta
	index []indexEntry

	block  int    // current block (index into index)
	pos    int    // next byte to decode (file-absolute)
	end    int    // current block's payload end
	left   uint32 // records left in the current block
	prev   uint64 // delta base
	seen   uint64 // records decoded so far (across SeekBlock: from the seek point)
	remain uint64 // records remaining until end of trace
}

// NewReader validates data's header and block index and returns a reader
// positioned at the first record.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < HeaderBytes {
		return nil, fmt.Errorf("workload: truncated header: %d of %d bytes", len(data), HeaderBytes)
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("workload: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("workload: unsupported version %d (want %d)", v, Version)
	}
	if data[7] != 0 {
		return nil, fmt.Errorf("workload: reserved flags %#x set", data[7])
	}
	r := &Reader{data: data}
	r.meta = Meta{
		AddrBits:    data[6],
		Records:     binary.LittleEndian.Uint64(data[8:16]),
		DataBytes:   binary.LittleEndian.Uint64(data[16:24]),
		SharedBytes: binary.LittleEndian.Uint64(data[24:32]),
		BlockLen:    binary.LittleEndian.Uint32(data[32:36]),
		BlockCount:  binary.LittleEndian.Uint32(data[36:40]),
	}
	m := &r.meta
	if err := checkHeaderParams(m.AddrBits, m.DataBytes, m.SharedBytes, m.BlockLen); err != nil {
		return nil, err
	}
	if m.Records < 1 || m.Records > MaxRecords {
		return nil, fmt.Errorf("workload: record count %d outside [1,%d]", m.Records, MaxRecords)
	}
	wantBlocks := (m.Records + uint64(m.BlockLen) - 1) / uint64(m.BlockLen)
	if uint64(m.BlockCount) != wantBlocks {
		return nil, fmt.Errorf("workload: block count %d does not cover %d records at %d per block (want %d)",
			m.BlockCount, m.Records, m.BlockLen, wantBlocks)
	}
	indexEnd := HeaderBytes + int(m.BlockCount)*IndexEntryBytes
	if indexEnd > len(data) {
		return nil, fmt.Errorf("workload: truncated block index: file is %d bytes, index ends at %d", len(data), indexEnd)
	}
	r.index = make([]indexEntry, m.BlockCount)
	offset := uint64(indexEnd)
	var total uint64
	for k := range r.index {
		base := HeaderBytes + k*IndexEntryBytes
		e := indexEntry{
			offset:   binary.LittleEndian.Uint64(data[base : base+8]),
			prevAddr: binary.LittleEndian.Uint64(data[base+8 : base+16]),
			count:    binary.LittleEndian.Uint32(data[base+16 : base+20]),
			size:     binary.LittleEndian.Uint32(data[base+20 : base+24]),
		}
		if e.offset != offset {
			return nil, fmt.Errorf("workload: block %d at offset %d, want contiguous %d", k, e.offset, offset)
		}
		wantCount := uint64(m.BlockLen)
		if k == len(r.index)-1 {
			wantCount = m.Records - uint64(m.BlockLen)*uint64(k)
		}
		if uint64(e.count) != wantCount {
			return nil, fmt.Errorf("workload: block %d holds %d records, want %d", k, e.count, wantCount)
		}
		if uint64(e.size) < 2*uint64(e.count) {
			// Every record is at least two uvarint bytes; a smaller size
			// means the declared count overflows the block's length.
			return nil, fmt.Errorf("workload: block %d declares %d records in %d bytes (need >= %d)",
				k, e.count, e.size, 2*e.count)
		}
		if k == 0 && e.prevAddr != 0 {
			return nil, fmt.Errorf("workload: block 0 delta base %#x, want 0", e.prevAddr)
		}
		if e.prevAddr >= 1<<m.AddrBits {
			return nil, fmt.Errorf("workload: block %d delta base %#x outside the %d-bit address space", k, e.prevAddr, m.AddrBits)
		}
		r.index[k] = e
		offset += uint64(e.size)
		total += uint64(e.count)
	}
	if offset != uint64(len(data)) {
		return nil, fmt.Errorf("workload: blocks end at %d, file is %d bytes", offset, len(data))
	}
	if total != m.Records {
		return nil, fmt.Errorf("workload: index covers %d records, header declares %d", total, m.Records)
	}
	if err := r.SeekBlock(0); err != nil {
		return nil, err
	}
	return r, nil
}

// Meta returns the trace's header summary (ReplayInstr/Stores are only
// populated by Validate).
func (r *Reader) Meta() Meta { return r.meta }

// Blocks returns the block count.
func (r *Reader) Blocks() int { return len(r.index) }

// SeekBlock positions the reader at the first record of block k; the
// following Next calls stream to the end of the trace.
func (r *Reader) SeekBlock(k int) error {
	if k < 0 || k >= len(r.index) {
		return fmt.Errorf("workload: seek to block %d of %d", k, len(r.index))
	}
	e := r.index[k]
	r.block = k
	r.pos = int(e.offset)
	r.end = int(e.offset) + int(e.size)
	r.left = e.count
	r.prev = e.prevAddr
	r.seen = 0
	r.remain = r.meta.Records - uint64(r.meta.BlockLen)*uint64(k)
	return nil
}

// Next decodes the next record into rec. It returns false at the end of
// the trace, and an error on any malformed payload: varint truncation, a
// record straddling its block boundary, an address outside the declared
// width or segment, or an oversized gap.
func (r *Reader) Next(rec *Record) (bool, error) {
	if r.remain == 0 {
		return false, nil
	}
	if r.left == 0 {
		// Enter the next block, re-basing the delta on its index entry
		// (validated equal to the running address by Validate's full
		// scan, and what makes SeekBlock equivalent to streaming past).
		if err := r.SeekBlockKeepProgress(r.block + 1); err != nil {
			return false, err
		}
	}
	v1, n := binary.Uvarint(r.data[r.pos:r.end])
	if n <= 0 {
		return false, fmt.Errorf("workload: block %d: truncated record at offset %d", r.block, r.pos)
	}
	r.pos += n
	v2, n := binary.Uvarint(r.data[r.pos:r.end])
	if n <= 0 {
		return false, fmt.Errorf("workload: block %d: truncated gap at offset %d", r.block, r.pos)
	}
	r.pos += n
	addr := int64(r.prev) + unzigzag(v1>>1)
	if addr < 0 || uint64(addr) >= 1<<r.meta.AddrBits {
		return false, fmt.Errorf("workload: block %d: address %d outside the declared %d-bit address space", r.block, addr, r.meta.AddrBits)
	}
	rec.Addr = uint64(addr)
	rec.Store = v1&1 != 0
	if rec.Addr+wordBytes > r.meta.DataBytes {
		return false, fmt.Errorf("workload: block %d: address %#x overruns the %d-byte data segment", r.block, rec.Addr, r.meta.DataBytes)
	}
	if v2 > MaxGap {
		return false, fmt.Errorf("workload: block %d: gap %d exceeds %d", r.block, v2, MaxGap)
	}
	rec.Gap = uint32(v2)
	r.prev = rec.Addr
	r.left--
	r.seen++
	r.remain--
	if r.left == 0 && r.pos != r.end {
		return false, fmt.Errorf("workload: block %d: %d trailing payload bytes", r.block, r.end-r.pos)
	}
	return true, nil
}

// SeekBlockKeepProgress advances into block k preserving the streaming
// counters (internal block-boundary crossing; SeekBlock resets them).
func (r *Reader) SeekBlockKeepProgress(k int) error {
	if k < 0 || k >= len(r.index) {
		return fmt.Errorf("workload: record stream ran past block %d of %d", k, len(r.index))
	}
	e := r.index[k]
	r.block = k
	r.pos = int(e.offset)
	r.end = int(e.offset) + int(e.size)
	r.left = e.count
	r.prev = e.prevAddr
	return nil
}

// Validate fully decodes data, checking every record and the block
// index's delta-base continuity, and returns the trace's Meta with the
// full-scan totals (exact replay instruction count, store count). It is
// the gate every untrusted trace passes before it is stored or replayed.
func Validate(data []byte) (Meta, error) {
	r, err := NewReader(data)
	if err != nil {
		return Meta{}, err
	}
	var (
		rec    Record
		prev   uint64
		idx    uint64
		instr  uint64 = 2 // prologue MOVI + HALT
		stores uint64
	)
	for {
		// Check delta-base continuity at each block boundary: the index
		// entry must name the actual previous address, or seeking to the
		// block would decode different records than streaming into it.
		if r.left == 0 && r.remain > 0 {
			e := r.index[r.block+1]
			if e.prevAddr != prev {
				return Meta{}, fmt.Errorf("workload: block %d delta base %#x, but the preceding record's address is %#x",
					r.block+1, e.prevAddr, prev)
			}
		}
		ok, err := r.Next(&rec)
		if err != nil {
			return Meta{}, fmt.Errorf("record %d: %w", idx, err)
		}
		if !ok {
			break
		}
		instr += 1 + uint64(rec.Gap)
		if rec.Store {
			stores++
		}
		if instr > MaxReplayInstr {
			return Meta{}, fmt.Errorf("workload: replay budget: trace exceeds %d dynamic instructions at record %d", MaxReplayInstr, idx)
		}
		prev = rec.Addr
		idx++
	}
	m := r.Meta()
	m.ReplayInstr = instr
	m.Stores = stores
	return m, nil
}
