package workload

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// genTrace builds a moderately interesting valid trace for the tests:
// multiple blocks, stores and loads, varied gaps.
func genTrace(t *testing.T, spec GenSpec) []byte {
	t.Helper()
	data, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return data
}

func testSpec() GenSpec {
	return GenSpec{
		Name: "test", Seed: 7, Records: 900, FootprintBytes: 8 * 1024,
		SharedBytes: 256, SharedFrac: 0.2, Locality: 0.6,
		StoreFrac: 0.3, MeanGap: 3, BlockLen: 128,
	}
}

// decodeAll streams every record out of data.
func decodeAll(t *testing.T, data []byte) []Record {
	t.Helper()
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var out []Record
	var rec Record
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			t.Fatalf("Next (record %d): %v", len(out), err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

func TestRoundTrip(t *testing.T) {
	w, err := NewWriter(16, 4096, 32, 4)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	want := []Record{
		{Addr: 0, Store: false, Gap: 0},
		{Addr: 4088, Store: true, Gap: 5},
		{Addr: 8, Store: false, Gap: 1},
		{Addr: 8, Store: true, Gap: MaxGap},
		{Addr: 16, Store: false, Gap: 2},       // block boundary after 4
		{Addr: 2048, Store: true, Gap: 100000}, // short last block
	}
	for i, r := range want {
		if err := w.Add(r); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	data, err := w.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	meta, err := Validate(data)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if meta.Records != uint64(len(want)) || meta.DataBytes != 4096 || meta.SharedBytes != 32 ||
		meta.BlockLen != 4 || meta.BlockCount != 2 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Stores != 3 {
		t.Fatalf("meta.Stores = %d, want 3", meta.Stores)
	}
	var instr uint64 = 2
	for _, r := range want {
		instr += 1 + uint64(r.Gap)
	}
	if meta.ReplayInstr != instr {
		t.Fatalf("meta.ReplayInstr = %d, want %d", meta.ReplayInstr, instr)
	}
	got := decodeAll(t, data)
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGeneratedTraceValidates(t *testing.T) {
	data := genTrace(t, testSpec())
	meta, err := Validate(data)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if meta.Records != 900 {
		t.Fatalf("records = %d, want 900", meta.Records)
	}
	if meta.BlockCount != (900+127)/128 {
		t.Fatalf("blocks = %d", meta.BlockCount)
	}
}

// TestSeekResumeEquivalence pins the seekable-index contract: resuming the
// stream at block k yields exactly the suffix a full replay passes after
// skipping k blocks of records.
func TestSeekResumeEquivalence(t *testing.T) {
	data := genTrace(t, testSpec())
	full := decodeAll(t, data)
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	blockLen := int(r.Meta().BlockLen)
	for k := 0; k < r.Blocks(); k++ {
		if err := r.SeekBlock(k); err != nil {
			t.Fatalf("SeekBlock(%d): %v", k, err)
		}
		want := full[k*blockLen:]
		var rec Record
		for i := 0; ; i++ {
			ok, err := r.Next(&rec)
			if err != nil {
				t.Fatalf("block %d, record %d: %v", k, i, err)
			}
			if !ok {
				if i != len(want) {
					t.Fatalf("block %d: resumed stream ended after %d records, want %d", k, i, len(want))
				}
				break
			}
			if i >= len(want) || rec != want[i] {
				t.Fatalf("block %d, record %d: got %+v, want %+v", k, i, rec, want[i])
			}
		}
	}
}

// mutate returns a copy of data with the bytes at off replaced.
func mutate(data []byte, off int, repl ...byte) []byte {
	out := append([]byte(nil), data...)
	copy(out[off:], repl)
	return out
}

// put32/put64 little-endian helpers for header surgery.
func put32(v uint32) []byte { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); return b[:] }
func put64(v uint64) []byte { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); return b[:] }

// TestRejectsMalformed drives the decoder's up-front validation: every
// corruption is rejected with an error (never a panic, never a silent
// short read).
func TestRejectsMalformed(t *testing.T) {
	data := genTrace(t, testSpec())
	indexEnd := HeaderBytes + int(binary.LittleEndian.Uint32(data[36:40]))*IndexEntryBytes
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", data[:HeaderBytes-1]},
		{"bad magic", mutate(data, 0, 'X')},
		{"bad version", mutate(data, 4, 9, 9)},
		{"reserved flags", mutate(data, 7, 1)},
		{"address width zero", mutate(data, 6, 0)},
		{"address width huge", mutate(data, 6, 63)},
		{"zero records", mutate(data, 8, put64(0)...)},
		{"record count overflow", mutate(data, 8, put64(MaxRecords+1)...)},
		// Count raised without touching payloads: the per-block count
		// re-derivation catches the mismatch.
		{"record count inflated", mutate(data, 8, put64(901)...)},
		{"data segment zero", mutate(data, 16, put64(0)...)},
		{"data segment oversized", mutate(data, 16, put64(MaxDataBytes+1)...)},
		{"data segment past address width", mutate(data, 16, put64(1<<uint(data[6])+8)...)},
		{"shared window past segment", mutate(data, 24, put64(1<<40)...)},
		{"shared window misaligned", mutate(data, 24, put64(24)...)},
		{"block length zero", mutate(data, 32, put32(0)...)},
		{"block count mismatch", mutate(data, 36, put32(1)...)},
		{"truncated block index", data[:HeaderBytes+IndexEntryBytes/2]},
		{"block offset gap", mutate(data, HeaderBytes, put64(uint64(indexEnd)+1)...)},
		{"block count short", mutate(data, HeaderBytes+16, put32(2)...)},
		// Size smaller than 2 bytes/record: the declared record count
		// overflows the declared block length.
		{"count overflows block size", mutate(data, HeaderBytes+20, put32(3)...)},
		{"block 0 delta base nonzero", mutate(data, HeaderBytes+8, put64(1)...)},
		{"truncated payload", data[:len(data)-1]},
		{"trailing bytes", append(append([]byte(nil), data...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Validate(tc.data); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

// handTrace assembles a single-block trace by hand so the payload can
// violate invariants the Writer never emits.
func handTrace(t *testing.T, addrBits uint8, dataBytes uint64, payload []byte, count uint32) []byte {
	t.Helper()
	var out []byte
	var hdr [HeaderBytes]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	hdr[6] = addrBits
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(count))
	binary.LittleEndian.PutUint64(hdr[16:24], dataBytes)
	binary.LittleEndian.PutUint32(hdr[32:36], count)
	binary.LittleEndian.PutUint32(hdr[36:40], 1)
	out = append(out, hdr[:]...)
	var ent [IndexEntryBytes]byte
	binary.LittleEndian.PutUint64(ent[0:8], HeaderBytes+IndexEntryBytes)
	binary.LittleEndian.PutUint32(ent[16:20], count)
	binary.LittleEndian.PutUint32(ent[20:24], uint32(len(payload)))
	out = append(out, ent[:]...)
	return append(out, payload...)
}

// uvar appends uvarints.
func uvar(vs ...uint64) []byte {
	var out []byte
	var b [binary.MaxVarintLen64]byte
	for _, v := range vs {
		out = append(out, b[:binary.PutUvarint(b[:], v)]...)
	}
	return out
}

func TestRejectsMalformedRecords(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		count   uint32
	}{
		// delta -8 from base 0: a negative address, outside any width.
		{"negative address", uvar(zigzag(-8)<<1, 0, 0, 0), 2},
		// addr 248: inside the 8-bit width but 248+8 > the 248-byte segment.
		{"address overruns segment", uvar(zigzag(248)<<1, 0), 1},
		{"gap over budget", uvar(zigzag(0)<<1, MaxGap+1), 1},
		// Block declares 3 records but holds 2: the stream truncates.
		{"payload short of count", uvar(zigzag(0)<<1, 0, zigzag(8)<<1, 0), 3},
		// Block declares 1 record but holds 2: trailing payload bytes.
		{"payload past count", uvar(zigzag(0)<<1, 0, zigzag(8)<<1, 0), 1},
		// A varint cut mid-byte (continuation bit set at the end).
		{"truncated varint", append(uvar(zigzag(0)<<1, 0), 0x80), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := handTrace(t, 8, 248, tc.payload, tc.count)
			if _, err := Validate(data); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

// TestRejectsReplayBudget pins the dynamic-instruction bound: a small file
// whose gaps encode an enormous replay is rejected up front.
func TestRejectsReplayBudget(t *testing.T) {
	w, err := NewWriter(16, 4096, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Add(Record{Addr: 0, Gap: MaxGap}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	data, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(data); err == nil {
		t.Fatal("Validate accepted a trace over the replay budget")
	}
}

// TestRejectsDeltaBaseDiscontinuity: an index entry whose delta base does
// not match the preceding record's address would make seeking and
// streaming disagree; the full scan rejects it.
func TestRejectsDeltaBaseDiscontinuity(t *testing.T) {
	data := genTrace(t, testSpec())
	// Corrupt block 1's prevAddr (still inside the address width).
	bad := mutate(data, HeaderBytes+IndexEntryBytes+8, put64(16)...)
	if _, err := NewReader(bad); err != nil {
		t.Fatalf("NewReader rejected an index-local-valid file: %v", err)
	}
	if _, err := Validate(bad); err == nil {
		t.Fatal("Validate accepted a delta-base discontinuity")
	}
}

// TestGeneratorDeterminism pins same seed/params => byte-identical across
// repeated calls and across GOMAXPROCS settings, and that the seed
// actually matters.
func TestGeneratorDeterminism(t *testing.T) {
	spec := testSpec()
	first := genTrace(t, spec)
	prev := runtime.GOMAXPROCS(1)
	again := genTrace(t, spec)
	runtime.GOMAXPROCS(8)
	third := genTrace(t, spec)
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(first, again) || !bytes.Equal(first, third) {
		t.Fatal("same spec produced different bytes across runs/GOMAXPROCS")
	}
	other := spec
	other.Seed++
	if bytes.Equal(first, genTrace(t, other)) {
		t.Fatal("different seeds produced identical traces")
	}
}
