package workload

import (
	"testing"

	"efl/internal/isa"
	"efl/internal/sim"
	"efl/internal/trace"
)

// TestReplayFidelity pins the compilation contract: the replayed program's
// dynamic memory-access stream is exactly the trace's — same addresses,
// same load/store kinds, separated by exactly the recorded gaps — and the
// dynamic instruction count is exactly Meta.ReplayInstr.
func TestReplayFidelity(t *testing.T) {
	spec := testSpec()
	spec.MeanGap = 5 // exercise both gap forms: literal NOPs and loops
	data := genTrace(t, spec)
	meta, err := Validate(data)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	records := decodeAll(t, data)
	prog, err := Replay("fidelity", data)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if prog.DataSize != int(meta.DataBytes) {
		t.Fatalf("DataSize = %d, want %d", prog.DataSize, meta.DataBytes)
	}
	m, err := isa.NewMachine(prog)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	var steps []isa.StepInfo
	var info isa.StepInfo
	for !m.Halted() {
		if err := m.StepInto(&info); err != nil {
			t.Fatalf("step %d: %v", len(steps), err)
		}
		steps = append(steps, info)
		if uint64(len(steps)) > meta.ReplayInstr {
			t.Fatalf("program ran past the declared %d-instruction replay", meta.ReplayInstr)
		}
	}
	if uint64(len(steps)) != meta.ReplayInstr {
		t.Fatalf("dynamic instructions = %d, want Meta.ReplayInstr = %d", len(steps), meta.ReplayInstr)
	}
	// Walk the stream: prologue, then per record one access followed by
	// exactly Gap idle instructions, then HALT.
	pos := 0
	if steps[pos].Op.IsMem() {
		t.Fatalf("step 0 is a memory access, want the prologue")
	}
	pos++
	for i, rec := range records {
		s := steps[pos]
		if !s.Op.IsMem() {
			t.Fatalf("record %d: step %d is %v, want a memory access", i, pos, s.Op)
		}
		if want := isa.DataBase + rec.Addr; s.MemAddr != want {
			t.Fatalf("record %d: address %#x, want %#x", i, s.MemAddr, want)
		}
		if s.MemWrite != rec.Store {
			t.Fatalf("record %d: write=%v, want %v", i, s.MemWrite, rec.Store)
		}
		pos++
		for g := uint32(0); g < rec.Gap; g++ {
			if steps[pos].Op.IsMem() {
				t.Fatalf("record %d: gap instruction %d of %d is a memory access", i, g, rec.Gap)
			}
			pos++
		}
	}
	if last := steps[pos]; last.Op != isa.HALT || !last.Halted {
		t.Fatalf("final step is %v (halted=%v), want HALT", last.Op, last.Halted)
	}
	if pos+1 != len(steps) {
		t.Fatalf("stream has %d steps past the records, want 1 (HALT)", len(steps)-pos)
	}
}

// TestReplayAuditedRun runs a four-core traced workload — private
// footprints plus a shared coherent window — under the full deployment
// machinery with every auditor invariant armed, including A5 from the
// run's coherence trace.
func TestReplayAuditedRun(t *testing.T) {
	const shared = 64
	cfg := sim.DefaultConfig().WithEFL(1000)
	cfg.SharedDataBytes = shared
	progs := make([]*isa.Program, cfg.Cores)
	for i := range progs {
		spec := GenSpec{
			Name: "core", Seed: uint64(100 + i), Records: 400,
			FootprintBytes: 4096, SharedBytes: shared, SharedFrac: 0.3,
			Locality: 0.5, StoreFrac: 0.4, MeanGap: 2, BlockLen: 64,
		}
		data := genTrace(t, spec)
		prog, err := Replay("traced", data)
		if err != nil {
			t.Fatalf("Replay core %d: %v", i, err)
		}
		progs[i] = prog
	}
	pool := sim.NewPool()
	aud := sim.NewAuditor()
	pool.SetAuditor(aud)
	buf := trace.NewBuffer(1<<20).Keep(
		trace.EvCohFetch, trace.EvCohUpgrade, trace.EvCohInval, trace.EvCohHit)
	var res sim.Result
	for run := 0; run < 3; run++ {
		m, err := pool.Get(cfg, progs, 42+uint64(run))
		if err != nil {
			t.Fatalf("Get run %d: %v", run, err)
		}
		buf.Reset()
		m.SetTracer(buf)
		err = m.RunInto(&res)
		m.SetTracer(nil)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if err := pool.AuditRun(cfg, &res); err != nil {
			t.Fatalf("audit run %d: %v", run, err)
		}
		if err := aud.CheckCoherence(cfg, buf.Events()); err != nil {
			t.Fatalf("coherence audit run %d: %v", run, err)
		}
	}
	rep := aud.Report()
	var checks, violations int64
	for name, iv := range rep.Invariants {
		checks += iv.Checks
		violations += iv.Violations
		if iv.Violations > 0 {
			t.Errorf("invariant %s: %d violations", name, iv.Violations)
		}
	}
	if checks == 0 {
		t.Fatal("auditor performed no checks")
	}
	if a5 := rep.Invariants[sim.AuditCoherence]; a5.Checks == 0 {
		t.Fatal("A5 (coherence) was never checked")
	}
}

// TestReplayLockstepK8 pins batch-size invariance on a traced workload:
// K=8 lockstep produces the same analysis-time sequence as sequential
// (K=1) replay under the same per-run seeds.
func TestReplayLockstepK8(t *testing.T) {
	data := genTrace(t, testSpec())
	prog, err := Replay("lockstep", data)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	cfg := sim.DefaultConfig().WithEFL(1000)
	seedFor := func(i int) uint64 { return 9000 + 7*uint64(i) }
	const runs = 24
	collect := func(k int) []float64 {
		var times []float64
		n, err := sim.NewPool().StreamAnalysisTimes(nil, cfg, prog, k, runs, seedFor,
			func(v float64) bool { times = append(times, v); return false })
		if err != nil {
			t.Fatalf("StreamAnalysisTimes k=%d: %v", k, err)
		}
		if n != runs {
			t.Fatalf("k=%d consumed %d runs, want %d", k, n, runs)
		}
		return times
	}
	seq := collect(1)
	batch := collect(8)
	for i := range seq {
		if seq[i] != batch[i] {
			t.Fatalf("run %d: k=1 time %v != k=8 time %v", i, seq[i], batch[i])
		}
	}
}
