// Package trace provides event tracing for the platform simulator: the
// shared-resource interactions (bus grants, LLC hits/misses, EFL gate
// stalls, CRG evictions, memory transactions) are recorded with exact
// cycle timestamps into a bounded buffer and can be rendered as a text
// timeline or exported in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto) for visual inspection.
//
// Tracing exists for the same reason hardware people attach logic
// analysers: when a pWCET looks wrong, the question is always *where the
// cycles went* — and the answer is a timeline, not an aggregate counter.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// Event kinds emitted by the simulator.
const (
	EvBusGrant Kind = iota // core won bus arbitration; Arg = wait cycles
	EvLLCHit               // LLC lookup hit; Addr = line byte address
	EvLLCMiss              // LLC lookup missed (eviction follows)
	EvEFLStall             // miss stalled on the eviction-allowed bit; Arg = stall cycles
	EvCRGEvict             // a CRG injected an artificial eviction
	EvMemRead              // memory read issued; Arg = completion cycle
	EvMemWrite             // posted memory write issued
	EvCoreHalt             // core finished; Arg = retired instructions

	// Coherence events (shared-data MSI layer). The A5 auditor re-derives
	// the protocol state from these in insertion order, so the simulator
	// emits them at the exact point the directory transitions.
	EvCohFetch   // core fetched a shared line; Arg = 1 exclusive (RFO), 0 shared
	EvCohUpgrade // store upgraded a resident shared line to M; Arg = peers invalidated
	EvCohInval   // a peer's L1 copy was invalidated; Core = the peer
	EvCohHit     // core hit a shared line in its own L1; Arg = 1 write, 0 read
	numKinds
)

var kindNames = [numKinds]string{
	"bus-grant", "llc-hit", "llc-miss", "efl-stall", "crg-evict",
	"mem-read", "mem-write", "core-halt",
	"coh-fetch", "coh-upgrade", "coh-inval", "coh-hit",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one timeline record.
type Event struct {
	Cycle int64
	Core  int16 // -1 for platform-level events
	Kind  Kind
	Addr  uint64
	Arg   int64
}

// String renders one event.
func (e Event) String() string {
	return fmt.Sprintf("@%d core%d %s addr=%#x arg=%d", e.Cycle, e.Core, e.Kind, e.Addr, e.Arg)
}

// Buffer is a bounded event sink. When full it drops further events and
// counts them — tracing must never change simulation behaviour or grow
// without bound on long runs.
type Buffer struct {
	events  []Event
	max     int
	dropped uint64 // events lost because the buffer was full
	// filtered counts events rejected by Filter. Kept separate from
	// dropped: a filtered event is excluded by request, a dropped one is
	// data loss — conflating them (or not counting filtered at all, the
	// original bug) makes "did my trace capture everything it was asked
	// to?" unanswerable.
	filtered uint64
	// Filter, when non-zero, keeps only the kinds whose bit is set
	// (bit i = Kind(i)).
	Filter uint32
}

// NewBuffer creates a sink holding at most capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{events: make([]Event, 0, capacity), max: capacity}
}

// Keep restricts the buffer to the given kinds (replacing any previous
// filter) and returns the buffer for chaining.
func (b *Buffer) Keep(kinds ...Kind) *Buffer {
	b.Filter = 0
	for _, k := range kinds {
		b.Filter |= 1 << uint(k)
	}
	return b
}

// Add records an event (dropping it when the buffer is full or filtered).
func (b *Buffer) Add(e Event) {
	if b.Filter != 0 && b.Filter&(1<<uint(e.Kind)) == 0 {
		b.filtered++
		return
	}
	if len(b.events) >= b.max {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Events returns the recorded events in insertion order. The caller must
// not modify the returned slice.
func (b *Buffer) Events() []Event { return b.events }

// Dropped returns how many events were discarded after the buffer filled.
// Filter rejections are not drops; see Filtered.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Filtered returns how many events the kind filter rejected.
func (b *Buffer) Filtered() uint64 { return b.filtered }

// Reset clears the buffer for a new run.
func (b *Buffer) Reset() {
	b.events = b.events[:0]
	b.dropped = 0
	b.filtered = 0
}

// Stats summarises the buffer per (core, kind).
func (b *Buffer) Stats() map[int16]map[Kind]int {
	out := map[int16]map[Kind]int{}
	for _, e := range b.events {
		m := out[e.Core]
		if m == nil {
			m = map[Kind]int{}
			out[e.Core] = m
		}
		m[e.Kind]++
	}
	return out
}

// Render prints the events with cycles in [from, to) as a text timeline,
// one line per event, sorted by cycle (stable on insertion order).
func (b *Buffer) Render(from, to int64) string {
	evs := append([]Event(nil), b.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	var sb strings.Builder
	n := 0
	for _, e := range evs {
		if e.Cycle < from || e.Cycle >= to {
			continue
		}
		sb.WriteString(e.String())
		sb.WriteByte('\n')
		n++
	}
	fmt.Fprintf(&sb, "(%d events in [%d, %d)", n, from, to)
	if b.dropped > 0 {
		fmt.Fprintf(&sb, ", %d dropped after the buffer filled", b.dropped)
	}
	if b.filtered > 0 {
		fmt.Fprintf(&sb, ", %d filtered out", b.filtered)
	}
	sb.WriteString(")\n")
	return sb.String()
}

// ChromeJSON exports the buffer in the Chrome trace-event format: instant
// events on one row per core, with the kind as the name. Cycles map to
// microseconds 1:1 (the viewer's unit).
func (b *Buffer) ChromeJSON() []byte {
	var sb strings.Builder
	sb.WriteString("[")
	for i, e := range b.events {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb,
			`{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t","args":{"addr":"%#x","arg":%d}}`,
			e.Kind.String(), e.Cycle, e.Core+1, e.Addr, e.Arg)
	}
	sb.WriteString("]")
	return []byte(sb.String())
}
