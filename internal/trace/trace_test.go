package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 6; i++ {
		b.Add(Event{Cycle: int64(i), Core: 0, Kind: EvLLCHit})
	}
	if len(b.Events()) != 4 {
		t.Fatalf("%d events kept", len(b.Events()))
	}
	if b.Dropped() != 2 {
		t.Fatalf("dropped = %d", b.Dropped())
	}
	b.Reset()
	if len(b.Events()) != 0 || b.Dropped() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(100).Keep(EvEFLStall, EvCRGEvict)
	b.Add(Event{Kind: EvLLCHit})
	b.Add(Event{Kind: EvEFLStall, Arg: 42})
	b.Add(Event{Kind: EvCRGEvict})
	if len(b.Events()) != 2 {
		t.Fatalf("filter kept %d events", len(b.Events()))
	}
	for _, e := range b.Events() {
		if e.Kind == EvLLCHit {
			t.Fatal("filtered kind recorded")
		}
	}
}

func TestRenderWindow(t *testing.T) {
	b := NewBuffer(100)
	b.Add(Event{Cycle: 10, Core: 1, Kind: EvBusGrant, Arg: 2})
	b.Add(Event{Cycle: 30, Core: 2, Kind: EvLLCMiss, Addr: 0x40})
	b.Add(Event{Cycle: 50, Core: 0, Kind: EvMemRead, Arg: 150})
	out := b.Render(0, 40)
	if !strings.Contains(out, "bus-grant") || !strings.Contains(out, "llc-miss") {
		t.Fatalf("render missing events:\n%s", out)
	}
	if strings.Contains(out, "mem-read") {
		t.Fatalf("render included out-of-window event:\n%s", out)
	}
	if !strings.Contains(out, "2 events in [0, 40)") {
		t.Fatalf("footer wrong:\n%s", out)
	}
}

func TestStats(t *testing.T) {
	b := NewBuffer(100)
	b.Add(Event{Core: 0, Kind: EvLLCHit})
	b.Add(Event{Core: 0, Kind: EvLLCHit})
	b.Add(Event{Core: 1, Kind: EvCRGEvict})
	st := b.Stats()
	if st[0][EvLLCHit] != 2 || st[1][EvCRGEvict] != 1 {
		t.Fatalf("stats = %v", st)
	}
}

func TestChromeJSONIsValid(t *testing.T) {
	b := NewBuffer(10)
	b.Add(Event{Cycle: 5, Core: 2, Kind: EvEFLStall, Addr: 0x1234, Arg: 99})
	b.Add(Event{Cycle: 9, Core: -1, Kind: EvCRGEvict})
	var parsed []map[string]any
	if err := json.Unmarshal(b.ChromeJSON(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.ChromeJSON())
	}
	if len(parsed) != 2 {
		t.Fatalf("%d records", len(parsed))
	}
	if parsed[0]["name"] != "efl-stall" || parsed[0]["ts"] != float64(5) {
		t.Fatalf("record = %v", parsed[0])
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || strings.Contains(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind String broken")
	}
}

// TestFilteredDropAccounting pins the drop-accounting fix: filter
// rejections are counted separately from full-buffer drops. Before the
// fix, filtered events simply vanished — Dropped() read 0 on a heavily
// filtered trace, which made a truncated capture indistinguishable from a
// complete one.
func TestFilteredDropAccounting(t *testing.T) {
	b := NewBuffer(2).Keep(EvLLCHit)
	b.Add(Event{Kind: EvLLCMiss})  // filtered
	b.Add(Event{Kind: EvLLCHit})   // kept
	b.Add(Event{Kind: EvLLCHit})   // kept (buffer now full)
	b.Add(Event{Kind: EvLLCHit})   // dropped: full
	b.Add(Event{Kind: EvBusGrant}) // filtered, even while full
	if got := b.Filtered(); got != 2 {
		t.Fatalf("Filtered() = %d, want 2", got)
	}
	if got := b.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}
	if len(b.Events()) != 2 {
		t.Fatalf("%d events kept", len(b.Events()))
	}
	out := b.Render(0, 10)
	if !strings.Contains(out, "1 dropped") || !strings.Contains(out, "2 filtered") {
		t.Fatalf("render does not report both counts:\n%s", out)
	}
	b.Reset()
	if b.Filtered() != 0 || b.Dropped() != 0 {
		t.Fatal("Reset did not clear the drop counters")
	}
}
