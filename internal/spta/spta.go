// Package spta implements a small static probabilistic timing analysis —
// the analytical counterpart of the measurement-based route the paper
// uses. Where MBPTA fits observed end-to-end times, SPTA derives each
// access's hit/miss probability from the program's reuse distances under
// the time-randomised cache model (the per-eviction survival law behind
// the paper's Equation 1), attaches an execution time profile (ETP) to
// every access, and bounds the tail of their sum.
//
// SPTA appears in the PTA literature the paper builds on (e.g. the
// PROARTIS line of work); this package exists to cross-validate the
// simulator: the analytic per-access miss probabilities must match the
// Monte-Carlo behaviour of internal/cache, and the Chernoff tail bound
// must upper-bound simulated end-to-end times.
//
// Model and scope: single-level time-randomised cache (S sets, W ways,
// uniform-victim Evict-on-Miss), single task in isolation, a fixed access
// trace (straight-line or fully unrolled control flow). Interference can
// be added as an extra per-cycle eviction rate (EFL's bounded co-runner
// evictions).
package spta

import (
	"fmt"
	"math"

	"efl/internal/isa"
)

// CacheModel parameterises the analysed cache.
type CacheModel struct {
	Sets    int
	Ways    int
	HitLat  float64
	MissLat float64
}

// Lines returns the cache's line capacity.
func (c CacheModel) Lines() float64 { return float64(c.Sets * c.Ways) }

// Validate reports parameter problems.
func (c CacheModel) Validate() error {
	if c.Sets < 1 || c.Ways < 1 {
		return fmt.Errorf("spta: non-positive geometry")
	}
	if c.MissLat < c.HitLat || c.HitLat < 0 {
		return fmt.Errorf("spta: latencies must satisfy 0 <= hit <= miss")
	}
	return nil
}

// MissProbabilities performs the forward pass over a line-address trace:
// the i-th output is the probability that access i misses. The first
// access to a line always misses (cold). A later access to line L survives
// each intervening *miss* with probability 1 - 1/(S*W) (uniform-victim
// EoM: every miss evicts a uniformly random line of the cache), so
//
//	P(hit_i) = prod_{j in (last_i, i)} (1 - p_miss_j / (S*W))
//
// where last_i is the previous access to the same line. The p_miss_j are
// taken from the same forward pass (they are already computed when needed),
// the standard SPTA fixed order.
//
// extraEvictionsPerCycle adds an interference term: co-runner evictions at
// that rate kill the line during the gap of gapCycles(i) cycles. Pass nil
// gaps for a contention-free analysis.
//
// The forward pass is the *balanced* estimate: accurate in moderate-
// pressure regimes but not guaranteed conservative when accesses are
// strongly correlated (cyclic thrash). MissProbabilitiesConservative
// provides the sound upper bound.
func MissProbabilities(trace []uint64, m CacheModel, extraEvictionsPerCycle float64, gapCycles func(i int) float64) ([]float64, error) {
	return missProbs(trace, m, extraEvictionsPerCycle, gapCycles, false)
}

// MissProbabilitiesConservative is the DATE'13-style sound variant: every
// intervening access is charged as a certain eviction (pressure 1), which
// upper-bounds each access's miss probability regardless of the true miss
// probabilities of the interferers — at the price of pessimism for
// cache-friendly traces.
func MissProbabilitiesConservative(trace []uint64, m CacheModel, extraEvictionsPerCycle float64, gapCycles func(i int) float64) ([]float64, error) {
	return missProbs(trace, m, extraEvictionsPerCycle, gapCycles, true)
}

func missProbs(trace []uint64, m CacheModel, extraEvictionsPerCycle float64, gapCycles func(i int) float64, conservative bool) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if extraEvictionsPerCycle < 0 || math.IsNaN(extraEvictionsPerCycle) || math.IsInf(extraEvictionsPerCycle, 0) {
		return nil, fmt.Errorf("spta: interference rate %v is not a finite non-negative number", extraEvictionsPerCycle)
	}
	lines := m.Lines()
	probs := make([]float64, len(trace))
	// survival[line] tracks P(line still cached) since its last access;
	// we update lazily via a running product over misses.
	// logSurvivalAll accumulates sum of log(1 - p_j/lines) over ALL
	// accesses so far; per-line hit probability is exp(current - atLast).
	logAll := 0.0
	lastLog := map[uint64]float64{}
	perMiss := math.Log1p(-1 / lines)
	for i, line := range trace {
		atLast, seen := lastLog[line]
		var pMiss float64
		if !seen {
			pMiss = 1 // cold
		} else {
			logHit := logAll - atLast
			if extraEvictionsPerCycle > 0 && gapCycles != nil {
				// A non-positive (or non-finite) gap flips the sign of the
				// interference term: perMiss is negative, so gap*rate*perMiss
				// would *raise* the hit probability above its contention-free
				// value — silent unsoundness, not a modelling choice. Reject
				// rather than clamp so the caller learns its gap model is
				// broken.
				g := gapCycles(i)
				if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
					return nil, fmt.Errorf("spta: access %d: re-reference gap %v cycles is not a positive finite number", i, g)
				}
				logHit += g * extraEvictionsPerCycle * perMiss
			}
			pMiss = 1 - math.Exp(logHit)
			if pMiss < 0 {
				pMiss = 0
			}
		}
		probs[i] = pMiss
		// This access's own miss probability contributes eviction
		// pressure on everyone else (pressure 1 in conservative mode).
		if conservative {
			logAll += perMiss
		} else {
			logAll += pMiss * perMiss
		}
		lastLog[line] = logAll
	}
	return probs, nil
}

// Result carries the analytic timing distribution summary.
type Result struct {
	Accesses   int
	ColdMisses int
	// Mean and Var of the total access latency (cycles).
	Mean float64
	Var  float64
	// MissProbs are the per-access miss probabilities.
	MissProbs []float64

	m CacheModel
}

// Analyze computes the distribution of the summed access latencies of the
// trace: each access is an independent two-point ETP (hit/miss) with the
// forward-pass miss probability. (Independence is the SPTA modelling step;
// the tests check the resulting bounds against Monte-Carlo simulation.)
// Set conservative for the sound DATE'13-style pressure model — use it
// whenever the result feeds a WCET argument.
func Analyze(trace []uint64, m CacheModel, extraEvictionsPerCycle float64, gapCycles func(i int) float64, conservative bool) (*Result, error) {
	probs, err := missProbs(trace, m, extraEvictionsPerCycle, gapCycles, conservative)
	if err != nil {
		return nil, err
	}
	res := &Result{Accesses: len(trace), MissProbs: probs, m: m}
	d := m.MissLat - m.HitLat
	for _, p := range probs {
		if p == 1 {
			res.ColdMisses++
		}
		res.Mean += m.HitLat + p*d
		res.Var += p * (1 - p) * d * d
	}
	return res, nil
}

// PWCET returns an analytic execution-time bound exceeded with probability
// at most prob, via the Chernoff bound over the independent per-access
// ETPs:
//
//	P(X >= t) <= exp(-s t) * prod_i E[exp(s X_i)]
//
// minimised over s > 0 by golden-section search. The bound is sound for
// the modelled distribution (unlike EVT fits, it cannot under-estimate its
// own model).
func (r *Result) PWCET(prob float64) float64 {
	v, err := r.PWCETE(prob)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// PWCETE is PWCET with an error return instead of a panic on an
// out-of-range probability — the variant servers must use, where prob
// arrives from untrusted request JSON.
func (r *Result) PWCETE(prob float64) (float64, error) {
	if prob <= 0 || prob >= 1 || math.IsNaN(prob) {
		return 0, fmt.Errorf("spta: exceedance probability %v outside (0,1)", prob)
	}
	d := r.m.MissLat - r.m.HitLat
	if d == 0 || len(r.MissProbs) == 0 {
		return r.Mean, nil
	}
	base := r.Mean // fixed part: sum of hit latencies is constant
	_ = base
	// logMGF(s) = sum_i [s*hit + log(1-p_i+p_i*exp(s*d))]
	logMGF := func(s float64) float64 {
		total := 0.0
		esd := math.Exp(s * d)
		for _, p := range r.MissProbs {
			total += s*r.m.HitLat + math.Log(1-p+p*esd)
		}
		return total
	}
	// For a target t, bound(s) = logMGF(s) - s*t; find t such that the
	// minimal bound equals log(prob). Outer: binary search on t in
	// [Mean, Max]; inner: ternary search on s.
	maxTotal := float64(len(r.MissProbs)) * r.m.MissLat
	logProb := math.Log(prob)
	minBound := func(t float64) float64 {
		lo, hi := 1e-9, 5.0/d // s range; exp(s*d) stays finite
		for iter := 0; iter < 80; iter++ {
			m1 := lo + (hi-lo)/3
			m2 := hi - (hi-lo)/3
			if logMGF(m1)-m1*t < logMGF(m2)-m2*t {
				hi = m2
			} else {
				lo = m1
			}
		}
		s := (lo + hi) / 2
		return logMGF(s) - s*t
	}
	lo, hi := r.Mean, maxTotal
	if minBound(hi) > logProb {
		// Even the absolute maximum doesn't reach the target probability
		// bound; the trace's worst case is the answer.
		return maxTotal, nil
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if minBound(mid) > logProb {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// TraceOptions selects which accesses enter the trace.
type TraceOptions struct {
	LineBytes   int  // cache line size (default 16)
	Instruction bool // include instruction-fetch lines
	Data        bool // include load/store lines
	MaxSteps    uint64
}

// Trace functionally executes prog and extracts its line-address trace in
// program order — the input SPTA analyses.
func Trace(prog *isa.Program, opt TraceOptions) ([]uint64, error) {
	if opt.LineBytes == 0 {
		opt.LineBytes = 16
	}
	if opt.MaxSteps == 0 {
		opt.MaxSteps = 10_000_000
	}
	if !opt.Instruction && !opt.Data {
		return nil, fmt.Errorf("spta: trace selects no access kinds")
	}
	m, err := isa.NewMachine(prog)
	if err != nil {
		return nil, err
	}
	lb := uint64(opt.LineBytes)
	var out []uint64
	for !m.Halted() {
		si, err := m.Step()
		if err != nil {
			return nil, err
		}
		if si.Halted {
			break
		}
		if opt.Instruction {
			out = append(out, si.FetchAddr/lb)
		}
		if opt.Data && si.Op.IsMem() {
			// Tag data lines so they never alias instruction lines.
			out = append(out, si.MemAddr/lb|1<<62)
		}
		if m.Steps > opt.MaxSteps {
			return nil, fmt.Errorf("spta: trace budget exceeded")
		}
	}
	return out, nil
}
