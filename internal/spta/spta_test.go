package spta

import (
	"math"
	"testing"

	"efl/internal/cache"
	"efl/internal/isa"
	"efl/internal/rng"
)

func seqTrace(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

func TestMissProbabilitiesColdAndReuse(t *testing.T) {
	m := CacheModel{Sets: 64, Ways: 8, HitLat: 1, MissLat: 100}
	// Touch A, then B..E (distinct), then A again.
	trace := []uint64{10, 1, 2, 3, 4, 10}
	probs, err := MissProbabilities(trace, m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if probs[i] != 1 {
			t.Fatalf("access %d should be cold: %v", i, probs[i])
		}
	}
	// Second A survived 4 certain misses: P(hit) = (1-1/512)^4.
	wantMiss := 1 - math.Pow(1-1.0/512, 4)
	if math.Abs(probs[5]-wantMiss) > 1e-12 {
		t.Fatalf("reuse miss prob = %v, want %v", probs[5], wantMiss)
	}
}

func TestMissProbabilitiesChained(t *testing.T) {
	// Probabilistic intervening accesses contribute their own miss
	// probability as eviction pressure: <A, B, A, B> — the second B's
	// pressure includes the second A's (partial) miss probability.
	m := CacheModel{Sets: 1, Ways: 8, HitLat: 1, MissLat: 100}
	trace := []uint64{1, 2, 1, 2}
	probs, err := MissProbabilities(trace, m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pA2 := 1 - math.Pow(1-1.0/8, 1) // A after one certain miss (B cold)
	if math.Abs(probs[2]-pA2) > 1e-12 {
		t.Fatalf("probs[2] = %v, want %v", probs[2], pA2)
	}
	pB2 := 1 - math.Exp(pA2*math.Log1p(-1.0/8))
	if math.Abs(probs[3]-pB2) > 1e-12 {
		t.Fatalf("probs[3] = %v, want %v", probs[3], pB2)
	}
}

// TestMatchesMonteCarlo cross-validates the analytic forward pass against
// the real cache implementation: average simulated miss counts over many
// RIIs must match the analytic expectation.
func TestMatchesMonteCarlo(t *testing.T) {
	m := CacheModel{Sets: 16, Ways: 4, HitLat: 1, MissLat: 100}
	// A cyclic working set slightly exceeding capacity, repeated passes —
	// a thrash-prone pattern where probabilities are non-trivial.
	var trace []uint64
	const lines, passes = 80, 6 // 80 > 64 capacity
	for p := 0; p < passes; p++ {
		for l := 0; l < lines; l++ {
			trace = append(trace, uint64(l))
		}
	}
	probs, err := MissProbabilities(trace, m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var analytic float64
	for _, p := range probs {
		analytic += p
	}

	cfg := cache.Config{Name: "mc", SizeBytes: 16 * 4 * 16, Ways: 4, LineBytes: 16,
		Policy: cache.TimeRandomised}
	src := rng.New(5)
	const trials = 400
	var simulated float64
	for trial := 0; trial < trials; trial++ {
		c := cache.New(cfg, src.Fork())
		full := cache.FullMask(4)
		for _, line := range trace {
			if r := c.Access(line*16, false, full, -1); !r.Hit {
				simulated++
			}
		}
	}
	simulated /= trials
	// The balanced forward pass is approximate under strong cyclic
	// correlation; it must stay within ~12% of Monte-Carlo here.
	if math.Abs(simulated-analytic)/analytic > 0.12 {
		t.Fatalf("analytic misses %v vs simulated %v", analytic, simulated)
	}
	// The conservative model must upper-bound the simulated expectation.
	cons, err := MissProbabilitiesConservative(trace, m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var consTotal float64
	for i, p := range cons {
		consTotal += p
		if p+1e-12 < probs[i] {
			t.Fatalf("access %d: conservative prob %v below balanced %v", i, p, probs[i])
		}
	}
	if consTotal < simulated {
		t.Fatalf("conservative expectation %v below simulated %v", consTotal, simulated)
	}
}

func TestAnalyzeMoments(t *testing.T) {
	m := CacheModel{Sets: 64, Ways: 8, HitLat: 1, MissLat: 101}
	trace := seqTrace(100) // all cold
	res, err := Analyze(trace, m, 0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdMisses != 100 {
		t.Fatalf("cold misses = %d", res.ColdMisses)
	}
	if res.Mean != 100*101 {
		t.Fatalf("mean = %v", res.Mean)
	}
	if res.Var != 0 {
		t.Fatalf("variance of certain misses = %v", res.Var)
	}
}

func TestPWCETBoundsMonteCarlo(t *testing.T) {
	// The Chernoff pWCET at 1e-3 must exceed the 99.9th percentile of
	// Monte-Carlo totals (soundness of the bound w.r.t. its model), and
	// be finite/sane.
	m := CacheModel{Sets: 16, Ways: 4, HitLat: 1, MissLat: 100}
	var trace []uint64
	for p := 0; p < 4; p++ {
		for l := 0; l < 80; l++ {
			trace = append(trace, uint64(l))
		}
	}
	res, err := Analyze(trace, m, 0, nil, true) // conservative pressure model
	if err != nil {
		t.Fatal(err)
	}
	bound := res.PWCET(1e-3)
	if bound < res.Mean {
		t.Fatalf("bound %v below mean %v", bound, res.Mean)
	}
	maxTotal := float64(len(trace)) * m.MissLat
	if bound > maxTotal {
		t.Fatalf("bound %v beyond the absolute maximum %v", bound, maxTotal)
	}

	cfg := cache.Config{Name: "mc", SizeBytes: 16 * 4 * 16, Ways: 4, LineBytes: 16,
		Policy: cache.TimeRandomised}
	src := rng.New(7)
	const trials = 2000
	exceed := 0
	for trial := 0; trial < trials; trial++ {
		c := cache.New(cfg, src.Fork())
		full := cache.FullMask(4)
		total := 0.0
		for _, line := range trace {
			if r := c.Access(line*16, false, full, -1); r.Hit {
				total += m.HitLat
			} else {
				total += m.MissLat
			}
		}
		if total > bound {
			exceed++
		}
	}
	// At 1e-3 nominal, 2000 trials should essentially never exceed;
	// allow a couple for model error (access correlations).
	if exceed > 4 {
		t.Fatalf("Chernoff bound exceeded %d/%d times", exceed, trials)
	}
	// Monotonicity in probability.
	if res.PWCET(1e-9) < bound {
		t.Fatal("pWCET not monotone in probability")
	}
}

func TestInterferenceRaisesMissProbs(t *testing.T) {
	m := CacheModel{Sets: 64, Ways: 8, HitLat: 1, MissLat: 100}
	trace := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	gap := func(i int) float64 { return 1000 } // 1000 cycles between touches
	clean, _ := MissProbabilities(trace, m, 0, nil)
	// EFL-style bounded interference: 3 co-runners at one eviction per
	// 250 cycles.
	noisy, err := MissProbabilities(trace, m, 3.0/250, gap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < len(trace); i++ {
		if noisy[i] <= clean[i] {
			t.Fatalf("access %d: interference did not raise miss prob (%v vs %v)",
				i, noisy[i], clean[i])
		}
	}
}

func TestTraceExtraction(t *testing.T) {
	b := isa.NewBuilder("t")
	b.DataWords(1, 2)
	b.Movi(1, int64(isa.DataBase))
	b.Ld(2, 1, 0)
	b.St(2, 1, 8)
	b.Halt()
	prog := b.MustProgram()

	both, err := Trace(prog, TraceOptions{Instruction: true, Data: true})
	if err != nil {
		t.Fatal(err)
	}
	// 4 fetches (movi, ld, st, halt is not counted... HALT breaks before
	// recording) + 2 data accesses.
	if len(both) != 3+2 {
		t.Fatalf("trace = %v", both)
	}
	dataOnly, err := Trace(prog, TraceOptions{Data: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(dataOnly) != 2 {
		t.Fatalf("data trace = %v", dataOnly)
	}
	// Data lines are tagged: both data accesses hit the same 16B line.
	if dataOnly[0] != dataOnly[1] || dataOnly[0]&(1<<62) == 0 {
		t.Fatalf("data tagging broken: %v", dataOnly)
	}
	if _, err := Trace(prog, TraceOptions{}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestValidation(t *testing.T) {
	bad := CacheModel{Sets: 0, Ways: 1, HitLat: 1, MissLat: 2}
	if _, err := MissProbabilities(seqTrace(3), bad, 0, nil); err == nil {
		t.Fatal("bad geometry accepted")
	}
	m := CacheModel{Sets: 4, Ways: 2, HitLat: 5, MissLat: 1}
	if _, err := MissProbabilities(seqTrace(3), m, 0, nil); err == nil {
		t.Fatal("miss < hit accepted")
	}
	ok := CacheModel{Sets: 4, Ways: 2, HitLat: 1, MissLat: 5}
	if _, err := MissProbabilities(seqTrace(3), ok, -1, nil); err == nil {
		t.Fatal("negative interference accepted")
	}
}

func BenchmarkMissProbabilities(b *testing.B) {
	m := CacheModel{Sets: 512, Ways: 8, HitLat: 1, MissLat: 100}
	var trace []uint64
	for p := 0; p < 10; p++ {
		for l := 0; l < 1000; l++ {
			trace = append(trace, uint64(l))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = MissProbabilities(trace, m, 0, nil)
	}
}

// TestNonPositiveGapRejected is the regression test for the sign-flip
// unsoundness: a zero/negative (or non-finite) re-reference gap turns the
// interference term positive — gap*rate*log1p(-1/lines) with perMiss < 0 —
// which *raises* hit probabilities above their contention-free values
// before the clamp hides it. Pre-fix, Analyze accepted such gaps and
// returned miss probabilities BELOW the contention-free ones; now every
// non-positive gap is an error.
func TestNonPositiveGapRejected(t *testing.T) {
	m := CacheModel{Sets: 64, Ways: 8, HitLat: 1, MissLat: 100}
	trace := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	for _, gap := range []float64{0, -1000, math.NaN(), math.Inf(1), math.Inf(-1)} {
		g := func(int) float64 { return gap }
		if _, err := MissProbabilities(trace, m, 3.0/250, g); err == nil {
			t.Errorf("gap %v accepted by MissProbabilities", gap)
		}
		if _, err := Analyze(trace, m, 3.0/250, g, false); err == nil {
			t.Errorf("gap %v accepted by Analyze", gap)
		}
	}
	// The same rates with a positive gap still analyse fine.
	if _, err := Analyze(trace, m, 3.0/250, func(int) float64 { return 1000 }, false); err != nil {
		t.Fatalf("positive gap rejected: %v", err)
	}
	// Non-finite interference rates are rejected too.
	for _, rate := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := MissProbabilities(trace, m, rate, func(int) float64 { return 10 }); err == nil {
			t.Errorf("interference rate %v accepted", rate)
		}
	}
}

// TestNegativeGapWouldLowerMissProbs documents WHY non-positive gaps must
// be rejected: forcing the pre-fix arithmetic (via the exact formula the
// forward pass uses) shows a negative gap yields a hit probability above
// the contention-free one.
func TestNegativeGapWouldLowerMissProbs(t *testing.T) {
	lines := 512.0
	perMiss := math.Log1p(-1 / lines)
	logHitClean := 2 * perMiss // two intervening certain misses
	// Contention-free: P(hit) = exp(logHitClean).
	clean := math.Exp(logHitClean)
	// Pre-fix interference arithmetic with a negative gap:
	bad := math.Exp(logHitClean + (-1000)*0.01*perMiss)
	if bad <= clean {
		t.Fatalf("expected the negative-gap term to inflate the hit probability (%v vs %v)", bad, clean)
	}
}

// TestPWCETEErrorsOutOfRange pins the error-returning pWCET entry point:
// out-of-range probabilities are errors, never panics — a server must not
// be crashable from request JSON.
func TestPWCETEErrorsOutOfRange(t *testing.T) {
	m := CacheModel{Sets: 64, Ways: 8, HitLat: 1, MissLat: 100}
	res, err := Analyze(seqTrace(50), m, 0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 1, -0.5, 2, math.NaN()} {
		if _, err := res.PWCETE(p); err == nil {
			t.Errorf("PWCETE(%v) accepted", p)
		}
	}
	v, err := res.PWCETE(1e-12)
	if err != nil || v <= 0 {
		t.Fatalf("PWCETE(1e-12) = %v, %v", v, err)
	}
	if got := res.PWCET(1e-12); got != v {
		t.Fatalf("PWCET and PWCETE disagree: %v vs %v", got, v)
	}
}
