package experiments

import (
	"context"
	"fmt"
	"strings"

	"efl/internal/bench"
	"efl/internal/cache"
	"efl/internal/isa"
	"efl/internal/metrics"
	"efl/internal/runner"
	"efl/internal/sim"
	"efl/internal/trace"
)

// The coherence campaign (-exp coherence): the shared-data workloads from
// internal/bench run on the three-level platform (private L1 pairs, a
// shared L2, the shared EFL-protected LLC) with the MSI layer enabled, and
// every deployment run is audited — A1 (cycle-sum, which now includes the
// coherence category), A2 (UBD), A3 (the EFL eviction-rate bound, here
// stressed by invalidation-induced refetches) and A5 (protocol soundness,
// re-derived from the run's coherence trace). The campaign's second job is
// diagnosis: the per-line sharing report separates true sharing (SC) from
// false sharing (FS), the layout artifact a developer can actually fix.

// CoherenceLine is one shared line's multi-core access profile, taken from
// the campaign's final run of a workload.
type CoherenceLine struct {
	Addr     uint64 `json:"addr"`
	Cores    int    `json:"cores"`
	Accesses uint64 `json:"accesses"`
	Writes   uint64 `json:"writes"`
	// FalseShared: at least two cores touched the line but their word
	// footprints are pairwise disjoint — every invalidation on this line is
	// a layout artifact.
	FalseShared bool `json:"false_shared"`
}

// CoherenceRow is one shared-data workload's campaign outcome.
type CoherenceRow struct {
	Code string `json:"code"`
	Name string `json:"name"`
	Runs int    `json:"runs"`
	// MeanCycles is the mean deployment makespan (slowest core).
	MeanCycles float64 `json:"mean_cycles"`
	// Protocol traffic totals across all runs.
	Upgrades      uint64 `json:"upgrades"`
	ExclFetches   uint64 `json:"excl_fetches"`
	Invalidations uint64 `json:"invalidations"`
	Downgrades    uint64 `json:"downgrades"`
	// CoherenceCycles is the total cycles attributed to the coherence
	// category across all cores and runs; CoherenceShare is its fraction of
	// the summed active-core cycles.
	CoherenceCycles int64   `json:"coherence_cycles"`
	CoherenceShare  float64 `json:"coherence_share"`
	// Lines is the final run's per-line sharing report (lines touched by
	// two or more cores); FalseSharedLines counts the false-shared ones.
	Lines            []CoherenceLine `json:"lines,omitempty"`
	FalseSharedLines int             `json:"false_shared_lines"`
	// Invariants is the workload's private audit report.
	Invariants map[string]sim.InvariantReport `json:"invariants,omitempty"`
	// A3Holds: the EFL eviction-rate bound held on every audited run under
	// this workload's invalidation load. A5Holds: the MSI protocol kept
	// SWMR and served no stale data on any run.
	A3Holds bool `json:"a3_holds"`
	A5Holds bool `json:"a5_holds"`
}

// CoherenceResult is the -exp coherence artifact payload.
type CoherenceResult struct {
	Opt    Options        `json:"opt"`
	MID    int64          `json:"mid"`
	Levels []string       `json:"levels"`
	Rows   []CoherenceRow `json:"rows"`
	// AllSound: every audited invariant held on every run of every workload.
	AllSound bool `json:"all_sound"`
}

// coherenceConfig is the campaign platform: private 4KB L1 pairs, a shared
// 16KB 4-way L2 at 6 cycles, the 64KB 8-way EFL-protected LLC at 10
// cycles, and the MSI layer over a sharedBytes-byte window.
func coherenceConfig(mid int64, sharedBytes int) sim.Config {
	cfg := sim.DefaultConfig()
	if mid > 0 {
		cfg = cfg.WithEFL(mid)
	}
	cfg.Hierarchy = []cache.LevelSpec{
		{Name: "L1", SizeBytes: 4 * 1024, Ways: 4, LatencyCycles: 1, Policy: cache.TimeRandomised},
		{Name: "L2", SizeBytes: 16 * 1024, Ways: 4, Shared: true, LatencyCycles: 6, Policy: cache.TimeRandomised},
		{Name: "LLC", SizeBytes: 64 * 1024, Ways: 8, Shared: true, LatencyCycles: 10, Policy: cache.TimeRandomised},
	}
	cfg.SharedDataBytes = sharedBytes
	return cfg
}

// coherenceRuns bounds the deployment runs per workload: protocol traffic
// and the audit verdicts stabilise quickly, so the campaign does not need
// an MBPTA-sized sample.
func coherenceRuns(opt Options) int {
	runs := opt.Runs
	if runs > 25 {
		runs = 25
	}
	if runs < 1 {
		runs = 1
	}
	return runs
}

// Coherence runs the shared-data coherence campaign.
func Coherence(opt Options, mid int64) (*CoherenceResult, error) {
	opt = opt.withDefaults()
	emit := opt.progressSink()
	specs := bench.Shared()

	rows, err := runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, specs,
		func(ctx context.Context, pool *sim.Pool, _ int, spec bench.SharedSpec) (CoherenceRow, error) {
			row, err := runCoherenceWorkload(ctx, opt, pool, spec, mid)
			if err == nil {
				emit(fmt.Sprintf("coherence %-2s runs=%d invals=%d false-shared=%d a3=%v a5=%v",
					spec.Code, row.Runs, row.Invalidations, row.FalseSharedLines, row.A3Holds, row.A5Holds))
			}
			return row, err
		})
	if err != nil {
		return nil, err
	}

	cfg := coherenceConfig(mid, 0)
	res := &CoherenceResult{Opt: opt, MID: mid, AllSound: true}
	for _, lv := range cfg.Hierarchy {
		res.Levels = append(res.Levels, lv.Name)
	}
	for _, row := range rows {
		for _, iv := range row.Invariants {
			if iv.Violations > 0 {
				res.AllSound = false
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runCoherenceWorkload runs and audits one shared-data workload.
func runCoherenceWorkload(ctx context.Context, opt Options, pool *sim.Pool, spec bench.SharedSpec, mid int64) (CoherenceRow, error) {
	row := CoherenceRow{Code: spec.Code, Name: spec.Name}
	cfg := coherenceConfig(mid, spec.SharedBytes)
	progs := make([]*isa.Program, cfg.Cores)
	for i := range progs {
		progs[i] = spec.Build(i)
	}
	seed := campaignSeed(opt.Seed, "coherence/"+spec.Code)
	runs := coherenceRuns(opt)

	aud := sim.NewAuditor()
	buf := trace.NewBuffer(1<<20).Keep(
		trace.EvCohFetch, trace.EvCohUpgrade, trace.EvCohInval, trace.EvCohHit)
	var res sim.Result
	var coreCycles int64
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		m, err := pool.Get(cfg, progs, seed+uint64(i))
		if err != nil {
			return row, err
		}
		buf.Reset()
		m.SetTracer(buf)
		err = m.RunInto(&res)
		m.SetTracer(nil)
		if err != nil {
			return row, fmt.Errorf("%s run %d: %w", spec.Code, i, err)
		}
		// Both auditors see every run: the private one carries the row's
		// verdicts, the campaign-global one (-audit) gates the command.
		if err := pool.AuditRun(cfg, &res); err != nil {
			return row, err
		}
		_ = aud.CheckRun(cfg, &res)
		_ = aud.CheckCoherence(cfg, buf.Events())
		_ = opt.Audit.CheckCoherence(cfg, buf.Events())

		cs := m.CoherenceStats()
		row.Upgrades += cs.Upgrades
		row.ExclFetches += cs.ExclFetches
		row.Invalidations += cs.Invalidations
		row.Downgrades += cs.Downgrades
		row.MeanCycles += float64(res.TotalCycles)
		for _, cr := range res.PerCore {
			if !cr.Active {
				continue
			}
			coreCycles += cr.Cycles
			row.CoherenceCycles += cr.Attribution[metrics.Coherence]
		}
		if i == runs-1 {
			for _, ls := range m.SharingReport() {
				if ls.Cores < 2 {
					continue
				}
				row.Lines = append(row.Lines, CoherenceLine{
					Addr: ls.Addr, Cores: ls.Cores,
					Accesses: ls.Accesses, Writes: ls.Writes,
					FalseShared: ls.FalseShared,
				})
				if ls.FalseShared {
					row.FalseSharedLines++
				}
			}
		}
		row.Runs++
	}
	row.MeanCycles /= float64(row.Runs)
	if coreCycles > 0 {
		row.CoherenceShare = float64(row.CoherenceCycles) / float64(coreCycles)
	}

	rep := aud.Report()
	row.Invariants = rep.Invariants
	a3 := rep.Invariants[sim.AuditEvictionRate]
	row.A3Holds = a3.Checks > 0 && a3.Violations == 0
	a5 := rep.Invariants[sim.AuditCoherence]
	row.A5Holds = a5.Checks > 0 && a5.Violations == 0
	return row, nil
}

// Render prints the coherence-campaign report.
func (r *CoherenceResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Coherence campaign: shared-data workloads on %s (MSI, EFL MID=%d), %d deployment runs each\n",
		strings.Join(r.Levels, "/"), r.MID, coherenceRuns(r.Opt))
	fmt.Fprintf(&sb, "%-4s %-16s %4s %12s %9s %9s %7s %7s %8s %6s %4s %4s\n",
		"code", "workload", "runs", "mean cycles", "upgrades", "invals", "rfo", "dwngrd", "coh-cyc%", "fslns", "A3", "A5")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-4s %-16s %4d %12.0f %9d %9d %7d %7d %7.2f%% %6d %4s %4s\n",
			row.Code, row.Name, row.Runs, row.MeanCycles,
			row.Upgrades, row.Invalidations, row.ExclFetches, row.Downgrades,
			100*row.CoherenceShare, row.FalseSharedLines,
			mark(row.A3Holds), mark(row.A5Holds))
	}
	for _, row := range r.Rows {
		if row.FalseSharedLines == 0 {
			continue
		}
		fmt.Fprintf(&sb, "\n%s: %d of %d multi-core lines are falsely shared (disjoint word footprints):\n",
			row.Code, row.FalseSharedLines, len(row.Lines))
		for _, ln := range row.Lines {
			if !ln.FalseShared {
				continue
			}
			fmt.Fprintf(&sb, "  line %#x: %d cores, %d accesses (%d writes)\n",
				ln.Addr, ln.Cores, ln.Accesses, ln.Writes)
		}
	}
	sb.WriteString("\n")
	if a3All(r.Rows) {
		fmt.Fprintf(&sb, "A3: the EFL eviction-rate bound (MID=%d) held on every run under measured invalidation traffic\n", r.MID)
	} else {
		fmt.Fprintf(&sb, "A3 VIOLATED: invalidation load pushed a core past the MID=%d eviction-rate bound\n", r.MID)
	}
	if r.AllSound {
		sb.WriteString("all audited invariants (A1, A2, A3, A5) held on every run\n")
	} else {
		sb.WriteString("AUDIT VIOLATION: at least one invariant failed; see the per-workload reports in the artifact\n")
	}
	return sb.String()
}

// a3All reports whether A3 held for every workload row.
func a3All(rows []CoherenceRow) bool {
	for _, row := range rows {
		if !row.A3Holds {
			return false
		}
	}
	return true
}

// mark renders a verdict column.
func mark(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
