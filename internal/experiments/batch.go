package experiments

// Batched convergence-stopped MBPTA collection (Options.Converge): the
// campaign dispatches lockstep batches through the worker pool's batch
// engine and folds each execution time into an mbpta.Stream, stopping as
// soon as the streaming pWCET estimate stabilises instead of always
// simulating Options.Runs runs. Per-run seeds are derived from the run
// index (runner.Seed), so the collected sample — and the stopping point —
// is invariant under the batch width: a wider batch only discards more
// already-simulated runs past the stop.

import (
	"context"
	"fmt"

	"efl/internal/isa"
	"efl/internal/mbpta"
	"efl/internal/runner"
	"efl/internal/sim"
)

// runSeed derives the seed of run i within a campaign. The identity is
// the run index alone — stable across batch widths and worker counts.
func runSeed(campaign uint64, i int) uint64 {
	return runner.Seed(campaign, fmt.Sprintf("run/%d", i))
}

// streamOptions maps campaign options onto the incremental estimator:
// the campaign's run budget is the ceiling, its probability the tracked
// quantile. MinRuns shrinks with tiny budgets so scaled-down test
// campaigns remain satisfiable.
func (o Options) streamOptions() mbpta.StreamOptions {
	minRuns := 100
	if o.Runs < minRuns {
		minRuns = o.Runs
	}
	return mbpta.StreamOptions{
		Options: mbpta.Options{SkipIIDTests: true},
		Prob:    o.Prob,
		MinRuns: minRuns,
		MaxRuns: o.Runs,
	}
}

// pooledPWCETConverged is pooledPWCET's convergence-stopped counterpart:
// collect through the batched stream until the estimate stabilises (or the
// run budget is exhausted), then run the same authoritative analysis over
// the collected sample. Every consumed run is audited like the fixed-count
// path's.
func pooledPWCETConverged(ctx context.Context, pool *sim.Pool, opt Options, cfg sim.Config, prog *isa.Program, seed uint64) (PWCETResult, []float64, error) {
	stream, err := mbpta.NewStream(opt.streamOptions())
	if err != nil {
		return PWCETResult{}, nil, err
	}
	_, err = pool.StreamAnalysisTimes(ctx, cfg, prog, opt.BatchSize, opt.Runs,
		func(i int) uint64 { return runSeed(seed, i) }, stream.Add)
	if err != nil {
		return PWCETResult{}, nil, err
	}
	times := stream.Times()
	res, err := pwcetFromTimes(times, prog.Name, opt.Prob)
	return res, times, err
}
