// Package experiments regenerates the paper's evaluation (§4): the MBPTA
// compliance table, Figure 3 (pWCET of EFL vs cache partitioning per
// benchmark) and Figure 4 (guaranteed and average performance improvement
// of EFL over CP across 1,024 random workloads), plus the ablations listed
// in DESIGN.md.
//
// Every experiment is deterministic given Options.Seed: per-campaign seeds
// are derived by hashing the master seed with the campaign's identity, so
// results do not depend on goroutine scheduling even though campaigns run
// in parallel.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"efl/internal/bench"
	"efl/internal/isa"
	"efl/internal/mbpta"
	"efl/internal/sim"
)

// Options scales the campaigns. The zero value is filled with defaults
// matching the paper where feasible.
type Options struct {
	// Seed is the master seed (default 1).
	Seed uint64
	// Runs is the number of measurement runs per (benchmark, config)
	// MBPTA campaign (default 300; the paper collected at most 1,000).
	Runs int
	// Workloads is the number of random 4-benchmark workloads for
	// Figure 4 (default 1024, the paper's count).
	Workloads int
	// DeployRuns is how many deployment runs are averaged per workload
	// configuration when measuring waIPC (default 2).
	DeployRuns int
	// Prob is the pWCET exceedance cutoff (default 1e-15 per run, the
	// paper's headline probability).
	Prob float64
	// MIDs are the EFL configurations (default {250, 500, 1000}).
	MIDs []int64
	// CPWays are the per-task way counts for Figure 3 (default {1,2,4}).
	CPWays []int
	// Parallelism bounds concurrent campaigns (default GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives one line per completed campaign.
	Progress func(string)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runs == 0 {
		o.Runs = 300
	}
	if o.Workloads == 0 {
		o.Workloads = 1024
	}
	if o.DeployRuns == 0 {
		o.DeployRuns = 2
	}
	if o.Prob == 0 {
		o.Prob = 1e-15
	}
	if len(o.MIDs) == 0 {
		o.MIDs = []int64{250, 500, 1000}
	}
	if len(o.CPWays) == 0 {
		o.CPWays = []int{1, 2, 4}
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// campaignSeed derives a deterministic seed for a named campaign.
func campaignSeed(master uint64, name string) uint64 {
	h := master ^ 0x9e3779b97f4a7c15
	for _, b := range []byte(name) {
		h ^= uint64(b)
		h *= 0x100000001b3
		h ^= h >> 29
	}
	if h == 0 {
		h = 1
	}
	return h
}

// PWCETResult is one MBPTA campaign outcome.
type PWCETResult struct {
	Bench  string
	Config string
	Runs   int
	PWCET  float64 // at Options.Prob
	Mean   float64 // mean observed execution time
	Max    float64 // high-water mark
	IID    mbpta.IIDReport
}

// analysisPWCET runs the full MBPTA campaign for prog under cfg: collect
// Runs analysis-mode execution times, check i.i.d., fit, extract the
// pWCET at prob.
func analysisPWCET(cfg sim.Config, prog *isa.Program, runs int, seed uint64, prob float64) (PWCETResult, error) {
	times, err := sim.CollectAnalysisTimes(cfg, prog, runs, seed)
	if err != nil {
		return PWCETResult{}, err
	}
	res, err := mbpta.Analyze(times, mbpta.Options{SkipIIDTests: true})
	if err != nil {
		return PWCETResult{}, fmt.Errorf("experiments: MBPTA on %s: %w", prog.Name, err)
	}
	iid, err := mbpta.TestIID(times)
	if err != nil {
		return PWCETResult{}, err
	}
	var mean float64
	for _, t := range times {
		mean += t
	}
	mean /= float64(len(times))
	return PWCETResult{
		Runs:  len(times),
		PWCET: res.PWCET(prob),
		Mean:  mean,
		Max:   res.MaxSeen,
		IID:   iid,
	}, nil
}

// eflConfig returns the analysis configuration for EFL with the given MID.
func eflConfig(mid int64) sim.Config {
	return sim.DefaultConfig().WithEFL(mid).WithAnalysis(0)
}

// cpConfig returns the analysis configuration for CP with the analysed
// task given `ways` ways (co-runner slots are idle and unallocated).
func cpConfig(ways int) sim.Config {
	cfg := sim.DefaultConfig()
	parts := make([]int, cfg.Cores)
	parts[0] = ways
	return cfg.WithPartition(parts).WithAnalysis(0)
}

// campaign is a unit of parallel work.
type campaign struct {
	bench  bench.Spec
	config string
	cfg    sim.Config
}

// runCampaigns executes campaigns in parallel and returns results keyed by
// "BENCH/CONFIG".
func runCampaigns(opt Options, cs []campaign) (map[string]PWCETResult, error) {
	type out struct {
		key string
		res PWCETResult
		err error
	}
	results := make(map[string]PWCETResult, len(cs))
	work := make(chan campaign)
	outs := make(chan out)
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				key := c.bench.Code + "/" + c.config
				seed := campaignSeed(opt.Seed, key)
				res, err := analysisPWCET(c.cfg, c.bench.Build(), opt.Runs, seed, opt.Prob)
				res.Bench = c.bench.Code
				res.Config = c.config
				outs <- out{key: key, res: res, err: err}
			}
		}()
	}
	go func() {
		for _, c := range cs {
			work <- c
		}
		close(work)
		wg.Wait()
		close(outs)
	}()
	var firstErr error
	for o := range outs {
		if o.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", o.key, o.err)
			continue
		}
		results[o.key] = o.res
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("campaign %-12s pWCET=%.0f max=%.0f runs=%d",
				o.key, o.res.PWCET, o.res.Max, o.res.Runs))
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
