// Package experiments regenerates the paper's evaluation (§4): the MBPTA
// compliance table, Figure 3 (pWCET of EFL vs cache partitioning per
// benchmark) and Figure 4 (guaranteed and average performance improvement
// of EFL over CP across 1,024 random workloads), plus the ablations listed
// in DESIGN.md.
//
// Every experiment is deterministic given Options.Seed: per-campaign seeds
// are derived by hashing the master seed with the campaign's identity
// (runner.Seed), so results do not depend on goroutine scheduling or the
// worker count even though campaigns run in parallel. All drivers fan out
// through internal/runner; each worker holds a sim.Pool so platforms are
// rewound (sim.Multicore.Reuse) instead of reconstructed per campaign.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"efl/internal/bench"
	"efl/internal/isa"
	"efl/internal/mbpta"
	"efl/internal/runner"
	"efl/internal/sim"
)

// Options scales the campaigns. The zero value is filled with defaults
// matching the paper where feasible. Fields tagged `json:"-"` are
// execution knobs, not campaign parameters: artifacts embedding Options
// are invariant under them.
type Options struct {
	// Seed is the master seed (default 1).
	Seed uint64
	// Runs is the number of measurement runs per (benchmark, config)
	// MBPTA campaign (default 300; the paper collected at most 1,000).
	Runs int
	// Workloads is the number of random 4-benchmark workloads for
	// Figure 4 (default 1024, the paper's count).
	Workloads int
	// DeployRuns is how many deployment runs are averaged per workload
	// configuration when measuring waIPC (default 2).
	DeployRuns int
	// Prob is the pWCET exceedance cutoff (default 1e-15 per run, the
	// paper's headline probability).
	Prob float64
	// MIDs are the EFL configurations (default {250, 500, 1000}).
	MIDs []int64
	// CPWays are the per-task way counts for Figure 3 (default {1,2,4}).
	CPWays []int
	// Parallelism bounds concurrent campaigns (default GOMAXPROCS).
	// Results are worker-count invariant.
	Parallelism int `json:"-"`
	// Progress, when non-nil, receives one line per completed campaign.
	// Calls are serialised.
	Progress func(string) `json:"-"`
	// Ctx, when non-nil, cancels in-flight campaigns: drivers return
	// context.Canceled and completed checkpoint items survive.
	Ctx context.Context `json:"-"`
	// Checkpoint, when non-empty, is the path Figure4 persists completed
	// workloads to after every item, and resumes from on the next run.
	Checkpoint string `json:"-"`
	// Audit, when non-nil, receives a soundness check of every simulation
	// run and every MBPTA sample the campaigns produce (the -audit flag).
	// It never alters results: workers share it through their pools and
	// record into it under its own lock.
	Audit *sim.Auditor `json:"-"`
	// EVTThreshold is the maximum tolerated relative disagreement between
	// the block-maxima and POT pWCET estimates before the auditor flags a
	// campaign (default 0.25; invariant A4). The comparison runs at
	// evtCheckProb, not at Prob: see auditEVT.
	EVTThreshold float64 `json:"-"`
	// OnProgress, when non-nil, receives the runner's structured progress
	// snapshots (live -metrics-addr endpoint). Calls are serialised.
	OnProgress func(runner.Progress) `json:"-"`
	// Retries is how many times the resilient drivers re-run a failed or
	// panicked job on fresh worker state (the -retries flag). Watchdog
	// kills are never retried. Execution knob: it changes Outcome.Attempts
	// inside results but never which jobs succeed for deterministic jobs.
	Retries int `json:"-"`
	// Converge switches the MBPTA campaigns (compliance table, Figures
	// 3 and 4, the MID sweep — everything routed through runCampaigns)
	// from fixed-count collection to the batched convergence-stopped
	// protocol: runs are dispatched in lockstep batches with per-run
	// derived seeds, and collection stops as soon as the streaming pWCET
	// estimate at Prob stabilises, with Runs as the ceiling. A campaign
	// parameter: it changes the collected sample (and usually its size).
	Converge bool
	// BatchSize is the lockstep batch width converged campaigns dispatch
	// (default 8). Execution knob: per-run seeds are derived from the run
	// index, so results are invariant under it.
	BatchSize int `json:"-"`
	// FaultRuns is the number of fault-injected runs per detection-matrix
	// scenario (default 5). A campaign parameter: it shapes the artifact.
	FaultRuns int
	// FaultCalib is the number of fault-free calibration runs that size
	// each scenario's watchdog budget (default 2).
	FaultCalib int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runs == 0 {
		o.Runs = 300
	}
	if o.Workloads == 0 {
		o.Workloads = 1024
	}
	if o.DeployRuns == 0 {
		o.DeployRuns = 2
	}
	if o.Prob == 0 {
		o.Prob = 1e-15
	}
	if len(o.MIDs) == 0 {
		o.MIDs = []int64{250, 500, 1000}
	}
	if len(o.CPWays) == 0 {
		o.CPWays = []int{1, 2, 4}
	}
	if o.EVTThreshold == 0 {
		o.EVTThreshold = 0.25
	}
	if o.BatchSize == 0 {
		o.BatchSize = 8
	}
	if o.FaultRuns == 0 {
		o.FaultRuns = 5
	}
	if o.FaultCalib == 0 {
		o.FaultCalib = 2
	}
	return o
}

// context returns the campaign context (background when unset).
func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// runnerOptions maps the execution knobs onto the work engine.
func (o Options) runnerOptions() runner.Options {
	return runner.Options{Parallelism: o.Parallelism, Progress: o.OnProgress}
}

// newPool constructs a worker-local platform pool carrying the campaign
// auditor; drivers pass it to runner.MapWithState as the state constructor
// so every pooled run is audited when Audit is set.
func (o Options) newPool() *sim.Pool {
	p := sim.NewPool()
	p.SetAuditor(o.Audit)
	return p
}

// evtCheckProb is the exceedance probability at which invariant A4
// compares the block-maxima and POT estimates. It is deliberately milder
// than the reporting probability: at 1e-15 both estimators extrapolate
// twelve orders of magnitude past a few-hundred-run sample and their
// relative disagreement on perfectly sound data reaches ~0.99 (measured
// across every benchmark x MID pair at 150-1000 runs), so a deep-tail
// comparison cannot separate a fragile fit from an honest one. At 1e-3
// the same sweep tops out at 0.074: both routes are still anchored by
// the data, and a disagreement past EVTThreshold genuinely signals a
// broken tail fit rather than extrapolation variance.
const evtCheckProb = 1e-3

// auditEVT records invariant A4 for one campaign sample: the block-maxima
// and POT pWCET estimates at evtCheckProb must agree within EVTThreshold.
// Samples too small for a POT fit are skipped, not flagged — AnalyzePOT
// needs 5*MinExcesses observations before the comparison means anything.
func (o Options) auditEVT(name string, times []float64) {
	if o.Audit == nil {
		return
	}
	bm, pot, disagree, err := mbpta.CrossCheck(times, evtCheckProb)
	if err != nil {
		return
	}
	detail := ""
	ok := disagree <= o.EVTThreshold
	if !ok {
		detail = fmt.Sprintf("%s: block-maxima pWCET %.0f vs POT %.0f at p=%.0e (disagreement %.2f > %.2f)",
			name, bm, pot, evtCheckProb, disagree, o.EVTThreshold)
	}
	o.Audit.Record(sim.AuditEVTCrossCheck, ok, detail)
}

// fingerprint identifies the campaign parameters for checkpoint matching:
// a checkpoint written under different parameters must not be resumed.
func (o Options) fingerprint() string {
	fp := fmt.Sprintf("seed=%d runs=%d workloads=%d deploy=%d prob=%g mids=%v ways=%v",
		o.Seed, o.Runs, o.Workloads, o.DeployRuns, o.Prob, o.MIDs, o.CPWays)
	// Appended only when set so checkpoints written before the converged
	// protocol existed still match their (non-converged) campaigns.
	if o.Converge {
		fp += " converge=1"
	}
	return fp
}

// progressSink returns a serialised emitter for o.Progress (a no-op when
// Progress is unset), safe to call from concurrent campaign workers.
func (o Options) progressSink() func(string) {
	if o.Progress == nil {
		return func(string) {}
	}
	var mu sync.Mutex
	return func(line string) {
		mu.Lock()
		o.Progress(line)
		mu.Unlock()
	}
}

// campaignSeed derives a deterministic seed for a named campaign. The
// algorithm (runner.Seed) is pinned: statistical test assertions depend on
// the exact values it produces.
func campaignSeed(master uint64, name string) uint64 {
	return runner.Seed(master, name)
}

// PWCETResult is one MBPTA campaign outcome.
type PWCETResult struct {
	Bench  string
	Config string
	Runs   int
	PWCET  float64 // at Options.Prob
	Mean   float64 // mean observed execution time
	Max    float64 // high-water mark
	IID    mbpta.IIDReport
}

// pwcetFromTimes runs the MBPTA pipeline over a collected sample: check
// i.i.d., fit, extract the pWCET at prob.
func pwcetFromTimes(times []float64, name string, prob float64) (PWCETResult, error) {
	res, err := mbpta.Analyze(times, mbpta.Options{SkipIIDTests: true})
	if err != nil {
		return PWCETResult{}, fmt.Errorf("experiments: MBPTA on %s: %w", name, err)
	}
	iid, err := mbpta.TestIID(times)
	if err != nil {
		return PWCETResult{}, err
	}
	var mean float64
	for _, t := range times {
		mean += t
	}
	mean /= float64(len(times))
	return PWCETResult{
		Runs:  len(times),
		PWCET: res.PWCET(prob),
		Mean:  mean,
		Max:   res.MaxSeen,
		IID:   iid,
	}, nil
}

// analysisPWCET runs the full MBPTA campaign for prog under cfg on a fresh
// platform: collect runs analysis-mode execution times, then fit.
func analysisPWCET(cfg sim.Config, prog *isa.Program, runs int, seed uint64, prob float64) (PWCETResult, error) {
	times, err := sim.CollectAnalysisTimes(cfg, prog, runs, seed)
	if err != nil {
		return PWCETResult{}, err
	}
	return pwcetFromTimes(times, prog.Name, prob)
}

// pooledPWCET is analysisPWCET on a worker's platform pool: bit-identical
// results (pinned by sim's reuse tests) without per-campaign construction.
// The collected sample is returned alongside the fit so callers can feed
// it to the auditor's EVT cross-check.
func pooledPWCET(ctx context.Context, pool *sim.Pool, cfg sim.Config, prog *isa.Program, runs int, seed uint64, prob float64) (PWCETResult, []float64, error) {
	times, err := pool.CollectAnalysisTimes(ctx, cfg, prog, runs, seed)
	if err != nil {
		return PWCETResult{}, nil, err
	}
	res, err := pwcetFromTimes(times, prog.Name, prob)
	return res, times, err
}

// eflConfig returns the analysis configuration for EFL with the given MID.
func eflConfig(mid int64) sim.Config {
	return sim.DefaultConfig().WithEFL(mid).WithAnalysis(0)
}

// cpConfig returns the analysis configuration for CP with the analysed
// task given `ways` ways (co-runner slots are idle and unallocated).
func cpConfig(ways int) sim.Config {
	cfg := sim.DefaultConfig()
	parts := make([]int, cfg.Cores)
	parts[0] = ways
	return cfg.WithPartition(parts).WithAnalysis(0)
}

// campaign is a unit of parallel work.
type campaign struct {
	bench  bench.Spec
	config string
	cfg    sim.Config
}

// runCampaigns executes campaigns on the runner engine — each worker holds
// a platform pool — and returns results keyed by "BENCH/CONFIG".
func runCampaigns(opt Options, cs []campaign) (map[string]PWCETResult, error) {
	emit := opt.progressSink()
	out, err := runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, cs,
		func(ctx context.Context, pool *sim.Pool, _ int, c campaign) (PWCETResult, error) {
			key := c.bench.Code + "/" + c.config
			seed := campaignSeed(opt.Seed, key)
			var res PWCETResult
			var times []float64
			var err error
			if opt.Converge {
				res, times, err = pooledPWCETConverged(ctx, pool, opt, c.cfg, c.bench.Build(), seed)
			} else {
				res, times, err = pooledPWCET(ctx, pool, c.cfg, c.bench.Build(), opt.Runs, seed, opt.Prob)
			}
			if err != nil {
				return PWCETResult{}, fmt.Errorf("%s: %w", key, err)
			}
			opt.auditEVT(key, times)
			res.Bench = c.bench.Code
			res.Config = c.config
			emit(fmt.Sprintf("campaign %-12s pWCET=%.0f max=%.0f runs=%d",
				key, res.PWCET, res.Max, res.Runs))
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	results := make(map[string]PWCETResult, len(out))
	for _, r := range out {
		results[r.Bench+"/"+r.Config] = r
	}
	return results, nil
}
