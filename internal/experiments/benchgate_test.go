package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gateReport(results ...BenchResult) *BenchReport {
	return &BenchReport{Kernel: "CA", Results: results}
}

func TestCompareBaselineFlagsRegression(t *testing.T) {
	base := gateReport(BenchResult{Name: "analysis_run", RunsPerSec: 300})
	cur := gateReport(BenchResult{Name: "analysis_run", RunsPerSec: 240})
	err := CompareBaseline(base, cur, 0.10)
	if err == nil {
		t.Fatal("20% drop at 10% tolerance should fail the gate")
	}
	for _, want := range []string{"analysis_run", "300", "240", "regressed vs committed baseline"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("gate diff missing %q:\n%v", want, err)
		}
	}
}

func TestCompareBaselinePassesWithinTolerance(t *testing.T) {
	base := gateReport(
		BenchResult{Name: "analysis_run", RunsPerSec: 300},
		BenchResult{Name: "removed_bench", RunsPerSec: 100},
	)
	cur := gateReport(
		BenchResult{Name: "analysis_run", RunsPerSec: 275}, // -8.3%, inside 10%
		BenchResult{Name: "batch_run_k8", RunsPerSec: 450}, // addition: ignored
	)
	if err := CompareBaseline(base, cur, 0.10); err != nil {
		t.Fatalf("gate should pass: %v", err)
	}
}

func TestCompareBaselineFlagsNewAllocs(t *testing.T) {
	base := gateReport(BenchResult{Name: "batch_run_k8", RunsPerSec: 450, AllocsPerOp: 0})
	cur := gateReport(BenchResult{Name: "batch_run_k8", RunsPerSec: 460, AllocsPerOp: 2})
	err := CompareBaseline(base, cur, 0.10)
	if err == nil {
		t.Fatal("allocs/op increase should fail the gate regardless of throughput")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("gate diff should name the alloc regression:\n%v", err)
	}
}

func TestLoadBenchReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(gateReport(BenchResult{Name: "analysis_run", RunsPerSec: 300}))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Name != "analysis_run" {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if _, err := LoadBenchReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline should error")
	}
}
