package experiments

import (
	"fmt"
	"math"
	"strings"
)

// AsciiCurve renders a sorted improvement curve (Figure 4's S-curve) as a
// text plot: x = workload rank (sorted from highest to lowest improvement,
// like the paper), y = improvement in percent. A `0%` axis line makes the
// EFL-wins/EFL-loses crossover visible.
func AsciiCurve(title string, curve []float64, width, height int) string {
	if len(curve) == 0 {
		return title + ": (no data)\n"
	}
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	lo, hi := curve[len(curve)-1], curve[0]
	for _, v := range curve { // guard against unsorted input
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1e-9
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	// Zero axis.
	zr := rowOf(0)
	for c := 0; c < width; c++ {
		grid[zr][c] = '-'
	}
	// Curve points.
	for c := 0; c < width; c++ {
		idx := c * (len(curve) - 1) / max(width-1, 1)
		r := rowOf(curve[idx])
		grid[r][c] = '*'
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (sorted best to worst; '-' marks 0%%)\n", title)
	for r := 0; r < height; r++ {
		// Label the top, zero and bottom rows.
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%+7.1f%%", 100*hi)
		case zr:
			label = "   0.0% "
		case height - 1:
			label = fmt.Sprintf("%+7.1f%%", 100*lo)
		}
		fmt.Fprintf(&sb, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "         rank 1 .. %d\n", len(curve))
	return sb.String()
}

// RenderCurves renders both Figure 4 S-curves as text plots.
func (r *Fig4Result) RenderCurves(width, height int) string {
	var sb strings.Builder
	sb.WriteString(AsciiCurve("wgIPC improvement of EFL over CP", r.GuaranteedCurve, width, height))
	sb.WriteByte('\n')
	sb.WriteString(AsciiCurve("waIPC improvement of EFL over CP", r.AverageCurve, width, height))
	return sb.String()
}
