package experiments

import (
	"fmt"
	"strings"

	"efl/internal/bench"
	"efl/internal/sim"
)

// RenderSetup prints the experimental-setup table (paper §4.1) for the
// given configuration, plus the benchmark characterisation.
func RenderSetup(cfg sim.Config) (string, error) {
	var sb strings.Builder
	sb.WriteString("Experimental setup (paper §4.1)\n")
	fmt.Fprintf(&sb, "  cores:            %d, 4-stage in-order, single issue\n", cfg.Cores)
	fmt.Fprintf(&sb, "  IL1/DL1 per core: %d KB, %d-way, %dB lines, %s\n",
		cfg.L1SizeBytes/1024, cfg.L1Ways, cfg.LineBytes, cfg.Policy)
	fmt.Fprintf(&sb, "  shared LLC:       %d KB, %d-way, %dB lines, %s, non-inclusive, write-back\n",
		cfg.LLCSizeBytes/1024, cfg.LLCWays, cfg.LineBytes, cfg.Policy)
	fmt.Fprintf(&sb, "  latencies:        L1 hit 1, LLC hit %d, memory %d (issue slot %d), bus slot %d\n",
		cfg.LLCHitCycles, cfg.MemCycles, cfg.MemSlotCycles, cfg.BusSlotCycles)
	fmt.Fprintf(&sb, "  bus arbitration:  random lottery among pending requests\n")
	fmt.Fprintf(&sb, "  memory controller: analysable (AMC), UBD = cores*slot + service = %d cycles\n",
		int64(cfg.Cores)*cfg.MemSlotCycles+cfg.MemCycles)
	sb.WriteString("\nBenchmarks (EEMBC Autobench behavioural stand-ins)\n")
	sums, err := bench.Characterise()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  %-4s %-10s %-12s %10s %12s %12s\n",
		"code", "eembc", "class", "instrs", "touched KB", "resident KB")
	for _, s := range sums {
		fmt.Fprintf(&sb, "  %-4s %-10s %-12s %10d %12.1f %12.1f\n",
			s.Code, s.Name, s.Class, s.Instrs, s.DataKB, s.ReusedKB)
	}
	return sb.String(), nil
}
