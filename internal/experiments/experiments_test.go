package experiments

import (
	"math"
	"strings"
	"testing"

	"efl/internal/sim"
)

// smallOpt keeps test campaigns fast: few runs, few workloads. The full
// paper-scale campaign is exercised by cmd/experiments and the root
// benchmarks.
func smallOpt() Options {
	return Options{
		Seed:       7,
		Runs:       60,
		Workloads:  8,
		DeployRuns: 1,
		MIDs:       []int64{250, 1000},
		CPWays:     []int{1, 2, 4},
	}
}

func TestCampaignSeedStable(t *testing.T) {
	a := campaignSeed(1, "ID/EFL250")
	b := campaignSeed(1, "ID/EFL250")
	c := campaignSeed(1, "ID/EFL500")
	d := campaignSeed(2, "ID/EFL250")
	if a != b {
		t.Fatal("seed not deterministic")
	}
	if a == c || a == d {
		t.Fatal("seeds collide across campaigns")
	}
	if campaignSeed(0, "") == 0 {
		t.Fatal("zero seed produced")
	}
}

func TestAnalysisPWCETBasics(t *testing.T) {
	spec, err := specByCode("CA")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysisPWCET(eflConfig(500), spec.Build(), 60, 3, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if res.PWCET < res.Max {
		t.Fatalf("pWCET %v below observed max %v", res.PWCET, res.Max)
	}
	if res.Mean <= 0 || res.Mean > res.Max {
		t.Fatalf("mean %v implausible (max %v)", res.Mean, res.Max)
	}
	if res.Runs != 60 {
		t.Fatalf("runs = %d", res.Runs)
	}
}

func TestFigure3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	res, err := Figure3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		// Normalised to CP2: the CP2 column must be exactly 1.
		if row.CP[2] != 1 {
			t.Fatalf("row %s: CP2 normalised to %v", row.Code, row.CP[2])
		}
		// CP1 must never beat CP2 meaningfully (less cache cannot help).
		if row.CP[1] < 0.97 {
			t.Errorf("row %s: CP1 (%v) beats CP2", row.Code, row.CP[1])
		}
		// Raw pWCETs must be positive.
		raw := res.RawRows[i]
		for _, v := range raw.CP {
			if v <= 0 {
				t.Fatalf("row %s: non-positive pWCET", row.Code)
			}
		}
	}
	// Render must include every benchmark code.
	text := res.Render()
	for _, row := range res.Rows {
		if !strings.Contains(text, row.Code) {
			t.Errorf("render missing %s:\n%s", row.Code, text)
		}
	}
	if !strings.Contains(res.CSV(), "bench,EFL250") {
		t.Error("CSV header wrong")
	}
}

// TestFigure3PaperShape pins the qualitative claims of §4.2 on a reduced
// campaign: (1) for the cache-space-insensitive CN, CP1 is clearly worse
// than CP2; (2) the streaming MA is hurt by EFL and prefers low MIDs;
// (3) EFL at its best MID beats CP2 for the sensitive PN.
func TestFigure3PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	res, err := Figure3(opt)
	if err != nil {
		t.Fatal(err)
	}
	byCode := map[string]Fig3Row{}
	for _, row := range res.Rows {
		byCode[row.Code] = row
	}
	if cn := byCode["CN"]; cn.CP[1] < 1.3 {
		t.Errorf("CN: CP1 = %v, expected clear degradation vs CP2", cn.CP[1])
	}
	ma := byCode["MA"]
	if ma.EFL[250] >= ma.EFL[1000] {
		t.Errorf("MA: EFL250 (%v) should beat EFL1000 (%v) — low MID mitigates streaming stalls",
			ma.EFL[250], ma.EFL[1000])
	}
	if ma.EFL[1000] < 1.5 {
		t.Errorf("MA: EFL1000 = %v, expected clearly worse than CP2", ma.EFL[1000])
	}
	pn := byCode["PN"]
	if _, best := pn.BestEFL(); best >= 1 {
		t.Errorf("PN: best EFL = %v, expected to beat CP2", best)
	}
}

func TestIIDTableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	opt.Runs = 120
	res, err := IIDTable(opt, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	passed := 0
	for _, row := range res.Rows {
		if row.Passed {
			passed++
		}
	}
	// At alpha=0.05 an occasional statistical failure is expected; the
	// paper's claim is that the platform is MBPTA-compliant, i.e. the
	// overwhelming majority passes.
	if passed < 8 {
		t.Fatalf("only %d/10 benchmarks passed the i.i.d. gate:\n%s", passed, res.Render())
	}
	if !strings.Contains(res.Render(), "WW") {
		t.Error("render missing test names")
	}
}

func TestFigure4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	res, err := Figure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorkload) != opt.Workloads {
		t.Fatalf("%d workloads", len(res.PerWorkload))
	}
	for _, fw := range res.PerWorkload {
		if len(fw.Workload.Codes) != 4 {
			t.Fatalf("workload %v", fw.Workload)
		}
		sum := 0
		for _, w := range fw.BestCPSplit {
			if w < 1 {
				t.Fatalf("split %v", fw.BestCPSplit)
			}
			sum += w
		}
		if sum > 8 {
			t.Fatalf("split %v oversubscribes", fw.BestCPSplit)
		}
		if fw.WgIPCCP <= 0 || fw.WgIPCEFL <= 0 || fw.WaIPCCP <= 0 || fw.WaIPCEFL <= 0 {
			t.Fatalf("non-positive IPC: %+v", fw)
		}
	}
	// This reproduction's Figure 4 shape (see EXPERIMENTS.md): EFL wins
	// average performance (waIPC) decisively — the shared LLC plus
	// bounded interference beats static partitions at run time — while
	// guaranteed performance (wgIPC) sits near parity, because the
	// analysis-time CRG worst case taxes our synthetic kernels harder
	// than the paper's EEMBC originals. Assert both.
	if res.Average.EFLWins*2 < res.Average.Workloads {
		t.Errorf("EFL wins only %d/%d workloads on waIPC:\n%s",
			res.Average.EFLWins, res.Average.Workloads, res.Render())
	}
	if res.Average.MeanGain < 0.02 {
		t.Errorf("waIPC mean gain %+.1f%%, want clearly positive:\n%s",
			100*res.Average.MeanGain, res.Render())
	}
	if res.Guaranteed.MeanGain < -0.12 {
		t.Errorf("wgIPC mean gain %+.1f%% below the parity band:\n%s",
			100*res.Guaranteed.MeanGain, res.Render())
	}
	// Curves are sorted descending.
	for i := 1; i < len(res.GuaranteedCurve); i++ {
		if res.GuaranteedCurve[i] > res.GuaranteedCurve[i-1] {
			t.Fatal("guaranteed curve not sorted")
		}
	}
	if !strings.Contains(res.Render(), "wgIPC") {
		t.Error("render missing wgIPC")
	}
	if !strings.Contains(res.CurveCSV(), "rank,") {
		t.Error("curve CSV missing header")
	}
}

func TestAblationEq1(t *testing.T) {
	points, err := AblationEq1(5, 3000, []int{1, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// The exact eviction model must match the simulated cache.
		if math.Abs(p.Exact-p.Measured) > 0.02 {
			t.Errorf("k=%d: exact %v vs simulated %v", p.K, p.Exact, p.Measured)
		}
		// Equation 1 as printed must be conservative (>= measured).
		if p.Equation1 < p.Measured-0.02 {
			t.Errorf("k=%d: Equation 1 (%v) below simulated (%v) — not conservative", p.K, p.Equation1, p.Measured)
		}
	}
	if _, err := AblationEq1(5, 10, []int{1}); err == nil {
		t.Error("tiny trial count accepted")
	}
	if !strings.Contains(RenderEq1(points), "equation1") {
		t.Error("render broken")
	}
}

func TestAblationLRU(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	opt.Runs = 30
	rows, err := AblationLRU(opt, []string{"CA"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	// TD platform: fixed layout, fixed timing -> a single distinct time.
	if r.TDDistinctTimes != 1 {
		t.Errorf("TD platform produced %d distinct times, want 1", r.TDDistinctTimes)
	}
	// TR platform: per-run RIIs -> many distinct times.
	if r.TRDistinctTimes < 5 {
		t.Errorf("TR platform produced only %d distinct times", r.TRDistinctTimes)
	}
	if !strings.Contains(RenderLRU(rows), "CA") {
		t.Error("render broken")
	}
}

func TestAblationFixedMID(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	opt.Runs = 100
	rows, err := AblationFixedMID(opt, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	randPass := 0
	for _, r := range rows {
		if r.RandomPassed {
			randPass++
		}
	}
	if randPass < 8 {
		t.Errorf("randomised MID passed i.i.d. for only %d/10 benchmarks", randPass)
	}
	if !strings.Contains(RenderFixedMID(rows, 500), "random") {
		t.Error("render broken")
	}
}

func TestRenderSetup(t *testing.T) {
	text, err := RenderSetup(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"64 KB", "8-way", "idctrn01", "UBD"} {
		if !strings.Contains(text, want) {
			t.Errorf("setup table missing %q", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 300 || o.Workloads != 1024 || o.Prob != 1e-15 {
		t.Fatalf("defaults = %+v", o)
	}
	if len(o.MIDs) != 3 || len(o.CPWays) != 3 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestAblationWriteThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	opt.Runs = 25
	// CA is store-heavy (read-modify-write every iteration) — the case
	// footnote 5 warns about.
	rows, err := AblationWriteThrough(opt, 500, []string{"CA"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.WriteBack <= 0 || r.WTNoAlloc <= 0 || r.WTAllocate <= 0 {
		t.Fatalf("row = %+v", r)
	}
	// Footnote 5's claims: write-through makes LLC traffic more frequent,
	// and the allocating variant makes EFL stalls frequent. So WB must be
	// the fastest and WT+allocate must carry the largest stall share.
	if r.WriteBack >= r.WTAllocate {
		t.Errorf("write-back (%v) not faster than WT+allocate (%v)", r.WriteBack, r.WTAllocate)
	}
	if r.StallAlloc <= r.StallWB {
		t.Errorf("WT+allocate stalls (%v) not above write-back stalls (%v)", r.StallAlloc, r.StallWB)
	}
	if !strings.Contains(RenderWriteThrough(rows, 500), "CA") {
		t.Error("render broken")
	}
}

func TestMIDSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	opt.Runs = 60
	res, err := MIDSweep(opt, []int64{250, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.PWCET) != 2 || row.BestMID == 0 {
			t.Fatalf("row %s = %+v", row.Code, row)
		}
		if row.PWCET[row.BestMID] > row.PWCET[otherMID(row.BestMID)] {
			t.Fatalf("row %s: best MID not minimal", row.Code)
		}
	}
	if !strings.Contains(res.Render(), "best MID") || !strings.Contains(res.CSV(), "MID250") {
		t.Error("render/CSV broken")
	}
}

func otherMID(m int64) int64 {
	if m == 250 {
		return 1000
	}
	return 250
}

func TestConvergenceStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	opt := smallOpt()
	res, err := ConvergenceStudy(opt, 500, []int{60, 120, 240}, []string{"CN"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if len(row.Estimates) != 3 {
		t.Fatalf("estimates = %v", row.Estimates)
	}
	// Estimates must be positive and within a sane band of each other.
	base := row.Estimates[240]
	for n, v := range row.Estimates {
		if v <= 0 || v > base*2 || v < base/2 {
			t.Fatalf("estimate at %d runs = %v (base %v)", n, v, base)
		}
	}
	if row.CollectorRuns < 100 || row.CollectorRuns > 1000 {
		t.Fatalf("collector stopped at %d runs", row.CollectorRuns)
	}
	if row.FinalEstimate <= 0 {
		t.Fatal("no final estimate")
	}
	if !strings.Contains(res.Render(), "collector stops") {
		t.Error("render broken")
	}
}
