package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"efl/internal/artifact"
	"efl/internal/bench"
	"efl/internal/isa"
	"efl/internal/partition"
	"efl/internal/rng"
	"efl/internal/runner"
	"efl/internal/sim"
	"efl/internal/stats"
)

// allSpecs returns the benchmark specs in Figure 3 order.
func allSpecs() []bench.Spec { return bench.All() }

// Workload is one random 4-benchmark mix.
type Workload struct {
	Codes []string
}

// Fig4Workload is the outcome for one workload.
type Fig4Workload struct {
	Workload    Workload
	BestCPSplit []int   // ways per task maximising wgIPC under CP
	BestMID     int64   // common MID maximising wgIPC under EFL
	WgIPCCP     float64 // guaranteed IPC sums
	WgIPCEFL    float64
	WaIPCCP     float64 // observed (deployment) IPC sums
	WaIPCEFL    float64
}

// GuaranteedImprovement returns EFL's wgIPC gain over CP (e.g. 0.56 for
// +56%).
func (w Fig4Workload) GuaranteedImprovement() float64 {
	return w.WgIPCEFL/w.WgIPCCP - 1
}

// AverageImprovement returns EFL's waIPC gain over CP.
func (w Fig4Workload) AverageImprovement() float64 {
	return w.WaIPCEFL/w.WaIPCCP - 1
}

// Fig4Summary condenses an improvement curve the way the paper reports it.
type Fig4Summary struct {
	Workloads         int
	EFLWins           int     // workloads where EFL improves on CP
	MaxGain           float64 // best improvement
	MeanGain          float64 // average over all workloads
	MedianGain        float64
	P75Gain           float64 // gain exceeded by 25% of workloads
	MeanLossWhenWorse float64 // average degradation over EFL-losing workloads
	MaxLoss           float64 // worst degradation
}

// Fig4Result reproduces Figure 4: the sorted wgIPC and waIPC improvement
// S-curves of EFL over CP across random workloads.
type Fig4Result struct {
	Opt         Options
	PerWorkload []Fig4Workload
	// GuaranteedCurve and AverageCurve are the improvements sorted from
	// higher to lower — the S-curves of Figure 4.
	GuaranteedCurve []float64
	AverageCurve    []float64
	Guaranteed      Fig4Summary
	Average         Fig4Summary
}

// gIPC tables built from analysis campaigns: instructions / pWCET.
type gipcTables struct {
	instrs map[string]float64           // per benchmark
	cp     map[string]map[int]float64   // benchmark -> ways -> gIPC
	efl    map[string]map[int64]float64 // benchmark -> MID -> gIPC
}

// Figure4 runs the E3+E4 experiments. The analysis stage computes each
// benchmark's pWCET under CP with every feasible way count and under EFL
// with every MID; the workload stage draws random 4-benchmark mixes,
// optimises CP's split and EFL's MID for wgIPC, and measures deployment
// waIPC under both winners.
//
// When Options.Checkpoint is set, every completed workload is persisted
// there; an interrupted campaign restarted with the same Options resumes
// at the first unfinished workload and — because workloads derive their
// results from stable per-index seeds — produces a Fig4Result identical
// to an uninterrupted run.
func Figure4(opt Options) (*Fig4Result, error) {
	opt = opt.withDefaults()

	// Validate a resume before paying for the analysis stage: a checkpoint
	// written under different campaign parameters must fail fast.
	var ck *artifact.Checkpoint
	if opt.Checkpoint != "" {
		var err error
		ck, err = artifact.LoadCheckpoint(opt.Checkpoint, "fig4", opt.fingerprint(), opt.Workloads)
		if err != nil {
			return nil, err
		}
	}

	tables, err := buildGIPCTables(opt)
	if err != nil {
		return nil, err
	}

	specs := allSpecs()
	progs := map[string]*isa.Program{}
	for _, s := range specs {
		progs[s.Code] = s.Build()
	}

	cores := sim.DefaultConfig().Cores
	maxWays := sim.DefaultConfig().LLCWays
	// The workload draw is a single serial stream: its order is part of the
	// campaign's identity, independent of how evaluation later fans out.
	src := rng.New(campaignSeed(opt.Seed, "fig4-workloads"))
	workloads := make([]Workload, opt.Workloads)
	for i := range workloads {
		codes := make([]string, cores)
		for c := range codes {
			codes[c] = specs[src.Intn(len(specs))].Code
		}
		workloads[i] = Workload{Codes: codes}
	}

	emit := opt.progressSink()
	per, err := runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, workloads,
		func(ctx context.Context, pool *sim.Pool, idx int, wl Workload) (Fig4Workload, error) {
			if ck != nil {
				var fw Fig4Workload
				ok, err := ck.Get(idx, &fw)
				if err != nil {
					return fw, err
				}
				if ok {
					return fw, nil
				}
			}
			fw, err := evalWorkload(ctx, opt, pool, tables, progs, wl, maxWays, idx)
			if err != nil {
				return fw, err
			}
			if ck != nil {
				if err := ck.Put(idx, fw); err != nil {
					return fw, err
				}
			}
			emit(fmt.Sprintf("workload %4d %v: wgIPC %+0.1f%% waIPC %+0.1f%%",
				idx, fw.Workload.Codes,
				100*fw.GuaranteedImprovement(), 100*fw.AverageImprovement()))
			return fw, nil
		})
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{Opt: opt, PerWorkload: per}
	for _, fw := range res.PerWorkload {
		res.GuaranteedCurve = append(res.GuaranteedCurve, fw.GuaranteedImprovement())
		res.AverageCurve = append(res.AverageCurve, fw.AverageImprovement())
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(res.GuaranteedCurve)))
	sort.Sort(sort.Reverse(sort.Float64Slice(res.AverageCurve)))
	res.Guaranteed = summarise(res.GuaranteedCurve)
	res.Average = summarise(res.AverageCurve)
	return res, nil
}

// buildGIPCTables runs the analysis campaigns Figure 4 needs.
func buildGIPCTables(opt Options) (*gipcTables, error) {
	specs := allSpecs()
	maxWays := sim.DefaultConfig().LLCWays
	cores := sim.DefaultConfig().Cores
	// A task can receive at most LLCWays-(Cores-1) ways in a real split.
	maxPerTask := maxWays - (cores - 1)

	var cs []campaign
	for _, s := range specs {
		for w := 1; w <= maxPerTask; w++ {
			cs = append(cs, campaign{bench: s, config: fmt.Sprintf("CP%d", w), cfg: cpConfig(w)})
		}
		for _, mid := range opt.MIDs {
			cs = append(cs, campaign{bench: s, config: fmt.Sprintf("EFL%d", mid), cfg: eflConfig(mid)})
		}
	}
	results, err := runCampaigns(opt, cs)
	if err != nil {
		return nil, err
	}
	t := &gipcTables{
		instrs: map[string]float64{},
		cp:     map[string]map[int]float64{},
		efl:    map[string]map[int64]float64{},
	}
	for _, s := range specs {
		prog := s.Build()
		_, instrs, err := bench.WorkingSet(prog, 16)
		if err != nil {
			return nil, err
		}
		t.instrs[s.Code] = float64(instrs)
		t.cp[s.Code] = map[int]float64{}
		t.efl[s.Code] = map[int64]float64{}
		for w := 1; w <= maxPerTask; w++ {
			r := results[fmt.Sprintf("%s/CP%d", s.Code, w)]
			t.cp[s.Code][w] = float64(instrs) / r.PWCET
		}
		for _, mid := range opt.MIDs {
			r := results[fmt.Sprintf("%s/EFL%d", s.Code, mid)]
			t.efl[s.Code][mid] = float64(instrs) / r.PWCET
		}
	}
	return t, nil
}

// evalWorkload optimises and measures one workload.
func evalWorkload(ctx context.Context, opt Options, pool *sim.Pool, t *gipcTables,
	progs map[string]*isa.Program, wl Workload, maxWays int, idx int) (Fig4Workload, error) {

	fw := Fig4Workload{Workload: wl}

	// Best CP split (wgIPC-optimal).
	split, cpTotal, err := partition.Best(maxWays, len(wl.Codes), func(task, ways int) float64 {
		return t.cp[wl.Codes[task]][ways]
	})
	if err != nil {
		return fw, err
	}
	fw.BestCPSplit = split
	fw.WgIPCCP = cpTotal

	// Best common MID (wgIPC-optimal) — the paper uses one MID for all
	// tasks.
	bestMID, bestTotal := int64(0), -1.0
	for _, mid := range opt.MIDs {
		total := 0.0
		for _, code := range wl.Codes {
			total += t.efl[code][mid]
		}
		if total > bestTotal {
			bestMID, bestTotal = mid, total
		}
	}
	fw.BestMID = bestMID
	fw.WgIPCEFL = bestTotal

	// Deployment measurements under the two winners.
	mkProgs := func() []*isa.Program {
		ps := make([]*isa.Program, len(wl.Codes))
		for i, code := range wl.Codes {
			ps[i] = progs[code]
		}
		return ps
	}
	seed := campaignSeed(opt.Seed, fmt.Sprintf("fig4-deploy-%d", idx))
	cpIPC, err := deployIPC(ctx, pool, sim.DefaultConfig().WithPartition(split), mkProgs(), opt.DeployRuns, seed)
	if err != nil {
		return fw, err
	}
	eflIPC, err := deployIPC(ctx, pool, sim.DefaultConfig().WithEFL(bestMID), mkProgs(), opt.DeployRuns, seed+1)
	if err != nil {
		return fw, err
	}
	fw.WaIPCCP = cpIPC
	fw.WaIPCEFL = eflIPC
	return fw, nil
}

// deployIPC measures the workload's total observed IPC (sum over tasks)
// averaged over runs deployment runs on a pooled platform.
func deployIPC(ctx context.Context, pool *sim.Pool, cfg sim.Config, progs []*isa.Program, runs int, seed uint64) (float64, error) {
	m, err := pool.Get(cfg, progs, seed)
	if err != nil {
		return 0, err
	}
	var total float64
	var r sim.Result
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if err := m.RunInto(&r); err != nil {
			return 0, err
		}
		if err := pool.AuditRun(cfg, &r); err != nil {
			return 0, err
		}
		for _, cr := range r.PerCore {
			if cr.Active {
				total += cr.IPC
			}
		}
	}
	return total / float64(runs), nil
}

// summarise computes the paper's reporting statistics from a sorted
// (descending) improvement curve.
func summarise(curve []float64) Fig4Summary {
	s := Fig4Summary{Workloads: len(curve)}
	if len(curve) == 0 {
		return s
	}
	var lossSum float64
	losses := 0
	for _, v := range curve {
		if v > 0 {
			s.EFLWins++
		} else if v < 0 {
			losses++
			lossSum += v
			if v < s.MaxLoss {
				s.MaxLoss = v
			}
		}
	}
	s.MaxGain = stats.Max(curve)
	s.MeanGain = stats.Mean(curve)
	s.MedianGain = stats.Median(curve)
	s.P75Gain = stats.Quantile(curve, 0.75)
	if losses > 0 {
		s.MeanLossWhenWorse = lossSum / float64(losses)
	}
	return s
}

// Render prints the Figure 4 summary the way the paper narrates it.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: EFL improvement over CP across %d random workloads\n", r.Guaranteed.Workloads)
	write := func(name string, s Fig4Summary) {
		fmt.Fprintf(&sb, "%s:\n", name)
		fmt.Fprintf(&sb, "  EFL better in %d of %d workloads (%.1f%%)\n",
			s.EFLWins, s.Workloads, 100*float64(s.EFLWins)/float64(s.Workloads))
		fmt.Fprintf(&sb, "  improvement: mean %+.1f%%  median %+.1f%%  top-quartile >= %+.1f%%  max %+.1f%%\n",
			100*s.MeanGain, 100*s.MedianGain, 100*s.P75Gain, 100*s.MaxGain)
		fmt.Fprintf(&sb, "  when EFL loses: mean %.1f%%  worst %.1f%%\n",
			100*s.MeanLossWhenWorse, 100*s.MaxLoss)
	}
	write("wgIPC (guaranteed performance)", r.Guaranteed)
	write("waIPC (average performance)", r.Average)
	return sb.String()
}

// CurveCSV renders the two sorted improvement curves.
func (r *Fig4Result) CurveCSV() string {
	var sb strings.Builder
	sb.WriteString("rank,wgipc_improvement,waipc_improvement\n")
	for i := range r.GuaranteedCurve {
		fmt.Fprintf(&sb, "%d,%.4f,%.4f\n", i, r.GuaranteedCurve[i], r.AverageCurve[i])
	}
	return sb.String()
}
