package experiments

// Performance regression harness. BenchSuite runs the campaign-level and
// hot-path benchmarks programmatically (testing.Benchmark) and returns a
// machine-readable report; `experiments -exp bench -benchout BENCH_SIM.json`
// persists it so successive commits can be compared:
//
//	go run ./cmd/experiments -exp bench -benchout BENCH_SIM.json
//
// The two campaign benchmarks mirror the MBPTA workload (repeated full
// runs of one platform), so runs_per_sec is directly the throughput of an
// analysis campaign and allocs_per_op its per-run allocation count.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"efl/internal/bench"
	"efl/internal/cache"
	"efl/internal/isa"
	"efl/internal/rng"
	"efl/internal/rnghash"
	"efl/internal/sim"
)

// BenchResult is one benchmark's outcome.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchReport is the full machine-readable benchmark report.
type BenchReport struct {
	GoVersion string        `json:"go_version"`
	GoArch    string        `json:"go_arch"`
	Seed      uint64        `json:"seed"`
	Kernel    string        `json:"kernel"`
	Results   []BenchResult `json:"results"`
}

// JSON renders the report with stable indentation.
func (r *BenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the report as an aligned text table.
func (r *BenchReport) Render() string {
	out := fmt.Sprintf("Benchmark suite (kernel %s, seed %d, %s/%s)\n",
		r.Kernel, r.Seed, r.GoVersion, r.GoArch)
	out += fmt.Sprintf("%-22s %12s %14s %12s %10s\n", "benchmark", "ns/op", "runs/sec", "B/op", "allocs/op")
	for _, b := range r.Results {
		out += fmt.Sprintf("%-22s %12.0f %14.1f %12d %10d\n",
			b.Name, b.NsPerOp, b.RunsPerSec, b.BytesPerOp, b.AllocsPerOp)
	}
	return out
}

// record converts a testing.BenchmarkResult.
func record(name string, br testing.BenchmarkResult) BenchResult {
	return recordPerRun(name, 1, br)
}

// recordPerRun converts a benchmark whose op performs runsPerOp simulation
// runs, normalising every figure per run so batched and single-run entries
// are directly comparable.
func recordPerRun(name string, runsPerOp int, br testing.BenchmarkResult) BenchResult {
	ns := float64(br.NsPerOp()) / float64(runsPerOp)
	perSec := 0.0
	if ns > 0 {
		perSec = 1e9 / ns
	}
	return BenchResult{
		Name:        name,
		Iterations:  br.N * runsPerOp,
		NsPerOp:     ns,
		RunsPerSec:  perSec,
		BytesPerOp:  br.AllocedBytesPerOp() / int64(runsPerOp),
		AllocsPerOp: br.AllocsPerOp() / int64(runsPerOp),
	}
}

// BenchSuite runs the benchmark suite with the kernel identified by code
// (the paper's two-letter identifiers; "CA" is the cache-sensitive default
// passed by cmd/experiments) at the given EFL MID.
func BenchSuite(opt Options, code string, mid int64) (*BenchReport, error) {
	spec, err := bench.ByCode(code)
	if err != nil {
		return nil, err
	}
	prog := spec.Build()
	base := sim.DefaultConfig()
	report := &BenchReport{
		GoVersion: runtime.Version(),
		GoArch:    runtime.GOARCH,
		Seed:      opt.Seed,
		Kernel:    code,
	}

	// Analysis campaign: one EFL run per iteration (the MBPTA inner loop).
	acfg := base.WithEFL(mid).WithAnalysis(0)
	aprogs := make([]*isa.Program, acfg.Cores)
	aprogs[0] = prog
	am, err := sim.New(acfg, aprogs, opt.Seed)
	if err != nil {
		return nil, err
	}
	var ares sim.Result
	report.Results = append(report.Results, record("analysis_run", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := am.RunInto(&ares); err != nil {
				b.Fatal(err)
			}
		}
	})))

	// Batched analysis campaigns: one lockstep Batch.Run (K runs) per
	// iteration, normalised per run. The K=1 entry measures the lockstep
	// engine's overhead over the general loop; K>=4 shows the amortised
	// throughput campaign drivers get.
	for _, k := range []int{1, 4, 8, 16} {
		bt, err := sim.NewBatch(acfg, prog, k)
		if err != nil {
			return nil, err
		}
		seeds := make([]uint64, k)
		for j := range seeds {
			seeds[j] = opt.Seed + uint64(j)
		}
		report.Results = append(report.Results, recordPerRun(fmt.Sprintf("batch_run_k%d", k), k, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bt.Run(nil, seeds); err != nil {
					b.Fatal(err)
				}
			}
		})))
	}

	// Deployment campaign: four co-running copies per iteration.
	dcfg := base.WithEFL(mid)
	dprogs := make([]*isa.Program, dcfg.Cores)
	for i := range dprogs {
		dprogs[i] = prog
	}
	dm, err := sim.New(dcfg, dprogs, opt.Seed)
	if err != nil {
		return nil, err
	}
	var dres sim.Result
	report.Results = append(report.Results, record("deployment_run", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := dm.RunInto(&dres); err != nil {
				b.Fatal(err)
			}
		}
	})))

	// Multi-level deployment campaign: the same four co-running copies on
	// the three-level hierarchy (private L1 -> shared L2 -> shared LLC), so
	// the per-level walk's cost relative to the flat layout is tracked.
	mcfg := coherenceConfig(mid, 0)
	mm, err := sim.New(mcfg, dprogs, opt.Seed)
	if err != nil {
		return nil, err
	}
	var mres sim.Result
	report.Results = append(report.Results, record("multilevel_run", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := mm.RunInto(&mres); err != nil {
				b.Fatal(err)
			}
		}
	})))

	// Hot-path micro-benchmarks: one shared-LLC access and one placement
	// hash evaluation.
	llcCfg := cache.Config{
		Name:      "LLC-bench",
		SizeBytes: base.LLCSizeBytes,
		Ways:      base.LLCWays,
		LineBytes: base.LineBytes,
		Policy:    cache.TimeRandomised,
	}
	llc := cache.New(llcCfg, rng.New(opt.Seed))
	mask := cache.FullMask(llcCfg.Ways)
	lines := uint64(2 * llcCfg.SizeBytes / llcCfg.LineBytes)
	report.Results = append(report.Results, record("llc_access", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			la := (uint64(i) * 2654435761) % lines
			llc.Access(la*uint64(llcCfg.LineBytes), i&7 == 0, mask, -1)
		}
	})))

	h := rnghash.New(llcCfg.Sets(), rnghash.NewRII(rng.New(opt.Seed)))
	sink := 0
	report.Results = append(report.Results, record("hash_set", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += h.Set(uint64(i) * 31)
		}
	})))
	_ = sink

	return report, nil
}
