package experiments

import (
	"context"
	"fmt"
	"strings"

	"efl/internal/bench"
	"efl/internal/cache"
	"efl/internal/etp"
	"efl/internal/isa"
	"efl/internal/mbpta"
	"efl/internal/rng"
	"efl/internal/runner"
	"efl/internal/sim"
)

// Eq1Point compares the paper's Equation 1 and the exact eviction model
// against simulation for one reuse distance.
type Eq1Point struct {
	K         int     // interfering accesses between the two uses of A
	Equation1 float64 // the paper's approximation (conservative for S>1)
	Exact     float64 // 1 - (1 - 1/(S*W))^k
	Measured  float64 // Monte-Carlo TR cache
}

// AblationEq1 (A1) validates the miss-probability models of §3.2 against
// the cache implementation: for the access sequence <A, B1..Bk, A> on a
// fully occupied cache with S sets and W ways where every Bl misses and
// evicts, the exact model predicts the miss probability of the second A,
// and Equation 1 as printed in the paper upper-bounds it (it is exact in
// the fully-associative case; the paper explicitly treats it as an
// approximation whose exact value is irrelevant for MBPTA).
func AblationEq1(seed uint64, trials int, ks []int) ([]Eq1Point, error) {
	if trials < 100 {
		return nil, fmt.Errorf("experiments: need >= 100 trials")
	}
	const S, W = 64, 8 // compact geometry keeps Monte-Carlo cheap
	cfg := cache.Config{Name: "eq1", SizeBytes: S * W * 16, Ways: W, LineBytes: 16,
		Policy: cache.TimeRandomised}
	src := rng.New(seed)
	var out []Eq1Point
	for _, k := range ks {
		misses := 0
		for trial := 0; trial < trials; trial++ {
			c := cache.New(cfg, src.Fork())
			full := cache.FullMask(W)
			// Pre-fill with 4x the capacity in distinct lines so that
			// every set is full with overwhelming probability — the
			// Equation 1 regime where each Bl miss causes an eviction.
			for f := uint64(0); f < 4*S*W; f++ {
				c.Access(0x100000+f*16, false, full, -1)
			}
			c.Access(0, false, full, -1) // A
			for b := 1; b <= k; b++ {
				c.Access(uint64(0x800000+uint64(b)*16), false, full, -1) // Bl, distinct
			}
			if r := c.Access(0, false, full, -1); !r.Hit {
				misses++
			}
		}
		out = append(out, Eq1Point{
			K:         k,
			Equation1: etp.MissProbabilityUniform(S, W, k, 1),
			Exact:     etp.MissProbabilityExactUniform(S, W, k, 1),
			Measured:  float64(misses) / float64(trials),
		})
	}
	return out, nil
}

// RenderEq1 prints the A1 table.
func RenderEq1(points []Eq1Point) string {
	var sb strings.Builder
	sb.WriteString("Ablation A1: miss-probability models vs simulated TR cache (S=64, W=8, all Bl miss)\n")
	fmt.Fprintf(&sb, "%6s %12s %12s %12s %10s\n", "k", "equation1", "exact", "simulated", "eq1 slack")
	for _, p := range points {
		fmt.Fprintf(&sb, "%6d %12.4f %12.4f %12.4f %10.4f\n",
			p.K, p.Equation1, p.Exact, p.Measured, p.Equation1-p.Measured)
	}
	return sb.String()
}

// FixedMIDRow is the A2 ablation outcome for one benchmark: i.i.d. test
// results with the paper's randomised inter-eviction delays versus
// deterministic (fixed) delays.
type FixedMIDRow struct {
	Code         string
	RandomPassed bool
	RandomAbsZ   float64
	FixedPassed  bool
	FixedAbsZ    float64
	FixedKSP     float64
	RandomKSP    float64
}

// AblationFixedMID (A2) demonstrates why §3.4 randomises the MID draw:
// with deterministic delays the CRG evictions interleave systematically
// with the analysed task, which tends to reduce run-to-run variability
// coverage and can break the i.i.d. gate; with U[0,2*MID] draws the
// interleaving is probabilistic and the gate passes.
func AblationFixedMID(opt Options, mid int64) ([]FixedMIDRow, error) {
	opt = opt.withDefaults()
	return runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, allSpecs(),
		func(ctx context.Context, pool *sim.Pool, _ int, s bench.Spec) (FixedMIDRow, error) {
			prog := s.Build()
			row := FixedMIDRow{Code: s.Code}
			for _, fixed := range []bool{false, true} {
				cfg := eflConfig(mid)
				cfg.EFLFixedMID = fixed
				seed := campaignSeed(opt.Seed, fmt.Sprintf("%s/fixed=%v", s.Code, fixed))
				times, err := pool.CollectAnalysisTimes(ctx, cfg, prog, opt.Runs, seed)
				if err != nil {
					return row, err
				}
				iid, err := mbpta.TestIID(times)
				if err != nil {
					return row, err
				}
				if fixed {
					row.FixedPassed, row.FixedAbsZ, row.FixedKSP = iid.Passed, iid.WW.AbsZ, iid.KS.PValue
				} else {
					row.RandomPassed, row.RandomAbsZ, row.RandomKSP = iid.Passed, iid.WW.AbsZ, iid.KS.PValue
				}
			}
			return row, nil
		})
}

// RenderFixedMID prints the A2 table.
func RenderFixedMID(rows []FixedMIDRow, mid int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation A2: randomised vs fixed MID draws (MID=%d)\n", mid)
	fmt.Fprintf(&sb, "%-5s %18s %18s\n", "bench", "random |Z| / pass", "fixed |Z| / pass")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-5s %10.3f / %-5v %10.3f / %-5v\n",
			r.Code, r.RandomAbsZ, r.RandomPassed, r.FixedAbsZ, r.FixedPassed)
	}
	return sb.String()
}

// LRURow is the A3 ablation outcome: a time-deterministic (modulo+LRU)
// platform produces constant execution times run-to-run (no randomisation
// to expose to EVT), while the TR platform produces a distribution.
type LRURow struct {
	Code            string
	TDDistinctTimes int // distinct execution times over the sample (TD)
	TRDistinctTimes int // distinct execution times over the sample (TR)
	TDMean          float64
	TRMean          float64
}

// AblationLRU (A3) contrasts the cache paradigms (§1): the TD platform is
// deterministic given a memory layout — every run takes the same time, so
// measurement-based analysis cannot expose layout risk — whereas the TR
// platform randomises placement each run and yields an analysable
// execution-time distribution.
func AblationLRU(opt Options, codes []string) ([]LRURow, error) {
	opt = opt.withDefaults()
	return runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, codes,
		func(ctx context.Context, pool *sim.Pool, _ int, code string) (LRURow, error) {
			s, err := specByCode(code)
			if err != nil {
				return LRURow{}, err
			}
			prog := s.Build()
			row := LRURow{Code: code}
			for _, policy := range []cache.Policy{cache.TimeDeterministic, cache.TimeRandomised} {
				cfg := sim.DefaultConfig()
				cfg.Policy = policy
				// Compare the raw platforms without EFL (EFL requires TR) in
				// isolated deployment mode: no contention, no phantom bus
				// draws — any run-to-run variation comes from the caches.
				seed := campaignSeed(opt.Seed, fmt.Sprintf("%s/policy=%v", code, policy))
				times, err := collectIsolatedTimes(ctx, pool, cfg, prog, opt.Runs, seed)
				if err != nil {
					return row, err
				}
				distinct := map[float64]bool{}
				var mean float64
				for _, t := range times {
					distinct[t] = true
					mean += t
				}
				mean /= float64(len(times))
				if policy == cache.TimeDeterministic {
					row.TDDistinctTimes, row.TDMean = len(distinct), mean
				} else {
					row.TRDistinctTimes, row.TRMean = len(distinct), mean
				}
			}
			return row, nil
		})
}

// specByCode resolves a benchmark code to its spec.
func specByCode(code string) (bench.Spec, error) { return bench.ByCode(code) }

// collectIsolatedTimes measures prog running alone at deployment (real,
// uncontended timing) for runs runs on a pooled platform.
func collectIsolatedTimes(ctx context.Context, pool *sim.Pool, cfg sim.Config, prog *isa.Program, runs int, seed uint64) ([]float64, error) {
	m, err := pool.Get(cfg, []*isa.Program{prog}, seed)
	if err != nil {
		return nil, err
	}
	times := make([]float64, runs)
	var r sim.Result
	for i := range times {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.RunInto(&r); err != nil {
			return nil, err
		}
		if err := pool.AuditRun(cfg, &r); err != nil {
			return nil, err
		}
		times[i] = float64(r.PerCore[0].Cycles)
	}
	return times, nil
}

// RenderLRU prints the A3 table.
func RenderLRU(rows []LRURow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A3: time-deterministic vs time-randomised platform\n")
	fmt.Fprintf(&sb, "%-5s %14s %14s %12s %12s\n", "bench", "TD distinct", "TR distinct", "TD mean", "TR mean")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-5s %14d %14d %12.0f %12.0f\n",
			r.Code, r.TDDistinctTimes, r.TRDistinctTimes, r.TDMean, r.TRMean)
	}
	return sb.String()
}
