package experiments

import (
	"fmt"
	"strings"
)

// IIDRow is one benchmark's MBPTA-compliance test outcome (paper §4.2):
// execution times are collected on the EFL platform in analysis mode, then
// the Wald-Wolfowitz independence test (accept when |Z| < 1.96) and the
// Kolmogorov-Smirnov identical-distribution test (accept when p > 0.05)
// are applied.
type IIDRow struct {
	Code   string
	Runs   int
	AbsZ   float64 // Wald-Wolfowitz |Z|
	KSP    float64 // Kolmogorov-Smirnov p-value
	Passed bool
}

// IIDResult reproduces the paper's MBPTA-compliance result: with EFL, all
// benchmarks' execution-time samples pass both tests at the 5% level.
type IIDResult struct {
	Opt  Options
	MID  int64
	Rows []IIDRow
}

// IIDTable runs the E1 experiment under EFL with the given MID (use 500
// for the paper's middle configuration; any MID should pass).
func IIDTable(opt Options, mid int64) (*IIDResult, error) {
	opt = opt.withDefaults()
	var cs []campaign
	for _, s := range allSpecs() {
		cs = append(cs, campaign{bench: s, config: fmt.Sprintf("EFL%d", mid), cfg: eflConfig(mid)})
	}
	results, err := runCampaigns(opt, cs)
	if err != nil {
		return nil, err
	}
	res := &IIDResult{Opt: opt, MID: mid}
	for _, s := range allSpecs() {
		r := results[fmt.Sprintf("%s/EFL%d", s.Code, mid)]
		res.Rows = append(res.Rows, IIDRow{
			Code:   s.Code,
			Runs:   r.Runs,
			AbsZ:   r.IID.WW.AbsZ,
			KSP:    r.IID.KS.PValue,
			Passed: r.IID.Passed,
		})
	}
	return res, nil
}

// AllPassed reports whether every benchmark passed both tests.
func (r *IIDResult) AllPassed() bool {
	for _, row := range r.Rows {
		if !row.Passed {
			return false
		}
	}
	return true
}

// Render prints the compliance table.
func (r *IIDResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "MBPTA compliance under EFL (MID=%d), alpha=0.05\n", r.MID)
	fmt.Fprintf(&sb, "%-5s %5s %12s %12s %s\n", "bench", "runs", "WW |Z|<1.96", "KS p>0.05", "verdict")
	for _, row := range r.Rows {
		verdict := "pass"
		if !row.Passed {
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "%-5s %5d %12.3f %12.4f %s\n", row.Code, row.Runs, row.AbsZ, row.KSP, verdict)
	}
	return sb.String()
}
