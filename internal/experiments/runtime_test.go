package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"efl/internal/artifact"
)

// TestArtifactWorkerCountInvariance pins the campaign engine's determinism
// contract end to end: the same campaign at Parallelism 1 and 8 must
// produce byte-identical artifacts, because every result derives from the
// master seed and the campaign identity, never from scheduling.
func TestArtifactWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	encode := func(par int) []byte {
		opt := smallOpt()
		opt.Parallelism = par
		res, err := IIDTable(opt, 500)
		if err != nil {
			t.Fatal(err)
		}
		data, err := artifact.Encode("iid", opt.Seed, res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial, parallel := encode(1), encode(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("iid artifact differs between Parallelism=1 and 8:\n%s\n---\n%s", serial, parallel)
	}
}

// TestFigure4ResumeByteIdentical pins the resumable-campaign contract:
// a Figure 4 campaign interrupted mid-flight (context cancellation, as on
// SIGINT) and restarted from its checkpoint yields an artifact
// byte-identical to an uninterrupted run — across different worker counts
// on top.
func TestFigure4ResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	base := Options{
		Seed:       11,
		Runs:       60,
		Workloads:  5,
		DeployRuns: 1,
		MIDs:       []int64{250, 1000},
	}
	encode := func(res *Fig4Result) []byte {
		data, err := artifact.Encode("fig4", base.Seed, res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Reference: one uninterrupted serial campaign.
	ref := base
	ref.Parallelism = 1
	refRes, err := Figure4(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := encode(refRes)

	// Interrupted campaign: cancel after two completed workloads, the way
	// the SIGINT path does.
	ckPath := filepath.Join(t.TempDir(), "fig4.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := base
	interrupted.Parallelism = 2
	interrupted.Checkpoint = ckPath
	interrupted.Ctx = ctx
	workloadLines := 0
	interrupted.Progress = func(line string) {
		if strings.HasPrefix(line, "workload") {
			if workloadLines++; workloadLines == 2 {
				cancel()
			}
		}
	}
	if _, err := Figure4(interrupted); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign returned %v, want context.Canceled", err)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("no checkpoint survived the interrupt: %v", err)
	}

	// Resume with a different worker count: checkpointed workloads are
	// restored, the rest recomputed from their stable seeds.
	resumed := base
	resumed.Parallelism = 8
	resumed.Checkpoint = ckPath
	resRes, err := Figure4(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := encode(resRes); !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\n%s\n---\n%s", got, want)
	}
}

// TestFigure4CheckpointRejectsOtherCampaign guards against resuming a
// checkpoint under changed campaign parameters.
func TestFigure4CheckpointRejectsOtherCampaign(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "fig4.ckpt")
	ck, err := artifact.LoadCheckpoint(ckPath, "fig4", "some other fingerprint", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Put(0, Fig4Workload{}); err != nil {
		t.Fatal(err)
	}
	opt := smallOpt()
	opt.Checkpoint = ckPath
	if _, err := Figure4(opt); err == nil {
		t.Fatal("checkpoint from a different campaign accepted")
	}
}
