package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// MIDSweepRow is one benchmark's pWCET across a range of MID values — the
// sensitivity curve behind the paper's three-point {250, 500, 1000} choice.
// The paper observes that most benchmarks prefer low MIDs while MA is the
// trade-off case; the sweep maps the whole curve, exposing each
// benchmark's knee (where CRG interference at low MIDs starts to outweigh
// the benchmark's own gate stalls at high MIDs, or vice versa).
type MIDSweepRow struct {
	Code    string
	PWCET   map[int64]float64 // MID -> pWCET at Options.Prob
	BestMID int64
}

// MIDSweepResult is the E6 extension experiment.
type MIDSweepResult struct {
	Opt  Options
	MIDs []int64
	Rows []MIDSweepRow
}

// MIDSweep measures the pWCET of each benchmark across the given MID
// values (default: 100..2000 in rough octaves around the paper's set).
func MIDSweep(opt Options, mids []int64) (*MIDSweepResult, error) {
	opt = opt.withDefaults()
	if len(mids) == 0 {
		mids = []int64{100, 175, 250, 350, 500, 700, 1000, 1400, 2000}
	}
	sort.Slice(mids, func(i, j int) bool { return mids[i] < mids[j] })

	var cs []campaign
	for _, s := range allSpecs() {
		for _, mid := range mids {
			cs = append(cs, campaign{bench: s, config: fmt.Sprintf("SWEEP%d", mid), cfg: eflConfig(mid)})
		}
	}
	results, err := runCampaigns(opt, cs)
	if err != nil {
		return nil, err
	}
	res := &MIDSweepResult{Opt: opt, MIDs: mids}
	for _, s := range allSpecs() {
		row := MIDSweepRow{Code: s.Code, PWCET: map[int64]float64{}}
		best := int64(0)
		for _, mid := range mids {
			v := results[fmt.Sprintf("%s/SWEEP%d", s.Code, mid)].PWCET
			row.PWCET[mid] = v
			if best == 0 || v < row.PWCET[best] {
				best = mid
			}
		}
		row.BestMID = best
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep normalised per benchmark to its own best MID.
func (r *MIDSweepResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "MID sweep: pWCET (exceedance %.0e) normalised to each benchmark's best MID\n", r.Opt.Prob)
	fmt.Fprintf(&sb, "%-5s", "bench")
	for _, mid := range r.MIDs {
		fmt.Fprintf(&sb, " %8d", mid)
	}
	fmt.Fprintf(&sb, " %9s\n", "best MID")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-5s", row.Code)
		best := row.PWCET[row.BestMID]
		for _, mid := range r.MIDs {
			fmt.Fprintf(&sb, " %8.3f", row.PWCET[mid]/best)
		}
		fmt.Fprintf(&sb, " %9d\n", row.BestMID)
	}
	return sb.String()
}

// CSV renders the raw sweep values.
func (r *MIDSweepResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("bench")
	for _, mid := range r.MIDs {
		fmt.Fprintf(&sb, ",MID%d", mid)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(row.Code)
		for _, mid := range r.MIDs {
			fmt.Fprintf(&sb, ",%.0f", row.PWCET[mid])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
