package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Fig3Row is one benchmark's pWCET estimates across configurations.
type Fig3Row struct {
	Code string
	EFL  map[int64]float64 // MID -> pWCET
	CP   map[int]float64   // ways -> pWCET
}

// NormalisedTo returns the row's pWCETs divided by this benchmark's CP
// pWCET with `ways` ways — Figure 3 normalises to CP2.
func (r Fig3Row) NormalisedTo(ways int) Fig3Row {
	base := r.CP[ways]
	out := Fig3Row{Code: r.Code, EFL: map[int64]float64{}, CP: map[int]float64{}}
	for mid, v := range r.EFL {
		out.EFL[mid] = v / base
	}
	for w, v := range r.CP {
		out.CP[w] = v / base
	}
	return out
}

// Fig3Result reproduces Figure 3: per-benchmark pWCET estimates for
// EFL{250,500,1000} and CP{1,2,4}, normalised to CP2.
type Fig3Result struct {
	Opt     Options
	Rows    []Fig3Row // Figure 3 benchmark order
	RawRows []Fig3Row // before normalisation
}

// Figure3 runs the E2 experiment.
func Figure3(opt Options) (*Fig3Result, error) {
	opt = opt.withDefaults()
	var cs []campaign
	specs := allSpecs()
	for _, s := range specs {
		for _, mid := range opt.MIDs {
			cs = append(cs, campaign{bench: s, config: fmt.Sprintf("EFL%d", mid), cfg: eflConfig(mid)})
		}
		for _, w := range opt.CPWays {
			cs = append(cs, campaign{bench: s, config: fmt.Sprintf("CP%d", w), cfg: cpConfig(w)})
		}
	}
	results, err := runCampaigns(opt, cs)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Opt: opt}
	for _, s := range specs {
		row := Fig3Row{Code: s.Code, EFL: map[int64]float64{}, CP: map[int]float64{}}
		for _, mid := range opt.MIDs {
			row.EFL[mid] = results[fmt.Sprintf("%s/EFL%d", s.Code, mid)].PWCET
		}
		for _, w := range opt.CPWays {
			row.CP[w] = results[fmt.Sprintf("%s/CP%d", s.Code, w)].PWCET
		}
		res.RawRows = append(res.RawRows, row)
		res.Rows = append(res.Rows, row.NormalisedTo(2))
	}
	return res, nil
}

// Render prints the normalised Figure 3 table in benchmark order.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: pWCET (exceedance %.0e) normalised to CP2\n", r.Opt.Prob)
	fmt.Fprintf(&sb, "%-5s", "bench")
	mids := sortedMIDs(r.Opt.MIDs)
	for _, mid := range mids {
		fmt.Fprintf(&sb, " %9s", fmt.Sprintf("EFL%d", mid))
	}
	ways := append([]int(nil), r.Opt.CPWays...)
	sort.Ints(ways)
	for _, w := range ways {
		fmt.Fprintf(&sb, " %9s", fmt.Sprintf("CP%d", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-5s", row.Code)
		for _, mid := range mids {
			fmt.Fprintf(&sb, " %9.3f", row.EFL[mid])
		}
		for _, w := range ways {
			fmt.Fprintf(&sb, " %9.3f", row.CP[w])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the normalised table as comma-separated values.
func (r *Fig3Result) CSV() string {
	var sb strings.Builder
	mids := sortedMIDs(r.Opt.MIDs)
	ways := append([]int(nil), r.Opt.CPWays...)
	sort.Ints(ways)
	sb.WriteString("bench")
	for _, mid := range mids {
		fmt.Fprintf(&sb, ",EFL%d", mid)
	}
	for _, w := range ways {
		fmt.Fprintf(&sb, ",CP%d", w)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(row.Code)
		for _, mid := range mids {
			fmt.Fprintf(&sb, ",%.4f", row.EFL[mid])
		}
		for _, w := range ways {
			fmt.Fprintf(&sb, ",%.4f", row.CP[w])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BestEFL returns, for the given row, the lowest normalised EFL pWCET and
// its MID — "EFL at its best configuration", the quantity the paper's
// narrative compares against CP.
func (r Fig3Row) BestEFL() (mid int64, v float64) {
	first := true
	for m, x := range r.EFL {
		if first || x < v {
			mid, v, first = m, x, false
		}
	}
	return mid, v
}

func sortedMIDs(mids []int64) []int64 {
	out := append([]int64(nil), mids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
