package experiments

import (
	"fmt"
	"sort"
	"strings"

	"efl/internal/isa"
	"efl/internal/metrics"
	"efl/internal/sim"
)

// CoreBreakdown is one core's cycle attribution: where every cycle of its
// clock went, by category, plus the worst memory read it observed.
type CoreBreakdown struct {
	Core           int
	Bench          string
	Cycles         int64
	Categories     map[string]int64
	MaxReadLatency int64
}

// AttributionResult is the cycle-attribution experiment outcome: a full
// per-core breakdown of a quad-core EFL deployment run, with the platform
// latency histograms. The breakdown is machine-checked — each core's
// categories sum exactly to its cycle count (invariant A1) and every
// memory read stayed under the UBD (A2) — before it is reported.
type AttributionResult struct {
	Opt         Options
	MID         int64
	Codes       []string
	Runs        int
	UBD         int64
	TotalCycles int64
	PerCore     []CoreBreakdown
	// Aggregate sums the per-core accounts of the reported (final) run.
	Aggregate map[string]int64
	// Latency histograms of the reported run.
	BusWait  metrics.HistogramSnapshot
	MemRead  metrics.HistogramSnapshot
	EFLStall metrics.HistogramSnapshot
}

// Attribution runs a deployment workload under EFL and reports where the
// cycles went. codes picks the per-core benchmarks (nil: the first Cores
// entries of the suite); the result describes the final of Opt.DeployRuns
// runs, every one of which is audited.
func Attribution(opt Options, mid int64, codes []string) (*AttributionResult, error) {
	opt = opt.withDefaults()
	cfg := sim.DefaultConfig().WithEFL(mid)
	if len(codes) == 0 {
		for _, s := range allSpecs()[:cfg.Cores] {
			codes = append(codes, s.Code)
		}
	}
	if len(codes) != cfg.Cores {
		return nil, fmt.Errorf("experiments: attribution needs %d benchmark codes, got %d", cfg.Cores, len(codes))
	}
	progs := make([]*isa.Program, cfg.Cores)
	for i, code := range codes {
		s, err := specByCode(code)
		if err != nil {
			return nil, err
		}
		progs[i] = s.Build()
	}

	pool := opt.newPool()
	m, err := pool.Get(cfg, progs, campaignSeed(opt.Seed, "attribution"))
	if err != nil {
		return nil, err
	}
	ctx := opt.context()
	var res sim.Result
	for r := 0; r < opt.DeployRuns; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.RunInto(&res); err != nil {
			return nil, err
		}
		if err := pool.AuditRun(cfg, &res); err != nil {
			return nil, err
		}
	}

	out := &AttributionResult{
		Opt: opt, MID: mid, Codes: codes, Runs: opt.DeployRuns,
		UBD:         int64(cfg.Cores)*cfg.MemSlotCycles + cfg.MemCycles,
		TotalCycles: res.TotalCycles,
		Aggregate:   map[string]int64{},
		BusWait:     res.BusWaitHist.Snapshot(),
		MemRead:     res.MemReadHist.Snapshot(),
		EFLStall:    res.EFLStallHist.Snapshot(),
	}
	for i, cr := range res.PerCore {
		if !cr.Active {
			continue
		}
		out.PerCore = append(out.PerCore, CoreBreakdown{
			Core: i, Bench: codes[i], Cycles: cr.Cycles,
			Categories:     cr.Attribution.Map(),
			MaxReadLatency: cr.MaxReadLatency,
		})
		for k, v := range cr.Attribution.Map() {
			out.Aggregate[k] += v
		}
	}
	return out, nil
}

// Render prints the per-core breakdown table.
func (r *AttributionResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cycle attribution: %v at deployment under EFL (MID=%d), run %d of %d\n",
		r.Codes, r.MID, r.Runs, r.Runs)
	fmt.Fprintf(&sb, "%-5s %-5s %10s", "core", "bench", "cycles")
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		fmt.Fprintf(&sb, " %10s", c)
	}
	fmt.Fprintf(&sb, " %8s\n", "maxread")
	for _, cb := range r.PerCore {
		fmt.Fprintf(&sb, "core%d %-5s %10d", cb.Core, cb.Bench, cb.Cycles)
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			fmt.Fprintf(&sb, " %10d", cb.Categories[c.String()])
		}
		fmt.Fprintf(&sb, " %8d\n", cb.MaxReadLatency)
	}
	fmt.Fprintf(&sb, "every memory read <= UBD %d; per-core categories sum to the core's cycles (audited)\n", r.UBD)
	fmt.Fprintf(&sb, "bus wait: %d obs, mean %.1f, max %d | mem read: %d obs, mean %.1f, max %d | EFL stall: %d obs, mean %.1f, max %d\n",
		r.BusWait.Count, r.BusWait.Mean, r.BusWait.Max,
		r.MemRead.Count, r.MemRead.Mean, r.MemRead.Max,
		r.EFLStall.Count, r.EFLStall.Mean, r.EFLStall.Max)
	return sb.String()
}

// RenderAudit prints an auditor's report as the operator-facing summary
// table printed after an audited campaign.
func RenderAudit(rep sim.AuditReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Soundness audit: %d runs, %d checks, %d violations\n",
		rep.Runs, rep.Checks, rep.Violations)
	names := make([]string, 0, len(rep.Invariants))
	for name := range rep.Invariants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		iv := rep.Invariants[name]
		status := "ok"
		if iv.Violations > 0 {
			status = "VIOLATED"
		}
		fmt.Fprintf(&sb, "  %-15s %8d checks %8d violations  %s\n",
			name, iv.Checks, iv.Violations, status)
		if iv.FirstViolation != "" {
			fmt.Fprintf(&sb, "    first: %s\n", iv.FirstViolation)
		}
	}
	return sb.String()
}
