package experiments

import (
	"context"
	"fmt"
	"strings"

	"efl/internal/isa"
	"efl/internal/runner"
	"efl/internal/sim"
)

// WTRow is the A4 ablation outcome for one benchmark: analysis-time mean
// execution time and EFL stall share under the three DL1 write policies.
type WTRow struct {
	Code string
	// Mean analysis-mode execution times (cycles).
	WriteBack  float64
	WTNoAlloc  float64
	WTAllocate float64
	// EFL stall cycles per benchmark run (mean), showing where the
	// WT+allocate time goes.
	StallWB    float64
	StallNoAll float64
	StallAlloc float64
}

// AblationWriteThrough (A4) reproduces the paper's footnote 5: "If a
// write-through DL1 cache were used, LLC accesses would be much more
// frequent due to store instructions. In such case, either write
// operations are not allowed to allocate data in the LLC on a miss or
// stalls may be frequent with EFL, thus harming WCET estimates and
// average performance." The ablation measures, under EFL, the paper's
// chosen write-back design against both write-through variants.
func AblationWriteThrough(opt Options, mid int64, codes []string) ([]WTRow, error) {
	opt = opt.withDefaults()
	return runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, codes,
		func(ctx context.Context, pool *sim.Pool, _ int, code string) (WTRow, error) {
			spec, err := specByCode(code)
			if err != nil {
				return WTRow{}, err
			}
			prog := spec.Build()
			row := WTRow{Code: code}
			for variant := 0; variant < 3; variant++ {
				cfg := eflConfig(mid)
				switch variant {
				case 1:
					cfg.DL1WriteThrough = true
				case 2:
					cfg.DL1WriteThrough = true
					cfg.WTAllocate = true
				}
				seed := campaignSeed(opt.Seed, fmt.Sprintf("%s/wt=%d", code, variant))
				var meanT, meanStall float64
				m, err := analysisPlatform(pool, cfg, prog, seed)
				if err != nil {
					return row, err
				}
				runs := opt.Runs
				if runs > 60 {
					runs = 60 // means converge quickly; A4 needs no tail fit
				}
				var res sim.Result
				for r := 0; r < runs; r++ {
					if err := ctx.Err(); err != nil {
						return row, err
					}
					if err := m.RunInto(&res); err != nil {
						return row, err
					}
					if err := pool.AuditRun(cfg.WithAnalysis(0), &res); err != nil {
						return row, err
					}
					meanT += float64(res.PerCore[0].Cycles)
					meanStall += float64(res.PerCore[0].EFL.StallCycles)
				}
				meanT /= float64(runs)
				meanStall /= float64(runs)
				switch variant {
				case 0:
					row.WriteBack, row.StallWB = meanT, meanStall
				case 1:
					row.WTNoAlloc, row.StallNoAll = meanT, meanStall
				case 2:
					row.WTAllocate, row.StallAlloc = meanT, meanStall
				}
			}
			return row, nil
		})
}

// analysisPlatform fetches an analysis-mode platform for prog on core 0
// from the worker's pool.
func analysisPlatform(pool *sim.Pool, cfg sim.Config, prog *isa.Program, seed uint64) (*sim.Multicore, error) {
	progs := make([]*isa.Program, cfg.Cores)
	progs[0] = prog
	return pool.Get(cfg.WithAnalysis(0), progs, seed)
}

// RenderWriteThrough prints the A4 table.
func RenderWriteThrough(rows []WTRow, mid int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation A4: DL1 write policy under EFL (MID=%d), analysis-mode means\n", mid)
	fmt.Fprintf(&sb, "%-5s %12s %14s %14s %22s\n",
		"bench", "write-back", "WT no-alloc", "WT allocate", "stall share (WB/NA/AL)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-5s %12.0f %14.0f %14.0f      %5.1f%% /%5.1f%% /%5.1f%%\n",
			r.Code, r.WriteBack, r.WTNoAlloc, r.WTAllocate,
			100*r.StallWB/r.WriteBack, 100*r.StallNoAll/r.WTNoAlloc, 100*r.StallAlloc/r.WTAllocate)
	}
	return sb.String()
}
