package experiments

import (
	"context"
	"fmt"
	"strings"

	"efl/internal/mbpta"
	"efl/internal/runner"
	"efl/internal/sim"
)

// ConvergenceRow tracks how one benchmark's pWCET estimate stabilises as
// measurement runs accumulate — the paper's §3.3 claim is that MBPTA's
// convergence criteria are met "between 300 and 1,000 runs" on this kind
// of platform.
type ConvergenceRow struct {
	Code string
	// Estimates maps run counts to the pWCET estimate at Options.Prob.
	Estimates map[int]float64
	// CollectorRuns is where the iterative protocol (grow until the
	// estimate is stable within 2%) actually stopped.
	CollectorRuns int
	// FinalEstimate is the collector's final pWCET.
	FinalEstimate float64
}

// ConvergenceResult is the E7 extension experiment.
type ConvergenceResult struct {
	Opt       Options
	RunCounts []int
	MID       int64
	Rows      []ConvergenceRow
}

// ConvergenceStudy measures pWCET stability across sample sizes and runs
// the full iterative collection protocol for each benchmark under EFL.
func ConvergenceStudy(opt Options, mid int64, runCounts []int, codes []string) (*ConvergenceResult, error) {
	opt = opt.withDefaults()
	if len(runCounts) == 0 {
		runCounts = []int{100, 200, 400, 800}
	}
	res := &ConvergenceResult{Opt: opt, RunCounts: runCounts, MID: mid}
	maxRuns := runCounts[len(runCounts)-1]
	rows, err := runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, codes,
		func(ctx context.Context, pool *sim.Pool, _ int, code string) (ConvergenceRow, error) {
			spec, err := specByCode(code)
			if err != nil {
				return ConvergenceRow{}, err
			}
			prog := spec.Build()
			seed := campaignSeed(opt.Seed, fmt.Sprintf("%s/convergence", code))
			// One long collection, analysed at growing prefixes: this is how
			// the iterative protocol sees the data, and it keeps the study
			// cheap (no re-simulation per point).
			times, err := pool.CollectAnalysisTimes(ctx, eflConfig(mid), prog, maxRuns, seed)
			if err != nil {
				return ConvergenceRow{}, err
			}
			row := ConvergenceRow{Code: code, Estimates: map[int]float64{}}
			for _, n := range runCounts {
				if n > len(times) {
					continue
				}
				a, err := mbpta.Analyze(times[:n], mbpta.Options{SkipIIDTests: true})
				if err != nil {
					return ConvergenceRow{}, fmt.Errorf("%s at %d runs: %w", code, n, err)
				}
				row.Estimates[n] = a.PWCET(opt.Prob)
			}
			// The iterative protocol over the same measurement stream.
			cursor := 0
			collector := &mbpta.Collector{
				Measure: func() float64 {
					if cursor < len(times) {
						v := times[cursor]
						cursor++
						return v
					}
					// Past the precollected window: extend deterministically.
					extra, err := pool.CollectAnalysisTimes(ctx, eflConfig(mid), prog, 50, seed+uint64(cursor))
					if err != nil || len(extra) == 0 {
						return times[len(times)-1]
					}
					times = append(times, extra...)
					v := times[cursor]
					cursor++
					return v
				},
				MaxRuns:   1000,
				Criterion: mbpta.ConvergenceCriterion{Prob: opt.Prob, Tol: 0.02},
				Options:   mbpta.Options{SkipIIDTests: true},
			}
			final, used, err := collector.Run()
			if err != nil {
				return ConvergenceRow{}, fmt.Errorf("%s: collector: %w", code, err)
			}
			row.CollectorRuns = len(used)
			row.FinalEstimate = final.PWCET(opt.Prob)
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render prints the study: estimates normalised to the largest-sample
// estimate, plus the collector's stopping point.
func (r *ConvergenceResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "MBPTA convergence under EFL (MID=%d), pWCET@%.0e normalised to the largest sample\n",
		r.MID, r.Opt.Prob)
	fmt.Fprintf(&sb, "%-5s", "bench")
	for _, n := range r.RunCounts {
		fmt.Fprintf(&sb, " %8d", n)
	}
	fmt.Fprintf(&sb, " %16s\n", "collector stops")
	last := r.RunCounts[len(r.RunCounts)-1]
	for _, row := range r.Rows {
		base := row.Estimates[last]
		fmt.Fprintf(&sb, "%-5s", row.Code)
		for _, n := range r.RunCounts {
			fmt.Fprintf(&sb, " %8.3f", row.Estimates[n]/base)
		}
		fmt.Fprintf(&sb, " %10d runs\n", row.CollectorRuns)
	}
	return sb.String()
}
