package experiments

import (
	"context"
	"math"
	"testing"

	"efl/internal/sim"
)

// TestConvergedCampaignBatchInvariant: the convergence-stopped sample —
// length and every value — must not depend on the lockstep batch width,
// because per-run seeds are derived from the run index.
func TestConvergedCampaignBatchInvariant(t *testing.T) {
	spec, err := specByCode("CA")
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpt().withDefaults()
	opt.Runs = 300
	opt.Converge = true
	seed := campaignSeed(opt.Seed, "CA/EFL500")
	var ref []float64
	for _, k := range []int{1, 3, 8} {
		o := opt
		o.BatchSize = k
		_, times, err := pooledPWCETConverged(context.Background(), o.newPool(), o, eflConfig(500), spec.Build(), seed)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if ref == nil {
			ref = times
			t.Logf("converged at %d runs (ceiling %d)", len(times), o.Runs)
			continue
		}
		if len(times) != len(ref) {
			t.Fatalf("k=%d stopped at %d runs, k=1 at %d", k, len(times), len(ref))
		}
		for i := range times {
			if times[i] != ref[i] {
				t.Fatalf("k=%d run %d time %v != k=1 time %v", k, i, times[i], ref[i])
			}
		}
	}
}

// TestConvergedCampaignAgreesWithFixedCount is the acceptance check: a
// convergence-stopped campaign must reproduce the fixed-count pWCET
// estimate within the A4 agreement threshold (Options.EVTThreshold, the
// same relative-disagreement bound the auditor's EVT cross-check uses).
// The comparison runs at evtCheckProb, like A4 itself: at 1e-15 two
// honest estimates extrapolate too far for a threshold comparison to
// mean anything (see the evtCheckProb comment in engine.go).
func TestConvergedCampaignAgreesWithFixedCount(t *testing.T) {
	spec, err := specByCode("CA")
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpt().withDefaults()
	opt.Runs = 300
	seed := campaignSeed(opt.Seed, "CA/EFL500")
	prog := spec.Build()

	fixed, fixedTimes, err := pooledPWCET(context.Background(), opt.newPool(), eflConfig(500), prog, opt.Runs, seed, opt.Prob)
	if err != nil {
		t.Fatal(err)
	}
	copt := opt
	copt.Converge = true
	conv, convTimes, err := pooledPWCETConverged(context.Background(), copt.newPool(), copt, eflConfig(500), prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(convTimes) > len(fixedTimes) {
		t.Fatalf("converged campaign used %d runs, more than the fixed count %d", len(convTimes), len(fixedTimes))
	}
	fa, err := pwcetFromTimes(fixedTimes, "CA", evtCheckProb)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := pwcetFromTimes(convTimes, "CA", evtCheckProb)
	if err != nil {
		t.Fatal(err)
	}
	disagree := math.Abs(ca.PWCET-fa.PWCET) / math.Max(ca.PWCET, fa.PWCET)
	if disagree > opt.EVTThreshold {
		t.Fatalf("converged pWCET %.0f (at %d runs) vs fixed-count %.0f (at %d runs) at p=%g: disagreement %.3f > A4 threshold %.2f",
			ca.PWCET, len(convTimes), fa.PWCET, len(fixedTimes), evtCheckProb, disagree, opt.EVTThreshold)
	}
	t.Logf("converged %d runs pWCET %.0f vs fixed %d runs pWCET %.0f at p=%g (disagreement %.3f); at %g: %.0f vs %.0f",
		len(convTimes), ca.PWCET, len(fixedTimes), fa.PWCET, evtCheckProb, disagree, opt.Prob, conv.PWCET, fixed.PWCET)
}

// TestConvergedCampaignAudited: a converged campaign under the auditor
// records one run check per consumed run and stays clean.
func TestConvergedCampaignAudited(t *testing.T) {
	spec, err := specByCode("CA")
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpt().withDefaults()
	opt.Runs = 200
	opt.Converge = true
	opt.Audit = sim.NewAuditor()
	seed := campaignSeed(opt.Seed, "CA/EFL500")
	_, times, err := pooledPWCETConverged(context.Background(), opt.newPool(), opt, eflConfig(500), spec.Build(), seed)
	if err != nil {
		t.Fatal(err)
	}
	opt.auditEVT("CA/EFL500", times)
	if err := opt.Audit.Err(); err != nil {
		t.Fatalf("auditor flagged the converged campaign: %v", err)
	}
	rep := opt.Audit.Report()
	if rep.Runs != int64(len(times)) {
		t.Fatalf("auditor saw %d runs, campaign consumed %d", rep.Runs, len(times))
	}
}

// TestRunCampaignsConverge: the campaign driver end-to-end under Converge
// — results keyed and rendered like the fixed-count path, with Runs
// reporting the convergence stopping point.
func TestRunCampaignsConverge(t *testing.T) {
	opt := smallOpt().withDefaults()
	opt.Runs = 200
	opt.Converge = true
	opt.Parallelism = 1
	spec, err := specByCode("CA")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCampaigns(opt, []campaign{{bench: spec, config: "EFL500", cfg: eflConfig(500)}})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := out["CA/EFL500"]
	if !ok {
		t.Fatalf("campaign missing from results: %v", out)
	}
	if res.Runs <= 0 || res.Runs > opt.Runs {
		t.Fatalf("converged campaign Runs = %d, want in (0,%d]", res.Runs, opt.Runs)
	}
	if res.PWCET < res.Max {
		t.Fatalf("pWCET %v below observed max %v", res.PWCET, res.Max)
	}
}
