package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"efl/internal/bench"
	"efl/internal/fault"
	"efl/internal/isa"
	"efl/internal/runner"
	"efl/internal/sim"
	"efl/internal/trace"
)

// The fault-injection detection matrix (-exp faultmatrix): every fault
// class from internal/fault is armed against a scenario chosen to excite
// it, the runs are fed to a soundness auditor (invariants A1-A4), and the
// matrix reports which detection channel — an auditor invariant, the
// deterministic runner watchdog, or the runner's panic isolation — caught
// each class. This is the campaign that turns the auditor from
// asserted-correct into demonstrated-effective: a fault class nobody
// catches fails the campaign.
//
// The campaign runs on runner.MapResilient, deliberately including jobs
// that die (a saturated count-down counter hangs its runs; the job-panic
// scenario panics), so it also demonstrates graceful degradation: the
// campaign completes, the artifact carries a per-job status/error block,
// and the process exits with the distinct degraded-run code.

// faultScenario is one detection-matrix job.
type faultScenario struct {
	Class string
	// Analysis selects analysis mode (the analysed task is Codes[0]);
	// deployment mode otherwise (Codes[i] runs on core i, rest idle).
	Analysis bool
	Codes    []string
	// SharedCode, when set, runs the named shared-data workload
	// (bench.SharedByCode) on every core with the MSI layer enabled, and the
	// job replays each run's coherence trace through the A5 invariant.
	SharedCode string
	MID        int64 // 0 disables EFL
	Plan       fault.Plan
	// WDMult sizes the watchdog budget: max calibration cycles x WDMult.
	WDMult int64
	// Propagate lets a watchdog kill fail the whole job (the hang-class
	// demo) instead of being counted and survived run by run.
	Propagate bool
	// Expect names the detection channel the scenario is designed to trip.
	Expect string
}

// controlClass labels the fault-free control scenario, which must come out
// clean (no false positives).
const controlClass = "none"

// faultScenarios builds the detection-matrix jobs. Benchmarks are chosen
// to excite each fault's signature: MA (streaming, misses far more often
// than any MID admits) for the eviction-rate faults, A2 (LLC-sensitive,
// ~15.5KB resident) for the capacity/corruption faults that only show up
// as slowdown, CA (cache exerciser that fits the LLC) elsewhere.
func faultScenarios() []faultScenario {
	return []faultScenario{
		{Class: controlClass, Codes: []string{"CA"}, MID: 500, WDMult: 4,
			Expect: "-"},
		{Class: string(fault.EFLStuckEAB), Codes: []string{"MA"}, MID: 500,
			Plan: fault.Single(fault.EFLStuckEAB, 0), WDMult: 4,
			Expect: sim.AuditEvictionRate},
		{Class: string(fault.EFLSaturatedCDC), Codes: []string{"CA"}, MID: 500,
			Plan: fault.Single(fault.EFLSaturatedCDC, 0), WDMult: 4, Propagate: true,
			Expect: "watchdog (job killed)"},
		{Class: string(fault.EFLDeadCRG), Analysis: true, Codes: []string{"CA"}, MID: 500,
			Plan: fault.Single(fault.EFLDeadCRG, fault.AllCores), WDMult: 4,
			Expect: sim.AuditEvictionRate},
		{Class: string(fault.CacheDisabledWays), Codes: []string{"A2"}, MID: 0,
			Plan: fault.Single(fault.CacheDisabledWays, fault.AllCores), WDMult: 2,
			Expect: "watchdog"},
		{Class: string(fault.CacheTagFlip), Codes: []string{"A2"}, MID: 0,
			Plan: fault.Single(fault.CacheTagFlip, fault.AllCores), WDMult: 2,
			Expect: "watchdog"},
		{Class: string(fault.RNGStuck), Codes: []string{"MA"}, MID: 500,
			Plan: fault.Single(fault.RNGStuck, 0), WDMult: 4,
			Expect: sim.AuditEvictionRate},
		{Class: string(fault.RNGBiased), Codes: []string{"A2"}, MID: 0,
			Plan: fault.Single(fault.RNGBiased, fault.AllCores), WDMult: 2,
			Expect: "watchdog"},
		{Class: string(fault.BusStarvation), Codes: []string{"CA", "CA"}, MID: 0,
			Plan: fault.Single(fault.BusStarvation, 1), WDMult: 2,
			Expect: "watchdog"},
		{Class: string(fault.MemOverrun), Codes: []string{"CA"}, MID: 0,
			Plan: fault.Single(fault.MemOverrun, fault.AllCores), WDMult: 4,
			Expect: sim.AuditUBD},
		{Class: string(fault.CohDroppedInval), SharedCode: "SC", MID: 500,
			Plan: fault.Single(fault.CohDroppedInval, 1), WDMult: 4,
			Expect: sim.AuditCoherence},
		{Class: string(fault.JobPanic),
			Expect: "recover"},
	}
}

// FaultMatrixRow is one fault class's detection outcome.
type FaultMatrixRow struct {
	Class string `json:"class"`
	Mode  string `json:"mode"`
	// Status/Error/Attempts mirror the runner outcome: a row whose job
	// died (watchdog, panic) records how, and the campaign is degraded.
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts"`
	// Runs is how many fault-injected runs completed and were audited.
	Runs int `json:"runs"`
	// WatchdogKills counts runs killed by the cycle budget and survived
	// (quarantine + fresh platform) within the job.
	WatchdogKills int `json:"watchdog_kills"`
	// Budget is the armed watchdog budget in cycles (calibrated).
	Budget int64 `json:"budget,omitempty"`
	// Invariants is the row's private audit report, keyed by invariant.
	Invariants map[string]sim.InvariantReport `json:"invariants,omitempty"`
	// DetectedBy lists the channels that flagged the fault: invariant
	// names, "watchdog", "recover".
	DetectedBy []string `json:"detected_by"`
	Detected   bool     `json:"detected"`
	Expect     string   `json:"expect"`
}

// FaultMatrixResult is the -exp faultmatrix artifact payload.
type FaultMatrixResult struct {
	Opt  Options          `json:"opt"`
	Rows []FaultMatrixRow `json:"rows"`
	// AllDetected: every fault class was flagged by at least one channel
	// AND the fault-free control row stayed clean.
	AllDetected bool `json:"all_detected"`
	// Degraded: at least one job did not complete (status != ok). The
	// matrix campaign is degraded by design — hang and panic classes kill
	// their jobs — and cmd/experiments maps this to the distinct exit code.
	Degraded bool `json:"degraded"`
}

// FaultMatrix runs the detection-matrix campaign.
func FaultMatrix(opt Options) (*FaultMatrixResult, error) {
	opt = opt.withDefaults()
	scens := faultScenarios()
	emit := opt.progressSink()

	// Each job runs against its own private auditor (the row IS the audit
	// report); the campaign-global -audit auditor must stay clean, since
	// injected violations are expected, not soundness bugs.
	ropt := runner.ResilientOptions{
		Options: opt.runnerOptions(),
		Retries: opt.Retries,
		IsWatchdog: func(err error) bool {
			return errors.Is(err, sim.ErrWatchdog)
		},
	}
	outcomes, err := runner.MapResilient(opt.context(), ropt,
		opt.newPool,
		func(p *sim.Pool) { p.QuarantineAll() },
		scens,
		func(ctx context.Context, pool *sim.Pool, _ int, sc faultScenario) (FaultMatrixRow, error) {
			row, err := runFaultScenario(ctx, opt, pool, sc)
			if err == nil {
				emit(fmt.Sprintf("faultmatrix %-20s runs=%d kills=%d detected=%v",
					sc.Class, row.Runs, row.WatchdogKills, len(row.DetectedBy) > 0))
			}
			return row, err
		})
	if err != nil {
		return nil, err
	}

	res := &FaultMatrixResult{Opt: opt, AllDetected: true}
	for i, oc := range outcomes {
		sc := scens[i]
		row := oc.Value
		row.Class = sc.Class
		row.Mode = scenarioMode(sc)
		row.Expect = sc.Expect
		row.Status = string(oc.Status)
		row.Error = oc.Error
		row.Attempts = oc.Attempts
		switch oc.Status {
		case runner.StatusWatchdog:
			row.DetectedBy = append(row.DetectedBy, "watchdog")
		case runner.StatusPanicked:
			row.DetectedBy = append(row.DetectedBy, "recover")
		}
		sort.Strings(row.DetectedBy)
		row.Detected = len(row.DetectedBy) > 0
		if sc.Class == controlClass {
			if row.Detected || row.Status != string(runner.StatusOK) {
				// A flagged control is a false positive: the matrix fails.
				res.AllDetected = false
			}
		} else if !row.Detected {
			res.AllDetected = false
		}
		if row.Status != string(runner.StatusOK) {
			res.Degraded = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// scenarioMode renders the scenario's simulation mode for the matrix.
func scenarioMode(sc faultScenario) string {
	switch {
	case len(sc.Codes) == 0 && sc.SharedCode == "":
		return "-"
	case sc.Analysis:
		return "analysis"
	default:
		return "deployment"
	}
}

// scenarioConfig builds the platform configuration and program set.
func scenarioConfig(sc faultScenario) (sim.Config, []*isa.Program, error) {
	cfg := sim.DefaultConfig()
	if sc.MID > 0 {
		cfg = cfg.WithEFL(sc.MID)
	}
	if sc.Analysis {
		cfg = cfg.WithAnalysis(0)
	}
	progs := make([]*isa.Program, cfg.Cores)
	if sc.SharedCode != "" {
		spec, err := bench.SharedByCode(sc.SharedCode)
		if err != nil {
			return cfg, nil, err
		}
		cfg.SharedDataBytes = spec.SharedBytes
		for i := range progs {
			progs[i] = spec.Build(i)
		}
		return cfg, progs, nil
	}
	for i, code := range sc.Codes {
		s, err := specByCode(code)
		if err != nil {
			return cfg, nil, err
		}
		progs[i] = s.Build()
	}
	return cfg, progs, nil
}

// runFaultScenario executes one matrix job: calibrate the watchdog budget
// on fault-free runs, then arm the scenario's plan and audit every
// injected run. A watchdog kill quarantines the platform (its mid-run
// state must never be pooled again) and either fails the job (Propagate:
// the hang-class demo) or is counted and survived.
func runFaultScenario(ctx context.Context, opt Options, pool *sim.Pool, sc faultScenario) (FaultMatrixRow, error) {
	row := FaultMatrixRow{Class: sc.Class}
	if sc.Class == string(fault.JobPanic) {
		panic("fault injection: deliberate job panic (software fault class)")
	}
	cfg, progs, err := scenarioConfig(sc)
	if err != nil {
		return row, err
	}
	seed := campaignSeed(opt.Seed, "faultmatrix/"+sc.Class)

	// Calibration: fault-free runs under the same seeds discipline size
	// the budget. The multiplier absorbs run-to-run variance of the
	// randomised platform; a fault that slows the scenario past it is a
	// watchdog detection by construction.
	var res sim.Result
	maxCycles := int64(0)
	for i := 0; i < opt.FaultCalib; i++ {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		m, err := pool.Get(cfg, progs, seed+uint64(i))
		if err != nil {
			return row, err
		}
		if err := m.RunInto(&res); err != nil {
			return row, fmt.Errorf("calibration run %d: %w", i, err)
		}
		maxCycles = max(maxCycles, res.TotalCycles)
	}
	budget := maxCycles * sc.WDMult
	row.Budget = budget

	aud := sim.NewAuditor()
	// Coherence scenarios replay every injected run's protocol trace
	// through the A5 invariant: a dropped invalidation leaves a stale L1
	// copy whose later local hit contradicts the re-derived directory state.
	var cohBuf *trace.Buffer
	if sc.SharedCode != "" {
		cohBuf = trace.NewBuffer(1<<20).Keep(
			trace.EvCohFetch, trace.EvCohUpgrade, trace.EvCohInval, trace.EvCohHit)
	}
	for i := 0; i < opt.FaultRuns; i++ {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		m, err := pool.Get(cfg, progs, seed+1000+uint64(i))
		if err != nil {
			return row, err
		}
		m.SetWatchdog(budget)
		if cohBuf != nil {
			cohBuf.Reset()
			m.SetTracer(cohBuf)
		}
		if len(sc.Plan.Injections) > 0 {
			if err := m.ArmFaults(sc.Plan); err != nil {
				return row, err
			}
		}
		err = m.RunInto(&res)
		if cohBuf != nil {
			m.SetTracer(nil)
		}
		if err != nil {
			// The platform died mid-run: whatever state it holds is not
			// trustworthy. Never hand it back to the pool.
			pool.Quarantine(cfg)
			if !errors.Is(err, sim.ErrWatchdog) {
				return row, fmt.Errorf("fault run %d: %w", i, err)
			}
			if sc.Propagate {
				return row, fmt.Errorf("fault run %d: %w", i, err)
			}
			row.WatchdogKills++
			continue
		}
		// Violations are the point; the per-row report collects them.
		_ = aud.CheckRun(cfg, &res)
		if cohBuf != nil {
			_ = aud.CheckCoherence(cfg, cohBuf.Events())
		}
		row.Runs++
	}

	rep := aud.Report()
	row.Invariants = rep.Invariants
	for name, iv := range rep.Invariants {
		if iv.Violations > 0 {
			row.DetectedBy = append(row.DetectedBy, name)
		}
	}
	if row.WatchdogKills > 0 {
		row.DetectedBy = append(row.DetectedBy, "watchdog")
	}
	sort.Strings(row.DetectedBy)
	return row, nil
}

// matrixChannels are the detection-matrix columns, in print order.
var matrixChannels = []struct{ head, name string }{
	{"A1", sim.AuditCycleSum},
	{"A2", sim.AuditUBD},
	{"A3", sim.AuditEvictionRate},
	{"A4", sim.AuditEVTCrossCheck},
	{"A5", sim.AuditCoherence},
	{"WD", "watchdog"},
	{"RC", "recover"},
}

// Render prints the detection matrix.
func (r *FaultMatrixResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault-injection detection matrix: %d injected runs/class, watchdog budget = %d fault-free calibration runs x multiplier\n",
		r.Opt.FaultRuns, r.Opt.FaultCalib)
	fmt.Fprintf(&sb, "channels: A1 cycle-sum, A2 ubd, A3 eviction-rate, A4 evt-crosscheck, A5 coherence, WD runner watchdog, RC panic recovery\n\n")
	fmt.Fprintf(&sb, "%-20s %-10s %-9s %4s %5s", "class", "mode", "status", "runs", "kills")
	for _, ch := range matrixChannels {
		fmt.Fprintf(&sb, "  %2s", ch.head)
	}
	fmt.Fprintf(&sb, "  %s\n", "detected by")
	detected, classes := 0, 0
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-20s %-10s %-9s %4d %5d", row.Class, row.Mode, row.Status, row.Runs, row.WatchdogKills)
		for _, ch := range matrixChannels {
			mark := "."
			for _, d := range row.DetectedBy {
				if d == ch.name {
					mark = "X"
				}
			}
			fmt.Fprintf(&sb, "  %2s", mark)
		}
		by := strings.Join(row.DetectedBy, ",")
		if by == "" {
			by = "-"
		}
		fmt.Fprintf(&sb, "  %s\n", by)
		if row.Class != controlClass {
			classes++
			if row.Detected {
				detected++
			}
		}
	}
	fmt.Fprintf(&sb, "\n%d/%d fault classes detected", detected, classes)
	if r.AllDetected {
		fmt.Fprintf(&sb, "; all fault classes detected and control clean")
	} else {
		fmt.Fprintf(&sb, "; DETECTION GAP (or control false positive)")
	}
	if r.Degraded {
		fmt.Fprintf(&sb, "\ncampaign degraded: failed jobs recorded per-row (status/error), artifact still complete; failed simulators quarantined")
	}
	fmt.Fprintf(&sb, "\nA4 is exercised by MBPTA campaigns (-audit) rather than single-run faults; see DESIGN.md section 10\n")
	return sb.String()
}
