package experiments

import (
	"strings"
	"testing"
)

func TestAsciiCurveBasics(t *testing.T) {
	curve := []float64{0.5, 0.3, 0.1, 0.0, -0.1, -0.2}
	out := AsciiCurve("test curve", curve, 24, 8)
	if !strings.Contains(out, "test curve") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no points plotted")
	}
	if !strings.Contains(out, "+50.0%") || !strings.Contains(out, "-20.0%") {
		t.Fatalf("extreme labels missing:\n%s", out)
	}
	if !strings.Contains(out, "0.0%") {
		t.Fatal("zero axis label missing")
	}
	if !strings.Contains(out, "rank 1 .. 6") {
		t.Fatal("rank footer missing")
	}
	// Every plot line is boxed and equal width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var boxed int
	for _, l := range lines {
		if strings.Contains(l, "|") {
			boxed++
			if len(l) != len(lines[1]) {
				t.Fatalf("ragged plot rows:\n%s", out)
			}
		}
	}
	if boxed != 8 {
		t.Fatalf("plot has %d rows, want 8", boxed)
	}
}

func TestAsciiCurveAllPositive(t *testing.T) {
	out := AsciiCurve("pos", []float64{0.4, 0.3, 0.2}, 16, 6)
	// The zero axis must still be drawn (at the bottom).
	if !strings.Contains(out, "-") {
		t.Fatal("zero axis missing for all-positive curve")
	}
}

func TestAsciiCurveEmptyAndTiny(t *testing.T) {
	if out := AsciiCurve("empty", nil, 10, 5); !strings.Contains(out, "no data") {
		t.Fatal("empty curve not handled")
	}
	// Constant curve must not divide by zero.
	out := AsciiCurve("const", []float64{0, 0, 0}, 4, 2)
	if !strings.Contains(out, "*") {
		t.Fatal("constant curve not plotted")
	}
}
