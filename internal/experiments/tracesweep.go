package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"efl/internal/isa"
	"efl/internal/runner"
	"efl/internal/sim"
	"efl/internal/trace"
	"efl/internal/workload"
)

// The tracesweep campaign (-exp tracesweep): a grid of synthetic
// memory-access traces spanning the axes that drive shared-cache
// behaviour — locality (hot set fits the LLC), footprint (streams past
// it), sharing (a coherent cross-core window) and stride (spatial
// density) — each generated deterministically, replayed into programs
// through internal/workload, and pushed through the full pipeline: an
// analysis-mode MBPTA fit on the observed core plus audited deployment
// runs (A1-A3 always, A5 on the sharing scenarios). The campaign is the
// evidence that traced workloads are first-class: content-addressed
// inputs reach the same estimator, the same invariants, the same
// artifacts as the built-in benchmarks.

// TracesweepScenario is one grid point: a per-core GenSpec template
// (Seed and Name are filled per core by the campaign).
type TracesweepScenario struct {
	Name string           `json:"name"`
	Spec workload.GenSpec `json:"spec"`
}

// tracesweepGrid is the campaign's scenario grid. Records and gaps are
// sized so a full per-core replay stays far inside the dynamic budget
// while still cycling the generator through every address regime.
func tracesweepGrid() []TracesweepScenario {
	return []TracesweepScenario{
		// Hot set fits every level: locality keeps the EFL fetch count low.
		{Name: "hot-fit", Spec: workload.GenSpec{
			Records: 2000, FootprintBytes: 8 * 1024, Locality: 0.9,
			HotBytes: 2048, StoreFrac: 0.3, MeanGap: 2,
		}},
		// Pure streaming past the LLC: every access marches the cursor.
		{Name: "stream-llc", Spec: workload.GenSpec{
			Records: 2000, FootprintBytes: 256 * 1024, Locality: 0,
			StrideBytes: 64, StoreFrac: 0.1, MeanGap: 1,
		}},
		// A coherent shared window under write pressure: the MSI layer and
		// invariant A5 are on for this row.
		{Name: "shared-mix", Spec: workload.GenSpec{
			Records: 2000, FootprintBytes: 32 * 1024, SharedBytes: 4096,
			SharedFrac: 0.3, Locality: 0.7, StoreFrac: 0.4, MeanGap: 2,
		}},
		// Wide strides: spatially sparse, set-conflict heavy.
		{Name: "stride-wide", Spec: workload.GenSpec{
			Records: 2000, FootprintBytes: 64 * 1024, Locality: 0.25,
			StrideBytes: 256, StoreFrac: 0.2, MeanGap: 3,
		}},
	}
}

// TracesweepRow is one scenario's campaign outcome.
type TracesweepRow struct {
	Name string `json:"name"`
	// TraceHash is the observed core's trace content address (SHA-256 of
	// its bytes) — the same identity POST /v1/trace would assign it.
	TraceHash string `json:"trace_hash"`
	// Records and ReplayInstr describe the observed core's trace.
	Records     uint64 `json:"records"`
	ReplayInstr uint64 `json:"replay_instr"`
	SharedBytes int    `json:"shared_bytes"`
	// AnalysisRuns and the fit: pWCET at Options.Prob, sample mean, max.
	AnalysisRuns int     `json:"analysis_runs"`
	PWCET        float64 `json:"pwcet"`
	Mean         float64 `json:"mean"`
	Max          float64 `json:"max"`
	// DeployRuns audited all-core deployment runs; MeanCycles is their
	// mean makespan (slowest core).
	DeployRuns int     `json:"deploy_runs"`
	MeanCycles float64 `json:"mean_cycles"`
	// Invariants is the scenario's private audit report.
	Invariants map[string]sim.InvariantReport `json:"invariants,omitempty"`
	// A3Holds: the EFL eviction-rate bound held on every audited run.
	// A5Holds: the MSI protocol stayed sound (sharing scenarios only;
	// true and meaningless when Shared is false).
	A3Holds bool `json:"a3_holds"`
	A5Holds bool `json:"a5_holds"`
	Shared  bool `json:"shared"`
}

// TracesweepResult is the -exp tracesweep artifact payload.
type TracesweepResult struct {
	Opt  Options         `json:"opt"`
	MID  int64           `json:"mid"`
	Rows []TracesweepRow `json:"rows"`
	// AllSound: every audited invariant held on every run of every
	// scenario.
	AllSound bool `json:"all_sound"`
}

// tracesweepAnalysisRuns bounds the MBPTA sample per scenario: at least
// enough for a stable tail fit, capped so the sweep stays a smoke-sized
// campaign even under the default -runs 300.
func tracesweepAnalysisRuns(opt Options) int {
	runs := opt.Runs
	if runs < 30 {
		runs = 30
	}
	if runs > 300 {
		runs = 300
	}
	return runs
}

// tracesweepDeployRuns bounds the audited deployment runs per scenario.
func tracesweepDeployRuns(opt Options) int {
	runs := opt.Runs
	if runs > 6 {
		runs = 6
	}
	if runs < 2 {
		runs = 2
	}
	return runs
}

// Tracesweep runs the synthetic-trace scenario sweep.
func Tracesweep(opt Options, mid int64) (*TracesweepResult, error) {
	opt = opt.withDefaults()
	emit := opt.progressSink()

	rows, err := runner.MapWithState(opt.context(), opt.runnerOptions(), opt.newPool, tracesweepGrid(),
		func(ctx context.Context, pool *sim.Pool, _ int, sc TracesweepScenario) (TracesweepRow, error) {
			row, err := runTracesweepScenario(ctx, opt, pool, sc, mid)
			if err == nil {
				emit(fmt.Sprintf("tracesweep %-11s pWCET=%.0f max=%.0f runs=%d a3=%v a5=%v",
					sc.Name, row.PWCET, row.Max, row.AnalysisRuns, row.A3Holds, row.A5Holds))
			}
			return row, err
		})
	if err != nil {
		return nil, err
	}

	res := &TracesweepResult{Opt: opt, MID: mid, Rows: rows, AllSound: true}
	for _, row := range rows {
		for _, iv := range row.Invariants {
			if iv.Violations > 0 {
				res.AllSound = false
			}
		}
	}
	return res, nil
}

// runTracesweepScenario generates, replays, fits and audits one grid
// point: per-core traces with per-core derived seeds, an analysis-mode
// MBPTA campaign on core 0's replay, then audited all-core deployment
// runs (with the coherence trace and A5 on sharing scenarios).
func runTracesweepScenario(ctx context.Context, opt Options, pool *sim.Pool, sc TracesweepScenario, mid int64) (TracesweepRow, error) {
	row := TracesweepRow{Name: sc.Name, SharedBytes: sc.Spec.SharedBytes, Shared: sc.Spec.SharedBytes > 0}
	cfg := sim.DefaultConfig()
	if mid > 0 {
		cfg = cfg.WithEFL(mid)
	}
	cfg.SharedDataBytes = sc.Spec.SharedBytes

	progs := make([]*isa.Program, cfg.Cores)
	for i := range progs {
		spec := sc.Spec
		spec.Name = fmt.Sprintf("%s/core%d", sc.Name, i)
		spec.Seed = campaignSeed(opt.Seed, fmt.Sprintf("tracesweep/%s/core%d", sc.Name, i))
		data, err := spec.Generate()
		if err != nil {
			return row, fmt.Errorf("%s: %w", spec.Name, err)
		}
		meta, err := workload.Validate(data)
		if err != nil {
			return row, fmt.Errorf("%s: generated trace rejected: %w", spec.Name, err)
		}
		prog, err := workload.Replay(spec.Name, data)
		if err != nil {
			return row, fmt.Errorf("%s: %w", spec.Name, err)
		}
		progs[i] = prog
		if i == 0 {
			sum := sha256.Sum256(data)
			row.TraceHash = hex.EncodeToString(sum[:])
			row.Records = meta.Records
			row.ReplayInstr = meta.ReplayInstr
		}
	}

	// Analysis-mode MBPTA on the observed core, co-runners idle — the
	// estimation protocol a trace_hash request runs through the service.
	aseed := campaignSeed(opt.Seed, "tracesweep/"+sc.Name+"/analysis")
	runs := tracesweepAnalysisRuns(opt)
	times, err := pool.CollectAnalysisTimes(ctx, cfg.WithAnalysis(0), progs[0], runs, aseed)
	if err != nil {
		return row, fmt.Errorf("%s: %w", sc.Name, err)
	}
	fit, err := pwcetFromTimes(times, sc.Name, opt.Prob)
	if err != nil {
		return row, err
	}
	opt.auditEVT("tracesweep/"+sc.Name, times)
	row.AnalysisRuns, row.PWCET, row.Mean, row.Max = fit.Runs, fit.PWCET, fit.Mean, fit.Max

	// Audited deployment runs: all cores replay their traces together.
	aud := sim.NewAuditor()
	var buf *trace.Buffer
	if row.Shared {
		buf = trace.NewBuffer(1<<20).Keep(
			trace.EvCohFetch, trace.EvCohUpgrade, trace.EvCohInval, trace.EvCohHit)
	}
	dseed := campaignSeed(opt.Seed, "tracesweep/"+sc.Name+"/deploy")
	var res sim.Result
	for i := 0; i < tracesweepDeployRuns(opt); i++ {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		m, err := pool.Get(cfg, progs, dseed+uint64(i))
		if err != nil {
			return row, err
		}
		if buf != nil {
			buf.Reset()
			m.SetTracer(buf)
		}
		err = m.RunInto(&res)
		m.SetTracer(nil)
		if err != nil {
			return row, fmt.Errorf("%s deploy run %d: %w", sc.Name, i, err)
		}
		// Both auditors see every run: the private one carries the row's
		// verdicts, the campaign-global one (-audit) gates the command.
		if err := pool.AuditRun(cfg, &res); err != nil {
			return row, err
		}
		_ = aud.CheckRun(cfg, &res)
		if buf != nil {
			_ = aud.CheckCoherence(cfg, buf.Events())
			_ = opt.Audit.CheckCoherence(cfg, buf.Events())
		}
		row.MeanCycles += float64(res.TotalCycles)
		row.DeployRuns++
	}
	row.MeanCycles /= float64(row.DeployRuns)

	rep := aud.Report()
	row.Invariants = rep.Invariants
	a3 := rep.Invariants[sim.AuditEvictionRate]
	row.A3Holds = a3.Checks > 0 && a3.Violations == 0
	if row.Shared {
		a5 := rep.Invariants[sim.AuditCoherence]
		row.A5Holds = a5.Checks > 0 && a5.Violations == 0
	} else {
		row.A5Holds = true
	}
	return row, nil
}

// Render prints the tracesweep report.
func (r *TracesweepResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Trace sweep: synthetic workload grid replayed under EFL MID=%d (%d analysis + %d audited deployment runs per scenario)\n",
		r.MID, tracesweepAnalysisRuns(r.Opt), tracesweepDeployRuns(r.Opt))
	fmt.Fprintf(&sb, "%-12s %-14s %7s %9s %7s %12s %12s %12s %12s %4s %4s\n",
		"scenario", "trace", "recs", "replay-in", "shared", "pWCET", "mean", "max", "mean deploy", "A3", "A5")
	for _, row := range r.Rows {
		a5 := "-"
		if row.Shared {
			a5 = mark(row.A5Holds)
		}
		fmt.Fprintf(&sb, "%-12s %-14s %7d %9d %7d %12.0f %12.0f %12.0f %12.0f %4s %4s\n",
			row.Name, row.TraceHash[:12]+"..", row.Records, row.ReplayInstr, row.SharedBytes,
			row.PWCET, row.Mean, row.Max, row.MeanCycles,
			mark(row.A3Holds), a5)
	}
	sb.WriteString("\n")
	if r.AllSound {
		sb.WriteString("all audited invariants held on every run of every traced scenario\n")
	} else {
		sb.WriteString("AUDIT VIOLATION: at least one invariant failed; see the per-scenario reports in the artifact\n")
	}
	return sb.String()
}
