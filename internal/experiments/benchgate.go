package experiments

// Bench regression gate: -exp bench compares the fresh report against the
// committed BENCH_SIM.json and fails with a per-benchmark diff when
// throughput regressed beyond tolerance, so the bench trajectory is
// enforced rather than merely recorded.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// LoadBenchReport reads a committed benchmark baseline.
func LoadBenchReport(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	return &r, nil
}

// CompareBaseline checks current against baseline: any benchmark present
// in both whose runs/sec dropped by more than tol (a fraction, e.g. 0.10),
// or whose allocs/op increased at all (allocation counts are exact, so no
// tolerance applies), is a regression, and the returned error lists every
// one with its numbers. Benchmarks present in only one report are ignored
// — additions and removals are not regressions. A nil return means the
// gate passed.
func CompareBaseline(baseline, current *BenchReport, tol float64) error {
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, b := range baseline.Results {
		base[b.Name] = b
	}
	var lines []string
	for _, c := range current.Results {
		b, ok := base[c.Name]
		if !ok || b.RunsPerSec <= 0 {
			continue
		}
		drop := 1 - c.RunsPerSec/b.RunsPerSec
		if drop > tol {
			lines = append(lines, fmt.Sprintf("  %-18s %12.1f -> %12.1f runs/sec  (%.1f%% slower, tolerance %.0f%%)",
				c.Name, b.RunsPerSec, c.RunsPerSec, drop*100, tol*100))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			lines = append(lines, fmt.Sprintf("  %-18s %12d -> %12d allocs/op  (allocation counts are exact; tolerance 0)",
				c.Name, b.AllocsPerOp, c.AllocsPerOp))
		}
	}
	if len(lines) == 0 {
		return nil
	}
	return fmt.Errorf("throughput regressed vs committed baseline (kernel %s):\n%s",
		baseline.Kernel, strings.Join(lines, "\n"))
}
