package cpu

import (
	"testing"

	"efl/internal/bench"
	"efl/internal/isa"
)

// runToCompletion drives a core with the perfect-L1-backing harness and
// returns a comparable fingerprint of everything the simulator observes.
type coreFP struct {
	clock   int64
	exec    int64
	retired uint64
	stats   Stats
	il1Miss uint64
	dl1Miss uint64
	fault   bool
}

func fingerprint(t *testing.T, c *Core) coreFP {
	t.Helper()
	err := c.RunIsolatedPerfect(10, 1<<22)
	if err != nil && c.fault == nil {
		t.Fatal(err)
	}
	return coreFP{
		clock:   c.Clock,
		exec:    c.ExecCycles(),
		retired: c.Retired(),
		stats:   c.Stats(),
		il1Miss: c.IL1.Stats().Misses,
		dl1Miss: c.DL1.Stats().Misses,
		fault:   c.Fault() != nil,
	}
}

// TestReplayMatchesInterpreter pins the replay path to the interpreter
// path: same program, same cache seeds => identical clocks, stats, cache
// miss counts and retirement counts, for every bench kernel.
func TestReplayMatchesInterpreter(t *testing.T) {
	for _, spec := range bench.AllWithExtended() {
		spec := spec
		t.Run(spec.Code, func(t *testing.T) {
			prog := spec.Build()
			ref := newCore(t, prog, 42)
			want := fingerprint(t, ref)

			tr, err := RecordTrace(prog, 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			got := newCore(t, prog, 42)
			got.SetReplay(tr)
			if fp := fingerprint(t, got); fp != want {
				t.Fatalf("replay diverged:\n got %+v\nwant %+v", fp, want)
			}

			// A reset replay core re-runs identically without re-recording.
			got.Reset()
			got.Clock = 0
			if fp := fingerprint(t, got); fp.retired != want.retired || fp.fault != want.fault {
				t.Fatalf("replay after Reset diverged: %+v vs %+v", fp, want)
			}
		})
	}
}

// TestReplayFault pins fault semantics under replay: no retirement of the
// faulting slot, the same stored fault, a halted core — for both fault
// shapes (out-of-range PC, which skips the fetch, and division by zero,
// which faults after a normal fetch).
func TestReplayFault(t *testing.T) {
	oob := isa.NewBuilder("oob")
	oob.Addi(1, 1, 1) // no HALT: PC runs off the end
	div0 := isa.NewBuilder("div0")
	div0.Movi(2, 0)
	div0.Div(1, 1, 2)
	div0.Halt()

	for _, prog := range []*isa.Program{oob.MustProgram(), div0.MustProgram()} {
		ref := newCore(t, prog, 7)
		want := fingerprint(t, ref)
		if !want.fault {
			t.Fatalf("%s: reference run did not fault", prog.Name)
		}

		tr, err := RecordTrace(prog, 1000)
		if err != nil {
			t.Fatal(err)
		}
		got := newCore(t, prog, 7)
		got.SetReplay(tr)
		if fp := fingerprint(t, got); fp != want {
			t.Fatalf("%s: faulting replay diverged:\n got %+v\nwant %+v", prog.Name, fp, want)
		}
		if got.Fault() == nil || got.Fault().Error() != ref.Fault().Error() {
			t.Fatalf("%s: fault mismatch: %v vs %v", prog.Name, got.Fault(), ref.Fault())
		}
	}
}

// TestRecordTraceCap ensures non-terminating programs are rejected rather
// than looping forever.
func TestRecordTraceCap(t *testing.T) {
	b := isa.NewBuilder("loop")
	b.Label("top")
	b.Jmp("top")
	prog := b.MustProgram()
	if _, err := RecordTrace(prog, 1000); err == nil {
		t.Fatal("expected cap error for non-terminating program")
	}
}

// TestSetReplayProgGuard ensures a trace cannot be attached to a core
// running a different program.
func TestSetReplayProgGuard(t *testing.T) {
	p1 := straightLine(4)
	p2 := straightLine(5)
	tr, err := RecordTrace(p1, 100)
	if err != nil {
		t.Fatal(err)
	}
	c := newCore(t, p2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on program mismatch")
		}
	}()
	c.SetReplay(tr)
}
