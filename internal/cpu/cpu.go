// Package cpu models the paper's core (§4.1): a 4-stage pipelined,
// in-order, single-issue processor with private first-level instruction
// (IL1) and data (DL1) caches.
//
// Timing model. With in-order single issue, unit-latency stages and
// blocking caches, the pipeline retires one instruction per cycle when
// everything hits; the only deviations are (a) instruction-fetch misses,
// (b) data-access misses, (c) multi-cycle execute operations (MUL/DIV) and
// (d) taken-branch redirect bubbles. The core therefore advances a cycle
// counter instruction by instruction: base cost 1 cycle, plus the extra
// execute latency, plus the branch penalty, plus memory stalls. This is
// exact for this microarchitecture and lets the surrounding discrete-event
// simulator handle the shared resources (bus, LLC, memory controller) at
// cycle granularity.
//
// The core is driven as a state machine by package sim: Step runs until
// the current instruction either retires (NeedNone) or requires one or
// more shared-memory transactions (NeedLLC); the simulator performs the
// transactions and calls Resume with the completion cycle.
package cpu

import (
	"fmt"

	"efl/internal/cache"
	"efl/internal/isa"
)

// Need is what the core requires from the simulator after a Step.
type Need int

const (
	// NeedNone: the instruction retired; the core is ready for more work.
	NeedNone Need = iota
	// NeedLLC: first-level caches missed; the pending shared transactions
	// (Requests) must complete before the core can continue.
	NeedLLC
	// NeedHalt: the program executed HALT or faulted; the core is done.
	NeedHalt
)

// ReqKind distinguishes the two shared-memory transaction types a core
// issues.
type ReqKind int

const (
	// ReqFetch reads a line from the LLC (and memory beyond) into an L1.
	ReqFetch ReqKind = iota
	// ReqWriteback writes a dirty L1 victim line into the LLC.
	ReqWriteback
	// ReqWriteThrough propagates a store outward under a write-through
	// DL1 (paper footnote 5): the word is written to the LLC (and, on an
	// LLC miss without write-allocate, to memory) on every store.
	ReqWriteThrough
	// ReqUpgrade is an MSI coherence upgrade: a store hit a shared-data
	// line resident in the DL1 without M ownership, so peer copies must
	// be invalidated over the bus before the store can retire.
	ReqUpgrade
)

// Request is one shared-memory transaction the simulator must perform on
// the core's behalf.
type Request struct {
	Kind  ReqKind
	Addr  uint64 // byte address (ReqFetch) or line-aligned address (ReqWriteback)
	Instr bool   // instruction-side request (IL1) vs data-side (DL1)
	Excl  bool   // ReqFetch of a shared line for writing (read-for-ownership)
}

// Coherence is the simulator-side MSI directory the core consults on every
// access inside the shared-data window. Touch records the access (per-line
// sharing statistics, the A5 hit events) and reports whether the core
// currently holds the line in Modified state; the bus-level protocol
// transitions (fetch, upgrade, invalidation) are performed by the
// simulator when the corresponding Request is serviced.
type Coherence interface {
	Touch(core int, addr uint64, write, l1hit bool) (owns bool)
}

// Stats aggregates the core's pipeline-level event counts (cache-level
// counts live in the caches themselves).
type Stats struct {
	FetchStalls   uint64 // instructions whose fetch missed IL1
	DataStalls    uint64 // memory instructions whose access missed DL1
	Writebacks    uint64 // dirty DL1 victims pushed to the LLC
	TakenBranches uint64
}

type phase int

const (
	phFetch phase = iota
	phExec
	phRetire
)

// Core is one simulated processor core.
type Core struct {
	ID  int
	M   *isa.Machine
	IL1 *cache.Cache
	DL1 *cache.Cache

	// BranchPenalty is the redirect bubble of a taken branch (default 1).
	BranchPenalty int64

	// WriteThrough switches the DL1 to write-through/no-write-allocate
	// (paper footnote 5): stores update the DL1 only on a hit, never
	// dirty it, and always emit a ReqWriteThrough transaction.
	WriteThrough bool

	// SharedLimit, when non-zero, is the exclusive upper bound of the
	// shared-data window [isa.DataBase, SharedLimit): architectural data
	// addresses inside it are physically shared between the cores (no
	// per-core rebasing) and every access consults Coh.
	SharedLimit uint64
	// Coh is the MSI directory for shared-window accesses (nil when the
	// coherence layer is off).
	Coh Coherence

	// Clock is the core-local cycle counter.
	Clock int64

	// execCycles counts the cycles the pipeline itself advanced the clock
	// by (instruction latencies, branch bubbles, the HALT cycle) — the
	// "execute" category of the cycle-accounting invariant. It is counted
	// at each clock advance, never derived as Clock minus stalls, so the
	// auditor's per-core category-sum check is a genuine cross-check
	// between this counter and the simulator's stall attribution.
	execCycles int64

	stats  Stats
	l1Mask cache.WayMask
	phase  phase
	// pending is the queue of shared transactions for the current stall.
	// It drains by advancing popIdx rather than re-slicing, so the backing
	// array is reused for the run's whole lifetime instead of creeping
	// forward and forcing an allocation every few transactions.
	pending []Request
	popIdx  int
	halted  bool
	fault   error
	// si is the scratch StepInfo the interpreter writes into (one per core,
	// reused every instruction).
	si isa.StepInfo

	// replay, when attached (SetReplay), replaces the interpreter with a
	// recorded architectural trace; replayIdx is the cursor and
	// replaySteps mirrors isa.Machine.Steps (retired instructions). The
	// skip flags gate the trace's same-line elision fast paths (see
	// SetReplay); replaySegs enables whole-segment bulk replay.
	replay          *Trace
	replayIdx       int
	replaySteps     uint64
	replaySkipFetch bool
	replaySkipData  bool
	replaySegs      bool
	// Burst-mode bounds (EnableReplayBurst/SetReplayYieldClock): a burst
	// yields at the first retire past replayBurstCap instructions or past
	// replayYieldClock cycles; replayBurstCap == 0 disables bursting.
	replayBurstCap   uint64
	replayYieldClock int64

	// addrBase disambiguates per-core physical addresses: every task has
	// private code and data (the paper's tasks share nothing), so core i's
	// view of architectural address a is a | (i << 32). Without this,
	// co-running copies of a program would alias in the shared LLC and
	// spuriously prefetch for each other.
	addrBase uint64
}

// New wires a core around a machine and its private L1 caches.
func New(id int, m *isa.Machine, il1, dl1 *cache.Cache) *Core {
	return &Core{
		ID:            id,
		M:             m,
		IL1:           il1,
		DL1:           dl1,
		BranchPenalty: 1,
		l1Mask:        cache.FullMask(il1.Config().Ways),
		addrBase:      uint64(id) << 32,
	}
}

// Stats returns a copy of the pipeline counters.
func (c *Core) Stats() Stats { return c.stats }

// Retired returns the dynamic instruction count.
func (c *Core) Retired() uint64 {
	if c.replay != nil {
		return c.replaySteps
	}
	return c.M.Steps
}

// ExecCycles returns the cycles attributed to pipeline execution (the
// complement of shared-resource stalls in the core's clock).
func (c *Core) ExecCycles() int64 { return c.execCycles }

// Halted reports whether the core has finished (HALT or fault).
func (c *Core) Halted() bool { return c.halted }

// Fault returns the runtime fault that halted the core, if any.
func (c *Core) Fault() error { return c.fault }

// Reset prepares the core for a fresh run: machine state, caches (new RII
// per run, per the MBPTA protocol), clock and pipeline state.
func (c *Core) Reset() {
	if c.replay != nil {
		// Replay never touches the machine, so skip its (data-image copy)
		// reset; just rewind the trace cursor.
		c.replayIdx = 0
		c.replaySteps = 0
	} else {
		c.M.Reset()
	}
	c.IL1.NewRun()
	c.DL1.NewRun()
	c.Clock = 0
	c.execCycles = 0
	c.stats = Stats{}
	c.phase = phFetch
	c.pending = c.pending[:0]
	c.popIdx = 0
	c.halted = false
	c.fault = nil
}

// PendingRequests returns the shared transactions the core is blocked on,
// in issue order. The simulator consumes them one by one.
func (c *Core) PendingRequests() []Request { return c.pending[c.popIdx:] }

// PopRequest removes and returns the first pending request. It panics when
// none is pending.
func (c *Core) PopRequest() Request {
	if c.popIdx >= len(c.pending) {
		panic("cpu: PopRequest with no pending requests")
	}
	r := c.pending[c.popIdx]
	c.popIdx++
	if c.popIdx == len(c.pending) {
		c.pending = c.pending[:0]
		c.popIdx = 0
	}
	return r
}

// HasPending reports whether transactions remain for the current stall.
func (c *Core) HasPending() bool { return c.popIdx < len(c.pending) }

// Resume is called by the simulator when all pending transactions have
// completed at cycle t; the core's clock jumps to t.
func (c *Core) Resume(t int64) {
	if t > c.Clock {
		c.Clock = t
	}
}

// Step advances the core. It returns NeedNone when an instruction retired
// (the common case: Clock advanced by its cost), NeedLLC when the core
// must wait for shared transactions (PendingRequests), and NeedHalt when
// the program is done.
func (c *Core) Step() Need {
	if c.halted {
		return NeedHalt
	}
	if c.replay != nil {
		return c.stepReplay()
	}
	// The common path — IL1 fetch hit followed by execute — flows through
	// both phases in one call; iterating here instead of tail-recursing
	// keeps the per-instruction path a single stack frame.
	for {
		switch c.phase {
		case phFetch:
			if c.M.Halted() {
				c.halted = true
				return NeedHalt
			}
			pc := c.M.PC
			if pc < 0 || pc >= len(c.M.Prog.Code) {
				// Let the interpreter raise the precise fault.
				c.phase = phExec
				continue
			}
			fetchAddr := isa.InstrAddr(pc) | c.addrBase
			r := c.IL1.Access(fetchAddr, false, c.l1Mask, -1)
			if r.Hit {
				c.phase = phExec
				continue
			}
			// Instruction lines are never dirty (no self-modifying code), so
			// an IL1 fill needs only the fetch transaction.
			c.stats.FetchStalls++
			c.pending = append(c.pending, Request{Kind: ReqFetch, Addr: fetchAddr, Instr: true})
			c.phase = phExec
			return NeedLLC

		case phExec:
			si := &c.si
			err := c.M.StepInto(si)
			if err != nil {
				c.halted = true
				c.fault = err
				return NeedHalt
			}
			if si.Halted {
				// The HALT instruction itself occupies one cycle.
				c.Clock++
				c.execCycles++
				c.halted = true
				return NeedHalt
			}
			c.Clock += si.Op.Latency()
			c.execCycles += si.Op.Latency()
			if si.Taken {
				c.Clock += c.BranchPenalty
				c.execCycles += c.BranchPenalty
				c.stats.TakenBranches++
			}
			if si.Op.IsMem() {
				memAddr := si.MemAddr | c.addrBase
				shared := c.SharedLimit != 0 && si.MemAddr >= isa.DataBase && si.MemAddr < c.SharedLimit
				if shared {
					// Shared-window addresses are physical: every core sees
					// the same line, so no per-core rebasing.
					memAddr = si.MemAddr
				}
				if c.WriteThrough && si.MemWrite {
					// Write-through store: DL1 updated on hit only (never
					// dirtied), and the store always goes outward.
					c.DL1.AccessNoAlloc(memAddr, c.l1Mask, -1)
					c.pending = append(c.pending, Request{Kind: ReqWriteThrough, Addr: memAddr})
					c.phase = phRetire
					return NeedLLC
				}
				r := c.DL1.Access(memAddr, si.MemWrite, c.l1Mask, -1)
				var upgrade, rfo bool
				if shared && c.Coh != nil {
					owns := c.Coh.Touch(c.ID, memAddr, si.MemWrite, r.Hit)
					if si.MemWrite && !owns {
						// A store without M ownership must invalidate the
						// peers' copies over the bus before retiring: as an
						// upgrade of the resident copy, or folded into the
						// miss fetch as a read-for-ownership.
						upgrade = r.Hit
						rfo = !r.Hit
					}
				}
				if upgrade {
					c.pending = append(c.pending, Request{Kind: ReqUpgrade, Addr: memAddr})
					c.phase = phRetire
					return NeedLLC
				}
				if !r.Hit {
					c.stats.DataStalls++
					if r.Evicted && r.EvictedDirty {
						c.stats.Writebacks++
						c.pending = append(c.pending, Request{
							Kind: ReqWriteback,
							Addr: r.EvictedAddr * uint64(c.DL1.Config().LineBytes),
						})
					}
					c.pending = append(c.pending, Request{Kind: ReqFetch, Addr: memAddr, Excl: rfo})
					c.phase = phRetire
					return NeedLLC
				}
			}
			c.phase = phFetch
			return NeedNone

		case phRetire:
			// Data transactions completed (Resume set the clock).
			c.phase = phFetch
			return NeedNone

		default:
			panic(fmt.Sprintf("cpu: core %d in impossible phase %d", c.ID, c.phase))
		}
	}
}

// RunIsolatedPerfect executes the whole program assuming the L1s never
// miss below themselves (i.e. every L1 miss costs exactly llcHit extra
// cycles with no contention). It exists for calibration and tests; the
// real memory path is driven by package sim.
func (c *Core) RunIsolatedPerfect(llcExtra int64, maxSteps uint64) error {
	for {
		switch c.Step() {
		case NeedHalt:
			if c.fault != nil {
				return c.fault
			}
			return nil
		case NeedLLC:
			done := c.Clock
			for c.HasPending() {
				c.PopRequest()
				done += llcExtra
			}
			c.Resume(done)
		case NeedNone:
		}
		if c.M.Steps > maxSteps {
			return fmt.Errorf("cpu: core %d exceeded %d instructions", c.ID, maxSteps)
		}
	}
}
